// Command kdash-bench regenerates the paper's evaluation: every figure
// (2-7, 9) and the Table 2 case study, plus the restart-probability sweep
// and drop-tolerance ablation extensions.
//
// Usage:
//
//	kdash-bench -exp all            # everything (minutes)
//	kdash-bench -exp fig2           # one experiment
//	kdash-bench -exp fig5 -queries 5
//	kdash-bench -exp shards -shards 1,4,8 -shard-nodes 50000
//	kdash-bench -exp batch -batches 1,8,64 -shard-nodes 50000
//
// Output is printed as plain tables; EXPERIMENTS.md records a reference
// run next to the paper's reported trends.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"kdash/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: fig2|fig3|fig4|fig5|fig6|fig7|fig9|table2|csweep|ablation|shards|batch|all")
		queries    = flag.Int("queries", 10, "query nodes averaged per measurement")
		seed       = flag.Int64("seed", 1, "workload seed")
		shards     = flag.String("shards", "1,2,4,8", "shard counts for -exp shards")
		shardNodes = flag.Int("shard-nodes", 0, "graph size for -exp shards/batch (0 = default 50000)")
		batches    = flag.String("batches", "1,8,64", "batch sizes for -exp batch")
	)
	flag.Parse()
	shardCounts, err := parseInts(*shards)
	check(err)
	batchSizes, err := parseInts(*batches)
	check(err)
	cfg := experiments.Config{Queries: *queries, Seed: *seed, ShardCounts: shardCounts, ShardGraphN: *shardNodes, BatchSizes: batchSizes}
	want := strings.Split(*exp, ",")
	run := func(name string) bool {
		for _, w := range want {
			if w == "all" || w == name {
				return true
			}
		}
		return false
	}
	any := false
	// Figures 3/4 and 5/6 share a computation; emit both tables from one
	// pass when either is requested.
	if run("fig2") {
		any = true
		section("Figure 2 — top-k search efficiency (wall clock per query)")
		rows, err := experiments.Figure2(cfg)
		check(err)
		experiments.WriteTimingRows(os.Stdout, rows)
	}
	if run("fig3") || run("fig4") {
		any = true
		section("Figures 3 & 4 — precision and query time vs target rank / hub count (Dictionary)")
		rows, err := experiments.Figure3and4(cfg)
		check(err)
		experiments.WriteSweepRows(os.Stdout, rows)
	}
	if run("fig5") || run("fig6") {
		any = true
		section("Figures 5 & 6 — inverse-factor sparsity and precompute time per reordering")
		rows, err := experiments.Figure5and6(cfg)
		check(err)
		experiments.WriteReorderRows(os.Stdout, rows)
	}
	if run("fig7") {
		any = true
		section("Figure 7 — effect of tree-estimation pruning")
		rows, err := experiments.Figure7(cfg)
		check(err)
		experiments.WritePruningRows(os.Stdout, rows)
	}
	if run("fig9") {
		any = true
		section("Figure 9 — root-node selection (mean proximity computations)")
		rows, err := experiments.Figure9(cfg)
		check(err)
		experiments.WriteRootRows(os.Stdout, rows)
	}
	if run("table2") {
		any = true
		section("Table 2 — case study: top-5 terms (Dictionary)")
		rows, err := experiments.Table2(cfg)
		check(err)
		experiments.WriteCaseStudyRows(os.Stdout, rows)
	}
	if run("csweep") {
		any = true
		section("Extension — restart probability sweep (exactness & query time)")
		rows, err := experiments.CSweep(cfg)
		check(err)
		experiments.WriteCSweepRows(os.Stdout, rows)
	}
	if run("ablation") {
		any = true
		section("Extension — drop-tolerance ablation (sparsity vs exactness)")
		rows, err := experiments.DropTolAblation(cfg)
		check(err)
		experiments.WriteAblationRows(os.Stdout, rows)
	}
	if run("shards") {
		any = true
		section("Extension — sharded index: partition-parallel build scaling & cross-shard exactness")
		rows, err := experiments.ShardScale(cfg)
		check(err)
		experiments.WriteShardRows(os.Stdout, rows)
	}
	if run("batch") {
		any = true
		section("Extension — batched execution: shared block push vs sequential queries")
		rows, err := experiments.BatchScale(cfg)
		check(err)
		experiments.WriteBatchRows(os.Stdout, rows)
	}
	if !any {
		fmt.Fprintf(os.Stderr, "kdash-bench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func section(title string) {
	fmt.Printf("\n== %s ==\n", title)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kdash-bench:", err)
		os.Exit(1)
	}
}
