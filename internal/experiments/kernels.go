package experiments

// The kernels microbenchmark: per-kernel throughput of the solve-path
// inner loops in internal/lu/kernels, comparing the pure-Go scalar
// reference against the runtime-dispatched implementation (AVX2 on
// amd64, NEON on arm64 — Impl() names it) and against the float32
// value-strip variant of the opt-in reduced-precision mode. The strips
// are synthetic blocked-CSC columns (ascending strided rows, padded to
// the kernel alignment), so the numbers isolate the scatter loops from
// graph structure: this is the hardware ceiling the blocked layout buys,
// tracked in BENCH_kernels.json alongside the end-to-end query numbers
// in BENCH_shards.json.

import (
	"fmt"
	"io"
	"time"

	"kdash/internal/lu/kernels"
)

// KernelRow is one (kernel, implementation, strip length) measurement.
type KernelRow struct {
	Kernel  string  // scatter64, scatter32 or block8
	Impl    string  // "scalar" or the dispatched implementation (avx2/neon)
	Entries int     // entries per column strip
	NsPerOp float64 // nanoseconds per kernel call (best of 3)
	GBps    float64 // bytes touched per second (strip reads + dst read/modify/write)
}

// kernelStripLens is the strip-length sweep: a short column near the
// fused-scalar threshold, a mid column, and a strip long enough to
// stream from L2 — the regimes the adaptive MinEntries dispatch divides.
var kernelStripLens = []int{64, 4096, 65536}

// Bytes touched per strip entry, the denominator of the GB/s column:
// every entry streams its value (8 or 4 bytes) and int32 row, and
// read-modify-writes its dst accumulator (16 bytes per float64 lane;
// the 8-lane block kernel touches eight).
const (
	kernelBytes64     = 8 + 4 + 16
	kernelBytes32     = 4 + 4 + 16
	kernelBytesBlock8 = 8 + 4 + 8*16
)

// Kernels measures every scatter kernel at each strip length for both
// implementations. The scalar rows are the portable baseline; the
// dispatched rows show what the active CPU's vector unit adds (under
// the noasm tag, or on CPUs without AVX2, both name "scalar" and
// agree).
func Kernels(Config) ([]KernelRow, error) {
	var rows []KernelRow
	for _, n := range kernelStripLens {
		strip := makeKernelStrip(n)
		rows = append(rows,
			measureKernel("scatter64", "scalar", n, kernelBytes64, func() {
				kernels.ScalarScatterAXPY(strip.dst, strip.rows, strip.vals, 0.5)
			}),
			measureKernel("scatter64", kernels.Impl(), n, kernelBytes64, func() {
				kernels.ScatterAXPY(strip.dst, strip.rows, strip.vals, 0.5)
			}),
			measureKernel("scatter32", "scalar", n, kernelBytes32, func() {
				kernels.ScalarScatterAXPY32(strip.dst, strip.rows, strip.vals32, 0.5)
			}),
			measureKernel("scatter32", kernels.Impl(), n, kernelBytes32, func() {
				kernels.ScatterAXPY32(strip.dst, strip.rows, strip.vals32, 0.5)
			}),
			measureKernel("block8", "scalar", n, kernelBytesBlock8, func() {
				kernels.ScalarScatterBlock8(strip.dst8, strip.rows, strip.vals, &strip.x8)
			}),
			measureKernel("block8", kernels.Impl(), n, kernelBytesBlock8, func() {
				kernels.ScatterBlock8(strip.dst8, strip.rows, strip.vals, &strip.x8)
			}),
		)
	}
	return rows, nil
}

// kernelStrip is one synthetic blocked column shared by all kernels at
// a given length: ascending rows strided by 2 (a scatter, not a dense
// sweep, but still the monotone order the blocked layout guarantees).
type kernelStrip struct {
	rows   []int32
	vals   []float64
	vals32 []float32
	dst    []float64
	dst8   []float64
	x8     [8]float64
}

func makeKernelStrip(n int) *kernelStrip {
	s := &kernelStrip{
		rows:   make([]int32, n),
		vals:   make([]float64, n),
		vals32: make([]float32, n),
		dst:    make([]float64, 2*n),
		dst8:   make([]float64, 2*n*8),
	}
	for k := 0; k < n; k++ {
		s.rows[k] = int32(2 * k)
		s.vals[k] = 1 / float64(k+2)
		s.vals32[k] = float32(s.vals[k])
	}
	for v := range s.x8 {
		s.x8[v] = float64(v + 1)
	}
	return s
}

// measureKernel times fn: iterations are calibrated so one sample runs
// ~10ms of wall clock, and the best of three samples is kept — the
// standard defense against scheduler noise on a shared box.
func measureKernel(kernel, impl string, entries, bytesPer int, fn func()) KernelRow {
	fn() // warm: fault in the strips, settle the dispatch
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		if d := time.Since(start); d >= 2*time.Millisecond || iters >= 1<<24 {
			target := 10 * time.Millisecond
			if scaled := int(float64(iters) * float64(target) / float64(d)); scaled > iters {
				iters = scaled
			}
			break
		}
		iters *= 4
	}
	best := time.Duration(1<<63 - 1)
	for sample := 0; sample < 3; sample++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	ns := float64(best.Nanoseconds()) / float64(iters)
	return KernelRow{
		Kernel:  kernel,
		Impl:    impl,
		Entries: entries,
		NsPerOp: ns,
		GBps:    float64(entries*bytesPer) / ns, // bytes/ns == GB/s
	}
}

// WriteKernelRows formats the kernel sweep as a table.
func WriteKernelRows(w io.Writer, rows []KernelRow) {
	fmt.Fprintf(w, "%-10s %-8s %9s %14s %9s\n", "kernel", "impl", "entries", "ns/op", "GB/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-8s %9d %14.1f %9.2f\n", r.Kernel, r.Impl, r.Entries, r.NsPerOp, r.GBps)
	}
}
