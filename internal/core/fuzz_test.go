package core

// Native fuzz target for the binary index loader: whatever bytes come
// in — truncations of a valid index, bit flips, garbage — LoadIndex
// must return an error, never panic and never commit unbounded memory.
// Run with `go test -fuzz=FuzzLoadIndex ./internal/core`.

import (
	"bytes"
	"testing"

	"kdash/internal/gen"
	"kdash/internal/reorder"
)

// fuzzIndexBytes is a small valid serialised index, built once and
// written through the given serializer: the seeds the mutator starts
// from are the valid bytes plus truncations and targeted corruptions.
func fuzzIndexBytes(f *testing.F, save func(*Index, *bytes.Buffer) error) []byte {
	f.Helper()
	g := gen.ErdosRenyi(24, 90, 7)
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: 7})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := save(ix, &buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzLoadIndex(f *testing.F) {
	valid := fuzzIndexBytes(f, func(ix *Index, buf *bytes.Buffer) error { return ix.SaveLegacy(buf) })
	f.Add(valid)
	f.Add(valid[:len(valid)/2])  // truncated mid-array
	f.Add(valid[:9])             // magic + version only
	f.Add([]byte("KDASHIX\x01")) // header, nothing else
	f.Add([]byte("not an index"))
	f.Add([]byte{})
	// A length-prefix bomb: valid header, then a huge array length.
	bomb := append([]byte{}, valid[:16]...)
	bomb = append(bomb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	f.Add(bomb)

	f.Fuzz(fuzzLoadOne)
}

// FuzzLoadIndexV3 drives the sectioned-container load path: header and
// table corruption is mmapio's to reject, section shape and content
// corruption is indexFromContainer's — either way the contract is the
// same as the legacy target's (error, no panic, no unbounded commit).
// Run with `go test -fuzz=FuzzLoadIndexV3 ./internal/core`.
func FuzzLoadIndexV3(f *testing.F) {
	valid := fuzzIndexBytes(f, func(ix *Index, buf *bytes.Buffer) error { return ix.Save(buf) })
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-section
	f.Add(valid[:40])           // header + part of the table
	f.Add(valid[:8])            // magic only
	// Flip one byte inside the first data section (checksum mismatch).
	flip := append([]byte{}, valid...)
	flip[4096] ^= 0xff
	f.Add(flip)
	// Flip a table byte (table checksum mismatch).
	flipTable := append([]byte{}, valid...)
	flipTable[32] ^= 0xff
	f.Add(flipTable)

	f.Fuzz(fuzzLoadOne)
}

// fuzzLoadOne is the shared oracle of both loader fuzz targets.
func fuzzLoadOne(t *testing.T, data []byte) {
	ix, err := LoadIndex(bytes.NewReader(data))
	if err != nil {
		return // rejection is the expected outcome for corrupt input
	}
	// The rare accepted input must yield a queryable index.
	if ix.N() <= 0 {
		t.Fatalf("accepted index with n=%d", ix.N())
	}
	if _, _, qerr := ix.TopK(0, 3); qerr != nil {
		t.Fatalf("accepted index cannot answer: %v", qerr)
	}
}
