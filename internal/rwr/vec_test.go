package rwr

import (
	"math"
	"testing"

	"kdash/internal/gen"
	"kdash/internal/sparse"
)

func TestIterativeVecSingleSeedMatchesIterative(t *testing.T) {
	g := gen.BarabasiAlbert(80, 3, 1)
	a := g.ColumnNormalized()
	restart := make([]float64, a.Rows)
	restart[11] = 1
	pv, _, err := IterativeVec(a, restart, 0.9, 1e-14, 100000)
	if err != nil {
		t.Fatal(err)
	}
	ps, _, err := Iterative(a, 11, 0.9, 1e-14, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pv {
		if math.Abs(pv[i]-ps[i]) > 1e-10 {
			t.Fatalf("p[%d]: vec %v vs single %v", i, pv[i], ps[i])
		}
	}
}

func TestIterativeVecMixtureIsLinear(t *testing.T) {
	// PPR over a mixture equals the mixture of single-seed PPRs — the
	// linearity that also justifies K-dash's personalized extension.
	g := gen.ErdosRenyi(60, 300, 2)
	a := g.ColumnNormalized()
	restart := make([]float64, a.Rows)
	restart[3], restart[40] = 0.25, 0.75
	mix, _, err := IterativeVec(a, restart, 0.95, 1e-14, 100000)
	if err != nil {
		t.Fatal(err)
	}
	p3, _, err := Iterative(a, 3, 0.95, 1e-14, 100000)
	if err != nil {
		t.Fatal(err)
	}
	p40, _, err := Iterative(a, 40, 0.95, 1e-14, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mix {
		want := 0.25*p3[i] + 0.75*p40[i]
		if math.Abs(mix[i]-want) > 1e-9 {
			t.Fatalf("p[%d]: mixture %v vs linear combination %v", i, mix[i], want)
		}
	}
}

func TestIterativeVecValidation(t *testing.T) {
	g := gen.ErdosRenyi(10, 40, 3)
	a := g.ColumnNormalized()
	good := make([]float64, 10)
	good[0] = 1
	if _, _, err := IterativeVec(a, good[:5], 0.9, 0, 0); err == nil {
		t.Error("expected length error")
	}
	bad := make([]float64, 10)
	bad[0], bad[1] = 1, -0.5
	if _, _, err := IterativeVec(a, bad, 0.9, 0, 0); err == nil {
		t.Error("expected negative-entry error")
	}
	half := make([]float64, 10)
	half[0] = 0.5
	if _, _, err := IterativeVec(a, half, 0.9, 0, 0); err == nil {
		t.Error("expected sum error")
	}
	if _, _, err := IterativeVec(a, good, 0, 0, 0); err == nil {
		t.Error("expected restart-probability error")
	}
	rect := sparse.NewCOO(3, 4).ToCSC()
	if _, _, err := IterativeVec(rect, good[:4], 0.9, 0, 0); err == nil {
		t.Error("expected square-matrix error")
	}
	if _, _, err := IterativeVec(a, good, 0.5, 1e-14, 1); err == nil {
		t.Error("expected non-convergence error with maxIter=1")
	}
}

func TestDenseSolveValidation(t *testing.T) {
	g := gen.ErdosRenyi(8, 24, 4)
	a := g.ColumnNormalized()
	if _, err := DenseSolve(a, -1, 0.9); err == nil {
		t.Error("expected query-range error")
	}
	if _, err := DenseSolve(a, 8, 0.9); err == nil {
		t.Error("expected query-range error")
	}
	rect := sparse.NewCOO(2, 3).ToCSC()
	if _, err := DenseSolve(rect, 0, 0.9); err == nil {
		t.Error("expected square-matrix error")
	}
}

func TestDenseSolveSingularDetected(t *testing.T) {
	// A synthetic "adjacency" with diagonal 2 makes W = I - 0.5*A exactly
	// singular for c = 0.5 (both constants are exact in binary floating
	// point, so the pivot is exactly zero).
	coo := sparse.NewCOO(2, 2)
	coo.Add(0, 0, 2)
	coo.Add(1, 1, 2)
	if _, err := DenseSolve(coo.ToCSC(), 0, 0.5); err == nil {
		t.Error("expected singular-system error")
	}
}
