package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// kdashvet annotations are comment directives in the `//kdash:` namespace
// (no space after `//`, like //go: directives):
//
//	//kdash:noalloc            function must not contain alloc-shaped constructs (hotalloc)
//	//kdash:deterministic      function + same-package callees must be bit-reproducible (determinism)
//	//kdash:ctxloop            solve loops must consult a context between iterations (ctxcancel)
//	//kdash:pooled             function returns a pooled value the caller must release (poolrelease)
//	//kdash:release            function releases its pooled argument/receiver back to the pool (poolrelease)
//	//kdash:readonly           struct field is a factor array: never written after construction (rofactors)
//	//kdash:mutates-factors    function is on the constructor/serialization allowlist (rofactors)
//	//kdash:allow(a[,b...]) reason   suppress named analyzers on this line (or the next)
//
// Directives on functions live in the doc comment; field directives may
// be the field's doc comment or its trailing same-line comment.

// DirectivePrefix is the comment namespace all kdashvet annotations use.
const DirectivePrefix = "//kdash:"

// FuncDirectives returns the set of kdash directives (names only, e.g.
// "noalloc") attached to a function declaration's doc comment.
func FuncDirectives(fd *ast.FuncDecl) map[string]bool {
	return commentDirectives(fd.Doc)
}

// FieldDirectives returns the kdash directives attached to a struct
// field, from its doc comment or its trailing line comment.
func FieldDirectives(f *ast.Field) map[string]bool {
	ds := commentDirectives(f.Doc)
	for d := range commentDirectives(f.Comment) {
		if ds == nil {
			ds = map[string]bool{}
		}
		ds[d] = true
	}
	return ds
}

func commentDirectives(cg *ast.CommentGroup) map[string]bool {
	if cg == nil {
		return nil
	}
	var ds map[string]bool
	for _, c := range cg.List {
		name, _, ok := parseDirective(c.Text)
		if !ok {
			continue
		}
		if ds == nil {
			ds = map[string]bool{}
		}
		ds[name] = true
	}
	return ds
}

// parseDirective splits a `//kdash:name rest` comment into its directive
// name and trailing text. Allow directives keep their parenthesised list
// in the name ("allow(hotalloc)" stays intact; rest is the justification).
func parseDirective(text string) (name, rest string, ok bool) {
	if !strings.HasPrefix(text, DirectivePrefix) {
		return "", "", false
	}
	body := text[len(DirectivePrefix):]
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		return body[:i], strings.TrimSpace(body[i+1:]), true
	}
	return body, "", true
}

// Allow is one //kdash:allow(...) suppression comment.
type Allow struct {
	Pos       token.Pos
	Line      int
	File      string
	Analyzers map[string]bool
	Reason    string
}

// CollectAllows extracts every //kdash:allow comment in the files.
func CollectAllows(fset *token.FileSet, files []*ast.File) []Allow {
	var allows []Allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, rest, ok := parseDirective(c.Text)
				if !ok || !strings.HasPrefix(name, "allow(") {
					continue
				}
				inner, closed := strings.CutSuffix(name[len("allow("):], ")")
				if !closed {
					continue
				}
				names := map[string]bool{}
				for _, a := range strings.Split(inner, ",") {
					if a = strings.TrimSpace(a); a != "" {
						names[a] = true
					}
				}
				posn := fset.Position(c.Pos())
				allows = append(allows, Allow{
					Pos:       c.Pos(),
					Line:      posn.Line,
					File:      posn.Filename,
					Analyzers: names,
					Reason:    rest,
				})
			}
		}
	}
	return allows
}

// Suppress filters diagnostics covered by an allow comment on the same
// line or the line directly above, and appends a meta-diagnostic for any
// allow comment that lacks a justification (suppressions must say why).
// It returns the surviving diagnostics.
func Suppress(fset *token.FileSet, allows []Allow, diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
		name string
	}
	covered := map[key]bool{}
	for _, a := range allows {
		for name := range a.Analyzers {
			covered[key{a.File, a.Line, name}] = true
			covered[key{a.File, a.Line + 1, name}] = true
		}
	}
	var out []Diagnostic
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		if covered[key{posn.Filename, posn.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	for _, a := range allows {
		if a.Reason == "" {
			out = append(out, Diagnostic{
				Pos:      a.Pos,
				Analyzer: "kdashvet",
				Message:  "//kdash:allow suppression requires a justification after the closing parenthesis",
			})
		}
	}
	return out
}
