package lu

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// randomSparseRHS draws a few nonzero entries with ascending indices.
func randomSparseRHS(rng *rand.Rand, n int) ([]int, []float64) {
	nnz := 1 + rng.Intn(4)
	if nnz > n {
		nnz = n // tiny matrices have fewer distinct indices than the draw
	}
	seen := make(map[int]bool, nnz)
	idx := make([]int, 0, nnz)
	for len(idx) < nnz {
		i := rng.Intn(n)
		if !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	val := make([]float64, len(idx))
	for k := range val {
		val[k] = 0.5 + rng.Float64()
	}
	return idx, val
}

// TestSparseSolverMatchesBatchReference property-tests the single-lane
// support-tracked solver against the plain SolveBatch reference on
// random factorizable matrices: bit-identical on the returned support,
// exactly zero off it. Repeated solves against one solver instance —
// sparse and dense right-hand sides interleaved — exercise workspace
// recycling across both the scatter and the sweep apply, including the
// transitions between them (stale-output reclamation).
func TestSparseSolverMatchesBatchReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		w, _ := randomW(seed, n, 3*n, 0.8+0.19*rng.Float64())
		fac, err := Decompose(w)
		if err != nil {
			t.Fatal(err)
		}
		inv := fac.Invert(Options{Workers: 1})
		s := inv.NewSparseSolver()
		for trial := 0; trial < 6; trial++ {
			var idx []int
			var val []float64
			if trial%3 == 2 {
				// Fully dense right-hand side: forces the sweep fallback.
				for i := 0; i < n; i++ {
					idx = append(idx, i)
					val = append(val, rng.NormFloat64())
				}
			} else {
				idx, val = randomSparseRHS(rng, n)
			}
			out, sup := s.Solve(idx, val)

			r := make([]float64, n)
			for k, i := range idx {
				r[i] = val[k]
			}
			want := inv.SolveBatch([][]float64{r})[0]

			onSup := make([]bool, n)
			if sup == nil {
				for i := range onSup {
					onSup[i] = true
				}
			} else {
				for _, i := range sup {
					onSup[i] = true
				}
			}
			for i := 0; i < n; i++ {
				if onSup[i] {
					if out[i] != want[i] {
						t.Errorf("seed %d trial %d row %d: sparse %v != reference %v", seed, trial, i, out[i], want[i])
						return false
					}
				} else if want[i] != 0 {
					t.Errorf("seed %d trial %d row %d outside support, but reference is %v", seed, trial, i, want[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSparseSolverZeroValuesSkipped pins that explicitly-zero right-hand
// side entries cost nothing and change nothing, matching the dense
// reference's skip-zero behaviour.
func TestSparseSolverZeroValuesSkipped(t *testing.T) {
	w, _ := randomW(4, 20, 60, 0.9)
	fac, err := Decompose(w)
	if err != nil {
		t.Fatal(err)
	}
	inv := fac.Invert(Options{Workers: 1})
	s := inv.NewSparseSolver()
	out1, sup1 := s.Solve([]int{3}, []float64{1})
	got := make([]float64, inv.N)
	for _, i := range supOrAll(sup1, inv.N) {
		got[i] = out1[i]
	}
	out2, sup2 := s.Solve([]int{1, 3, 7}, []float64{0, 1, 0})
	for _, i := range supOrAll(sup2, inv.N) {
		if out2[i] != got[i] {
			t.Fatalf("row %d: %v with zero-padded rhs, %v without", i, out2[i], got[i])
		}
		got[i] = 0
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("row %d written by first solve but absent from second support (%v)", i, v)
		}
	}
}

func supOrAll(sup []int, n int) []int {
	if sup != nil {
		return sup
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return all
}
