package rpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// DialFunc opens a connection to a worker. The differential harness
// swaps in FaultyDialer here to inject drops, delays, and truncations.
type DialFunc func(addr string) (net.Conn, error)

// NetDial is the production DialFunc: plain TCP with a connect timeout.
func NetDial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 5*time.Second)
}

// Client is a pooled framed-RPC client for one worker address. It is
// safe for concurrent use: each in-flight call checks a connection out
// of the idle pool (or dials a fresh one) and returns it on success.
// Any transport error closes the connection, redials, and retries the
// call once; a second failure comes back wrapped in ErrUnavailable.
//
// The retry is safe for every op in the protocol: solves are pure reads
// against an immutable epoch, and Prepare/Commit/Abort are idempotent
// on the worker side.
type Client struct {
	addr    string
	dial    DialFunc
	timeout time.Duration

	mu     sync.Mutex
	idle   []*Conn
	closed bool
}

// NewClient builds a client for addr. A nil dial uses NetDial; a zero
// timeout defaults to 30s per call (batch solves on large shards are
// the slowest legitimate calls).
func NewClient(addr string, dial DialFunc, timeout time.Duration) *Client {
	if dial == nil {
		dial = NetDial
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &Client{addr: addr, dial: dial, timeout: timeout}
}

// Addr reports the worker address this client targets.
func (c *Client) Addr() string { return c.addr }

// Close drops all idle connections. In-flight calls finish on their
// checked-out connections; new calls fail with ErrUnavailable.
func (c *Client) Close() {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.closed = true
	c.mu.Unlock()
	for _, cn := range idle {
		cn.Close()
	}
}

// checkout returns an idle connection or dials a new one.
func (c *Client) checkout() (*Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: client for %s closed", ErrUnavailable, c.addr)
	}
	if n := len(c.idle); n > 0 {
		cn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cn, nil
	}
	c.mu.Unlock()
	nc, err := c.dial(c.addr)
	if err != nil {
		return nil, err
	}
	return NewConn(nc), nil
}

// checkin returns a healthy connection to the idle pool.
func (c *Client) checkin(cn *Conn) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cn.Close()
		return
	}
	c.idle = append(c.idle, cn)
	c.mu.Unlock()
}

// roundTrip performs one framed request/response on cn.
func (cn *Conn) roundTrip(deadline time.Time, req []byte) ([]byte, error) {
	if err := cn.c.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if err := WriteFrame(cn.c, req); err != nil {
		return nil, err
	}
	resp, err := ReadFrame(cn.c, cn.buf)
	if err != nil {
		return nil, err
	}
	cn.buf = resp
	return resp, nil
}

// Call sends op with body and returns the response body as a
// caller-owned copy (the wire frame lands in the connection's reusable
// read buffer, which a concurrent Call may overwrite the instant the
// connection re-enters the idle pool). Transport failures are retried
// once on a fresh connection and then reported as ErrUnavailable;
// StatusWrongEpoch maps to ErrWrongEpoch; StatusError carries the
// worker's message.
func (c *Client) Call(op uint8, body []byte) ([]byte, error) {
	req := make([]byte, 0, 1+len(body))
	req = append(req, op)
	req = append(req, body...)

	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		cn, err := c.checkout()
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := cn.roundTrip(time.Now().Add(c.timeout), req)
		if err != nil {
			cn.Close()
			lastErr = err
			continue
		}
		if len(resp) < 1 {
			cn.Close()
			lastErr = errors.New("empty response frame")
			continue
		}
		status, rest := resp[0], resp[1:]
		switch status {
		case StatusOK:
			// Copy out of the read buffer BEFORE the checkin: once the
			// conn is back in the pool another goroutine can check it
			// out and overwrite the buffer under the caller's decode.
			out := append([]byte(nil), rest...)
			c.checkin(cn)
			return out, nil
		case StatusWrongEpoch:
			c.checkin(cn)
			return nil, ErrWrongEpoch
		default:
			// The worker answered; the call itself was rejected. The
			// connection is healthy — keep it — but do not retry: a
			// deterministic rejection will not heal on a second try.
			c.checkin(cn)
			return nil, fmt.Errorf("%w: %s: %s", ErrUnavailable, c.addr, string(rest))
		}
	}
	return nil, fmt.Errorf("%w: %s: %v", ErrUnavailable, c.addr, lastErr)
}

// Hello performs the identity handshake.
func (c *Client) Hello() (HelloResponse, error) {
	resp, err := c.Call(OpHello, nil)
	if err != nil {
		return HelloResponse{}, err
	}
	return DecodeHelloResponse(resp)
}

// Ping probes liveness.
func (c *Client) Ping() error {
	_, err := c.Call(OpPing, nil)
	return err
}
