//go:build amd64 && !noasm

#include "textflag.h"

// AVX2 scatter kernels. Shared structure: four products per iteration
// computed with one VMULPD (never FMA — the Go compiler does not fuse
// on amd64, and the scalar reference rounds the multiply before the
// add), then four scalar read-add-write steps in ascending entry order.
// The adds stay scalar because AVX2 has no scatter store; keeping them
// in entry order is what makes the kernel bit-identical to the scalar
// loop even though a blocked column may repeat its trash row in the
// padding tail. All float ops are VEX-encoded to avoid SSE/AVX
// transition stalls; VZEROUPPER before every RET.

// func scatterAXPYAVX2(dst []float64, rows []int32, vals []float64, x float64)
TEXT ·scatterAXPYAVX2(SB), NOSPLIT, $0-80
	MOVQ         dst_base+0(FP), DI
	MOVQ         rows_base+24(FP), SI
	MOVQ         rows_len+32(FP), CX
	MOVQ         vals_base+48(FP), DX
	VBROADCASTSD x+72(FP), Y0
	XORQ         AX, AX
	SHRQ         $2, CX       // quads; len is a multiple of 4 by contract
	JZ           done

loop:
	VMOVUPD (DX)(AX*8), Y1    // vals[k..k+3]
	VMULPD  Y0, Y1, Y1        // products, rounded before any add

	MOVLQSX (SI)(AX*4), R8    // rows[k..k+3], sign-extended int32
	MOVLQSX 4(SI)(AX*4), R9
	MOVLQSX 8(SI)(AX*4), R10
	MOVLQSX 12(SI)(AX*4), R11

	// Entry k: dst[r] += p0 (p0 = low lane of Y1).
	VMOVSD (DI)(R8*8), X2
	VADDSD X1, X2, X2
	VMOVSD X2, (DI)(R8*8)

	// Entry k+1: p1 = high half of the low 128 bits.
	VPERMILPD $1, X1, X3
	VMOVSD    (DI)(R9*8), X2
	VADDSD    X3, X2, X2
	VMOVSD    X2, (DI)(R9*8)

	// Entries k+2, k+3: upper 128 bits.
	VEXTRACTF128 $1, Y1, X4
	VMOVSD       (DI)(R10*8), X2
	VADDSD       X4, X2, X2
	VMOVSD       X2, (DI)(R10*8)

	VPERMILPD $1, X4, X5
	VMOVSD    (DI)(R11*8), X2
	VADDSD    X5, X2, X2
	VMOVSD    X2, (DI)(R11*8)

	ADDQ $4, AX
	DECQ CX
	JNZ  loop

done:
	VZEROUPPER
	RET

// func scatterAXPY32AVX2(dst []float64, rows []int32, vals []float32, x float64)
//
// Identical to scatterAXPYAVX2 except the four values load through
// VCVTPS2PD: float32 strips at half the value bandwidth, widened
// exactly to float64 before the multiply, accumulation in float64.
TEXT ·scatterAXPY32AVX2(SB), NOSPLIT, $0-80
	MOVQ         dst_base+0(FP), DI
	MOVQ         rows_base+24(FP), SI
	MOVQ         rows_len+32(FP), CX
	MOVQ         vals_base+48(FP), DX
	VBROADCASTSD x+72(FP), Y0
	XORQ         AX, AX
	SHRQ         $2, CX
	JZ           done32

loop32:
	VCVTPS2PD (DX)(AX*4), Y1  // widen vals[k..k+3] to float64 exactly
	VMULPD    Y0, Y1, Y1

	MOVLQSX (SI)(AX*4), R8
	MOVLQSX 4(SI)(AX*4), R9
	MOVLQSX 8(SI)(AX*4), R10
	MOVLQSX 12(SI)(AX*4), R11

	VMOVSD (DI)(R8*8), X2
	VADDSD X1, X2, X2
	VMOVSD X2, (DI)(R8*8)

	VPERMILPD $1, X1, X3
	VMOVSD    (DI)(R9*8), X2
	VADDSD    X3, X2, X2
	VMOVSD    X2, (DI)(R9*8)

	VEXTRACTF128 $1, Y1, X4
	VMOVSD       (DI)(R10*8), X2
	VADDSD       X4, X2, X2
	VMOVSD       X2, (DI)(R10*8)

	VPERMILPD $1, X4, X5
	VMOVSD    (DI)(R11*8), X2
	VADDSD    X5, X2, X2
	VMOVSD    X2, (DI)(R11*8)

	ADDQ $4, AX
	DECQ CX
	JNZ  loop32

done32:
	VZEROUPPER
	RET

// func scatterBlock8AVX2(dst []float64, rows []int32, vals []float64, x *[8]float64)
//
// The 8-lane batch kernel: one broadcast, two VMULPD and two VADDPD
// replace sixteen scalar float ops per entry. Lanes live at independent
// addresses (dst[r*8..r*8+7]), so vectorizing across lanes cannot
// reorder any accumulation.
TEXT ·scatterBlock8AVX2(SB), NOSPLIT, $0-80
	MOVQ    dst_base+0(FP), DI
	MOVQ    rows_base+24(FP), SI
	MOVQ    rows_len+32(FP), CX
	MOVQ    vals_base+48(FP), DX
	MOVQ    x+72(FP), BX
	VMOVUPD (BX), Y0          // x[0..3]
	VMOVUPD 32(BX), Y1        // x[4..7]
	XORQ    AX, AX
	TESTQ   CX, CX
	JZ      done8

loop8:
	MOVLQSX      (SI)(AX*4), R8
	SHLQ         $6, R8       // row * 8 lanes * 8 bytes
	VBROADCASTSD (DX)(AX*8), Y2

	VMULPD  Y0, Y2, Y3
	VADDPD  (DI)(R8*1), Y3, Y3
	VMOVUPD Y3, (DI)(R8*1)

	VMULPD  Y1, Y2, Y4
	VADDPD  32(DI)(R8*1), Y4, Y4
	VMOVUPD Y4, 32(DI)(R8*1)

	INCQ AX
	DECQ CX
	JNZ  loop8

done8:
	VZEROUPPER
	RET
