package shard

// The update path's concurrency contract: Apply is functional and
// epochs are published through an atomic pointer, so a query running
// concurrently with updates must observe exactly one epoch — its
// answer matches the pre- or post-update index it loaded, never a
// blend. The readers here hammer the pooled TopK and TopKBatch paths
// while a writer applies a chain of updates; under `go test -race` this
// is also the data-race proof for sharing untouched parts (and their
// lazily built memos and sync.Pools) across epochs.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"kdash/internal/reorder"
	"kdash/internal/testutil"
	"kdash/internal/topk"
)

func fingerprint(rs []topk.Result) string {
	s := ""
	for _, r := range rs {
		s += fmt.Sprintf("%d:%b;", r.Node, r.Score)
	}
	return s
}

func TestConcurrentApplyAndQueryEpochAtomicity(t *testing.T) {
	const (
		epochs  = 6
		readers = 6
		k       = 6
	)
	g := testutil.Clustered(200, 5, 31)
	sx, err := Build(g, Options{Shards: 5, Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	queries := []int{0, 37, 81, 144, 199}

	// Precompute the epoch chain and, per epoch, the exact expected
	// answer fingerprints for the fixed query set (single and batched).
	chain := []*ShardedIndex{sx}
	for e := 0; e < epochs; e++ {
		cur := chain[len(chain)-1]
		d := cur.Graph().NewDelta()
		from := queries[e%len(queries)]
		if err := d.AddEdge(from, (from+59)%cur.N(), 1.0+float64(e)); err != nil {
			t.Fatal(err)
		}
		next, _, err := cur.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, next)
	}
	type expected struct {
		single map[int]string
		batch  string
	}
	want := make(map[*ShardedIndex]expected, len(chain))
	for _, ix := range chain {
		exp := expected{single: map[int]string{}}
		for _, q := range queries {
			rs, _, err := ix.TopK(q, k)
			if err != nil {
				t.Fatal(err)
			}
			exp.single[q] = fingerprint(rs)
		}
		brs, _, err := ix.TopKBatch(queries, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, rs := range brs {
			exp.batch += fingerprint(rs) + "|"
		}
		want[ix] = exp
	}

	// Readers race the publisher. Each read loads the pointer once and
	// must reproduce exactly that epoch's precomputed answer.
	var ptr atomic.Pointer[ShardedIndex]
	ptr.Store(chain[0])
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ix := ptr.Load()
				exp := want[ix]
				q := queries[(w+i)%len(queries)]
				if w%2 == 0 {
					rs, _, err := ix.TopK(q, k)
					if err != nil {
						t.Errorf("reader %d: %v", w, err)
						return
					}
					if got := fingerprint(rs); got != exp.single[q] {
						t.Errorf("reader %d epoch %d q=%d: answer does not match its epoch\n got %s\nwant %s",
							w, ix.Epoch(), q, got, exp.single[q])
						return
					}
				} else {
					brs, _, err := ix.TopKBatch(queries, k)
					if err != nil {
						t.Errorf("reader %d: %v", w, err)
						return
					}
					got := ""
					for _, rs := range brs {
						got += fingerprint(rs) + "|"
					}
					if got != exp.batch {
						t.Errorf("reader %d epoch %d: batch answer does not match its epoch", w, ix.Epoch())
						return
					}
				}
			}
		}(w)
	}
	// Publish the chain while the readers run.
	for _, ix := range chain[1:] {
		ptr.Store(ix)
		// A little real query work between swaps keeps the pools hot.
		if _, _, err := ix.TopK(queries[0], k); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
