package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kdash/internal/core"
	"kdash/internal/gen"
	"kdash/internal/reorder"
	"kdash/internal/rwr"
)

func testHandler(t *testing.T) (*Handler, *core.Index) {
	t.Helper()
	g := gen.PlantedPartition(120, 4, 0.2, 0.01, 1)
	ix, err := core.BuildIndex(g, core.BuildOptions{Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return New(ix), ix
}

func get(t *testing.T, h http.Handler, url string) (*httptest.ResponseRecorder, map[string]json.RawMessage) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON from %s: %v (%q)", url, err, rec.Body.String())
	}
	return rec, body
}

func TestTopKEndpoint(t *testing.T) {
	h, ix := testHandler(t)
	rec, _ := get(t, h, "/topk?q=7&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		K       int `json:"k"`
		Results []struct {
			Node  int     `json:"node"`
			Score float64 `json:"score"`
		} `json:"results"`
		Stats struct {
			Visited int `json:"visited"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.K != 5 || len(resp.Results) != 5 {
		t.Fatalf("resp = %+v", resp)
	}
	want, _, err := ix.TopK(7, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if r.Node != want[i].Node {
			t.Errorf("rank %d: %d vs %d", i, r.Node, want[i].Node)
		}
	}
	if resp.Stats.Visited == 0 {
		t.Error("stats missing")
	}
}

func TestTopKExcludeParam(t *testing.T) {
	h, _ := testHandler(t)
	rec, _ := get(t, h, "/topk?q=7&k=5&exclude=7")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if strings.Contains(rec.Body.String(), `"node":7,`) {
		t.Errorf("excluded node in response: %s", rec.Body.String())
	}
}

func TestTopKValidation(t *testing.T) {
	h, _ := testHandler(t)
	for _, url := range []string{
		"/topk",                   // missing params
		"/topk?q=abc&k=5",         // bad q
		"/topk?q=1&k=zero",        // bad k
		"/topk?q=999&k=5",         // out of range
		"/topk?q=1&k=0",           // bad k value
		"/topk?q=1&k=5&exclude=x", // bad exclude
	} {
		rec, body := get(t, h, url)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, rec.Code)
		}
		if _, ok := body["error"]; !ok {
			t.Errorf("%s: no error field", url)
		}
	}
	req := httptest.NewRequest(http.MethodPost, "/topk?q=1&k=5", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /topk: status %d", rec.Code)
	}
}

func TestPersonalizedEndpoint(t *testing.T) {
	h, ix := testHandler(t)
	body := `{"seeds":{"3":1,"80":2},"k":4}`
	req := httptest.NewRequest(http.MethodPost, "/personalized", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Results []struct {
			Node int `json:"node"`
		} `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want, _, err := ix.TopKPersonalized(map[int]float64{3: 1, 80: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(want) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(want))
	}
	for i := range want {
		if resp.Results[i].Node != want[i].Node {
			t.Errorf("rank %d: %d vs %d", i, resp.Results[i].Node, want[i].Node)
		}
	}
}

func TestPersonalizedValidation(t *testing.T) {
	h, _ := testHandler(t)
	for _, body := range []string{
		`not json`,
		`{"seeds":{"x":1},"k":3}`,
		`{"seeds":{},"k":3}`,
		`{"seeds":{"1":1},"k":0}`,
	} {
		req := httptest.NewRequest(http.MethodPost, "/personalized", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, rec.Code)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/personalized", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /personalized: status %d", rec.Code)
	}
}

func TestProximityEndpoint(t *testing.T) {
	h, ix := testHandler(t)
	g := 7
	want, err := ix.Proximity(g, 9)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := get(t, h, fmt.Sprintf("/proximity?q=%d&u=9", g))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp struct {
		Proximity float64 `json:"proximity"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Proximity != want {
		t.Errorf("proximity %v, want %v", resp.Proximity, want)
	}
	rec, _ = get(t, h, "/proximity?q=7")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing u: status %d", rec.Code)
	}
}

func TestHealthEndpoint(t *testing.T) {
	h, ix := testHandler(t)
	rec, _ := get(t, h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp struct {
		Status  string  `json:"status"`
		Nodes   int     `json:"nodes"`
		Restart float64 `json:"restart"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || resp.Nodes != ix.N() || resp.Restart != rwr.DefaultRestart {
		t.Errorf("health = %+v", resp)
	}
}

func TestAgainstLiveServer(t *testing.T) {
	h, _ := testHandler(t)
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/topk?q=0&k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live server status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
}
