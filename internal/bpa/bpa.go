// Package bpa implements the Basic Push Algorithm of Gupta, Pathak &
// Chakrabarti (WWW 2008) for top-k Personalized PageRank / RWR queries,
// the second baseline in the paper's evaluation.
//
// The algorithm is bookmark-colouring push: it maintains a lower-bound
// estimate vector and a residual vector, repeatedly "pushing" the largest
// residual — settling a c-fraction at its node and spreading the rest to
// out-neighbours. Nodes designated as hubs have their exact proximity
// vectors precomputed; pushing a hub shortcut-settles its entire residual
// at once, which is what makes more hubs faster (the paper's Figure 4).
//
// The true proximity of any node v lies in
//
//	[ est[v], est[v] + totalResidual ]
//
// so returning every node whose upper bound reaches the K-th best lower
// bound guarantees recall 1: the answer set can be larger than K but never
// misses a true top-k node (the property the paper cites for choosing BPA
// over Avrachenkov et al.).
package bpa

import (
	"container/heap"
	"fmt"
	"sort"

	"kdash/internal/graph"
	"kdash/internal/rwr"
	"kdash/internal/sparse"
	"kdash/internal/topk"
)

// Options configures index construction.
type Options struct {
	// Hubs is the number of hub nodes (highest degree first) whose exact
	// proximity vectors are precomputed. The paper sweeps 100..1000.
	Hubs int
	// Restart is the restart probability c (0 selects 0.95).
	Restart float64
	// Epsilon is the residual-mass stopping threshold for queries
	// (0 selects 1e-6). Smaller is slower and more precise.
	Epsilon float64
}

func (o Options) withDefaults() Options {
	if o.Restart == 0 {
		o.Restart = rwr.DefaultRestart
	}
	if o.Epsilon == 0 {
		o.Epsilon = 1e-6
	}
	return o
}

// Index is a prebuilt BPA structure. Safe for concurrent queries.
type Index struct {
	n      int
	c      float64
	eps    float64
	a      *sparse.CSC // column-normalised adjacency
	isHub  []bool
	hubVec map[int][]float64 // exact proximity vector per hub
}

// New precomputes hub vectors for the graph.
func New(g *graph.Graph, opt Options) (*Index, error) {
	opt = opt.withDefaults()
	if g.N() == 0 {
		return nil, fmt.Errorf("bpa: empty graph")
	}
	if opt.Hubs < 0 || opt.Hubs > g.N() {
		return nil, fmt.Errorf("bpa: hub count %d outside [0,%d]", opt.Hubs, g.N())
	}
	if opt.Restart <= 0 || opt.Restart >= 1 {
		return nil, fmt.Errorf("bpa: restart probability %v outside (0,1)", opt.Restart)
	}
	ix := &Index{
		n:      g.N(),
		c:      opt.Restart,
		eps:    opt.Epsilon,
		a:      g.ColumnNormalized(),
		isHub:  make([]bool, g.N()),
		hubVec: map[int][]float64{},
	}
	// Highest-degree nodes become hubs.
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	for _, h := range order[:opt.Hubs] {
		p, _, err := rwr.Iterative(ix.a, h, ix.c, 1e-12, rwr.DefaultMaxIter)
		if err != nil {
			return nil, fmt.Errorf("bpa: precomputing hub %d: %w", h, err)
		}
		ix.isHub[h] = true
		ix.hubVec[h] = p
	}
	return ix, nil
}

// N reports the number of indexed nodes.
func (ix *Index) N() int { return ix.n }

// Hubs reports the number of hub vectors held.
func (ix *Index) Hubs() int { return len(ix.hubVec) }

// Stats reports per-query work.
type Stats struct {
	Pushes   int // total push operations
	HubHits  int // pushes resolved via a precomputed hub vector
	Residual float64
}

// TopK returns an answer set guaranteed to contain the exact top-k nodes
// (recall 1). The set is sorted by descending estimated proximity and can
// contain more than k nodes when the push bounds cannot separate ties;
// callers comparing against exact algorithms typically take the first k.
func (ix *Index) TopK(q, k int) ([]topk.Result, Stats, error) {
	var stats Stats
	if q < 0 || q >= ix.n {
		return nil, stats, fmt.Errorf("bpa: query node %d outside [0,%d)", q, ix.n)
	}
	if k <= 0 {
		return nil, stats, fmt.Errorf("bpa: k must be positive, got %d", k)
	}
	est := make([]float64, ix.n)
	res := make([]float64, ix.n)
	res[q] = 1
	total := 1.0

	pq := &residQueue{}
	heap.Init(pq)
	heap.Push(pq, residEntry{q, 1})

	// Cap pushes defensively; the residual shrinks geometrically so this
	// is never reached in practice.
	maxPushes := 200 * ix.n
	for total > ix.eps && pq.Len() > 0 && stats.Pushes < maxPushes {
		top := heap.Pop(pq).(residEntry)
		v := top.node
		r := res[v]
		if r <= 0 || top.resid < r { // stale entry
			if r > 0 {
				heap.Push(pq, residEntry{v, r})
			}
			continue
		}
		stats.Pushes++
		res[v] = 0
		total -= r
		if hub, ok := ix.hubVec[v]; ok {
			// Hub shortcut: the entire residual settles exactly.
			stats.HubHits++
			for u, pv := range hub {
				if pv != 0 {
					est[u] += r * pv
				}
			}
			continue
		}
		est[v] += ix.c * r
		spread := (1 - ix.c) * r
		for i := ix.a.ColPtr[v]; i < ix.a.ColPtr[v+1]; i++ {
			u := ix.a.RowIdx[i]
			add := spread * ix.a.Val[i]
			res[u] += add
			total += add
			heap.Push(pq, residEntry{u, res[u]})
		}
	}
	if total < 0 {
		total = 0 // floating-point drift; residual mass is conceptually >= 0
	}
	stats.Residual = total

	// Answer set: lower bounds are est, upper bounds est + total. Keep
	// every node whose upper bound reaches the k-th best lower bound.
	h := topk.New(k)
	for v, e := range est {
		h.Push(v, e)
	}
	kth := h.Threshold()
	if h.Len() < k {
		kth = 0
	}
	var out []topk.Result
	for v, e := range est {
		if e > 0 && e+total >= kth {
			out = append(out, topk.Result{Node: v, Score: e})
		}
	}
	topk.SortResults(out)
	return out, stats, nil
}

type residEntry struct {
	node  int
	resid float64
}

type residQueue []residEntry

func (q residQueue) Len() int            { return len(q) }
func (q residQueue) Less(i, j int) bool  { return q[i].resid > q[j].resid }
func (q residQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *residQueue) Push(x interface{}) { *q = append(*q, x.(residEntry)) }
func (q *residQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
