package shard

// Tests for the pooled single-query fast path: per-shard sparse solves
// must be bit-identical to the dense reference across shard counts, the
// pooled state must come back clean no matter what ran before, and the
// steady-state query path must allocate only its result set.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"kdash/internal/gen"
	"kdash/internal/rwr"
	"kdash/internal/topk"
)

// TestShardSparseSolveMatchesDense pins the single-lane sparse solver
// bit-identical to core.Index.Solve on every shard of sharded indexes
// across shard counts — including 1-shard (no ghost sink) and shards
// with sinks — over restart-style and residual-style right-hand sides.
func TestShardSparseSolveMatchesDense(t *testing.T) {
	g := gen.PlantedPartition(240, 4, 0.2, 0.03, 3)
	for _, shards := range []int{1, 3, 6} {
		sx := buildSharded(t, g, shards, rwr.DefaultRestart)
		rng := rand.New(rand.NewSource(int64(shards)))
		for si, p := range sx.parts {
			n := sx.partLen(si)
			s := p.ix.NewSparseSolver()
			for trial := 0; trial < 4; trial++ {
				r := make([]float64, n)
				if trial%2 == 0 {
					r[rng.Intn(n)] = sx.c
				} else {
					for i := 0; i < 5; i++ {
						r[rng.Intn(n)] += rng.Float64()
					}
				}
				var idx []int
				var val []float64
				for i, v := range r {
					if v != 0 {
						idx = append(idx, i)
						val = append(val, v)
					}
				}
				got, sup, err := s.SolveSparse(idx, val)
				if err != nil {
					t.Fatal(err)
				}
				want, err := p.ix.Solve(r)
				if err != nil {
					t.Fatal(err)
				}
				onSup := make([]bool, n)
				if sup == nil {
					for i := range onSup {
						onSup[i] = true
					}
				} else {
					for _, i := range sup {
						onSup[i] = true
					}
				}
				for i := 0; i < n; i++ {
					if onSup[i] {
						if got[i] != want[i] {
							t.Fatalf("shards=%d si=%d trial=%d row %d: sparse %v != dense %v", shards, si, trial, i, got[i], want[i])
						}
					} else if want[i] != 0 {
						t.Fatalf("shards=%d si=%d trial=%d row %d outside support, dense %v", shards, si, trial, i, want[i])
					}
				}
			}
		}
	}
}

// TestPooledStateReuseIsClean runs every query shape in interleaved
// orders and asserts answers are bit-identical to a first pass: any
// entry, mark or support list surviving a putPushState shows up as a
// wrong answer here.
func TestPooledStateReuseIsClean(t *testing.T) {
	g := gen.PlantedPartition(200, 4, 0.2, 0.03, 11)
	sx := buildSharded(t, g, 4, rwr.DefaultRestart)
	const k = 8
	first := make(map[int][]topk.Result)
	for q := 0; q < 24; q++ {
		rs, _, err := sx.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		first[q] = rs
	}
	// Dirty the pooled state with the other query shapes, then re-ask in
	// reverse order.
	if _, err := sx.ProximityVector(13); err != nil {
		t.Fatal(err)
	}
	if _, err := sx.Proximity(3, 190); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sx.TopKPersonalized(map[int]float64{1: 1, 150: 2}, k); err != nil {
		t.Fatal(err)
	}
	for q := 23; q >= 0; q-- {
		rs, _, err := sx.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != len(first[q]) {
			t.Fatalf("q=%d: %d results on reuse, %d first", q, len(rs), len(first[q]))
		}
		for i := range rs {
			if rs[i] != first[q][i] {
				t.Fatalf("q=%d rank %d: %+v on reuse, %+v first", q, i, rs[i], first[q][i])
			}
		}
	}
}

// TestConcurrentQueriesArePoolSafe answers a fixed query set from many
// goroutines and asserts bit-identical agreement with the sequential
// answers — the pool must hand every request a private, clean state.
// Run under -race this is the load-bearing check for the shared pool.
func TestConcurrentQueriesArePoolSafe(t *testing.T) {
	g := gen.PlantedPartition(180, 3, 0.2, 0.03, 9)
	sx := buildSharded(t, g, 4, rwr.DefaultRestart)
	const k = 6
	want := make([][]topk.Result, 30)
	for q := range want {
		rs, _, err := sx.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = rs
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				q := (w*7 + rep) % len(want)
				rs, _, err := sx.TopK(q, k)
				if err != nil {
					errs <- err
					return
				}
				for i := range rs {
					if rs[i] != want[q][i] {
						errs <- fmt.Errorf("q=%d rank %d: concurrent %+v != sequential %+v", q, i, rs[i], want[q][i])
						return
					}
				}
				if _, err := sx.Proximity(q, (q*13+5)%sx.N()); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTopKSteadyStateAllocs is the allocation regression for the pooled
// single-query path: at steady state a TopK allocates its O(k) result
// set (heap + results slice) and nothing sized by the graph.
func TestTopKSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; counts are asserted in the regular build")
	}
	g := gen.PlantedPartition(400, 4, 0.2, 0.02, 5)
	sx := buildSharded(t, g, 4, rwr.DefaultRestart)
	// Warm the pool and every lazily built structure (transposed factors,
	// per-shard vectors, solver workspaces).
	for q := 0; q < 8; q++ {
		if _, _, err := sx.TopK(q, 10); err != nil {
			t.Fatal(err)
		}
	}
	q := 0
	avg := testing.AllocsPerRun(300, func() {
		if _, _, err := sx.TopK(q%sx.N(), 10); err != nil {
			t.Fatal(err)
		}
		q++
	})
	// 3 allocations in the result path (heap struct, heap slice, sorted
	// results); the slack absorbs a pool refill if GC strikes mid-run.
	if avg > 8 {
		t.Errorf("steady-state TopK allocates %.2f objects/query, want O(k) result set only (<= 8)", avg)
	}
}
