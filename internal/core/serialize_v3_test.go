package core

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kdash/internal/gen"
	"kdash/internal/mmapio"
	"kdash/internal/reorder"
)

// saveToFile writes the index in v3 form to a temp file.
func saveToFile(t *testing.T, ix *Index) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "index.idx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// assertSameAnswers fails unless both indexes answer a query battery
// bit-identically.
func assertSameAnswers(t *testing.T, want, got *Index, label string) {
	t.Helper()
	for _, q := range []int{0, want.N() / 3, want.N() - 1} {
		a, _, err := want.TopK(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := got.TopK(q, 8)
		if err != nil {
			t.Fatalf("%s: TopK: %v", label, err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s q=%d: %d vs %d results", label, q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s q=%d rank %d: %v vs %v", label, q, i, a[i], b[i])
			}
		}
		va, err := want.ProximityVector(q)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := got.ProximityVector(q)
		if err != nil {
			t.Fatalf("%s: ProximityVector: %v", label, err)
		}
		for i := range va {
			if math.Float64bits(va[i]) != math.Float64bits(vb[i]) {
				t.Fatalf("%s q=%d: proximity[%d] differs: %v vs %v", label, q, i, va[i], vb[i])
			}
		}
	}
}

// TestV3LoadPathsBitIdentical pins the acceptance contract: the same
// index loaded through the legacy stream, the v3 stream, a v3 copy-mode
// open and (where supported) a v3 mmap open answers every query with
// identical bits.
func TestV3LoadPathsBitIdentical(t *testing.T) {
	g := gen.PlantedPartition(150, 5, 0.2, 0.01, 3)
	built, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	var legacy bytes.Buffer
	if err := built.SaveLegacy(&legacy); err != nil {
		t.Fatal(err)
	}
	fromLegacy, err := LoadIndex(&legacy)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, built, fromLegacy, "legacy stream")

	var v3 bytes.Buffer
	if err := built.Save(&v3); err != nil {
		t.Fatal(err)
	}
	fromStream, err := LoadIndex(&v3)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, built, fromStream, "v3 stream")

	path := saveToFile(t, built)
	fromCopy, err := OpenIndexFile(path, mmapio.ModeCopy)
	if err != nil {
		t.Fatal(err)
	}
	if fromCopy.Mapped() {
		t.Fatal("ModeCopy produced a mapped index")
	}
	assertSameAnswers(t, built, fromCopy, "v3 copy")
	if fromCopy.MappedBytes() != 0 {
		t.Fatalf("copy-mode index reports %d mapped bytes, want 0", fromCopy.MappedBytes())
	}

	if mmapio.MmapSupported() && mmapio.CanZeroCopy() {
		fromMmap, err := OpenIndexFile(path, mmapio.ModeMmap)
		if err != nil {
			t.Fatal(err)
		}
		if !fromMmap.Mapped() {
			t.Fatal("ModeMmap produced an unmapped index")
		}
		if fromMmap.MappedBytes() == 0 {
			t.Fatal("mapped index reports no mapped bytes")
		}
		assertSameAnswers(t, built, fromMmap, "v3 mmap")
		if err := fromMmap.VerifyFile(); err != nil {
			t.Fatalf("VerifyFile: %v", err)
		}
		if err := fromMmap.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

// TestOpenIndexFileLegacyFallback feeds OpenIndexFile a legacy v1 file:
// whatever the requested mode, it must load (unmapped) and answer.
func TestOpenIndexFileLegacyFallback(t *testing.T) {
	g := gen.ErdosRenyi(40, 160, 9)
	built, err := BuildIndex(g, BuildOptions{Reorder: reorder.Degree, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "legacy.idx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := built.SaveLegacy(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	for _, mode := range []mmapio.Mode{mmapio.ModeAuto, mmapio.ModeCopy} {
		ix, err := OpenIndexFile(path, mode)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if ix.Mapped() {
			t.Fatalf("mode %v: legacy file claims to be mapped", mode)
		}
		assertSameAnswers(t, built, ix, "legacy fallback")
	}
}

// TestMmapQueriesNeverWriteFactors is the mutation-discipline
// enforcement test: the index's arrays alias a PROT_READ mapping, so if
// any query path wrote a factor array the process would fault, not just
// fail an assertion. It drives every query surface, concurrently, to
// flush out writes hiding behind pooling.
func TestMmapQueriesNeverWriteFactors(t *testing.T) {
	if !mmapio.MmapSupported() || !mmapio.CanZeroCopy() {
		t.Skip("mmap unsupported on this platform")
	}
	g := gen.PlantedPartition(200, 4, 0.15, 0.02, 11)
	built, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := OpenIndexFile(saveToFile(t, built), mmapio.ModeMmap)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for q := w; q < ix.N(); q += 4 {
				if _, _, err := ix.TopK(q, 5); err != nil {
					done <- err
					return
				}
				if _, err := ix.ProximityVector(q); err != nil {
					done <- err
					return
				}
				if _, err := ix.Proximity(q, (q+7)%ix.N()); err != nil {
					done <- err
					return
				}
			}
			if _, _, err := ix.TopKBatch([]int{w, w + 4, w + 8}, 4); err != nil {
				done <- err
				return
			}
			_, _, err := ix.TopKPersonalized(map[int]float64{w: 1, w + 1: 2}, 3)
			done <- err
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	r := make([]float64, ix.N())
	r[3] = 1
	if _, err := ix.Solve(r); err != nil {
		t.Fatal(err)
	}
}

// TestV3CorruptSections exercises core-level rejection of structurally
// broken containers (mmapio-level corruption — truncated tables,
// misaligned offsets, checksums — has its own tests in
// internal/mmapio).
func TestV3CorruptSections(t *testing.T) {
	g := gen.ErdosRenyi(25, 80, 5)
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Degree, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	type mutate func(w *mmapio.Writer)
	full := func(w *mmapio.Writer, skip uint32, meta []byte) {
		if skip != secMeta {
			if meta == nil {
				meta = ix.metaBytes()
			}
			w.AddBytes(secMeta, meta)
		}
		add := func(id uint32, xs []int) {
			if id != skip {
				w.AddInts(id, xs)
			}
		}
		addF := func(id uint32, xs []float64) {
			if id != skip {
				w.AddFloats(id, xs)
			}
		}
		add(secPerm, ix.perm)
		add(secInvPerm, ix.inv)
		add(secAColPtr, ix.a.ColPtr)
		add(secARowIdx, ix.a.RowIdx)
		addF(secAVal, ix.a.Val)
		add(secLinvColPtr, ix.linv.ColPtr)
		add(secLinvRowIdx, ix.linv.RowIdx)
		addF(secLinvVal, ix.linv.Val)
		add(secUinvRowPtr, ix.uinv.RowPtr)
		add(secUinvColIdx, ix.uinv.ColIdx)
		addF(secUinvVal, ix.uinv.Val)
		addF(secAmaxCol, ix.amaxCol)
		addF(secSelfA, ix.selfA)
	}
	badMeta := ix.metaBytes()
	copy(badMeta, "WRONGTAG")
	hugeN := ix.metaBytes()
	hugeN[8] = 0xff // n = garbage
	hugeN[15] = 0xff
	cases := []struct {
		name string
		mk   mutate
		want string
	}{
		{"missing meta", func(w *mmapio.Writer) { full(w, secMeta, nil) }, "missing section"},
		{"bad meta tag", func(w *mmapio.Writer) { full(w, 0, badMeta) }, "bad meta"},
		{"absurd n", func(w *mmapio.Writer) { full(w, 0, hugeN) }, "corrupt index"},
		{"missing perm", func(w *mmapio.Writer) { full(w, secPerm, nil) }, "missing section"},
		{"missing factor values", func(w *mmapio.Writer) { full(w, secUinvVal, nil) }, "missing section"},
		{"short perm", func(w *mmapio.Writer) {
			full(w, secPerm, nil)
			w.AddInts(secPerm, ix.perm[:len(ix.perm)-1])
		}, "per-node sections"},
		{"broken colptr", func(w *mmapio.Writer) {
			full(w, secLinvColPtr, nil)
			bad := append([]int(nil), ix.linv.ColPtr...)
			bad[len(bad)-1]++ // endpoint disagrees with the index array
			w.AddInts(secLinvColPtr, bad)
		}, "L-inverse pointers"},
		{"out-of-range row index", func(w *mmapio.Writer) {
			full(w, secLinvRowIdx, nil)
			bad := append([]int(nil), ix.linv.RowIdx...)
			bad[0] = ix.n + 5
			w.AddInts(secLinvRowIdx, bad)
		}, "row index"},
		{"non-permutation", func(w *mmapio.Writer) {
			full(w, secPerm, nil)
			bad := append([]int(nil), ix.perm...)
			bad[0] = bad[1]
			w.AddInts(secPerm, bad)
		}, "not a permutation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := mmapio.NewWriter()
			tc.mk(w)
			var buf bytes.Buffer
			if _, err := w.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			_, err := LoadIndex(bytes.NewReader(buf.Bytes()))
			if err == nil {
				t.Fatal("corrupt container accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// addBlocked writes the index's blocked strip sections (15-22) as Save
// does, with room for a test to corrupt one strip first.
func addBlocked(t *testing.T, w *mmapio.Writer, ix *Index, mutateRows func([]int32)) {
	t.Helper()
	blkL, blkU := ix.inverseFactors().Blocked()
	if blkL == nil || blkU == nil {
		t.Fatal("test index has no blocked strips")
	}
	rows := append([]int32(nil), blkL.Rows...)
	if mutateRows != nil {
		mutateRows(rows)
	}
	w.AddInt32s(secBlkLColPtr, blkL.ColPtr)
	w.AddInt32s(secBlkLColCnt, blkL.ColCnt)
	w.AddInt32s(secBlkLRows, rows)
	w.AddFloats(secBlkLVals, blkL.Vals)
	w.AddInt32s(secBlkUColPtr, blkU.ColPtr)
	w.AddInt32s(secBlkUColCnt, blkU.ColCnt)
	w.AddInt32s(secBlkURows, blkU.Rows)
	w.AddFloats(secBlkUVals, blkU.Vals)
}

// TestV3BlockedStripsRoundTrip pins that Save persists the kernel-ready
// blocked strips and a load installs them verbatim — same offsets, rows
// and value bits as the in-memory build — so an opened index never
// re-pads its factors.
func TestV3BlockedStripsRoundTrip(t *testing.T) {
	g := gen.PlantedPartition(120, 4, 0.2, 0.01, 21)
	built, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := built.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.loadedBlkL == nil || loaded.loadedBlkU == nil {
		t.Fatal("loaded index carries no pre-built blocked strips")
	}
	wantL, wantU := built.inverseFactors().Blocked()
	for _, pair := range []struct {
		name      string
		want, got interface{ NNZ() int }
	}{{"L", wantL, loaded.loadedBlkL}, {"U", wantU, loaded.loadedBlkU}} {
		if pair.want.NNZ() != pair.got.NNZ() {
			t.Fatalf("blocked %s: %d entries saved, %d loaded", pair.name, pair.want.NNZ(), pair.got.NNZ())
		}
	}
	for i, v := range wantL.Vals {
		if math.Float64bits(v) != math.Float64bits(loaded.loadedBlkL.Vals[i]) ||
			wantL.Rows[i] != loaded.loadedBlkL.Rows[i] {
			t.Fatalf("blocked L entry %d differs after round trip", i)
		}
	}
	for i, v := range wantU.Vals {
		if math.Float64bits(v) != math.Float64bits(loaded.loadedBlkU.Vals[i]) ||
			wantU.Rows[i] != loaded.loadedBlkU.Rows[i] {
			t.Fatalf("blocked U entry %d differs after round trip", i)
		}
	}
	assertSameAnswers(t, built, loaded, "blocked round trip")
}

// TestV3PreStripsFileLoads pins backward compatibility: a v3 file
// written before the blocked sections existed (sections 1-14 only)
// still loads, reports no installed strips, and answers bit-identically
// — the first solve builds the strips in memory instead.
func TestV3PreStripsFileLoads(t *testing.T) {
	g := gen.ErdosRenyi(60, 240, 31)
	built, err := BuildIndex(g, BuildOptions{Reorder: reorder.Degree, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	w := mmapio.NewWriter()
	w.AddBytes(secMeta, built.metaBytes())
	w.AddInts(secPerm, built.perm)
	w.AddInts(secInvPerm, built.inv)
	w.AddInts(secAColPtr, built.a.ColPtr)
	w.AddInts(secARowIdx, built.a.RowIdx)
	w.AddFloats(secAVal, built.a.Val)
	w.AddInts(secLinvColPtr, built.linv.ColPtr)
	w.AddInts(secLinvRowIdx, built.linv.RowIdx)
	w.AddFloats(secLinvVal, built.linv.Val)
	w.AddInts(secUinvRowPtr, built.uinv.RowPtr)
	w.AddInts(secUinvColIdx, built.uinv.ColIdx)
	w.AddFloats(secUinvVal, built.uinv.Val)
	w.AddFloats(secAmaxCol, built.amaxCol)
	w.AddFloats(secSelfA, built.selfA)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("pre-strips v3 file rejected: %v", err)
	}
	if loaded.loadedBlkL != nil || loaded.loadedBlkU != nil {
		t.Fatal("pre-strips file produced installed strips")
	}
	assertSameAnswers(t, built, loaded, "pre-strips v3")
}

// TestV3CorruptBlockedStrips pins that a copy-mode load range-checks
// the blocked strips: a row index pointing outside the destination
// vectors must be an error at load time, never an unchecked assembly
// scatter at query time.
func TestV3CorruptBlockedStrips(t *testing.T) {
	g := gen.ErdosRenyi(25, 80, 7)
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Degree, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	w := mmapio.NewWriter()
	w.AddBytes(secMeta, ix.metaBytes())
	w.AddInts(secPerm, ix.perm)
	w.AddInts(secInvPerm, ix.inv)
	w.AddInts(secAColPtr, ix.a.ColPtr)
	w.AddInts(secARowIdx, ix.a.RowIdx)
	w.AddFloats(secAVal, ix.a.Val)
	w.AddInts(secLinvColPtr, ix.linv.ColPtr)
	w.AddInts(secLinvRowIdx, ix.linv.RowIdx)
	w.AddFloats(secLinvVal, ix.linv.Val)
	w.AddInts(secUinvRowPtr, ix.uinv.RowPtr)
	w.AddInts(secUinvColIdx, ix.uinv.ColIdx)
	w.AddFloats(secUinvVal, ix.uinv.Val)
	w.AddFloats(secAmaxCol, ix.amaxCol)
	w.AddFloats(secSelfA, ix.selfA)
	addBlocked(t, w, ix, func(rows []int32) { rows[0] = int32(ix.n) + 7 })
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("corrupt blocked strip accepted")
	} else if !strings.Contains(err.Error(), "blocked") {
		t.Fatalf("error %q does not mention the blocked strips", err)
	}
}
