package blin

import (
	"math"
	"testing"

	"kdash/internal/gen"
	"kdash/internal/rwr"
	"kdash/internal/topk"
)

// precision computes |top-k ∩ true top-k| / k, the paper's accuracy
// metric (Section 6.2).
func precision(got, want []topk.Result) float64 {
	wantSet := map[int]bool{}
	for _, r := range want {
		wantSet[r.Node] = true
	}
	hit := 0
	for _, r := range got {
		if wantSet[r.Node] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

func TestNBLinFullRankIsExact(t *testing.T) {
	// With rank = n the SVD is exact and Woodbury gives the true inverse,
	// so the proximity vector must match the iterative method closely.
	g := gen.ErdosRenyi(40, 160, 1)
	a := g.ColumnNormalized()
	nb, err := NewNBLin(g, Options{Rank: 40, Seed: 2, PowerIters: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{0, 13, 39} {
		want, _, err := rwr.Iterative(a, q, 0.95, 1e-14, 100000)
		if err != nil {
			t.Fatal(err)
		}
		got, err := nb.ProximityVector(q)
		if err != nil {
			t.Fatal(err)
		}
		for u := range want {
			if math.Abs(got[u]-want[u]) > 1e-6 {
				t.Fatalf("q=%d: p[%d] = %v, want %v", q, u, got[u], want[u])
			}
		}
	}
}

func TestNBLinPrecisionImprovesWithRank(t *testing.T) {
	g := gen.PlantedPartition(150, 5, 0.2, 0.01, 3)
	a := g.ColumnNormalized()
	q, k := 7, 10
	want, err := rwr.TopK(a, q, k, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	prec := func(rank int) float64 {
		nb, err := NewNBLin(g, Options{Rank: rank, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		got, err := nb.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		return precision(got, want)
	}
	low, high := prec(5), prec(120)
	if high < low {
		t.Errorf("precision should not degrade with rank: rank5=%v rank120=%v", low, high)
	}
	if high < 0.9 {
		t.Errorf("near-full rank precision %v should be high", high)
	}
}

func TestNBLinLowRankImperfect(t *testing.T) {
	// The whole point of the paper: aggressive low rank loses accuracy on
	// clustered graphs. Average precision over queries must drop below 1.
	g := gen.PlantedPartition(200, 8, 0.25, 0.005, 5)
	a := g.ColumnNormalized()
	nb, err := NewNBLin(g, Options{Rank: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	k := 10
	total := 0.0
	queries := []int{0, 25, 50, 75, 100, 125, 150, 175}
	for _, q := range queries {
		want, err := rwr.TopK(a, q, k, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		got, err := nb.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		total += precision(got, want)
	}
	if avg := total / float64(len(queries)); avg > 0.95 {
		t.Errorf("rank-4 NB_LIN should not be near-exact on a clustered graph, avg precision %v", avg)
	}
}

func TestBLinFullSetupIsAccurate(t *testing.T) {
	// B_LIN with exact blocks and a generous rank for the cross part
	// approaches the exact answer.
	g := gen.PlantedPartition(120, 4, 0.25, 0.01, 7)
	a := g.ColumnNormalized()
	bl, err := NewBLin(g, Options{Rank: 100, Seed: 8, PowerIters: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := 11
	want, _, err := rwr.Iterative(a, q, 0.95, 1e-14, 100000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bl.ProximityVector(q)
	if err != nil {
		t.Fatal(err)
	}
	for u := range want {
		if math.Abs(got[u]-want[u]) > 1e-5 {
			t.Fatalf("p[%d] = %v, want %v", u, got[u], want[u])
		}
	}
}

func TestBLinBetterThanNBLinAtEqualRank(t *testing.T) {
	// On a strongly clustered graph the block-exact part lets B_LIN beat
	// NB_LIN at the same (small) rank, the motivation Tong et al. give.
	g := gen.PlantedPartition(200, 5, 0.3, 0.003, 9)
	a := g.ColumnNormalized()
	k, rank := 10, 6
	nb, err := NewNBLin(g, Options{Rank: rank, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	bl, err := NewBLin(g, Options{Rank: rank, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	var pn, pb float64
	queries := []int{3, 43, 83, 123, 163}
	for _, q := range queries {
		want, err := rwr.TopK(a, q, k, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		gn, err := nb.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := bl.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		pn += precision(gn, want)
		pb += precision(gb, want)
	}
	if pb < pn {
		t.Errorf("B_LIN precision %v should be at least NB_LIN's %v at rank %d", pb, pn, rank)
	}
}

func TestBLinChopRespectsMaxBlock(t *testing.T) {
	g := gen.PlantedPartition(150, 2, 0.3, 0.01, 11) // two big communities
	bl, err := NewBLin(g, Options{Rank: 10, Seed: 12, MaxBlock: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, blk := range bl.blocks {
		if len(blk.nodes) > 30 {
			t.Errorf("block size %d exceeds MaxBlock 30", len(blk.nodes))
		}
	}
}

func TestOptionValidation(t *testing.T) {
	g := gen.ErdosRenyi(20, 60, 13)
	if _, err := NewNBLin(g, Options{Rank: 0}); err == nil {
		t.Error("expected rank error")
	}
	if _, err := NewNBLin(g, Options{Rank: 5, Restart: 2}); err == nil {
		t.Error("expected restart error")
	}
	if _, err := NewBLin(g, Options{Rank: 0}); err == nil {
		t.Error("expected rank error (B_LIN)")
	}
	nb, err := NewNBLin(g, Options{Rank: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nb.ProximityVector(25); err == nil {
		t.Error("expected out-of-range query error")
	}
	bl, err := NewBLin(g, Options{Rank: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bl.TopK(-1, 3); err == nil {
		t.Error("expected out-of-range query error (B_LIN)")
	}
}

func TestQueryNodeRanksFirstUsually(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 14)
	nb, err := NewNBLin(g, Options{Rank: 60, Seed: 15, PowerIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := nb.TopK(31, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Node != 31 {
		t.Errorf("query should rank first at a healthy rank, got %v", rs)
	}
}
