//go:build !linux

package mmapio

import "fmt"

// mmapSupported gates ModeMmap; non-Linux builds always copy, so the
// format stays fully portable (ModeAuto silently selects ModeCopy).
const mmapSupported = false

// openMmap is unreachable behind the mmapSupported gate but keeps the
// package compiling on every platform.
func openMmap(path string) (*File, error) {
	return nil, fmt.Errorf("mmapio: mmap unsupported on this platform")
}
