package lu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kdash/internal/gen"
	"kdash/internal/rwr"
	"kdash/internal/sparse"
)

// randomW builds W = I - (1-c)A for a random graph's normalised adjacency.
func randomW(seed int64, n, m int, c float64) (*sparse.CSC, *sparse.CSC) {
	g := gen.ErdosRenyi(n, m, seed)
	a := g.ColumnNormalized()
	return BuildW(a, c), a
}

func matMulDense(a, b [][]float64) [][]float64 {
	n := len(a)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for k := 0; k < n; k++ {
			if a[i][k] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out[i][j] += a[i][k] * b[k][j]
			}
		}
	}
	return out
}

func TestBuildW(t *testing.T) {
	_, a := randomW(1, 10, 30, 0.9)
	w := BuildW(a, 0.9)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			want := -(1 - 0.9) * a.At(i, j)
			if i == j {
				want += 1
			}
			if math.Abs(w.At(i, j)-want) > 1e-12 {
				t.Fatalf("W[%d][%d] = %v, want %v", i, j, w.At(i, j), want)
			}
		}
	}
}

func TestDecomposeReconstructsW(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		w, _ := randomW(seed, n, 3*n, 0.8+0.19*rng.Float64())
		fac, err := Decompose(w)
		if err != nil {
			return false
		}
		prod := matMulDense(fac.L().Dense(), fac.U().Dense())
		wd := w.Dense()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(prod[i][j]-wd[i][j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTriangularShape(t *testing.T) {
	w, _ := randomW(3, 15, 50, 0.95)
	fac, err := Decompose(w)
	if err != nil {
		t.Fatal(err)
	}
	ld, ud := fac.L().Dense(), fac.U().Dense()
	for i := 0; i < 15; i++ {
		if math.Abs(ld[i][i]-1) > 1e-12 {
			t.Errorf("L[%d][%d] = %v, want 1", i, i, ld[i][i])
		}
		for j := i + 1; j < 15; j++ {
			if ld[i][j] != 0 {
				t.Errorf("L has upper entry [%d][%d] = %v", i, j, ld[i][j])
			}
			if ud[j][i] != 0 {
				t.Errorf("U has lower entry [%d][%d] = %v", j, i, ud[j][i])
			}
		}
	}
}

func TestSolveDenseMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		c := 0.7 + 0.29*rng.Float64()
		w, a := randomW(seed, n, 4*n, c)
		fac, err := Decompose(w)
		if err != nil {
			return false
		}
		q := rng.Intn(n)
		b := make([]float64, n)
		b[q] = c
		got := fac.SolveDense(b)
		want, err := rwr.DenseSolve(a, q, c)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestInverseIsExact(t *testing.T) {
	// Property: L * L^{-1} = I and U * U^{-1} = I entry-wise.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(18)
		w, _ := randomW(seed, n, 3*n, 0.9)
		fac, err := Decompose(w)
		if err != nil {
			return false
		}
		inv := fac.Invert(Options{Workers: 1 + rng.Intn(3)})
		li := inv.Linv.Dense()
		ui := inv.Uinv.Dense()
		for _, pair := range []struct{ a, b [][]float64 }{
			{fac.L().Dense(), li},
			{fac.U().Dense(), ui},
		} {
			prod := matMulDense(pair.a, pair.b)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					want := 0.0
					if i == j {
						want = 1
					}
					if math.Abs(prod[i][j]-want) > 1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestInverseTriangularShape(t *testing.T) {
	w, _ := randomW(5, 12, 40, 0.95)
	fac, err := Decompose(w)
	if err != nil {
		t.Fatal(err)
	}
	inv := fac.Invert(Options{Workers: 1})
	li := inv.Linv.Dense()
	ui := inv.Uinv.Dense()
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			if li[i][j] != 0 {
				t.Errorf("L^-1 upper entry [%d][%d] = %v", i, j, li[i][j])
			}
			if ui[j][i] != 0 {
				t.Errorf("U^-1 lower entry [%d][%d] = %v", j, i, ui[j][i])
			}
		}
	}
}

func TestProximityViaInverseFactors(t *testing.T) {
	// p = c U^{-1} L^{-1} q (Equation (3)) must equal the iterative RWR.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		c := 0.95
		g := gen.BarabasiAlbert(n+4, 2, seed)
		a := g.ColumnNormalized()
		fac, err := Decompose(BuildW(a, c))
		if err != nil {
			return false
		}
		inv := fac.Invert(Options{})
		q := rng.Intn(g.N())
		lq := inv.Linv.Col(q)
		dense := make([]float64, g.N())
		lq.Scatter(dense)
		// p_u = c * row u of U^{-1} dot L^{-1} e_q.
		want, _, err := rwr.Iterative(a, q, c, 1e-14, 100000)
		if err != nil {
			return false
		}
		for u := 0; u < g.N(); u++ {
			s := 0.0
			for i := inv.Uinv.RowPtr[u]; i < inv.Uinv.RowPtr[u+1]; i++ {
				s += inv.Uinv.Val[i] * dense[inv.Uinv.ColIdx[i]]
			}
			if math.Abs(c*s-want[u]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	w, _ := randomW(9, 120, 600, 0.95)
	fac, err := Decompose(w)
	if err != nil {
		t.Fatal(err)
	}
	serial := fac.Invert(Options{Workers: 1})
	parallel := fac.Invert(Options{Workers: 4})
	if serial.NNZ() != parallel.NNZ() {
		t.Fatalf("nnz differs: %d vs %d", serial.NNZ(), parallel.NNZ())
	}
	sd, pd := serial.Linv.Dense(), parallel.Linv.Dense()
	for i := range sd {
		for j := range sd[i] {
			if sd[i][j] != pd[i][j] {
				t.Fatalf("L^-1[%d][%d] differs: %v vs %v", i, j, sd[i][j], pd[i][j])
			}
		}
	}
}

func TestDropTolReducesNNZ(t *testing.T) {
	w, _ := randomW(11, 150, 800, 0.95)
	fac, err := Decompose(w)
	if err != nil {
		t.Fatal(err)
	}
	exact := fac.Invert(Options{})
	dropped := fac.Invert(Options{DropTol: 1e-4})
	if dropped.NNZ() >= exact.NNZ() {
		t.Errorf("drop tolerance did not reduce nnz: %d vs %d", dropped.NNZ(), exact.NNZ())
	}
	if dropped.NNZ() == 0 {
		t.Error("drop tolerance removed everything")
	}
}

func TestDecomposeRejectsNonSquare(t *testing.T) {
	m := sparse.NewCOO(2, 3).ToCSC()
	if _, err := Decompose(m); err == nil {
		t.Error("expected error for non-square matrix")
	}
}

func TestDecomposeZeroPivot(t *testing.T) {
	// A singular matrix with an unavoidable zero pivot: all zeros.
	m := sparse.NewCOO(3, 3).ToCSC()
	if _, err := Decompose(m); err == nil {
		t.Error("expected zero-pivot error")
	}
}

func TestIdentityFactorization(t *testing.T) {
	id := sparse.Identity(6)
	fac, err := Decompose(id)
	if err != nil {
		t.Fatal(err)
	}
	if fac.NNZL() != 6 || fac.NNZU() != 6 {
		t.Errorf("identity factors should be diagonal only: nnzL=%d nnzU=%d", fac.NNZL(), fac.NNZU())
	}
	inv := fac.Invert(Options{})
	if inv.NNZ() != 12 {
		t.Errorf("identity inverses should be diagonal only: %d", inv.NNZ())
	}
}
