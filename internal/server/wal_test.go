package server

// Durable-mode tests: the randomized differential harness the WAL
// overlay's exactness contract is pinned by (bit-identical answers to a
// synchronous oracle at every point of a random update chain, including
// after a simulated crash + replay), plus the ack-path validation,
// concurrency, snapshot-recovery, selective cache invalidation and
// observability surfaces.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"kdash/internal/graph"
	"kdash/internal/reorder"
	"kdash/internal/shard"
	"kdash/internal/testutil"
	"kdash/internal/wal"
)

// walBuildOpts are the build options every durable-mode test shares;
// Build is deterministic in (graph, options), so building twice yields
// bit-identical engines — the handler's and the oracle's.
var walBuildOpts = shard.Options{Shards: 4, Reorder: reorder.Hybrid, Seed: 1, StalenessLimit: 8}

// durableHandler opens a WAL-mode handler over the engine with a fast
// compactor tick and registers cleanup.
func durableHandler(t *testing.T, engine Engine, cfg WALConfig, opts ...Option) *Handler {
	t.Helper()
	if cfg.CompactInterval == 0 {
		cfg.CompactInterval = 2 * time.Millisecond
	}
	h, err := NewDurable(engine, cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

// awaitApplied blocks until the compactor has folded seq into the
// published engine — the step-lock the differential chain uses so each
// drain holds exactly one batch and the WAL engine walks the same
// ApplyDelta sequence as the oracle.
func awaitApplied(t *testing.T, h *Handler, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		h.wals.mu.Lock()
		applied := h.wals.appliedSeq
		h.wals.mu.Unlock()
		if applied >= seq {
			return
		}
		h.wals.kickCompact()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("wal: seq %d never applied", seq)
}

// randomOps draws a random valid update request against g: edge adds,
// reweights, removals of existing edges, and (when withNodes) node
// insertions. Duplicate (from,to) pairs are avoided so the batch is
// order-insensitive within each op kind.
func randomOps(rng *rand.Rand, g *graph.Graph, withNodes bool) *updateRequest {
	req := &updateRequest{}
	if withNodes && rng.Intn(3) == 0 {
		req.AddNodes = 1 + rng.Intn(2)
	}
	n := g.N() + req.AddNodes
	edges := g.Edges()
	seen := map[[2]int]bool{}
	for i := 1 + rng.Intn(4); i > 0; i-- {
		if rng.Intn(3) == 0 && len(edges) > 0 {
			for tries := 0; tries < 8; tries++ {
				e := edges[rng.Intn(len(edges))]
				k := [2]int{e.From, e.To}
				if !seen[k] {
					seen[k] = true
					req.RemoveEdges = append(req.RemoveEdges, edgeJSON{From: e.From, To: e.To})
					break
				}
			}
			continue
		}
		u, v := rng.Intn(n), rng.Intn(n)
		k := [2]int{u, v}
		if seen[k] {
			continue
		}
		seen[k] = true
		req.AddEdges = append(req.AddEdges, edgeJSON{From: u, To: v, Weight: 0.5 + rng.Float64()})
	}
	if req.AddNodes == 0 && len(req.AddEdges)+len(req.RemoveEdges) == 0 {
		req.AddEdges = append(req.AddEdges, edgeJSON{From: rng.Intn(n), To: rng.Intn(n), Weight: 1.25})
	}
	return req
}

// postUpdateWAL posts req and returns the acked WAL sequence number.
func postUpdateWAL(t *testing.T, h *Handler, req *updateRequest) uint64 {
	t.Helper()
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := post(t, h, "/update", string(blob))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("durable update: status %d, want 202 (%s)", rec.Code, rec.Body.String())
	}
	var resp walUpdateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Seq == 0 {
		t.Fatalf("durable update acked seq 0: %s", rec.Body.String())
	}
	return resp.Seq
}

// compareAnswers asserts the handler's /topk answers are bit-identical
// to the oracle's — same nodes, same score bits (JSON float64 encoding
// round-trips exactly, so == on the decoded values is the bit test).
func compareAnswers(t *testing.T, h *Handler, oracle *shard.ShardedIndex, rng *rand.Rand, tag string) {
	t.Helper()
	for i := 0; i < 3; i++ {
		q := rng.Intn(oracle.N())
		rec, _ := get(t, h, fmt.Sprintf("/topk?q=%d&k=8", q))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: /topk?q=%d: status %d (%s)", tag, q, rec.Code, rec.Body.String())
		}
		var resp struct {
			Results []struct {
				Node  int     `json:"node"`
				Score float64 `json:"score"`
			} `json:"results"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		want, _, err := oracle.TopK(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != len(want) {
			t.Fatalf("%s: q=%d: %d results, oracle has %d", tag, q, len(resp.Results), len(want))
		}
		for j, r := range resp.Results {
			if r.Node != want[j].Node || r.Score != want[j].Score {
				t.Fatalf("%s: q=%d rank %d: (%d, %v) vs oracle (%d, %v)",
					tag, q, j, r.Node, r.Score, want[j].Node, want[j].Score)
			}
		}
	}
}

// TestWALDifferentialChain is the acceptance harness: a random update
// chain through the durable path, step-locked so each drain holds one
// batch, compared bit-identically against a synchronous oracle after
// every step. Midway the handler "crashes" (Close) and is reopened over
// a freshly built base engine — recovery replays the whole log through
// the merged fast path, which must land on the same bits (edge-only
// batches keep shard homes pinned, and each part's factors are a
// deterministic function of the final graph restricted to the part).
// The chain then continues, now with node insertions, on the recovered
// handler.
func TestWALDifferentialChain(t *testing.T) {
	g := testutil.Clustered(150, 4, 3)
	base, err := shard.Build(g, walBuildOpts)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := shard.Build(g, walBuildOpts)
	if err != nil {
		t.Fatal(err)
	}
	walDir := t.TempDir()
	cfg := WALConfig{Dir: walDir, Sync: wal.SyncNone}
	h := durableHandler(t, base, cfg)

	rng := rand.New(rand.NewSource(7))
	step := func(i int, withNodes bool) {
		req := randomOps(rng, oracle.Graph(), withNodes)
		seq := postUpdateWAL(t, h, req)
		d, err := buildDelta(oracle.N(), req)
		if err != nil {
			t.Fatalf("step %d: oracle delta: %v", i, err)
		}
		if oracle, _, err = oracle.Apply(d); err != nil {
			t.Fatalf("step %d: oracle apply: %v", i, err)
		}
		awaitApplied(t, h, seq)
		compareAnswers(t, h, oracle, rng, fmt.Sprintf("step %d", i))
	}

	for i := 1; i <= 6; i++ {
		step(i, false) // edge ops only: keeps the merged replay bit-identical
	}

	// Simulated crash: drop the handler, rebuild the base engine from
	// scratch (deterministic, so bit-identical to the original), and
	// recover from the same log.
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	base2, err := shard.Build(g, walBuildOpts)
	if err != nil {
		t.Fatal(err)
	}
	h = durableHandler(t, base2, cfg)
	h.wals.mu.Lock()
	replayed := h.wals.replayed
	h.wals.mu.Unlock()
	if replayed != 6 {
		t.Fatalf("recovery replayed %d records, want 6", replayed)
	}
	compareAnswers(t, h, oracle, rng, "post-crash")

	for i := 7; i <= 12; i++ {
		step(i, true) // node insertions join the chain after recovery
	}
}

// TestWALConcurrentUpdates pins the durable path's write safety: N
// concurrent single-edge updates must all ack, all survive into the
// published graph, and the barrier must cover the last of them.
func TestWALConcurrentUpdates(t *testing.T) {
	g := testutil.Clustered(120, 4, 1)
	base, err := shard.Build(g, walBuildOpts)
	if err != nil {
		t.Fatal(err)
	}
	h := durableHandler(t, base, WALConfig{Dir: t.TempDir(), Sync: wal.SyncNone})

	const writers = 16
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"addEdges":[{"from":%d,"to":%d,"weight":%g}]}`, i, (i+40)%120, 1+float64(i)/100)
			rec := post(t, h, "/update", body)
			if rec.Code != http.StatusAccepted {
				t.Errorf("writer %d: status %d (%s)", i, rec.Code, rec.Body.String())
			}
		}(i)
	}
	wg.Wait()
	awaitApplied(t, h, uint64(writers))

	pub := h.snap().engine.(graphEngine).Graph()
	for i := 0; i < writers; i++ {
		if !pub.HasEdge(i, (i+40)%120) {
			t.Errorf("edge (%d,%d) lost", i, (i+40)%120)
		}
	}
	h.wals.mu.Lock()
	acked := h.wals.acked
	h.wals.mu.Unlock()
	if acked != writers {
		t.Errorf("acked %d batches, want %d", acked, writers)
	}
}

// TestSyncConcurrentUpdatesAllSurvive is the synchronous-path
// regression for the lost-update race: N concurrent POST /update
// requests must all apply — the epoch advances once per batch and no
// batch overwrites another's successor.
func TestSyncConcurrentUpdatesAllSurvive(t *testing.T) {
	h := updatableHandler(t)
	const writers = 8
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"addEdges":[{"from":%d,"to":%d,"weight":1.5}]}`, i, (i+60)%120)
			rec := post(t, h, "/update", body)
			if rec.Code != http.StatusOK {
				t.Errorf("writer %d: status %d (%s)", i, rec.Code, rec.Body.String())
			}
		}(i)
	}
	wg.Wait()
	srec, _ := get(t, h, "/statz")
	var statz struct {
		Updates map[string]int64 `json:"updates"`
	}
	if err := json.Unmarshal(srec.Body.Bytes(), &statz); err != nil {
		t.Fatal(err)
	}
	if statz.Updates["applied"] != writers || statz.Updates["epoch"] != writers {
		t.Fatalf("lost update: applied=%d epoch=%d, want %d/%d",
			statz.Updates["applied"], statz.Updates["epoch"], writers, writers)
	}
	pub := h.snap().engine.(graphEngine).Graph()
	for i := 0; i < writers; i++ {
		if !pub.HasEdge(i, (i+60)%120) {
			t.Errorf("edge (%d,%d) lost", i, (i+60)%120)
		}
	}
}

// TestWALValidationOverlay pins ack-time validation against the virtual
// state: an acked-but-unapplied edge is removable, a twice-removed edge
// is a 400, and nothing invalid ever reaches the log.
func TestWALValidationOverlay(t *testing.T) {
	g := testutil.Clustered(120, 4, 1)
	base, err := shard.Build(g, walBuildOpts)
	if err != nil {
		t.Fatal(err)
	}
	// A slow tick so the adds stay pending while the removals validate.
	h := durableHandler(t, base, WALConfig{Dir: t.TempDir(), Sync: wal.SyncNone, CompactInterval: time.Hour})

	if rec := post(t, h, "/update", `{"addEdges":[{"from":1,"to":100,"weight":2}]}`); rec.Code != http.StatusAccepted {
		t.Fatalf("add: %d (%s)", rec.Code, rec.Body.String())
	}
	// The edge exists only in the memtable overlay; removing it must ack.
	if rec := post(t, h, "/update", `{"removeEdges":[{"from":1,"to":100}]}`); rec.Code != http.StatusAccepted {
		t.Fatalf("remove pending edge: %d (%s)", rec.Code, rec.Body.String())
	}
	// Now it is gone in the virtual state: a second removal is a 400.
	if rec := post(t, h, "/update", `{"removeEdges":[{"from":1,"to":100}]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("double remove: %d, want 400 (%s)", rec.Code, rec.Body.String())
	}
	// Removing an edge that never existed anywhere is a 400 too.
	au, av := -1, -1
	for u := 0; u < g.N() && au < 0; u++ {
		for v := 0; v < g.N(); v++ {
			if u != v && !g.HasEdge(u, v) && !(u == 1 && v == 100) {
				au, av = u, v
				break
			}
		}
	}
	if rec := post(t, h, "/update", fmt.Sprintf(`{"removeEdges":[{"from":%d,"to":%d}]}`, au, av)); rec.Code != http.StatusBadRequest {
		t.Fatalf("remove of absent edge (%d,%d): %d, want 400 (%s)", au, av, rec.Code, rec.Body.String())
	}
	// Range validation happens against the virtual node count.
	if rec := post(t, h, "/update", `{"addEdges":[{"from":0,"to":5000}]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range add: %d, want 400", rec.Code)
	}
	// Only the two valid batches reached the log.
	if last := h.wals.log.LastSeq(); last != 2 {
		t.Fatalf("log holds %d records, want 2", last)
	}
}

// TestWALSnapshotRecovery drives durable compaction end to end: updates
// flow, snapshots land in SnapshotDir with a manifest-v4 WAL stamp, the
// log truncates, and a restart from LatestSnapshot + the remaining log
// reproduces the oracle bit-identically.
func TestWALSnapshotRecovery(t *testing.T) {
	g := testutil.Clustered(150, 4, 5)
	base, err := shard.Build(g, walBuildOpts)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := shard.Build(g, walBuildOpts)
	if err != nil {
		t.Fatal(err)
	}
	walDir, snapDir := t.TempDir(), t.TempDir()
	cfg := WALConfig{Dir: walDir, Sync: wal.SyncNone, SnapshotDir: snapDir, SnapshotEvery: 1}
	h := durableHandler(t, base, cfg)

	rng := rand.New(rand.NewSource(11))
	var lastSeq uint64
	for i := 1; i <= 4; i++ {
		req := randomOps(rng, oracle.Graph(), false)
		lastSeq = postUpdateWAL(t, h, req)
		d, err := buildDelta(oracle.N(), req)
		if err != nil {
			t.Fatal(err)
		}
		if oracle, _, err = oracle.Apply(d); err != nil {
			t.Fatal(err)
		}
		awaitApplied(t, h, lastSeq)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	path, ok := LatestSnapshot(snapDir)
	if !ok {
		t.Fatal("no snapshot after 4 compactions with SnapshotEvery=1")
	}
	loaded, err := shard.Open(path, shard.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.WALSeq() == 0 {
		t.Fatal("snapshot carries no WAL stamp")
	}
	h2 := durableHandler(t, loaded, cfg)
	h2.wals.mu.Lock()
	replayed := h2.wals.replayed
	h2.wals.mu.Unlock()
	if replayed != int64(lastSeq-loaded.WALSeq()) {
		t.Fatalf("replayed %d records, want %d (stamp %d, last %d)",
			replayed, lastSeq-loaded.WALSeq(), loaded.WALSeq(), lastSeq)
	}
	compareAnswers(t, h2, oracle, rng, "post-snapshot-restart")
}

// TestSelectiveCacheInvalidation pins the satellite: a cached vector
// whose query lives in a clean shard — and carries zero mass on every
// dirty-shard node — survives the epoch swap and is served bit-
// identically, while entries touching the dirty shard are dropped.
// Two disconnected components with a pinned assignment make the
// zero-mass condition exact.
func TestSelectiveCacheInvalidation(t *testing.T) {
	g := testutil.Disconnected(120, 2, 9)
	home := make([]int, 120)
	for i := range home {
		home[i] = i / 60
	}
	sx, err := shard.Build(g, shard.Options{Assignment: home, Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := New(sx, WithCache(8))

	warm := func(q int) []byte {
		t.Helper()
		if rec, _ := get(t, h, fmt.Sprintf("/topk?q=%d&k=5", q)); rec.Code != http.StatusOK {
			t.Fatalf("warm q=%d: %d", q, rec.Code)
		}
		rec, _ := get(t, h, fmt.Sprintf("/topk?q=%d&k=5", q))
		var resp struct {
			Cached bool `json:"cached"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Cached {
			t.Fatalf("q=%d not cached after warm: %s", q, rec.Body.String())
		}
		return rec.Body.Bytes()
	}
	before5 := warm(5) // component/shard 0
	warm(70)           // component/shard 1

	// Mutate component 1 only: shard 1 is dirty, shard 0 untouched.
	if rec := post(t, h, "/update", `{"addEdges":[{"from":70,"to":95,"weight":3}]}`); rec.Code != http.StatusOK {
		t.Fatalf("update: %d (%s)", rec.Code, rec.Body.String())
	}

	// The clean-shard entry survives the swap — the post-update read is a
	// cache HIT (the "cached" response flag means "vector path" on hits
	// and misses alike, so the hit counter is the discriminator) — and
	// serves the same bits it did before the update.
	hits0 := h.cacheHits.Value()
	rec5, _ := get(t, h, "/topk?q=5&k=5")
	if h.cacheHits.Value() != hits0+1 {
		t.Fatalf("clean-shard cache entry flushed by a disjoint update (hits %d -> %d): %s",
			hits0, h.cacheHits.Value(), rec5.Body.String())
	}
	var after5, want5 struct {
		Results []struct {
			Node  int     `json:"node"`
			Score float64 `json:"score"`
		} `json:"results"`
	}
	if err := json.Unmarshal(rec5.Body.Bytes(), &after5); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(before5, &want5); err != nil {
		t.Fatal(err)
	}
	if len(after5.Results) != len(want5.Results) {
		t.Fatalf("surviving entry changed size: %d vs %d", len(after5.Results), len(want5.Results))
	}
	for i := range want5.Results {
		if after5.Results[i] != want5.Results[i] {
			t.Fatalf("surviving entry drifted at rank %d: %+v vs %+v", i, after5.Results[i], want5.Results[i])
		}
	}

	// The dirty-shard entry is gone: the next read is a miss and
	// recomputes against the new engine.
	misses0 := h.cacheMisses.Value()
	rec70, _ := get(t, h, "/topk?q=70&k=5")
	if h.cacheMisses.Value() != misses0+1 {
		t.Fatalf("dirty-shard cache entry survived the update: %s", rec70.Body.String())
	}
	// And the recomputed answer reflects the new edge: node 95 now ranks
	// directly under the query's self-score.
	var after70 struct {
		Results []struct {
			Node int `json:"node"`
		} `json:"results"`
	}
	if err := json.Unmarshal(rec70.Body.Bytes(), &after70); err != nil {
		t.Fatal(err)
	}
	if len(after70.Results) < 2 || after70.Results[1].Node != 95 {
		t.Errorf("post-update answer for q=70 does not rank the new edge's target: %+v", after70.Results)
	}
}

// TestQueryBudget pins the deadline knobs: a bad ?budget= is a 400, a
// generous one a 200, a sub-solve one a 499 that counts toward the
// cancellation metric — and WithDefaultTimeout applies the same bound
// without the query parameter.
func TestQueryBudget(t *testing.T) {
	h := updatableHandler(t)
	for _, raw := range []string{"nope", "-5ms", "0s"} {
		rec, _ := get(t, h, "/topk?q=1&k=3&budget="+raw)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("budget=%q: status %d, want 400", raw, rec.Code)
		}
	}
	if rec, _ := get(t, h, "/topk?q=1&k=3&budget=30s"); rec.Code != http.StatusOK {
		t.Errorf("generous budget: status %d (%s)", rec.Code, rec.Body.String())
	}
	rec, _ := get(t, h, "/topk?q=1&k=3&budget=1ns")
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("1ns budget: status %d, want 499 (%s)", rec.Code, rec.Body.String())
	}
	srec, _ := get(t, h, "/statz")
	var statz struct {
		Queries map[string]int64 `json:"queries"`
	}
	if err := json.Unmarshal(srec.Body.Bytes(), &statz); err != nil {
		t.Fatal(err)
	}
	if statz.Queries["cancelled"] < 1 {
		t.Errorf("cancelled counter not bumped: %+v", statz.Queries)
	}

	hd := updatableHandler(t, WithDefaultTimeout(time.Nanosecond))
	if rec, _ := get(t, hd, "/topk?q=1&k=3"); rec.Code != statusClientClosedRequest {
		t.Errorf("default timeout: status %d, want 499 (%s)", rec.Code, rec.Body.String())
	}
	// An explicit budget overrides the tight default.
	if rec, _ := get(t, hd, "/topk?q=1&k=3&budget=30s"); rec.Code != http.StatusOK {
		t.Errorf("budget override of default timeout: status %d (%s)", rec.Code, rec.Body.String())
	}

	// The cache-miss path computes a full vector through
	// ProximityVectorCtx, so budgets cancel it too — a blown budget must
	// not fall through to an unbounded vector fill.
	hc := updatableHandler(t, WithCache(4))
	if rec, _ := get(t, hc, "/topk?q=1&k=3&budget=1ns"); rec.Code != statusClientClosedRequest {
		t.Errorf("1ns budget on cache miss: status %d, want 499 (%s)", rec.Code, rec.Body.String())
	}
	// A cache hit serves without solving, so it survives any budget.
	if rec, _ := get(t, hc, "/topk?q=1&k=3"); rec.Code != http.StatusOK {
		t.Fatalf("warming query: status %d (%s)", rec.Code, rec.Body.String())
	}
	if rec, _ := get(t, hc, "/topk?q=1&k=3&budget=1ns"); rec.Code != http.StatusOK {
		t.Errorf("1ns budget on cache hit: status %d, want 200 (%s)", rec.Code, rec.Body.String())
	}
}

// TestWALObservability checks the /statz wal block and the /metrics wal
// series exist and carry the log's position.
func TestWALObservability(t *testing.T) {
	g := testutil.Clustered(120, 4, 1)
	base, err := shard.Build(g, walBuildOpts)
	if err != nil {
		t.Fatal(err)
	}
	h := durableHandler(t, base, WALConfig{Dir: t.TempDir(), Sync: wal.SyncNone})
	seq := postUpdateWAL(t, h, &updateRequest{AddEdges: []edgeJSON{{From: 0, To: 90, Weight: 2}}})
	awaitApplied(t, h, seq)

	srec, _ := get(t, h, "/statz")
	var statz struct {
		WAL map[string]json.RawMessage `json:"wal"`
	}
	if err := json.Unmarshal(srec.Body.Bytes(), &statz); err != nil {
		t.Fatal(err)
	}
	if statz.WAL == nil {
		t.Fatalf("statz has no wal block: %s", srec.Body.String())
	}
	for _, key := range []string{"ackedSeq", "appliedSeq", "acked", "compactions", "fsyncPolicy", "segments", "lastSeq"} {
		if _, ok := statz.WAL[key]; !ok {
			t.Errorf("statz wal block missing %q", key)
		}
	}
	if string(statz.WAL["ackedSeq"]) != "1" || string(statz.WAL["appliedSeq"]) != "1" {
		t.Errorf("wal seqs = %s/%s, want 1/1", statz.WAL["ackedSeq"], statz.WAL["appliedSeq"])
	}

	mreq := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, mreq)
	body := mrec.Body.String()
	for _, series := range []string{"kdash_wal_appends_total", "kdash_wal_acked_seq 1", "kdash_wal_applied_seq 1", "kdash_wal_compactions_total"} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
}

// TestStatzEpochCompactionsPaired pins the /statz capture pairing in
// durable mode: the engine snapshot and the WAL counters are taken
// inside one compactor critical section, so a document where no apply
// has failed always satisfies updates.epoch == wal.compactions (each
// successful drain advances both by exactly one). Before the pairing,
// /statz read the engine snapshot first and the WAL block later; a
// publish landing between the two produced a torn document whose epoch
// lagged its own compactions counter — here a poller races /statz
// against a hammered compactor and rejects any torn read.
func TestStatzEpochCompactionsPaired(t *testing.T) {
	g := testutil.Clustered(120, 4, 1)
	base, err := shard.Build(g, walBuildOpts)
	if err != nil {
		t.Fatal(err)
	}
	h := durableHandler(t, base, WALConfig{Dir: t.TempDir(), Sync: wal.SyncNone, CompactInterval: time.Millisecond})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			req := httptest.NewRequest(http.MethodGet, "/statz", nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			var doc struct {
				Updates struct {
					Epoch int64 `json:"epoch"`
				} `json:"updates"`
				WAL struct {
					Compactions int64 `json:"compactions"`
					ApplyErrors int64 `json:"applyErrors"`
				} `json:"wal"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
				t.Errorf("statz decode: %v", err)
				return
			}
			if doc.WAL.ApplyErrors == 0 && doc.Updates.Epoch != doc.WAL.Compactions {
				t.Errorf("torn /statz: updates.epoch %d with wal.compactions %d",
					doc.Updates.Epoch, doc.WAL.Compactions)
				return
			}
		}
	}()

	// Edge adds/reweights are always valid, so applyErrors stays zero
	// and every drain advances the epoch. The short sleeps spread the
	// publishes out so the poller overlaps many of them.
	rng := rand.New(rand.NewSource(31))
	n := g.N()
	var lastSeq uint64
	for i := 0; i < 200; i++ {
		req := &updateRequest{AddEdges: []edgeJSON{{From: rng.Intn(n), To: rng.Intn(n), Weight: 0.5 + rng.Float64()}}}
		lastSeq = postUpdateWAL(t, h, req)
		if i%20 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	awaitApplied(t, h, lastSeq)
	close(stop)
	wg.Wait()
}

// TestCacheFlushOnInsertPlusRepartition pins the epoch-swap cache rule
// for the compound update: ONE delta that both inserts nodes and trips
// the staleness limit into a re-partition (insertion bumps the
// receiving shard's staleness, so with limit 1 and five inserts over
// four shards, pigeonhole puts two on one shard in the same apply).
// Either condition alone already breaks the selective-retention
// argument — vectors change length, homes move — so the cache must
// flush completely, and every post-swap answer must be recomputed
// bit-identically to an oracle that applied the same delta.
func TestCacheFlushOnInsertPlusRepartition(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := testutil.Random(rng)
	opts := shard.Options{Shards: 4, Reorder: reorder.Hybrid, Seed: 17, StalenessLimit: 1}
	sx, err := shard.Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	h := New(sx, WithCache(8))
	n := sx.N()

	// Warm two cache entries (second read of each must hit).
	for _, q := range []int{1, n - 2} {
		if rec, _ := get(t, h, fmt.Sprintf("/topk?q=%d&k=5", q)); rec.Code != http.StatusOK {
			t.Fatalf("warm q=%d: %d", q, rec.Code)
		}
	}
	hits0 := h.cacheHits.Value()
	for _, q := range []int{1, n - 2} {
		get(t, h, fmt.Sprintf("/topk?q=%d&k=5", q))
	}
	if h.cacheHits.Value() != hits0+2 {
		t.Fatalf("cache never warmed (hits %d -> %d)", hits0, h.cacheHits.Value())
	}

	// The compound delta: five inserted nodes (edges wire the first two
	// in both directions so they are reachable) plus a plain edge add.
	body := fmt.Sprintf(`{"addNodes":5,"addEdges":[{"from":0,"to":%d,"weight":2},{"from":%d,"to":3,"weight":1},{"from":7,"to":11,"weight":1.5}]}`, n, n+1)
	rec := post(t, h, "/update", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("update: %d (%s)", rec.Code, rec.Body.String())
	}
	var ur updateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ur); err != nil {
		t.Fatal(err)
	}
	if ur.NodesAdded != 5 || !ur.Repartitioned {
		t.Fatalf("test premise broken: want insert+repartition in one apply, got %+v", ur)
	}

	// Full flush: both warm entries are gone, their next reads miss.
	misses0 := h.cacheMisses.Value()
	for _, q := range []int{1, n - 2} {
		if rec, _ := get(t, h, fmt.Sprintf("/topk?q=%d&k=5", q)); rec.Code != http.StatusOK {
			t.Fatalf("post-swap q=%d: %d", q, rec.Code)
		}
	}
	if h.cacheMisses.Value() != misses0+2 {
		t.Fatalf("stale cache entries served across an insert+repartition swap (misses %d -> %d)",
			misses0, h.cacheMisses.Value())
	}

	// And the recomputed answers (the cache-warming reads above plus
	// their hits) are bit-identical to an oracle fed the same delta —
	// including for the inserted nodes themselves.
	oracle, err := shard.Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	d := graph.NewDelta(n)
	for i := 0; i < 5; i++ {
		d.AddNode()
	}
	for _, e := range [][3]float64{{0, float64(n), 2}, {float64(n + 1), 3, 1}, {7, 11, 1.5}} {
		if err := d.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	oracle, _, err = oracle.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{1, n - 2, n, n + 1} {
		compareAnswers(t, h, oracle, rand.New(rand.NewSource(int64(q))), "post-swap")
		rec, _ := get(t, h, fmt.Sprintf("/topk?q=%d&k=5", q))
		if rec.Code != http.StatusOK {
			t.Fatalf("post-swap q=%d: %d (%s)", q, rec.Code, rec.Body.String())
		}
		var resp struct {
			Results []struct {
				Node  int     `json:"node"`
				Score float64 `json:"score"`
			} `json:"results"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		want, _, err := oracle.TopK(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != len(want) {
			t.Fatalf("q=%d: %d results, oracle has %d", q, len(resp.Results), len(want))
		}
		for i := range want {
			if resp.Results[i].Node != want[i].Node || resp.Results[i].Score != want[i].Score {
				t.Fatalf("q=%d rank %d: (%d, %v) vs oracle (%d, %v)", q, i,
					resp.Results[i].Node, resp.Results[i].Score, want[i].Node, want[i].Score)
			}
		}
	}
}
