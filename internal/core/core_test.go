package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kdash/internal/gen"
	"kdash/internal/graph"
	"kdash/internal/reorder"
	"kdash/internal/rwr"
	"kdash/internal/testutil"
	"kdash/internal/topk"
)

func buildFor(t *testing.T, g *graph.Graph, m reorder.Method) *Index {
	t.Helper()
	ix, err := BuildIndex(g, BuildOptions{Reorder: m, Seed: 1})
	if err != nil {
		t.Fatalf("BuildIndex(%v): %v", m, err)
	}
	return ix
}

// oracle computes the exact top-k with the iterative method.
func oracle(t *testing.T, g *graph.Graph, q, k int, c float64) []topk.Result {
	t.Helper()
	rs, err := rwr.TopK(g.ColumnNormalized(), q, k, c)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	return rs
}

// trimZeros drops zero-proximity padding: the iterative oracle's top-k
// fills up with unreachable (proximity-0) nodes when fewer than k nodes
// are reachable, whereas K-dash intentionally returns only reachable
// nodes. Any zero-score node is an equally valid "answer", so the
// comparison ignores them.
func trimZeros(rs []topk.Result) []topk.Result {
	out := rs[:0:0]
	for _, r := range rs {
		if r.Score > 1e-12 {
			out = append(out, r)
		}
	}
	return out
}

// sameAnswerSet compares top-k results allowing reordering among exact
// score ties.
func sameAnswerSet(a, b []topk.Result, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i].Score-b[i].Score) > tol {
			return false
		}
	}
	// Node sets must agree up to tie-swaps: compare as multisets keyed by
	// whether each node of a appears in b with a matching score. A node
	// missing from b entirely is still a valid answer when its score ties
	// the k-th place within tol — either of the tied nodes may be cut at
	// the boundary (the symmetric shapes in the shared testutil suite,
	// grids and disconnected components, make exact boundary ties
	// common). Same rule as the shard suite and experiments.Precision.
	used := make([]bool, len(b))
	for i := range a {
		found := false
		for j := range b {
			if !used[j] && a[i].Node == b[j].Node && math.Abs(a[i].Score-b[j].Score) < tol {
				used[j] = true
				found = true
				break
			}
		}
		if !found && math.Abs(a[i].Score-b[len(b)-1].Score) > tol {
			return false
		}
	}
	return true
}

func TestExactnessAllReorderings(t *testing.T) {
	g := gen.PlantedPartition(150, 4, 0.15, 0.01, 3)
	for _, m := range []reorder.Method{reorder.Degree, reorder.Cluster, reorder.Hybrid, reorder.Random, reorder.Natural} {
		ix := buildFor(t, g, m)
		for _, q := range []int{0, 17, 75, 149} {
			for _, k := range []int{1, 5, 20} {
				got, _, err := ix.TopK(q, k)
				if err != nil {
					t.Fatalf("%v q=%d k=%d: %v", m, q, k, err)
				}
				want := oracle(t, g, q, k, ix.Restart())
				if !sameAnswerSet(got, want, 1e-8) {
					t.Errorf("%v q=%d k=%d: got %v, want %v", m, q, k, got, want)
				}
			}
		}
	}
}

func TestExactnessPropertyRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// The shared generator sweeps shapes, not just ER: grids,
		// disconnected components and self-loop-heavy graphs all hit
		// estimation corners the uniform generator never reaches.
		g := testutil.Random(rng)
		n := g.N()
		ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: seed})
		if err != nil {
			return false
		}
		q := rng.Intn(n)
		k := 1 + rng.Intn(10)
		got, _, err := ix.TopK(q, k)
		if err != nil {
			return false
		}
		want, err := rwr.TopK(g.ColumnNormalized(), q, k, ix.Restart())
		if err != nil {
			return false
		}
		return sameAnswerSet(trimZeros(got), trimZeros(want), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLemma1EstimateUpperBoundsProximity(t *testing.T) {
	// Run a search with pruning disabled and verify every exact proximity
	// is below the estimate computed at visit time. We re-derive the
	// estimates here with the non-incremental Definition 1 and compare
	// against the full proximity vector.
	g := gen.BarabasiAlbert(100, 3, 5)
	ix := buildFor(t, g, reorder.Hybrid)
	q := 7
	pv, err := ix.ProximityVector(q)
	if err != nil {
		t.Fatal(err)
	}
	// Internal-space replay of the visit order.
	qi := ix.perm[q]
	order, layer := ix.bfs(qi)
	var sel []int // selected internal nodes in visit order
	for _, u := range order {
		if u != qi {
			// Definition 1 computed directly.
			var sum1, sum2, sumSel float64
			for _, v := range sel {
				pOld := pv[ix.inv[v]]
				sumSel += pOld
				switch layer[v] {
				case layer[u] - 1:
					sum1 += pOld * ix.amaxCol[v]
				case layer[u]:
					sum2 += pOld * ix.amaxCol[v]
				}
			}
			rem := 1 - sumSel
			if rem < 0 {
				rem = 0
			}
			est := ix.cPrime(u) * (sum1 + sum2 + rem*ix.amax)
			if pu := pv[ix.inv[u]]; est < pu-1e-9 {
				t.Fatalf("Lemma 1 violated at internal node %d: estimate %v < proximity %v", u, est, pu)
			}
		}
		sel = append(sel, u)
	}
}

func TestQueryNodeAlwaysFirst(t *testing.T) {
	g := gen.DirectedScaleFree(120, 3, 0.3, 0.25, 6)
	ix := buildFor(t, g, reorder.Hybrid)
	for q := 0; q < 120; q += 13 {
		rs, _, err := ix.TopK(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) == 0 || rs[0].Node != q {
			t.Errorf("q=%d: query should have top proximity, results %v", q, rs)
		}
		if rs[0].Score < ix.Restart() {
			t.Errorf("q=%d: proximity of query %v should be >= c", q, rs[0].Score)
		}
	}
}

func TestPruningReducesWork(t *testing.T) {
	g := gen.PlantedPartition(250, 5, 0.15, 0.005, 7)
	ix := buildFor(t, g, reorder.Hybrid)
	q, k := 10, 5
	_, pruned, err := ix.Search(q, SearchOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	_, full, err := ix.Search(q, SearchOptions{K: k, DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.ProximityComputations >= full.ProximityComputations {
		t.Errorf("pruning did not reduce proximity computations: %d vs %d",
			pruned.ProximityComputations, full.ProximityComputations)
	}
	if !pruned.Terminated {
		t.Error("expected early termination on a clustered graph")
	}
	// Both must return the same exact answer.
	a, _, _ := ix.Search(q, SearchOptions{K: k})
	b, _, _ := ix.Search(q, SearchOptions{K: k, DisablePruning: true})
	if !sameAnswerSet(a, b, 1e-10) {
		t.Errorf("pruned answer %v differs from unpruned %v", a, b)
	}
}

func TestRandomRootStillExactButMoreWork(t *testing.T) {
	g := gen.PlantedPartition(200, 4, 0.15, 0.01, 8)
	ix := buildFor(t, g, reorder.Hybrid)
	q, k := 3, 5
	want := oracle(t, g, q, k, ix.Restart())
	got, rs, err := ix.Search(q, SearchOptions{K: k, RandomRoot: true, RootSeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if !sameAnswerSet(got, want, 1e-8) {
		t.Errorf("random-root answer %v, want %v", got, want)
	}
	_, qs, err := ix.Search(q, SearchOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	if rs.ProximityComputations <= qs.ProximityComputations {
		t.Errorf("random root should need more proximity computations: %d vs %d",
			rs.ProximityComputations, qs.ProximityComputations)
	}
}

func TestKLargerThanReachable(t *testing.T) {
	// Two disconnected components: querying one must return only its
	// reachable nodes (everything else has proximity exactly 0).
	b := graph.NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 4}, {4, 2}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	ix := buildFor(t, g, reorder.Hybrid)
	rs, _, err := ix.TopK(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("want 2 reachable results, got %v", rs)
	}
	if rs[0].Node != 0 || rs[1].Node != 1 {
		t.Errorf("results = %v", rs)
	}
}

func TestProximityVectorMatchesIterative(t *testing.T) {
	g := gen.CommunityOverlay(150, 4, 8, 0.5, 9)
	ix := buildFor(t, g, reorder.Cluster)
	want, _, err := rwr.Iterative(g.ColumnNormalized(), 42, ix.Restart(), 1e-14, 100000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.ProximityVector(42)
	if err != nil {
		t.Fatal(err)
	}
	for u := range want {
		if math.Abs(got[u]-want[u]) > 1e-9 {
			t.Fatalf("p[%d] = %v, want %v", u, got[u], want[u])
		}
	}
}

func TestSingleProximity(t *testing.T) {
	g := gen.ErdosRenyi(60, 240, 10)
	ix := buildFor(t, g, reorder.Degree)
	pv, err := ix.ProximityVector(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int{0, 5, 30, 59} {
		got, err := ix.Proximity(5, u)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-pv[u]) > 1e-12 {
			t.Errorf("Proximity(5,%d) = %v, want %v", u, got, pv[u])
		}
	}
}

func TestBuildAndSearchErrors(t *testing.T) {
	if _, err := BuildIndex(graph.NewBuilder(0).Build(), BuildOptions{}); err == nil {
		t.Error("expected error for empty graph")
	}
	g := gen.ErdosRenyi(10, 30, 11)
	if _, err := BuildIndex(g, BuildOptions{Restart: 1.5}); err == nil {
		t.Error("expected error for c > 1")
	}
	if _, err := BuildIndex(g, BuildOptions{Restart: -0.1}); err == nil {
		t.Error("expected error for negative c")
	}
	ix := buildFor(t, g, reorder.Hybrid)
	if _, _, err := ix.TopK(-1, 3); err == nil {
		t.Error("expected error for negative query")
	}
	if _, _, err := ix.TopK(10, 3); err == nil {
		t.Error("expected error for query >= n")
	}
	if _, _, err := ix.TopK(0, 0); err == nil {
		t.Error("expected error for k = 0")
	}
	if _, err := ix.Proximity(0, 99); err == nil {
		t.Error("expected error for out-of-range target")
	}
	if _, err := ix.ProximityVector(-2); err == nil {
		t.Error("expected error for out-of-range query")
	}
}

func TestRestartSweepExactness(t *testing.T) {
	// Section 6.3.3: the approach works across restart probabilities.
	g := gen.BarabasiAlbert(80, 3, 12)
	for _, c := range []float64{0.5, 0.7, 0.9, 0.95, 0.99} {
		ix, err := BuildIndex(g, BuildOptions{Restart: c, Reorder: reorder.Hybrid, Seed: 2})
		if err != nil {
			t.Fatalf("c=%v: %v", c, err)
		}
		got, _, err := ix.TopK(11, 8)
		if err != nil {
			t.Fatal(err)
		}
		want := oracle(t, g, 11, 8, c)
		if !sameAnswerSet(got, want, 1e-7) {
			t.Errorf("c=%v: got %v want %v", c, got, want)
		}
	}
}

func TestBuildStatsPopulated(t *testing.T) {
	g := gen.PlantedPartition(100, 3, 0.2, 0.01, 13)
	ix := buildFor(t, g, reorder.Hybrid)
	st := ix.Stats()
	if st.NNZInverse <= 0 || st.Edges != g.M() || st.InverseRatio <= 0 {
		t.Errorf("stats not populated: %+v", st)
	}
	if st.TotalTime <= 0 {
		t.Error("total time not recorded")
	}
	if st.Method != reorder.Hybrid {
		t.Errorf("method = %v", st.Method)
	}
}

func TestHybridBeatsRandomOnNNZ(t *testing.T) {
	// The core claim behind Figure 5: hybrid reordering yields (much)
	// sparser inverse factors than random ordering on clustered graphs.
	g := gen.PlantedPartition(220, 6, 0.2, 0.004, 14)
	hy := buildFor(t, g, reorder.Hybrid)
	rd := buildFor(t, g, reorder.Random)
	if hy.Stats().NNZInverse >= rd.Stats().NNZInverse {
		t.Errorf("hybrid nnz %d should be below random nnz %d",
			hy.Stats().NNZInverse, rd.Stats().NNZInverse)
	}
}

func TestSelfLoopGraph(t *testing.T) {
	// Self loops exercise the A_uu term in c'.
	b := graph.NewBuilder(4)
	for _, e := range [][2]int{{0, 0}, {0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 1}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	ix := buildFor(t, g, reorder.Natural)
	got, _, err := ix.TopK(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle(t, g, 0, 4, ix.Restart())
	if !sameAnswerSet(got, want, 1e-9) {
		t.Errorf("self-loop graph: got %v want %v", got, want)
	}
}
