package core

import (
	"testing"

	"kdash/internal/gen"
	"kdash/internal/reorder"
)

func TestExcludeRemovesOnlyExcluded(t *testing.T) {
	g := gen.PlantedPartition(150, 4, 0.2, 0.01, 1)
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := 7
	base, _, err := ix.Search(q, SearchOptions{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Exclude the query node and the runner-up.
	excl := map[int]bool{base[0].Node: true, base[1].Node: true}
	got, _, err := ix.Search(q, SearchOptions{K: 6, Exclude: excl})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if excl[r.Node] {
			t.Errorf("excluded node %d in results", r.Node)
		}
	}
	// The surviving prefix must match the unexcluded ranking with the two
	// excluded nodes removed.
	wide, _, err := ix.Search(q, SearchOptions{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for _, r := range wide {
		if !excl[r.Node] {
			want = append(want, r.Node)
		}
	}
	for i := range got {
		if got[i].Node != want[i] {
			t.Errorf("rank %d: got %d, want %d", i, got[i].Node, want[i])
		}
	}
}

func TestExcludeStillExactUnderPruning(t *testing.T) {
	// Exclusion interacts with the pruning threshold (θ comes only from
	// non-excluded candidates); the answer must still agree with the
	// unpruned search.
	g := gen.BarabasiAlbert(200, 3, 2)
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	excl := map[int]bool{}
	for u := 0; u < 200; u += 3 {
		excl[u] = true
	}
	for _, q := range []int{1, 50, 121} {
		a, _, err := ix.Search(q, SearchOptions{K: 5, Exclude: excl})
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := ix.Search(q, SearchOptions{K: 5, Exclude: excl, DisablePruning: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("q=%d: result counts differ (%d vs %d)", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("q=%d rank %d: pruned %v vs unpruned %v", q, i, a[i], b[i])
			}
		}
	}
}

func TestExcludeOutOfRangeIgnored(t *testing.T) {
	g := gen.ErdosRenyi(30, 120, 3)
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Degree})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = ix.Search(0, SearchOptions{K: 3, Exclude: map[int]bool{-5: true, 999: true, 1: false}})
	if err != nil {
		t.Fatalf("out-of-range exclusions must be ignored, got %v", err)
	}
}
