package experiments

// ColdStart is the persistence extension experiment: on the same
// community-structured benchmark graph the shard experiment uses, it
// measures open-to-first-query latency and memory growth for the three
// ways a saved 8-shard index can come up:
//
//   - v2-parse: the legacy directory (v2 manifest, v1 stream shards),
//     deserialized value by value into private memory — the cold-start
//     tax the v3 format removes;
//   - v3-copy:  the sectioned directory read into private memory with
//     every checksum verified — the portable fallback mode;
//   - v3-mmap:  the sectioned directory memory-mapped read-only with
//     lazy shard opens — open time is O(sections of the shards the
//     first query touches), resident growth only the pages actually
//     faulted in.
//
// Every mode must answer the query battery bit-identically to the
// built index (the Exact column), extending the differential harness's
// contract across the on-disk boundary.

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"slices"
	"time"

	"kdash/internal/gen"
	"kdash/internal/mmapio"
	"kdash/internal/procmem"
	"kdash/internal/reorder"
	"kdash/internal/shard"
	"kdash/internal/topk"
)

// ColdStartRow is one load-mode measurement.
type ColdStartRow struct {
	Mode             string        // v2-parse | v3-copy | v3-mmap | build
	OpenTime         time.Duration // load/open call alone
	FirstQueryTime   time.Duration // first TopK after the open
	OpenToFirstQuery time.Duration // the number that gates rolling restarts
	SpeedupVsParse   float64       // v2-parse's OpenToFirstQuery / this row's
	RSSDeltaBytes    int64         // OS resident-set growth across open+first query (0 off Linux)
	HeapDeltaBytes   int64         // Go heap growth across open+first query
	ShardsOpened     int           // shard files opened after the battery (of defaultUpdateShards)
	Exact            bool          // battery bit-identical to the built index
}

// ColdStart builds the benchmark graph at cfg.ShardGraphN nodes and
// defaultUpdateShards shards, saves it in both directory formats and
// measures each load mode; see the package comment above.
func ColdStart(cfg Config) ([]ColdStartRow, error) {
	cfg = cfg.withDefaults()
	n := cfg.ShardGraphN
	if n == 0 {
		n = defaultShardGraphN
	}
	communities := n / 100
	if communities < 4 {
		communities = 4
	}
	g := gen.CommunityOverlay(n, 3, communities, 0.995, cfg.Seed)

	tBuild := time.Now()
	built, err := shard.Build(g, shard.Options{Shards: defaultUpdateShards, Reorder: reorder.Hybrid, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: coldstart build: %w", err)
	}
	buildTime := time.Since(tBuild)

	dir, err := os.MkdirTemp("", "kdash-coldstart-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	legacyDir := dir + "/v2"
	v3Dir := dir + "/v3"
	if err := built.SaveLegacy(legacyDir); err != nil {
		return nil, fmt.Errorf("experiments: saving legacy dir: %w", err)
	}
	if err := built.Save(v3Dir); err != nil {
		return nil, fmt.Errorf("experiments: saving v3 dir: %w", err)
	}

	queries := cfg.queryNodes(n)
	baseline := make([][]topk.Result, len(queries))
	for i, q := range queries {
		baseline[i], _, err = built.TopK(q, cfg.K)
		if err != nil {
			return nil, err
		}
	}

	modes := []struct {
		name string
		open func() (*shard.ShardedIndex, error)
	}{
		{"v2-parse", func() (*shard.ShardedIndex, error) { return shard.Load(legacyDir) }},
		{"v3-copy", func() (*shard.ShardedIndex, error) {
			return shard.Open(v3Dir, shard.LoadOptions{Mode: mmapio.ModeCopy})
		}},
		{"v3-mmap", func() (*shard.ShardedIndex, error) {
			return shard.Open(v3Dir, shard.LoadOptions{Mode: mmapio.ModeAuto, Lazy: true})
		}},
	}
	rows := make([]ColdStartRow, 0, len(modes)+1)
	for _, m := range modes {
		row, err := measureColdStart(m.name, m.open, queries, cfg.K, baseline)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	// Speedups are relative to the legacy parse (the first row).
	parse := rows[0].OpenToFirstQuery
	for i := range rows {
		rows[i].SpeedupVsParse = ratio(parse, rows[i].OpenToFirstQuery)
	}
	rows = append(rows, ColdStartRow{Mode: "build", OpenTime: buildTime, OpenToFirstQuery: buildTime, SpeedupVsParse: ratio(parse, buildTime), Exact: true})
	return rows, nil
}

// measureColdStart times one load mode and validates its battery
// against the baseline bit-for-bit.
func measureColdStart(name string, open func() (*shard.ShardedIndex, error), queries []int, k int, baseline [][]topk.Result) (ColdStartRow, error) {
	row := ColdStartRow{Mode: name}
	// Settle the heap and return freed spans to the OS so the RSS delta
	// measures this mode, not the previous one's garbage.
	debug.FreeOSMemory()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	rss0 := procmem.Resident()

	t0 := time.Now()
	sx, err := open()
	if err != nil {
		return row, fmt.Errorf("experiments: %s open: %w", name, err)
	}
	row.OpenTime = time.Since(t0)
	t1 := time.Now()
	first, _, err := sx.TopK(queries[0], k)
	if err != nil {
		return row, fmt.Errorf("experiments: %s first query: %w", name, err)
	}
	row.FirstQueryTime = time.Since(t1)
	row.OpenToFirstQuery = time.Since(t0)
	rss1 := procmem.Resident()
	runtime.ReadMemStats(&ms1)
	if rss1 > rss0 {
		row.RSSDeltaBytes = rss1 - rss0
	}
	if ms1.HeapAlloc > ms0.HeapAlloc {
		row.HeapDeltaBytes = int64(ms1.HeapAlloc - ms0.HeapAlloc)
	}

	row.Exact = sameResults(first, baseline[0])
	for i, q := range queries[1:] {
		got, _, err := sx.TopK(q, k)
		if err != nil {
			return row, err
		}
		if !sameResults(got, baseline[i+1]) {
			row.Exact = false
		}
	}
	if opened, ok := sx.Statz()["shardsOpened"].(int); ok {
		row.ShardsOpened = opened
	}
	if err := sx.Close(); err != nil {
		return row, err
	}
	return row, nil
}

// sameResults reports bit-identical answer lists (topk.Result is
// comparable, so slices.Equal is the whole check).
func sameResults(a, b []topk.Result) bool { return slices.Equal(a, b) }

// WriteColdStartRows prints the cold-start table.
func WriteColdStartRows(w io.Writer, rows []ColdStartRow) {
	fmt.Fprintf(w, "%-10s %12s %12s %14s %10s %12s %12s %7s %6s\n",
		"mode", "open", "first-query", "open-to-query", "speedup", "rss-delta", "heap-delta", "opened", "exact")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12v %12v %14v %9.1fx %12s %12s %7d %6t\n",
			r.Mode, r.OpenTime.Round(time.Microsecond), r.FirstQueryTime.Round(time.Microsecond),
			r.OpenToFirstQuery.Round(time.Microsecond), r.SpeedupVsParse,
			fmtBytes(r.RSSDeltaBytes), fmtBytes(r.HeapDeltaBytes), r.ShardsOpened, r.Exact)
	}
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
