package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"kdash/tools/kdashvet/internal/framework"
)

// Determinism enforces the bit-identical solve schedule: starting from
// every function annotated //kdash:deterministic, it walks the
// same-package static call graph and reports constructs whose result
// depends on something other than the inputs:
//
//   - ranging over a map (iteration order is randomized per run, and a
//     float accumulation seeded in map order drifts bits)
//   - reading the wall clock (time.Now / Since / Until)
//   - math/rand and math/rand/v2 (unseeded or global-state randomness)
//
// The solve/rank path is differential-tested bit-identical against the
// monolithic oracle and pinned rebuilds; any of these constructs breaks
// that contract silently. Deliberate uses (wall-clock feeding only a
// trace block, for example) carry //kdash:allow(determinism) with a
// justification.
var Determinism = &framework.Analyzer{
	Name: "determinism",
	Doc:  "forbids map iteration, wall clocks and math/rand in //kdash:deterministic call graphs",
	Run:  runDeterminism,
}

func runDeterminism(pass *framework.Pass) error {
	decls := funcDecls(pass)

	// Roots: annotated functions, in file order for stable reporting.
	type root struct {
		fn *types.Func
		fd *ast.FuncDecl
	}
	var roots []root
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !framework.FuncDirectives(fd)["deterministic"] {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				roots = append(roots, root{obj, fd})
			}
		}
	}

	visited := map[*types.Func]bool{}
	var visit func(fn *types.Func, fd *ast.FuncDecl, rootName string)
	visit = func(fn *types.Func, fd *ast.FuncDecl, rootName string) {
		if visited[fn] {
			return
		}
		visited[fn] = true
		via := ""
		if fd.Name.Name != rootName {
			via = " (reached from //kdash:deterministic " + rootName + ")"
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.TypesInfo.Types[n.X].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "range over map has randomized order in deterministic function %s%s: iterate a sorted key slice instead", fd.Name.Name, via)
					}
				}
			case *ast.CallExpr:
				callee := calleeFunc(pass.TypesInfo, n)
				if callee == nil {
					return true
				}
				switch pkgPathOf(callee) {
				case "time":
					switch callee.Name() {
					case "Now", "Since", "Until":
						pass.Reportf(n.Pos(), "wall-clock read time.%s in deterministic function %s%s", callee.Name(), fd.Name.Name, via)
					}
				case "math/rand", "math/rand/v2":
					pass.Reportf(n.Pos(), "randomness from %s in deterministic function %s%s", callee.FullName(), fd.Name.Name, via)
				case pass.Pkg.Path():
					if calleeDecl, ok := decls[callee]; ok && calleeDecl.Body != nil {
						visit(callee, calleeDecl, rootName)
					}
				}
			}
			return true
		})
	}

	for _, r := range roots {
		visit(r.fn, r.fd, r.fd.Name.Name)
	}
	return nil
}

// methodNameContains is a tiny helper kept close to its only callers in
// ctxcancel; it reports whether a call's callee name contains any of the
// fragments (case-insensitive).
func callNameContains(info *types.Info, call *ast.CallExpr, fragments ...string) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	name := strings.ToLower(fn.Name())
	for _, f := range fragments {
		if strings.Contains(name, f) {
			return true
		}
	}
	return false
}
