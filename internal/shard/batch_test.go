package shard

import (
	"math"
	"math/rand"
	"testing"

	"kdash/internal/core"
	"kdash/internal/gen"
	"kdash/internal/graph"
	"kdash/internal/rwr"
)

// rwrDefaultC mirrors rwr.DefaultRestart for the batch test tables.
const rwrDefaultC = rwr.DefaultRestart

// batchScoreTol is the acceptance tolerance for batch-vs-single answers:
// the block push re-schedules shard solves, so scores may drift by
// floating-point accumulation order but never by more than the push
// tolerance, which sits far below 1e-12.
const batchScoreTol = 1e-12

// TestTopKBatchMatchesSingleSharded is the sharded half of the batch
// exactness property: batched answers agree with per-query TopK (and,
// transitively through the exactness suite, with the monolithic index)
// across graph shapes, shard counts and the acceptance batch sizes.
func TestTopKBatchMatchesSingleSharded(t *testing.T) {
	for name, g := range testGraphs(23) {
		for _, shards := range []int{1, 3, 6} {
			sx := buildSharded(t, g, shards, rwrDefaultC)
			rng := rand.New(rand.NewSource(int64(shards)))
			for _, nb := range []int{1, 7, 64} {
				qs := make([]int, nb)
				for i := range qs {
					qs[i] = rng.Intn(g.N())
				}
				got, bs, err := sx.TopKBatch(qs, 5)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != nb || len(bs.PerQuery) != nb {
					t.Fatalf("%s/%d: %d results, %d stats for %d queries", name, shards, len(got), len(bs.PerQuery), nb)
				}
				for i, q := range qs {
					want, _, err := sx.TopK(q, 5)
					if err != nil {
						t.Fatal(err)
					}
					if !sameAnswerSet(got[i], want, batchScoreTol) {
						t.Errorf("%s/shards=%d nb=%d query %d (node %d): batch %v vs single %v",
							name, shards, nb, i, q, got[i], want)
					}
					if !bs.PerQuery[i].Converged {
						t.Errorf("%s/shards=%d nb=%d query %d: did not converge (residual %g)",
							name, shards, nb, i, bs.PerQuery[i].ResidualMass)
					}
				}
				if bs.BlockRHS < bs.BlockSolves {
					t.Errorf("%s/shards=%d nb=%d: BlockRHS %d < BlockSolves %d", name, shards, nb, bs.BlockRHS, bs.BlockSolves)
				}
			}
		}
	}
}

// TestBatchSharesSolves checks the point of the batch path: on a
// clusterable graph, queries landing in the same shard share factor
// sweeps, so the batch performs fewer block solves than the sum of
// per-query solves.
func TestBatchSharesSolves(t *testing.T) {
	g := gen.PlantedPartition(200, 4, 0.25, 0.02, 5)
	sx := buildSharded(t, g, 4, rwrDefaultC)
	qs := make([]int, 32)
	for i := range qs {
		qs[i] = (i * 13) % g.N()
	}
	_, bs, err := sx.TopKBatch(qs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if bs.BlockSolves >= bs.BlockRHS {
		t.Errorf("no sharing: %d block solves for %d right-hand sides", bs.BlockSolves, bs.BlockRHS)
	}
	if bs.Sharing() < 2 {
		t.Errorf("sharing factor %.2f, want >= 2 on a 4-shard graph with 32 queries", bs.Sharing())
	}
}

func TestTopKBatchValidation(t *testing.T) {
	g := gen.PlantedPartition(60, 3, 0.3, 0.05, 1)
	sx := buildSharded(t, g, 3, rwrDefaultC)
	if _, _, err := sx.TopKBatch([]int{1, -1}, 5); err == nil {
		t.Error("negative node accepted")
	}
	if _, _, err := sx.TopKBatch([]int{1, g.N()}, 5); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, _, err := sx.TopKBatch([]int{1, 2}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if rs, bs, err := sx.TopKBatch(nil, 5); err != nil || len(rs) != 0 || len(bs.PerQuery) != 0 {
		t.Errorf("empty batch: %v %v %v", rs, bs, err)
	}
}

// TestSearchBatchEngineSurface drives the server-facing SearchBatch with
// per-query exclusions and checks it against per-query Search.
func TestSearchBatchEngineSurface(t *testing.T) {
	g := gen.DirectedScaleFree(140, 3, 0.3, 0.4, 9)
	sx := buildSharded(t, g, 4, rwrDefaultC)
	queries := []core.BatchQuery{
		{Q: 7, K: 5},
		{Q: 7, K: 5, Exclude: map[int]bool{7: true}},
		{Q: 40, K: 3, Exclude: map[int]bool{40: true, 41: true}},
	}
	got, stats, err := sx.SearchBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != len(queries) {
		t.Fatalf("%d stats for %d queries", len(stats), len(queries))
	}
	for i, bq := range queries {
		want, _, err := sx.Search(bq.Q, core.SearchOptions{K: bq.K, Exclude: bq.Exclude})
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswerSet(got[i], want, batchScoreTol) {
			t.Errorf("query %d: %v vs %v", i, got[i], want)
		}
		for _, r := range got[i] {
			if bq.Exclude[r.Node] {
				t.Errorf("query %d: excluded node %d in answer", i, r.Node)
			}
		}
	}
}

// TestProximityEarlyTermination builds a graph of two mutually
// unreachable halves: a pair query across the halves must answer zero
// without solving a single shard (the pair-weighted push sees no path
// for the mass to take), while a pair inside one half stays exact.
func TestProximityEarlyTermination(t *testing.T) {
	half := gen.PlantedPartition(60, 2, 0.3, 0.05, 3)
	b := graph.NewBuilder(120)
	for v := 0; v < 60; v++ {
		half.OutNeighbors(v, func(u int, w float64) {
			if err := b.AddEdge(v, u, w); err != nil {
				t.Fatal(err)
			}
			if err := b.AddEdge(v+60, u+60, w); err != nil {
				t.Fatal(err)
			}
		})
	}
	g := b.Build()
	sx := buildSharded(t, g, 4, rwrDefaultC)

	// Find a cross-half pair whose shards are disconnected in the shard
	// digraph (the halves share no edges, so any q-shard/u-shard pair
	// from different halves is).
	q, u := 5, 65
	if sx.HomeShard(q) == sx.HomeShard(u) {
		t.Fatalf("halves landed in one shard; partitioning changed")
	}
	x, qs := sx.pushWeighted(map[int]float64{q: sx.c}, sx.pairWeights(sx.home[u]))
	if qs.Solves != 0 {
		t.Errorf("cross-component pair performed %d solves, want 0", qs.Solves)
	}
	if xs := x[sx.home[u]]; xs != nil && xs[sx.local[u]] != 0 {
		t.Errorf("cross-component proximity %v, want 0", xs[sx.local[u]])
	}
	p, err := sx.Proximity(q, u)
	if err != nil || p != 0 {
		t.Errorf("Proximity(%d,%d) = %v, %v; want 0", q, u, p, err)
	}

	// A within-half pair must stay exact against the monolithic oracle
	// and cost no more solves than the full push.
	mono := buildMono(t, g, rwrDefaultC)
	for _, pair := range [][2]int{{5, 17}, {65, 90}, {12, 12}} {
		want, err := mono.Proximity(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := sx.Proximity(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > scoreTol {
			t.Errorf("Proximity%v = %v, want %v", pair, got, want)
		}
		_, full := sx.push(map[int]float64{pair[0]: sx.c})
		_, early := sx.pushWeighted(map[int]float64{pair[0]: sx.c}, sx.pairWeights(sx.home[pair[1]]))
		if early.Solves > full.Solves {
			t.Errorf("pair %v: early-terminating push used %d solves, full push %d", pair, early.Solves, full.Solves)
		}
	}
}

// TestPairWeights pins the weight formula's shape: weight 1 at the
// target shard, geometric decay with distance, zero when unreachable.
func TestPairWeights(t *testing.T) {
	g := gen.PlantedPartition(160, 4, 0.25, 0.02, 7)
	sx := buildSharded(t, g, 4, rwrDefaultC)
	for su := 0; su < sx.Shards(); su++ {
		w := sx.pairWeights(su)
		if w[su] != 1 {
			t.Errorf("w[target=%d] = %v, want 1", su, w[su])
		}
		for si, wi := range w {
			if wi < 0 || wi > 1 {
				t.Errorf("w[%d] = %v outside [0,1]", si, wi)
			}
		}
	}
}
