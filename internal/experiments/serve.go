package experiments

// ServeLoad is the serving-load experiment: it stands the real HTTP
// handler (internal/server) up on a loopback listener over an 8-shard
// index and drives it with the mixed traffic a production deployment
// sees — zipfian-skewed /topk queries, /topk/batch blocks, /proximity
// pairs and a ~1/s background /update writer — measuring
// client-observed latency quantiles and goodput. The closed-loop phase
// finds the server's natural throughput at fixed concurrency; the
// open-loop phases then pace arrivals at fractions of that rate, so
// tail latency is measured against scheduled arrival times
// (coordinated-omission-free: a slow response cannot slow the arrival
// process down).

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"kdash/internal/gen"
	"kdash/internal/obs"
	"kdash/internal/reorder"
	"kdash/internal/server"
	"kdash/internal/shard"
)

// ServeRow is one load phase's measurement.
type ServeRow struct {
	Mode      string        // "closed" (fixed concurrency) or "open" (paced arrivals)
	Workers   int           // concurrent client workers
	TargetQPS float64       // paced request rate; 0 for the closed loop
	Duration  time.Duration // measured wall clock
	Requests  int64         // requests completed successfully
	Queries   int64         // queries inside those requests (a batch counts its size)
	Errors    int64         // non-2xx responses, transport failures and pacer drops
	Updates   int64         // background /update batches applied during the phase
	Goodput   float64       // successful requests per second
	QueryRate float64       // successful queries per second
	Mean      time.Duration // mean latency (closed: per request; open: from scheduled arrival)
	P50       time.Duration
	P99       time.Duration
	P999      time.Duration
}

const (
	defaultServeDuration = 4 * time.Second
	defaultServeWorkers  = 8
	serveK               = 10  // /topk answer-set size
	serveBatchSize       = 8   // queries per /topk/batch request
	serveZipfS           = 1.1 // zipf skew of the query-node distribution
)

// serveMix is the traffic mix in per-mille: 850 topk / 100 batch / 50
// proximity (updates arrive on their own ~1/s clock).
const (
	serveMixTopK  = 850
	serveMixBatch = 950 // cumulative: batch occupies (850, 950]
)

// ServeLoad builds the index, serves it over loopback TCP and runs one
// closed-loop phase plus open-loop phases at 50% and 75% of the
// closed-loop request rate.
func ServeLoad(cfg Config) ([]ServeRow, error) {
	cfg = cfg.withDefaults()
	d := cfg.ServeDuration
	if d == 0 {
		d = defaultServeDuration
	}
	workers := cfg.ServeWorkers
	if workers == 0 {
		workers = defaultServeWorkers
	}
	n := cfg.ShardGraphN
	if n == 0 {
		n = defaultShardGraphN
	}
	shardCount := 8
	if len(cfg.ShardCounts) > 0 {
		shardCount = cfg.ShardCounts[len(cfg.ShardCounts)-1]
	}
	communities := n / 100
	if communities < 4 {
		communities = 4
	}
	g := gen.CommunityOverlay(n, 3, communities, 0.995, cfg.Seed)
	sx, err := shard.Build(g, shard.Options{Shards: shardCount, Reorder: reorder.Hybrid, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: serve-load build: %w", err)
	}

	// No vector cache: a /topk miss would compute a full n-entry
	// proximity vector, swamping the microsecond pruned push this
	// experiment is meant to measure (the cache counters have their own
	// tests; production enables -cache only for genuinely skewed reuse).
	h := server.New(sx)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("experiments: serve-load listen: %w", err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln) // returns ErrServerClosed on the deferred Close
	defer srv.Close()

	tr := &http.Transport{MaxIdleConns: workers * 2, MaxIdleConnsPerHost: workers * 2}
	hv := &serveHarness{
		base:    "http://" + ln.Addr().String(),
		hc:      &http.Client{Transport: tr, Timeout: 30 * time.Second},
		n:       n,
		seed:    cfg.Seed,
		workers: workers,
	}

	// Warm the connection pool, the pooled push states and the lazily
	// built engine structures so phase one measures the steady state.
	warm := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < workers*20; i++ {
		_ = hv.doTopK(warm.Intn(n)) // warmup only
	}

	rows := make([]ServeRow, 0, 3)
	closed := hv.runPhase("closed", 0, d)
	rows = append(rows, closed)
	for _, frac := range []float64{0.5, 0.75} {
		rate := closed.Goodput * frac
		if rate < 1 {
			rate = 1
		}
		rows = append(rows, hv.runPhase("open", rate, d))
	}
	return rows, nil
}

// serveHarness is the shared state of one ServeLoad run: the target
// server's address, the HTTP client, and the updater's node cursor
// (each update inserts one fresh node, so ids never collide).
type serveHarness struct {
	base    string
	hc      *http.Client
	n       int // original node count; queries draw from [0, n)
	seed    int64
	workers int
	phase   int // distinct rng streams per phase
	nextNew int // nodes inserted by the updater so far (updater-only state)
}

// runPhase drives one load phase. rate 0 is the closed loop: workers
// issue their next request the moment the previous one returns. rate>0
// paces arrivals on a shared schedule; latency for those is measured
// from the scheduled arrival, so queueing delay under overload is
// visible instead of silently omitted.
func (hv *serveHarness) runPhase(mode string, rate float64, d time.Duration) ServeRow {
	hv.phase++
	var (
		lat      obs.Histogram
		requests atomic.Int64
		queries  atomic.Int64
		errors   atomic.Int64
		updates  atomic.Int64
	)
	deadline := time.Now().Add(d)
	stop := make(chan struct{})
	var updWG sync.WaitGroup
	updWG.Add(1)
	go func() {
		defer updWG.Done()
		hv.runUpdater(stop, &updates, &errors)
	}()

	var wg sync.WaitGroup
	work := func(rng *rand.Rand, zipf *rand.Zipf, scheduled time.Time) {
		t0 := scheduled
		if t0.IsZero() {
			t0 = time.Now()
		}
		nq, err := hv.doRequest(rng, zipf)
		if err != nil {
			errors.Add(1)
			return
		}
		lat.Observe(time.Since(t0))
		requests.Add(1)
		queries.Add(int64(nq))
	}

	t0 := time.Now()
	if rate <= 0 {
		for w := 0; w < hv.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(hv.seed + int64(hv.phase*1000+w)))
				zipf := rand.NewZipf(rng, serveZipfS, 1, uint64(hv.n-1))
				for time.Now().Before(deadline) {
					work(rng, zipf, time.Time{})
				}
			}(w)
		}
	} else {
		// Open loop: the pacer emits scheduled arrival times; a full
		// queue means the server has fallen behind the target rate, and
		// the dropped arrival is an error, not a silent omission.
		sched := make(chan time.Time, hv.workers*4)
		for w := 0; w < hv.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(hv.seed + int64(hv.phase*1000+w)))
				zipf := rand.NewZipf(rng, serveZipfS, 1, uint64(hv.n-1))
				for at := range sched {
					work(rng, zipf, at)
				}
			}(w)
		}
		interval := time.Duration(float64(time.Second) / rate)
		for at := time.Now(); at.Before(deadline); at = at.Add(interval) {
			if wait := time.Until(at); wait > 0 {
				time.Sleep(wait)
			}
			select {
			case sched <- at:
			default:
				errors.Add(1)
			}
		}
		close(sched)
	}
	wg.Wait()
	close(stop)
	updWG.Wait()
	elapsed := time.Since(t0)

	snap := lat.Snapshot()
	row := ServeRow{
		Mode:      mode,
		Workers:   hv.workers,
		TargetQPS: rate,
		Duration:  elapsed,
		Requests:  requests.Load(),
		Queries:   queries.Load(),
		Errors:    errors.Load(),
		Updates:   updates.Load(),
		Goodput:   float64(requests.Load()) / elapsed.Seconds(),
		QueryRate: float64(queries.Load()) / elapsed.Seconds(),
		Mean:      time.Duration(snap.Mean()),
		P50:       time.Duration(snap.Quantile(0.5)),
		P99:       time.Duration(snap.Quantile(0.99)),
		P999:      time.Duration(snap.Quantile(0.999)),
	}
	return row
}

// doRequest draws one request from the traffic mix and executes it,
// returning the number of queries it carried.
func (hv *serveHarness) doRequest(rng *rand.Rand, zipf *rand.Zipf) (int, error) {
	switch p := rng.Intn(1000); {
	case p < serveMixTopK:
		return 1, hv.doTopK(int(zipf.Uint64()))
	case p < serveMixBatch:
		var buf bytes.Buffer
		buf.WriteString(`{"queries":[`)
		for i := 0; i < serveBatchSize; i++ {
			if i > 0 {
				buf.WriteByte(',')
			}
			fmt.Fprintf(&buf, `{"q":%d,"k":%d}`, zipf.Uint64(), serveK)
		}
		buf.WriteString(`]}`)
		return serveBatchSize, hv.post("/topk/batch", &buf)
	default:
		u := rng.Intn(hv.n)
		return 1, hv.get(fmt.Sprintf("/proximity?q=%d&u=%d", zipf.Uint64(), u))
	}
}

func (hv *serveHarness) doTopK(q int) error {
	return hv.get(fmt.Sprintf("/topk?q=%d&k=%d", q, serveK))
}

// runUpdater applies one small graph delta roughly every second: a
// fresh node plus two edges tying it into the graph, so deltas never
// collide and each one exercises the incremental refactorization and
// epoch-swap path under live query load.
func (hv *serveHarness) runUpdater(stop <-chan struct{}, updates, errors *atomic.Int64) {
	rng := rand.New(rand.NewSource(hv.seed + 7919*int64(hv.phase)))
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			newID := hv.n + hv.nextNew
			body := fmt.Sprintf(`{"addNodes":1,"addEdges":[{"from":%d,"to":%d},{"from":%d,"to":%d}]}`,
				newID, rng.Intn(hv.n), rng.Intn(hv.n), newID)
			if err := hv.post("/update", bytes.NewBufferString(body)); err != nil {
				errors.Add(1)
				continue
			}
			hv.nextNew++
			updates.Add(1)
		}
	}
}

func (hv *serveHarness) get(path string) error {
	resp, err := hv.hc.Get(hv.base + path)
	if err != nil {
		return err
	}
	return drain(resp)
}

func (hv *serveHarness) post(path string, body io.Reader) error {
	resp, err := hv.hc.Post(hv.base+path, "application/json", body)
	if err != nil {
		return err
	}
	return drain(resp)
}

// drain consumes the body (so the connection is reused) and folds the
// status into the error result.
func drain(resp *http.Response) error {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// WriteServeRows prints the serve-load table.
func WriteServeRows(w io.Writer, rows []ServeRow) {
	fmt.Fprintf(w, "%-7s %8s %10s %9s %8s %7s %4s %10s %10s %10s %10s\n",
		"mode", "workers", "targetQPS", "goodput", "queries", "errors", "upd", "p50", "p99", "p999", "mean")
	for _, r := range rows {
		target := "-"
		if r.TargetQPS > 0 {
			target = fmt.Sprintf("%.0f", r.TargetQPS)
		}
		fmt.Fprintf(w, "%-7s %8d %10s %8.0f/s %8d %7d %4d %10v %10v %10v %10v\n",
			r.Mode, r.Workers, target, r.Goodput, r.Queries, r.Errors, r.Updates,
			r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
			r.P999.Round(time.Microsecond), r.Mean.Round(time.Microsecond))
	}
}
