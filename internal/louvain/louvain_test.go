package louvain

import (
	"testing"

	"kdash/internal/gen"
	"kdash/internal/graph"
)

func TestTwoCliquesSeparated(t *testing.T) {
	// Two 5-cliques joined by a single bridge edge must split into two
	// communities.
	b := graph.NewBuilder(10)
	addClique := func(nodes []int) {
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				if err := b.AddUndirected(nodes[i], nodes[j], 1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	addClique([]int{0, 1, 2, 3, 4})
	addClique([]int{5, 6, 7, 8, 9})
	if err := b.AddUndirected(4, 5, 1); err != nil {
		t.Fatal(err)
	}
	res := Partition(b.Build(), 1)
	if res.K != 2 {
		t.Fatalf("K = %d, want 2 (communities: %v)", res.K, res.Community)
	}
	for u := 1; u < 5; u++ {
		if res.Community[u] != res.Community[0] {
			t.Errorf("node %d not with clique 1", u)
		}
	}
	for u := 6; u < 10; u++ {
		if res.Community[u] != res.Community[5] {
			t.Errorf("node %d not with clique 2", u)
		}
	}
	if res.Community[0] == res.Community[5] {
		t.Error("cliques merged")
	}
	if res.Q < 0.3 {
		t.Errorf("modularity %v too low", res.Q)
	}
}

func TestPlantedPartitionRecovered(t *testing.T) {
	n, k := 200, 4
	g := gen.PlantedPartition(n, k, 0.3, 0.005, 2)
	res := Partition(g, 3)
	if res.K < 3 || res.K > 8 {
		t.Errorf("K = %d, want close to the planted 4", res.K)
	}
	if res.Q < 0.4 {
		t.Errorf("modularity %v too low for a strongly clustered graph", res.Q)
	}
	// Most same-block pairs should share a community: sample block 0.
	truth := func(u int) int { return u * k / n }
	agree, total := 0, 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < u+10 && v < n; v++ {
			total++
			if (truth(u) == truth(v)) == (res.Community[u] == res.Community[v]) {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.8 {
		t.Errorf("pairwise agreement with planted partition = %v", frac)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g := gen.PlantedPartition(120, 3, 0.25, 0.01, 5)
	a := Partition(g, 7)
	b := Partition(g, 7)
	if a.K != b.K {
		t.Fatalf("same seed, different K: %d vs %d", a.K, b.K)
	}
	for u := range a.Community {
		if a.Community[u] != b.Community[u] {
			t.Fatalf("same seed, node %d differs", u)
		}
	}
}

func TestEmptyAndTrivialGraphs(t *testing.T) {
	empty := Partition(graph.NewBuilder(0).Build(), 1)
	if empty.K != 0 {
		t.Errorf("empty graph K = %d", empty.K)
	}
	single := Partition(graph.NewBuilder(1).Build(), 1)
	if single.K != 1 {
		t.Errorf("single-node graph K = %d", single.K)
	}
	edgeless := Partition(graph.NewBuilder(5).Build(), 1)
	if edgeless.K != 5 {
		t.Errorf("edgeless graph K = %d, want 5 singleton communities", edgeless.K)
	}
}

func TestDirectedGraphSymmetrised(t *testing.T) {
	// Directed two-cycle communities still detected via symmetrisation.
	b := graph.NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	res := Partition(b.Build(), 1)
	if res.Community[0] != res.Community[1] || res.Community[1] != res.Community[2] {
		t.Errorf("first triangle split: %v", res.Community)
	}
	if res.Community[3] != res.Community[4] || res.Community[4] != res.Community[5] {
		t.Errorf("second triangle split: %v", res.Community)
	}
}

func TestModularityBounds(t *testing.T) {
	g := gen.PlantedPartition(100, 2, 0.3, 0.01, 9)
	res := Partition(g, 1)
	if res.Q < -0.5 || res.Q > 1 {
		t.Errorf("modularity %v outside [-0.5, 1]", res.Q)
	}
	// All-in-one partition has lower modularity than the detected one.
	allOne := make([]int, g.N())
	if q1 := Modularity(g, allOne); q1 >= res.Q {
		t.Errorf("trivial partition Q=%v should be below detected Q=%v", q1, res.Q)
	}
}

func TestSelfLoopsHandled(t *testing.T) {
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddUndirected(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddUndirected(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	res := Partition(b.Build(), 1)
	if len(res.Community) != 3 {
		t.Fatalf("community slice wrong length: %v", res.Community)
	}
}
