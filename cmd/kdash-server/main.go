// Command kdash-server serves exact top-k RWR queries over HTTP from a
// prebuilt or freshly built K-dash index.
//
// Usage:
//
//	kdash-server -graph edges.tsv -addr :8080
//	kdash-server -graph edges.tsv -shards 8 -addr :8080
//	kdash-server -load-index graph.idx -addr :8080
//	kdash-server -load-index idxdir -addr :8080    # sharded manifest directory
//	kdash-server -load-index idxdir -mmap          # zero-copy map, lazy shard opens
//	kdash-server -load-index idxdir -cache 256 -max-batch 512
//	kdash-server -load-index idxdir -coordinator 10.0.0.1:9101,10.0.0.2:9101
//
// Endpoints (identical for monolithic and sharded indexes):
//
//	GET  /topk?q=<node>&k=<count>[&exclude=1,2,3]
//	POST /topk/batch     {"queries":[{"q":3,"k":5},{"q":9,"k":5,"exclude":[9]}]}
//	POST /personalized   {"seeds":{"3":1,"80":2},"k":5}
//	GET  /proximity?q=<node>&u=<node>
//	POST /update         apply a graph delta, swap to the successor epoch
//	GET  /healthz        liveness, index shape, current epoch, build info
//	GET  /statz          build/load stats, per-shard sizes, query/error counters, latency, RSS
//	GET  /metrics        the same counters as Prometheus text exposition
//
// Any /topk request may add ?trace=1 (or the X-Kdash-Trace: 1 header)
// to receive a per-query push trace — the shard solve sequence with
// residual-bound trajectory and per-phase nanoseconds — in the
// response's "trace" block; see docs/OBSERVABILITY.md.
//
// -log-format/-log-level enable structured request logging through
// log/slog: one line per request with endpoint, status, latency and a
// trace id.
//
// -wal-dir enables durable update mode: POST /update acks with a 202
// after a write-ahead log append (microseconds) and a background
// compactor folds acked batches into the serving index; queries wait on
// an exactness barrier so answers are always bit-identical to a
// synchronous apply. -wal-fsync picks the durability policy,
// -compact-interval the drain cadence, and -wal-snapshot-dir enables
// periodic WAL-stamped snapshots (preferred at startup, log truncated
// behind them). On crash, the log replays over the freshest snapshot or
// the original index. -default-timeout bounds each query's compute
// budget; clients override per request with ?budget=<duration>.
//
// -coordinator turns the server into a distributed coordinator: the
// sharded index directory is opened factorless (placement map, cut
// lists and graph snapshot only — no factors), the greedy cross-shard
// push runs locally, and every per-shard factor solve is routed to the
// kdash-worker owning the shard under the round-robin placement both
// sides derive from the manifest. Answers stay bit-identical to a
// single process serving the same directory; a lost worker degrades the
// queries needing its shards to 503 with a Retry-After hint. Updates
// two-phase publish to every worker, so -wal-dir works unchanged;
// -wal-snapshot-dir does not (the coordinator holds no factors to
// snapshot — snapshot from a single-process server instead).
//
// With -mmap, a v3 index is memory-mapped read-only instead of parsed:
// the server takes traffic milliseconds after exec, shard files are
// opened lazily as queries reach them, and /statz reports open time,
// shards opened and resident bytes so the paging behaviour is
// observable. SIGINT/SIGTERM drain in-flight queries through
// srv.Shutdown before the process exits, so rolling restarts never cut
// answers off mid-response.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"kdash"
	"kdash/internal/placement"
	"kdash/internal/server"
	"kdash/internal/wal"
)

// buildLogger assembles the request logger from the -log-format and
// -log-level flags; an empty format disables request logging.
func buildLogger(format, level string) (*slog.Logger, error) {
	if format == "" {
		return nil, nil
	}
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %v", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf(`bad -log-format %q: want "text" or "json"`, format)
}

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file to index")
		loadIdx   = flag.String("load-index", "", "prebuilt index to load instead of building (file or sharded directory)")
		addr      = flag.String("addr", ":8080", "listen address")
		c         = flag.Float64("c", kdash.DefaultRestart, "restart probability (build mode)")
		shards    = flag.Int("shards", 1, "partition the index into N shards built in parallel (build mode)")
		workers   = flag.Int("workers", 0, "worker-pool width for the build (0 = all CPUs)")
		cacheSize = flag.Int("cache", 0, "LRU proximity-vector cache entries (0 = disabled; each entry holds one full vector)")
		maxBatch  = flag.Int("max-batch", server.DefaultMaxBatch, "largest /topk/batch request accepted")
		useMmap   = flag.Bool("mmap", false, "memory-map the loaded index (zero-copy, lazy shard opens) instead of parsing it into private memory")

		precision   = flag.String("precision", "float64", `factor value width for single-query solves: "float64" (exact) or "float32" (half the value bandwidth, ~1e-7 relative error)`)
		pushWorkers = flag.Int("push-workers", 0, "speculative parallel cross-shard push worker budget (<2 = sequential; answers are bit-identical either way)")
		coordinator = flag.String("coordinator", "", "comma-separated kdash-worker addresses: serve -load-index as a distributed coordinator, routing factor solves to the workers (answers stay bit-identical to a single process)")

		readTimeout     = flag.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTimeout    = flag.Duration("write-timeout", 10*time.Second, "HTTP write timeout")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for draining in-flight queries on SIGINT/SIGTERM")
		defaultTimeout  = flag.Duration("default-timeout", 0, "per-query compute budget applied when the request carries no ?budget= override (0 = unbounded)")

		walDir          = flag.String("wal-dir", "", "write-ahead log directory: /update acks after a log append and a background compactor folds batches in (empty = synchronous updates)")
		walFsync        = flag.String("wal-fsync", "interval", `WAL durability policy: "always" (fsync before every ack), "interval" (background fsync, bounded loss window), "none" (OS page cache only)`)
		compactInterval = flag.Duration("compact-interval", server.DefaultCompactInterval, "WAL compactor tick: the longest an acked batch waits before a drain folds it into the serving index")
		walSnapshotDir  = flag.String("wal-snapshot-dir", "", "directory for periodic WAL-stamped index snapshots; on start the newest snapshot there is preferred over -graph/-load-index, and the log truncates behind each snapshot")

		logFormat = flag.String("log-format", "", `structured request logging: "text" or "json" (empty = off)`)
		logLevel  = flag.String("log-level", "info", "minimum request-log level: debug, info, warn or error")
	)
	flag.Parse()
	requestLog, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kdash-server: %v\n", err)
		os.Exit(2)
	}
	var prec kdash.Precision
	switch *precision {
	case "float64", "":
		prec = kdash.PrecisionFloat64
	case "float32":
		prec = kdash.PrecisionFloat32
	default:
		fmt.Fprintf(os.Stderr, "kdash-server: unknown -precision %q (want float64 or float32)\n", *precision)
		os.Exit(2)
	}
	var engine server.Engine
	openMode := "built"
	tOpen := time.Now()
	// A WAL snapshot is strictly newer than whatever -graph/-load-index
	// points at (it is that index plus compacted updates), so recovery
	// prefers it when one exists.
	if *walSnapshotDir != "" {
		if snap, ok := server.LatestSnapshot(*walSnapshotDir); ok {
			log.Printf("recovering from WAL snapshot %s", snap)
			*loadIdx = snap
			*graphPath = ""
		}
	}
	switch {
	case *coordinator != "":
		if *loadIdx == "" || !kdash.IsShardedIndexDir(*loadIdx) {
			fmt.Fprintln(os.Stderr, "kdash-server: -coordinator needs -load-index pointing at a sharded index directory (the cluster's shared manifest)")
			os.Exit(2)
		}
		if *walSnapshotDir != "" {
			fmt.Fprintln(os.Stderr, "kdash-server: -wal-snapshot-dir cannot be combined with -coordinator: a factorless coordinator has no factors to snapshot (take snapshots from a single-process server over the same directory)")
			os.Exit(2)
		}
		addrs := strings.Split(*coordinator, ",")
		co, err := placement.NewCoordinator(*loadIdx, addrs, placement.Config{PushWorkers: *pushWorkers})
		if err != nil {
			log.Fatal(err)
		}
		engine = co
		openMode = "coordinator"
		log.Printf("coordinator (factorless) over %d workers: %d nodes / %d shards in %v",
			len(addrs), co.N(), co.Shards(), time.Since(tOpen).Round(time.Microsecond))
	case *loadIdx != "" && kdash.IsShardedIndexDir(*loadIdx):
		// -mmap maps shard files zero-copy AND defers each open to the
		// first query that solves the shard — the instant-cold-start
		// configuration; without it the directory is fully parsed into
		// private memory before the listener comes up.
		sx, err := kdash.OpenShardedIndex(*loadIdx, kdash.OpenOptions{Mmap: *useMmap, Lazy: *useMmap, Precision: prec, PushWorkers: *pushWorkers})
		if err != nil {
			log.Fatal(err)
		}
		engine = sx
		openMode = "parse"
		if sx.Mapped() { // the realised backing, not the flag: -mmap falls back off Linux
			openMode = "mmap"
		}
		log.Printf("loaded sharded index (%s): %d nodes / %d shards in %v",
			openMode, sx.N(), sx.Shards(), time.Since(tOpen).Round(time.Microsecond))
	case *loadIdx != "":
		ix, err := kdash.OpenIndex(*loadIdx, kdash.OpenOptions{Mmap: *useMmap, Precision: prec})
		if err != nil {
			log.Fatal(err)
		}
		engine = ix
		openMode = "parse"
		if ix.Mapped() {
			openMode = "mmap"
		}
		log.Printf("loaded index (%s): %d nodes in %v", openMode, ix.N(), time.Since(tOpen).Round(time.Microsecond))
	case *graphPath != "":
		f, err := os.Open(*graphPath)
		if err != nil {
			log.Fatal(err)
		}
		g, err := kdash.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if *shards > 1 {
			sx, err := kdash.BuildShardedIndex(g, kdash.ShardOptions{
				Shards: *shards, Restart: *c, Reorder: kdash.ReorderHybrid, Workers: *workers,
				Precision: prec, PushWorkers: *pushWorkers,
			})
			if err != nil {
				log.Fatal(err)
			}
			engine = sx
			log.Printf("built sharded index: %d nodes / %d edges / %d shards in %v",
				g.N(), g.M(), sx.Shards(), time.Since(start).Round(time.Millisecond))
		} else {
			opts := kdash.DefaultOptions()
			opts.Restart = *c
			opts.Workers = *workers
			ix, err := kdash.BuildIndex(g, opts)
			if err != nil {
				log.Fatal(err)
			}
			ix.SetPrecision(prec)
			engine = ix
			log.Printf("built index: %d nodes / %d edges in %v", g.N(), g.M(), time.Since(start).Round(time.Millisecond))
		}
	default:
		fmt.Fprintln(os.Stderr, "kdash-server: need -graph or -load-index")
		flag.Usage()
		os.Exit(2)
	}
	handlerOpts := []server.Option{
		server.WithCache(*cacheSize),
		server.WithMaxBatch(*maxBatch),
		server.WithOpenInfo(time.Since(tOpen), openMode),
		server.WithRequestLog(requestLog),
		server.WithDefaultTimeout(*defaultTimeout),
	}
	var handler *server.Handler
	if *walDir != "" {
		sync, err := wal.ParseSyncPolicy(*walFsync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kdash-server: -wal-fsync: %v\n", err)
			os.Exit(2)
		}
		handler, err = server.NewDurable(engine, server.WALConfig{
			Dir:             *walDir,
			Sync:            sync,
			CompactInterval: *compactInterval,
			SnapshotDir:     *walSnapshotDir,
		}, handlerOpts...)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("durable updates: WAL at %s (fsync=%s, compact every %v)", *walDir, *walFsync, *compactInterval)
	} else {
		handler = server.New(engine, handlerOpts...)
	}
	srv := &http.Server{
		Addr:         *addr,
		Handler:      handler,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s", *addr)

	select {
	case err := <-errc:
		log.Fatal(err) // bind failure or similar; never http.ErrServerClosed here
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		log.Printf("signal received, draining in-flight queries (up to %v)", *shutdownTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		// Drain the WAL memtable through one final compaction and close
		// the log (a no-op outside WAL mode).
		if err := handler.Close(); err != nil {
			log.Fatalf("wal close: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
		log.Printf("shut down cleanly")
	}
}
