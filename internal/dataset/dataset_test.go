package dataset

import (
	"testing"

	"kdash/internal/rwr"
)

func TestAllDatasetsWellFormed(t *testing.T) {
	for _, d := range All() {
		if d.Graph.N() < 1000 {
			t.Errorf("%s: n = %d, want >= 1000", d.Name, d.Graph.N())
		}
		if d.Graph.M() < d.Graph.N() {
			t.Errorf("%s: m = %d below n = %d", d.Name, d.Graph.M(), d.Graph.N())
		}
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	for i := 0; i < 2; i++ {
		a, b := Social(), Social()
		if a.Graph.M() != b.Graph.M() {
			t.Fatal("Social not deterministic")
		}
	}
	d1, d2 := Dictionary(), Dictionary()
	if d1.Graph.M() != d2.Graph.M() {
		t.Fatal("Dictionary not deterministic")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		d, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if d.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, d.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestDictionaryLabels(t *testing.T) {
	d := Dictionary()
	if len(d.Labels) != d.Graph.N() {
		t.Fatalf("labels %d vs nodes %d", len(d.Labels), d.Graph.N())
	}
	for _, term := range CaseStudyTerms() {
		u, err := d.NodeByLabel(term)
		if err != nil {
			t.Errorf("case-study term %q missing: %v", term, err)
			continue
		}
		if d.Label(u) != term {
			t.Errorf("Label(%d) = %q, want %q", u, d.Label(u), term)
		}
		if d.Graph.OutDegree(u) == 0 {
			t.Errorf("case-study term %q has no out-edges", term)
		}
	}
	if _, err := d.NodeByLabel("definitely-not-a-term"); err == nil {
		t.Error("expected error for unknown label")
	}
}

func TestUnlabelledDatasetLabelFallback(t *testing.T) {
	d := Internet()
	if got := d.Label(7); got != "node7" {
		t.Errorf("fallback label = %q", got)
	}
}

func TestDictionaryCaseStudyNeighbourhoods(t *testing.T) {
	// The RWR top-5 for "Microsoft" must be dominated by curated
	// Microsoft-family terms — the Table 2 property.
	d := Dictionary()
	q, err := d.NodeByLabel("Microsoft")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rwr.TopK(d.Graph.ColumnNormalized(), q, 5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	family := map[string]bool{
		"Microsoft": true, "Microsoft Corporation": true, "MS-DOS": true,
		"IBM PC": true, "Microsoft Windows": true, "Microsoft Basic": true,
		"software": true, "operating system": true,
	}
	hits := 0
	for _, r := range rs {
		if family[d.Label(r.Node)] {
			hits++
		}
	}
	if hits < 4 {
		got := make([]string, len(rs))
		for i, r := range rs {
			got[i] = d.Label(r.Node)
		}
		t.Errorf("only %d/5 Microsoft-family answers: %v", hits, got)
	}
}

func TestDegreeSkewPreserved(t *testing.T) {
	// Internet and Email must have heavy-tailed degree distributions
	// (their defining structural property).
	for _, d := range []*Dataset{Internet(), Email()} {
		maxDeg, sum := 0, 0
		for u := 0; u < d.Graph.N(); u++ {
			deg := d.Graph.Degree(u)
			sum += deg
			if deg > maxDeg {
				maxDeg = deg
			}
		}
		avg := float64(sum) / float64(d.Graph.N())
		if float64(maxDeg) < 10*avg {
			t.Errorf("%s: max degree %d not heavy-tailed vs avg %.1f", d.Name, maxDeg, avg)
		}
	}
}
