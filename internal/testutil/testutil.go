// Package testutil provides the seeded random-graph generators shared
// by every package's tests, replacing the ad-hoc per-package generators
// the suite grew organically. Each generator is deterministic in its
// seed, so any failure reproduces from the seed the test logs.
//
// The shapes are chosen to pin down the corners where exactness bugs
// hide: heavy-tailed degree distributions (deep BFS trees, dense factor
// columns), grids (long diameters, uniform degrees), disconnected
// graphs (unreachable mass, zero proximities), and self-loop-heavy
// graphs (the A_uu != 0 branch of the paper's Definition 1 and ghost
// sink normalisation in the sharded index).
package testutil

import (
	"fmt"
	"math/rand"

	"kdash/internal/gen"
	"kdash/internal/graph"
)

// PowerLaw generates a directed scale-free graph with reciprocated
// edges: heavy-tailed in-degrees plus cycles, the regime the paper's
// social/trust datasets live in.
func PowerLaw(n int, seed int64) *graph.Graph {
	if n < 8 {
		n = 8
	}
	return gen.DirectedScaleFree(n, 3, 0.3, 0.4, seed)
}

// Grid generates an undirected rows x cols lattice (4-neighbourhood)
// with mild deterministic weight variation. Long diameter, uniform
// degree: the opposite corner from PowerLaw.
func Grid(rows, cols int) *graph.Graph {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("testutil: Grid needs positive dims, got %dx%d", rows, cols))
	}
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			w := 1 + 0.1*float64((r+c)%3)
			if c+1 < cols {
				mustUndirected(b, id(r, c), id(r, c+1), w)
			}
			if r+1 < rows {
				mustUndirected(b, id(r, c), id(r+1, c), w)
			}
		}
	}
	return b.Build()
}

// Disconnected generates comps mutually unreachable random components
// (plus, when n does not divide evenly, a few isolated nodes at the
// end). Queries in one component must rank nothing from the others.
func Disconnected(n, comps int, seed int64) *graph.Graph {
	if comps < 1 || n < comps {
		panic(fmt.Sprintf("testutil: Disconnected needs n >= comps >= 1, got n=%d comps=%d", n, comps))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	size := n / comps
	for ci := 0; ci < comps; ci++ {
		base := ci * size
		// Ring for connectivity, then random chords.
		for i := 0; i < size; i++ {
			mustAdd(b, base+i, base+(i+1)%size, 1)
		}
		for i := 0; i < 2*size; i++ {
			u, v := base+rng.Intn(size), base+rng.Intn(size)
			if u != v {
				mustAdd(b, u, v, 0.5+rng.Float64())
			}
		}
	}
	return b.Build()
}

// SelfLoopHeavy generates a random directed graph where roughly half
// the nodes carry a self loop, exercising the A_uu != 0 estimation
// branch and self-transition normalisation.
func SelfLoopHeavy(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < 4*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			mustAdd(b, u, v, 1)
		}
	}
	for u := 0; u < n; u += 2 {
		mustAdd(b, u, u, 1+rng.Float64())
	}
	return b.Build()
}

// ErdosRenyi re-exports the uniform generator so test packages need
// only one import for graph material.
func ErdosRenyi(n, m int, seed int64) *graph.Graph { return gen.ErdosRenyi(n, m, seed) }

// Clustered generates a community-structured weighted graph, the
// favourable case for partitioning.
func Clustered(n, comms int, seed int64) *graph.Graph {
	return gen.PlantedPartition(n, comms, 0.2, 0.02, seed)
}

// Shapes returns the named sweep suite: one representative graph per
// shape, all deterministic in the seed. Exactness suites iterate it so
// every query surface is exercised on every corner.
func Shapes(seed int64) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"powerlaw":     PowerLaw(150, seed),
		"grid":         Grid(10, 12),
		"disconnected": Disconnected(120, 3, seed),
		"selfloops":    SelfLoopHeavy(80, seed),
		"clustered":    Clustered(120, 4, seed),
		"er":           ErdosRenyi(80, 400, seed),
	}
}

// Random draws a random shape and size from the rng — the generator
// property tests feed from.
func Random(rng *rand.Rand) *graph.Graph {
	switch rng.Intn(5) {
	case 0:
		return PowerLaw(20+rng.Intn(120), rng.Int63())
	case 1:
		return Grid(2+rng.Intn(8), 2+rng.Intn(10))
	case 2:
		return Disconnected(20+rng.Intn(100), 1+rng.Intn(4), rng.Int63())
	case 3:
		return SelfLoopHeavy(15+rng.Intn(80), rng.Int63())
	default:
		n := 20 + rng.Intn(80)
		return ErdosRenyi(n, 4*n, rng.Int63())
	}
}

// RandomDelta draws a random update batch against g: edge additions
// (biased towards existing endpoints), removals of existing edges, and
// occasional node insertions wired into the graph. Always valid —
// removals are drawn from the current edge set without repeats.
func RandomDelta(rng *rand.Rand, g *graph.Graph, maxOps int) *graph.Delta {
	d := g.NewDelta()
	if maxOps < 1 {
		maxOps = 1
	}
	edges := g.Edges()
	removed := map[[2]int]bool{}
	n := func() int { return g.N() + d.AddedNodes() }
	ops := 1 + rng.Intn(maxOps)
	for i := 0; i < ops; i++ {
		switch r := rng.Intn(10); {
		case r < 2: // insert a node, usually wired in
			id := d.AddNode()
			if rng.Intn(4) > 0 && g.N() > 0 {
				mustDelta(d.AddEdge(id, rng.Intn(g.N()), 0.5+rng.Float64()))
				mustDelta(d.AddEdge(rng.Intn(g.N()), id, 0.5+rng.Float64()))
			}
		case r < 5 && len(edges) > 0: // remove an existing edge
			for tries := 0; tries < 8; tries++ {
				e := edges[rng.Intn(len(edges))]
				k := [2]int{e.From, e.To}
				if !removed[k] {
					removed[k] = true
					mustDelta(d.RemoveEdge(e.From, e.To))
					break
				}
			}
		default: // add or reweight an edge
			mustDelta(d.AddEdge(rng.Intn(n()), rng.Intn(n()), 0.1+rng.Float64()))
		}
	}
	return d
}

func mustDelta(err error) {
	if err != nil {
		panic(err) // generators only produce valid ops
	}
}

func mustAdd(b *graph.Builder, u, v int, w float64) {
	if err := b.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

func mustUndirected(b *graph.Builder, u, v int, w float64) {
	if err := b.AddUndirected(u, v, w); err != nil {
		panic(err)
	}
}
