package graph

import (
	"errors"
	"math/rand"
	"testing"
)

func mustEdges(t *testing.T, b *Builder, edges [][3]float64) {
	t.Helper()
	for _, e := range edges {
		if err := b.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
}

// edgeMap flattens a graph to a comparable form.
func edgeMap(g *Graph) map[[2]int]float64 {
	out := map[[2]int]float64{}
	for _, e := range g.Edges() {
		out[[2]int{e.From, e.To}] = e.Weight
	}
	return out
}

func TestDeltaAddRemoveNode(t *testing.T) {
	b := NewBuilder(3)
	mustEdges(t, b, [][3]float64{{0, 1, 1}, {1, 2, 2}, {2, 0, 1}})
	g := b.Build()

	d := g.NewDelta()
	if id := d.AddNode(); id != 3 {
		t.Fatalf("first inserted node id = %d, want 3", id)
	}
	if id := d.AddNode(); id != 4 {
		t.Fatalf("second inserted node id = %d, want 4", id)
	}
	if err := d.AddEdge(3, 4, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(0, 1, 1); err != nil { // merges onto existing
		t.Fatal(err)
	}
	if err := d.RemoveEdge(2, 0); err != nil {
		t.Fatal(err)
	}
	g2, err := g.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	// Base graph untouched.
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("base graph mutated: n=%d m=%d", g.N(), g.M())
	}
	want := map[[2]int]float64{{0, 1}: 2, {1, 2}: 2, {3, 4}: 0.5}
	got := edgeMap(g2)
	if g2.N() != 5 || len(got) != len(want) {
		t.Fatalf("updated graph n=%d edges=%v", g2.N(), got)
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("edge %v weight %v, want %v", k, got[k], w)
		}
	}
}

func TestDeltaSequentialSemantics(t *testing.T) {
	b := NewBuilder(2)
	mustEdges(t, b, [][3]float64{{0, 1, 3}})
	g := b.Build()

	// Remove-then-add replaces the weight.
	d := g.NewDelta()
	if err := d.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	g2, err := g.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := edgeMap(g2)[[2]int{0, 1}]; got != 7 {
		t.Fatalf("replace: weight %v, want 7", got)
	}

	// Add-then-remove nets out.
	d = g.NewDelta()
	if err := d.AddEdge(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	g3, err := g.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if g3.M() != 1 {
		t.Fatalf("add-then-remove left %d edges, want 1", g3.M())
	}
}

func TestDeltaValidation(t *testing.T) {
	b := NewBuilder(2)
	mustEdges(t, b, [][3]float64{{0, 1, 1}})
	g := b.Build()

	d := g.NewDelta()
	if err := d.AddEdge(0, 2, 1); err == nil {
		t.Error("out-of-range target accepted")
	}
	if err := d.AddEdge(-1, 0, 1); err == nil {
		t.Error("negative source accepted")
	}
	if err := d.AddEdge(0, 1, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if err := d.RemoveEdge(0, 5); err == nil {
		t.Error("out-of-range removal accepted")
	}

	// Removing a nonexistent edge fails the whole batch, typed.
	d = g.NewDelta()
	if err := d.RemoveEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Apply(d); !errors.Is(err, ErrEdgeNotFound) {
		t.Errorf("missing-edge removal: err = %v, want ErrEdgeNotFound", err)
	}

	// A delta built for a different node count is rejected.
	other := NewBuilder(5).Build()
	if _, err := other.Apply(g.NewDelta()); err == nil {
		t.Error("delta with mismatched base accepted")
	}
}

func TestGraphConvenienceOps(t *testing.T) {
	b := NewBuilder(2)
	mustEdges(t, b, [][3]float64{{0, 1, 1}})
	g := b.Build()

	g2, err := g.AddEdge(1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != 2 || g.M() != 1 {
		t.Fatalf("AddEdge: new m=%d old m=%d", g2.M(), g.M())
	}
	g3, err := g2.RemoveEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g3.M() != 1 {
		t.Fatalf("RemoveEdge: m=%d", g3.M())
	}
	g4, id := g3.AddNode()
	if id != 2 || g4.N() != 3 || g4.M() != g3.M() {
		t.Fatalf("AddNode: id=%d n=%d m=%d", id, g4.N(), g4.M())
	}
}

// TestApplyMatchesRebuild is the structural equivalence property: for
// random graphs and random batches, Apply produces exactly the graph a
// Builder fed the final edge set would.
func TestApplyMatchesRebuild(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			if err := b.AddEdge(rng.Intn(n), rng.Intn(n), 1+rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		g := b.Build()
		d := g.NewDelta()
		for i := 0; i < rng.Intn(4); i++ {
			d.AddNode()
		}
		edges := g.Edges()
		for i := 0; i < 1+rng.Intn(6); i++ {
			if rng.Intn(3) == 0 && len(edges) > 0 {
				e := edges[rng.Intn(len(edges))]
				_ = d.RemoveEdge(e.From, e.To) // may duplicate: skip failures below
			} else {
				if err := d.AddEdge(rng.Intn(d.BaseN()+d.AddedNodes()), rng.Intn(d.BaseN()+d.AddedNodes()), 0.1+rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
		g2, err := g.Apply(d)
		if err != nil {
			if errors.Is(err, ErrEdgeNotFound) {
				continue // duplicate removal drawn; fine
			}
			t.Fatal(err)
		}
		// Rebuild from the flattened edge list and compare shape-for-shape.
		rb := NewBuilder(g2.N())
		for _, e := range g2.Edges() {
			if err := rb.AddEdge(e.From, e.To, e.Weight); err != nil {
				t.Fatal(err)
			}
		}
		g3 := rb.Build()
		em2, em3 := edgeMap(g2), edgeMap(g3)
		if len(em2) != len(em3) {
			t.Fatalf("seed %d: %d vs %d edges", seed, len(em2), len(em3))
		}
		for k, w := range em2 {
			if em3[k] != w {
				t.Fatalf("seed %d: edge %v %v vs %v", seed, k, w, em3[k])
			}
		}
	}
}
