package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"kdash/internal/gen"
	"kdash/internal/reorder"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := gen.PlantedPartition(120, 4, 0.2, 0.01, 1)
	orig, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != orig.N() || loaded.Restart() != orig.Restart() {
		t.Fatalf("shape changed: n=%d c=%v", loaded.N(), loaded.Restart())
	}
	ls, os := loaded.Stats(), orig.Stats()
	if ls.NNZInverse != os.NNZInverse || ls.Edges != os.Edges || ls.Method != os.Method {
		t.Errorf("stats changed: %+v vs %+v", ls, os)
	}
	// Every query must give byte-identical scores and ordering.
	for _, q := range []int{0, 33, 77, 119} {
		a, sa, err := orig.TopK(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, sb, err := loaded.TopK(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("q=%d: result counts differ", q)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("q=%d rank %d: %v vs %v", q, i, a[i], b[i])
			}
		}
		if sa.ProximityComputations != sb.ProximityComputations {
			t.Errorf("q=%d: search work differs: %d vs %d", q, sa.ProximityComputations, sb.ProximityComputations)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"bad magic": "NOTANIDX1aaaaaaaaaaaaaaaaaaa",
		"truncated": "KDASHIX\x01\x05",
	}
	for name, in := range cases {
		if _, err := LoadIndex(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected load error", name)
		}
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	g := gen.ErdosRenyi(20, 60, 2)
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Degree})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.SaveLegacy(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(serialMagic)] = 99 // corrupt the version byte
	if _, err := LoadIndex(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("expected version error, got %v", err)
	}
}

func TestLoadRejectsCorruptPermutation(t *testing.T) {
	g := gen.ErdosRenyi(30, 90, 3)
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Degree})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.SaveLegacy(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// perm starts right after magic+version+n+c+len: flip one perm entry
	// to a duplicate value.
	permStart := len(serialMagic) + 1 + 8 + 8 + 8
	copy(data[permStart:permStart+8], data[permStart+8:permStart+16])
	if _, err := LoadIndex(bytes.NewReader(data)); err == nil {
		t.Error("expected corrupt-permutation error")
	}
}

func TestLoadRejectsCorruptRestart(t *testing.T) {
	g := gen.ErdosRenyi(15, 45, 4)
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Degree})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.SaveLegacy(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	cOff := len(serialMagic) + 1 + 8
	bad := math.Float64bits(3.5)
	for i := 0; i < 8; i++ {
		data[cOff+i] = byte(bad >> (8 * i))
	}
	if _, err := LoadIndex(bytes.NewReader(data)); err == nil {
		t.Error("expected corrupt-restart error")
	}
}
