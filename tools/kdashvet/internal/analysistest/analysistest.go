// Package analysistest is a golden-file test harness for kdashvet
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest on
// the standard library only. Test packages live under
// testdata/src/<name>/ and mark expected findings with trailing
// comments:
//
//	x := pool.Get() // want "not released"
//
// Each `// want` carries one or more quoted or backquoted regular
// expressions that must match a diagnostic reported on that line (after
// //kdash:allow suppression — so suppression behaviour is testable by
// writing an allow comment and no want).
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"kdash/tools/kdashvet/internal/driver"
	"kdash/tools/kdashvet/internal/framework"
)

// Run loads testdata/src/<pkg>, applies the analyzer, and compares the
// surviving diagnostics against the package's // want comments.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no Go files under %s: %v", dir, err)
	}

	p, err := loadPkg(dir, pkg, files)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := driver.Run(p, []*framework.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, p)
	for _, d := range diags {
		posn := p.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
		matched := false
		for _, w := range wants {
			if w.key == key && !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", posn.Filename, posn.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s: no diagnostic matching %q", w.key, w.re)
		}
	}
}

// loadPkg parses the files once to harvest the import set, resolves
// export data for those imports with the go command, then type-checks
// the package through the driver.
func loadPkg(dir, pkg string, files []string) (*driver.Package, error) {
	imports := map[string]bool{}
	fset := token.NewFileSet()
	for _, fn := range files {
		f, err := parser.ParseFile(fset, fn, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[path] = true
			}
		}
	}
	var paths []string
	for p := range imports {
		paths = append(paths, p)
	}
	exports, err := driver.ListExports(dir, paths)
	if err != nil {
		return nil, err
	}
	return driver.CheckFiles(pkg, files, exports)
}

type want struct {
	key  string
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

func collectWants(t *testing.T, p *driver.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := p.Fset.Position(c.Pos())
				for _, lit := range splitPatterns(m[1]) {
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", posn.Filename, posn.Line, lit, err)
					}
					wants = append(wants, &want{
						key: fmt.Sprintf("%s:%d", posn.Filename, posn.Line),
						re:  re,
					})
				}
			}
		}
	}
	return wants
}

// splitPatterns extracts the quoted or backquoted regexp literals from a
// want comment's payload.
func splitPatterns(s string) []string {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				return pats
			}
			if lit, err := strconv.Unquote(s[:end+1]); err == nil {
				pats = append(pats, lit)
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.Index(s[1:], "`")
			if end < 0 {
				return pats
			}
			pats = append(pats, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return pats
		}
	}
	return pats
}
