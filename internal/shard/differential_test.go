package shard

// The randomized differential-test harness. Incremental paths are
// where exactness bugs hide, so after every randomized update sequence
// the updated index is cross-checked on all four query surfaces —
// TopK, TopKBatch, TopKPersonalized and Proximity — against two
// independent oracles:
//
//   1. a from-scratch Build on the final graph with the final
//      assignment pinned, which must agree BIT-FOR-BIT (same floats,
//      same order): Apply rebuilds dirty blocks through the same code
//      path Build uses, so any divergence is a bug, not noise; and
//   2. the rwr power-iteration reference, tolerance-aware (1e-9),
//      which ties the whole chain back to the paper's Equation (1)
//      independently of the factorization machinery.
//
// Every failure message leads with the seed; re-running the harness
// with that seed reproduces the exact graph, update sequence and
// queries.

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"kdash/internal/core"
	"kdash/internal/mmapio"
	"kdash/internal/reorder"
	"kdash/internal/rwr"
	"kdash/internal/testutil"
)

// differentialShardCounts is the sweep the issue pins: 1, 2, 8 and n
// (0 encodes "one shard per node").
var differentialShardCounts = []int{1, 2, 8, 0}

func TestDifferentialUpdates(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, shards := range differentialShardCounts {
		for _, seed := range seeds {
			seed, shards := seed, shards
			rng := rand.New(rand.NewSource(seed))
			g := testutil.Random(rng)
			s := shards
			if s == 0 {
				s = g.N()
			}
			sx, err := Build(g, Options{Shards: s, Reorder: reorder.Hybrid, Seed: seed, StalenessLimit: 8})
			if err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, s, err)
			}
			rounds := 3 + rng.Intn(3)
			for round := 0; round < rounds; round++ {
				d := testutil.RandomDelta(rng, sx.Graph(), 6)
				next, _, err := sx.Apply(d)
				if err != nil {
					t.Fatalf("seed %d shards %d round %d: Apply: %v", seed, shards, round, err)
				}
				sx = next
			}
			diffCheck(t, rng, sx, seed, shards)
		}
	}
}

// diffCheck runs the two-oracle cross-check over all query surfaces.
func diffCheck(t *testing.T, rng *rand.Rand, sx *ShardedIndex, seed int64, shards int) {
	t.Helper()
	g := sx.Graph()
	n := g.N()
	scratch, err := Build(g, Options{
		Restart:    sx.Restart(),
		Reorder:    reorder.Hybrid,
		Seed:       seed,
		Assignment: sx.Assignment(),
	})
	if err != nil {
		t.Fatalf("seed %d shards %d: oracle rebuild: %v", seed, shards, err)
	}
	a := g.ColumnNormalized()

	qs := make([]int, 4)
	for i := range qs {
		qs[i] = rng.Intn(n)
	}
	k := 1 + rng.Intn(10)

	// TopK: bit-identical vs the rebuild, tolerance-aware vs iteration.
	for _, q := range qs {
		got, gs, err := sx.TopK(q, k)
		if err != nil {
			t.Fatalf("seed %d: TopK: %v", seed, err)
		}
		if !gs.Converged {
			t.Fatalf("seed %d shards %d q=%d: push did not converge", seed, shards, q)
		}
		want, _, err := scratch.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d shards %d q=%d k=%d: %d vs %d results", seed, shards, q, k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d shards %d q=%d k=%d i=%d: updated %v, rebuilt %v (not bit-identical)",
					seed, shards, q, k, i, got[i], want[i])
			}
		}
		oracle, err := rwr.TopK(a, q, k, sx.Restart())
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswerSet(got, trimZeros(oracle), scoreTol) {
			t.Fatalf("seed %d shards %d q=%d k=%d: vs iterative\n got %v\nwant %v", seed, shards, q, k, got, trimZeros(oracle))
		}
	}

	// TopKBatch: bit-identical per item vs the rebuild's batch path.
	gotB, _, err := sx.TopKBatch(qs, k)
	if err != nil {
		t.Fatalf("seed %d: TopKBatch: %v", seed, err)
	}
	wantB, _, err := scratch.TopKBatch(qs, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if len(gotB[i]) != len(wantB[i]) {
			t.Fatalf("seed %d shards %d batch item %d: %d vs %d results", seed, shards, i, len(gotB[i]), len(wantB[i]))
		}
		for j := range gotB[i] {
			if gotB[i][j] != wantB[i][j] {
				t.Fatalf("seed %d shards %d batch item %d rank %d: %v vs %v", seed, shards, i, j, gotB[i][j], wantB[i][j])
			}
		}
	}

	// TopKPersonalized: bit-identical vs rebuild, tolerance vs iteration.
	seedSet := map[int]float64{qs[0]: 1, qs[1]: 2, (qs[2] + 1) % n: 0.5}
	gotP, _, err := sx.TopKPersonalized(seedSet, k)
	if err != nil {
		t.Fatalf("seed %d: TopKPersonalized: %v", seed, err)
	}
	wantP, _, err := scratch.TopKPersonalized(seedSet, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gotP {
		if gotP[i] != wantP[i] {
			t.Fatalf("seed %d shards %d personalized rank %d: %v vs %v", seed, shards, i, gotP[i], wantP[i])
		}
	}
	restart := make([]float64, n)
	total := 0.0
	for _, w := range seedSet {
		total += w
	}
	for node, w := range seedSet {
		restart[node] = w / total
	}
	pvec, _, err := rwr.IterativeVec(a, restart, sx.Restart(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range gotP {
		if math.Abs(pvec[r.Node]-r.Score) > scoreTol {
			t.Fatalf("seed %d shards %d personalized node %d: %v vs iterative %v", seed, shards, r.Node, r.Score, pvec[r.Node])
		}
	}

	// Proximity: bit-identical vs rebuild, tolerance vs iteration.
	ivec, _, err := rwr.Iterative(a, qs[0], sx.Restart(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int{qs[1], (qs[0] + n/2) % n, n - 1} {
		got, err := sx.Proximity(qs[0], u)
		if err != nil {
			t.Fatalf("seed %d: Proximity: %v", seed, err)
		}
		want, err := scratch.Proximity(qs[0], u)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d shards %d proximity (%d,%d): %v vs rebuilt %v", seed, shards, qs[0], u, got, want)
		}
		if math.Abs(got-ivec[u]) > scoreTol {
			t.Fatalf("seed %d shards %d proximity (%d,%d): %v vs iterative %v", seed, shards, qs[0], u, got, ivec[u])
		}
	}
}

// TestDifferentialMonolithicRebuild runs the same randomized update
// sequences through the monolithic core.Index.Rebuild path and checks
// it against power iteration — the full-rebuild baseline the sharded
// incremental path is differentially equivalent to.
func TestDifferentialMonolithicRebuild(t *testing.T) {
	for _, seed := range []int64{5, 6} {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.Random(rng)
		ix, err := core.BuildIndex(g, core.BuildOptions{Reorder: reorder.Hybrid, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			d := testutil.RandomDelta(rng, ix.Graph(), 5)
			ix2, err := ix.Rebuild(d)
			if err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			ix = ix2
		}
		a := ix.Graph().ColumnNormalized()
		for i := 0; i < 3; i++ {
			q := rng.Intn(ix.N())
			got, _, err := ix.TopK(q, 6)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := rwr.TopK(a, q, 6, ix.Restart())
			if err != nil {
				t.Fatal(err)
			}
			if !sameAnswerSet(got, trimZeros(oracle), scoreTol) {
				t.Fatalf("seed %d q=%d: got %v, oracle %v", seed, q, got, trimZeros(oracle))
			}
		}
	}
}

// TestDifferentialLoadModes extends the harness across the on-disk
// boundary: after a randomized update chain the index is saved in both
// directory generations and reloaded through every load path — legacy
// v2 parse, v3 copy, v3 mmap with lazy shard opens — and each reload
// must pass the same two-oracle cross-check (bit-identical to a pinned
// from-scratch rebuild, 1e-9 vs power iteration) as the in-memory
// index that produced the files.
func TestDifferentialLoadModes(t *testing.T) {
	const seed = int64(9)
	rng := rand.New(rand.NewSource(seed))
	g := testutil.Clustered(220, 4, seed)
	sx, err := Build(g, Options{Shards: 4, Reorder: reorder.Hybrid, Seed: seed, StalenessLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		d := testutil.RandomDelta(rng, sx.Graph(), 6)
		next, _, err := sx.Apply(d)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		sx = next
	}
	dir := t.TempDir()
	legacyDir := filepath.Join(dir, "v2")
	v3Dir := filepath.Join(dir, "v3")
	if err := sx.SaveLegacy(legacyDir); err != nil {
		t.Fatal(err)
	}
	if err := sx.Save(v3Dir); err != nil {
		t.Fatal(err)
	}
	loads := []struct {
		label string
		open  func() (*ShardedIndex, error)
	}{
		{"v2-load", func() (*ShardedIndex, error) { return Load(legacyDir) }},
		{"v3-copy", func() (*ShardedIndex, error) { return Open(v3Dir, LoadOptions{Mode: mmapio.ModeCopy}) }},
		{"v3-mmap", func() (*ShardedIndex, error) { return Open(v3Dir, LoadOptions{Lazy: true}) }},
	}
	for _, lc := range loads {
		loaded, err := lc.open()
		if err != nil {
			t.Fatalf("%s: %v", lc.label, err)
		}
		// A fresh rng per mode keeps the query draw identical across
		// modes, so all three are checked on the same battery.
		diffCheck(t, rand.New(rand.NewSource(seed+100)), loaded, seed, 4)
		if err := loaded.Close(); err != nil {
			t.Fatalf("%s: Close: %v", lc.label, err)
		}
	}
}
