package experiments

// ShardScale is the sharded-index extension experiment: it measures how
// partition-parallel index construction scales with the shard count on a
// generated community-structured graph, and validates that every shard
// count returns the same top-k answers.

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"kdash/internal/gen"
	"kdash/internal/reorder"
	"kdash/internal/shard"
	"kdash/internal/topk"
)

// ShardRow is one shard-count measurement.
type ShardRow struct {
	Shards       int
	Build        time.Duration // wall-clock build across the worker pool
	ShardCPU     time.Duration // summed per-shard build time
	Speedup      float64       // first row's build time / this build time
	Query        time.Duration // mean steady-state top-k query (one untimed warmup)
	AllocsPerQry float64       // mean heap allocations per steady-state query
	BytesPerQry  float64       // mean bytes allocated per steady-state query
	ShardsSolved float64       // mean shards solved per query
	Agrees       bool          // answers match the first requested shard count's
}

// defaultShardCounts is the sweep cmd/kdash-bench runs.
var defaultShardCounts = []int{1, 2, 4, 8}

// defaultShardGraphN sizes the generated benchmark graph; large enough
// that per-shard factorization cost dominates and the partitioned build
// shows its win (at 50k nodes the monolithic inverse carries ~12x the
// nonzeros of the 8-shard one), small enough for an interactive run.
const defaultShardGraphN = 50000

// ShardScale builds sharded indexes for each requested shard count on
// one community-structured power-law graph and reports build scaling,
// query cost and cross-count answer agreement. The first requested
// count is the speedup/agreement baseline, so put 1 first (the default
// does) to validate against the monolithic degenerate case.
func ShardScale(cfg Config) ([]ShardRow, error) {
	cfg = cfg.withDefaults()
	counts := cfg.ShardCounts
	if counts == nil {
		counts = defaultShardCounts
	}
	n := cfg.ShardGraphN
	if n == 0 {
		n = defaultShardGraphN
	}
	// A clusterable power-law graph: ~100-node communities with 0.5% of
	// edges escaping, the regime block-wise partitioning (the paper's
	// B_LIN discussion) targets. Sharding still stays exact on
	// unclusterable graphs — it just prunes less.
	communities := n / 100
	if communities < 4 {
		communities = 4
	}
	g := gen.CommunityOverlay(n, 3, communities, 0.995, cfg.Seed)
	qs := cfg.queryNodes(g.N())

	rows := make([]ShardRow, 0, len(counts))
	var baseBuild time.Duration
	var baseline [][]topk.Result
	for _, s := range counts {
		t0 := time.Now()
		sx, err := shard.Build(g, shard.Options{Shards: s, Reorder: reorder.Hybrid, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: sharded build (%d shards): %w", s, err)
		}
		build := time.Since(t0)

		row := ShardRow{Shards: sx.Shards(), Build: build, ShardCPU: sx.Stats().ShardCPUTime, Agrees: true}
		answers := make([][]topk.Result, len(qs))
		solved := 0
		// One untimed warmup pass over the query set pays the lazily built
		// structures (per-shard transposed factors, pooled workspaces,
		// cut-target lists) so the measured mean is the steady state a
		// serving process reaches after its first requests.
		for _, q := range qs {
			if _, _, err := sx.TopK(q, cfg.K); err != nil {
				return nil, err
			}
		}
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		tq := time.Now()
		for i, q := range qs {
			rs, st, err := sx.TopK(q, cfg.K)
			if err != nil {
				return nil, err
			}
			answers[i] = rs
			solved += st.ShardsSolved
		}
		row.Query = time.Duration(int64(time.Since(tq)) / int64(len(qs)))
		runtime.ReadMemStats(&m1)
		row.AllocsPerQry = float64(m1.Mallocs-m0.Mallocs) / float64(len(qs))
		row.BytesPerQry = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(len(qs))
		row.ShardsSolved = float64(solved) / float64(len(qs))

		if baseline == nil {
			baseBuild = build
			baseline = answers
		} else {
			row.Speedup = float64(baseBuild) / float64(build)
			for i := range answers {
				if !agreeTopK(answers[i], baseline[i], 1e-9) {
					row.Agrees = false
				}
			}
		}
		rows = append(rows, row)
	}
	if len(rows) > 0 {
		rows[0].Speedup = 1
	}
	return rows, nil
}

// agreeTopK compares two rankings within tol, tolerating tie swaps
// (including at the k-th-place boundary).
func agreeTopK(a, b []topk.Result, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i].Score-b[i].Score) > tol {
			return false
		}
	}
	used := make([]bool, len(b))
	for i := range a {
		found := false
		for j := range b {
			if !used[j] && a[i].Node == b[j].Node && math.Abs(a[i].Score-b[j].Score) < tol {
				used[j] = true
				found = true
				break
			}
		}
		if !found && math.Abs(a[i].Score-b[len(b)-1].Score) > tol {
			return false
		}
	}
	return true
}

// WriteShardRows prints the shard-scaling table.
func WriteShardRows(w io.Writer, rows []ShardRow) {
	fmt.Fprintf(w, "%-7s %14s %14s %9s %14s %12s %14s %7s\n",
		"shards", "build", "shard-cpu", "speedup", "query", "allocs/query", "shards/query", "exact")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7d %14v %14v %8.2fx %14v %12.1f %14.1f %7t\n",
			r.Shards, r.Build.Round(time.Millisecond), r.ShardCPU.Round(time.Millisecond),
			r.Speedup, r.Query.Round(time.Microsecond), r.AllocsPerQry, r.ShardsSolved, r.Agrees)
	}
}
