package graph

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustEdge(t *testing.T, b *Builder, from, to int, w float64) {
	t.Helper()
	if err := b.AddEdge(from, to, w); err != nil {
		t.Fatalf("AddEdge(%d,%d,%v): %v", from, to, w, err)
	}
}

func lineGraph(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		mustEdge(t, b, i, i+1, 1)
	}
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(3)
	mustEdge(t, b, 0, 1, 2)
	mustEdge(t, b, 1, 2, 1)
	mustEdge(t, b, 0, 1, 3) // duplicate, weights sum
	g := b.Build()
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d, want 3, 2", g.N(), g.M())
	}
	var gotW float64
	g.OutNeighbors(0, func(to int, w float64) {
		if to == 1 {
			gotW = w
		}
	})
	if gotW != 5 {
		t.Errorf("merged weight = %v, want 5", gotW)
	}
	if g.OutDegree(0) != 1 || g.InDegree(1) != 1 || g.Degree(1) != 2 {
		t.Errorf("degrees wrong: out0=%d in1=%d deg1=%d", g.OutDegree(0), g.InDegree(1), g.Degree(1))
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 2, 1); err == nil {
		t.Error("expected error for out-of-range target")
	}
	if err := b.AddEdge(-1, 0, 1); err == nil {
		t.Error("expected error for negative source")
	}
	if err := b.AddEdge(0, 1, 0); err == nil {
		t.Error("expected error for zero weight")
	}
	if err := b.AddEdge(0, 1, -2); err == nil {
		t.Error("expected error for negative weight")
	}
}

func TestAddUndirected(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddUndirected(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddUndirected(2, 2, 1); err != nil { // self loop added once
		t.Fatal(err)
	}
	g := b.Build()
	if g.M() != 3 {
		t.Fatalf("m = %d, want 3 (two directions + one self loop)", g.M())
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 {
		t.Errorf("empty graph n=%d m=%d", g.N(), g.M())
	}
	g2 := NewBuilder(5).Build() // nodes, no edges
	if g2.M() != 0 {
		t.Errorf("edgeless graph m=%d", g2.M())
	}
	a := g2.ColumnNormalized()
	if a.NNZ() != 0 {
		t.Errorf("edgeless adjacency nnz=%d", a.NNZ())
	}
}

func TestColumnNormalizedStochastic(t *testing.T) {
	// Property: each non-empty column of A sums to 1 and entries are the
	// edge weights divided by the source's out-weight.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), 0.1+rng.Float64())
		}
		g := b.Build()
		a := g.ColumnNormalized()
		for v := 0; v < n; v++ {
			sum := 0.0
			for i := a.ColPtr[v]; i < a.ColPtr[v+1]; i++ {
				if a.Val[i] <= 0 || a.Val[i] > 1+1e-12 {
					return false
				}
				sum += a.Val[i]
			}
			if g.OutDegree(v) == 0 {
				if sum != 0 {
					return false
				}
			} else if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestColumnNormalizedDangling(t *testing.T) {
	b := NewBuilder(3)
	mustEdge(t, b, 0, 1, 1)
	mustEdge(t, b, 0, 2, 3)
	g := b.Build() // nodes 1 and 2 dangle
	a := g.ColumnNormalized()
	if got := a.At(1, 0); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("A[1][0] = %v, want 0.25", got)
	}
	if got := a.At(2, 0); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("A[2][0] = %v, want 0.75", got)
	}
	for u := 0; u < 3; u++ {
		if got := a.At(u, 1); got != 0 {
			t.Errorf("dangling column should be zero, A[%d][1] = %v", u, got)
		}
	}
}

func TestBFSLayers(t *testing.T) {
	g := lineGraph(t, 5)
	res := g.BFS(0)
	for u := 0; u < 5; u++ {
		if res.Layer[u] != u {
			t.Errorf("layer[%d] = %d, want %d", u, res.Layer[u], u)
		}
	}
	if len(res.Order) != 5 || res.Order[0] != 0 {
		t.Errorf("order = %v", res.Order)
	}
}

func TestBFSUnreachable(t *testing.T) {
	b := NewBuilder(4)
	mustEdge(t, b, 0, 1, 1)
	mustEdge(t, b, 2, 3, 1) // separate component
	g := b.Build()
	res := g.BFS(0)
	if res.Layer[2] != -1 || res.Layer[3] != -1 {
		t.Errorf("unreachable nodes should have layer -1, got %v", res.Layer)
	}
	if len(res.Order) != 2 {
		t.Errorf("order = %v, want just {0,1}", res.Order)
	}
}

func TestBFSDirectionality(t *testing.T) {
	// Edge 1 -> 0 does not make 1 reachable from 0.
	b := NewBuilder(2)
	mustEdge(t, b, 1, 0, 1)
	g := b.Build()
	res := g.BFS(0)
	if res.Layer[1] != -1 {
		t.Errorf("BFS must follow out-edges only; layer[1] = %d", res.Layer[1])
	}
}

func TestBFSLayerMonotoneInOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), 1)
		}
		g := b.Build()
		res := g.BFS(rng.Intn(n))
		for i := 1; i < len(res.Order); i++ {
			if res.Layer[res.Order[i]] < res.Layer[res.Order[i-1]] {
				return false
			}
		}
		// Every visited non-root node has an in-neighbour one layer up.
		for _, u := range res.Order[1:] {
			ok := false
			g.InNeighbors(u, func(from int, _ float64) {
				if res.Layer[from] >= 0 && res.Layer[from] == res.Layer[u]-1 {
					ok = true
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	b := NewBuilder(4)
	mustEdge(t, b, 0, 1, 2)
	mustEdge(t, b, 1, 2, 3)
	mustEdge(t, b, 2, 3, 4)
	g := b.Build()
	perm := []int{3, 2, 1, 0}
	h := g.Relabel(perm)
	if h.M() != g.M() {
		t.Fatalf("edge count changed: %d vs %d", h.M(), g.M())
	}
	found := false
	h.OutNeighbors(3, func(to int, w float64) {
		if to == 2 && w == 2 {
			found = true
		}
	})
	if !found {
		t.Error("edge 0->1 (w=2) should appear as 3->2 after relabel")
	}
}

func TestParseEdgeList(t *testing.T) {
	input := `# comment
% another comment
0 1
1 2 2.5

3 0 0.5
`
	g, err := ParseEdgeList(strings.NewReader(input), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d, want 4, 3", g.N(), g.M())
	}
	var w float64
	g.OutNeighbors(1, func(to int, wt float64) {
		if to == 2 {
			w = wt
		}
	})
	if w != 2.5 {
		t.Errorf("weight = %v, want 2.5", w)
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"one field", "0\n"},
		{"bad source", "x 1\n"},
		{"bad target", "1 y\n"},
		{"negative id", "-1 2\n"},
		{"bad weight", "0 1 w\n"},
		{"zero weight", "0 1 0\n"},
		{"negative weight", "0 1 -3\n"},
	}
	for _, tc := range cases {
		if _, err := ParseEdgeList(strings.NewReader(tc.in), 0); err == nil {
			t.Errorf("%s: expected parse error", tc.name)
		}
	}
}

func TestParseEdgeListMinNodes(t *testing.T) {
	g, err := ParseEdgeList(strings.NewReader("0 1\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 {
		t.Errorf("n = %d, want 10 (minNodes)", g.N())
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(12)
	for i := 0; i < 40; i++ {
		b.AddEdge(rng.Intn(12), rng.Intn(12), 1+rng.Float64())
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseEdgeList(&buf, 12)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", back.N(), back.M(), g.N(), g.M())
	}
	for u := 0; u < g.N(); u++ {
		want := map[int]float64{}
		g.OutNeighbors(u, func(to int, w float64) { want[to] = w })
		back.OutNeighbors(u, func(to int, w float64) {
			if math.Abs(want[to]-w) > 1e-9 {
				t.Errorf("edge %d->%d weight %v, want %v", u, to, w, want[to])
			}
			delete(want, to)
		})
		if len(want) != 0 {
			t.Errorf("node %d lost edges %v", u, want)
		}
	}
}

func TestEdgesAccessor(t *testing.T) {
	b := NewBuilder(3)
	mustEdge(t, b, 0, 1, 1)
	mustEdge(t, b, 1, 2, 2)
	g := b.Build()
	es := g.Edges()
	if len(es) != 2 {
		t.Fatalf("len(edges) = %d", len(es))
	}
	if es[0] != (Edge{0, 1, 1}) || es[1] != (Edge{1, 2, 2}) {
		t.Errorf("edges = %v", es)
	}
}

func TestOutWeightSum(t *testing.T) {
	b := NewBuilder(2)
	mustEdge(t, b, 0, 1, 1.5)
	mustEdge(t, b, 0, 0, 2.5)
	g := b.Build()
	if got := g.OutWeightSum(0); got != 4 {
		t.Errorf("OutWeightSum(0) = %v, want 4", got)
	}
	if got := g.OutWeightSum(1); got != 0 {
		t.Errorf("OutWeightSum(1) = %v, want 0", got)
	}
}
