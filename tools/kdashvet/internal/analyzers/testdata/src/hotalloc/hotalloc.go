// Golden tests for the hotalloc analyzer: //kdash:noalloc functions must
// not contain alloc-shaped constructs.
package hotalloc

import "fmt"

type ws struct {
	vals []float64
	idx  []int
}

type point struct{ x, y float64 }

func sink(v any)                {}
func notify(chan struct{})      {}
func indirect(f func() int) int { return f() }

//kdash:noalloc
func scatterIntoFields(w *ws, src []float64) {
	for i, v := range src {
		w.vals = append(w.vals, v) // ok: capacity owned by the long-lived struct
		w.idx = append(w.idx, i)
	}
}

//kdash:noalloc
func resliceReuse(w *ws, src []float64) float64 {
	buf := w.vals[:0]
	var sum float64
	for _, v := range src {
		buf = append(buf, v) // ok: reslice of existing backing
		sum += v
	}
	w.vals = buf
	return sum
}

//kdash:noalloc
func grow(n int) []float64 {
	out := make([]float64, 0) // want `make allocates`
	for i := 0; i < n; i++ {
		out = append(out, float64(i)) // want `append without capacity evidence`
	}
	return out
}

//kdash:noalloc
func fresh() *point {
	return new(point) // want `new allocates`
}

//kdash:noalloc
func lit() *point {
	return &point{1, 2} // want `composite literal allocates`
}

//kdash:noalloc
func sliceLit() []int {
	return []int{1, 2, 3} // want `composite literal allocates`
}

//kdash:noalloc
func valueLit(w *ws, i int) point {
	w.vals[i] = point{1, 2}.x // ok: value literal is a stack copy
	return point{3, 4}        // ok
}

//kdash:noalloc
func bfsQueue(w *ws, roots []int) int {
	queue := append(w.idx[:0], roots...) // ok: evidence flows through append to the pooled backing
	visited := 0
	for head := 0; head < len(queue); head++ {
		visited++
		if queue[head] > 0 {
			queue = append(queue, queue[head]-1) // ok: defined by an append with capacity evidence
		}
	}
	w.idx = queue[:0]
	return visited
}

//kdash:noalloc
func explicitBox(v float64) any {
	return any(v) // want `boxes its operand`
}

//kdash:noalloc
func implicitBox(x int) {
	sink(x) // want `argument boxes int into interface any`
}

//kdash:noalloc
func describe(n int) string {
	return fmt.Sprintf("n=%d", n) // want `call to fmt.Sprintf allocates`
}

//kdash:noalloc
func key(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//kdash:noalloc
func bytesToString(b []byte) string {
	return string(b) // want `string/\[\]byte conversion copies`
}

//kdash:noalloc
func spawn(done chan struct{}) {
	go notify(done) // want `go statement allocates`
}

//kdash:noalloc
func closures(n int) int {
	double := func(x int) int { return x * 2 } // ok: only ever called directly
	total := 0
	for i := 0; i < n; i++ {
		total = double(total) + i
	}
	escape := func() int { return total } // want `closure may capture`
	return total + indirect(escape)
}

//kdash:noalloc
func iife(n int) int {
	return func() int { return n * n }() // ok: immediately invoked
}

//kdash:noalloc
func lazyFirstTouch(w *ws, n int) {
	if cap(w.vals) == 0 {
		w.vals = make([]float64, 0, n) //kdash:allow(hotalloc) first-touch sizing happens once per pool lifetime
	}
}

func unannotated(n int) []int {
	return make([]int, n) // ok: no //kdash:noalloc directive
}
