package server

// POST /update: the dynamic-graph surface. The request body is one
// batch of mutations; the handler validates it fully, hands it to the
// engine's ApplyDelta, and atomically swaps the engine pointer to the
// returned successor epoch. In-flight queries loaded the old pointer
// and finish against the old (still fully valid) index — the drain is
// free because epochs are immutable — while every request arriving
// after the swap sees the new one. Updates are serialised through a
// mutex: the write path is single-writer by design, the read path
// never blocks.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"kdash/internal/core"
	"kdash/internal/graph"
)

// Updatable is implemented by engines that absorb graph deltas by
// producing a successor engine (both index shapes do: the sharded
// index incrementally, the monolithic one by full rebuild). ApplyDelta
// returns the successor untyped; the handler asserts Engine on it.
type Updatable interface {
	ApplyDelta(batch *graph.Delta) (next any, stats core.UpdateStats, err error)
}

// MaxAddNodes bounds node insertions per /update request, so a single
// request cannot balloon the index arbitrarily.
const MaxAddNodes = 65536

// MaxEdgeOps bounds addEdges + removeEdges per /update request, and
// maxUpdateBody caps the request body read at all — together they keep
// one request from exhausting memory or monopolising the single-writer
// update lock with a multi-second apply.
const MaxEdgeOps = 65536

// maxUpdateBody comfortably fits MaxEdgeOps JSON edge ops (~64 bytes
// each) plus slack.
const maxUpdateBody = 8 << 20

// edgeJSON is one edge op on the wire; Weight is ignored for removals.
type edgeJSON struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	Weight float64 `json:"weight,omitempty"`
}

// updateRequest is the POST /update payload. Ops apply in field order:
// node insertions first (their ids are n, n+1, ... and may be used by
// the edge ops), then edge additions, then removals.
type updateRequest struct {
	AddNodes    int        `json:"addNodes,omitempty"`
	AddEdges    []edgeJSON `json:"addEdges,omitempty"`
	RemoveEdges []edgeJSON `json:"removeEdges,omitempty"`
}

// updateResponse reports the applied batch.
type updateResponse struct {
	Epoch         int   `json:"epoch"`
	Nodes         int   `json:"nodes"` // node count after the update
	EdgesAdded    int   `json:"edgesAdded"`
	EdgesRemoved  int   `json:"edgesRemoved"`
	NodesAdded    int   `json:"nodesAdded"`
	ShardsRebuilt int   `json:"shardsRebuilt"`
	Repartitioned bool  `json:"repartitioned"`
	FullRebuild   bool  `json:"fullRebuild"`
	ApplyMillis   int64 `json:"applyMillis"`
}

// update handles POST /update.
func (h *Handler) update(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req updateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUpdateBody)).Decode(&req); err != nil {
		h.badRequest(w, "bad JSON: %v", err)
		return
	}
	if req.AddNodes < 0 {
		h.badRequest(w, "addNodes must be non-negative, got %d", req.AddNodes)
		return
	}
	if req.AddNodes > MaxAddNodes {
		h.badRequest(w, "addNodes %d exceeds limit %d", req.AddNodes, MaxAddNodes)
		return
	}
	if ops := len(req.AddEdges) + len(req.RemoveEdges); ops > MaxEdgeOps {
		h.badRequest(w, "%d edge ops exceed limit %d", ops, MaxEdgeOps)
		return
	}
	if req.AddNodes == 0 && len(req.AddEdges) == 0 && len(req.RemoveEdges) == 0 {
		h.badRequest(w, "empty update")
		return
	}

	// Durable mode: ack after a WAL append (microseconds) and let the
	// background compactor fold the batch in; see wal.go.
	if h.wals != nil {
		h.updateWAL(w, &req)
		return
	}

	// Serialise appliers: the batch must be validated against the epoch
	// it will actually apply to, so the snapshot is taken under the lock.
	h.updateMu.Lock()
	defer h.updateMu.Unlock()
	st := h.snap()
	if st.upd == nil {
		h.updUnsupported.Add(1)
		httpError(w, http.StatusNotImplemented, "engine does not support updates (rebuild from the source graph instead)")
		return
	}
	batch, err := buildDelta(st.engine.N(), &req)
	if err != nil {
		h.badRequest(w, "%v", err)
		return
	}

	t0 := time.Now()
	next, stats, err := st.upd.ApplyDelta(batch)
	if err != nil {
		switch {
		// The one engine-side failure a client can cause with a
		// well-formed request: removing an edge that is not there.
		case errors.Is(err, graph.ErrEdgeNotFound):
			h.badRequest(w, "%v", err)
		// An index loaded without its graph snapshot implements the
		// interface but cannot replay deltas: same answer as a static
		// engine.
		case errors.Is(err, core.ErrNotUpdatable):
			h.updUnsupported.Add(1)
			httpError(w, http.StatusNotImplemented, err.Error())
		default:
			// A coordinator that could not two-phase publish to every
			// worker rolls the epoch back and reports worker loss (503):
			// the update is safe to retry once the cluster heals.
			if !h.unavailable(w, err) {
				h.internalError(w, err)
			}
		}
		return
	}
	engine, ok := next.(Engine)
	if !ok {
		h.internalError(w, fmt.Errorf("engine %T returned a non-engine successor %T", st.upd, next))
		return
	}
	h.state.Store(newEngineState(engine, stats.Epoch))
	h.invalidateCache(engine, stats)
	h.qUpdates.Add(1)
	h.updShards.Add(int64(stats.ShardsRebuilt))
	h.updEdges.Add(int64(stats.EdgesAdded + stats.EdgesRemoved))
	h.updNodes.Add(int64(stats.NodesAdded))
	if stats.Repartitioned {
		h.updReparts.Add(1)
	}
	writeJSON(w, updateResponse{
		Epoch:         stats.Epoch,
		Nodes:         engine.N(),
		EdgesAdded:    stats.EdgesAdded,
		EdgesRemoved:  stats.EdgesRemoved,
		NodesAdded:    stats.NodesAdded,
		ShardsRebuilt: stats.ShardsRebuilt,
		Repartitioned: stats.Repartitioned,
		FullRebuild:   stats.FullRebuild,
		ApplyMillis:   time.Since(t0).Milliseconds(),
	})
}

// buildDelta validates the request against the engine's node count and
// assembles the batch. Every failure here is a 400: nothing has been
// applied.
func buildDelta(n int, req *updateRequest) (*graph.Delta, error) {
	d := graph.NewDelta(n)
	for i := 0; i < req.AddNodes; i++ {
		d.AddNode()
	}
	for i, e := range req.AddEdges {
		if e.Weight == 0 {
			e.Weight = 1 // unweighted graphs omit the field
		}
		// Range and positive-weight validation live in Delta.AddEdge.
		if err := d.AddEdge(e.From, e.To, e.Weight); err != nil {
			return nil, fmt.Errorf("addEdges[%d]: %v", i, err)
		}
	}
	for i, e := range req.RemoveEdges {
		if err := d.RemoveEdge(e.From, e.To); err != nil {
			return nil, fmt.Errorf("removeEdges[%d]: %v", i, err)
		}
	}
	return d, nil
}
