package sparse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestCOOToCSRBasic(t *testing.T) {
	coo := NewCOO(3, 4)
	coo.Add(0, 1, 2)
	coo.Add(2, 3, 5)
	coo.Add(1, 0, -1)
	m := coo.ToCSR()
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", m.NNZ())
	}
	if got := m.At(0, 1); !almostEq(got, 2) {
		t.Errorf("At(0,1) = %v, want 2", got)
	}
	if got := m.At(1, 0); !almostEq(got, -1) {
		t.Errorf("At(1,0) = %v, want -1", got)
	}
	if got := m.At(2, 3); !almostEq(got, 5) {
		t.Errorf("At(2,3) = %v, want 5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Errorf("At(0,0) = %v, want 0", got)
	}
}

func TestCOODuplicatesSummed(t *testing.T) {
	coo := NewCOO(2, 2)
	coo.Add(0, 0, 1)
	coo.Add(0, 0, 2.5)
	coo.Add(1, 1, 4)
	coo.Add(1, 1, -4) // cancels to zero, must be dropped
	m := coo.ToCSR()
	if got := m.At(0, 0); !almostEq(got, 3.5) {
		t.Errorf("At(0,0) = %v, want 3.5", got)
	}
	if m.NNZ() != 1 {
		t.Errorf("nnz = %d, want 1 (exact-zero entry must be dropped)", m.NNZ())
	}
}

func TestCOOBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range entry")
		}
	}()
	NewCOO(2, 2).Add(2, 0, 1)
}

func randomCOO(rng *rand.Rand, rows, cols, nnz int) *COO {
	coo := NewCOO(rows, cols)
	for i := 0; i < nnz; i++ {
		coo.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64()+0.1)
	}
	return coo
}

func TestCSRCSCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		csr := randomCOO(rng, rows, cols, rng.Intn(60)).ToCSR()
		back := csr.ToCSC().ToCSR()
		if !reflect.DeepEqual(csr.Dense(), back.Dense()) {
			t.Fatalf("trial %d: CSR->CSC->CSR changed matrix", trial)
		}
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		rows, cols := 1+rng.Intn(15), 1+rng.Intn(15)
		csr := randomCOO(rng, rows, cols, rng.Intn(50)).ToCSR()
		csc := csr.ToCSC()
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		d := csr.Dense()
		want := make([]float64, rows)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				want[r] += d[r][c] * x[c]
			}
		}
		for name, got := range map[string][]float64{"csr": csr.MulVec(x), "csc": csc.MulVec(x)} {
			for r := range want {
				if math.Abs(got[r]-want[r]) > 1e-9 {
					t.Fatalf("trial %d %s: y[%d] = %v, want %v", trial, name, r, got[r], want[r])
				}
			}
		}
		y := make([]float64, rows)
		csc.MulVecTo(y, x)
		for r := range want {
			if math.Abs(y[r]-want[r]) > 1e-9 {
				t.Fatalf("trial %d MulVecTo: y[%d] = %v, want %v", trial, r, y[r], want[r])
			}
		}
	}
}

func TestTransposeProperty(t *testing.T) {
	// (M^T)_{cr} == M_{rc} for random sparse matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		m := randomCOO(rng, rows, cols, rng.Intn(40)).ToCSR()
		mt := m.Transpose()
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if !almostEq(m.At(r, c), mt.At(c, r)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPermuteSymRoundTrip(t *testing.T) {
	// Applying a permutation and then its inverse restores the matrix.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		m := randomCOO(rng, n, n, rng.Intn(3*n)).ToCSC()
		perm := rng.Perm(n)
		inv := make([]int, n)
		for i, p := range perm {
			inv[p] = i
		}
		back := m.PermuteSym(perm).PermuteSym(inv)
		return reflect.DeepEqual(m.Dense(), back.Dense())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPermuteSymMovesEntries(t *testing.T) {
	coo := NewCOO(3, 3)
	coo.Add(0, 1, 7)
	m := coo.ToCSC()
	// perm maps 0->2, 1->0, 2->1, so entry (0,1) moves to (2,0).
	p := m.PermuteSym([]int{2, 0, 1})
	if got := p.At(2, 0); !almostEq(got, 7) {
		t.Errorf("permuted entry At(2,0) = %v, want 7", got)
	}
	if p.NNZ() != 1 {
		t.Errorf("nnz = %d, want 1", p.NNZ())
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	x := []float64{1, 2, 3, 4}
	y := id.MulVec(x)
	if !reflect.DeepEqual(x, y) {
		t.Errorf("I*x = %v, want %v", y, x)
	}
}

func TestColMaxAndMax(t *testing.T) {
	coo := NewCOO(3, 3)
	coo.Add(0, 0, 0.5)
	coo.Add(1, 0, 0.9)
	coo.Add(2, 2, 0.3)
	m := coo.ToCSC()
	cm := m.ColMax()
	want := []float64{0.9, 0, 0.3}
	for i := range want {
		if !almostEq(cm[i], want[i]) {
			t.Errorf("ColMax[%d] = %v, want %v", i, cm[i], want[i])
		}
	}
	if !almostEq(m.Max(), 0.9) {
		t.Errorf("Max = %v, want 0.9", m.Max())
	}
}

func TestVectorDot(t *testing.T) {
	a := &Vector{N: 6, Idx: []int{0, 2, 5}, Val: []float64{1, 2, 3}}
	b := &Vector{N: 6, Idx: []int{2, 3, 5}, Val: []float64{4, 9, 5}}
	if got := a.Dot(b); !almostEq(got, 2*4+3*5) {
		t.Errorf("Dot = %v, want 23", got)
	}
	empty := &Vector{N: 6}
	if got := a.Dot(empty); got != 0 {
		t.Errorf("Dot with empty = %v, want 0", got)
	}
}

func TestVectorScatter(t *testing.T) {
	a := &Vector{N: 5, Idx: []int{1, 4}, Val: []float64{7, 8}}
	ws := make([]float64, 5)
	touched := a.Scatter(ws)
	if !almostEq(ws[1], 7) || !almostEq(ws[4], 8) {
		t.Errorf("scatter result %v", ws)
	}
	if len(touched) != 2 {
		t.Errorf("touched = %v", touched)
	}
}

func TestColExtract(t *testing.T) {
	coo := NewCOO(4, 3)
	coo.Add(1, 2, 5)
	coo.Add(3, 2, 6)
	coo.Add(0, 0, 1)
	m := coo.ToCSC()
	v := m.Col(2)
	if !reflect.DeepEqual(v.Idx, []int{1, 3}) {
		t.Errorf("col idx = %v", v.Idx)
	}
	if !almostEq(v.Val[0], 5) || !almostEq(v.Val[1], 6) {
		t.Errorf("col val = %v", v.Val)
	}
	if v2 := m.Col(1); len(v2.Idx) != 0 {
		t.Errorf("empty column should have no entries, got %v", v2.Idx)
	}
}

func TestScale(t *testing.T) {
	coo := NewCOO(2, 2)
	coo.Add(0, 1, 3)
	m := coo.ToCSC()
	m.Scale(2)
	if got := m.At(0, 1); !almostEq(got, 6) {
		t.Errorf("scaled entry = %v, want 6", got)
	}
}
