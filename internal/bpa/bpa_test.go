package bpa

import (
	"testing"

	"kdash/internal/gen"
	"kdash/internal/rwr"
)

func TestRecallAlwaysOne(t *testing.T) {
	// The defining guarantee: the BPA answer set contains every exact
	// top-k node, across hub settings and queries.
	g := gen.PlantedPartition(150, 4, 0.2, 0.01, 1)
	a := g.ColumnNormalized()
	for _, hubs := range []int{0, 10, 50} {
		ix, err := New(g, Options{Hubs: hubs})
		if err != nil {
			t.Fatalf("hubs=%d: %v", hubs, err)
		}
		for _, q := range []int{0, 40, 99} {
			k := 8
			want, err := rwr.TopK(a, q, k, 0.95)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := ix.TopK(q, k)
			if err != nil {
				t.Fatal(err)
			}
			gotSet := map[int]bool{}
			for _, r := range got {
				gotSet[r.Node] = true
			}
			for _, w := range want {
				if w.Score > 1e-9 && !gotSet[w.Node] {
					t.Errorf("hubs=%d q=%d: exact answer node %d (score %v) missing from BPA set",
						hubs, q, w.Node, w.Score)
				}
			}
		}
	}
}

func TestAnswerSetCanExceedK(t *testing.T) {
	// With a loose epsilon the bounds cannot separate nodes, so the set
	// grows beyond K — the behaviour the paper notes for BPA.
	g := gen.ErdosRenyi(100, 500, 2)
	ix, err := New(g, Options{Hubs: 0, Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.TopK(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) <= 3 {
		t.Logf("answer set size %d (may legitimately be small on easy queries)", len(got))
	}
}

func TestHubsReducePushes(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 3)
	few, err := New(g, Options{Hubs: 0})
	if err != nil {
		t.Fatal(err)
	}
	many, err := New(g, Options{Hubs: 50})
	if err != nil {
		t.Fatal(err)
	}
	q, k := 120, 5
	_, sFew, err := few.TopK(q, k)
	if err != nil {
		t.Fatal(err)
	}
	_, sMany, err := many.TopK(q, k)
	if err != nil {
		t.Fatal(err)
	}
	if sMany.Pushes >= sFew.Pushes {
		t.Errorf("hubs should cut pushes: %d (50 hubs) vs %d (0 hubs)", sMany.Pushes, sFew.Pushes)
	}
	if sMany.HubHits == 0 {
		t.Error("expected hub hits with 50 hubs on a BA graph")
	}
}

func TestEstimatesAreLowerBounds(t *testing.T) {
	g := gen.DirectedScaleFree(120, 3, 0.3, 0.25, 4)
	a := g.ColumnNormalized()
	ix, err := New(g, Options{Hubs: 10})
	if err != nil {
		t.Fatal(err)
	}
	q := 15
	exact, _, err := rwr.Iterative(a, q, 0.95, 1e-13, 100000)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := ix.TopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.Score > exact[r.Node]+1e-6 {
			t.Errorf("estimate %v exceeds exact proximity %v at node %d", r.Score, exact[r.Node], r.Node)
		}
		if r.Score+stats.Residual < exact[r.Node]-1e-6 {
			t.Errorf("upper bound %v below exact %v at node %d", r.Score+stats.Residual, exact[r.Node], r.Node)
		}
	}
}

func TestQueryRanksFirst(t *testing.T) {
	g := gen.ErdosRenyi(80, 320, 5)
	ix, err := New(g, Options{Hubs: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.TopK(33, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].Node != 33 {
		t.Errorf("query node should lead the answer set: %v", got)
	}
}

func TestQueryIsHub(t *testing.T) {
	// When the query itself is a hub, one push resolves everything.
	g := gen.BarabasiAlbert(100, 3, 6)
	ix, err := New(g, Options{Hubs: 100}) // every node is a hub
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := ix.TopK(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pushes != 1 || stats.HubHits != 1 {
		t.Errorf("hub query should settle in one push, stats %+v", stats)
	}
	a := g.ColumnNormalized()
	want, err := rwr.TopK(a, 4, 5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if got[i].Node != w.Node {
			t.Errorf("rank %d: got %d want %d", i, got[i].Node, w.Node)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	g := gen.ErdosRenyi(20, 60, 7)
	if _, err := New(g, Options{Hubs: -1}); err == nil {
		t.Error("expected error for negative hubs")
	}
	if _, err := New(g, Options{Hubs: 21}); err == nil {
		t.Error("expected error for hubs > n")
	}
	if _, err := New(g, Options{Restart: 1.2}); err == nil {
		t.Error("expected error for restart outside (0,1)")
	}
	ix, err := New(g, Options{Hubs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.TopK(50, 3); err == nil {
		t.Error("expected error for out-of-range query")
	}
	if _, _, err := ix.TopK(0, 0); err == nil {
		t.Error("expected error for k=0")
	}
}

func TestDanglingNodesHandled(t *testing.T) {
	// Residual pushed into a dangling node settles (c fraction) and the
	// rest vanishes — mirroring how RWR mass dies there.
	g := gen.DirectedScaleFree(60, 2, 0.5, 0.2, 8)
	ix, err := New(g, Options{Hubs: 0})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.TopK(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Error("expected non-empty answer set")
	}
}
