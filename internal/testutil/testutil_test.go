package testutil

import (
	"math/rand"
	"testing"
)

func TestShapesDeterministicAndNonEmpty(t *testing.T) {
	a, b := Shapes(7), Shapes(7)
	if len(a) == 0 {
		t.Fatal("no shapes")
	}
	for name, g := range a {
		if g.N() == 0 || g.M() == 0 {
			t.Errorf("%s: empty graph (n=%d m=%d)", name, g.N(), g.M())
		}
		g2 := b[name]
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Errorf("%s: not deterministic (n %d vs %d, m %d vs %d)", name, g.N(), g2.N(), g.M(), g2.M())
		}
	}
}

func TestShapeProperties(t *testing.T) {
	// Self-loop-heavy really has self loops.
	loops := 0
	for _, e := range SelfLoopHeavy(60, 3).Edges() {
		if e.From == e.To {
			loops++
		}
	}
	if loops < 10 {
		t.Errorf("SelfLoopHeavy: only %d self loops", loops)
	}
	// Disconnected components never reach each other.
	g := Disconnected(90, 3, 5)
	res := g.BFS(0)
	for u := 30; u < 90; u++ {
		if res.Layer[u] >= 0 {
			t.Fatalf("node %d reachable across components", u)
		}
	}
	// Grid has the expected node count and symmetric edges.
	gr := Grid(4, 5)
	if gr.N() != 20 {
		t.Fatalf("Grid(4,5): n=%d", gr.N())
	}
	for u := 0; u < gr.N(); u++ {
		if gr.OutDegree(u) != gr.InDegree(u) {
			t.Fatalf("grid node %d asymmetric: out=%d in=%d", u, gr.OutDegree(u), gr.InDegree(u))
		}
	}
}

func TestRandomDeltaAlwaysApplies(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := Random(rng)
		for round := 0; round < 3; round++ {
			d := RandomDelta(rng, g, 6)
			g2, err := g.Apply(d)
			if err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			if g2.N() != g.N()+d.AddedNodes() {
				t.Fatalf("seed %d: n=%d want %d", seed, g2.N(), g.N()+d.AddedNodes())
			}
			g = g2
		}
	}
}
