package shard

// Speculative parallel cross-shard push. The sequential push (run) is a
// strict greedy loop — solve the shard with the most pending weighted
// mass, scatter across its cut edges, repeat — and that order is
// load-bearing: the float accumulation order of downstream residuals,
// and therefore every ranked value, depends on it. The parallel push
// must not reorder a single commit.
//
// So it speculates instead of reordering. The main goroutine runs the
// exact sequential greedy loop and is the only goroutine that ever
// touches shared push state; while it handles the current best shard,
// up to PushWorkers-1 background workers pre-solve the *other* pending
// shards from right-hand-side snapshots copied on the main goroutine.
// Each snapshot carries the shard's residual version (rver, bumped on
// every residual write); when the greedy order reaches a shard whose
// speculative solve is ready AND whose version is unchanged, the cached
// solution commits — through the same consumeResidual/applySolve pair,
// in the same order, on the same bits, because an unchanged version
// means the snapshot equals what consumeResidual drains. A changed
// version throws the speculation away and solves synchronously.
//
// Workers run pure solves: each owns a private core.SparseSolver (never
// shared with the sequential path's pooled solvers) and reads only its
// snapshot buffers, so the only cross-goroutine edges are the
// completion channel's send/receive pairs. Misprediction costs wasted
// background cycles, never a changed answer. QueryStats count committed
// work only, so a query's stats are identical to its sequential run.

import (
	"fmt"
	"sort"

	"kdash/internal/core"
)

// Speculation slot lifecycle, per shard.
const (
	specIdle    uint8 = iota // no speculation outstanding
	specPending              // a worker is solving a snapshot
	specDone                 // results parked in specY/specSup/specErr
)

// runParallel is run's speculative counterpart: identical greedy loop,
// identical commits, background workers warming the shards the loop has
// not reached yet. Bit-identical to the sequential push by construction
// (see the file comment); unlike the sequential path it allocates — a
// goroutine per speculation launch — which is the opt-in trade
// Options.PushWorkers makes.
//
//kdash:deterministic
//kdash:ctxloop
func (st *pushState) runParallel(w []float64) (QueryStats, error) {
	var qs QueryStats
	sx := st.sx
	s := len(sx.parts)
	tol := sx.qtol * st.initial
	st.ensureSpec()
	// Workers hold references into this state's buffers and solvers:
	// every return path must wait them out before the state can go back
	// to the pool.
	defer st.drainSpec()

	total, weighted := st.initial, st.initial
	for {
		best, bestMass := -1, 0.0
		total, weighted = 0, 0
		for si := 0; si < s; si++ {
			total += st.resMass[si]
			m := st.resMass[si]
			if w != nil {
				m *= w[si]
			}
			weighted += m
			if m > bestMass {
				best, bestMass = si, m
			}
		}
		if weighted <= tol || best < 0 || qs.Solves >= maxSolves {
			break
		}
		if st.ctx != nil {
			if err := st.ctx.Err(); err != nil {
				return qs, fmt.Errorf("shard: query cancelled after %d solves: %w", qs.Solves, err)
			}
		}
		st.reapSpec(false)
		st.launchSpecs(w, best)
		if err := st.commitShard(best, &qs); err != nil {
			return qs, err
		}
	}
	qs.ResidualMass = total
	qs.Converged = weighted <= tol
	for si := 0; si < s; si++ {
		if st.resMass[si] > 0 && !st.solved[si] {
			qs.ShardsPruned++
		}
	}
	return qs, nil
}

// ensureSpec sizes the speculative-push state on this instance's first
// parallel run; pooled reuse keeps it (and its per-shard solvers) for
// every later query.
func (st *pushState) ensureSpec() {
	if st.specState != nil {
		return
	}
	s := len(st.sx.parts)
	st.rver = make([]uint64, s)
	st.specSolvers = make([]*core.SparseSolver, s)
	st.specIdx = make([][]int, s)
	st.specVal = make([][]float64, s)
	st.specVer = make([]uint64, s)
	st.specY = make([][]float64, s)
	st.specSup = make([][]int, s)
	st.specErr = make([]error, s)
	st.specState = make([]uint8, s)
	st.specCh = make(chan int, s)
}

// commitShard folds shard best's pending residual into the solution:
// through a valid speculative solve when one is ready, synchronously
// otherwise. Both paths drain the residual and apply the solution with
// the same calls in the same order — the committed bits never depend on
// which path ran. A speculation still in flight for best is waited for
// rather than duplicated.
//
//kdash:deterministic
func (st *pushState) commitShard(best int, qs *QueryStats) error {
	for st.specState[best] == specPending {
		st.reapSpec(true)
	}
	if st.specState[best] == specDone {
		st.specState[best] = specIdle
		if st.specErr[best] == nil && st.specVer[best] == st.rver[best] {
			// Unchanged version: the snapshot the worker solved equals
			// the residual drained here, entry for entry.
			st.consumeResidual(best)
			st.applySolve(best, st.specY[best], st.specSup[best], qs)
			return nil
		}
	}
	// A failed or stale speculation falls through to the synchronous
	// path — under a RemoteSolver that retries the worker once more
	// before the query is abandoned.
	return st.solveShard(best, qs)
}

// launchSpecs tops the background workers up to the budget with the
// heaviest pending shards other than best, which the main goroutine is
// about to handle. A done-but-stale slot (its shard received more
// residual after the snapshot) is relaunched with a fresh snapshot.
func (st *pushState) launchSpecs(w []float64, best int) {
	budget := st.sx.pushWorkers - 1
	for st.specInFlight < budget {
		cand, candMass := -1, 0.0
		for si := range st.resMass {
			if si == best || st.resMass[si] <= 0 {
				continue
			}
			switch st.specState[si] {
			case specPending:
				continue
			case specDone:
				if st.specErr[si] == nil && st.specVer[si] == st.rver[si] {
					continue // still valid: ready to commit, nothing to redo
				}
			}
			m := st.resMass[si]
			if w != nil {
				m *= w[si]
			}
			if m > candMass {
				cand, candMass = si, m
			}
		}
		if cand < 0 {
			return
		}
		st.launchSpec(cand)
	}
}

// launchSpec snapshots shard si's residual and hands it to a background
// worker. The snapshot copy, the version stamp and the solver checkout
// (including a possible lazy shard open) all happen on the calling
// goroutine; the worker runs only the solver's kernel on its private
// workspace and parks the result for the channel receive to publish.
func (st *pushState) launchSpec(si int) {
	idx, val := st.snapshotResidual(si)
	st.specVer[si] = st.rver[si]
	st.specState[si] = specPending
	st.specInFlight++
	if r := st.sx.remote; r != nil {
		// Remote speculation: the worker call is concurrency-safe and
		// returns freshly allocated results, so the goroutine needs no
		// private solver. The snapshot buffers stay owned by this state —
		// the RemoteSolver contract forbids retaining them.
		go func() {
			y, sup, err := r.SolveSparse(si, idx, val)
			st.specY[si], st.specSup[si], st.specErr[si] = y, sup, err
			st.specCh <- si
		}()
		return
	}
	if st.specSolvers[si] == nil {
		st.specSolvers[si] = st.sx.parts[si].index().NewSparseSolver()
	}
	sl := st.specSolvers[si]
	go func() {
		y, sup, err := sl.SolveSparse(idx, val)
		st.specY[si], st.specSup[si], st.specErr[si] = y, sup, err
		st.specCh <- si
	}()
}

// snapshotResidual copies shard si's pending residual into its spec
// buffers — same ascending order, same nonzero filter as
// consumeResidual — without consuming it: the mass stays pending until
// the greedy order actually picks the shard.
func (st *pushState) snapshotResidual(si int) ([]int, []float64) {
	sup := st.rsup[si]
	sort.Ints(sup)
	idx, val := st.specIdx[si][:0], st.specVal[si][:0]
	rb := st.res[si]
	for _, lv := range sup {
		if v := rb[lv]; v != 0 {
			idx = append(idx, lv)
			val = append(val, v)
		}
	}
	st.specIdx[si], st.specVal[si] = idx, val
	return idx, val
}

// reapSpec collects finished speculative solves into their done slots;
// with block set it waits for at least one completion first (callers
// only block while a speculation they need is pending, so a receive is
// guaranteed to arrive).
func (st *pushState) reapSpec(block bool) {
	for st.specInFlight > 0 {
		if block {
			st.specRecv(<-st.specCh)
			block = false
			continue
		}
		select {
		case si := <-st.specCh:
			st.specRecv(si)
		default:
			return
		}
	}
}

func (st *pushState) specRecv(si int) {
	st.specInFlight--
	st.specState[si] = specDone
}

// drainSpec waits out every in-flight worker and resets the slots to
// idle — the between-queries invariant for a pooled state's spec side.
func (st *pushState) drainSpec() {
	for st.specInFlight > 0 {
		st.specRecv(<-st.specCh)
	}
	for si := range st.specState {
		st.specState[si] = specIdle
	}
}
