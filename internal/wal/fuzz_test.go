package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at recovery as the content of a
// single segment file and asserts the crash-safety invariants hold for
// any input: Open never panics and never fails (a lone corrupt segment
// is truncated, not fatal), replay yields records in contiguous
// sequence order, recovery is idempotent (a second Open sees exactly
// what the first one kept), and the recovered log accepts appends that
// continue the sequence.
func FuzzWALReplay(f *testing.F) {
	// Seed with a clean two-record segment, its torn and bit-flipped
	// variants, and degenerate files.
	l, err := Open(f.TempDir(), Options{Sync: SyncNone})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := l.Append([]byte("seed-one")); err != nil {
		f.Fatal(err)
	}
	if _, err := l.Append([]byte("seed-two")); err != nil {
		f.Fatal(err)
	}
	names := l.SegmentNames()
	l.Close()
	clean, err := os.ReadFile(filepath.Join(l.Dir(), names[0]))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-3])
	flipped := append([]byte(nil), clean...)
	flipped[len(segMagic)+frameHeaderLen] ^= 0xFF
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add([]byte("not a wal segment at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Skip()
		}
		lg, err := Open(dir, Options{Sync: SyncNone})
		if err != nil {
			t.Fatalf("Open on fuzzed segment: %v", err)
		}
		var first []struct {
			seq  uint64
			body []byte
		}
		prev := uint64(0)
		if err := lg.Replay(0, func(seq uint64, b []byte) error {
			if seq != prev+1 {
				t.Fatalf("non-contiguous replay: seq %d after %d", seq, prev)
			}
			prev = seq
			first = append(first, struct {
				seq  uint64
				body []byte
			}{seq, append([]byte(nil), b...)})
			return nil
		}); err != nil {
			t.Fatalf("Replay: %v", err)
		}
		last := lg.LastSeq()
		if uint64(len(first)) != last {
			t.Fatalf("recovered %d records but LastSeq = %d", len(first), last)
		}
		if seq, err := lg.Append([]byte("resume")); err != nil || seq != last+1 {
			t.Fatalf("resume Append = (%d, %v), want (%d, nil)", seq, err, last+1)
		}
		lg.Close()

		// Idempotence: recovery already truncated the torn tail, so a
		// second Open must keep every original record plus the resume
		// append, with nothing newly dropped.
		lg2, err := Open(dir, Options{Sync: SyncNone})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer lg2.Close()
		i := 0
		if err := lg2.Replay(0, func(seq uint64, b []byte) error {
			if seq <= last {
				if i >= len(first) || first[i].seq != seq || !bytes.Equal(first[i].body, b) {
					t.Fatalf("second recovery disagrees at seq %d", seq)
				}
				i++
			}
			return nil
		}); err != nil {
			t.Fatalf("second Replay: %v", err)
		}
		if i != len(first) || lg2.LastSeq() != last+1 {
			t.Fatalf("second recovery kept %d/%d records, LastSeq %d want %d",
				i, len(first), lg2.LastSeq(), last+1)
		}
	})
}
