//go:build linux

package procmem

import (
	"os"
	"strconv"
	"strings"
)

// resident parses /proc/self/statm, whose second field is the resident
// set in pages. Reading it costs one small pread — cheap enough for a
// /statz handler.
func resident() int64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}
