package shard

// Persistence tests for the sectioned (v3) directory layout: every load
// mode must answer bit-identically, lazy opens must touch only the
// shards a query actually solves, and update chains must survive a
// save -> mmap-load -> update -> save round trip — the differential
// harness's contract extended over the on-disk boundary.

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"kdash/internal/mmapio"
	"kdash/internal/reorder"
	"kdash/internal/testutil"
)

// assertSameTopK fails unless both indexes answer a query battery with
// identical bits.
func assertSameTopK(t *testing.T, want, got *ShardedIndex, label string) {
	t.Helper()
	n := want.N()
	for _, q := range []int{0, n / 2, n - 1} {
		a, _, err := want.TopK(q, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := got.TopK(q, 7)
		if err != nil {
			t.Fatalf("%s: TopK: %v", label, err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s q=%d: %d vs %d results", label, q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s q=%d rank %d: %v vs %v (not bit-identical)", label, q, i, a[i], b[i])
			}
		}
		pa, err := want.Proximity(q, (q+3)%n)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := got.Proximity(q, (q+3)%n)
		if err != nil {
			t.Fatalf("%s: Proximity: %v", label, err)
		}
		if pa != pb {
			t.Fatalf("%s q=%d: proximity %v vs %v", label, q, pa, pb)
		}
	}
}

// TestV3DirectoryLoadModesBitIdentical saves once and reloads through
// every mode x laziness combination, plus the legacy v2 writer.
func TestV3DirectoryLoadModesBitIdentical(t *testing.T) {
	g := testutil.Clustered(300, 4, 21)
	built, err := Build(g, Options{Shards: 4, Reorder: reorder.Hybrid, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}

	// The manifest must be v3 and carry per-shard nnz hints.
	blob, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	if m.Version != manifestVersion || m.ShardFormat != shardFormatSectioned {
		t.Fatalf("manifest version/format = %d/%d, want %d/%d", m.Version, m.ShardFormat, manifestVersion, shardFormatSectioned)
	}
	if len(m.Stats.NNZShards) != built.Shards() {
		t.Fatalf("manifest has %d nnz hints for %d shards", len(m.Stats.NNZShards), built.Shards())
	}

	loads := []struct {
		label string
		opt   LoadOptions
	}{
		{"copy-eager", LoadOptions{Mode: mmapio.ModeCopy}},
		{"copy-lazy", LoadOptions{Mode: mmapio.ModeCopy, Lazy: true}},
		{"auto-eager", LoadOptions{}},
		{"auto-lazy", LoadOptions{Lazy: true}},
	}
	for _, lc := range loads {
		sx, err := Open(dir, lc.opt)
		if err != nil {
			t.Fatalf("%s: %v", lc.label, err)
		}
		assertSameTopK(t, built, sx, lc.label)
		if err := sx.Close(); err != nil {
			t.Fatalf("%s: Close: %v", lc.label, err)
		}
	}

	// Legacy writer: a v2 manifest with v1 stream shards still loads —
	// through Load and through an mmap-requesting Open (which falls back
	// to parsing per file).
	legacyDir := filepath.Join(t.TempDir(), "legacy")
	if err := built.SaveLegacy(legacyDir); err != nil {
		t.Fatal(err)
	}
	blob, err = os.ReadFile(filepath.Join(legacyDir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	var lm manifest
	if err := json.Unmarshal(blob, &lm); err != nil {
		t.Fatal(err)
	}
	if lm.Version != 2 || lm.ShardFormat != 0 || lm.Stats.NNZShards != nil {
		t.Fatalf("legacy manifest version/format = %d/%d (hints %v), want 2/0 and no hints", lm.Version, lm.ShardFormat, lm.Stats.NNZShards)
	}
	fromLegacy, err := Load(legacyDir)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTopK(t, built, fromLegacy, "legacy-load")
	fromLegacyMmap, err := Open(legacyDir, LoadOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTopK(t, built, fromLegacyMmap, "legacy-mmap-fallback")
	if fromLegacy.Graph() == nil {
		t.Fatal("legacy v2 load lost the graph snapshot")
	}
}

// TestLazyOpenTouchesOnlyQueriedShards pins the instant-cold-start
// property: with disconnected components pinned to separate shards, a
// query in one component must never open the other component's shard
// file — enforced by deleting that file from disk before querying.
func TestLazyOpenTouchesOnlyQueriedShards(t *testing.T) {
	g := testutil.Disconnected(200, 2, 5)
	// Pin each component to its own shard: Disconnected builds comps of
	// equal size over contiguous id ranges.
	assign := make([]int, g.N())
	for u := range assign {
		if u >= g.N()/2 {
			assign[u] = 1
		}
	}
	built, err := Build(g, Options{Assignment: assign, Reorder: reorder.Hybrid, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}
	sx, err := Open(dir, LoadOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()
	if opened := sx.Statz()["shardsOpened"].(int); opened != 0 {
		t.Fatalf("open touched %d shard files before any query", opened)
	}
	// Shard 1's file is gone: only a query into component 0 can work.
	if err := os.Remove(filepath.Join(dir, "shard-0001.idx")); err != nil {
		t.Fatal(err)
	}
	want, _, err := built.TopK(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sx.TopK(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("rank %d: %v vs %v", i, want[i], got[i])
		}
	}
	if opened := sx.Statz()["shardsOpened"].(int); opened != 1 {
		t.Fatalf("query into shard 0 left %d shards opened, want 1", opened)
	}
}

// TestMmapUpdateSaveChain runs the differential harness's oracle over a
// save -> mmap-load -> update -> save chain: updates applied to a
// lazily mapped epoch must answer bit-identically to a pinned
// from-scratch rebuild, before and after another round trip.
func TestMmapUpdateSaveChain(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := testutil.Clustered(240, 3, 77)
	built, err := Build(g, Options{Shards: 3, Reorder: reorder.Hybrid, Seed: 77, StalenessLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "epoch0")
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}
	sx, err := Open(dir, LoadOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		d := testutil.RandomDelta(rng, sx.Graph(), 5)
		next, _, err := sx.Apply(d)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		sx = next
	}
	oracle, err := Build(sx.Graph(), Options{
		Restart:    sx.Restart(),
		Reorder:    reorder.Hybrid,
		Seed:       77,
		Assignment: sx.Assignment(),
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTopK(t, oracle, sx, "updated-over-mmap")

	// Save the successor epoch and remap it: still bit-identical.
	dir2 := filepath.Join(t.TempDir(), "epoch3")
	if err := sx.Save(dir2); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir2, LoadOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertSameTopK(t, oracle, re, "resaved-remapped")
	if re.Epoch() != sx.Epoch() {
		t.Fatalf("epoch lost in round trip: %d vs %d", re.Epoch(), sx.Epoch())
	}
}

// TestEagerOpenSurfacesShardErrors truncates one shard file: an eager
// Open must fail with an ordinary error (releasing the shards it did
// open), and a lazy Open must fail only when the broken shard is
// actually forced.
func TestEagerOpenSurfacesShardErrors(t *testing.T) {
	g := testutil.Clustered(120, 2, 9)
	built, err := Build(g, Options{Shards: 2, Reorder: reorder.Hybrid, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "shard-0001.idx")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, LoadOptions{}); err == nil {
		t.Fatal("eager Open accepted a truncated shard file")
	}
	sx, err := Open(dir, LoadOptions{Lazy: true})
	if err != nil {
		t.Fatalf("lazy Open failed before any shard was touched: %v", err)
	}
	defer sx.Close()
	if err := sx.parts[1].openIndex(); err == nil {
		t.Fatal("forcing the truncated shard open did not fail")
	}
}
