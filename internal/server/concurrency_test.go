package server

// The query hot path hands every request a pooled per-query state
// (core's search workspaces and sparse solvers, shard's push state).
// These tests drive both engine shapes through the HTTP surface from
// many goroutines and assert byte-identical responses against a
// sequential pass — the end-to-end check that pooled checkout per
// request is concurrent-safe and leak-free. Run with -race in CI.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
)

func hammer(t *testing.T, h *Handler, urls []string) {
	t.Helper()
	want := make([]string, len(urls))
	for i, url := range urls {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", url, rec.Code, rec.Body.String())
		}
		want[i] = rec.Body.String()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 15; rep++ {
				i := (w*5 + rep) % len(urls)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, urls[i], nil))
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d under concurrency", urls[i], rec.Code)
					return
				}
				if rec.Body.String() != want[i] {
					errs <- fmt.Errorf("%s: concurrent response %q != sequential %q", urls[i], rec.Body.String(), want[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func queryURLs(n int) []string {
	urls := make([]string, 0, 3*8)
	for q := 0; q < 8; q++ {
		urls = append(urls,
			fmt.Sprintf("/topk?q=%d&k=5", q*7%n),
			fmt.Sprintf("/proximity?q=%d&u=%d", q*3%n, (q*11+1)%n),
			fmt.Sprintf("/topk?q=%d&k=3&exclude=%d", q*13%n, q),
		)
	}
	return urls
}

func TestConcurrentRequestsMonolithic(t *testing.T) {
	h, ix := testHandler(t)
	hammer(t, h, queryURLs(ix.N()))
}

func TestConcurrentRequestsSharded(t *testing.T) {
	h, sx := shardedHandler(t)
	hammer(t, h, queryURLs(sx.N()))
}
