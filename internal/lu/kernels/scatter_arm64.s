//go:build arm64 && !noasm

#include "textflag.h"

// arm64 scatter kernels. The Go compiler fuses dst[r] += v*x into
// FMADDD on arm64, so these kernels use the same fused form — one
// rounding per entry — to stay bit-identical to the compiled scalar
// reference. The 4-lane kernels unroll by four with post-increment
// index/value loads; the gather/scatter halves stay scalar (no NEON
// scatter store) and run in ascending entry order, which keeps repeated
// trash rows in the padding tail safe. The 8-lane block kernel is true
// NEON: lanes of one row are contiguous and independent, so four
// two-wide VFMLA ops reproduce the eight fused scalar updates exactly.

// func scatterAXPYNEON(dst []float64, rows []int32, vals []float64, x float64)
TEXT ·scatterAXPYNEON(SB), NOSPLIT, $0-80
	MOVD  dst_base+0(FP), R0
	MOVD  rows_base+24(FP), R1
	MOVD  rows_len+32(FP), R2
	MOVD  vals_base+48(FP), R3
	FMOVD x+72(FP), F0
	LSR   $2, R2, R2          // quads; len is a multiple of 4 by contract
	CBZ   R2, done

loop:
	MOVWU.P 4(R1), R4         // rows[k..k+3]; non-negative, so unsigned
	MOVWU.P 4(R1), R5         // word loads are exact
	MOVWU.P 4(R1), R6
	MOVWU.P 4(R1), R7
	ADD     R4<<3, R0, R4     // &dst[r]
	ADD     R5<<3, R0, R5
	ADD     R6<<3, R0, R6
	ADD     R7<<3, R0, R7

	FMOVD.P 8(R3), F1         // v = vals[k]
	FMOVD   (R4), F2
	FMADDD  F0, F2, F1, F2    // acc = acc + v*x, one rounding
	FMOVD   F2, (R4)

	FMOVD.P 8(R3), F1
	FMOVD   (R5), F2
	FMADDD  F0, F2, F1, F2
	FMOVD   F2, (R5)

	FMOVD.P 8(R3), F1
	FMOVD   (R6), F2
	FMADDD  F0, F2, F1, F2
	FMOVD   F2, (R6)

	FMOVD.P 8(R3), F1
	FMOVD   (R7), F2
	FMADDD  F0, F2, F1, F2
	FMOVD   F2, (R7)

	SUB  $1, R2, R2
	CBNZ R2, loop

done:
	RET

// func scatterAXPY32NEON(dst []float64, rows []int32, vals []float32, x float64)
//
// Identical to scatterAXPYNEON except each value loads as float32 and
// widens exactly through FCVTSD before the fused multiply-add.
TEXT ·scatterAXPY32NEON(SB), NOSPLIT, $0-80
	MOVD  dst_base+0(FP), R0
	MOVD  rows_base+24(FP), R1
	MOVD  rows_len+32(FP), R2
	MOVD  vals_base+48(FP), R3
	FMOVD x+72(FP), F0
	LSR   $2, R2, R2
	CBZ   R2, done32

loop32:
	MOVWU.P 4(R1), R4
	MOVWU.P 4(R1), R5
	MOVWU.P 4(R1), R6
	MOVWU.P 4(R1), R7
	ADD     R4<<3, R0, R4
	ADD     R5<<3, R0, R5
	ADD     R6<<3, R0, R6
	ADD     R7<<3, R0, R7

	FMOVS.P 4(R3), F1
	FCVTSD  F1, F1            // widen float32 -> float64, exact
	FMOVD   (R4), F2
	FMADDD  F0, F2, F1, F2
	FMOVD   F2, (R4)

	FMOVS.P 4(R3), F1
	FCVTSD  F1, F1
	FMOVD   (R5), F2
	FMADDD  F0, F2, F1, F2
	FMOVD   F2, (R5)

	FMOVS.P 4(R3), F1
	FCVTSD  F1, F1
	FMOVD   (R6), F2
	FMADDD  F0, F2, F1, F2
	FMOVD   F2, (R6)

	FMOVS.P 4(R3), F1
	FCVTSD  F1, F1
	FMOVD   (R7), F2
	FMADDD  F0, F2, F1, F2
	FMOVD   F2, (R7)

	SUB  $1, R2, R2
	CBNZ R2, loop32

done32:
	RET

// func scatterBlock8NEON(dst []float64, rows []int32, vals []float64, x *[8]float64)
//
// The 8-lane batch kernel: broadcast v, then four 2-wide fused
// multiply-adds cover the eight lanes of one row. Lanes live at
// independent addresses (dst[r*8..r*8+7]), so vectorizing across lanes
// cannot reorder any accumulation.
TEXT ·scatterBlock8NEON(SB), NOSPLIT, $0-80
	MOVD dst_base+0(FP), R0
	MOVD rows_base+24(FP), R1
	MOVD rows_len+32(FP), R2
	MOVD vals_base+48(FP), R3
	MOVD x+72(FP), R4
	VLD1 (R4), [V0.D2, V1.D2, V2.D2, V3.D2]  // x[0..7]
	CBZ  R2, done8

loop8:
	MOVWU.P 4(R1), R5
	ADD     R5<<6, R0, R5     // &dst[r*8]: row * 8 lanes * 8 bytes
	FMOVD.P 8(R3), F8         // v = vals[k]
	VDUP    V8.D[0], V9.D2

	VLD1  (R5), [V10.D2, V11.D2, V12.D2, V13.D2]
	VFMLA V9.D2, V0.D2, V10.D2
	VFMLA V9.D2, V1.D2, V11.D2
	VFMLA V9.D2, V2.D2, V12.D2
	VFMLA V9.D2, V3.D2, V13.D2
	VST1  [V10.D2, V11.D2, V12.D2, V13.D2], (R5)

	SUB  $1, R2, R2
	CBNZ R2, loop8

done8:
	RET
