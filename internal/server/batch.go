package server

import (
	"context"
	"encoding/json"
	"net/http"

	"kdash/internal/core"
	"kdash/internal/topk"
)

// batchQueryJSON is one query of a POST /topk/batch request.
type batchQueryJSON struct {
	Q       int   `json:"q"`
	K       int   `json:"k"`
	Exclude []int `json:"exclude,omitempty"`
}

// batchRequest is the POST /topk/batch payload.
type batchRequest struct {
	Queries []batchQueryJSON `json:"queries"`
}

// batchStatsJSON aggregates the batch's work on the wire.
type batchStatsJSON struct {
	Queries               int   `json:"queries"`
	Visited               int64 `json:"visited"`
	ProximityComputations int64 `json:"proximityComputations"`
	TerminatedEarly       int64 `json:"terminatedEarly"`
}

// batchResponse is the POST /topk/batch payload: one item per query, in
// request order, plus per-batch aggregate stats.
type batchResponse struct {
	Count int            `json:"count"`
	Items []topKResponse `json:"items"`
	Stats batchStatsJSON `json:"stats"`
}

// topKBatch handles POST /topk/batch:
//
//	{"queries":[{"q":3,"k":5},{"q":9,"k":5,"exclude":[9]}]}
//
// The whole batch is validated before any query executes — one bad entry
// fails the request with a 400 naming it — then runs through the
// engine's native batched path (shared per-shard factor sweeps on a
// sharded index, shared search workspaces on a monolithic one), falling
// back to a sequential loop for engines without one.
func (h *Handler) topKBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	h.qBatch.Add(1)
	st, ok := h.snapRead(w, r)
	if !ok {
		return
	}
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		h.badRequest(w, "bad JSON: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		h.badRequest(w, "empty batch")
		return
	}
	if len(req.Queries) > h.maxBatch {
		h.badRequest(w, "batch of %d exceeds limit %d", len(req.Queries), h.maxBatch)
		return
	}
	queries := make([]core.BatchQuery, len(req.Queries))
	for i, bq := range req.Queries {
		if bq.Q < 0 || bq.Q >= st.engine.N() {
			h.badRequest(w, "query %d: node %d outside [0,%d)", i, bq.Q, st.engine.N())
			return
		}
		if bq.K <= 0 {
			h.badRequest(w, "query %d: k must be positive, got %d", i, bq.K)
			return
		}
		q := core.BatchQuery{Q: bq.Q, K: bq.K}
		if len(bq.Exclude) > 0 {
			q.Exclude = make(map[int]bool, len(bq.Exclude))
			for _, node := range bq.Exclude {
				q.Exclude[node] = true
			}
		}
		queries[i] = q
	}
	h.qBatchQueries.Add(int64(len(queries)))

	results, stats, err := st.runBatch(r.Context(), queries)
	if err != nil {
		if !h.cancelled(w, err) && !h.unavailable(w, err) {
			h.internalError(w, err)
		}
		return
	}
	resp := batchResponse{Count: len(queries), Items: make([]topKResponse, len(queries))}
	resp.Stats.Queries = len(queries)
	for i := range queries {
		h.countWork(stats[i])
		resp.Stats.Visited += int64(stats[i].Visited)
		resp.Stats.ProximityComputations += int64(stats[i].ProximityComputations)
		if stats[i].Terminated {
			resp.Stats.TerminatedEarly++
		}
		item := topKResponse{
			K:          len(results[i]),
			RequestedK: queries[i].K,
			Results:    make([]resultJSON, len(results[i])),
			Stats: statsJSON{
				Visited:               stats[i].Visited,
				ProximityComputations: stats[i].ProximityComputations,
				Terminated:            stats[i].Terminated,
			},
		}
		for j, res := range results[i] {
			item.Results[j] = resultJSON{Node: res.Node, Score: res.Score}
		}
		resp.Items[i] = item
	}
	writeJSON(w, resp)
}

// runBatch dispatches to the engine's batched path when it has one,
// preferring the cancellable variant so a disconnected client stops
// paying between solve steps. It is a method of the epoch snapshot,
// not the handler, so the whole batch runs against one engine even
// when an update lands mid-request.
func (st *engineState) runBatch(ctx context.Context, queries []core.BatchQuery) ([][]topk.Result, []core.SearchStats, error) {
	if st.batchCtx != nil {
		return st.batchCtx.SearchBatchCtx(ctx, queries)
	}
	if st.batch != nil {
		return st.batch.SearchBatch(queries)
	}
	results := make([][]topk.Result, len(queries))
	stats := make([]core.SearchStats, len(queries))
	for i, bq := range queries {
		rs, s, err := st.engine.Search(bq.Q, core.SearchOptions{K: bq.K, Exclude: bq.Exclude, Ctx: ctx})
		if err != nil {
			return nil, nil, err
		}
		results[i], stats[i] = rs, s
	}
	return results, stats, nil
}
