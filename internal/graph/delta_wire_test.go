package graph

import (
	"bytes"
	"math"
	"testing"
)

func TestDeltaBinaryRoundTrip(t *testing.T) {
	d := NewDelta(10)
	if err := d.AddEdge(0, 9, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	id := d.AddNode()
	if id != 10 {
		t.Fatalf("AddNode id = %d, want 10", id)
	}
	if err := d.AddEdge(id, 0, 0.125); err != nil {
		t.Fatal(err)
	}

	enc := d.AppendBinary(nil)
	got, err := UnmarshalDelta(enc)
	if err != nil {
		t.Fatalf("UnmarshalDelta: %v", err)
	}
	if got.BaseN() != d.BaseN() || got.AddedNodes() != d.AddedNodes() || got.Len() != d.Len() {
		t.Fatalf("decoded shape = (%d,%d,%d), want (%d,%d,%d)",
			got.BaseN(), got.AddedNodes(), got.Len(), d.BaseN(), d.AddedNodes(), d.Len())
	}
	for i, op := range d.ops {
		if got.ops[i] != op {
			t.Fatalf("op %d = %+v, want %+v", i, got.ops[i], op)
		}
	}
	// Deterministic: re-encoding either side yields identical bytes.
	if !bytes.Equal(enc, got.AppendBinary(nil)) {
		t.Fatal("re-encoding decoded delta changed bytes")
	}
}

func TestDeltaBinaryRoundTripEmpty(t *testing.T) {
	d := NewDelta(0)
	got, err := UnmarshalDelta(d.AppendBinary(nil))
	if err != nil {
		t.Fatalf("UnmarshalDelta: %v", err)
	}
	if !got.Empty() || got.BaseN() != 0 {
		t.Fatalf("decoded empty delta = %+v", got)
	}
}

func TestUnmarshalDeltaRejectsCorruption(t *testing.T) {
	d := NewDelta(4)
	if err := d.AddEdge(1, 2, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	valid := d.AppendBinary(nil)

	// Every strict prefix must be rejected, never misparsed.
	for i := 0; i < len(valid); i++ {
		if _, err := UnmarshalDelta(valid[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", i, len(valid))
		}
	}
	// Trailing garbage must be rejected.
	if _, err := UnmarshalDelta(append(append([]byte(nil), valid...), 0xFF)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
	// Wrong version byte must be rejected.
	bad := append([]byte(nil), valid...)
	bad[0] = deltaWireVersion + 1
	if _, err := UnmarshalDelta(bad); err == nil {
		t.Fatal("bad version decoded without error")
	}
	// A NaN weight must be rejected even though the framing is intact.
	nan := NewDelta(2)
	if err := nan.AddEdge(0, 1, 1.0); err != nil {
		t.Fatal(err)
	}
	nan.ops[0].w = math.NaN()
	if _, err := UnmarshalDelta(nan.AppendBinary(nil)); err == nil {
		t.Fatal("NaN weight decoded without error")
	}
}

func TestDeltaExtend(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}})

	// Two batches recorded one after another...
	d1 := g.NewDelta()
	if err := d1.AddEdge(0, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	n1 := d1.AddNode()
	d2 := NewDelta(d1.BaseN() + d1.AddedNodes())
	if err := d2.AddEdge(n1, 0, 2.0); err != nil {
		t.Fatal(err)
	}
	if err := d2.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}

	// ...applied sequentially...
	g1, err := g.Apply(d1)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := g1.Apply(d2)
	if err != nil {
		t.Fatal(err)
	}

	// ...must match the merged batch applied once.
	if err := d1.Extend(d2); err != nil {
		t.Fatalf("Extend: %v", err)
	}
	merged, err := g.Apply(d1)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(seq, merged) {
		t.Fatal("merged delta disagrees with sequential application")
	}
}

func TestDeltaExtendRejectsMismatch(t *testing.T) {
	d := NewDelta(5)
	d.AddNode()
	wrong := NewDelta(5) // must be 6 to chain after d
	if err := d.Extend(wrong); err == nil {
		t.Fatal("Extend accepted mismatched base node count")
	}
}

func mustGraph(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.From, e.To, e.Weight); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func sameGraph(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}
