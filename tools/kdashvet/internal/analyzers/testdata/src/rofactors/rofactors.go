// Golden tests for the rofactors analyzer: //kdash:readonly factor
// arrays must not be written outside //kdash:mutates-factors functions.
package rofactors

type factors struct {
	//kdash:readonly
	lPtr []int
	//kdash:readonly
	lVal    []float64
	scratch []float64
}

//kdash:mutates-factors
func build(n int) *factors {
	f := &factors{}
	f.lPtr = make([]int, n+1) // ok: constructor allowlist
	f.lVal = make([]float64, n)
	f.lPtr[0] = 1
	return f
}

func readOnlyUse(f *factors, x []float64) {
	for i := range x {
		x[i] *= f.lVal[i%len(f.lVal)] // ok: reads never taint
	}
}

func corrupt(f *factors) {
	f.lPtr[0] = 7 // want `write into read-only factor array lPtr`
	f.lVal = nil  // want `write into read-only factor array lVal`
	f.lPtr[1]++   // want `increment of read-only factor array lPtr`
}

func extend(f *factors, more []float64) {
	f.lVal = append(f.lVal, more...) // want `write into read-only factor array lVal` `append into read-only factor array lVal`
}

func scrub(f *factors, dst []float64) {
	copy(f.lVal, dst) // want `copy writes into read-only factor array lVal`
	clear(f.lPtr)     // want `clear writes into read-only factor array lPtr`
}

func aliasWrite(f *factors) {
	v := f.lVal
	v[0] = 1 // want `write into read-only factor array v \(alias of a read-only factor array\)`
}

func resliceAlias(f *factors) {
	v := f.lVal
	u := v[:1]
	u[0] = 2 // want `write into read-only factor array u`
}

func pointerEscape(f *factors) *float64 {
	return &f.lVal[0] // want `taking a writable pointer into read-only factor array lVal`
}

func scalarCopyIsClean(f *factors) float64 {
	x := f.lVal[0] // ok: element read copies, no aliasing
	x = x * 2
	return x
}

func scratchIsWritable(f *factors, n int) {
	f.scratch = f.scratch[:0] // ok: unannotated field
	f.scratch = append(f.scratch, float64(n))
	f.scratch[0] = 1
}

func suppressedPatch(f *factors) {
	f.lVal[0] = 0 //kdash:allow(rofactors) heap-owned test fixture, never the mapped segment
}
