package analyzers

import (
	"go/ast"
	"go/types"

	"kdash/tools/kdashvet/internal/framework"
)

// ROFactors enforces the read-only factor-array contract: struct fields
// annotated //kdash:readonly (the LU factor arrays, the index's inverse
// factors and permutations) must never be assigned to, written through,
// appended to, copied into or cleared outside functions annotated
// //kdash:mutates-factors (the constructor / serialization allowlist).
// Under -mmap these arrays alias a PROT_READ file mapping, so a stray
// write is a production segfault, not a wrong answer. Local aliases of a
// read-only chain (v := f.lVal) inherit the taint within the function.
var ROFactors = &framework.Analyzer{
	Name: "rofactors",
	Doc:  "forbids writes into //kdash:readonly factor arrays outside //kdash:mutates-factors functions",
	Run:  runROFactors,
}

func runROFactors(pass *framework.Pass) error {
	readonly := collectReadonlyFields(pass)
	if len(readonly) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if framework.FuncDirectives(fd)["mutates-factors"] {
				continue // constructor/serialization allowlist
			}
			checkReadonly(pass, fd, readonly)
		}
	}
	return nil
}

// collectReadonlyFields gathers the field objects annotated
// //kdash:readonly across the package's struct declarations.
func collectReadonlyFields(pass *framework.Pass) map[*types.Var]bool {
	ro := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !framework.FieldDirectives(field)["readonly"] {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						ro[v] = true
					}
				}
			}
			return true
		})
	}
	return ro
}

type roChecker struct {
	pass     *framework.Pass
	info     *types.Info
	fd       *ast.FuncDecl
	readonly map[*types.Var]bool
	// tainted marks locals whose value aliases a read-only chain.
	tainted map[*types.Var]bool
}

func checkReadonly(pass *framework.Pass, fd *ast.FuncDecl, readonly map[*types.Var]bool) {
	c := &roChecker{pass: pass, info: pass.TypesInfo, fd: fd, readonly: readonly, tainted: map[*types.Var]bool{}}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				// Rebinding a bare local is harmless; writes through a
				// chain (x.f = …, x.f[i] = …, v[i] = …) are not.
				if _, isIdent := ast.Unparen(l).(*ast.Ident); isIdent {
					continue
				}
				if field, ok := c.chainReadonly(l); ok {
					c.pass.Reportf(l.Pos(), "write into read-only factor array %s (a write to a mapped factor segfaults under -mmap; move construction into a //kdash:mutates-factors function)", field)
				}
			}
			// Taint propagation: v := f.lVal (or a reslice of it) aliases
			// the backing array. Only reference-typed results alias;
			// element reads copy.
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if v, ok := c.info.Defs[id].(*types.Var); ok && aliasesBacking(v.Type()) {
							if _, ro := c.chainReadonly(n.Rhs[i]); ro || c.exprTainted(n.Rhs[i]) {
								c.tainted[v] = true
							}
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if field, ok := c.chainReadonly(n.X); ok {
				c.pass.Reportf(n.X.Pos(), "increment of read-only factor array %s", field)
			}
		case *ast.UnaryExpr:
			// &f.lVal[i] escapes a writable pointer into the backing.
			if n.Op.String() == "&" {
				if _, isIdent := ast.Unparen(n.X).(*ast.Ident); !isIdent {
					if field, ok := c.chainReadonly(n.X); ok {
						c.pass.Reportf(n.Pos(), "taking a writable pointer into read-only factor array %s", field)
					}
				}
			}
		case *ast.CallExpr:
			c.call(n)
		}
		return true
	})
}

func (c *roChecker) call(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	b, ok := c.info.Uses[id].(*types.Builtin)
	if !ok {
		return
	}
	switch b.Name() {
	case "append":
		if len(call.Args) > 0 {
			if field, ok := c.chainReadonly(call.Args[0]); ok {
				c.pass.Reportf(call.Pos(), "append into read-only factor array %s (may write into mapped backing when capacity allows)", field)
			}
		}
	case "copy", "clear":
		if len(call.Args) > 0 {
			if field, ok := c.chainReadonly(call.Args[0]); ok {
				c.pass.Reportf(call.Pos(), "%s writes into read-only factor array %s", b.Name(), field)
			}
		}
	}
}

// chainReadonly walks a selector/index chain and reports the first
// //kdash:readonly field it crosses (so inv.Linv.Val[i] is caught via
// the annotated Linv even though Val itself is unannotated).
func (c *roChecker) chainReadonly(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v, ok := c.info.Uses[e.Sel].(*types.Var); ok && c.readonly[v] {
			return v.Name(), true
		}
		return c.chainReadonly(e.X)
	case *ast.IndexExpr:
		return c.chainReadonly(e.X)
	case *ast.SliceExpr:
		return c.chainReadonly(e.X)
	case *ast.StarExpr:
		return c.chainReadonly(e.X)
	case *ast.Ident:
		if v, ok := c.info.Uses[e].(*types.Var); ok && c.tainted[v] {
			return e.Name + " (alias of a read-only factor array)", true
		}
	}
	return "", false
}

// aliasesBacking reports whether a value of type t shares backing store
// with its source (slices and pointers do; scalars and structs copy).
func aliasesBacking(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer:
		return true
	}
	return false
}

// exprTainted reports whether an expression derives from a tainted local
// (one more level of aliasing: u := v[:n]).
func (c *roChecker) exprTainted(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return c.exprTainted(e.X)
	case *ast.IndexExpr:
		return c.exprTainted(e.X)
	case *ast.Ident:
		v, ok := c.info.Uses[e].(*types.Var)
		return ok && c.tainted[v]
	}
	return false
}
