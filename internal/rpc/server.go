package rpc

import (
	"errors"
	"net"
	"sync"
)

// Handler dispatches one decoded request. Returning ErrWrongEpoch maps
// to StatusWrongEpoch on the wire; any other error becomes StatusError
// with the error text as body. Handlers must be safe for concurrent
// calls: every connection gets its own serving goroutine.
type Handler interface {
	Handle(op uint8, body []byte) ([]byte, error)
}

// Serve accepts connections on ln and serves each with h until ln is
// closed. It returns the first Accept error (net.ErrClosed after a
// clean shutdown).
func Serve(ln net.Listener, h Handler) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ServeConn(nc, h)
		}()
	}
}

// ServeConn serves framed requests on nc until the peer disconnects.
func ServeConn(nc net.Conn, h Handler) {
	defer nc.Close()
	var inBuf, outBuf []byte
	for {
		req, err := ReadFrame(nc, inBuf)
		if err != nil {
			return // peer gone or torn frame; the client redials
		}
		inBuf = req
		outBuf = outBuf[:0]
		if len(req) < 1 {
			outBuf = append(outBuf, StatusError)
			outBuf = append(outBuf, "rpc: empty request"...)
		} else {
			resp, err := h.Handle(req[0], req[1:])
			switch {
			case err == nil:
				outBuf = append(outBuf, StatusOK)
				outBuf = append(outBuf, resp...)
			case errors.Is(err, ErrWrongEpoch):
				outBuf = append(outBuf, StatusWrongEpoch)
			default:
				outBuf = append(outBuf, StatusError)
				outBuf = append(outBuf, err.Error()...)
			}
		}
		if err := WriteFrame(nc, outBuf); err != nil {
			return
		}
	}
}
