package experiments

import (
	"bytes"
	"strings"
	"testing"

	"kdash/internal/dataset"
	"kdash/internal/gen"
	"kdash/internal/topk"
)

// smallConfig keeps experiment tests fast: two tiny clustered datasets.
func smallConfig() Config {
	return Config{
		Queries: 3,
		Seed:    7,
		Datasets: []*dataset.Dataset{
			{Name: "TinyA", Graph: gen.PlantedPartition(120, 4, 0.2, 0.01, 1)},
			{Name: "TinyB", Graph: gen.BarabasiAlbert(150, 3, 2)},
		},
		Ks:    []int{5, 10},
		Ranks: []int{4, 30},
		Hubs:  []int{4, 30},
		K:     5,
	}
}

func TestPrecisionMetric(t *testing.T) {
	exact := []topk.Result{{Node: 1, Score: 0.9}, {Node: 2, Score: 0.5}}
	if p := Precision([]topk.Result{{Node: 1, Score: 0.9}, {Node: 2, Score: 0.5}}, exact); p != 1 {
		t.Errorf("identical answers precision = %v", p)
	}
	if p := Precision([]topk.Result{{Node: 1, Score: 0.9}, {Node: 9, Score: 0.1}}, exact); p != 0.5 {
		t.Errorf("half-wrong precision = %v", p)
	}
	// A tie at the k-th score counts as correct.
	if p := Precision([]topk.Result{{Node: 1, Score: 0.9}, {Node: 9, Score: 0.5}}, exact); p != 1 {
		t.Errorf("tied k-th answer precision = %v", p)
	}
	if p := Precision(nil, nil); p != 1 {
		t.Errorf("empty precision = %v", p)
	}
}

func TestFigure2Shape(t *testing.T) {
	rows, err := Figure2(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets x (2 K-dash + 2 NB_LIN + 1 B_LIN + 2 BPA) = 14 rows.
	if len(rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(rows))
	}
	algos := map[string]bool{}
	for _, r := range rows {
		algos[r.Algo] = true
		if r.Mean < 0 {
			t.Errorf("negative mean time %v", r.Mean)
		}
	}
	for _, want := range []string{"K-dash(5)", "K-dash(10)", "NB_LIN(4)", "NB_LIN(30)", "B_LIN(4)", "BPA(5)", "BPA(10)"} {
		if !algos[want] {
			t.Errorf("missing algo %q", want)
		}
	}
}

func TestFigure3and4Shape(t *testing.T) {
	rows, err := Figure3and4(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 sweep points", len(rows))
	}
	for _, r := range rows {
		if r.PrecisionKDash != 1 {
			t.Errorf("K-dash precision must be 1, got %v", r.PrecisionKDash)
		}
		if r.PrecisionNBLin < 0 || r.PrecisionNBLin > 1 {
			t.Errorf("NB_LIN precision %v outside [0,1]", r.PrecisionNBLin)
		}
		if r.PrecisionBPA < 0.5 {
			t.Errorf("BPA precision suspiciously low: %v", r.PrecisionBPA)
		}
	}
	// Precision should not degrade as rank rises.
	if rows[1].PrecisionNBLin < rows[0].PrecisionNBLin-0.15 {
		t.Errorf("NB_LIN precision fell sharply with rank: %v -> %v",
			rows[0].PrecisionNBLin, rows[1].PrecisionNBLin)
	}
}

func TestFigure5and6Shape(t *testing.T) {
	rows, err := Figure5and6(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 2 datasets x 4 methods
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	byKey := map[string]ReorderRow{}
	for _, r := range rows {
		if r.NNZ <= 0 || r.Ratio <= 0 || r.Precompute <= 0 {
			t.Errorf("row not populated: %+v", r)
		}
		byKey[r.Dataset+"/"+r.Method] = r
	}
	// On the clustered dataset hybrid must beat random on sparsity.
	if byKey["TinyA/Hybrid"].NNZ >= byKey["TinyA/Random"].NNZ {
		t.Errorf("hybrid nnz %d should be below random %d",
			byKey["TinyA/Hybrid"].NNZ, byKey["TinyA/Random"].NNZ)
	}
}

func TestFigure7Shape(t *testing.T) {
	rows, err := Figure7(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PrunedFraction < 0 || r.PrunedFraction > 1 {
			t.Errorf("%s: pruned fraction %v outside [0,1]", r.Dataset, r.PrunedFraction)
		}
		if r.PrunedFraction == 0 {
			t.Errorf("%s: expected some pruning", r.Dataset)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	rows, err := Figure9(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.RandomRooted < r.QueryRooted {
			t.Errorf("%s: random root should not need fewer computations (%v vs %v)",
				r.Dataset, r.RandomRooted, r.QueryRooted)
		}
	}
}

func TestTable2CaseStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full Dictionary dataset")
	}
	cfg := Config{Queries: 3, Seed: 1, Ranks: []int{8, 16}, Hubs: []int{8, 16}, K: 5}
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 5 terms x 2 methods
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	for _, r := range rows {
		if len(r.Top) == 0 {
			t.Errorf("%s/%s: empty answer list", r.Term, r.Method)
		}
		if r.Method == "K-dash" && r.Top[0] != r.Term {
			t.Errorf("%s: K-dash should rank the query term first, got %v", r.Term, r.Top)
		}
	}
}

func TestCSweep(t *testing.T) {
	cfg := smallConfig()
	rows, err := CSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Exact {
			t.Errorf("c=%v: K-dash must stay exact", r.C)
		}
	}
}

func TestDropTolAblation(t *testing.T) {
	cfg := smallConfig()
	rows, err := DropTolAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].DropTol != 0 || rows[0].Precision != 1 {
		t.Errorf("exact setting must have precision 1: %+v", rows[0])
	}
	// NNZ must fall monotonically as the tolerance grows.
	for i := 1; i < len(rows); i++ {
		if rows[i].NNZ > rows[i-1].NNZ {
			t.Errorf("nnz should not grow with tolerance: %+v -> %+v", rows[i-1], rows[i])
		}
	}
}

func TestFormatters(t *testing.T) {
	cfg := smallConfig()
	var buf bytes.Buffer
	t2, err := Figure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	WriteTimingRows(&buf, t2)
	if !strings.Contains(buf.String(), "K-dash(5)") {
		t.Error("timing table missing K-dash rows")
	}
	buf.Reset()
	WritePruningRows(&buf, []PruningRow{{Dataset: "X", Speedup: 2}})
	if !strings.Contains(buf.String(), "2.0x") {
		t.Errorf("pruning table formatting: %q", buf.String())
	}
	buf.Reset()
	WriteRootRows(&buf, []RootRow{{Dataset: "X", QueryRooted: 3, RandomRooted: 9}})
	if !strings.Contains(buf.String(), "9.0") {
		t.Error("root table formatting")
	}
	buf.Reset()
	WriteCaseStudyRows(&buf, []CaseStudyRow{{Term: "Linux", Method: "K-dash", Top: []string{"Linux", "Unix"}}})
	if !strings.Contains(buf.String(), "Linux | Unix") {
		t.Errorf("case-study formatting: %q", buf.String())
	}
	buf.Reset()
	WriteSweepRows(&buf, []SweepRow{{Param: 10}})
	WriteReorderRows(&buf, []ReorderRow{{Dataset: "X", Method: "Hybrid"}})
	WriteCSweepRows(&buf, []CSweepRow{{C: 0.95, Exact: true}})
	WriteAblationRows(&buf, []AblationRow{{DropTol: 1e-4, NNZ: 10, Precision: 0.9}})
	if buf.Len() == 0 {
		t.Error("formatters produced no output")
	}
}

func TestUpdateScaleShape(t *testing.T) {
	cfg := smallConfig()
	cfg.ShardGraphN = 1500
	cfg.ShardCounts = []int{1, 4}
	rows, err := UpdateScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 update kinds + 2 WAL ack policies + 2 baselines.
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	kinds := map[string]UpdateRow{}
	for _, r := range rows {
		kinds[r.Kind] = r
		if !r.Exact {
			t.Errorf("%s: post-update answers not bit-identical to the pinned rebuild", r.Kind)
		}
	}
	intra, ok := kinds["intra-edge"]
	if !ok || intra.ShardsRebuilt != 1 {
		t.Fatalf("intra-edge row = %+v", intra)
	}
	full := kinds["full-rebuild"]
	if full.Mean <= intra.Mean {
		t.Errorf("full rebuild (%v) not slower than incremental update (%v)", full.Mean, intra.Mean)
	}
	for _, kind := range []string{"wal-ack-interval", "wal-ack-always"} {
		ack, ok := kinds[kind]
		if !ok {
			t.Fatalf("missing %s row", kind)
		}
		if ack.Mean >= intra.Mean {
			t.Errorf("%s ack (%v) not faster than the synchronous apply (%v)", kind, ack.Mean, intra.Mean)
		}
		if ack.P50 <= 0 {
			t.Errorf("%s: p50 not recorded", kind)
		}
	}
	var buf bytes.Buffer
	WriteUpdateRows(&buf, rows)
	if !strings.Contains(buf.String(), "intra-edge") || !strings.Contains(buf.String(), "full-rebuild") {
		t.Errorf("table missing rows:\n%s", buf.String())
	}
}
