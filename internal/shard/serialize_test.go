package shard

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"kdash/internal/gen"
	"kdash/internal/graph"
	"kdash/internal/reorder"
	"kdash/internal/testutil"
)

// TestSaveLoadRoundTrip checks that a loaded sharded index answers every
// query identically to the index it was saved from.
func TestSaveLoadRoundTrip(t *testing.T) {
	g := gen.DirectedScaleFree(180, 3, 0.3, 0.4, 21)
	built, err := Build(g, Options{Shards: 5, Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}
	if !IsShardedIndexDir(dir) {
		t.Fatal("saved directory not recognised as a sharded index")
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != built.N() || loaded.Restart() != built.Restart() || loaded.Shards() != built.Shards() {
		t.Fatalf("shape mismatch: loaded (n=%d c=%v s=%d), built (n=%d c=%v s=%d)",
			loaded.N(), loaded.Restart(), loaded.Shards(), built.N(), built.Restart(), built.Shards())
	}
	for q := 0; q < g.N(); q += 13 {
		want, _, err := built.TopK(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := loaded.TopK(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("q=%d: %d vs %d results", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("q=%d i=%d: loaded %v, built %v", q, i, got[i], want[i])
			}
		}
	}
	// Persisted stats survive the trip.
	if loaded.Stats().CutEdges != built.Stats().CutEdges || loaded.Stats().NNZInverse != built.Stats().NNZInverse {
		t.Errorf("stats mismatch: loaded %+v, built %+v", loaded.Stats(), built.Stats())
	}
}

// TestUpdatedIndexRoundTrip checks the v2 manifest carries the dynamic
// state: an updated index saves, loads, keeps its epoch and graph
// snapshot, and accepts further updates that stay bit-identical to the
// never-serialised chain.
func TestUpdatedIndexRoundTrip(t *testing.T) {
	g := testutil.Clustered(120, 4, 13)
	sx, err := Build(g, Options{Shards: 4, Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := g.NewDelta()
	id := d.AddNode()
	if err := d.AddEdge(id, 3, 1.25); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(5, id, 0.75); err != nil {
		t.Fatal(err)
	}
	sx, _, err = sx.Apply(d)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "idx")
	if err := sx.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Epoch() != 1 {
		t.Fatalf("loaded epoch = %d, want 1", loaded.Epoch())
	}
	if loaded.Graph() == nil || loaded.Graph().N() != sx.N() || loaded.Graph().M() != sx.Graph().M() {
		t.Fatal("graph snapshot did not round-trip")
	}

	// Apply the same follow-up batch to both and compare bit-for-bit.
	d2 := sx.Graph().NewDelta()
	if err := d2.AddEdge(10, 40, 2); err != nil {
		t.Fatal(err)
	}
	a, _, err := sx.Apply(d2)
	if err != nil {
		t.Fatal(err)
	}
	d3 := loaded.Graph().NewDelta()
	if err := d3.AddEdge(10, 40, 2); err != nil {
		t.Fatal(err)
	}
	b, _, err := loaded.Apply(d3)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, b, a, 8)
}

// TestLoadV1ManifestStillWorks checks backward compatibility: a v1
// directory (no graph snapshot, no update state) loads and serves
// queries but rejects Apply.
func TestLoadV1ManifestStillWorks(t *testing.T) {
	g := gen.ErdosRenyi(50, 220, 7)
	sx, err := Build(g, Options{Shards: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if err := sx.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Rewrite the manifest as version 1, dropping the v2 fields and the
	// graph snapshot — the layout PR 1 shipped.
	blob, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	m["version"] = 1
	for _, k := range []string{"graphFile", "reorder", "seed", "epoch", "stalenessLimit", "staleness"} {
		delete(m, k)
	}
	blob, err = json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "graph.tsv")); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatalf("v1 manifest rejected: %v", err)
	}
	want, _, err := sx.TopK(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := loaded.TopK(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("i=%d: %v vs %v", i, got[i], want[i])
		}
	}
	if _, _, err := loaded.Apply(graph.NewDelta(loaded.N())); err == nil {
		t.Error("v1-loaded index accepted Apply without a graph snapshot")
	}
}

// TestLoadRejectsCorruption checks the loader fails loudly instead of
// serving from a damaged directory.
func TestLoadRejectsCorruption(t *testing.T) {
	g := gen.ErdosRenyi(40, 160, 2)
	built, err := Build(g, Options{Shards: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(dir, "nope")); err == nil {
		t.Error("missing directory accepted")
	}
	// Truncated assignment.
	if err := os.WriteFile(filepath.Join(dir, "assignment.bin"), []byte{1, 0}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("truncated assignment accepted")
	}
	// Garbage manifest.
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("garbage manifest accepted")
	}
}

// TestManifestV4WALInfoRoundTrip: a stamped WAL position survives
// Save/Load, an unstamped save omits it, and Apply does not carry a
// stale stamp onto its successor.
func TestManifestV4WALInfoRoundTrip(t *testing.T) {
	g := gen.DirectedScaleFree(80, 3, 0.3, 0.4, 7)
	built, err := Build(g, Options{Shards: 3, Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	built.SetWALInfo(42, []string{"wal-0000000000000001.log", "wal-0000000000000029.log"})
	dir := filepath.Join(t.TempDir(), "idx")
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}
	var m manifest
	blob, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	if m.Version != 4 || m.WALSeq != 42 || len(m.WALSegments) != 2 {
		t.Fatalf("manifest = version %d walSeq %d segments %v", m.Version, m.WALSeq, m.WALSegments)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.WALSeq() != 42 || len(loaded.WALSegments()) != 2 {
		t.Fatalf("loaded walSeq %d segments %v", loaded.WALSeq(), loaded.WALSegments())
	}

	// Apply must not forward the stamp: the successor covers more deltas
	// than the stamped position.
	d := loaded.Graph().NewDelta()
	if err := d.AddEdge(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	succ, us, err := loaded.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if succ.WALSeq() != 0 {
		t.Fatalf("successor inherited walSeq %d", succ.WALSeq())
	}
	if len(us.DirtyShards) != us.ShardsRebuilt || len(us.DirtyShards) == 0 {
		t.Fatalf("DirtyShards = %v, ShardsRebuilt = %d", us.DirtyShards, us.ShardsRebuilt)
	}

	// An unstamped index persists no WAL fields at all.
	dir2 := filepath.Join(t.TempDir(), "idx2")
	if err := succ.Save(dir2); err != nil {
		t.Fatal(err)
	}
	blob2, err := os.ReadFile(filepath.Join(dir2, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if string(blob2) != "" && (jsonHasKey(blob2, "walSeq") || jsonHasKey(blob2, "walSegments")) {
		t.Fatal("unstamped manifest carries WAL fields")
	}
}

func jsonHasKey(blob []byte, key string) bool {
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}
