// Package rpc is the coordinator <-> worker wire protocol for
// distributed shard serving: a length-prefixed binary framing over
// stdlib net, a handful of fixed opcodes, and hand-rolled little-endian
// codecs for the solve and epoch-publish payloads.
//
// The protocol exists to move *bits*, not numbers: float64 values cross
// the wire as their raw IEEE-754 bit patterns (math.Float64bits), solve
// supports preserve the solver's first-touch order verbatim, and batch
// replies keep the per-chunk shared-support shape of
// core.BatchSolver.SolveOn — so a coordinator that feeds remote solve
// results into the greedy push commits exactly the bytes a single
// process would have produced. See docs/ARCHITECTURE.md, "Distributed
// serving".
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
)

// Opcodes. The request payload is one opcode byte followed by the
// op-specific body; the response is one status byte followed by either
// the op-specific body (StatusOK) or an error string.
const (
	OpHello      uint8 = 1 // -> n, shards, epoch of the worker's index
	OpSolve      uint8 = 2 // single-lane sparse solve against one shard
	OpBatchSolve uint8 = 3 // multi-lane block solve against one shard
	OpPrepare    uint8 = 4 // stage delta as epoch E (two-phase publish, phase 1)
	OpCommit     uint8 = 5 // publish staged epoch E (phase 2)
	OpAbort      uint8 = 6 // drop staged epoch E
	OpPing       uint8 = 7 // liveness probe
)

// Response status bytes.
const (
	StatusOK         uint8 = 0
	StatusError      uint8 = 1
	StatusWrongEpoch uint8 = 2 // the requested epoch is not resident on the worker
)

// ErrUnavailable marks transport-level failures (dial, torn connection,
// timeout) and worker-side refusals the coordinator cannot serve
// through: the server maps it to 503 with Retry-After, never to a wrong
// answer.
var ErrUnavailable = errors.New("rpc: worker unavailable")

// ErrWrongEpoch reports a solve against an epoch the worker does not
// hold — the coordinator's cue to replay the update chain to that
// worker before retrying.
var ErrWrongEpoch = errors.New("rpc: epoch not resident on worker")

// maxFrame bounds a single frame so a torn or hostile length prefix
// cannot ask for an absurd allocation. Batch solve replies over large
// shards are the biggest legitimate frames; 1 GiB is far above any of
// them.
const maxFrame = 1 << 30

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame, appending into buf's
// backing array when it has capacity.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("rpc: frame length %d exceeds limit", n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Conn wraps one framed request/response connection.
type Conn struct {
	c   net.Conn
	buf []byte
}

// NewConn wraps a net.Conn for framed use.
func NewConn(c net.Conn) *Conn { return &Conn{c: c} }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// appendUint32 appends v little-endian.
func appendUint32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

// appendUint64 appends v little-endian.
func appendUint64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

// appendFloat64 appends v's raw IEEE-754 bits — the bit-exactness seam.
func appendFloat64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// reader is a bounds-checked little-endian cursor over a frame body.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("rpc: truncated frame body (%d bytes, offset %d)", len(r.data), r.off)
	}
}

func (r *reader) uint32() uint32 {
	if r.err != nil || r.off+4 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *reader) uint64() uint64 {
	if r.err != nil || r.off+8 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *reader) float64() float64 { return math.Float64frombits(r.uint64()) }

// rest returns the unread tail of the body.
func (r *reader) rest() []byte {
	if r.err != nil {
		return nil
	}
	return r.data[r.off:]
}

// HelloResponse reports the worker index's identity: the coordinator
// verifies n and shards match its own manifest and uses epoch to decide
// how much of the update chain to replay.
type HelloResponse struct {
	N      int
	Shards int
	Epoch  int
}

// AppendHelloResponse encodes a HelloResponse.
func AppendHelloResponse(buf []byte, h HelloResponse) []byte {
	buf = appendUint64(buf, uint64(h.N))
	buf = appendUint32(buf, uint32(h.Shards))
	buf = appendUint64(buf, uint64(h.Epoch))
	return buf
}

// DecodeHelloResponse decodes a HelloResponse.
func DecodeHelloResponse(data []byte) (HelloResponse, error) {
	r := reader{data: data}
	h := HelloResponse{N: int(r.uint64()), Shards: int(r.uint32()), Epoch: int(r.uint64())}
	return h, r.err
}

// AppendSolveRequest encodes a single-lane solve: the target epoch and
// shard plus the sparse right-hand side in ascending-index order — the
// exact slices shard.pushState.consumeResidual produced, bit for bit.
func AppendSolveRequest(buf []byte, epoch, shard int, idx []int, val []float64) []byte {
	buf = appendUint64(buf, uint64(epoch))
	buf = appendUint32(buf, uint32(shard))
	buf = appendUint32(buf, uint32(len(idx)))
	for _, v := range idx {
		buf = appendUint32(buf, uint32(v))
	}
	for _, v := range val {
		buf = appendFloat64(buf, v)
	}
	return buf
}

// DecodeSolveRequest decodes a solve request into freshly allocated
// slices (the worker hands them straight to the solver).
func DecodeSolveRequest(data []byte) (epoch, shard int, idx []int, val []float64, err error) {
	r := reader{data: data}
	epoch = int(r.uint64())
	shard = int(r.uint32())
	n := int(r.uint32())
	if r.err == nil && r.off+12*n > len(r.data) {
		r.fail()
	}
	if r.err != nil {
		return 0, 0, nil, nil, r.err
	}
	idx = make([]int, n)
	val = make([]float64, n)
	for i := range idx {
		idx[i] = int(r.uint32())
	}
	for i := range val {
		val[i] = r.float64()
	}
	return epoch, shard, idx, val, r.err
}

// AppendSolveResponse encodes a solve result. A nil support is a dense
// solve: all yLen leading rows of y travel. Otherwise the support
// travels verbatim — first-touch order preserved, ghost-sink entries
// included — as (row, value) pairs, because rows outside the support
// are stale by the SolveSparse contract and must not cross the wire.
func AppendSolveResponse(buf []byte, y []float64, ysup []int, yLen int) []byte {
	if ysup == nil {
		buf = append(buf, 0)
		buf = appendUint32(buf, uint32(yLen))
		for _, v := range y[:yLen] {
			buf = appendFloat64(buf, v)
		}
		return buf
	}
	buf = append(buf, 1)
	buf = appendUint32(buf, uint32(len(ysup)))
	for _, lv := range ysup {
		buf = appendUint32(buf, uint32(lv))
		buf = appendFloat64(buf, y[lv])
	}
	return buf
}

// DecodeSolveResponse decodes a solve result into y, the caller's
// partLen-sized scratch vector. For a dense reply it fills the leading
// rows and returns a nil support; for a sparse reply it writes only the
// support rows (everything else keeps whatever stale values it had,
// exactly like a local SolveSparse) and returns the support in wire
// order. The returned support aliases a fresh allocation.
func DecodeSolveResponse(data []byte, y []float64) ([]int, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("rpc: empty solve response")
	}
	r := reader{data: data[1:]}
	if data[0] == 0 {
		n := int(r.uint32())
		if n > len(y) {
			return nil, fmt.Errorf("rpc: dense solve reply has %d rows, scratch has %d", n, len(y))
		}
		for i := 0; i < n; i++ {
			y[i] = r.float64()
		}
		return nil, r.err
	}
	n := int(r.uint32())
	if r.err == nil && r.off+12*n > len(r.data) {
		r.fail()
	}
	if r.err != nil {
		return nil, r.err
	}
	sup := make([]int, n)
	for i := range sup {
		lv := int(r.uint32())
		v := r.float64()
		if lv >= len(y) {
			return nil, fmt.Errorf("rpc: solve reply row %d outside scratch of %d", lv, len(y))
		}
		sup[i] = lv
		y[lv] = v
	}
	return sup, r.err
}

// AppendBatchSolveRequest encodes a block solve: every lane's dense
// right-hand side (partLen rows each), in member order.
func AppendBatchSolveRequest(buf []byte, epoch, shard int, rhs [][]float64) []byte {
	buf = appendUint64(buf, uint64(epoch))
	buf = appendUint32(buf, uint32(shard))
	buf = appendUint32(buf, uint32(len(rhs)))
	rhsLen := 0
	if len(rhs) > 0 {
		rhsLen = len(rhs[0])
	}
	buf = appendUint32(buf, uint32(rhsLen))
	for _, lane := range rhs {
		for _, v := range lane {
			buf = appendFloat64(buf, v)
		}
	}
	return buf
}

// DecodeBatchSolveRequest decodes a block solve request into freshly
// allocated lane vectors.
func DecodeBatchSolveRequest(data []byte) (epoch, shard int, rhs [][]float64, err error) {
	r := reader{data: data}
	epoch = int(r.uint64())
	shard = int(r.uint32())
	lanes := int(r.uint32())
	rhsLen := int(r.uint32())
	if r.err == nil && r.off+8*lanes*rhsLen > len(r.data) {
		r.fail()
	}
	if r.err != nil {
		return 0, 0, nil, r.err
	}
	rhs = make([][]float64, lanes)
	for b := range rhs {
		lane := make([]float64, rhsLen)
		for i := range lane {
			lane[i] = r.float64()
		}
		rhs[b] = lane
	}
	return epoch, shard, rhs, r.err
}

// batch chunk kinds on the wire.
const (
	chunkDense uint8 = 0
	chunkSup   uint8 = 1
)

// AppendBatchSolveResponse encodes a block solve result preserving
// SolveOn's chunk structure: lanes are grouped in blockWidth-wide
// chunks, each chunk either dense (nodesLen leading rows per lane
// travel) or sharing one support list (support rows per lane travel,
// order preserved). sups carries entries at chunk starts exactly as
// SolveOn returned them.
func AppendBatchSolveResponse(buf []byte, ys [][]float64, sups [][]int, blockWidth, nodesLen int) []byte {
	buf = appendUint32(buf, uint32(len(ys)))
	buf = appendUint32(buf, uint32(nodesLen))
	for g0 := 0; g0 < len(ys); g0 += blockWidth {
		g1 := g0 + blockWidth
		if g1 > len(ys) {
			g1 = len(ys)
		}
		sup := sups[g0]
		if sup == nil {
			buf = append(buf, chunkDense)
			for j := g0; j < g1; j++ {
				for _, v := range ys[j][:nodesLen] {
					buf = appendFloat64(buf, v)
				}
			}
			continue
		}
		buf = append(buf, chunkSup)
		buf = appendUint32(buf, uint32(len(sup)))
		for _, lv := range sup {
			buf = appendUint32(buf, uint32(lv))
		}
		for j := g0; j < g1; j++ {
			for _, lv := range sup {
				buf = appendFloat64(buf, ys[j][lv])
			}
		}
	}
	return buf
}

// DecodeBatchSolveResponse decodes a block solve result into freshly
// allocated per-lane vectors of partLen rows (rows outside a chunk's
// support stay zero — never read by the consumer, mirroring the SolveOn
// stale-rows contract) plus the per-chunk-start support lists.
func DecodeBatchSolveResponse(data []byte, blockWidth, partLen int) (ys [][]float64, sups [][]int, err error) {
	r := reader{data: data}
	lanes := int(r.uint32())
	nodesLen := int(r.uint32())
	if r.err != nil {
		return nil, nil, r.err
	}
	if nodesLen > partLen {
		return nil, nil, fmt.Errorf("rpc: batch reply nodesLen %d exceeds partLen %d", nodesLen, partLen)
	}
	if lanes > len(data)+1 {
		return nil, nil, fmt.Errorf("rpc: batch reply lane count %d implausible for %d-byte frame", lanes, len(data))
	}
	ys = make([][]float64, lanes)
	sups = make([][]int, lanes)
	for j := range ys {
		ys[j] = make([]float64, partLen)
	}
	for g0 := 0; g0 < lanes; g0 += blockWidth {
		g1 := g0 + blockWidth
		if g1 > lanes {
			g1 = lanes
		}
		if r.err != nil || r.off >= len(r.data) {
			r.fail()
			return nil, nil, r.err
		}
		kind := r.data[r.off]
		r.off++
		switch kind {
		case chunkDense:
			for j := g0; j < g1; j++ {
				for i := 0; i < nodesLen; i++ {
					ys[j][i] = r.float64()
				}
			}
		case chunkSup:
			n := int(r.uint32())
			if r.err == nil && r.off+4*n > len(r.data) {
				r.fail()
			}
			if r.err != nil {
				return nil, nil, r.err
			}
			sup := make([]int, n)
			for i := range sup {
				lv := int(r.uint32())
				if lv >= partLen {
					return nil, nil, fmt.Errorf("rpc: batch reply row %d outside partLen %d", lv, partLen)
				}
				sup[i] = lv
			}
			sups[g0] = sup
			for j := g0; j < g1; j++ {
				for _, lv := range sup {
					ys[j][lv] = r.float64()
				}
			}
		default:
			return nil, nil, fmt.Errorf("rpc: batch reply chunk kind %d", kind)
		}
	}
	return ys, sups, r.err
}

// AppendPrepareRequest encodes a Prepare: the epoch the delta publishes
// as, followed by the delta's own wire encoding (graph.AppendBinary).
func AppendPrepareRequest(buf []byte, epoch int, delta []byte) []byte {
	buf = appendUint64(buf, uint64(epoch))
	return append(buf, delta...)
}

// DecodePrepareRequest decodes a Prepare request; delta aliases data.
func DecodePrepareRequest(data []byte) (epoch int, delta []byte, err error) {
	r := reader{data: data}
	epoch = int(r.uint64())
	return epoch, r.rest(), r.err
}

// AppendEpochRequest encodes a Commit or Abort body.
func AppendEpochRequest(buf []byte, epoch int) []byte {
	return appendUint64(buf, uint64(epoch))
}

// DecodeEpochRequest decodes a Commit or Abort body.
func DecodeEpochRequest(data []byte) (int, error) {
	r := reader{data: data}
	epoch := int(r.uint64())
	return epoch, r.err
}
