package mmapio

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTestFile writes a container with one int, one float and one byte
// section and returns its path plus the source arrays.
func writeTestFile(t *testing.T) (string, []int, []float64, []byte) {
	t.Helper()
	ints := []int{0, 1, -7, 1 << 40, -(1 << 40), 42}
	floats := []float64{0, 1.5, -math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	raw := []byte("kdash-test-section")
	w := NewWriter()
	w.AddInts(1, ints)
	w.AddFloats(2, floats)
	w.AddBytes(3, raw)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	path := filepath.Join(t.TempDir(), "test.sec")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, ints, floats, raw
}

func checkContents(t *testing.T, f *File, ints []int, floats []float64, raw []byte) {
	t.Helper()
	gotInts, err := f.Ints(1)
	if err != nil {
		t.Fatalf("Ints: %v", err)
	}
	for i := range ints {
		if gotInts[i] != ints[i] {
			t.Fatalf("int[%d] = %d, want %d", i, gotInts[i], ints[i])
		}
	}
	gotFloats, err := f.Floats(2)
	if err != nil {
		t.Fatalf("Floats: %v", err)
	}
	for i := range floats {
		if math.Float64bits(gotFloats[i]) != math.Float64bits(floats[i]) {
			t.Fatalf("float[%d] = %v, want bit-identical %v", i, gotFloats[i], floats[i])
		}
	}
	gotRaw, err := f.Bytes(3)
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	if !bytes.Equal(gotRaw, raw) {
		t.Fatalf("Bytes = %q, want %q", gotRaw, raw)
	}
}

func TestRoundTripModes(t *testing.T) {
	path, ints, floats, raw := writeTestFile(t)
	modes := []Mode{ModeAuto, ModeCopy}
	if MmapSupported() && CanZeroCopy() {
		modes = append(modes, ModeMmap)
	}
	for _, mode := range modes {
		f, err := Open(path, mode)
		if err != nil {
			t.Fatalf("Open(%v): %v", mode, err)
		}
		checkContents(t, f, ints, floats, raw)
		if mode == ModeMmap && !f.Mapped() {
			t.Fatalf("ModeMmap returned an unmapped file")
		}
		if err := f.Verify(); err != nil {
			t.Fatalf("Verify(%v): %v", mode, err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("Close(%v): %v", mode, err)
		}
	}
}

func TestSectionAlignment(t *testing.T) {
	path, _, _, _ := writeTestFile(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	k := binary.LittleEndian.Uint32(data[12:])
	for i := uint32(0); i < k; i++ {
		off := binary.LittleEndian.Uint64(data[headerSize+i*entrySize+8:])
		if off%DefaultAlign != 0 {
			t.Fatalf("section %d offset %d not %d-aligned", i, off, DefaultAlign)
		}
	}
}

func TestFromBytesEmptyWriter(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := FromBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("FromBytes(empty container): %v", err)
	}
	if f.Has(1) {
		t.Fatal("empty container claims a section")
	}
	if f.Count(1) != -1 {
		t.Fatalf("Count of missing section = %d, want -1", f.Count(1))
	}
}

// corrupt returns a fresh copy of the image with fn applied.
func corrupt(img []byte, fn func(b []byte) []byte) []byte {
	b := append([]byte(nil), img...)
	return fn(b)
}

func TestCorruptInputs(t *testing.T) {
	path, _, _, _ := writeTestFile(t)
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reseal := func(b []byte) []byte {
		// Recompute the table CRC so corruption below it is what fails.
		k := binary.LittleEndian.Uint32(b[12:])
		table := b[headerSize : headerSize+uint64(k)*entrySize]
		binary.LittleEndian.PutUint32(b[28:], crc32.Checksum(table, castagnoli))
		return b
	}
	cases := []struct {
		name string
		img  []byte
		want string
	}{
		{"bad magic", corrupt(img, func(b []byte) []byte { b[0] = 'X'; return b }), "bad magic"},
		{"short file", img[:headerSize-1], "bad magic"},
		{"bad version", corrupt(img, func(b []byte) []byte { b[8] = 99; return b }), "unsupported container version"},
		{"size mismatch", img[:len(img)-1], "file has"},
		{"truncated table", corrupt(img, func(b []byte) []byte {
			// Claim many more sections than the file holds, size patched to match len.
			binary.LittleEndian.PutUint32(b[12:], 1<<15)
			binary.LittleEndian.PutUint64(b[16:], uint64(len(b)))
			return b
		}), "truncated section table"},
		{"absurd section count", corrupt(img, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], maxSections+1)
			return b
		}), "corrupt header"},
		{"bad alignment", corrupt(img, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[24:], 3)
			return b
		}), "alignment"},
		{"table checksum", corrupt(img, func(b []byte) []byte {
			b[headerSize] ^= 0xff // flip a table byte without resealing
			return b
		}), "section table checksum mismatch"},
		{"misaligned offset", corrupt(img, func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[headerSize+8:], DefaultAlign+8)
			return reseal(b)
		}), "misaligned"},
		{"offset out of bounds", corrupt(img, func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[headerSize+8:], 1<<40)
			return reseal(b)
		}), "out of bounds"},
		{"count out of bounds", corrupt(img, func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[headerSize+16:], 1<<40)
			return reseal(b)
		}), "out of bounds"},
		{"unknown kind", corrupt(img, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[headerSize+4:], 77)
			return reseal(b)
		}), "unknown kind"},
		{"data checksum", corrupt(img, func(b []byte) []byte {
			b[DefaultAlign] ^= 0xff // first data byte of section 1
			return b
		}), "section 1 checksum mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := FromBytes(tc.img)
			if err == nil {
				t.Fatalf("FromBytes accepted corrupt input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestOverlapRejected(t *testing.T) {
	// Hand-build a table whose second section overlaps the first.
	w := NewWriter()
	w.AddInts(1, make([]int, DefaultAlign)) // > one page of data
	w.AddInts(2, []int{1})
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	// Point section 2 back at section 1's page.
	binary.LittleEndian.PutUint64(img[headerSize+entrySize+8:], DefaultAlign)
	k := binary.LittleEndian.Uint32(img[12:])
	table := img[headerSize : headerSize+uint64(k)*entrySize]
	binary.LittleEndian.PutUint32(img[28:], crc32.Checksum(table, castagnoli))
	if _, err := FromBytes(img); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("overlapping sections accepted (err=%v)", err)
	}
}

func TestDuplicateSectionID(t *testing.T) {
	w := NewWriter()
	w.AddInts(1, []int{1})
	w.AddInts(1, []int{2})
	if _, err := w.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("duplicate section id accepted by the writer")
	}
}

func TestKindMismatch(t *testing.T) {
	path, _, _, _ := writeTestFile(t)
	f, err := Open(path, ModeCopy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Floats(1); err == nil {
		t.Fatal("Floats on an int section succeeded")
	}
	if _, err := f.Ints(3); err == nil {
		t.Fatal("Ints on a byte section succeeded")
	}
	if _, err := f.Ints(99); err == nil {
		t.Fatal("access to a missing section succeeded")
	}
}
