// Package blin implements the approximate RWR baselines of Tong,
// Faloutsos & Pan (ICDM 2006): NB_LIN and B_LIN. Both replace (part of)
// the normalised adjacency with a low-rank SVD and apply the
// Sherman–Morrison–Woodbury identity so queries cost dense
// matrix-times-vector work instead of an iterative solve.
//
// NB_LIN: A ≈ U diag(S) Vt, so
//
//	(I - (1-c) U diag(S) Vt)^{-1} = I + U Λ Vt,
//	Λ = ( diag(1/((1-c) S)) - Vt U )^{-1}
//
// B_LIN first splits A = A1 + A2 where A1 keeps within-partition edges
// (partitions from the Louvain method, standing in for the paper's METIS)
// and A2 the cross-partition edges, inverts M = I - (1-c)A1 exactly block
// by block, low-ranks only A2, and applies Woodbury around M^{-1}.
//
// These are approximation algorithms: their top-k answers can miss true
// answers, which is exactly the trade-off the paper's Figures 3 and 4
// study.
package blin

import (
	"fmt"

	"kdash/internal/graph"
	"kdash/internal/linalg"
	"kdash/internal/louvain"
	"kdash/internal/rwr"
	"kdash/internal/sparse"
	"kdash/internal/topk"
)

// Options configures either baseline.
type Options struct {
	// Rank is the target rank of the low-rank approximation (the paper
	// sweeps 100..1000 on the full-size datasets).
	Rank int
	// Restart is the restart probability c (0 selects 0.95).
	Restart float64
	// PowerIters controls randomised-SVD accuracy (0 selects 2).
	PowerIters int
	// Seed makes the SVD deterministic.
	Seed int64
	// MaxBlock caps B_LIN partition sizes; larger Louvain communities are
	// chopped, moving the chopped edges into the low-rank part. 0 selects
	// 200.
	MaxBlock int
}

func (o Options) withDefaults() Options {
	if o.Restart == 0 {
		o.Restart = rwr.DefaultRestart
	}
	if o.PowerIters == 0 {
		o.PowerIters = 2
	}
	if o.MaxBlock == 0 {
		o.MaxBlock = 200
	}
	return o
}

// NBLin is a prebuilt NB_LIN index.
type NBLin struct {
	n    int
	c    float64
	rank int
	u    *linalg.Dense // n x r
	vt   *linalg.Dense // r x n
	lam  *linalg.Dense // r x r
}

// NewNBLin precomputes the NB_LIN structure for the graph.
func NewNBLin(g *graph.Graph, opt Options) (*NBLin, error) {
	opt = opt.withDefaults()
	if g.N() == 0 {
		return nil, fmt.Errorf("blin: empty graph")
	}
	if opt.Rank <= 0 {
		return nil, fmt.Errorf("blin: rank must be positive, got %d", opt.Rank)
	}
	if opt.Restart <= 0 || opt.Restart >= 1 {
		return nil, fmt.Errorf("blin: restart probability %v outside (0,1)", opt.Restart)
	}
	a := g.ColumnNormalized()
	svd := linalg.TruncatedSVD(a, opt.Rank, opt.PowerIters, opt.Seed)
	lam, err := woodburyLambda(svd, opt.Restart, linalg.Mul(svd.Vt, svd.U))
	if err != nil {
		return nil, err
	}
	return &NBLin{n: g.N(), c: opt.Restart, rank: len(svd.S), u: svd.U, vt: svd.Vt, lam: lam}, nil
}

// woodburyLambda builds Λ = (diag(1/((1-c)S)) - VtU)^{-1}, guarding tiny
// singular values (their components are simply dropped, matching the
// behaviour of a smaller effective rank).
func woodburyLambda(svd *linalg.SVD, c float64, vtu *linalg.Dense) (*linalg.Dense, error) {
	r := len(svd.S)
	m := linalg.NewDense(r, r)
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			m.Set(i, j, -vtu.At(i, j))
		}
		s := svd.S[i]
		if s < 1e-12 {
			// Dead direction: make it inert (huge diagonal => ~0 inverse
			// contribution).
			m.Set(i, i, 1e18)
			continue
		}
		m.Set(i, i, m.At(i, i)+1/((1-c)*s))
	}
	lam, err := linalg.Inverse(m)
	if err != nil {
		return nil, fmt.Errorf("blin: Woodbury core matrix singular: %w", err)
	}
	return lam, nil
}

// N reports the number of indexed nodes.
func (b *NBLin) N() int { return b.n }

// ProximityVector returns the approximate proximity vector for query q:
// p ≈ c (e_q + U Λ Vt e_q).
func (b *NBLin) ProximityVector(q int) ([]float64, error) {
	if q < 0 || q >= b.n {
		return nil, fmt.Errorf("blin: query node %d outside [0,%d)", q, b.n)
	}
	// Vt e_q is column q of Vt.
	v := make([]float64, b.rank)
	for i := 0; i < b.rank; i++ {
		v[i] = b.vt.At(i, q)
	}
	y := b.lam.MulVec(v)
	p := b.u.MulVec(y)
	for i := range p {
		p[i] *= b.c
	}
	p[q] += b.c
	return p, nil
}

// TopK returns the approximate top-k answer. NB_LIN scores every node, so
// K does not affect its cost — the behaviour Figure 2 highlights.
func (b *NBLin) TopK(q, k int) ([]topk.Result, error) {
	p, err := b.ProximityVector(q)
	if err != nil {
		return nil, err
	}
	return topk.FromVector(p, k), nil
}

// BLin is a prebuilt B_LIN index.
type BLin struct {
	n    int
	c    float64
	rank int
	// Block-diagonal M^{-1}: for each partition, the member nodes and the
	// dense inverse of its block of M = I - (1-c)A1.
	blocks  []block
	blockOf []int         // node -> block index
	posIn   []int         // node -> position within its block
	u2      *linalg.Dense // M^{-1} U  (n x r)
	vt2     *linalg.Dense // Vt M^{-1} (r x n)
	lam     *linalg.Dense // r x r
}

type block struct {
	nodes []int
	inv   *linalg.Dense
}

// NewBLin precomputes the B_LIN structure for the graph.
func NewBLin(g *graph.Graph, opt Options) (*BLin, error) {
	opt = opt.withDefaults()
	if g.N() == 0 {
		return nil, fmt.Errorf("blin: empty graph")
	}
	if opt.Rank <= 0 {
		return nil, fmt.Errorf("blin: rank must be positive, got %d", opt.Rank)
	}
	if opt.Restart <= 0 || opt.Restart >= 1 {
		return nil, fmt.Errorf("blin: restart probability %v outside (0,1)", opt.Restart)
	}
	n := g.N()
	c := opt.Restart
	// Partition with Louvain, chopping oversized communities.
	com := louvain.Partition(g, opt.Seed).Community
	blockOf, groups := chop(com, n, opt.MaxBlock)

	a := g.ColumnNormalized()
	// Split A into within-partition (A1) and cross-partition (A2) parts.
	a1 := sparse.NewCOO(n, n)
	a2 := sparse.NewCOO(n, n)
	for col := 0; col < n; col++ {
		for i := a.ColPtr[col]; i < a.ColPtr[col+1]; i++ {
			r := a.RowIdx[i]
			if blockOf[r] == blockOf[col] {
				a1.Add(r, col, a.Val[i])
			} else {
				a2.Add(r, col, a.Val[i])
			}
		}
	}
	// Dense per-block inversion of M = I - (1-c)A1.
	a1c := a1.ToCSC()
	b := &BLin{n: n, c: c, blockOf: blockOf, posIn: make([]int, n)}
	for _, nodes := range groups {
		bn := len(nodes)
		idxOf := make(map[int]int, bn)
		for i, u := range nodes {
			idxOf[u] = i
			b.posIn[u] = i
		}
		m := linalg.NewDense(bn, bn)
		for i := 0; i < bn; i++ {
			m.Set(i, i, 1)
		}
		for li, u := range nodes {
			// Column u of A1 restricted to the block.
			for t := a1c.ColPtr[u]; t < a1c.ColPtr[u+1]; t++ {
				r := a1c.RowIdx[t]
				m.Set(idxOf[r], li, m.At(idxOf[r], li)-(1-c)*a1c.Val[t])
			}
		}
		inv, err := linalg.Inverse(m)
		if err != nil {
			return nil, fmt.Errorf("blin: block of size %d singular: %w", bn, err)
		}
		b.blocks = append(b.blocks, block{nodes: nodes, inv: inv})
	}
	// Low-rank the cross part and precompute the Woodbury pieces.
	a2c := a2.ToCSC()
	rank := opt.Rank
	svd := linalg.TruncatedSVD(a2c, rank, opt.PowerIters, opt.Seed+1)
	b.rank = len(svd.S)
	// M^{-1} U: apply block inverse to each column of U.
	b.u2 = b.applyMinvDense(svd.U)
	// Vt M^{-1} = (M^{-T} V)^T; since M^{-1} is block diagonal but not
	// symmetric, compute row-wise: (Vt M^{-1})[i,:] = M^{-T} applied to
	// Vt[i,:]. Equivalently multiply each row vector by M^{-1} from the
	// right.
	b.vt2 = b.applyMinvRight(svd.Vt)
	vtu := linalg.Mul(b.vt2, svd.U) // Vt M^{-1} U
	lam, err := woodburyLambda(svd, c, vtu)
	if err != nil {
		return nil, err
	}
	b.lam = lam
	return b, nil
}

// chop splits communities larger than maxBlock into consecutive chunks
// and returns the block id per node plus the member list per block.
func chop(com []int, n, maxBlock int) ([]int, [][]int) {
	byCom := map[int][]int{}
	for u := 0; u < n; u++ {
		byCom[com[u]] = append(byCom[com[u]], u)
	}
	// Deterministic iteration: communities sorted by smallest member.
	order := make([]int, 0, len(byCom))
	seen := map[int]bool{}
	for u := 0; u < n; u++ {
		if !seen[com[u]] {
			seen[com[u]] = true
			order = append(order, com[u])
		}
	}
	blockOf := make([]int, n)
	var groups [][]int
	for _, cid := range order {
		nodes := byCom[cid]
		for off := 0; off < len(nodes); off += maxBlock {
			end := off + maxBlock
			if end > len(nodes) {
				end = len(nodes)
			}
			chunk := nodes[off:end]
			for _, u := range chunk {
				blockOf[u] = len(groups)
			}
			groups = append(groups, chunk)
		}
	}
	return blockOf, groups
}

// applyMinvVec computes y = M^{-1} x using the block inverses.
func (b *BLin) applyMinvVec(x []float64) []float64 {
	y := make([]float64, b.n)
	for _, blk := range b.blocks {
		bn := len(blk.nodes)
		sub := make([]float64, bn)
		for i, u := range blk.nodes {
			sub[i] = x[u]
		}
		res := blk.inv.MulVec(sub)
		for i, u := range blk.nodes {
			y[u] = res[i]
		}
	}
	return y
}

// applyMinvDense computes M^{-1} D column by column (D is n x k).
func (b *BLin) applyMinvDense(d *linalg.Dense) *linalg.Dense {
	out := linalg.NewDense(d.Rows, d.Cols)
	col := make([]float64, d.Rows)
	for j := 0; j < d.Cols; j++ {
		for i := 0; i < d.Rows; i++ {
			col[i] = d.At(i, j)
		}
		res := b.applyMinvVec(col)
		for i := 0; i < d.Rows; i++ {
			out.Set(i, j, res[i])
		}
	}
	return out
}

// applyMinvRight computes D M^{-1} row by row (D is k x n): each row r
// satisfies (D M^{-1})[r, :] = (M^{-T} D[r, :]^T)^T, done per block with
// the transposed block inverse.
func (b *BLin) applyMinvRight(d *linalg.Dense) *linalg.Dense {
	out := linalg.NewDense(d.Rows, d.Cols)
	for r := 0; r < d.Rows; r++ {
		row := d.Row(r)
		for _, blk := range b.blocks {
			bn := len(blk.nodes)
			for j := 0; j < bn; j++ {
				s := 0.0
				for i := 0; i < bn; i++ {
					s += row[blk.nodes[i]] * blk.inv.At(i, j)
				}
				out.Set(r, blk.nodes[j], s)
			}
		}
	}
	return out
}

// N reports the number of indexed nodes.
func (b *BLin) N() int { return b.n }

// ProximityVector returns the approximate proximity vector for query q:
// p ≈ c ( M^{-1} e_q + (M^{-1} U) Λ (Vt M^{-1}) e_q ).
func (b *BLin) ProximityVector(q int) ([]float64, error) {
	if q < 0 || q >= b.n {
		return nil, fmt.Errorf("blin: query node %d outside [0,%d)", q, b.n)
	}
	// M^{-1} e_q: column of the block inverse containing q.
	p := make([]float64, b.n)
	blk := b.blocks[b.blockOf[q]]
	for i, u := range blk.nodes {
		p[u] = blk.inv.At(i, b.posIn[q])
	}
	// (Vt M^{-1}) e_q is column q of vt2.
	v := make([]float64, b.rank)
	for i := 0; i < b.rank; i++ {
		v[i] = b.vt2.At(i, q)
	}
	y := b.lam.MulVec(v)
	corr := b.u2.MulVec(y)
	for i := range p {
		p[i] = b.c * (p[i] + corr[i])
	}
	return p, nil
}

// TopK returns the approximate top-k answer.
func (b *BLin) TopK(q, k int) ([]topk.Result, error) {
	p, err := b.ProximityVector(q)
	if err != nil {
		return nil, err
	}
	return topk.FromVector(p, k), nil
}
