// Package distributed holds the multi-process differential harness for
// coordinator/worker serving: the tests in this package re-exec the
// test binary as real kdash worker processes on loopback TCP, drive a
// coordinator through randomized query/update chains, and assert every
// answer — results and per-query statistics — is bit-identical to an
// in-process index fed the same chain, including while workers are
// being killed, restarted from stale disk, and served through torn
// connections. The package intentionally contains no production code;
// the pieces under test live in internal/rpc, internal/placement and
// internal/shard.
package distributed
