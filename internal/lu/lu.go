// Package lu implements the sparse numerical kernel of K-dash's
// precomputation: LU decomposition of W = I - (1-c)A (the paper's
// Equations (6)–(7), Crout/Doolittle form with unit lower diagonal) and
// exact sparse inversion of the triangular factors (Equations (4)–(5)).
//
// W is strictly diagonally dominant by columns for any column-stochastic
// (or sub-stochastic) A and restart probability c in (0,1), so the
// factorization needs no pivoting — the same assumption the paper makes.
//
// The factorization is the left-looking Gilbert–Peierls algorithm: each
// column of W is solved against the already-computed columns of L using a
// depth-first reachability pass, so the total cost is proportional to the
// number of floating-point operations, not n^2. The triangular inverses
// are computed column-by-column the same way (solving L x = e_j and
// U x = e_j), which realises exactly the recurrences (4)–(5).
//
// Factor arrays are read-only once built. Every solver in this package
// (Inverse.SolveBatch, SparseSolver) writes exclusively into its own
// recycled workspaces — a contract with teeth: a loaded index's factor
// arrays may alias a read-only file mapping (internal/mmapio), where a
// write is a segfault, not a bug report. Derived structures built after
// load (the lazily transposed U^{-1} of Inverse.UinvByColumn) live in
// fresh private memory and are immutable once published.
package lu

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"kdash/internal/sparse"
)

// BuildW forms W = I - (1-c)A in CSC form from the column-normalised
// adjacency A.
func BuildW(a *sparse.CSC, c float64) *sparse.CSC {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("lu: adjacency must be square, got %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
	}
	for col := 0; col < n; col++ {
		for i := a.ColPtr[col]; i < a.ColPtr[col+1]; i++ {
			coo.Add(a.RowIdx[i], col, -(1-c)*a.Val[i])
		}
	}
	return coo.ToCSC()
}

// Factors holds the sparse LU decomposition W = L U with unit lower
// triangular L (unit diagonal implicit) and upper triangular U (diagonal
// stored).
// The factor arrays are immutable once Decompose returns — downstream
// consumers may alias them into read-only mappings — so every field
// carries the //kdash:readonly contract enforced by tools/kdashvet.
type Factors struct {
	N int
	// L columns, strictly lower part: row indices ascending.
	//
	//kdash:readonly
	lPtr []int
	//kdash:readonly
	lRow []int
	//kdash:readonly
	lVal []float64
	// U columns, including diagonal: row indices ascending; the diagonal
	// entry is the last entry of each column.
	//
	//kdash:readonly
	uPtr []int
	//kdash:readonly
	uRow []int
	//kdash:readonly
	uVal []float64
}

// NNZL reports stored entries of L including the implicit unit diagonal.
func (f *Factors) NNZL() int { return len(f.lVal) + f.N }

// NNZU reports stored entries of U (diagonal included).
func (f *Factors) NNZU() int { return len(f.uVal) }

// Decompose computes the LU factorization of the sparse matrix w, which
// must be square with a nonzero diagonal after elimination (guaranteed
// for W = I - (1-c)A). Column order is taken as given — reorder first.
//
//kdash:mutates-factors
func Decompose(w *sparse.CSC) (*Factors, error) {
	n := w.Rows
	if w.Cols != n {
		return nil, fmt.Errorf("lu: matrix must be square, got %dx%d", w.Rows, w.Cols)
	}
	f := &Factors{
		N:    n,
		lPtr: make([]int, n+1),
		uPtr: make([]int, n+1),
	}
	// Workspaces for the Gilbert–Peierls column solve.
	x := make([]float64, n)
	mark := make([]int, n) // mark[i] == j+1 means i is in column j's pattern
	stack := make([]int, 0, n)
	order := make([]int, 0, n) // reverse-topological output of the DFS
	// DFS over the column DAG of L: edge i -> k when L[k][i] != 0 (k > i).
	// Iterative with explicit position stack.
	pos := make([]int, n)

	for j := 0; j < n; j++ {
		// Sparse RHS: column j of W.
		lo, hi := w.ColPtr[j], w.ColPtr[j+1]
		order = order[:0]
		for t := lo; t < hi; t++ {
			i := w.RowIdx[t]
			if mark[i] == j+1 {
				continue
			}
			// DFS from i through columns of L with index < j.
			stack = append(stack[:0], i)
			mark[i] = j + 1
			pos[i] = f.lPtr[i] // valid only when i < j; guarded below
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				if v >= j {
					// No column of L yet for v; it is a sink.
					order = append(order, v)
					stack = stack[:len(stack)-1]
					continue
				}
				advanced := false
				for p := pos[v]; p < f.lPtr[v+1]; p++ {
					k := f.lRow[p]
					if mark[k] != j+1 {
						mark[k] = j + 1
						pos[v] = p + 1
						pos[k] = f.lPtr[k]
						stack = append(stack, k)
						advanced = true
						break
					}
				}
				if !advanced {
					order = append(order, v)
					stack = stack[:len(stack)-1]
				}
			}
		}
		// Scatter RHS values.
		for _, i := range order {
			x[i] = 0
		}
		for t := lo; t < hi; t++ {
			x[w.RowIdx[t]] = w.Val[t]
		}
		// Eliminate in topological order (reverse of DFS output).
		for t := len(order) - 1; t >= 0; t-- {
			i := order[t]
			if i >= j {
				continue
			}
			xi := x[i]
			if xi == 0 {
				continue
			}
			for p := f.lPtr[i]; p < f.lPtr[i+1]; p++ {
				x[f.lRow[p]] -= f.lVal[p] * xi
			}
		}
		// Split x into U[:,j] (indices <= j) and L[:,j] (indices > j).
		sort.Ints(order)
		diag := 0.0
		for _, i := range order {
			if i < j {
				if x[i] != 0 {
					f.uRow = append(f.uRow, i)
					f.uVal = append(f.uVal, x[i])
				}
			} else if i == j {
				diag = x[i]
			}
		}
		if diag == 0 || math.IsNaN(diag) {
			return nil, fmt.Errorf("lu: zero pivot at column %d (matrix not factorizable without pivoting)", j)
		}
		// Diagonal of U is stored last in its column.
		f.uRow = append(f.uRow, j)
		f.uVal = append(f.uVal, diag)
		f.uPtr[j+1] = len(f.uVal)
		for _, i := range order {
			if i > j && x[i] != 0 {
				f.lRow = append(f.lRow, i)
				f.lVal = append(f.lVal, x[i]/diag)
			}
		}
		f.lPtr[j+1] = len(f.lVal)
	}
	return f, nil
}

// SolveDense solves L U x = b for dense b (used by tests and by callers
// that need a full proximity vector through the factorization).
func (f *Factors) SolveDense(b []float64) []float64 {
	if len(b) != f.N {
		panic("lu: SolveDense dimension mismatch")
	}
	x := make([]float64, f.N)
	copy(x, b)
	// Forward: L y = b, unit diagonal.
	for i := 0; i < f.N; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for p := f.lPtr[i]; p < f.lPtr[i+1]; p++ {
			x[f.lRow[p]] -= f.lVal[p] * xi
		}
	}
	// Backward: U x = y. Diagonal entry is last in each column.
	for i := f.N - 1; i >= 0; i-- {
		d := f.uVal[f.uPtr[i+1]-1]
		xi := x[i] / d
		x[i] = xi
		if xi == 0 {
			continue
		}
		for p := f.uPtr[i]; p < f.uPtr[i+1]-1; p++ {
			x[f.uRow[p]] -= f.uVal[p] * xi
		}
	}
	return x
}

// SolveDenseBatch solves L U x = b for a block of dense right-hand
// sides, sweeping each factor once for the whole block instead of once
// per vector. The block is held interleaved (entry i of vector v at
// x[i*nb+v]) so the inner per-vector loop runs over contiguous memory:
// each factor entry is loaded once and applied to every column, the
// BLAS-2 to BLAS-3 transformation that makes batched substitution
// bandwidth-, not latency-, bound. Results match SolveDense per column.
func (f *Factors) SolveDenseBatch(bs [][]float64) [][]float64 {
	nb := len(bs)
	if nb == 0 {
		return nil
	}
	for _, b := range bs {
		if len(b) != f.N {
			panic("lu: SolveDenseBatch dimension mismatch")
		}
	}
	x := make([]float64, f.N*nb)
	for v, b := range bs {
		for i, bi := range b {
			x[i*nb+v] = bi
		}
	}
	// Forward: L y = b, unit diagonal.
	for i := 0; i < f.N; i++ {
		base := i * nb
		for p := f.lPtr[i]; p < f.lPtr[i+1]; p++ {
			lv := f.lVal[p]
			row := f.lRow[p] * nb
			for v := 0; v < nb; v++ {
				x[row+v] -= lv * x[base+v]
			}
		}
	}
	// Backward: U x = y. Diagonal entry is last in each column.
	for i := f.N - 1; i >= 0; i-- {
		d := f.uVal[f.uPtr[i+1]-1]
		base := i * nb
		for v := 0; v < nb; v++ {
			x[base+v] /= d
		}
		for p := f.uPtr[i]; p < f.uPtr[i+1]-1; p++ {
			uv := f.uVal[p]
			row := f.uRow[p] * nb
			for v := 0; v < nb; v++ {
				x[row+v] -= uv * x[base+v]
			}
		}
	}
	out := make([][]float64, nb)
	for v := range out {
		o := make([]float64, f.N)
		for i := range o {
			o[i] = x[i*nb+v]
		}
		out[v] = o
	}
	return out
}

// L returns the unit lower factor as CSC (diagonal 1s materialised),
// mainly for tests.
func (f *Factors) L() *sparse.CSC {
	coo := sparse.NewCOO(f.N, f.N)
	for j := 0; j < f.N; j++ {
		coo.Add(j, j, 1)
		for p := f.lPtr[j]; p < f.lPtr[j+1]; p++ {
			coo.Add(f.lRow[p], j, f.lVal[p])
		}
	}
	return coo.ToCSC()
}

// U returns the upper factor as CSC, mainly for tests.
func (f *Factors) U() *sparse.CSC {
	coo := sparse.NewCOO(f.N, f.N)
	for j := 0; j < f.N; j++ {
		for p := f.uPtr[j]; p < f.uPtr[j+1]; p++ {
			coo.Add(f.uRow[p], j, f.uVal[p])
		}
	}
	return coo.ToCSC()
}

// Options configures the triangular inversion.
type Options struct {
	// DropTol discards inverse entries with absolute value below it.
	// Zero (the default) keeps every entry: the exact setting the paper's
	// guarantee requires. Positive values are an ablation knob that
	// trades exactness for sparsity.
	DropTol float64
	// Workers sets the number of goroutines for column inversion.
	// 0 means GOMAXPROCS; 1 forces serial execution.
	Workers int
}

// Inverse holds the sparse inverse triangular factors. Linv is stored by
// column (a query needs column q = L^{-1} e_q) and Uinv by row (computing
// one proximity needs row u of U^{-1}); this asymmetry is what makes the
// per-node proximity computation O(nnz(row) + nnz(col)).
type Inverse struct {
	N int
	// Both inverse factors are immutable after construction; under -mmap
	// their Val/RowIdx/ColPtr slices alias a PROT_READ file mapping.
	//
	//kdash:readonly
	Linv *sparse.CSC
	//kdash:readonly
	Uinv *sparse.CSR

	// Remap, if non-nil, is a permutation of [0, N) baked into the
	// blocked U^{-1} strips at build time: their row indices are
	// Remap[r] instead of r, so a kernel scatter lands solutions
	// directly in the caller's id domain and the per-support output
	// mapping pass disappears. The row-sweep apply honours it too, so
	// both branches agree on the output domain.
	Remap []int
	// Precision selects the value-strip width for the single-lane solve
	// path: Float64 (default, exact) or Float32 (half the value
	// bandwidth, accumulation still in float64). Float32 applies only
	// where blocked strips exist; a factor too large for int32 indexing
	// silently keeps exact float64.
	Precision Precision

	// uinvCol is U^{-1} transposed to column form, built lazily for the
	// support-driven applies (SparseSolver and core's batch kernel reach
	// it through UinvByColumn). Immutable once built; never serialised.
	// uinvColSize holds just the per-column entry counts, built even more
	// lazily-cheaply so the scatter-vs-sweep decision never forces the
	// full transpose.
	uinvColOnce     sync.Once
	uinvCol         *sparse.CSC
	uinvColSizeOnce sync.Once
	uinvColSize     []int

	// blkL/blkU are the blocked strip forms of L^{-1} (by column,
	// unmapped) and U^{-1} (by column, Remap baked in) that the SIMD
	// kernels walk. Built lazily on first solve, or installed pre-built
	// from a v3 index file via InstallBlocked — installed strips are
	// bounds-validated once before the first kernel call because the
	// assembly trusts row indices unchecked. Nil when the padded layout
	// would overflow int32 indexing; solves then keep the scalar loops.
	blkOnce    sync.Once
	blkL, blkU *BlockedCSC
	installedL *BlockedCSC
	installedU *BlockedCSC

	// uval32 is the float32 rendering of Uinv.Val for Float32-mode row
	// sweeps, derived lazily like the blocked value strips.
	uval32Once sync.Once
	uval32     []float32
}

// Precision selects the stored width of factor values on the
// single-lane solve path; see Inverse.Precision.
type Precision uint8

const (
	// Float64 keeps full-width factor values: the exact mode the
	// paper's guarantee requires, and the default.
	Float64 Precision = iota
	// Float32 reads half-width value strips, widened exactly to float64
	// before every multiply; accumulation never happens in float32. The
	// error against Float64 is measured by the differential harness and
	// documented in docs/ARCHITECTURE.md.
	Float32
)

// InstallBlocked hands the Inverse pre-built blocked factor strips
// (typically mmap-loaded from a v3 index file) so the first solve skips
// the build. Call before any solve; the strips are validated once at
// first use and a corrupt pair panics rather than letting an unchecked
// kernel scatter write out of bounds.
func (inv *Inverse) InstallBlocked(l, u *BlockedCSC) {
	inv.installedL, inv.installedU = l, u
}

// blocked returns the blocked strip forms of both factors, building
// them on first use unless pre-built strips were installed. Either
// return may be nil (int32 overflow); callers fall back to the scalar
// loops then.
func (inv *Inverse) blocked() (*BlockedCSC, *BlockedCSC) {
	inv.blkOnce.Do(func() {
		if inv.installedL != nil && inv.installedU != nil {
			if err := inv.installedL.validate(); err != nil {
				panic("lu: corrupt blocked L strip: " + err.Error())
			}
			if err := inv.installedU.validate(); err != nil {
				panic("lu: corrupt blocked U strip: " + err.Error())
			}
			inv.blkL, inv.blkU = inv.installedL, inv.installedU
			return
		}
		inv.blkL = BlockFromCSC(inv.Linv, nil)
		inv.blkU = BlockFromCSC(inv.UinvByColumn(), inv.Remap)
	})
	return inv.blkL, inv.blkU
}

// Blocked force-builds and returns the blocked strips; Save uses it so
// a persisted index carries them pre-built.
func (inv *Inverse) Blocked() (*BlockedCSC, *BlockedCSC) { return inv.blocked() }

// uinvVal32 returns the float32 rendering of U^{-1}'s stored values for
// the Float32-mode row sweep, built lazily once.
func (inv *Inverse) uinvVal32() []float32 {
	inv.uval32Once.Do(func() {
		v := make([]float32, len(inv.Uinv.Val))
		for i, x := range inv.Uinv.Val {
			v[i] = float32(x)
		}
		inv.uval32 = v
	})
	return inv.uval32
}

// NNZ reports total stored entries across both inverse factors, the
// quantity Figure 5 of the paper tracks.
func (inv *Inverse) NNZ() int { return inv.Linv.NNZ() + inv.Uinv.NNZ() }

// SolveBatch computes U^{-1} L^{-1} r for a block of dense right-hand
// sides, traversing each inverse factor once for the whole block. It is
// the plain reference form of the multi-RHS apply; the query path runs
// core.BatchSolver, a fused variant (permutation folded in,
// support-driven scatter, pooled buffers) that is property-tested
// against this kernel so the two cannot silently diverge. The
// U^{-1} sweep dominates a dense apply — every stored row entry costs an
// index load plus a dependent read of the L^{-1} workspace — so reusing
// each loaded entry across all nb block columns (held interleaved, entry
// i of vector v at ws[i*nb+v]) amortises the traversal the way a BLAS-3
// kernel amortises matrix loads across right-hand sides. Zero entries of
// a right-hand side cost nothing in the L^{-1} pass. Per column the
// arithmetic runs in the same order as a single solve.
func (inv *Inverse) SolveBatch(rs [][]float64) [][]float64 {
	nb := len(rs)
	if nb == 0 {
		return nil
	}
	for _, r := range rs {
		if len(r) != inv.N {
			panic("lu: SolveBatch dimension mismatch")
		}
	}
	// ws = L^{-1} r per column, accumulated column by column of L^{-1}
	// over the nonzero right-hand side entries.
	ws := make([]float64, inv.N*nb)
	for v, r := range rs {
		for j, rj := range r {
			if rj == 0 {
				continue
			}
			for p := inv.Linv.ColPtr[j]; p < inv.Linv.ColPtr[j+1]; p++ {
				ws[inv.Linv.RowIdx[p]*nb+v] += rj * inv.Linv.Val[p]
			}
		}
	}
	// out[v][u] = (U^{-1} row u) . ws[:,v]: each row is loaded once and
	// dotted against every block column.
	out := make([][]float64, nb)
	for v := range out {
		out[v] = make([]float64, inv.N)
	}
	acc := make([]float64, nb)
	for u := 0; u < inv.N; u++ {
		for v := range acc {
			acc[v] = 0
		}
		for p := inv.Uinv.RowPtr[u]; p < inv.Uinv.RowPtr[u+1]; p++ {
			uv := inv.Uinv.Val[p]
			col := inv.Uinv.ColIdx[p] * nb
			for v := 0; v < nb; v++ {
				acc[v] += uv * ws[col+v]
			}
		}
		for v := range acc {
			out[v][u] = acc[v]
		}
	}
	return out
}

// Invert computes L^{-1} and U^{-1} exactly, column by column, realising
// the paper's Equations (4)–(5).
func (f *Factors) Invert(opt Options) *Inverse {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	lCols := invertColumns(f.N, workers, opt.DropTol, f.solveLowerColumn)
	uCols := invertColumns(f.N, workers, opt.DropTol, f.solveUpperColumn)
	return &Inverse{
		N:    f.N,
		Linv: assembleCSC(f.N, lCols),
		Uinv: assembleCSC(f.N, uCols).ToCSR(),
	}
}

// column is one computed sparse column of an inverse factor.
type column struct {
	idx []int
	val []float64
}

// invertColumns runs solve(j) for every column j, optionally in parallel.
func invertColumns(n, workers int, dropTol float64, solve func(j int, ws *solveWorkspace) column) []column {
	cols := make([]column, n)
	if workers <= 1 || n < 64 {
		ws := newSolveWorkspace(n)
		for j := 0; j < n; j++ {
			cols[j] = dropSmall(solve(j, ws), dropTol)
		}
		return cols
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := newSolveWorkspace(n)
			for j := range next {
				cols[j] = dropSmall(solve(j, ws), dropTol)
			}
		}()
	}
	for j := 0; j < n; j++ {
		next <- j
	}
	close(next)
	wg.Wait()
	return cols
}

func dropSmall(c column, tol float64) column {
	if tol <= 0 {
		return c
	}
	out := column{idx: c.idx[:0], val: c.val[:0]}
	for k, v := range c.val {
		if math.Abs(v) >= tol {
			out.idx = append(out.idx, c.idx[k])
			out.val = append(out.val, v)
		}
	}
	return out
}

type solveWorkspace struct {
	x     []float64
	mark  []bool
	reach []int
	stack []int
	pos   []int
}

func newSolveWorkspace(n int) *solveWorkspace {
	return &solveWorkspace{
		x:    make([]float64, n),
		mark: make([]bool, n),
		pos:  make([]int, n),
	}
}

// solveLowerColumn computes column j of L^{-1}: solve L x = e_j.
// Reachability goes downward (L[k][i] != 0, k > i); elimination runs in
// ascending index order.
func (f *Factors) solveLowerColumn(j int, ws *solveWorkspace) column {
	reach := f.reachFrom(j, ws, f.lPtr, f.lRow)
	sort.Ints(reach)
	for _, i := range reach {
		ws.x[i] = 0
	}
	ws.x[j] = 1
	for _, i := range reach {
		xi := ws.x[i]
		if xi == 0 {
			continue
		}
		for p := f.lPtr[i]; p < f.lPtr[i+1]; p++ {
			ws.x[f.lRow[p]] -= f.lVal[p] * xi
		}
	}
	return gather(reach, ws)
}

// solveUpperColumn computes column j of U^{-1}: solve U x = e_j.
// Reachability goes upward (U[k][i] != 0, k < i, within column i);
// elimination runs in descending index order.
func (f *Factors) solveUpperColumn(j int, ws *solveWorkspace) column {
	reach := f.reachFrom(j, ws, f.uPtr, f.uRow)
	sort.Sort(sort.Reverse(sort.IntSlice(reach)))
	for _, i := range reach {
		ws.x[i] = 0
	}
	ws.x[j] = 1
	for _, i := range reach {
		d := f.uVal[f.uPtr[i+1]-1]
		xi := ws.x[i] / d
		ws.x[i] = xi
		if xi == 0 {
			continue
		}
		for p := f.uPtr[i]; p < f.uPtr[i+1]-1; p++ {
			ws.x[f.uRow[p]] -= f.uVal[p] * xi
		}
	}
	return gather(reach, ws)
}

// reachFrom computes all indices reachable from j in the DAG whose edges
// are i -> rows of column i (excluding the diagonal for U, which is the
// last entry; including it is harmless as it self-loops). Marks are reset
// before returning.
func (f *Factors) reachFrom(j int, ws *solveWorkspace, ptr []int, row []int) []int {
	ws.reach = ws.reach[:0]
	ws.stack = append(ws.stack[:0], j)
	ws.mark[j] = true
	ws.pos[j] = ptr[j]
	for len(ws.stack) > 0 {
		v := ws.stack[len(ws.stack)-1]
		advanced := false
		for p := ws.pos[v]; p < ptr[v+1]; p++ {
			k := row[p]
			if k == v {
				continue // diagonal entry (U stores it)
			}
			if !ws.mark[k] {
				ws.mark[k] = true
				ws.pos[v] = p + 1
				ws.pos[k] = ptr[k]
				ws.stack = append(ws.stack, k)
				advanced = true
				break
			}
		}
		if !advanced {
			ws.reach = append(ws.reach, v)
			ws.stack = ws.stack[:len(ws.stack)-1]
		}
	}
	for _, i := range ws.reach {
		ws.mark[i] = false
	}
	out := make([]int, len(ws.reach))
	copy(out, ws.reach)
	return out
}

func gather(reach []int, ws *solveWorkspace) column {
	c := column{}
	// reach is sorted (asc for L, desc for U); emit ascending for CSC.
	idxs := make([]int, len(reach))
	copy(idxs, reach)
	sort.Ints(idxs)
	for _, i := range idxs {
		if ws.x[i] != 0 {
			c.idx = append(c.idx, i)
			c.val = append(c.val, ws.x[i])
		}
	}
	return c
}

func assembleCSC(n int, cols []column) *sparse.CSC {
	m := &sparse.CSC{Rows: n, Cols: n, ColPtr: make([]int, n+1)}
	nnz := 0
	for _, c := range cols {
		nnz += len(c.idx)
	}
	m.RowIdx = make([]int, 0, nnz)
	m.Val = make([]float64, 0, nnz)
	for j, c := range cols {
		m.RowIdx = append(m.RowIdx, c.idx...)
		m.Val = append(m.Val, c.val...)
		m.ColPtr[j+1] = len(m.RowIdx)
	}
	return m
}
