package server

import (
	"encoding/json"
	"math"
	"net/http"
	"testing"
	"time"

	"kdash/internal/gen"
	"kdash/internal/reorder"
	"kdash/internal/shard"
)

func shardedHandler(t *testing.T) (*Handler, *shard.ShardedIndex) {
	t.Helper()
	g := gen.PlantedPartition(120, 4, 0.2, 0.01, 1)
	sx, err := shard.Build(g, shard.Options{Shards: 4, Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return New(sx), sx
}

// TestShardedEngineEndpoints checks a ShardedIndex serves the same
// endpoint contracts as the monolithic index and agrees with it.
func TestShardedEngineEndpoints(t *testing.T) {
	hs, sx := shardedHandler(t)
	hm, ix := testHandler(t) // same graph, same seed

	for _, url := range []string{"/topk?q=7&k=5", "/topk?q=0&k=3&exclude=1,2"} {
		recS, _ := get(t, hs, url)
		recM, _ := get(t, hm, url)
		if recS.Code != http.StatusOK || recM.Code != http.StatusOK {
			t.Fatalf("%s: sharded %d, monolithic %d", url, recS.Code, recM.Code)
		}
		var respS, respM struct {
			Results []struct {
				Node  int     `json:"node"`
				Score float64 `json:"score"`
			} `json:"results"`
		}
		if err := json.Unmarshal(recS.Body.Bytes(), &respS); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(recM.Body.Bytes(), &respM); err != nil {
			t.Fatal(err)
		}
		if len(respS.Results) != len(respM.Results) {
			t.Fatalf("%s: %d vs %d results", url, len(respS.Results), len(respM.Results))
		}
		for i := range respS.Results {
			if respS.Results[i].Node != respM.Results[i].Node ||
				math.Abs(respS.Results[i].Score-respM.Results[i].Score) > 1e-9 {
				t.Errorf("%s result %d: sharded %+v, monolithic %+v", url, i, respS.Results[i], respM.Results[i])
			}
		}
	}

	// /proximity must agree too.
	p1, err := sx.Proximity(7, 11)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ix.Proximity(7, 11)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1-p2) > 1e-9 {
		t.Errorf("proximity: sharded %g, monolithic %g", p1, p2)
	}
}

// TestStatzEndpoint checks counters accumulate and the sharded engine's
// per-shard observability comes through.
func TestStatzEndpoint(t *testing.T) {
	h, sx := shardedHandler(t)
	for i := 0; i < 3; i++ {
		get(t, h, "/topk?q=7&k=5")
	}
	get(t, h, "/proximity?q=1&u=2")
	get(t, h, "/topk?q=99999&k=5") // reaches the engine, fails, counts as an error

	rec, _ := get(t, h, "/statz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Queries struct {
			TopK      int64 `json:"topk"`
			Proximity int64 `json:"proximity"`
			Errors    int64 `json:"errors"`
		} `json:"queries"`
		Work struct {
			Visited int64 `json:"visited"`
		} `json:"work"`
		Index struct {
			Kind     string `json:"kind"`
			Shards   int    `json:"shards"`
			PerShard []struct {
				Nodes int `json:"nodes"`
			} `json:"perShard"`
		} `json:"index"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad /statz JSON: %v (%s)", err, rec.Body.String())
	}
	if resp.Queries.TopK != 4 {
		t.Errorf("topk counter = %d, want 4", resp.Queries.TopK)
	}
	if resp.Queries.Errors != 1 {
		t.Errorf("error counter = %d, want 1", resp.Queries.Errors)
	}
	if resp.Queries.Proximity != 1 {
		t.Errorf("proximity counter = %d, want 1", resp.Queries.Proximity)
	}
	if resp.Work.Visited == 0 {
		t.Error("visited counter never advanced")
	}
	if resp.Index.Kind != "sharded" || resp.Index.Shards != sx.Shards() {
		t.Errorf("index stats = %+v, want sharded/%d", resp.Index, sx.Shards())
	}
	total := 0
	for _, s := range resp.Index.PerShard {
		total += s.Nodes
	}
	if total != sx.N() {
		t.Errorf("per-shard sizes sum to %d, want %d", total, sx.N())
	}

	// The monolithic engine reports its own kind.
	hm, _ := testHandler(t)
	recM, _ := get(t, hm, "/statz")
	var respM struct {
		Index struct {
			Kind string `json:"kind"`
		} `json:"index"`
	}
	if err := json.Unmarshal(recM.Body.Bytes(), &respM); err != nil {
		t.Fatal(err)
	}
	if respM.Index.Kind != "monolithic" {
		t.Errorf("monolithic /statz kind = %q", respM.Index.Kind)
	}
}

// TestStatzLoadAndMemoryFields checks the operations fields added for
// the mmap load path: the WithOpenInfo block, the resident-set gauge
// and the sharded engine's opened-shard accounting.
func TestStatzLoadAndMemoryFields(t *testing.T) {
	g := gen.PlantedPartition(120, 4, 0.2, 0.01, 1)
	sx, err := shard.Build(g, shard.Options{Shards: 4, Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := New(sx, WithOpenInfo(1500*time.Millisecond, "mmap"))
	get(t, h, "/topk?q=7&k=5")
	rec, _ := get(t, h, "/statz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Memory struct {
			RSSBytes int64 `json:"rssBytes"`
		} `json:"memory"`
		Load struct {
			OpenSeconds float64 `json:"openSeconds"`
			Mode        string  `json:"mode"`
		} `json:"load"`
		Index struct {
			Shards       int `json:"shards"`
			ShardsOpened int `json:"shardsOpened"`
			PerShard     []struct {
				Opened     bool `json:"opened"`
				NNZInverse int  `json:"nnzInverse"`
			} `json:"perShard"`
		} `json:"index"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad /statz JSON: %v (%s)", err, rec.Body.String())
	}
	if resp.Load.Mode != "mmap" || resp.Load.OpenSeconds != 1.5 {
		t.Errorf("load block = %+v, want mode=mmap openSeconds=1.5", resp.Load)
	}
	if resp.Memory.RSSBytes < 0 {
		t.Errorf("rssBytes = %d, want >= 0", resp.Memory.RSSBytes)
	}
	// A built (non-lazy) index reports every shard open with real nnz.
	if resp.Index.ShardsOpened != resp.Index.Shards {
		t.Errorf("built index reports %d/%d shards opened", resp.Index.ShardsOpened, resp.Index.Shards)
	}
	for i, s := range resp.Index.PerShard {
		if !s.Opened || s.NNZInverse == 0 {
			t.Errorf("shard %d: opened=%t nnz=%d, want opened with nonzero nnz", i, s.Opened, s.NNZInverse)
		}
	}
}
