package server

import (
	"container/list"
	"sync"

	"kdash/internal/topk"
)

// vectorCache is a small LRU of full proximity vectors keyed by query
// node. Proximity vectors are immutable once computed (indexes are
// read-only within an epoch), so inside one epoch the only policy is
// recency eviction. Across epochs entries DO go stale — POST /update
// swaps the engine — so the cache is tagged with the epoch its entries
// were computed under: a get or put carrying a newer epoch flushes
// everything first, and a put from a request that raced an update
// (computed under an older epoch) is dropped rather than poisoning the
// new epoch. Guarded by one mutex: a hit is a map lookup plus a list
// splice, far below the cost of the query it saves.
type vectorCache struct {
	mu        sync.Mutex
	cap       int
	epoch     int
	ll        *list.List // front = most recently used; values are *cacheEntry
	m         map[int]*list.Element
	bytes     int64 // approximate payload held: 8 bytes per cached float64
	evictions int64 // entries dropped by LRU pressure (epoch flushes excluded)
}

type cacheEntry struct {
	q   int
	vec []float64
}

func newVectorCache(capacity int) *vectorCache {
	return &vectorCache{cap: capacity, ll: list.New(), m: make(map[int]*list.Element, capacity)}
}

// get returns the cached vector for q at the given epoch, refreshing
// its recency. An epoch ahead of the cache flushes the stale entries
// and misses. Callers must treat the vector as read-only: it is shared
// across requests.
func (c *vectorCache) get(q, epoch int) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		if epoch > c.epoch {
			c.flushLocked(epoch)
		}
		return nil, false
	}
	el, ok := c.m[q]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).vec, true
}

// put inserts (or refreshes) q's vector computed under the given epoch,
// evicting the least recently used entry when full. A vector computed
// under an older epoch than the cache's is dropped: its request raced
// an update and lost.
func (c *vectorCache) put(q int, vec []float64, epoch int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		if epoch < c.epoch {
			return
		}
		c.flushLocked(epoch)
	}
	if el, ok := c.m[q]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.bytes += 8 * int64(len(vec)-len(e.vec))
		e.vec = vec
		return
	}
	c.m[q] = c.ll.PushFront(&cacheEntry{q: q, vec: vec})
	c.bytes += 8 * int64(len(vec))
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		e := last.Value.(*cacheEntry)
		delete(c.m, e.q)
		c.bytes -= 8 * int64(len(e.vec))
		c.evictions++
	}
}

// flush drops every entry and advances to the given epoch (no-op for a
// stale epoch) — called by /update on swap so stale vectors free their
// memory promptly instead of waiting to be evicted.
func (c *vectorCache) flush(epoch int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch > c.epoch {
		c.flushLocked(epoch)
	}
}

// retain advances the cache to epoch, dropping exactly the entries keep
// rejects and carrying the survivors over — the selective invalidation
// the update path uses when it can prove which cached vectors an epoch
// swap could have changed (see Handler.invalidateCache for the
// exactness argument). A stale epoch is a no-op; on the current epoch
// the walk still runs (drops are always safe, a racing put has simply
// inserted fresh entries the keep test judges conservatively).
func (c *vectorCache) retain(epoch int, keep func(q int, vec []float64) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch < c.epoch {
		return
	}
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if !keep(e.q, e.vec) {
			c.ll.Remove(el)
			delete(c.m, e.q)
			c.bytes -= 8 * int64(len(e.vec))
		}
	}
	c.epoch = epoch
}

func (c *vectorCache) flushLocked(epoch int) {
	c.epoch = epoch
	c.ll.Init()
	clear(c.m)
	c.bytes = 0
}

// stats reports the cache's current footprint and cumulative LRU
// evictions (hit/miss counters live on the handler, which sees lookups
// the cache itself never does).
func (c *vectorCache) stats() (entries int, bytes, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes, c.evictions
}

func (c *vectorCache) len() int {
	n, _, _ := c.stats()
	return n
}

// rankVector extracts the top-k answer from a full proximity vector,
// matching the engines' ranking semantics: zero-proximity (unreachable)
// nodes never pad the answer, excluded nodes are barred from the heap,
// and ties order by ascending node id.
func rankVector(vec []float64, k int, exclude map[int]bool) []topk.Result {
	h := topk.New(k)
	for node, v := range vec {
		if v > 0 && !exclude[node] {
			h.Push(node, v)
		}
	}
	return h.Results()
}
