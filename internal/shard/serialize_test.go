package shard

import (
	"os"
	"path/filepath"
	"testing"

	"kdash/internal/gen"
	"kdash/internal/reorder"
)

// TestSaveLoadRoundTrip checks that a loaded sharded index answers every
// query identically to the index it was saved from.
func TestSaveLoadRoundTrip(t *testing.T) {
	g := gen.DirectedScaleFree(180, 3, 0.3, 0.4, 21)
	built, err := Build(g, Options{Shards: 5, Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}
	if !IsShardedIndexDir(dir) {
		t.Fatal("saved directory not recognised as a sharded index")
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != built.N() || loaded.Restart() != built.Restart() || loaded.Shards() != built.Shards() {
		t.Fatalf("shape mismatch: loaded (n=%d c=%v s=%d), built (n=%d c=%v s=%d)",
			loaded.N(), loaded.Restart(), loaded.Shards(), built.N(), built.Restart(), built.Shards())
	}
	for q := 0; q < g.N(); q += 13 {
		want, _, err := built.TopK(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := loaded.TopK(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("q=%d: %d vs %d results", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("q=%d i=%d: loaded %v, built %v", q, i, got[i], want[i])
			}
		}
	}
	// Persisted stats survive the trip.
	if loaded.Stats().CutEdges != built.Stats().CutEdges || loaded.Stats().NNZInverse != built.Stats().NNZInverse {
		t.Errorf("stats mismatch: loaded %+v, built %+v", loaded.Stats(), built.Stats())
	}
}

// TestLoadRejectsCorruption checks the loader fails loudly instead of
// serving from a damaged directory.
func TestLoadRejectsCorruption(t *testing.T) {
	g := gen.ErdosRenyi(40, 160, 2)
	built, err := Build(g, Options{Shards: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(dir, "nope")); err == nil {
		t.Error("missing directory accepted")
	}
	// Truncated assignment.
	if err := os.WriteFile(filepath.Join(dir, "assignment.bin"), []byte{1, 0}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("truncated assignment accepted")
	}
	// Garbage manifest.
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("garbage manifest accepted")
	}
}
