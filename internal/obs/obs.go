// Package obs is the engine's observability toolkit: lock-free latency
// histograms, per-query execution traces, and a hand-rolled Prometheus
// text-exposition writer. It sits below every other package — obs
// depends only on the standard library — so the solver seams
// (internal/shard, internal/core) can record into its types without an
// import cycle, and internal/server can export them over /statz and
// /metrics.
//
// The histogram is log-linear bucketed (exact below 16 ns, then 8
// sub-buckets per power of two, ≤ 12.5% relative bucket width) and
// striped across cache-line-padded counter banks, so concurrent
// observers on the query hot path never contend on one atomic.
// Snapshots are mergeable — the property /metrics relies on when it
// folds the stripes — and quantiles are interpolated inside the
// resolved bucket. See docs/OBSERVABILITY.md for the exported metric
// reference.
package obs

import (
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// Bucketing: values 0..15 ns map to their own exact bucket (indexes
// 0..15); above that, each power-of-two octave splits into 8 linear
// sub-buckets. numBuckets covers everything up to ~68 s (octave 36);
// longer observations clamp into the last bucket.
const (
	linearBuckets = 16
	subBuckets    = 8
	maxOctave     = 36
	numBuckets    = linearBuckets + (maxOctave-4)*subBuckets
)

// stripes is the number of independent counter banks. Observers pick a
// bank pseudo-randomly (math/rand/v2's per-thread generator, no
// locks), so with more P's than stripes the worst case is still only
// GOMAXPROCS/stripes-way sharing of one atomic.
const stripes = 16

// bucketIndex maps a non-negative nanosecond value to its bucket.
// Buckets are upper-inclusive — BucketBound(i-1) < v <= BucketBound(i)
// — so a cumulative count at any bound is an exact Prometheus-style
// `le` count.
func bucketIndex(v int64) int {
	if v < linearBuckets {
		if v < 0 {
			v = 0
		}
		return int(v)
	}
	w := uint64(v - 1) // upper-inclusive: v sits with its predecessor's octave
	if w < linearBuckets {
		return linearBuckets // v == linearBuckets exactly
	}
	b := bits.Len64(w) // >= 5
	idx := linearBuckets + (b-5)*subBuckets + int((w>>(b-4))&7)
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// BucketBound returns the inclusive upper bound (in ns) of bucket i:
// every observation v with bucketIndex(v) == i satisfies
// BucketBound(i-1) < v <= BucketBound(i).
func BucketBound(i int) int64 {
	if i < linearBuckets {
		return int64(i)
	}
	rel := i - linearBuckets
	octave := rel/subBuckets + 4 // values have bit length octave+1
	sub := rel % subBuckets
	return int64(1)<<octave + int64(sub+1)<<(octave-3)
}

// NumBuckets is the histogram resolution — Snapshot.Counts has this
// many entries.
const NumBuckets = numBuckets

// pad keeps each stripe's trailing sum/count pair off its neighbours'
// cache lines; the bucket arrays themselves are large enough that only
// their edges could ever false-share.
type stripe struct {
	counts [numBuckets]atomic.Uint64
	sum    atomic.Int64 // total observed ns
	_      [48]byte
}

// Histogram is a lock-free, mergeable log-bucketed latency histogram.
// The zero value is ready to use. Observe is safe for any number of
// concurrent callers; Snapshot may run concurrently with observers and
// sees a consistent-enough view (each counter is read atomically; a
// racing observation may or may not be included).
type Histogram struct {
	stripes [stripes]stripe
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveNS(int64(d))
}

// ObserveNS records one duration given in nanoseconds.
func (h *Histogram) ObserveNS(ns int64) {
	if ns < 0 {
		ns = 0
	}
	s := &h.stripes[rand.Uint32N(stripes)]
	s.counts[bucketIndex(ns)].Add(1)
	s.sum.Add(ns)
}

// Snapshot folds the stripes into one immutable view.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	s.Counts = make([]uint64, numBuckets)
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := 0; b < numBuckets; b++ {
			s.Counts[b] += st.counts[b].Load()
		}
		s.SumNS += st.sum.Load()
	}
	for _, c := range s.Counts {
		s.Count += c
	}
	return s
}

// Snapshot is one point-in-time view of a Histogram: per-bucket counts
// (bucket i holds observations in (BucketBound(i-1), BucketBound(i)]),
// the total count and the summed nanoseconds.
type Snapshot struct {
	Counts []uint64
	Count  uint64
	SumNS  int64
}

// Merge folds another snapshot into this one. Merging snapshots from
// two histograms equals one snapshot of a histogram that observed both
// value streams — the property the exposition layer and tests rely on.
func (s *Snapshot) Merge(o Snapshot) {
	if s.Counts == nil {
		s.Counts = make([]uint64, numBuckets)
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Count += o.Count
	s.SumNS += o.SumNS
}

// Quantile returns the q-quantile (0 <= q <= 1) in nanoseconds,
// linearly interpolated inside the resolved bucket. An empty snapshot
// returns 0.
func (s Snapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo := float64(0)
			if i > 0 {
				lo = float64(BucketBound(i - 1))
			}
			hi := float64(BucketBound(i))
			frac := 0.0
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			return int64(lo + (hi-lo)*frac)
		}
		cum = next
	}
	return BucketBound(numBuckets - 1)
}

// Mean returns the mean observation in nanoseconds (0 when empty).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count)
}
