package server

// GET /metrics: the Prometheus text exposition (format 0.0.4) of the
// same counters /statz serves as JSON, hand-rolled through
// obs.PromWriter so the server stays dependency-free. The two surfaces
// read the same underlying counters, so they agree at any quiet
// instant; docs/OBSERVABILITY.md is the field-by-field reference and
// carries example PromQL.

import (
	"net/http"
	"strconv"

	"kdash/internal/obs"
)

// metrics handles GET /metrics.
func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	st := h.snap()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	pw := obs.NewPromWriter(w)

	// HTTP surface.
	pw.Header("kdash_http_requests_total", "Completed HTTP requests by endpoint and status code.", "counter")
	for _, name := range endpointNames {
		em := h.endpoints[name]
		for i, code := range statusCodes {
			if v := em.codes[i].Load(); v > 0 {
				pw.Metric("kdash_http_requests_total",
					[]obs.Label{{Name: "endpoint", Value: name}, {Name: "code", Value: strconv.Itoa(code)}},
					float64(v))
			}
		}
	}
	pw.Header("kdash_http_in_flight_requests", "Requests currently being served (includes this scrape).", "gauge")
	pw.Metric("kdash_http_in_flight_requests", nil, float64(h.inFlight.Load()))
	pw.Header("kdash_http_request_duration_seconds", "Request latency by endpoint.", "histogram")
	for _, name := range endpointNames {
		snap := h.endpoints[name].lat.Snapshot()
		if snap.Count > 0 {
			pw.Histogram("kdash_http_request_duration_seconds",
				[]obs.Label{{Name: "endpoint", Value: name}}, snap)
		}
	}
	pw.Header("kdash_http_errors_total", "Error responses by kind (panics also count as internal).", "counter")
	pw.Metric("kdash_http_errors_total", []obs.Label{{Name: "kind", Value: "badRequest"}}, float64(h.qBadRequest.Value()))
	pw.Metric("kdash_http_errors_total", []obs.Label{{Name: "kind", Value: "internal"}}, float64(h.qInternal.Value()))
	pw.Metric("kdash_http_errors_total", []obs.Label{{Name: "kind", Value: "panic"}}, float64(h.qPanics.Value()))
	pw.Metric("kdash_http_errors_total", []obs.Label{{Name: "kind", Value: "unavailable"}}, float64(h.qUnavailable.Value()))
	pw.Header("kdash_queries_cancelled_total", "Queries abandoned mid-solve because the client went away.", "counter")
	pw.Metric("kdash_queries_cancelled_total", nil, float64(h.qCancelled.Value()))

	// Engine work, summed over successful queries.
	pw.Header("kdash_engine_nodes_visited_total", "Nodes visited across all queries.", "counter")
	pw.Metric("kdash_engine_nodes_visited_total", nil, float64(h.visited.Value()))
	pw.Header("kdash_engine_proximity_computations_total", "Exact proximity values computed across all queries.", "counter")
	pw.Metric("kdash_engine_proximity_computations_total", nil, float64(h.proxComps.Value()))
	pw.Header("kdash_engine_terminated_early_total", "Queries answered with pruning engaged.", "counter")
	pw.Metric("kdash_engine_terminated_early_total", nil, float64(h.terminated.Value()))

	// Update surface.
	pw.Header("kdash_updates_applied_total", "Graph delta batches applied.", "counter")
	pw.Metric("kdash_updates_applied_total", nil, float64(h.qUpdates.Value()))
	pw.Header("kdash_update_shards_rebuilt_total", "Shards refactorized by updates.", "counter")
	pw.Metric("kdash_update_shards_rebuilt_total", nil, float64(h.updShards.Value()))
	pw.Header("kdash_update_repartitions_total", "Updates that triggered a re-partition.", "counter")
	pw.Metric("kdash_update_repartitions_total", nil, float64(h.updReparts.Value()))
	pw.Header("kdash_update_edge_ops_total", "Edge additions and removals applied.", "counter")
	pw.Metric("kdash_update_edge_ops_total", nil, float64(h.updEdges.Value()))
	pw.Header("kdash_update_nodes_added_total", "Nodes inserted by updates.", "counter")
	pw.Metric("kdash_update_nodes_added_total", nil, float64(h.updNodes.Value()))

	// Process and index gauges.
	pw.Header("kdash_epoch", "Serving engine epoch (bumped by each applied update).", "gauge")
	pw.Metric("kdash_epoch", nil, float64(st.epoch))
	pw.Header("kdash_index_nodes", "Nodes in the serving index.", "gauge")
	pw.Metric("kdash_index_nodes", nil, float64(st.engine.N()))
	pw.Header("kdash_process_resident_bytes", "OS-reported resident set (0 where unsupported).", "gauge")
	pw.Metric("kdash_process_resident_bytes", nil, float64(residentBytes()))

	if h.cache != nil {
		hits, misses := h.cacheHits.Value(), h.cacheMisses.Value()
		entries, bytes, evictions := h.cache.stats()
		pw.Header("kdash_cache_hits_total", "Proximity-vector cache hits.", "counter")
		pw.Metric("kdash_cache_hits_total", nil, float64(hits))
		pw.Header("kdash_cache_misses_total", "Proximity-vector cache misses.", "counter")
		pw.Metric("kdash_cache_misses_total", nil, float64(misses))
		pw.Header("kdash_cache_evictions_total", "Entries evicted by LRU pressure (epoch flushes excluded).", "counter")
		pw.Metric("kdash_cache_evictions_total", nil, float64(evictions))
		pw.Header("kdash_cache_entries", "Vectors currently cached.", "gauge")
		pw.Metric("kdash_cache_entries", nil, float64(entries))
		pw.Header("kdash_cache_bytes", "Approximate bytes held by cached vectors.", "gauge")
		pw.Metric("kdash_cache_bytes", nil, float64(bytes))
		if total := hits + misses; total > 0 {
			pw.Header("kdash_cache_hit_ratio", "Cache hits over lookups since start.", "gauge")
			pw.Metric("kdash_cache_hit_ratio", nil, float64(hits)/float64(total))
		}
	}

	if ws := h.wals; ws != nil {
		ws.mu.Lock()
		acked, applied := ws.ackedSeq, ws.appliedSeq
		pendingOps := 0
		if ws.pending != nil {
			pendingOps = ws.pending.Len()
		}
		compactions, applyErrors, dropped := ws.compactions, ws.applyErrors, ws.batchesDropped
		ws.mu.Unlock()
		ls := ws.log.Stats()
		pw.Header("kdash_wal_acked_seq", "Last WAL sequence number acknowledged to a client.", "gauge")
		pw.Metric("kdash_wal_acked_seq", nil, float64(acked))
		pw.Header("kdash_wal_applied_seq", "Last WAL sequence number folded into the serving engine.", "gauge")
		pw.Metric("kdash_wal_applied_seq", nil, float64(applied))
		pw.Header("kdash_wal_pending_ops", "Edge ops waiting in the memtable for the next compaction.", "gauge")
		pw.Metric("kdash_wal_pending_ops", nil, float64(pendingOps))
		pw.Header("kdash_wal_appends_total", "Records appended to the WAL this process.", "counter")
		pw.Metric("kdash_wal_appends_total", nil, float64(ls.Appends))
		pw.Header("kdash_wal_fsyncs_total", "fsync calls the WAL issued.", "counter")
		pw.Metric("kdash_wal_fsyncs_total", nil, float64(ls.Fsyncs))
		pw.Header("kdash_wal_segments", "Live WAL segment files.", "gauge")
		pw.Metric("kdash_wal_segments", nil, float64(ls.Segments))
		pw.Header("kdash_wal_bytes", "Bytes across live WAL segments.", "gauge")
		pw.Metric("kdash_wal_bytes", nil, float64(ls.Bytes))
		pw.Header("kdash_wal_compactions_total", "Memtable drains applied through the engine.", "counter")
		pw.Metric("kdash_wal_compactions_total", nil, float64(compactions))
		pw.Header("kdash_wal_apply_errors_total", "Compactions whose engine apply failed (batches dropped).", "counter")
		pw.Metric("kdash_wal_apply_errors_total", nil, float64(applyErrors))
		pw.Header("kdash_wal_batches_dropped_total", "Acked client batches lost to apply errors.", "counter")
		pw.Metric("kdash_wal_batches_dropped_total", nil, float64(dropped))
	}

	if s, ok := st.engine.(Statser); ok {
		writeEngineMetrics(pw, s.Statz())
	}
	_ = pw.Err() // headers are sent; a broken scrape connection has no recourse
}

// writeEngineMetrics projects the engine's Statz document onto
// Prometheus series. Only the sharded shape carries per-shard series;
// unknown or missing fields are skipped, never guessed, so any engine
// with a Statz stays scrapeable.
func writeEngineMetrics(pw *obs.PromWriter, doc map[string]interface{}) {
	if v, ok := statInt(doc["shards"]); ok {
		pw.Header("kdash_index_shards", "Shards in the serving index.", "gauge")
		pw.Metric("kdash_index_shards", nil, float64(v))
	}
	if v, ok := statInt(doc["shardsOpened"]); ok {
		pw.Header("kdash_index_shards_opened", "Shards traffic has opened (lazily mapped shards open on first solve).", "gauge")
		pw.Metric("kdash_index_shards_opened", nil, float64(v))
	}
	if v, ok := statInt(doc["mappedBytes"]); ok {
		pw.Header("kdash_index_mapped_bytes", "Bytes of shard files currently mapped or parsed.", "gauge")
		pw.Metric("kdash_index_mapped_bytes", nil, float64(v))
	}
	if v, ok := statInt(doc["solves"]); ok {
		pw.Header("kdash_shard_solves_total_sum", "Shard factor solves across all queries this epoch (resets on update swap).", "counter")
		pw.Metric("kdash_shard_solves_total_sum", nil, float64(v))
	}
	writeClusterMetrics(pw, doc)
	perShard, ok := doc["perShard"].([]map[string]interface{})
	if !ok {
		return
	}
	pw.Header("kdash_shard_opened", "Whether the shard's backing file is open (1) or still deferred (0).", "gauge")
	for i, sh := range perShard {
		opened := 0.0
		if b, ok := sh["opened"].(bool); ok && b {
			opened = 1
		}
		pw.Metric("kdash_shard_opened", []obs.Label{{Name: "shard", Value: strconv.Itoa(i)}}, opened)
	}
	pw.Header("kdash_shard_solves_total", "Factor solves per shard this epoch (resets on update swap).", "counter")
	for i, sh := range perShard {
		if v, ok := statInt(sh["solves"]); ok {
			pw.Metric("kdash_shard_solves_total", []obs.Label{{Name: "shard", Value: strconv.Itoa(i)}}, float64(v))
		}
	}
}

// writeClusterMetrics projects a coordinator's per-worker serving stats
// (placement.Coordinator.Statz puts them under "cluster") onto labelled
// Prometheus series, so a dashboard can tell a slow worker from a slow
// query mix without scraping the workers themselves.
func writeClusterMetrics(pw *obs.PromWriter, doc map[string]interface{}) {
	cluster, ok := doc["cluster"].(map[string]interface{})
	if !ok {
		return
	}
	workers, ok := cluster["workers"].([]map[string]interface{})
	if !ok {
		return
	}
	series := []struct{ key, name, help, typ string }{
		{"calls", "kdash_worker_calls_total", "Solve RPCs routed to the worker.", "counter"},
		{"errors", "kdash_worker_errors_total", "Worker calls that failed after retry and replay.", "counter"},
		{"replays", "kdash_worker_replays_total", "Chain-replay recovery rounds run against the worker.", "counter"},
		{"shards", "kdash_worker_shards", "Shards the placement map assigns to the worker.", "gauge"},
		{"meanMicros", "kdash_worker_call_mean_micros", "Mean worker call latency in microseconds.", "gauge"},
		{"p99Micros", "kdash_worker_call_p99_micros", "p99 worker call latency in microseconds.", "gauge"},
	}
	for _, s := range series {
		pw.Header(s.name, s.help, s.typ)
		for w, wd := range workers {
			var val float64
			if fv, ok := wd[s.key].(float64); ok {
				val = fv
			} else if iv, ok := statInt(wd[s.key]); ok {
				val = float64(iv)
			} else {
				continue
			}
			pw.Metric(s.name, []obs.Label{{Name: "worker", Value: strconv.Itoa(w)}}, val)
		}
	}
}

// statInt folds the integer shapes a Statz document actually contains.
func statInt(v interface{}) (int64, bool) {
	switch x := v.(type) {
	case int:
		return int64(x), true
	case int64:
		return x, true
	case uint64:
		return int64(x), true
	case float64:
		return int64(x), true
	}
	return 0, false
}
