// Package topk provides a bounded top-k accumulator for (node, score)
// pairs, used by every search algorithm in the repository.
package topk

import (
	"cmp"
	"slices"
)

// Result is one ranked answer.
type Result struct {
	Node  int
	Score float64
}

// Heap keeps the K largest scores seen so far. The zero value is not
// usable; construct with New.
type Heap struct {
	k     int
	items minHeap
}

// newCap bounds the eager backing-store allocation. Any sane answer set
// fits; a hostile request-supplied k (validated only for positivity by
// the HTTP layer) must not translate into an O(k) allocation, so larger
// heaps grow with the results actually pushed instead.
const newCap = 1024

// New returns a top-k accumulator for k results. k must be positive.
// The backing store is sized up front for every sane k, so an
// accumulator performs no further allocation however many results are
// offered.
func New(k int) *Heap {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Heap{k: k, items: make(minHeap, 0, min(k, newCap))}
}

// K reports the configured capacity.
func (h *Heap) K() int { return h.k }

// Len reports how many results are currently held (<= K).
func (h *Heap) Len() int { return len(h.items) }

// Threshold returns the K-th highest score seen so far, or 0 when fewer
// than K results are held. This is the paper's θ: a new node can only be
// an answer if its score is above it.
func (h *Heap) Threshold() float64 {
	if len(h.items) < h.k {
		return 0
	}
	return h.items[0].Score
}

// Push offers a result; it is kept only if it beats the current threshold
// or the heap is not full. Returns true if the set of kept results changed.
// The sift is hand-rolled rather than container/heap so no Result is ever
// boxed through an interface — Push is allocation-free.
//
//kdash:noalloc
func (h *Heap) Push(node int, score float64) bool {
	if len(h.items) < h.k {
		h.items = append(h.items, Result{node, score})
		h.items.siftUp(len(h.items) - 1)
		return true
	}
	if score > h.items[0].Score || (score == h.items[0].Score && node < h.items[0].Node) {
		h.items[0] = Result{node, score}
		h.items.siftDown(0)
		return true
	}
	return false
}

// Results returns the kept results sorted by descending score, ties broken
// by ascending node id for determinism.
func (h *Heap) Results() []Result {
	out := make([]Result, len(h.items))
	copy(out, h.items)
	SortResults(out)
	return out
}

// SortResults orders results by descending score, then ascending node id.
// slices.SortFunc rather than sort.Slice keeps it allocation-free (no
// interface boxing of the comparator); the (score, node) key is unique,
// so the order is total and sort stability is irrelevant.
func SortResults(rs []Result) {
	slices.SortFunc(rs, func(a, b Result) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.Node, b.Node)
	})
}

// FromVector returns the top-k entries of a dense score vector.
func FromVector(scores []float64, k int) []Result {
	h := New(k)
	for node, s := range scores {
		h.Push(node, s)
	}
	return h.Results()
}

type minHeap []Result

func (m minHeap) Len() int { return len(m) }
func (m minHeap) Less(i, j int) bool {
	if m[i].Score != m[j].Score {
		return m[i].Score < m[j].Score
	}
	// Higher node id is "worse" on ties so eviction is deterministic.
	return m[i].Node > m[j].Node
}
func (m minHeap) Swap(i, j int) { m[i], m[j] = m[j], m[i] }

func (m minHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !m.Less(i, parent) {
			break
		}
		m.Swap(i, parent)
		i = parent
	}
}

func (m minHeap) siftDown(i int) {
	n := len(m)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && m.Less(r, l) {
			small = r
		}
		if !m.Less(small, i) {
			break
		}
		m.Swap(i, small)
		i = small
	}
}
