package lu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomRHSBlock builds nb dense right-hand sides, mixing sparse
// restart-style vectors with fully dense ones so both L^{-1} code paths
// (skip-zero and accumulate) are exercised.
func randomRHSBlock(rng *rand.Rand, n, nb int) [][]float64 {
	bs := make([][]float64, nb)
	for v := range bs {
		b := make([]float64, n)
		if v%2 == 0 {
			b[rng.Intn(n)] = 0.5 + rng.Float64()
		} else {
			for i := range b {
				b[i] = rng.NormFloat64()
			}
		}
		bs[v] = b
	}
	return bs
}

func TestSolveDenseBatchMatchesSingle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		w, _ := randomW(seed, n, 3*n, 0.8+0.19*rng.Float64())
		fac, err := Decompose(w)
		if err != nil {
			t.Fatal(err)
		}
		for _, nb := range []int{1, 3, 7} {
			bs := randomRHSBlock(rng, n, nb)
			got := fac.SolveDenseBatch(bs)
			for v := range bs {
				want := fac.SolveDense(bs[v])
				for i := range want {
					if math.Abs(got[v][i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
						t.Errorf("nb=%d rhs %d entry %d: %v vs %v", nb, v, i, got[v][i], want[i])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveDenseBatchEmptyAndMismatch(t *testing.T) {
	w, _ := randomW(1, 8, 20, 0.9)
	fac, err := Decompose(w)
	if err != nil {
		t.Fatal(err)
	}
	if out := fac.SolveDenseBatch(nil); out != nil {
		t.Errorf("empty batch returned %v", out)
	}
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch did not panic")
		}
	}()
	fac.SolveDenseBatch([][]float64{make([]float64, 3)})
}

func TestInverseSolveBatchMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		w, _ := randomW(seed, n, 4*n, 0.8+0.19*rng.Float64())
		fac, err := Decompose(w)
		if err != nil {
			t.Fatal(err)
		}
		inv := fac.Invert(Options{Workers: 1})
		for _, nb := range []int{1, 2, 9} {
			bs := randomRHSBlock(rng, n, nb)
			got := inv.SolveBatch(bs)
			// Oracle: the batch against the exact substitution solve.
			want := fac.SolveDenseBatch(bs)
			for v := range bs {
				for i := range want[v] {
					if math.Abs(got[v][i]-want[v][i]) > 1e-9*(1+math.Abs(want[v][i])) {
						t.Errorf("nb=%d rhs %d entry %d: %v vs %v", nb, v, i, got[v][i], want[v][i])
						return false
					}
				}
			}
			// The batch of one must agree with itself run column-wise.
			single := inv.SolveBatch([][]float64{bs[0]})
			for i := range single[0] {
				if single[0][i] != got[0][i] {
					t.Errorf("batch-of-one differs at %d: %v vs %v", i, single[0][i], got[0][i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
