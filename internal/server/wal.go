package server

// Durable (WAL) update mode: the LSM-style write staging that turns
// POST /update from a ~hundreds-of-milliseconds synchronous
// refactorization into a microsecond log append.
//
//	ack:      validate -> encode -> WAL append -> memtable merge -> 202
//	drain:    background compactor folds the merged memtable through the
//	          engine's incremental ApplyDelta (one refactorization
//	          absorbs every batch queued since the last drain) and
//	          atomically publishes the successor epoch
//	read:     queries arriving after an ack wait on the epoch barrier
//	          until the compactor has published a state covering it, so
//	          answers are exact — bit-identical to a synchronous apply —
//	          never approximations over a stale engine
//	recover:  on start, records past the snapshot's manifest walSeq
//	          replay through the same ApplyDelta path
//
// Exactness is the design's anchor. The engine's Apply rebuilds dirty
// shards through the same deterministic per-shard build a from-scratch
// construction runs, so the published successor is bit-identical to a
// pinned-assignment rebuild — the refactorized mini-solve that answers
// for dirty shards. Queries therefore never consult the memtable
// directly: they wait (typically one compaction interval, bounded by
// their own context) for the exact successor instead of correcting
// against base factors with floating-point update formulas whose
// round-off would break bit-identity.
//
// Validation happens at ack time against the virtual post-memtable
// state — node ranges against the published node count plus pending
// insertions, removals against the published graph overlaid with
// pending edge ops — so a batch that would poison the queue is rejected
// with a 400 before it is ever logged, and the compactor's apply cannot
// fail on client input.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"kdash/internal/core"
	"kdash/internal/graph"
	"kdash/internal/wal"
)

// graphEngine exposes the engine's current graph snapshot; WAL mode
// requires it for ack-time edge-existence validation. Both updatable
// index shapes implement it.
type graphEngine interface{ Graph() *graph.Graph }

// homeSharder exposes the node -> shard map; implemented by the sharded
// index and used for selective cache invalidation.
type homeSharder interface{ HomeShard(u int) int }

// walStamper is the snapshot seam: an engine that can stamp and persist
// the WAL position its factors cover (shard.ShardedIndex via manifest
// v4).
type walStamper interface {
	SetWALInfo(seq uint64, segments []string)
	Save(dir string) error
}

// WALConfig configures durable update mode (NewDurable).
type WALConfig struct {
	// Dir is the log directory (required).
	Dir string
	// Sync, SyncEvery, SegmentBytes pass through to wal.Options.
	Sync         wal.SyncPolicy
	SyncEvery    time.Duration
	SegmentBytes int64
	// CompactInterval is the compactor's tick: the longest an acked
	// batch waits before a drain starts absorbing it (default 25ms).
	// Readers blocked on the barrier kick the compactor immediately, so
	// the interval bounds staleness, not read latency.
	CompactInterval time.Duration
	// MaxPendingOps kicks a drain early once the memtable holds this
	// many edge ops (default 8192), bounding the biggest refactorization
	// one drain performs.
	MaxPendingOps int
	// SnapshotDir, when set, enables durable compaction: every
	// SnapshotEvery compactions the engine is persisted there (stamped
	// with the WAL position it covers, manifest v4) and the log is
	// truncated through that position. Requires an engine that persists
	// with a WAL stamp (the sharded index). Empty: the log is never
	// truncated — updates stay durable in the WAL alone.
	SnapshotDir string
	// SnapshotEvery is the compaction count between snapshots (default
	// 16 when SnapshotDir is set).
	SnapshotEvery int
}

// DefaultCompactInterval is the compactor tick when WALConfig leaves it
// zero.
const DefaultCompactInterval = 25 * time.Millisecond

// DefaultMaxPendingOps is the early-drain memtable bound when WALConfig
// leaves it zero.
const DefaultMaxPendingOps = 8192

// defaultSnapshotEvery is the snapshot cadence when SnapshotDir is set
// without an explicit SnapshotEvery.
const defaultSnapshotEvery = 16

// snapshotCurrent is the file inside SnapshotDir naming the snapshot
// directory recovery should load.
const snapshotCurrent = "CURRENT"

type edgeKey struct{ from, to int }

// walState is the handler's durable-mode machinery: the log, the
// memtable (one merged pending Delta), the ack/applied sequence pair
// the read barrier compares, and the edge-existence overlay ack-time
// validation consults.
type walState struct {
	log *wal.Log
	cfg WALConfig

	mu             sync.Mutex
	pending        *graph.Delta  // merged memtable; nil when drained
	pendingBatches int64         // client batches inside pending
	nextBaseN      int           // node count after everything acked
	ackedSeq       uint64        // last sequence number acked to a client
	appliedSeq     uint64        // last sequence number folded into the published engine
	published      chan struct{} // closed and replaced on every publish
	// exist overlays pending (and draining) edge ops on the published
	// graph: true = the edge exists after the acked ops, false = it was
	// removed. Keys absent from the map defer to the published graph.
	// The overlay stays valid across a publish — a drained op's effect
	// is then IN the published graph and agrees with its override — so
	// the post-publish rebuild (from pending alone) is garbage
	// collection, not a correctness step.
	exist   map[edgeKey]bool
	scratch []byte

	// Counters (under mu; /statz snapshots them wholesale).
	acked          int64 // batches acked
	compactions    int64 // drains that applied something
	applyErrors    int64 // drains whose Apply failed (dropped batches)
	batchesDropped int64 // client batches lost to apply errors
	replayed       int64 // records replayed at startup
	snapshots      int64 // snapshots persisted

	kick      chan struct{}
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// NewDurable wraps an engine like New but in durable update mode:
// POST /update acks after a WAL append, a background compactor folds
// batches through the engine's incremental apply, and records past the
// engine's manifest walSeq are replayed before the handler serves
// anything. The engine must be updatable with a reachable graph
// snapshot. Callers must Close the handler to stop the compactor and
// flush the log.
func NewDurable(engine Engine, cfg WALConfig, opts ...Option) (*Handler, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("server: WAL mode needs a log directory")
	}
	if cfg.CompactInterval <= 0 {
		cfg.CompactInterval = DefaultCompactInterval
	}
	if cfg.MaxPendingOps <= 0 {
		cfg.MaxPendingOps = DefaultMaxPendingOps
	}
	if cfg.SnapshotDir != "" && cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = defaultSnapshotEvery
	}
	upd, ok := engine.(Updatable)
	if !ok {
		return nil, fmt.Errorf("server: WAL mode needs an updatable engine, %T is static", engine)
	}
	ge, ok := engine.(graphEngine)
	if !ok || ge.Graph() == nil {
		return nil, fmt.Errorf("server: WAL mode needs an engine with a graph snapshot (%w)", core.ErrNotUpdatable)
	}
	log, err := wal.Open(cfg.Dir, wal.Options{Sync: cfg.Sync, SyncEvery: cfg.SyncEvery, SegmentBytes: cfg.SegmentBytes})
	if err != nil {
		return nil, err
	}

	// Recovery: replay records the engine's snapshot has not absorbed.
	after := uint64(0)
	if ws, ok := engine.(interface{ WALSeq() uint64 }); ok {
		after = ws.WALSeq()
	}
	engine, replayed, dropped, err := replayWAL(log, engine, upd, after)
	if err != nil {
		log.Close()
		return nil, err
	}

	h := New(engine, opts...)
	h.wals = &walState{
		log:            log,
		cfg:            cfg,
		nextBaseN:      engine.N(),
		ackedSeq:       log.LastSeq(),
		appliedSeq:     log.LastSeq(),
		published:      make(chan struct{}),
		exist:          make(map[edgeKey]bool),
		replayed:       replayed,
		batchesDropped: dropped,
		kick:           make(chan struct{}, 1),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
	}
	go h.compactLoop()
	return h, nil
}

// replayWAL folds every log record past `after` into the engine. The
// fast path merges all records into one delta and applies it in a
// single refactorization; if that fails (a record the snapshot already
// disagrees with — a batch the previous process dropped as poisoned),
// it falls back to record-by-record application, skipping the records
// that still fail, so one bad record cannot brick recovery.
//
// Replay is part of the bit-identity contract (recovered answers must
// match the synchronous-oracle chain exactly), so it must stay free of
// map iteration, clocks and randomness.
//
//kdash:deterministic
func replayWAL(log *wal.Log, engine Engine, upd Updatable, after uint64) (Engine, int64, int64, error) {
	var records []*graph.Delta
	if err := log.Replay(after, func(seq uint64, body []byte) error {
		d, err := graph.UnmarshalDelta(body)
		if err != nil {
			return fmt.Errorf("server: WAL record %d: %w", seq, err)
		}
		records = append(records, d)
		return nil
	}); err != nil {
		return nil, 0, 0, err
	}
	if len(records) == 0 {
		return engine, 0, 0, nil
	}
	merged := records[0]
	mergeable := true
	for _, d := range records[1:] {
		if err := merged.Extend(d); err != nil {
			mergeable = false
			break
		}
	}
	if mergeable && merged.BaseN() == engine.N() {
		if next, _, err := upd.ApplyDelta(merged); err == nil {
			return next.(Engine), int64(len(records)), 0, nil
		}
	}
	// Slow path: one at a time, skipping what cannot apply.
	var applied, dropped int64
	cur := engine
	curUpd := upd
	for _, d := range records {
		next, _, err := curUpd.ApplyDelta(d)
		if err != nil {
			dropped++
			continue
		}
		cur = next.(Engine)
		curUpd = next.(Updatable)
		applied++
	}
	return cur, applied, dropped, nil
}

// updateWAL is the durable-mode POST /update tail: validate against the
// virtual (post-memtable) state, append to the log, merge into the
// memtable, ack 202. Everything under ws.mu is microseconds — the lock
// also serialises writers, subsuming the sync path's updateMu role.
func (h *Handler) updateWAL(w http.ResponseWriter, req *updateRequest) {
	ws := h.wals
	ws.mu.Lock()
	// Snap inside the lock: the compactor publishes under the same lock,
	// so the engine and the exist overlay are always consistent here.
	st := h.snap()
	batch, err := buildDelta(ws.nextBaseN, req)
	if err != nil {
		ws.mu.Unlock()
		h.badRequest(w, "%v", err)
		return
	}
	if err := ws.validateLocked(batch, st.engine.(graphEngine).Graph()); err != nil {
		ws.mu.Unlock()
		h.badRequest(w, "%v", err)
		return
	}
	ws.scratch = batch.AppendBinary(ws.scratch[:0])
	seq, err := ws.log.Append(ws.scratch)
	if err != nil {
		ws.mu.Unlock()
		h.internalError(w, err)
		return
	}
	if ws.pending == nil {
		ws.pending = batch
	} else if err := ws.pending.Extend(batch); err != nil {
		// Unreachable: batches are built against nextBaseN, which tracks
		// pending insertions exactly. Fail loudly rather than desync.
		ws.mu.Unlock()
		h.internalError(w, fmt.Errorf("server: memtable merge: %w", err))
		return
	}
	ws.recordExistLocked(batch)
	ws.ackedSeq = seq
	ws.nextBaseN += batch.AddedNodes()
	ws.acked++
	ws.pendingBatches++
	pendingOps := ws.pending.Len()
	epoch := st.epoch
	ws.mu.Unlock()

	if pendingOps >= ws.cfg.MaxPendingOps {
		ws.kickCompact()
	}
	added, removed, nodes := batch.Counts()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(walUpdateResponse{
		Seq:          seq,
		Epoch:        epoch,
		EdgesAdded:   added,
		EdgesRemoved: removed,
		NodesAdded:   nodes,
		PendingOps:   pendingOps,
		Durability:   ws.cfg.Sync == wal.SyncAlways,
	})
}

// walUpdateResponse is the 202 body a durable-mode /update ack carries:
// the WAL sequence number (the handle recovery and the read barrier key
// on), the epoch the batch will land on top of, and the memtable depth.
type walUpdateResponse struct {
	Seq          uint64 `json:"seq"`
	Epoch        int    `json:"epoch"` // published epoch at ack time; the batch lands in a later one
	EdgesAdded   int    `json:"edgesAdded"`
	EdgesRemoved int    `json:"edgesRemoved"`
	NodesAdded   int    `json:"nodesAdded"`
	PendingOps   int    `json:"pendingOps"`
	Durability   bool   `json:"fsynced"` // true only under the "always" policy
}

// validateLocked rejects removals of edges that do not exist in the
// virtual state (published graph + acked pending ops + earlier ops of
// this very batch, in order — the same sequential semantics Apply
// enforces), so an acked batch can never fail the compactor's apply on
// client input.
func (ws *walState) validateLocked(batch *graph.Delta, g *graph.Graph) error {
	var local map[edgeKey]bool // overrides by this batch's earlier ops
	for _, e := range batch.Edges() {
		k := edgeKey{e.From, e.To}
		if e.Weight > 0 { // addition (Edges marks removals with weight 0)
			if local == nil {
				local = make(map[edgeKey]bool, batch.Len())
			}
			local[k] = true
			continue
		}
		exists, known := local[k]
		if !known {
			exists, known = ws.exist[k]
		}
		if !known {
			exists = g.HasEdge(e.From, e.To)
		}
		if !exists {
			return fmt.Errorf("removeEdges: edge (%d,%d): %w", e.From, e.To, graph.ErrEdgeNotFound)
		}
		if local == nil {
			local = make(map[edgeKey]bool, batch.Len())
		}
		local[k] = false
	}
	return nil
}

// recordExistLocked folds an acked batch's ops into the existence
// overlay.
func (ws *walState) recordExistLocked(batch *graph.Delta) {
	for _, e := range batch.Edges() {
		ws.exist[edgeKey{e.From, e.To}] = e.Weight > 0
	}
}

// rebuildExistLocked regenerates the overlay from the still-pending
// memtable after a publish (drained ops are now IN the published graph;
// their overrides were correct but are dead weight).
func (ws *walState) rebuildExistLocked() {
	clear(ws.exist)
	if ws.pending != nil {
		for _, e := range ws.pending.Edges() {
			ws.exist[edgeKey{e.From, e.To}] = e.Weight > 0
		}
	}
}

// kickCompact nudges the compactor without blocking.
func (ws *walState) kickCompact() {
	select {
	case ws.kick <- struct{}{}:
	default:
	}
}

// waitApplied is the read barrier: it returns once the published engine
// covers every sequence number acked before the call, kicking the
// compactor rather than waiting out its tick. A cancelled context
// returns its error (the handler maps it to 499).
func (ws *walState) waitApplied(ctx context.Context) error {
	for {
		ws.mu.Lock()
		target, applied, ch := ws.ackedSeq, ws.appliedSeq, ws.published
		ws.mu.Unlock()
		if applied >= target {
			return nil
		}
		ws.kickCompact()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// compactLoop is the single compactor goroutine: drain on the tick, on
// a kick (memtable pressure or a blocked reader), and once more on
// shutdown.
//
// The loop's only nondeterminism is WHEN a drain runs, never what it
// produces: each drain applies the merged pending batch through the
// engine's deterministic incremental apply, so any drain schedule
// converges to the same bit-identical engine state.
func (h *Handler) compactLoop() {
	ws := h.wals
	defer close(ws.done)
	t := time.NewTicker(ws.cfg.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-ws.stop:
			h.compactOnce()
			return
		case <-ws.kick:
			h.compactOnce()
		case <-t.C:
			h.compactOnce()
		}
	}
}

// compactOnce drains the memtable: swap it out, apply it through the
// engine (the expensive refactorization, outside the lock — acks keep
// flowing meanwhile), then publish engine + appliedSeq + barrier
// atomically under the lock.
//
// A drain's output must depend only on the batch it swapped out, never
// on when the schedule ran it — that is what makes any drain schedule
// converge to the same bit-identical engine state.
//
//kdash:deterministic
func (h *Handler) compactOnce() {
	ws := h.wals
	ws.mu.Lock()
	if ws.pending == nil || ws.pending.Empty() {
		ws.mu.Unlock()
		return
	}
	batch := ws.pending
	batches := ws.pendingBatches
	seq := ws.ackedSeq
	ws.pending = nil
	ws.pendingBatches = 0
	ws.mu.Unlock()

	st := h.snap()
	next, stats, err := st.upd.ApplyDelta(batch)

	ws.mu.Lock()
	if err != nil {
		// Ack-time validation makes this unreachable for client input; a
		// failure here is an engine bug or resource exhaustion. The batch
		// is dropped (it stays in the WAL for post-mortem) and appliedSeq
		// still advances so readers do not hang forever on a barrier no
		// publish will ever satisfy.
		ws.applyErrors++
		ws.batchesDropped += batches
	} else {
		engine := next.(Engine)
		h.state.Store(newEngineState(engine, stats.Epoch))
		h.invalidateCache(engine, stats)
		h.qUpdates.Add(batches)
		h.updShards.Add(int64(stats.ShardsRebuilt))
		h.updEdges.Add(int64(stats.EdgesAdded + stats.EdgesRemoved))
		h.updNodes.Add(int64(stats.NodesAdded))
		if stats.Repartitioned {
			h.updReparts.Add(1)
		}
		ws.compactions++
	}
	ws.appliedSeq = seq
	ws.rebuildExistLocked()
	close(ws.published)
	ws.published = make(chan struct{})
	snapDue := err == nil && ws.cfg.SnapshotDir != "" && ws.compactions%int64(ws.cfg.SnapshotEvery) == 0
	ws.mu.Unlock()

	if snapDue {
		// Best-effort: a failed snapshot leaves the log untruncated, which
		// costs disk, not correctness.
		_ = h.SnapshotWAL(ws.cfg.SnapshotDir)
	}
}

// SnapshotWAL persists the currently published engine into dir/epoch-N
// stamped with the WAL position it covers (manifest v4), points
// dir/CURRENT at it, prunes older snapshot directories, and truncates
// the log through the stamped position. Requires durable mode and an
// engine that persists with a WAL stamp (the sharded index).
func (h *Handler) SnapshotWAL(dir string) error {
	ws := h.wals
	if ws == nil {
		return fmt.Errorf("server: not in WAL mode")
	}
	// Engine and appliedSeq must be captured together: publishes update
	// both under ws.mu, so this pairing is exact — the stamp never
	// claims coverage the saved factors do not have.
	ws.mu.Lock()
	st := h.snap()
	applied := ws.appliedSeq
	ws.mu.Unlock()
	stamper, ok := st.engine.(walStamper)
	if !ok {
		return fmt.Errorf("server: engine %T cannot persist a WAL-stamped snapshot", st.engine)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := fmt.Sprintf("epoch-%08d", st.epoch)
	stamper.SetWALInfo(applied, ws.log.SegmentNames())
	if err := stamper.Save(filepath.Join(dir, name)); err != nil {
		return err
	}
	// Point CURRENT at the new snapshot atomically (write + rename), so
	// a crash mid-snapshot leaves the previous pointer intact.
	tmp := filepath.Join(dir, snapshotCurrent+".tmp")
	if err := os.WriteFile(tmp, []byte(name+"\n"), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotCurrent)); err != nil {
		return err
	}
	// Older snapshots are now unreachable; prune them. In-flight readers
	// of their mmapped files are safe on platforms where unlink keeps
	// open mappings alive.
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if e.IsDir() && e.Name() != name && len(e.Name()) > 6 && e.Name()[:6] == "epoch-" {
				os.RemoveAll(filepath.Join(dir, e.Name()))
			}
		}
	}
	ws.mu.Lock()
	ws.snapshots++
	ws.mu.Unlock()
	return ws.log.TruncateThrough(applied)
}

// LatestSnapshot resolves a snapshot directory's CURRENT pointer to the
// index directory recovery should load, reporting ok=false when dir
// holds no (complete) snapshot.
func LatestSnapshot(dir string) (string, bool) {
	blob, err := os.ReadFile(filepath.Join(dir, snapshotCurrent))
	if err != nil {
		return "", false
	}
	name := string(blob)
	for len(name) > 0 && (name[len(name)-1] == '\n' || name[len(name)-1] == '\r') {
		name = name[:len(name)-1]
	}
	if name == "" || name != filepath.Base(name) {
		return "", false
	}
	path := filepath.Join(dir, name)
	if fi, err := os.Stat(path); err != nil || !fi.IsDir() {
		return "", false
	}
	return path, true
}

// invalidateCache drops exactly the cached vectors an update could have
// changed. An entry (q, vec) survives iff q's home shard is clean AND
// vec carries zero mass on every dirty-shard node: then the query's
// push never touched a dirty part under the old epoch, the clean parts
// it did touch are shared by pointer with the successor, and
// recomputing under the new epoch reproduces vec bit-identically — so
// serving the cached copy is exact. Anything that breaks the argument's
// premises (full rebuild, repartition moving homes, node insertions
// changing vector length, a monolithic engine with no shard structure)
// flushes everything.
func (h *Handler) invalidateCache(engine Engine, stats core.UpdateStats) {
	if h.cache == nil {
		return
	}
	hs, ok := engine.(homeSharder)
	if !ok || stats.FullRebuild || stats.Repartitioned || stats.NodesAdded > 0 || len(stats.DirtyShards) == 0 {
		h.cache.flush(stats.Epoch)
		return
	}
	dirty := make(map[int]bool, len(stats.DirtyShards))
	for _, si := range stats.DirtyShards {
		dirty[si] = true
	}
	h.cache.retain(stats.Epoch, func(q int, vec []float64) bool {
		if dirty[hs.HomeShard(q)] {
			return false
		}
		for u, v := range vec {
			if v != 0 && dirty[hs.HomeShard(u)] {
				return false
			}
		}
		return true
	})
}

// walStatz is the /statz "wal" block. It also returns the engine
// snapshot paired with it: the compactor publishes the new engine and
// advances compactions/appliedSeq/pendingOps inside one ws.mu critical
// section, so only a capture of both under that same lock yields a
// consistent /statz document — snapshotting the engine first and the
// WAL fields later can report a drained memtable (pendingOps 0,
// compactions advanced) against the pre-publish epoch, which reads as
// a lost update to anyone cross-checking epoch against compactions.
func (h *Handler) walStatz() (map[string]interface{}, *engineState) {
	ws := h.wals
	ws.mu.Lock()
	st := h.snap()
	doc := map[string]interface{}{
		"ackedSeq":        ws.ackedSeq,
		"appliedSeq":      ws.appliedSeq,
		"pendingOps":      0,
		"pendingBatches":  ws.pendingBatches,
		"acked":           ws.acked,
		"compactions":     ws.compactions,
		"applyErrors":     ws.applyErrors,
		"batchesDropped":  ws.batchesDropped,
		"replayedRecords": ws.replayed,
		"snapshots":       ws.snapshots,
		"fsyncPolicy":     ws.cfg.Sync.String(),
	}
	if ws.pending != nil {
		doc["pendingOps"] = ws.pending.Len()
	}
	ws.mu.Unlock()
	ls := ws.log.Stats()
	doc["lastSeq"] = ls.LastSeq
	doc["segments"] = ls.Segments
	doc["bytes"] = ls.Bytes
	doc["appends"] = ls.Appends
	doc["fsyncs"] = ls.Fsyncs
	doc["rotations"] = ls.Rotations
	doc["tornBytesDropped"] = ls.TornBytesDropped
	doc["segmentsCorrupt"] = ls.SegmentsCorrupt
	return doc, st
}

// Close stops the compactor (draining the memtable once more) and
// closes the log. A no-op outside WAL mode; safe to call once.
func (h *Handler) Close() error {
	ws := h.wals
	if ws == nil {
		return nil
	}
	var closeErr error
	ws.closeOnce.Do(func() {
		close(ws.stop)
		<-ws.done
		closeErr = ws.log.Close()
	})
	return closeErr
}
