package core

// Sectioned (v3) index serialization. The index's arrays are written as
// page-aligned little-endian sections in an internal/mmapio container,
// so OpenIndexFile can memory-map the file and wrap every factor array
// in place: opening costs O(#sections) regardless of index size, cold
// pages are faulted in only when a query actually traverses them, and
// the physical memory is shared across every process serving the same
// file. LoadIndex accepts the same layout from a stream (copy mode).
//
// A mapped index's arrays are read-only at the MMU level: the query and
// update paths never write factor arrays (all scratch lives in pooled
// workspaces), and TestMmapQueriesNeverWriteFactors pins that contract
// by running the full query surface against a PROT_READ mapping.
//
// Version note: the sectioned layout is "v3" to match the sharded
// manifest version that introduced it; it replaces the v1 stream
// (serialize.go) directly — there is no v2 core format.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"kdash/internal/lu"
	"kdash/internal/mmapio"
	"kdash/internal/reorder"
	"kdash/internal/sparse"
)

// Section ids of the v3 index container.
const (
	secMeta       = 1  // bytes: fixed 72-byte header, see metaBytes
	secPerm       = 2  // int64[n]: original -> internal node id
	secInvPerm    = 3  // int64[n]: internal -> original node id
	secAColPtr    = 4  // int64[n+1]: adjacency CSC column pointers
	secARowIdx    = 5  // int64[nnzA]: adjacency CSC row indices
	secAVal       = 6  // float64[nnzA]: adjacency CSC values
	secLinvColPtr = 7  // int64[n+1]: L^-1 CSC column pointers
	secLinvRowIdx = 8  // int64[nnzL]
	secLinvVal    = 9  // float64[nnzL]
	secUinvRowPtr = 10 // int64[n+1]: U^-1 CSR row pointers
	secUinvColIdx = 11 // int64[nnzU]
	secUinvVal    = 12 // float64[nnzU]
	secAmaxCol    = 13 // float64[n]: per-column max of A
	secSelfA      = 14 // float64[n]: diagonal of A

	// Blocked factor strips (see lu.BlockedCSC): the kernel-ready padded
	// layout, persisted so an opened index never rebuilds or re-pads the
	// factors. All eight appear together or not at all — a pre-strips v3
	// file loads fine (the first solve builds them in memory), and a file
	// saved from an index whose padded layout would overflow int32
	// indexing simply omits them.
	secBlkLColPtr = 15 // int32[n+1]: blocked L^-1 padded strip offsets
	secBlkLColCnt = 16 // int32[n]: blocked L^-1 true entry counts
	secBlkLRows   = 17 // int32: blocked L^-1 row indices, padded
	secBlkLVals   = 18 // float64: blocked L^-1 values, padded
	secBlkUColPtr = 19 // int32[n+1]: blocked U^-1-by-column strip offsets
	secBlkUColCnt = 20 // int32[n]: blocked U^-1 true entry counts
	secBlkURows   = 21 // int32: blocked U^-1 row indices (remapped), padded
	secBlkUVals   = 22 // float64: blocked U^-1 values, padded
)

// metaTag opens the meta section so a v3 container holding something
// other than a core index is rejected before any array is interpreted.
const metaTag = "KDIXV3\x00\x00"

// metaSize is the fixed byte length of the meta section:
//
//	0   8  tag "KDIXV3\x00\x00"
//	8   8  uint64 n
//	16  8  float64 bits of the restart probability c
//	24  8  float64 bits of amax
//	32  8  uint64 reorder method
//	40  8  uint64 stats.NNZFactors
//	48  8  uint64 stats.NNZInverse
//	56  8  uint64 stats.Edges
//	64  8  float64 bits of stats.InverseRatio
const metaSize = 72

// metaBytes encodes the scalar header.
func (ix *Index) metaBytes() []byte {
	b := make([]byte, metaSize)
	copy(b, metaTag)
	le := binary.LittleEndian
	le.PutUint64(b[8:], uint64(ix.n))
	le.PutUint64(b[16:], math.Float64bits(ix.c))
	le.PutUint64(b[24:], math.Float64bits(ix.amax))
	le.PutUint64(b[32:], uint64(ix.stats.Method))
	le.PutUint64(b[40:], uint64(ix.stats.NNZFactors))
	le.PutUint64(b[48:], uint64(ix.stats.NNZInverse))
	le.PutUint64(b[56:], uint64(ix.stats.Edges))
	le.PutUint64(b[64:], math.Float64bits(ix.stats.InverseRatio))
	return b
}

// Save writes the index as a sectioned v3 container. The layout is what
// makes zero-copy loads possible: LoadIndex parses it from any stream,
// OpenIndexFile memory-maps it from a file.
func (ix *Index) Save(w io.Writer) error {
	sw := mmapio.NewWriter()
	sw.AddBytes(secMeta, ix.metaBytes())
	sw.AddInts(secPerm, ix.perm)
	sw.AddInts(secInvPerm, ix.inv)
	sw.AddInts(secAColPtr, ix.a.ColPtr)
	sw.AddInts(secARowIdx, ix.a.RowIdx)
	sw.AddFloats(secAVal, ix.a.Val)
	sw.AddInts(secLinvColPtr, ix.linv.ColPtr)
	sw.AddInts(secLinvRowIdx, ix.linv.RowIdx)
	sw.AddFloats(secLinvVal, ix.linv.Val)
	sw.AddInts(secUinvRowPtr, ix.uinv.RowPtr)
	sw.AddInts(secUinvColIdx, ix.uinv.ColIdx)
	sw.AddFloats(secUinvVal, ix.uinv.Val)
	sw.AddFloats(secAmaxCol, ix.amaxCol)
	sw.AddFloats(secSelfA, ix.selfA)
	// Force-build the blocked strips so every saved index carries them:
	// the open path installs them directly and never re-pads the factors.
	if blkL, blkU := ix.inverseFactors().Blocked(); blkL != nil && blkU != nil {
		sw.AddInt32s(secBlkLColPtr, blkL.ColPtr)
		sw.AddInt32s(secBlkLColCnt, blkL.ColCnt)
		sw.AddInt32s(secBlkLRows, blkL.Rows)
		sw.AddFloats(secBlkLVals, blkL.Vals)
		sw.AddInt32s(secBlkUColPtr, blkU.ColPtr)
		sw.AddInt32s(secBlkUColCnt, blkU.ColCnt)
		sw.AddInt32s(secBlkURows, blkU.Rows)
		sw.AddFloats(secBlkUVals, blkU.Vals)
	}
	if _, err := sw.WriteTo(w); err != nil {
		return fmt.Errorf("core: writing index: %w", err)
	}
	return nil
}

// OpenIndexFile opens a saved index directly from the filesystem,
// dispatching on the file's magic. For a v3 (sectioned) file the
// mmapio mode applies: mmapio.ModeMmap (or ModeAuto on a supported
// platform) maps the file read-only and the returned index's arrays
// alias the mapping — near-instant opens, demand paging, shared
// physical memory — and Close must be called once the index is
// retired; mmapio.ModeCopy forces a private in-memory copy with every
// checksum verified. A legacy v1 file is stream-parsed into private
// memory under ModeAuto and ModeCopy; ModeMmap rejects it, and any
// mmap failure under ModeMmap is surfaced, never silently downgraded —
// a caller that demanded shared mappings must not silently get N
// private copies. Mapped reports which path was taken.
func OpenIndexFile(path string, mode mmapio.Mode) (*Index, error) {
	osf, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: opening index: %w", err)
	}
	var head [8]byte
	n, _ := io.ReadFull(osf, head[:])
	if n == len(head) && string(head[:]) == mmapio.Magic {
		osf.Close()
		f, err := mmapio.Open(path, mode)
		if err != nil {
			return nil, fmt.Errorf("core: opening %s: %w", path, err)
		}
		ix, err := indexFromContainer(f, !f.Mapped())
		if err != nil {
			f.Close() // release the mapping a rejected container holds
			return nil, err
		}
		return ix, nil
	}
	defer osf.Close()
	if mode == mmapio.ModeMmap {
		return nil, fmt.Errorf("core: opening %s: legacy (v1) index files cannot be memory-mapped; re-save in the v3 format or use ModeAuto/ModeCopy", path)
	}
	if _, err := osf.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("core: opening %s: %w", path, err)
	}
	ix, err := LoadIndex(osf)
	if err != nil {
		return nil, fmt.Errorf("core: opening %s: %w", path, err)
	}
	return ix, nil
}

// indexFromContainer builds an Index over a parsed container. With deep
// validation the factor arrays are fully range-checked (the copy-mode
// contract); without it only O(1)-per-section shape checks run, so a
// mapped open never faults in the data pages (corrupt indices surface as
// bounds panics at query time instead — the server recovers those to
// 500s — or via an explicit VerifyFile). It installs the factor arrays
// (possibly aliasing the PROT_READ mapping), so it sits on the
// //kdash:mutates-factors allowlist.
//
//kdash:mutates-factors
func indexFromContainer(f *mmapio.File, deep bool) (*Index, error) {
	meta, err := f.Bytes(secMeta)
	if err != nil {
		return nil, fmt.Errorf("core: corrupt index: %w", err)
	}
	if len(meta) != metaSize || string(meta[:8]) != metaTag {
		return nil, fmt.Errorf("core: not a K-dash v3 index (bad meta section)")
	}
	le := binary.LittleEndian
	ix := &Index{
		n:    int(le.Uint64(meta[8:])),
		c:    math.Float64frombits(le.Uint64(meta[16:])),
		amax: math.Float64frombits(le.Uint64(meta[24:])),
	}
	if ix.n <= 0 || ix.n > 1<<40 || ix.c <= 0 || ix.c >= 1 {
		return nil, fmt.Errorf("core: corrupt index (n=%d c=%v)", ix.n, ix.c)
	}
	ints := func(id uint32, dst *[]int) {
		if err == nil {
			*dst, err = f.Ints(id)
		}
	}
	floats := func(id uint32, dst *[]float64) {
		if err == nil {
			*dst, err = f.Floats(id)
		}
	}
	a := &sparse.CSC{Rows: ix.n, Cols: ix.n}
	linv := &sparse.CSC{Rows: ix.n, Cols: ix.n}
	uinv := &sparse.CSR{Rows: ix.n, Cols: ix.n}
	ints(secPerm, &ix.perm)
	ints(secInvPerm, &ix.inv)
	ints(secAColPtr, &a.ColPtr)
	ints(secARowIdx, &a.RowIdx)
	floats(secAVal, &a.Val)
	ints(secLinvColPtr, &linv.ColPtr)
	ints(secLinvRowIdx, &linv.RowIdx)
	floats(secLinvVal, &linv.Val)
	ints(secUinvRowPtr, &uinv.RowPtr)
	ints(secUinvColIdx, &uinv.ColIdx)
	floats(secUinvVal, &uinv.Val)
	floats(secAmaxCol, &ix.amaxCol)
	floats(secSelfA, &ix.selfA)
	if err != nil {
		return nil, fmt.Errorf("core: corrupt index: %w", err)
	}
	ix.a, ix.linv, ix.uinv = a, linv, uinv
	ix.stats = BuildStats{
		Method:       reorder.Method(le.Uint64(meta[32:])),
		NNZFactors:   int(le.Uint64(meta[40:])),
		NNZInverse:   int(le.Uint64(meta[48:])),
		Edges:        int(le.Uint64(meta[56:])),
		InverseRatio: math.Float64frombits(le.Uint64(meta[64:])),
	}
	if err := ix.checkShapes(); err != nil {
		return nil, err
	}
	if f.Has(secBlkLColPtr) {
		if err := ix.loadBlocked(f, deep); err != nil {
			return nil, err
		}
	}
	if deep {
		if err := ix.validateLoaded(); err != nil {
			return nil, err
		}
		for i, p := range ix.perm {
			if ix.inv[p] != i {
				return nil, fmt.Errorf("core: corrupt index (inverse permutation disagrees at %d)", i)
			}
		}
	}
	ix.backing = f
	return ix, nil
}

// loadBlocked wires the pre-built blocked factor strips out of the
// container. Deep (copy-mode) loads bounds-validate both strips here so
// corruption is an error; mapped loads defer that one O(nnz) pass to
// the lu layer's first-use validation, which panics on corrupt strips
// (the server recovers panics to 500s) — either way no assembly kernel
// ever walks an unchecked row index.
//
//kdash:mutates-factors
func (ix *Index) loadBlocked(f *mmapio.File, deep bool) error {
	var err error
	int32s := func(id uint32, dst *[]int32) {
		if err == nil {
			*dst, err = f.Int32s(id)
		}
	}
	floats := func(id uint32, dst *[]float64) {
		if err == nil {
			*dst, err = f.Floats(id)
		}
	}
	blkL := &lu.BlockedCSC{N: ix.n}
	blkU := &lu.BlockedCSC{N: ix.n}
	int32s(secBlkLColPtr, &blkL.ColPtr)
	int32s(secBlkLColCnt, &blkL.ColCnt)
	int32s(secBlkLRows, &blkL.Rows)
	floats(secBlkLVals, &blkL.Vals)
	int32s(secBlkUColPtr, &blkU.ColPtr)
	int32s(secBlkUColCnt, &blkU.ColCnt)
	int32s(secBlkURows, &blkU.Rows)
	floats(secBlkUVals, &blkU.Vals)
	if err != nil {
		return fmt.Errorf("core: corrupt index (blocked strips): %w", err)
	}
	if deep {
		if err := blkL.Validate(); err != nil {
			return fmt.Errorf("core: corrupt index (blocked L): %w", err)
		}
		if err := blkU.Validate(); err != nil {
			return fmt.Errorf("core: corrupt index (blocked U): %w", err)
		}
	}
	ix.loadedBlkL, ix.loadedBlkU = blkL, blkU
	return nil
}

// checkShapes runs the O(1)-per-section structural checks both load
// modes share: array lengths against n and each other, and pointer-array
// endpoints (which touch only the first and last page of each pointer
// section).
func (ix *Index) checkShapes() error {
	n := ix.n
	if len(ix.perm) != n || len(ix.inv) != n || len(ix.amaxCol) != n || len(ix.selfA) != n {
		return fmt.Errorf("core: corrupt index (per-node sections sized %d/%d/%d/%d, want %d)",
			len(ix.perm), len(ix.inv), len(ix.amaxCol), len(ix.selfA), n)
	}
	check := func(name string, ptr, idx []int, val []float64) error {
		if len(ptr) != n+1 || ptr[0] != 0 || ptr[n] != len(idx) || len(idx) != len(val) {
			return fmt.Errorf("core: corrupt index (%s pointers: %d/%d/%d entries for n=%d)", name, len(ptr), len(idx), len(val), n)
		}
		return nil
	}
	if err := check("adjacency", ix.a.ColPtr, ix.a.RowIdx, ix.a.Val); err != nil {
		return err
	}
	if err := check("L-inverse", ix.linv.ColPtr, ix.linv.RowIdx, ix.linv.Val); err != nil {
		return err
	}
	return check("U-inverse", ix.uinv.RowPtr, ix.uinv.ColIdx, ix.uinv.Val)
}

// VerifyFile checks every section checksum of the index's backing
// container and deep-validates the factor arrays — the explicit fsck for
// mapped indexes, whose open path skips both to stay O(#sections). It
// faults in the entire file. Indexes without a backing container (built
// in process or parsed from a legacy stream) verify trivially.
func (ix *Index) VerifyFile() error {
	if ix.backing == nil {
		return nil
	}
	if err := ix.backing.Verify(); err != nil {
		return err
	}
	return ix.validateLoaded()
}

// Mapped reports whether the index's arrays alias a read-only file
// mapping (true only for OpenIndexFile in an mmap mode).
func (ix *Index) Mapped() bool { return ix.backing != nil && ix.backing.Mapped() }

// MappedBytes is the byte size of the index's read-only file mapping —
// the address space demand paging serves queries from. It is 0 for any
// unmapped index (built in process, parsed from a stream, or opened in
// copy mode), so observability sums over it never mistake private
// memory for a shared mapping.
func (ix *Index) MappedBytes() int {
	if !ix.Mapped() {
		return 0
	}
	return ix.backing.Size()
}

// Close releases the index's backing file mapping, if any. A mapped
// index must not be used after Close — its arrays alias the mapping and
// reads fault once it is gone. Indexes without a mapping close as a
// harmless no-op.
func (ix *Index) Close() error {
	if ix.backing == nil {
		return nil
	}
	f := ix.backing
	ix.backing = nil
	return f.Close()
}
