// Package kdash is a Go implementation of K-dash — fast and exact top-k
// search for Random Walk with Restart proximity — from Fujiwara et al.,
// "Fast and Exact Top-k Search for Random Walk with Restart", PVLDB 5(5),
// 2012, together with the baselines the paper evaluates against (the
// iterative method, NB_LIN/B_LIN, and the Basic Push Algorithm).
//
// # Quick start
//
//	b := kdash.NewBuilder(4)
//	b.AddEdge(0, 1, 1)
//	b.AddEdge(1, 2, 1)
//	b.AddEdge(2, 0, 1)
//	b.AddEdge(2, 3, 1)
//	g := b.Build()
//
//	ix, err := kdash.BuildIndex(g, kdash.Options{})
//	...
//	results, stats, err := ix.TopK(0, 2)
//
// Results carry exact RWR proximities (Theorem 2 of the paper); stats
// report how much of the graph the estimation-based pruning skipped.
//
// Node ids are dense integers 0..n-1; callers keep their own label
// mapping (see examples/dictionary for a labelled corpus).
//
// Beyond the monolithic Index the package exposes the partitioned
// ShardedIndex (parallel builds, exact cross-shard queries, functional
// dynamic updates) and file-backed persistence for both: Save writes a
// page-aligned sectioned layout that OpenIndex / OpenShardedIndex can
// memory-map read-only for near-instant cold starts (see OpenOptions).
// The architecture — layer map, immutability and pooling contracts,
// on-disk formats — is documented in docs/ARCHITECTURE.md.
package kdash

import (
	"io"

	"kdash/internal/core"
	"kdash/internal/graph"
	"kdash/internal/lu"
	"kdash/internal/mmapio"
	"kdash/internal/reorder"
	"kdash/internal/rwr"
	"kdash/internal/shard"
	"kdash/internal/topk"
)

// Graph is a directed weighted graph with nodes 0..n-1.
type Graph = graph.Graph

// Builder accumulates edges for a Graph.
type Builder = graph.Builder

// Edge is one directed weighted edge.
type Edge = graph.Edge

// Result is one ranked answer: a node and its exact RWR proximity.
type Result = topk.Result

// Index is a prebuilt K-dash search structure, safe for concurrent
// queries.
type Index = core.Index

// Options configures index construction. The zero value selects the
// paper's defaults: restart probability c = 0.95 and (via DefaultOptions)
// hybrid reordering.
type Options = core.BuildOptions

// SearchOptions exposes the evaluation knobs (pruning off, random root)
// used by the paper's ablation figures.
type SearchOptions = core.SearchOptions

// BatchQuery is one query of a batched execution. Both index shapes
// answer blocks of queries through SearchBatch/TopKBatch: the monolithic
// Index shares its search workspaces across the block, the ShardedIndex
// runs one shared cross-shard push whose per-shard factor sweeps are
// amortised over every query with residual mass in the shard.
type BatchQuery = core.BatchQuery

// ShardBatchStats reports block-level work for one batched sharded
// execution (factor sweeps performed vs right-hand sides shared into
// them).
type ShardBatchStats = shard.BatchStats

// SearchStats reports per-query work: nodes visited, exact proximity
// computations, and whether pruning terminated the search early.
type SearchStats = core.SearchStats

// BuildStats reports precompute cost and inverse-factor sparsity.
type BuildStats = core.BuildStats

// ReorderMethod selects the node ordering used to keep the precomputed
// inverse factors sparse.
type ReorderMethod = reorder.Method

// Reordering strategies (paper Section 4.2.2 / Algorithms 1-3).
const (
	ReorderDegree  = reorder.Degree
	ReorderCluster = reorder.Cluster
	ReorderHybrid  = reorder.Hybrid
	ReorderRandom  = reorder.Random
	ReorderNatural = reorder.Natural
)

// DefaultRestart is the paper's restart probability c = 0.95.
const DefaultRestart = rwr.DefaultRestart

// NewBuilder returns a Builder for a graph with n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// DefaultOptions returns the paper's recommended configuration: c = 0.95
// with hybrid reordering.
func DefaultOptions() Options {
	return Options{Restart: DefaultRestart, Reorder: ReorderHybrid}
}

// BuildIndex precomputes a K-dash index: it reorders the nodes,
// LU-factorizes W = I - (1-c)A, and inverts the triangular factors into
// the sparse form queries use. Precomputation is the expensive step;
// queries afterwards are near-instant.
func BuildIndex(g *Graph, opt Options) (*Index, error) {
	return core.BuildIndex(g, opt)
}

// Load parses a whitespace-separated edge list ("from to [weight]" per
// line, '#'/'%' comments allowed) into a Graph.
func Load(r io.Reader) (*Graph, error) {
	return graph.ParseEdgeList(r, 0)
}

// LoadIndex reads an index previously written with Index.Save.
// Precomputation is the expensive step of K-dash, so production
// deployments build the index once and ship the serialised form to query
// servers. Reading from a stream always materialises the index in
// private memory; use OpenIndex to memory-map an index file instead.
func LoadIndex(r io.Reader) (*Index, error) {
	return core.LoadIndex(r)
}

// OpenOptions configures OpenIndex and OpenShardedIndex, the
// file-backed load paths.
type OpenOptions struct {
	// Mmap memory-maps saved (v3-format) index files read-only instead
	// of copying them into private memory: opening costs milliseconds
	// regardless of index size, pages fault in on first use, and the
	// physical memory is shared across processes serving the same
	// files. Writes through a mapped index's arrays are impossible (the
	// mapping is read-only at the MMU level), and Close must be called
	// once the index is retired. On platforms without mmap support —
	// or for legacy-format files — opening silently falls back to the
	// private-copy path; Index.Mapped reports which one was taken.
	Mmap bool
	// Lazy, for sharded indexes, defers each shard file's open to the
	// first query that actually solves the shard, so a cold start
	// touches only the manifest and the shards live traffic reaches.
	// Combined with Mmap this is the instant-cold-start configuration:
	// open time is O(shards touched), resident memory O(bytes queried).
	Lazy bool
	// Precision selects the factor-value width the single-lane solve
	// path reads (see Precision); files always store exact float64.
	Precision Precision
	// PushWorkers, for sharded indexes, enables the speculative
	// parallel cross-shard push (see ShardOptions.PushWorkers).
	PushWorkers int
}

// Precision selects the stored width of factor values on the
// single-lane solve path: PrecisionFloat64 (exact, the default, the
// mode the paper's guarantee covers) or PrecisionFloat32 (half the
// value bandwidth; values are widened to float64 before every multiply
// and accumulated in float64, so the divergence from exact is a few
// float32 ulps — measured at ~1e-7 relative worst-case by the
// differential suite, documented in docs/ARCHITECTURE.md).
type Precision = lu.Precision

const (
	// PrecisionFloat64 is the exact default.
	PrecisionFloat64 = lu.Float64
	// PrecisionFloat32 streams half-width factor value strips.
	PrecisionFloat32 = lu.Float32
)

// mode maps the public knob onto the internal backing mode.
func (o OpenOptions) mode() mmapio.Mode {
	if o.Mmap {
		return mmapio.ModeAuto
	}
	return mmapio.ModeCopy
}

// OpenIndex opens a saved monolithic index directly from a file,
// memory-mapping it when opt.Mmap is set (see OpenOptions).
func OpenIndex(path string, opt OpenOptions) (*Index, error) {
	ix, err := core.OpenIndexFile(path, opt.mode())
	if err != nil {
		return nil, err
	}
	ix.SetPrecision(opt.Precision)
	return ix, nil
}

// OpenShardedIndex opens a saved sharded index directory with explicit
// backing (opt.Mmap) and laziness (opt.Lazy) choices; see OpenOptions.
// ShardedIndex.Close releases whatever mappings were established.
func OpenShardedIndex(dir string, opt OpenOptions) (*ShardedIndex, error) {
	return shard.Open(dir, shard.LoadOptions{
		Mode: opt.mode(), Lazy: opt.Lazy,
		Precision: opt.Precision, PushWorkers: opt.PushWorkers,
	})
}

// ShardedIndex is a partitioned K-dash index: the graph is split into
// balanced Louvain communities, one K-dash index is built per partition
// (concurrently), and queries merge per-shard answers into one exact
// ranking. Build cost parallelises near-linearly with the shard count;
// answers match the monolithic Index.
type ShardedIndex = shard.ShardedIndex

// ShardOptions configures sharded index construction.
type ShardOptions = shard.Options

// ShardStats reports partition-parallel build cost.
type ShardStats = shard.BuildStats

// BuildShardedIndex partitions the graph and builds one K-dash index per
// partition across a worker pool.
func BuildShardedIndex(g *Graph, opt ShardOptions) (*ShardedIndex, error) {
	return shard.Build(g, opt)
}

// LoadShardedIndex reads a sharded index previously written with
// ShardedIndex.Save (a directory of per-shard index files plus a
// manifest).
func LoadShardedIndex(dir string) (*ShardedIndex, error) {
	return shard.Load(dir)
}

// IsShardedIndexDir reports whether path holds a saved sharded index —
// the dispatch CLIs use to pick LoadShardedIndex over LoadIndex.
func IsShardedIndexDir(path string) bool {
	return shard.IsShardedIndexDir(path)
}

// Delta is an ordered batch of graph mutations (edge additions and
// removals, node insertions) built against a specific graph. Apply it
// functionally: Graph.Apply returns a new Graph, Index.Rebuild a new
// Index (full precompute), and ShardedIndex.Apply a new ShardedIndex
// that refactorizes only the shards owning changed columns. The
// originals stay valid, so in-flight queries never observe a
// half-applied update — swap the pointer when the successor is ready.
type Delta = graph.Delta

// UpdateStats reports the work one incremental ShardedIndex.Apply
// performed (shards refactorized, cuts patched, repartitioning).
type UpdateStats = shard.UpdateStats

// NewDelta starts an empty mutation batch against a graph with n
// nodes (usually g.NewDelta() instead).
func NewDelta(n int) *Delta { return graph.NewDelta(n) }

// ErrEdgeNotFound reports removal of an edge that does not exist; test
// with errors.Is against Apply/Rebuild failures.
var ErrEdgeNotFound = graph.ErrEdgeNotFound

// IterativeTopK computes the exact top-k answer with the classical
// power-iteration method (the paper's Equation (1)). It is the oracle
// K-dash is validated against — far slower, same answer.
func IterativeTopK(g *Graph, q, k int, c float64) ([]Result, error) {
	if c == 0 {
		c = DefaultRestart
	}
	return rwr.TopK(g.ColumnNormalized(), q, k, c)
}

// IterativeProximities computes the full exact proximity vector for q by
// power iteration.
func IterativeProximities(g *Graph, q int, c float64) ([]float64, error) {
	if c == 0 {
		c = DefaultRestart
	}
	p, _, err := rwr.Iterative(g.ColumnNormalized(), q, c, rwr.DefaultTol, rwr.DefaultMaxIter)
	return p, err
}
