package placement

// In-process differential tests for the coordinator/worker seam: the
// workers are real RPC servers on loopback TCP (only the processes are
// shared — every byte still crosses the wire), and every answer is
// compared bit-for-bit against an in-process index opened from the same
// directory and fed the same update chain. The multi-process version of
// this harness lives in internal/distributed.

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"kdash/internal/core"
	"kdash/internal/reorder"
	"kdash/internal/rpc"
	"kdash/internal/shard"
	"kdash/internal/testutil"
)

// buildDir builds a random sharded index and saves it to a temp dir.
func buildDir(t *testing.T, rng *rand.Rand, seed int64, shards int) string {
	t.Helper()
	g := testutil.Random(rng)
	sx, err := shard.Build(g, shard.Options{Shards: shards, Reorder: reorder.Hybrid, Seed: seed, StalenessLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := sx.Save(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// startWorkers serves nWorkers real RPC workers on loopback, each over
// its own lazily opened copy of the index.
func startWorkers(t *testing.T, dir string, nWorkers int) []string {
	t.Helper()
	addrs := make([]string, nWorkers)
	for w := 0; w < nWorkers; w++ {
		sx, err := shard.Open(dir, shard.LoadOptions{Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[w] = ln.Addr().String()
		go ServeWorker(ln, sx) //nolint:errcheck // closes with the listener
		t.Cleanup(func() { ln.Close() })
	}
	return addrs
}

// trackedWorker is a worker whose accepted connections are recorded so
// kill() can sever them all — closing only the listener would leave the
// coordinator's pooled connections alive and the "dead" worker serving.
type trackedWorker struct {
	ln net.Listener
	mu sync.Mutex
	cs []net.Conn
}

func serveTracked(t *testing.T, dir, addr string) *trackedWorker {
	t.Helper()
	sx, err := shard.Open(dir, shard.LoadOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := listenAt(t, addr)
	if err != nil {
		t.Fatal(err)
	}
	tw := &trackedWorker{ln: ln}
	wk := NewWorker(sx)
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			tw.mu.Lock()
			tw.cs = append(tw.cs, nc)
			tw.mu.Unlock()
			go rpc.ServeConn(nc, wk)
		}
	}()
	t.Cleanup(tw.kill)
	return tw
}

func (tw *trackedWorker) kill() {
	tw.ln.Close()
	tw.mu.Lock()
	defer tw.mu.Unlock()
	for _, c := range tw.cs {
		c.Close()
	}
	tw.cs = nil
}

func sameResults(t *testing.T, ctxt string, got, want interface{}) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: distributed answer diverged\n got %+v\nwant %+v", ctxt, got, want)
	}
}

func TestCoordinatorDifferential(t *testing.T) {
	for _, cfg := range []Config{{}, {PushWorkers: 3}} {
		seed := int64(7)
		rng := rand.New(rand.NewSource(seed))
		dir := buildDir(t, rng, seed, 4)
		addrs := startWorkers(t, dir, 2)

		co, err := NewCoordinator(dir, addrs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := shard.Open(dir, shard.LoadOptions{})
		if err != nil {
			t.Fatal(err)
		}

		for round := 0; round < 4; round++ {
			if co.Epoch() != oracle.Epoch() {
				t.Fatalf("round %d: epoch %d vs oracle %d", round, co.Epoch(), oracle.Epoch())
			}
			n := co.N()
			k := 1 + rng.Intn(8)
			for i := 0; i < 3; i++ {
				q := rng.Intn(n)
				got, gqs, err := co.TopK(q, k)
				if err != nil {
					t.Fatalf("round %d TopK(%d): %v", round, q, err)
				}
				want, wqs, err := oracle.TopK(q, k)
				if err != nil {
					t.Fatal(err)
				}
				sameResults(t, "TopK results", got, want)
				sameResults(t, "TopK stats", gqs, wqs)
			}
			batch := make([]int, 4)
			for i := range batch {
				batch[i] = rng.Intn(n)
			}
			gotB, gbs, err := co.TopKBatch(batch, k)
			if err != nil {
				t.Fatalf("round %d TopKBatch: %v", round, err)
			}
			wantB, wbs, err := oracle.TopKBatch(batch, k)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "TopKBatch results", gotB, wantB)
			sameResults(t, "TopKBatch stats", gbs, wbs)

			seeds := map[int]float64{rng.Intn(n): 1, rng.Intn(n): 2.5}
			gotP, gps, err := co.TopKPersonalized(seeds, k)
			if err != nil {
				t.Fatalf("round %d TopKPersonalized: %v", round, err)
			}
			wantP, wps, err := oracle.TopKPersonalized(seeds, k)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "TopKPersonalized results", gotP, wantP)
			sameResults(t, "TopKPersonalized stats", gps, wps)

			q, u := rng.Intn(n), rng.Intn(n)
			gotPx, err := co.Proximity(q, u)
			if err != nil {
				t.Fatalf("round %d Proximity: %v", round, err)
			}
			wantPx, err := oracle.Proximity(q, u)
			if err != nil {
				t.Fatal(err)
			}
			if gotPx != wantPx {
				t.Fatalf("round %d Proximity(%d,%d): %v != %v", round, q, u, gotPx, wantPx)
			}

			d := testutil.RandomDelta(rng, oracle.Graph(), 6)
			nextAny, _, err := co.ApplyDelta(d)
			if err != nil {
				t.Fatalf("round %d ApplyDelta: %v", round, err)
			}
			co = nextAny.(*Coordinator)
			nextOracle, _, err := oracle.Apply(d)
			if err != nil {
				t.Fatal(err)
			}
			oracle = nextOracle
		}
		co.Close()
	}
}

// TestCoordinatorWorkerRestartReplay kills a worker mid-chain, restarts
// it from the (stale) on-disk index at the same address, and checks the
// chain replay brings it current: answers stay bit-identical and the
// replay counter moves.
func TestCoordinatorWorkerRestartReplay(t *testing.T) {
	seed := int64(11)
	rng := rand.New(rand.NewSource(seed))
	dir := buildDir(t, rng, seed, 4)

	// Worker 0 is managed manually so it can be killed and restarted.
	tw := serveTracked(t, dir, "127.0.0.1:0")
	addr0 := tw.ln.Addr().String()
	addrs := append([]string{addr0}, startWorkers(t, dir, 1)...)

	co, err := NewCoordinator(dir, addrs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := shard.Open(dir, shard.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Two updates while everything is alive.
	for round := 0; round < 2; round++ {
		d := testutil.RandomDelta(rng, oracle.Graph(), 5)
		nextAny, _, err := co.ApplyDelta(d)
		if err != nil {
			t.Fatal(err)
		}
		co = nextAny.(*Coordinator)
		if oracle, _, err = oracle.Apply(d); err != nil {
			t.Fatal(err)
		}
	}

	// Kill worker 0 (listener AND live connections) and restart it from
	// disk at the same address: it comes back at the base epoch, two
	// epochs behind.
	tw.kill()
	serveTracked(t, dir, addr0)

	// Queries must heal through replay and stay bit-identical.
	n := co.N()
	for i := 0; i < 5; i++ {
		q := rng.Intn(n)
		got, _, err := co.TopK(q, 5)
		if err != nil {
			t.Fatalf("post-restart TopK(%d): %v", q, err)
		}
		want, _, err := oracle.TopK(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "post-restart TopK", got, want)
	}
	replays := int64(0)
	for w := range co.cl.reconnects {
		replays += co.cl.reconnects[w].Load()
	}
	if replays == 0 {
		t.Fatal("restart was served without a single replay round — the worker cannot have healed")
	}
	co.Close()
}

// listenAt retries binding to a specific address briefly (the killed
// listener's port lingers in TIME_WAIT for a moment on some platforms).
func listenAt(t *testing.T, addr string) (net.Listener, error) {
	t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil, err
}

// TestCoordinatorWorkerLossUnavailable kills a worker with no
// replacement: queries needing its shards must fail with
// rpc.ErrUnavailable (the server maps it to 503), never a wrong or
// partial answer.
func TestCoordinatorWorkerLossUnavailable(t *testing.T) {
	seed := int64(13)
	rng := rand.New(rand.NewSource(seed))
	dir := buildDir(t, rng, seed, 4)

	tw := serveTracked(t, dir, "127.0.0.1:0")
	addrs := append([]string{tw.ln.Addr().String()}, startWorkers(t, dir, 1)...)

	co, err := NewCoordinator(dir, addrs, Config{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	tw.kill() // worker 0 is gone for good

	sawUnavailable := false
	for q := 0; q < co.N() && !sawUnavailable; q++ {
		_, _, err := co.TopK(q, 5)
		if err != nil {
			if !errors.Is(err, rpc.ErrUnavailable) {
				t.Fatalf("TopK(%d): untyped failure %v", q, err)
			}
			sawUnavailable = true
		}
	}
	if !sawUnavailable {
		t.Fatal("no query ever touched the dead worker's shards")
	}

	// Updates cannot two-phase publish either: clean unavailable, old
	// epoch intact.
	d := testutil.RandomDelta(rng, co.Graph(), 4)
	epochBefore := co.Epoch()
	if _, _, err := co.ApplyDelta(d); !errors.Is(err, rpc.ErrUnavailable) {
		t.Fatalf("ApplyDelta with a dead worker: want ErrUnavailable, got %v", err)
	}
	if co.Epoch() != epochBefore {
		t.Fatalf("failed publish moved the epoch: %d -> %d", epochBefore, co.Epoch())
	}
}

// TestAssign pins the round-robin placement both sides derive.
func TestAssign(t *testing.T) {
	got := Assign(5, 2)
	want := []int{0, 1, 0, 1, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Assign(5,2) = %v, want %v", got, want)
	}
}

// TestCoordinatorEngineSurface covers the full server.Engine surface a
// coordinator exposes beyond the push-routing paths the differential
// test drives: the factorless passthroughs (Search, SearchBatch and
// their ctx variants, ProximityVector), the metadata accessors the
// HTTP tier reads, and the Statz cluster block — every answer checked
// bit-for-bit against an in-process index from the same directory.
func TestCoordinatorEngineSurface(t *testing.T) {
	seed := int64(11)
	rng := rand.New(rand.NewSource(seed))
	dir := buildDir(t, rng, seed, 4)
	addrs := startWorkers(t, dir, 2)

	co, err := NewCoordinator(dir, addrs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	oracle, err := shard.Open(dir, shard.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if co.N() != oracle.N() || co.Shards() != oracle.Shards() || co.Epoch() != oracle.Epoch() {
		t.Fatalf("shape: co (%d,%d,%d) vs oracle (%d,%d,%d)",
			co.N(), co.Shards(), co.Epoch(), oracle.N(), oracle.Shards(), oracle.Epoch())
	}
	if co.Restart() != oracle.Restart() {
		t.Fatalf("Restart: %v vs %v", co.Restart(), oracle.Restart())
	}
	if co.WALSeq() != oracle.WALSeq() {
		t.Fatalf("WALSeq: %d vs %d", co.WALSeq(), oracle.WALSeq())
	}
	if co.Graph() == nil || co.Graph().N() != oracle.Graph().N() {
		t.Fatal("Graph passthrough broken")
	}
	n := co.N()
	for u := 0; u < n; u += 7 {
		if co.HomeShard(u) != oracle.HomeShard(u) {
			t.Fatalf("HomeShard(%d): %d vs %d", u, co.HomeShard(u), oracle.HomeShard(u))
		}
	}

	q := rng.Intn(n)
	gotS, gss, err := co.Search(q, core.SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	wantS, wss, err := oracle.Search(q, core.SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "Search results", gotS, wantS)
	sameResults(t, "Search stats", gss, wss)

	gotV, err := co.ProximityVector(q)
	if err != nil {
		t.Fatal(err)
	}
	wantV, err := oracle.ProximityVector(q)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "ProximityVector", gotV, wantV)
	gotVC, err := co.ProximityVectorCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "ProximityVectorCtx", gotVC, wantV)

	batch := []core.BatchQuery{{Q: rng.Intn(n), K: 4}, {Q: rng.Intn(n), K: 2}}
	gotB, gbs, err := co.SearchBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	wantB, wbs, err := oracle.SearchBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "SearchBatch results", gotB, wantB)
	sameResults(t, "SearchBatch stats", gbs, wbs)
	gotBC, _, err := co.SearchBatchCtx(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "SearchBatchCtx results", gotBC, wantB)

	doc := co.Statz()
	cluster, ok := doc["cluster"].(map[string]interface{})
	if !ok {
		t.Fatal("Statz has no cluster block")
	}
	workers, ok := cluster["workers"].([]map[string]interface{})
	if !ok || len(workers) != 2 {
		t.Fatalf("cluster.workers = %v", cluster["workers"])
	}
	totalShards := 0
	for w, wd := range workers {
		if wd["addr"] != addrs[w] {
			t.Fatalf("worker %d addr %v, want %s", w, wd["addr"], addrs[w])
		}
		totalShards += wd["shards"].(int)
	}
	if totalShards != co.Shards() {
		t.Fatalf("placement covers %d shards, index has %d", totalShards, co.Shards())
	}
}

// TestWorkerPublishStateMachine unit-tests the two-phase state machine
// directly: prepare/commit idempotency (the RPC layer may replay a call
// whose response was torn), wrongEpoch on gaps and missing stages, and
// the two-epoch residency window.
func TestWorkerPublishStateMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := testutil.Random(rng)
	sx, err := shard.Build(g, shard.Options{Shards: 3, Reorder: reorder.Hybrid, Seed: 23, StalenessLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	wk := NewWorker(sx)
	base := wk.Epoch()

	deltas := make([][]byte, 3)
	og := g
	for i := range deltas {
		d := testutil.RandomDelta(rng, og, 4)
		deltas[i] = d.AppendBinary(nil)
		if og, err = og.Apply(d); err != nil {
			t.Fatal(err)
		}
	}

	// A gap is rejected; the next epoch stages; staging twice is a no-op.
	if err := wk.prepare(base+2, deltas[1]); !errors.Is(err, rpc.ErrWrongEpoch) {
		t.Fatalf("prepare gap: %v, want wrongEpoch", err)
	}
	if err := wk.prepare(base+1, deltas[0]); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if err := wk.prepare(base+1, deltas[0]); err != nil {
		t.Fatalf("re-prepare staged: %v", err)
	}

	// Committing an unstaged epoch is rejected; the staged one lands;
	// re-preparing or re-committing a committed epoch is a no-op.
	if err := wk.commit(base + 2); !errors.Is(err, rpc.ErrWrongEpoch) {
		t.Fatalf("commit unstaged: %v, want wrongEpoch", err)
	}
	if err := wk.commit(base + 1); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if wk.Epoch() != base+1 {
		t.Fatalf("epoch %d, want %d", wk.Epoch(), base+1)
	}
	if err := wk.commit(base + 1); err != nil {
		t.Fatalf("re-commit: %v", err)
	}
	if err := wk.prepare(base+1, deltas[0]); err != nil {
		t.Fatalf("prepare committed: %v", err)
	}

	// Two more publishes: only the last two committed epochs stay
	// resident, the base epoch is pruned.
	for i, db := range deltas[1:] {
		e := base + 2 + i
		if err := wk.prepare(e, db); err != nil {
			t.Fatalf("prepare %d: %v", e, err)
		}
		if err := wk.commit(e); err != nil {
			t.Fatalf("commit %d: %v", e, err)
		}
	}
	if wk.Epoch() != base+3 {
		t.Fatalf("epoch %d, want %d", wk.Epoch(), base+3)
	}
	if wk.at(base) != nil || wk.at(base+1) != nil {
		t.Fatal("epochs beyond the two-epoch window still resident")
	}
	if wk.at(base+2) == nil || wk.at(base+3) == nil {
		t.Fatal("last two committed epochs must stay resident")
	}
}
