// Recommend: RWR-based item recommendation over a user-tag-item graph,
// the scenario of Konstas et al. (SIGIR 2009) that the paper's
// introduction motivates. Users connect to tags they applied and items
// they consumed; tags connect to the items they describe. The top-k RWR
// proximities from a user — restricted to item nodes the user has not
// seen — are the recommendations.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"kdash"
)

const (
	nUsers = 200
	nTags  = 50
	nItems = 400
	k      = 5
)

func main() {
	// Node layout: users [0, nUsers), tags [nUsers, nUsers+nTags),
	// items [nUsers+nTags, n).
	n := nUsers + nTags + nItems
	tag := func(t int) int { return nUsers + t }
	item := func(i int) int { return nUsers + nTags + i }

	rng := rand.New(rand.NewSource(42))
	b := kdash.NewBuilder(n)
	add := func(u, v int, w float64) {
		if err := b.AddEdge(u, v, w); err != nil {
			log.Fatal(err)
		}
		if err := b.AddEdge(v, u, w); err != nil {
			log.Fatal(err)
		}
	}
	seen := make([]map[int]bool, nUsers)
	// Each user has one "taste" cluster of tags; items belong to tags.
	for i := 0; i < nItems; i++ {
		t := i * nTags / nItems
		add(item(i), tag(t), 2)
		if rng.Float64() < 0.3 { // some items span two tags
			add(item(i), tag((t+1)%nTags), 1)
		}
	}
	for u := 0; u < nUsers; u++ {
		seen[u] = map[int]bool{}
		taste := u * nTags / nUsers
		for e := 0; e < 6; e++ {
			t := taste
			if rng.Float64() < 0.25 {
				t = rng.Intn(nTags)
			}
			add(u, tag(t), 1)
			// Consume a random item under that tag.
			it := t*nItems/nTags + rng.Intn(nItems/nTags)
			add(u, item(it), 3)
			seen[u][item(it)] = true
		}
	}
	g := b.Build()

	ix, err := kdash.BuildIndex(g, kdash.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tripartite graph: %d users, %d tags, %d items (%d edges)\n\n", nUsers, nTags, nItems, g.M())

	for _, user := range []int{3, 77, 150} {
		// Ask for extra results: user/tag nodes and already-seen items
		// are filtered out of the ranking.
		rs, _, err := ix.TopK(user, k+60)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user %d -> recommended items:\n", user)
		count := 0
		for _, r := range rs {
			if r.Node < nUsers+nTags || seen[user][r.Node] {
				continue // not an item, or already consumed
			}
			count++
			fmt.Printf("  %d. item %-5d score %.6f\n", count, r.Node-nUsers-nTags, r.Score)
			if count == k {
				break
			}
		}
		fmt.Println()
	}
}
