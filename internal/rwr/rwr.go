// Package rwr implements the reference Random Walk with Restart
// computations: the iterative power method (the paper's Equation (1),
// used as the exactness oracle in tests and the precision baseline in
// experiments) and a dense direct solve for small graphs.
package rwr

import (
	"fmt"
	"math"

	"kdash/internal/sparse"
	"kdash/internal/topk"
)

// DefaultRestart is the restart probability c used throughout the paper's
// evaluation (Section 6).
const DefaultRestart = 0.95

// DefaultTol is the L1 convergence tolerance for the iterative method.
const DefaultTol = 1e-12

// DefaultMaxIter bounds the iterative method. With c = 0.95 the iteration
// contracts by 0.05 per step, so convergence is fast; lower c needs more
// iterations and this bound is generous.
const DefaultMaxIter = 10000

// Iterative computes the full proximity vector p for query node q by
// recursively applying p = (1-c) A p + c q until the L1 change is below
// tol. A must be the column-normalised adjacency (CSC). It returns the
// proximity vector and the number of iterations performed.
func Iterative(a *sparse.CSC, q int, c, tol float64, maxIter int) ([]float64, int, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, 0, fmt.Errorf("rwr: adjacency must be square, got %dx%d", a.Rows, a.Cols)
	}
	if q < 0 || q >= n {
		return nil, 0, fmt.Errorf("rwr: query node %d outside [0,%d)", q, n)
	}
	if c <= 0 || c >= 1 {
		return nil, 0, fmt.Errorf("rwr: restart probability %v outside (0,1)", c)
	}
	if tol <= 0 {
		tol = DefaultTol
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	p := make([]float64, n)
	next := make([]float64, n)
	p[q] = 1
	oneMinusC := 1 - c
	for it := 1; it <= maxIter; it++ {
		a.MulVecTo(next, p)
		for i := range next {
			next[i] *= oneMinusC
		}
		next[q] += c
		diff := 0.0
		for i := range next {
			diff += math.Abs(next[i] - p[i])
		}
		p, next = next, p
		if diff < tol {
			return p, it, nil
		}
	}
	return p, maxIter, fmt.Errorf("rwr: no convergence within %d iterations (last diff above %g)", maxIter, tol)
}

// IterativeVec generalises Iterative to an arbitrary restart distribution
// (Personalized PageRank, the paper's footnote 6): p = (1-c) A p + c r,
// where r is a non-negative vector summing to 1.
func IterativeVec(a *sparse.CSC, restart []float64, c, tol float64, maxIter int) ([]float64, int, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, 0, fmt.Errorf("rwr: adjacency must be square, got %dx%d", a.Rows, a.Cols)
	}
	if len(restart) != n {
		return nil, 0, fmt.Errorf("rwr: restart vector has length %d, want %d", len(restart), n)
	}
	sum := 0.0
	for _, v := range restart {
		if v < 0 {
			return nil, 0, fmt.Errorf("rwr: restart vector has negative entry %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, 0, fmt.Errorf("rwr: restart vector sums to %v, want 1", sum)
	}
	if c <= 0 || c >= 1 {
		return nil, 0, fmt.Errorf("rwr: restart probability %v outside (0,1)", c)
	}
	if tol <= 0 {
		tol = DefaultTol
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	p := make([]float64, n)
	copy(p, restart)
	next := make([]float64, n)
	for it := 1; it <= maxIter; it++ {
		a.MulVecTo(next, p)
		for i := range next {
			next[i] = (1-c)*next[i] + c*restart[i]
		}
		diff := 0.0
		for i := range next {
			diff += math.Abs(next[i] - p[i])
		}
		p, next = next, p
		if diff < tol {
			return p, it, nil
		}
	}
	return p, maxIter, fmt.Errorf("rwr: no convergence within %d iterations", maxIter)
}

// TopK runs the iterative method and extracts the K highest-proximity
// nodes, which is the paper's definition of the exact answer.
func TopK(a *sparse.CSC, q, k int, c float64) ([]topk.Result, error) {
	p, _, err := Iterative(a, q, c, DefaultTol, DefaultMaxIter)
	if err != nil {
		return nil, err
	}
	return topk.FromVector(p, k), nil
}

// DenseSolve computes p = c W^{-1} q exactly by Gaussian elimination on
// the dense n x n system (Equation (2)). Only suitable for small n; used
// to cross-check both the iterative method and the LU-based computation.
func DenseSolve(a *sparse.CSC, q int, c float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("rwr: adjacency must be square, got %dx%d", a.Rows, a.Cols)
	}
	if q < 0 || q >= n {
		return nil, fmt.Errorf("rwr: query node %d outside [0,%d)", q, n)
	}
	// Build W = I - (1-c) A densely.
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		w[i][i] = 1
	}
	for col := 0; col < n; col++ {
		for i := a.ColPtr[col]; i < a.ColPtr[col+1]; i++ {
			w[a.RowIdx[i]][col] -= (1 - c) * a.Val[i]
		}
	}
	b := make([]float64, n)
	b[q] = c
	// Gaussian elimination with partial pivoting.
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(w[r][col]) > math.Abs(w[piv][col]) {
				piv = r
			}
		}
		if math.Abs(w[piv][col]) < 1e-300 {
			return nil, fmt.Errorf("rwr: singular system at column %d", col)
		}
		w[col], w[piv] = w[piv], w[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < n; r++ {
			f := w[r][col] / w[col][col]
			if f == 0 {
				continue
			}
			for cc := col; cc < n; cc++ {
				w[r][cc] -= f * w[col][cc]
			}
			b[r] -= f * b[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		s := b[col]
		for cc := col + 1; cc < n; cc++ {
			s -= w[col][cc] * b[cc]
		}
		b[col] = s / w[col][col]
	}
	return b, nil
}
