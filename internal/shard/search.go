package shard

// Cross-shard query path. Queries run a shard-granular push on the
// regular splitting W = D - (1-c)A_cross: D's diagonal blocks are the
// per-shard factorized matrices, A_cross the cut edges. The push keeps a
// residual right-hand side per shard and repeatedly solves the shard with
// the most pending mass through its inverted factors, propagating
// (1-c)-scaled solved mass along cut edges. The accumulated solution x
// approaches the true proximity vector monotonically from below with
// per-entry error bounded by (residual mass)/c, so shards whose pending
// inflow falls under the tolerance are pruned unsolved and the final
// ranking is exact within QueryTol/c.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"kdash/internal/core"
	"kdash/internal/topk"
)

// QueryStats reports per-query work at shard granularity.
type QueryStats struct {
	Solves         int     // per-shard factor solves performed
	ShardsSolved   int     // distinct shards solved at least once
	ShardsPruned   int     // shards with pending inflow never solved
	NodesEvaluated int     // proximity values computed (summed solve support sizes)
	ResidualMass   float64 // unprocessed mass at termination
	Converged      bool    // residual fell below tolerance
}

// maxSolves bounds a single query's shard solves; the geometric residual
// decay makes reaching it impossible in practice (it would take a restart
// probability within 1e-4 of zero).
const maxSolves = 100000

// push runs the block push from the given scaled restart vector (global
// node id -> mass, already multiplied by c) and returns per-shard
// accumulated proximity vectors; untouched shards stay nil.
func (sx *ShardedIndex) push(seeds map[int]float64) ([][]float64, QueryStats) {
	return sx.pushWeighted(seeds, nil)
}

// pushWeighted is push with optional per-shard influence weights. A nil
// weight vector is the full push: every shard weighs 1 and the loop runs
// until the raw residual falls under tolerance, bounding every proximity
// entry. A weight vector (from pairWeights) discounts each shard's
// pending mass by how much of it can ever reach the target shard, so the
// push both prioritises relevant shards and terminates as soon as the
// target's entries are settled, even while irrelevant mass remains.
//
// The returned vectors are caller-owned copies; the hot query paths
// (TopK, Proximity, ProximityVector) consume the pooled push state
// directly instead and never materialise.
//
//kdash:deterministic
func (sx *ShardedIndex) pushWeighted(seeds map[int]float64, w []float64) ([][]float64, QueryStats) {
	st := sx.getPushState()
	for _, g := range seedNodesSorted(seeds) {
		st.seed(g, seeds[g])
	}
	qs, _ := st.run(w) // no context and no RemoteSolver on this path: run cannot fail
	x := st.materialize()
	sx.putPushState(st)
	return x, qs
}

// seedNodesSorted returns a seed map's keys in ascending node order.
// Seeding order reaches the solver's right-hand side through residual
// accumulation, and a map-ordered float sum drifts bits between runs —
// every seeding loop must iterate this slice, never the map.
func seedNodesSorted(seeds map[int]float64) []int {
	nodes := make([]int, 0, len(seeds))
	for g := range seeds { //kdash:allow(determinism) keys only: sorted below, before any mass is accumulated
		nodes = append(nodes, g)
	}
	sort.Ints(nodes)
	return nodes
}

// partLen is the shard graph's node count (owned nodes + ghost sink).
func (sx *ShardedIndex) partLen(si int) int {
	p := sx.parts[si]
	if p.sink {
		return len(p.nodes) + 1
	}
	return len(p.nodes)
}

// rank merges per-shard proximity vectors into one exact top-k answer —
// the batched path's merge, which gets dense materialised vectors. (The
// single-query path ranks from the pooled state's touched lists instead;
// see pushState.rank.) The no-exclusions case skips the map lookup
// entirely: a nil-map access still pays a runtime call, and rank touches
// every positive entry of every solved shard.
func (sx *ShardedIndex) rank(x [][]float64, k int, exclude map[int]bool) []topk.Result {
	heap := topk.New(k)
	for si, xs := range x {
		if xs == nil {
			continue
		}
		nodes := sx.parts[si].nodes
		if len(exclude) == 0 {
			for lv, v := range xs {
				if v > 0 {
					heap.Push(nodes[lv], v)
				}
			}
			continue
		}
		for lv, v := range xs {
			if v > 0 {
				g := nodes[lv]
				if !exclude[g] {
					heap.Push(g, v)
				}
			}
		}
	}
	return heap.Results()
}

// TopK returns the K nodes with the highest RWR proximity w.r.t. query
// node q, matching the monolithic core.Index.TopK ranking (proximities
// agree within QueryTol/c). Results use original node ids, sorted by
// descending proximity with ties broken by ascending node id.
func (sx *ShardedIndex) TopK(q, k int) ([]topk.Result, QueryStats, error) {
	return sx.topK(q, k, core.SearchOptions{})
}

//kdash:deterministic
func (sx *ShardedIndex) topK(q, k int, opt core.SearchOptions) ([]topk.Result, QueryStats, error) {
	var qs QueryStats
	if q < 0 || q >= sx.n {
		return nil, qs, fmt.Errorf("shard: query node %d outside [0,%d)", q, sx.n)
	}
	if k <= 0 {
		return nil, qs, fmt.Errorf("shard: K must be positive, got %d", k)
	}
	st := sx.getPushState()
	st.ctx, st.tr = opt.Ctx, opt.Trace
	var tPush time.Time
	if opt.Trace != nil {
		tPush = time.Now() //kdash:allow(determinism) phase timing feeds only the trace block
	}
	st.seed(q, sx.c)
	qs, err := st.run(nil)
	if err != nil {
		sx.putPushState(st)
		return nil, qs, err
	}
	var tRank time.Time
	if opt.Trace != nil {
		tRank = time.Now() //kdash:allow(determinism) phase timing feeds only the trace block
		opt.Trace.SolveNS += tRank.Sub(tPush).Nanoseconds()
	}
	results := st.rank(k, opt.Exclude)
	if opt.Trace != nil {
		opt.Trace.RankNS += time.Since(tRank).Nanoseconds() //kdash:allow(determinism) phase timing feeds only the trace block
	}
	sx.putPushState(st)
	return results, qs, nil
}

// Search serves a query through the core.SearchOptions surface so a
// ShardedIndex is a drop-in engine for internal/server. K, Exclude,
// Ctx (cancellation between shard solves) and Trace (per-query push
// trace) are honoured; the monolithic ablation knobs (DisablePruning,
// RandomRoot) have no shard-level counterpart and are ignored.
func (sx *ShardedIndex) Search(q int, opt core.SearchOptions) ([]topk.Result, core.SearchStats, error) {
	results, qs, err := sx.topK(q, opt.K, opt)
	return results, qs.searchStats(), err
}

// searchStats maps shard-level work onto the monolithic stats shape:
// every evaluated node received an exact proximity, and a pruned shard is
// the shard-granular analogue of early termination.
func (qs QueryStats) searchStats() core.SearchStats {
	return core.SearchStats{
		Visited:               qs.NodesEvaluated,
		ProximityComputations: qs.NodesEvaluated,
		Terminated:            qs.ShardsPruned > 0,
	}
}

// TopKPersonalized generalises TopK to a restart distribution, mirroring
// core.Index.TopKPersonalized: the walk restarts into the seed nodes with
// probability proportional to their weights. Validation, weight
// normalisation and seeding all iterate the seed nodes in ascending
// order: the normalising sum and the seeded residuals feed float
// accumulation, where map iteration order would drift bits between runs.
//
//kdash:deterministic
func (sx *ShardedIndex) TopKPersonalized(seeds map[int]float64, k int) ([]topk.Result, core.SearchStats, error) {
	var qs QueryStats
	if k <= 0 {
		return nil, qs.searchStats(), fmt.Errorf("shard: K must be positive, got %d", k)
	}
	if len(seeds) == 0 {
		return nil, qs.searchStats(), fmt.Errorf("shard: empty seed set")
	}
	nodes := seedNodesSorted(seeds)
	total := 0.0
	for _, node := range nodes {
		w := seeds[node]
		if node < 0 || node >= sx.n {
			return nil, qs.searchStats(), fmt.Errorf("shard: seed node %d outside [0,%d)", node, sx.n)
		}
		if w <= 0 {
			return nil, qs.searchStats(), fmt.Errorf("shard: seed node %d has non-positive weight %v", node, w)
		}
		total += w
	}
	st := sx.getPushState()
	for _, node := range nodes {
		st.seed(node, sx.c*seeds[node]/total)
	}
	qs, err := st.run(nil)
	if err != nil {
		sx.putPushState(st)
		return nil, qs.searchStats(), err
	}
	results := st.rank(k, nil)
	sx.putPushState(st)
	return results, qs.searchStats(), nil
}

// pairWeights returns the weight vector for target shard su, memoized
// per target shard on the index: before the memo every Proximity(q,u)
// call redid the reverse shard BFS and weight computation from scratch.
// Concurrent first calls may compute the (identical, immutable) vector
// twice; one of the stores wins and every later call hits the cache.
func (sx *ShardedIndex) pairWeights(su int) []float64 {
	sx.pairWOnce.Do(func() { sx.pairW = make([]atomic.Pointer[[]float64], len(sx.parts)) })
	if w := sx.pairW[su].Load(); w != nil {
		return *w
	}
	w := sx.computePairWeights(su)
	sx.pairW[su].Store(&w)
	return w
}

// computePairWeights bounds, per shard, how much of a unit of pending
// residual mass can ever influence a proximity entry inside shard su, so
// a single-pair query can stop pushing long before the global residual
// is driven to tolerance. The bound: solving unit mass in any shard
// yields solution mass at most 1/c (|W_s^{-1} m|_1 <= |m|_1/c), of which
// at most (1-c)/c =: λ leaves across cut edges. Mass sitting d
// cut-crossings away from su therefore delivers at most λ^d/(1-λ) into
// su over the rest of the push (geometric sum over path lengths >= d),
// and each delivered unit raises an entry of su by at most 1/c — the
// same 1/c the full push's global bound uses, so weighting shard masses
// by
//
//	w(su) = 1,  w(s') = min(1, λ^{d(s')}/(1-λ)),  w(unreachable) = 0
//
// and terminating at (Σ_s w(s)·resMass[s]) <= tol preserves exactly the
// full push's per-entry guarantee for shard su. Shards with no directed
// cut path into su get weight zero: their mass is never solved at all,
// which restores near-O(1) single-pair cost when q's mass cannot reach u.
// For c <= 1/2 the geometric sum diverges and every reachable shard
// falls back to the global weight 1.
func (sx *ShardedIndex) computePairWeights(su int) []float64 {
	s := len(sx.parts)
	dist := make([]int, s)
	for i := range dist {
		dist[i] = -1
	}
	dist[su] = 0
	queue := append(make([]int, 0, s), su)
	rev := sx.reverseShardAdj()
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, p := range rev[v] {
			if dist[p] < 0 {
				dist[p] = dist[v] + 1
				queue = append(queue, p)
			}
		}
	}
	lambda := (1 - sx.c) / sx.c
	w := make([]float64, s)
	for si := range w {
		switch {
		case dist[si] == 0:
			w[si] = 1
		case dist[si] < 0:
			w[si] = 0
		case lambda < 1:
			wi := math.Pow(lambda, float64(dist[si])) / (1 - lambda)
			if wi > 1 {
				wi = 1
			}
			w[si] = wi
		default:
			w[si] = 1
		}
	}
	return w
}

// Proximity computes the exact proximity of node u w.r.t. query q. The
// push is weighted towards u's shard (pairWeights), so it terminates as
// soon as that shard's entries are settled instead of driving the global
// residual to tolerance — the single-pair analogue of the monolithic
// index answering one pair from one row-column product.
//
//kdash:deterministic
func (sx *ShardedIndex) Proximity(q, u int) (float64, error) {
	if q < 0 || q >= sx.n || u < 0 || u >= sx.n {
		return 0, fmt.Errorf("shard: node pair (%d,%d) outside [0,%d)", q, u, sx.n)
	}
	st := sx.getPushState()
	st.seed(q, sx.c)
	if _, err := st.run(sx.pairWeights(sx.home[u])); err != nil {
		sx.putPushState(st)
		return 0, err
	}
	p := 0.0
	// Untouched state entries are zero by the pool invariant, so the
	// single entry can be read directly once the shard has been solved.
	if si := sx.home[u]; st.solved[si] {
		p = st.x[si][sx.local[u]]
	}
	sx.putPushState(st)
	return p, nil
}

// ProximityVector computes the full proximity vector for q in original
// node-id order.
//
//kdash:deterministic
func (sx *ShardedIndex) ProximityVector(q int) ([]float64, error) {
	return sx.ProximityVectorCtx(nil, q)
}

// ProximityVectorCtx is ProximityVector with cancellation: the push
// checks ctx between shard solves (never per node), so a query that
// blows its request budget mid-vector is abandoned with the context's
// error instead of running to convergence. A nil ctx never fails.
//
//kdash:deterministic
func (sx *ShardedIndex) ProximityVectorCtx(ctx context.Context, q int) ([]float64, error) {
	if q < 0 || q >= sx.n {
		return nil, fmt.Errorf("shard: query node %d outside [0,%d)", q, sx.n)
	}
	st := sx.getPushState()
	st.ctx = ctx
	st.seed(q, sx.c)
	if _, err := st.run(nil); err != nil {
		sx.putPushState(st)
		return nil, err
	}
	out := make([]float64, sx.n)
	for si := range sx.parts {
		if !st.solved[si] {
			continue
		}
		nodes := sx.parts[si].nodes
		if st.xdense[si] {
			for lv, v := range st.x[si] {
				out[nodes[lv]] = v
			}
		} else {
			for _, lv := range st.xsup[si] {
				out[nodes[lv]] = st.x[si][lv]
			}
		}
	}
	sx.putPushState(st)
	return out, nil
}
