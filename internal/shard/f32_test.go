package shard

// Differential lane for the opt-in float32 factor mode: build the same
// graph at both precisions and measure the divergence of every
// proximity value. The float64 build is the oracle — it is the exact
// mode the paper's guarantee covers — and the float32 build must stay
// within a small relative envelope of it: values are stored at 24-bit
// significands but widened to float64 before every multiply and
// accumulated in float64, so the error is a few ulps of float32 per
// factor entry, not a compounding float32 accumulation. The asserted
// bound (1e-5 relative) is deliberately loose against the measured
// worst case (~1e-7 on these graphs, logged by the test) so the test
// pins the contract documented in docs/ARCHITECTURE.md without being
// noise-brittle.

import (
	"math"
	"math/rand"
	"testing"

	"kdash/internal/lu"
	"kdash/internal/reorder"
	"kdash/internal/testutil"
)

func TestFloat32DifferentialErrorBound(t *testing.T) {
	const relBound = 1e-5
	const absFloor = 1e-12
	worst := 0.0
	diverged := false
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.Random(rng)
		exact, err := Build(g, Options{Shards: 4, Reorder: reorder.Hybrid, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		half, err := Build(g, Options{Shards: 4, Reorder: reorder.Hybrid, Seed: seed, Precision: lu.Float32})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, q := range rng.Perm(g.N())[:8] {
			v64, err := exact.ProximityVector(q)
			if err != nil {
				t.Fatalf("seed %d q %d: %v", seed, q, err)
			}
			v32, err := half.ProximityVector(q)
			if err != nil {
				t.Fatalf("seed %d q %d: %v", seed, q, err)
			}
			for i := range v64 {
				if math.Float64bits(v64[i]) != math.Float64bits(v32[i]) {
					diverged = true
				}
				d := math.Abs(v32[i] - v64[i])
				if v64[i] >= absFloor {
					if rel := d / v64[i]; rel > worst {
						worst = rel
					}
				} else if d > absFloor {
					t.Fatalf("seed %d q %d node %d: float32 mode drifted %v on a ~zero proximity", seed, q, i, d)
				}
			}
		}
	}
	if worst > relBound {
		t.Fatalf("float32 mode worst relative error %.3g exceeds the documented bound %.1g", worst, relBound)
	}
	if !diverged {
		t.Fatal("float32 mode returned bit-identical values everywhere — the reduced-precision path is not engaged")
	}
	t.Logf("float32 mode worst relative error: %.3g (documented bound %.1g)", worst, relBound)
}
