package reorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kdash/internal/gen"
	"kdash/internal/graph"
)

func isPermutation(perm []int) bool {
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

func TestAllMethodsProducePermutations(t *testing.T) {
	g := gen.PlantedPartition(150, 3, 0.2, 0.01, 1)
	for _, m := range append(Methods, Natural) {
		perm := Compute(g, m, 42)
		if len(perm) != g.N() {
			t.Errorf("%v: length %d", m, len(perm))
		}
		if !isPermutation(perm) {
			t.Errorf("%v: not a permutation", m)
		}
	}
}

func TestDegreeOrderAscending(t *testing.T) {
	// Star graph: center has max degree, must come last.
	b := graph.NewBuilder(6)
	for i := 1; i < 6; i++ {
		if err := b.AddUndirected(0, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	perm := Compute(g, Degree, 0)
	if perm[0] != 5 {
		t.Errorf("hub should be placed last, perm[0] = %d", perm[0])
	}
	// Leaves keep relative order (stable sort, equal degrees).
	for i := 1; i < 6; i++ {
		if perm[i] != i-1 {
			t.Errorf("leaf %d placed at %d, want %d", i, perm[i], i-1)
		}
	}
}

func TestInvertRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		perm := rng.Perm(n)
		inv := Invert(perm)
		for old, new := range perm {
			if inv[new] != old {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestClusterKeepsCommunitiesContiguous(t *testing.T) {
	// Two cliques with one bridge: non-border nodes of each clique occupy
	// contiguous new positions before the border partition.
	b := graph.NewBuilder(10)
	addClique := func(nodes []int) {
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				if err := b.AddUndirected(nodes[i], nodes[j], 1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	addClique([]int{0, 1, 2, 3, 4})
	addClique([]int{5, 6, 7, 8, 9})
	if err := b.AddUndirected(4, 5, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	perm := Compute(g, Cluster, 1)
	// Border nodes 4 and 5 must take the two highest positions.
	if perm[4] < 8 || perm[5] < 8 {
		t.Errorf("border nodes should be last: perm[4]=%d perm[5]=%d", perm[4], perm[5])
	}
	// Remaining clique-1 nodes contiguous.
	pos := []int{perm[0], perm[1], perm[2], perm[3]}
	min, max := pos[0], pos[0]
	for _, p := range pos {
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	if max-min != 3 {
		t.Errorf("clique-1 interior not contiguous: %v", pos)
	}
}

func TestHybridSortsWithinPartitionByDegree(t *testing.T) {
	// One community: a path 0-1-2-3 plus extra edges at node 3. With one
	// partition hybrid should place low-degree nodes first.
	b := graph.NewBuilder(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {3, 0}, {3, 1}} {
		if err := b.AddUndirected(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	perm := Compute(g, Hybrid, 2)
	// Node 3 has the highest degree within its partition.
	for u := 0; u < 5; u++ {
		if u != 3 && PartitionOf(perm, u) > PartitionOf(perm, 3) {
			// With a single community all nodes share the partition, so
			// node 3 must come after every lower-degree node within it.
			t.Errorf("node %d placed after higher-degree node 3", u)
		}
	}
	_ = perm
}

// PartitionOf is a trivial helper for the test above: with one partition
// the new index is the within-partition position.
func PartitionOf(perm []int, u int) int { return perm[u] }

func TestRandomOrderDeterministicPerSeed(t *testing.T) {
	g := gen.ErdosRenyi(60, 180, 3)
	a := Compute(g, Random, 11)
	b := Compute(g, Random, 11)
	c := Compute(g, Random, 12)
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed gave different random orders")
	}
	if !diff {
		t.Error("different seeds gave identical random orders")
	}
}

func TestNaturalIsIdentity(t *testing.T) {
	g := gen.ErdosRenyi(20, 50, 4)
	perm := Compute(g, Natural, 0)
	for i, p := range perm {
		if p != i {
			t.Fatalf("natural order not identity at %d", i)
		}
	}
}

func TestPartitionSizesSum(t *testing.T) {
	g := gen.PlantedPartition(120, 4, 0.25, 0.01, 5)
	sizes := PartitionSizes(g, 1)
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != g.N() {
		t.Errorf("partition sizes sum to %d, want %d", total, g.N())
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{Degree: "Degree", Cluster: "Cluster", Hybrid: "Hybrid", Random: "Random", Natural: "Natural"}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
}
