//go:build amd64 && !noasm

package kernels

// AVX2 dispatch. The kernels need AVX2 (VBROADCASTSD, VPERMILPD, the
// VEX-encoded scalar adds) plus OS support for saving YMM state, probed
// once at init via CPUID/XGETBV — no build-time assumption beyond
// baseline amd64. Machines without AVX2 keep the scalar reference.

// cpuid executes CPUID for (eaxIn, ecxIn); implemented in cpu_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask.
func xgetbv0() (eax, edx uint32)

// hasAVX2 reports CPU and OS support for the AVX2 kernels.
func hasAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if c&osxsave == 0 || c&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX): the OS saves YMM registers.
	xlo, _ := xgetbv0()
	if xlo&6 != 6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return b&avx2 != 0
}

// Assembly kernels; see scatter_amd64.s.
func scatterAXPYAVX2(dst []float64, rows []int32, vals []float64, x float64)
func scatterAXPY32AVX2(dst []float64, rows []int32, vals []float32, x float64)
func scatterBlock8AVX2(dst []float64, rows []int32, vals []float64, x *[8]float64)

func init() {
	if hasAVX2() {
		scatterAXPY = scatterAXPYAVX2
		scatterAXPY32 = scatterAXPY32AVX2
		scatterBlock8 = scatterBlock8AVX2
		implName = "avx2"
	}
}
