package shard

import (
	"math/rand"
	"testing"

	"kdash/internal/graph"
	"kdash/internal/reorder"
	"kdash/internal/testutil"
	"kdash/internal/topk"
)

// rebuildOracle builds the from-scratch index Apply must be
// bit-identical to: same graph, same pinned assignment, same build
// inputs.
func rebuildOracle(t *testing.T, sx *ShardedIndex) *ShardedIndex {
	t.Helper()
	oracle, err := Build(sx.Graph(), Options{
		Restart:    sx.Restart(),
		Reorder:    reorder.Hybrid,
		Seed:       1,
		Assignment: sx.Assignment(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return oracle
}

// requireBitIdentical asserts two indexes answer a query spread with
// exactly equal results — same nodes, same order, same float bits.
func requireBitIdentical(t *testing.T, got, want *ShardedIndex, k int) {
	t.Helper()
	if got.N() != want.N() || got.Shards() != want.Shards() {
		t.Fatalf("shape: got n=%d s=%d, want n=%d s=%d", got.N(), got.Shards(), want.N(), want.Shards())
	}
	for q := 0; q < got.N(); q += 1 + got.N()/23 {
		a, _, err := got.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := want.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("q=%d: %d vs %d results", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("q=%d i=%d: %v vs %v", q, i, a[i], b[i])
			}
		}
	}
}

func TestApplyIntraShardEdgeRebuildsOneShard(t *testing.T) {
	g := testutil.Clustered(160, 4, 3)
	sx := buildSharded(t, g, 4, 0.95)
	// Find an intra-shard edge.
	var from, to = -1, -1
	for _, e := range g.Edges() {
		if e.From != e.To && sx.HomeShard(e.From) == sx.HomeShard(e.To) {
			from, to = e.From, e.To
			break
		}
	}
	if from < 0 {
		t.Fatal("no intra-shard edge in test graph")
	}
	d := g.NewDelta()
	if err := d.AddEdge(from, to, 2.5); err != nil {
		t.Fatal(err)
	}
	sx2, us, err := sx.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if us.ShardsRebuilt != 1 || us.CutsPatched != 1 || us.Repartitioned || us.CutCrossing != 0 {
		t.Fatalf("stats = %+v, want exactly one shard rebuilt", us)
	}
	if sx2.Epoch() != 1 {
		t.Fatalf("epoch = %d", sx2.Epoch())
	}
	// Untouched shards are shared by pointer with the old epoch.
	shared := 0
	for si := range sx.parts {
		if sx.parts[si] == sx2.parts[si] {
			shared++
		}
	}
	if shared != 3 {
		t.Fatalf("%d parts shared, want 3", shared)
	}
	requireBitIdentical(t, sx2, rebuildOracle(t, sx2), 8)
	// Old epoch still answers on the old graph.
	requireBitIdentical(t, sx, rebuildOracle(t, sx), 8)
}

func TestApplyCutCrossingEdge(t *testing.T) {
	g := testutil.Clustered(160, 4, 7)
	sx := buildSharded(t, g, 4, 0.95)
	// A brand-new edge between nodes in different shards.
	var from, to = -1, -1
	for u := 0; u < g.N() && from < 0; u++ {
		for v := 0; v < g.N(); v++ {
			if sx.HomeShard(u) != sx.HomeShard(v) {
				from, to = u, v
				break
			}
		}
	}
	d := g.NewDelta()
	if err := d.AddEdge(from, to, 1.5); err != nil {
		t.Fatal(err)
	}
	sx2, us, err := sx.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if us.CutCrossing != 1 || us.ShardsRebuilt != 1 {
		t.Fatalf("stats = %+v", us)
	}
	if sx2.Stats().CutEdges != sx.Stats().CutEdges+1 {
		t.Fatalf("cut edges %d, want %d", sx2.Stats().CutEdges, sx.Stats().CutEdges+1)
	}
	requireBitIdentical(t, sx2, rebuildOracle(t, sx2), 8)

	// And removing it again restores the original answers (modulo the
	// epoch counter).
	d2 := sx2.Graph().NewDelta()
	if err := d2.RemoveEdge(from, to); err != nil {
		t.Fatal(err)
	}
	sx3, _, err := sx2.Apply(d2)
	if err != nil {
		t.Fatal(err)
	}
	if sx3.Epoch() != 2 {
		t.Fatalf("epoch = %d", sx3.Epoch())
	}
	requireBitIdentical(t, sx3, sx, 8)
}

func TestApplyNodeInsertionGoesToLeastLoadedShard(t *testing.T) {
	g := testutil.PowerLaw(90, 5)
	sx := buildSharded(t, g, 3, 0.95)
	smallest := 0
	for si, sz := range sx.Stats().Sizes {
		if sz < sx.Stats().Sizes[smallest] {
			smallest = si
		}
	}
	d := g.NewDelta()
	id := d.AddNode()
	if err := d.AddEdge(id, 4, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(7, id, 1); err != nil {
		t.Fatal(err)
	}
	sx2, us, err := sx.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if us.NodesAdded != 1 {
		t.Fatalf("stats = %+v", us)
	}
	if sx2.HomeShard(id) != smallest {
		t.Fatalf("node %d homed to shard %d, want least-loaded %d", id, sx2.HomeShard(id), smallest)
	}
	if sx2.N() != 91 {
		t.Fatalf("n = %d", sx2.N())
	}
	requireBitIdentical(t, sx2, rebuildOracle(t, sx2), 8)
	// The inserted node both ranks and is ranked.
	rs, _, err := sx2.TopK(id, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("inserted node sees nothing")
	}
}

func TestApplyStalenessTriggersRepartition(t *testing.T) {
	g := testutil.Clustered(120, 3, 9)
	sx, err := Build(g, Options{Shards: 3, Reorder: reorder.Hybrid, Seed: 1, StalenessLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Insert nodes one batch at a time until a repartition fires. Each
	// inserted node is wired into nodes of shard 2's community, so once
	// re-homing runs they should migrate toward their neighbours.
	anchor := -1
	for u := 0; u < g.N(); u++ {
		if sx.HomeShard(u) == 2 {
			anchor = u
			break
		}
	}
	repartitioned := false
	var us UpdateStats
	for round := 0; round < 10 && !repartitioned; round++ {
		d := sx.Graph().NewDelta()
		for j := 0; j < 3; j++ { // spread across all shards' staleness counters
			id := d.AddNode()
			if err := d.AddEdge(id, anchor, 5); err != nil {
				t.Fatal(err)
			}
			if err := d.AddEdge(anchor, id, 5); err != nil {
				t.Fatal(err)
			}
		}
		sx, us, err = sx.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		repartitioned = repartitioned || us.Repartitioned
	}
	if !repartitioned {
		t.Fatal("staleness limit 4 never triggered a repartition across 10 insertions")
	}
	if us.NodesMoved == 0 {
		t.Error("repartition moved nothing")
	}
	// Every shard still owns nodes and answers still match a from-scratch
	// build on the final assignment.
	for si, sz := range sx.Stats().Sizes {
		if sz == 0 {
			t.Fatalf("shard %d emptied", si)
		}
	}
	requireBitIdentical(t, sx, rebuildOracle(t, sx), 6)
}

func TestApplyValidation(t *testing.T) {
	g := testutil.ErdosRenyi(40, 160, 2)
	sx := buildSharded(t, g, 3, 0.95)
	// Mismatched delta base.
	if _, _, err := sx.Apply(graph.NewDelta(g.N() + 5)); err == nil {
		t.Error("mismatched delta base accepted")
	}
	// Removal of a nonexistent edge fails and leaves the index usable.
	d := g.NewDelta()
	var missing [2]int
	em := map[[2]int]bool{}
	for _, e := range g.Edges() {
		em[[2]int{e.From, e.To}] = true
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u != v && !em[[2]int{u, v}] {
				missing = [2]int{u, v}
			}
		}
	}
	if err := d.RemoveEdge(missing[0], missing[1]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sx.Apply(d); err == nil {
		t.Error("removal of missing edge accepted")
	}
	if _, _, err := sx.TopK(0, 3); err != nil {
		t.Errorf("index unusable after failed Apply: %v", err)
	}
}

func TestBuildWithPinnedAssignment(t *testing.T) {
	g := testutil.PowerLaw(60, 11)
	rng := rand.New(rand.NewSource(1))
	asg := make([]int, g.N())
	for u := range asg {
		asg[u] = rng.Intn(4)
	}
	sx, err := Build(g, Options{Assignment: asg, Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sx.Shards() != 4 {
		t.Fatalf("shards = %d", sx.Shards())
	}
	for u, want := range asg {
		if sx.HomeShard(u) != want {
			t.Fatalf("node %d homed to %d, want %d", u, sx.HomeShard(u), want)
		}
	}
	// The pinned build stays exact versus the monolithic index.
	mono := buildMono(t, g, 0.95)
	for _, q := range []int{0, 17, 59} {
		want, _, err := mono.TopK(q, 7)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := sx.TopK(q, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswerSet(got, want, scoreTol) {
			t.Fatalf("q=%d: got %v want %v", q, got, want)
		}
	}
	// Degenerate assignments are rejected.
	if _, err := Build(g, Options{Assignment: []int{0}}); err == nil {
		t.Error("short assignment accepted")
	}
	bad := make([]int, g.N()) // all zeros but claims shard 2 via one entry
	bad[0] = 2
	if _, err := Build(g, Options{Assignment: bad}); err == nil {
		t.Error("assignment with empty shard accepted")
	}
	neg := make([]int, g.N())
	neg[3] = -1
	if _, err := Build(g, Options{Assignment: neg}); err == nil {
		t.Error("negative assignment accepted")
	}
}

// TestApplyChainMatchesOracleEveryStep drives a random op mix through a
// chain of Applies, asserting the bit-identity invariant after every
// step and exactness against the iterative oracle at the end (that half
// lives in the differential harness; here we pin the chain mechanics).
func TestApplyChainMatchesOracleEveryStep(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := testutil.PowerLaw(100, 21)
	sx := buildSharded(t, g, 4, 0.95)
	for step := 0; step < 6; step++ {
		d := testutil.RandomDelta(rng, sx.Graph(), 5)
		next, us, err := sx.Apply(d)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if us.Epoch != step+1 {
			t.Fatalf("step %d: epoch %d", step, us.Epoch)
		}
		sx = next
		requireBitIdentical(t, sx, rebuildOracle(t, sx), 7)
	}
}

var _ = topk.Result{} // keep the import stable across edits
