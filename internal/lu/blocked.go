package lu

// Blocked column-strip storage for the inverse factors: the layout the
// internal/lu/kernels scatter kernels consume. Each column's entries
// are padded to a multiple of kernels.Width with entries that point at
// a dedicated trash row (index N, value 0), so a kernel can process a
// column in whole 4-wide lanes with no tail loop and no bounds checks.
// Offsets hold both the padded strip bounds (ColPtr, what the kernels
// iterate) and the true entry counts (ColCnt, what bookkeeping passes
// iterate), and indices are int32 — half the index bandwidth of the
// []int factors, which matters as much as the vector lanes on a
// load-bound scatter.

import (
	"fmt"
	"math"
	"sync"

	"kdash/internal/lu/kernels"
	"kdash/internal/sparse"
)

// BlockedCSC is a column-major factor in blocked strip form. Column j's
// true entries are Rows[ColPtr[j]:ColPtr[j]+ColCnt[j]] (parallel Vals),
// and its padded strip — what the SIMD kernels walk — runs to
// ColPtr[j+1]. Destination vectors must have N+1 slots: slot N is the
// trash row the padding entries land in.
type BlockedCSC struct {
	// N is the column count and the destination-domain size; row
	// indices lie in [0, N], with N the trash row.
	N int
	// All four strips are immutable after construction; under -mmap
	// they alias a PROT_READ file mapping.
	//
	//kdash:readonly
	ColPtr []int32 // padded strip offsets, len N+1, each strip a multiple of kernels.Width
	//kdash:readonly
	ColCnt []int32 // true entry counts per column, len N
	//kdash:readonly
	Rows []int32 // row indices; padding entries hold N
	//kdash:readonly
	Vals []float64 // values; padding entries hold 0

	vals32Once sync.Once
	vals32     []float32
}

// NNZ reports the padded entry count (the stored size, not the
// mathematical nonzero count — that is the sum of ColCnt).
func (b *BlockedCSC) NNZ() int { return len(b.Rows) }

// Vals32 returns the float32 rendering of the value strip, built lazily
// once for the opt-in reduced-precision mode and immutable afterwards.
// It is derived, never persisted: a float32 index on disk would pin the
// precision choice at build time instead of open time.
func (b *BlockedCSC) Vals32() []float32 {
	b.vals32Once.Do(func() {
		v := make([]float32, len(b.Vals))
		for i, x := range b.Vals {
			v[i] = float32(x)
		}
		b.vals32 = v
	})
	return b.vals32
}

// BlockFromCSC converts a column-major factor to blocked strip form.
// remap, if non-nil, is a permutation applied to every row index — the
// caller's output-domain mapping baked into the layout so the scatter
// lands directly in caller ids. Returns nil when the padded layout
// would overflow int32 indexing; callers keep the scalar path then.
//
//kdash:mutates-factors
func BlockFromCSC(m *sparse.CSC, remap []int) *BlockedCSC {
	n := m.Cols
	if n >= math.MaxInt32 {
		return nil
	}
	padded := 0
	for j := 0; j < n; j++ {
		padded += kernels.Pad(m.ColPtr[j+1] - m.ColPtr[j])
	}
	if padded > math.MaxInt32 {
		return nil
	}
	b := &BlockedCSC{
		N:      n,
		ColPtr: make([]int32, n+1),
		ColCnt: make([]int32, n),
		Rows:   make([]int32, padded),
		Vals:   make([]float64, padded),
	}
	at := int32(0)
	for j := 0; j < n; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		b.ColPtr[j] = at
		b.ColCnt[j] = int32(hi - lo)
		for p := lo; p < hi; p++ {
			r := m.RowIdx[p]
			if remap != nil {
				r = remap[r]
			}
			b.Rows[at] = int32(r)
			b.Vals[at] = m.Val[p]
			at++
		}
		for k := hi - lo; k%kernels.Width != 0; k++ {
			b.Rows[at] = int32(n) // trash row, value 0
			at++
		}
	}
	b.ColPtr[n] = at
	return b
}

// Validate bounds-checks a blocked factor that was not built by this
// process — the deep check copy-mode index loads run so a corrupt file
// surfaces as an error at load time rather than a panic at first use.
func (b *BlockedCSC) Validate() error { return b.validate() }

// validate bounds-checks a blocked factor that was not built by this
// process (an mmap-loaded strip): the assembly kernels trust row
// indices without checking, so a corrupt file must be rejected before
// the first kernel call, not segfault inside one. One O(nnz) pass,
// run once per loaded strip.
func (b *BlockedCSC) validate() error {
	if len(b.ColPtr) != b.N+1 || len(b.ColCnt) != b.N {
		return fmt.Errorf("blocked factor: offset shapes %d/%d for n=%d", len(b.ColPtr), len(b.ColCnt), b.N)
	}
	if len(b.Rows) != len(b.Vals) {
		return fmt.Errorf("blocked factor: %d rows vs %d vals", len(b.Rows), len(b.Vals))
	}
	if b.N > 0 && b.ColPtr[0] != 0 {
		return fmt.Errorf("blocked factor: first offset %d", b.ColPtr[0])
	}
	if int(b.ColPtr[b.N]) != len(b.Rows) {
		return fmt.Errorf("blocked factor: final offset %d for %d entries", b.ColPtr[b.N], len(b.Rows))
	}
	trash := int32(b.N)
	for j := 0; j < b.N; j++ {
		lo, hi := b.ColPtr[j], b.ColPtr[j+1]
		w := hi - lo
		if w < 0 || w%kernels.Width != 0 {
			return fmt.Errorf("blocked factor: column %d strip width %d", j, w)
		}
		cnt := b.ColCnt[j]
		if cnt < 0 || cnt > w || w-cnt >= kernels.Width {
			return fmt.Errorf("blocked factor: column %d count %d in strip %d", j, cnt, w)
		}
		for p := lo; p < lo+cnt; p++ {
			if r := b.Rows[p]; r < 0 || r > trash {
				return fmt.Errorf("blocked factor: row %d out of range at entry %d", r, p)
			}
		}
		for p := lo + cnt; p < hi; p++ {
			if b.Rows[p] != trash || b.Vals[p] != 0 {
				return fmt.Errorf("blocked factor: bad padding at entry %d", p)
			}
		}
	}
	return nil
}
