// Package placement implements distributed shard serving: a Worker that
// owns (a subset of) the shards and answers factor-solve RPCs against
// real factors, and a Coordinator that runs the greedy cross-shard push
// locally over a factorless index, routing every solve to the worker the
// placement map assigns the shard to. The shared on-disk manifest is the
// placement's source of truth: every process opens the same index
// directory, so node→shard assignment, cut lists and epoch numbering
// agree byte-for-byte across the cluster, and the coordinator's answers
// are bit-identical to a single process serving the same directory (see
// docs/ARCHITECTURE.md, "Distributed serving").
//
// Updates publish in two phases: the coordinator fans the delta out as
// Prepare (workers refactorize their dirty shards off to the side),
// commits only when every worker has the epoch staged, and binds each
// query to one epoch's solver — so no query ever sees mixed epochs. A
// worker that missed updates (restart, partition) answers wrongEpoch and
// is healed by replaying the coordinator's update chain.
package placement

import (
	"fmt"
	"net"
	"sync"

	"kdash/internal/core"
	"kdash/internal/graph"
	"kdash/internal/rpc"
	"kdash/internal/shard"
)

// Worker serves one process's share of the solve load. It holds the
// last two committed epochs of the index (so queries bound to the
// previous epoch keep resolving during and shortly after a publish)
// plus any staged-but-uncommitted epoch from an in-flight two-phase
// publish. All methods are safe for concurrent RPC connections.
//
// A Worker deliberately owns a full copy of the index — shards are
// opened lazily, so only the shards the placement actually routes here
// are ever faulted in, and applying the full delta per epoch keeps the
// worker's factors bit-identical to a single process applying the same
// chain.
type Worker struct {
	mu     sync.RWMutex
	cur    int
	epochs map[int]*shard.ShardedIndex
	staged map[int]*shard.ShardedIndex
}

// NewWorker wraps an opened index as an RPC-servable worker.
func NewWorker(sx *shard.ShardedIndex) *Worker {
	return &Worker{
		cur:    sx.Epoch(),
		epochs: map[int]*shard.ShardedIndex{sx.Epoch(): sx},
		staged: map[int]*shard.ShardedIndex{},
	}
}

// at returns the committed index for epoch, or nil.
func (wk *Worker) at(epoch int) *shard.ShardedIndex {
	wk.mu.RLock()
	sx := wk.epochs[epoch]
	wk.mu.RUnlock()
	return sx
}

// Handle implements rpc.Handler.
func (wk *Worker) Handle(op uint8, body []byte) ([]byte, error) {
	switch op {
	case rpc.OpPing:
		return nil, nil
	case rpc.OpHello:
		wk.mu.RLock()
		cur := wk.cur
		sx := wk.epochs[cur]
		wk.mu.RUnlock()
		return rpc.AppendHelloResponse(nil, rpc.HelloResponse{N: sx.N(), Shards: sx.Shards(), Epoch: cur}), nil
	case rpc.OpSolve:
		epoch, si, idx, val, err := rpc.DecodeSolveRequest(body)
		if err != nil {
			return nil, err
		}
		sx := wk.at(epoch)
		if sx == nil {
			return nil, rpc.ErrWrongEpoch
		}
		y, ysup, err := sx.SolveShardSparse(si, idx, val)
		if err != nil {
			return nil, err
		}
		return rpc.AppendSolveResponse(nil, y, ysup, sx.PartLen(si)), nil
	case rpc.OpBatchSolve:
		epoch, si, rhs, err := rpc.DecodeBatchSolveRequest(body)
		if err != nil {
			return nil, err
		}
		sx := wk.at(epoch)
		if sx == nil {
			return nil, rpc.ErrWrongEpoch
		}
		ys, sups, err := sx.SolveShardBatch(si, rhs)
		if err != nil {
			return nil, err
		}
		return rpc.AppendBatchSolveResponse(nil, ys, sups, core.BlockWidth, sx.ShardNodes(si)), nil
	case rpc.OpPrepare:
		epoch, deltaBytes, err := rpc.DecodePrepareRequest(body)
		if err != nil {
			return nil, err
		}
		return nil, wk.prepare(epoch, deltaBytes)
	case rpc.OpCommit:
		epoch, err := rpc.DecodeEpochRequest(body)
		if err != nil {
			return nil, err
		}
		return nil, wk.commit(epoch)
	case rpc.OpAbort:
		epoch, err := rpc.DecodeEpochRequest(body)
		if err != nil {
			return nil, err
		}
		wk.mu.Lock()
		delete(wk.staged, epoch)
		wk.mu.Unlock()
		return nil, nil
	default:
		return nil, fmt.Errorf("placement: unknown op %d", op)
	}
}

// prepare stages the delta as the given epoch: the refactorization of
// dirty shards runs outside the lock against the current epoch, so
// in-flight solves keep answering while the new epoch builds. Prepare
// is idempotent (a committed or already-staged epoch succeeds without
// re-applying — the RPC layer may replay a call whose response was
// torn) and answers wrongEpoch for anything but the next epoch, which
// tells the coordinator to replay its chain.
func (wk *Worker) prepare(epoch int, deltaBytes []byte) error {
	wk.mu.Lock()
	if epoch <= wk.cur || wk.staged[epoch] != nil {
		wk.mu.Unlock()
		return nil
	}
	if epoch != wk.cur+1 {
		wk.mu.Unlock()
		return rpc.ErrWrongEpoch
	}
	base := wk.epochs[wk.cur]
	wk.mu.Unlock()

	batch, err := graph.UnmarshalDelta(deltaBytes)
	if err != nil {
		return err
	}
	next, _, err := base.Apply(batch)
	if err != nil {
		return err
	}
	wk.mu.Lock()
	defer wk.mu.Unlock()
	if epoch <= wk.cur || wk.staged[epoch] != nil {
		return nil // a concurrent replay won; results are identical bits
	}
	if epoch != wk.cur+1 {
		return rpc.ErrWrongEpoch
	}
	wk.staged[epoch] = next
	return nil
}

// commit publishes a staged epoch. Idempotent for already-committed
// epochs; wrongEpoch when the stage is missing. Only the last two
// committed epochs stay resident — a query bound to an older epoch gets
// wrongEpoch and the coordinator degrades it to unavailable.
func (wk *Worker) commit(epoch int) error {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	if epoch <= wk.cur {
		return nil
	}
	next := wk.staged[epoch]
	if next == nil || epoch != wk.cur+1 {
		return rpc.ErrWrongEpoch
	}
	delete(wk.staged, epoch)
	wk.epochs[epoch] = next
	wk.cur = epoch
	for e := range wk.epochs {
		if e < wk.cur-1 {
			delete(wk.epochs, e)
		}
	}
	return nil
}

// Epoch reports the worker's current committed epoch.
func (wk *Worker) Epoch() int {
	wk.mu.RLock()
	defer wk.mu.RUnlock()
	return wk.cur
}

// ServeWorker serves solve and publish RPCs for sx on ln until the
// listener closes.
func ServeWorker(ln net.Listener, sx *shard.ShardedIndex) error {
	return rpc.Serve(ln, NewWorker(sx))
}
