// Linkpred: RWR-based link prediction on a co-authorship network, the
// scenario of Liben-Nowell & Kleinberg (CIKM 2003) that the paper's
// introduction motivates. For an author, the non-neighbours with the
// highest RWR proximity are the most likely future collaborators; we
// validate by hiding a fraction of edges and checking how many hidden
// collaborators the prediction recovers.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"kdash"
	"kdash/internal/dataset"
)

func main() {
	full := dataset.Citation().Graph
	fmt.Printf("co-authorship network: %d authors, %d links\n", full.N(), full.M())

	// Hide 20% of each sampled author's collaborations.
	rng := rand.New(rand.NewSource(7))
	type hidden struct{ u, v int }
	hiddenSet := map[hidden]bool{}
	b := kdash.NewBuilder(full.N())
	for _, e := range full.Edges() {
		if e.From < e.To && rng.Float64() < 0.2 {
			hiddenSet[hidden{e.From, e.To}] = true
			continue
		}
		if e.From < e.To {
			if err := b.AddEdge(e.From, e.To, e.Weight); err != nil {
				log.Fatal(err)
			}
			if err := b.AddEdge(e.To, e.From, e.Weight); err != nil {
				log.Fatal(err)
			}
		}
	}
	train := b.Build()

	ix, err := kdash.BuildIndex(train, kdash.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	neighbours := func(g *kdash.Graph, u int) map[int]bool {
		out := map[int]bool{}
		g.OutNeighbors(u, func(v int, _ float64) { out[v] = true })
		return out
	}

	const k = 10
	hits, total := 0, 0
	authors := []int{5, 120, 333, 640, 1001, 1400}
	for _, author := range authors {
		known := neighbours(train, author)
		rs, _, err := ix.TopK(author, k+len(known)+1)
		if err != nil {
			log.Fatal(err)
		}
		var preds []int
		for _, r := range rs {
			if r.Node != author && !known[r.Node] {
				preds = append(preds, r.Node)
				if len(preds) == k {
					break
				}
			}
		}
		authorHits := 0
		for _, p := range preds {
			u, v := author, p
			if u > v {
				u, v = v, u
			}
			if hiddenSet[hidden{u, v}] {
				authorHits++
			}
		}
		hits += authorHits
		total += k
		fmt.Printf("author %-5d top-%d predictions recover %d hidden collaborations\n", author, k, authorHits)
	}
	fmt.Printf("\noverall hit rate: %d/%d (random guessing would expect ~%.2f)\n",
		hits, total, float64(total)*float64(len(hiddenSet))/float64(train.N()*train.N()/2))
}
