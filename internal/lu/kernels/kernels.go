// Package kernels holds the arch-specific inner loops of the solve path:
// the triangular scatter (dst[rows[k]] += vals[k]*x) that both the
// L^{-1} pass and the support-driven U^{-1} apply bottom out in, and the
// 8-lane block variant the batch solver uses. Implementations are
// selected once at init — hand-written AVX2 on amd64, FMA-fused
// assembly on arm64, pure Go everywhere else or under the `noasm` build
// tag — and every assembly kernel is property-tested bit-identical to
// the scalar reference on the architecture it runs on.
//
// # Bit-identity contract
//
// Each kernel applies exactly the multiply-and-accumulate sequence of
// its scalar reference, in the same order, so swapping implementations
// never changes a single output bit on a given architecture:
//
//   - On amd64 the Go compiler does not fuse a*b+c into an FMA, so the
//     AVX2 kernels use separate VMULPD/VADDSD steps — never FMA — to
//     round exactly where the scalar loop rounds.
//   - On arm64 the Go compiler does fuse a*b+c (FMADDD), so the arm64
//     kernels use the same fused form. Cross-architecture results may
//     differ in the last bit — they already do for the pure-Go loops —
//     but within one architecture every implementation agrees.
//
// Callers guarantee three things the kernels exploit instead of
// checking: rows and vals have equal length, every rows[k] indexes
// inside dst (the blocked factor strips are bounds-checked once when
// built or loaded), and — for the 4-lane kernels — the length is a
// multiple of four, with padding entries pointing at a dedicated trash
// row carrying value 0 (a zero product cannot flip the sign bit of a
// real accumulator, and the trash row is never read).
package kernels

// Width is the entry-count alignment the 4-wide float64 kernels
// require: blocked factor columns are padded to a multiple of Width.
const Width = 4

// Pad rounds an entry count up to the kernel alignment.
func Pad(n int) int { return (n + Width - 1) &^ (Width - 1) }

// MinEntries is the column size below which a fused scalar loop over
// the blocked strip beats a kernel call: the scatter is store-latency
// bound, so on short columns the dispatch call and the split
// bookkeeping/accumulate passes cost more than 4-wide value loads
// save. Callers run columns shorter than this through their scalar
// loop (same entry order, so the choice never changes an output bit)
// and call the kernel for the rest.
const MinEntries = 24

// Impl names the active implementation ("avx2", "neon" or "scalar"),
// for /statz and the kernels benchmark.
func Impl() string { return implName }

var implName = "scalar"

// Dispatch targets, rebound by the arch init when the CPU qualifies.
var (
	scatterAXPY   = ScalarScatterAXPY
	scatterAXPY32 = ScalarScatterAXPY32
	scatterBlock8 = ScalarScatterBlock8
)

// ScatterAXPY computes dst[rows[k]] += vals[k] * x for every k in
// ascending order. len(rows) must equal len(vals) and be a multiple of
// Width; every rows[k] must index inside dst (see the package comment
// for the padding contract).
//
//kdash:noalloc
func ScatterAXPY(dst []float64, rows []int32, vals []float64, x float64) {
	scatterAXPY(dst, rows, vals, x)
}

// ScatterAXPY32 is ScatterAXPY over float32 value strips: each value is
// widened to float64 exactly, then multiplied and accumulated in
// float64 — the half-width bandwidth of the opt-in float32 factor mode
// without accumulating in reduced precision.
//
//kdash:noalloc
func ScatterAXPY32(dst []float64, rows []int32, vals []float32, x float64) {
	scatterAXPY32(dst, rows, vals, x)
}

// ScatterBlock8 computes dst[rows[k]*8+v] += vals[k] * x[v] for v in
// 0..7, for every k in ascending order — the 8-lane batch kernel. dst
// is the interleaved block workspace (lane v of row r at dst[r*8+v]);
// every rows[k]*8+8 must be within dst. Unlike the 4-lane kernels the
// entry count needs no alignment: each entry is already eight lanes of
// work.
//
//kdash:noalloc
func ScatterBlock8(dst []float64, rows []int32, vals []float64, x *[8]float64) {
	scatterBlock8(dst, rows, vals, x)
}

// ScalarScatterAXPY is the pure-Go reference for ScatterAXPY: the exact
// accumulation sequence the assembly kernels must reproduce bit for bit.
//
//kdash:noalloc
func ScalarScatterAXPY(dst []float64, rows []int32, vals []float64, x float64) {
	vals = vals[:len(rows)] // hint: drops the vals[k] bounds check
	for k, r := range rows {
		dst[r] += vals[k] * x
	}
}

// ScalarScatterAXPY32 is the pure-Go reference for ScatterAXPY32.
//
//kdash:noalloc
func ScalarScatterAXPY32(dst []float64, rows []int32, vals []float32, x float64) {
	vals = vals[:len(rows)]
	for k, r := range rows {
		dst[r] += float64(vals[k]) * x
	}
}

// ScalarScatterBlock8 is the pure-Go reference for ScatterBlock8.
//
//kdash:noalloc
func ScalarScatterBlock8(dst []float64, rows []int32, vals []float64, x *[8]float64) {
	vals = vals[:len(rows)]
	for k, r := range rows {
		base := int(r) * 8
		d := dst[base : base+8 : base+8]
		v := vals[k]
		d[0] += v * x[0]
		d[1] += v * x[1]
		d[2] += v * x[2]
		d[3] += v * x[3]
		d[4] += v * x[4]
		d[5] += v * x[5]
		d[6] += v * x[6]
		d[7] += v * x[7]
	}
}
