package core

import (
	"math"
	"math/rand"
	"testing"

	"kdash/internal/gen"
	"kdash/internal/lu"
	"kdash/internal/reorder"
)

func batchTestIndex(t *testing.T, seed int64, n int) *Index {
	t.Helper()
	g := gen.PlantedPartition(n, 4, 0.2, 0.02, seed)
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestTopKBatchMatchesSingle is the monolithic half of the batch
// exactness property: batched answers must be identical — node ids and
// bit-equal scores — to per-query TopK, across random graphs and the
// acceptance batch sizes.
func TestTopKBatchMatchesSingle(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		ix := batchTestIndex(t, seed, 150)
		rng := rand.New(rand.NewSource(seed))
		for _, nb := range []int{1, 7, 64} {
			qs := make([]int, nb)
			for i := range qs {
				qs[i] = rng.Intn(ix.N())
			}
			got, stats, err := ix.TopKBatch(qs, 5)
			if err != nil {
				t.Fatal(err)
			}
			for i, q := range qs {
				want, wantStats, err := ix.TopK(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				if len(got[i]) != len(want) {
					t.Fatalf("seed %d nb %d query %d: %d results, want %d", seed, nb, i, len(got[i]), len(want))
				}
				for j := range want {
					if got[i][j].Node != want[j].Node || got[i][j].Score != want[j].Score {
						t.Errorf("seed %d nb %d query %d rank %d: %+v vs %+v", seed, nb, i, j, got[i][j], want[j])
					}
				}
				if stats[i] != wantStats {
					t.Errorf("seed %d nb %d query %d: stats %+v vs %+v", seed, nb, i, stats[i], wantStats)
				}
			}
		}
	}
}

func TestSearchBatchExclude(t *testing.T) {
	ix := batchTestIndex(t, 1, 120)
	queries := []BatchQuery{
		{Q: 3, K: 4},
		{Q: 3, K: 4, Exclude: map[int]bool{3: true}},
		{Q: 9, K: 2, Exclude: map[int]bool{9: true, 11: true}},
	}
	got, _, err := ix.SearchBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, bq := range queries {
		want, _, err := ix.Search(bq.Q, SearchOptions{K: bq.K, Exclude: bq.Exclude})
		if err != nil {
			t.Fatal(err)
		}
		if len(got[i]) != len(want) {
			t.Fatalf("query %d: %d results, want %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Errorf("query %d rank %d: %+v vs %+v", i, j, got[i][j], want[j])
			}
		}
		for _, r := range got[i] {
			if bq.Exclude[r.Node] {
				t.Errorf("query %d: excluded node %d in answer", i, r.Node)
			}
		}
	}
}

// TestSearchBatchValidatesUpFront checks that a bad query anywhere in the
// block fails the whole batch before any work runs.
func TestSearchBatchValidatesUpFront(t *testing.T) {
	ix := batchTestIndex(t, 1, 60)
	for _, queries := range [][]BatchQuery{
		{{Q: 0, K: 3}, {Q: -1, K: 3}},
		{{Q: 0, K: 3}, {Q: ix.N(), K: 3}},
		{{Q: 0, K: 3}, {Q: 1, K: 0}},
		{{Q: 0, K: 3}, {Q: 1, K: -2}},
	} {
		if _, _, err := ix.SearchBatch(queries); err == nil {
			t.Errorf("queries %+v: no error", queries)
		}
	}
	if rs, stats, err := ix.SearchBatch(nil); err != nil || len(rs) != 0 || len(stats) != 0 {
		t.Errorf("empty batch: %v %v %v", rs, stats, err)
	}
}

// TestSolveBatchMatchesSolve pins the block solve against the
// single-RHS path within accumulation-order tolerance.
func TestSolveBatchMatchesSolve(t *testing.T) {
	ix := batchTestIndex(t, 2, 100)
	rng := rand.New(rand.NewSource(7))
	n := ix.N()
	rs := make([][]float64, 5)
	for b := range rs {
		r := make([]float64, n)
		if b%2 == 0 {
			r[rng.Intn(n)] = 1
		} else {
			for i := 0; i < 10; i++ {
				r[rng.Intn(n)] += rng.Float64()
			}
		}
		rs[b] = r
	}
	// Keep pristine copies: SolveBatch must not mutate its inputs.
	orig := make([][]float64, len(rs))
	for b := range rs {
		orig[b] = append([]float64(nil), rs[b]...)
	}
	got, err := ix.SolveBatch(rs)
	if err != nil {
		t.Fatal(err)
	}
	for b := range rs {
		for i := range rs[b] {
			if rs[b][i] != orig[b][i] {
				t.Fatalf("rhs %d mutated at %d", b, i)
			}
		}
		want, err := ix.Solve(rs[b])
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[b][i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
				t.Errorf("rhs %d entry %d: %v vs %v", b, i, got[b][i], want[i])
			}
		}
	}
	if _, err := ix.SolveBatch([][]float64{make([]float64, n-1)}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if out, err := ix.SolveBatch(nil); err != nil || out != nil {
		t.Errorf("empty batch: %v %v", out, err)
	}
}

// TestBatchSolverMatchesLuReference pins the fused production solver
// (permutation folded in, support-driven scatter, pooled buffers)
// against the plain lu.Inverse.SolveBatch reference kernel, so a
// numeric change to either multi-RHS implementation cannot silently
// diverge from the other.
func TestBatchSolverMatchesLuReference(t *testing.T) {
	ix := batchTestIndex(t, 5, 130)
	rng := rand.New(rand.NewSource(11))
	n := ix.N()
	rs := make([][]float64, 11)
	for b := range rs {
		r := make([]float64, n)
		for i := 0; i < 6; i++ {
			r[rng.Intn(n)] += rng.Float64()
		}
		rs[b] = r
	}
	got, err := ix.SolveBatch(rs)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: permute into internal coordinates, apply the lu block
	// kernel, compare in internal order.
	ref := &lu.Inverse{N: n, Linv: ix.linv, Uinv: ix.uinv}
	rp := make([][]float64, len(rs))
	for b, r := range rs {
		p := make([]float64, n)
		for u, v := range r {
			if v != 0 {
				p[ix.perm[u]] = v
			}
		}
		rp[b] = p
	}
	want := ref.SolveBatch(rp)
	for b := range rs {
		for u := 0; u < n; u++ {
			w, g := want[b][u], got[b][ix.inv[u]]
			if math.Abs(g-w) > 1e-12*(1+math.Abs(w)) {
				t.Fatalf("rhs %d internal row %d: fused %v vs reference %v", b, u, g, w)
			}
		}
	}
}

// TestPersonalizedAfterBatchRefactor guards the shared-workspace refactor
// against regressions in the multi-seed path: the same query through
// TopKPersonalized and a single-seed Search must agree.
func TestPersonalizedAfterBatchRefactor(t *testing.T) {
	ix := batchTestIndex(t, 3, 90)
	single, _, err := ix.TopK(5, 6)
	if err != nil {
		t.Fatal(err)
	}
	pers, _, err := ix.TopKPersonalized(map[int]float64{5: 2.5}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != len(pers) {
		t.Fatalf("%d vs %d results", len(single), len(pers))
	}
	for i := range single {
		if single[i].Node != pers[i].Node || math.Abs(single[i].Score-pers[i].Score) > 1e-12 {
			t.Errorf("rank %d: %+v vs %+v", i, single[i], pers[i])
		}
	}
}
