package shard

// Sharded-index persistence. A sharded index is saved as a *directory*:
// one binary core-index file per shard plus a JSON manifest tying them
// together — the manifest is the unit a deployment ships around, and
// individual shard files are fetched, opened and memory-mapped
// independently.
//
//	indexdir/
//	  manifest.json      version, c, node/shard counts, file names, stats
//	  graph.tsv          graph snapshot (v2+) — what makes the index updatable
//	  assignment.bin     n × uint32 LE: node -> shard
//	  cuts.bin           per-shard outgoing cut edges (binary, see below)
//	  shard-0000.idx     core.Index.Save format (v3: mmapio container), one per shard
//	  ...
//
// Open is the general entry point: LoadOptions select private-copy vs
// memory-mapped backing and eager vs lazy shard opens. Lazy opens read
// only the manifest, assignment and cut lists up front — O(n) bytes,
// no factor data — and defer each shard file (and the graph snapshot)
// to first use, so a 64-shard index answers a query against shard 3
// before shard 60's file is ever touched. Load is the conservative
// eager/copy wrapper. See docs/ARCHITECTURE.md for the byte-level
// format specs (manifest v1/v2/v3, cuts.bin, the sectioned core
// layout).
//
// Local ids are not persisted: both writer and reader assign them by
// ascending global id within each shard, so the assignment array fully
// determines the mapping. The ghost-sink flag is not persisted either —
// a shard has a sink exactly when it has outgoing cut edges, so the cut
// lists determine it before any shard file is opened (the open
// validates the file agrees).

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"kdash/internal/core"
	"kdash/internal/graph"
	"kdash/internal/lu"
	"kdash/internal/mmapio"
	"kdash/internal/reorder"
)

// parseReorder maps a manifest's reorder name back to the method. The
// empty string (v1 manifests) selects Hybrid; with no graph snapshot
// alongside it the value is never replayed anyway.
func parseReorder(name string) (reorder.Method, error) {
	if name == "" {
		return reorder.Hybrid, nil
	}
	return reorder.Parse(name)
}

// ManifestName is the file that marks a directory as a sharded index.
const ManifestName = "manifest.json"

// manifestVersion is bumped whenever the directory layout changes.
// Version 2 added the dynamic-update state: a graph snapshot (edge
// list), the build inputs Apply replays (reorder method, seed), the
// per-shard staleness counters and the epoch number. Version 3 switched
// the shard files to the sectioned (memory-mappable) core format and
// added the shardFormat marker plus per-shard nnz hints, so a lazy open
// can report stats without touching a single shard file. Version 4
// added the write-ahead-log position: the last WAL sequence number this
// snapshot has absorbed (walSeq) and the names of the live WAL segments
// at save time, so crash recovery knows exactly which logged records to
// replay over the snapshot. Version 1–3 directories still load (their
// walSeq is 0: replay everything); v1 additionally rejects Apply,
// having no graph.
const manifestVersion = 4

// shardFormatSectioned marks shard files written in the sectioned v3
// core layout (mmapio container); absent/zero means the legacy v1
// stream. Loads sniff the files either way — the field exists for
// tooling and humans reading the manifest.
const shardFormatSectioned = 3

// manifest is the JSON document written to ManifestName.
type manifest struct {
	Version        int      `json:"version"`
	Restart        float64  `json:"restart"`
	Nodes          int      `json:"nodes"`
	Shards         int      `json:"shards"`
	QueryTol       float64  `json:"queryTol"`
	ShardFiles     []string `json:"shardFiles"`
	AssignmentFile string   `json:"assignmentFile"`
	CutsFile       string   `json:"cutsFile"`

	// Version 2 fields (absent from v1 directories).
	GraphFile      string `json:"graphFile,omitempty"`
	Reorder        string `json:"reorder,omitempty"`
	Seed           int64  `json:"seed,omitempty"`
	Epoch          int    `json:"epoch,omitempty"`
	StalenessLimit int    `json:"stalenessLimit,omitempty"`
	Staleness      []int  `json:"staleness,omitempty"`

	// Version 3 fields.
	ShardFormat int `json:"shardFormat,omitempty"`

	// Version 4 fields: the WAL position this snapshot covers. WALSeq is
	// the last log sequence number whose delta is already folded into the
	// saved factors; recovery replays only records past it. WALSegments
	// records the live segment files at save time — informational (the
	// log's own recovery rescans the directory), useful to operators and
	// tooling deciding what a snapshot depends on.
	WALSeq      uint64   `json:"walSeq,omitempty"`
	WALSegments []string `json:"walSegments,omitempty"`

	Stats struct {
		Sizes         []int   `json:"sizes"`
		CutEdges      int     `json:"cutEdges"`
		CutWeightFrac float64 `json:"cutWeightFrac"`
		NNZInverse    int     `json:"nnzInverse"`
		NNZShards     []int   `json:"nnzShards,omitempty"` // v3: per-shard nnz hints
		Communities   int     `json:"communities"`
		Modularity    float64 `json:"modularity"`
	} `json:"stats"`
}

// IsShardedIndexDir reports whether path is a directory containing a
// sharded-index manifest — the load-time dispatch the CLIs use to decide
// between core.LoadIndex and LoadShardedIndex.
func IsShardedIndexDir(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, ManifestName))
	return err == nil
}

// Save writes the sharded index into dir, creating it if needed. Shard
// files are written in the sectioned v3 core layout, so the directory
// can be re-opened with memory mapping (Open with an mmap mode) —
// including by an index that was itself lazily mapped: saving forces
// any still-deferred shard open, copies nothing that was not already
// resident, and the successor process simply remaps the new files.
func (sx *ShardedIndex) Save(dir string) error {
	return sx.save(dir, false)
}

// SaveLegacy writes the directory in its pre-v3 shape: a version 2
// manifest and legacy v1 shard streams. Deprecated in favour of Save;
// retained so compatibility tests and the cold-start benchmark can
// produce old-format directories.
func (sx *ShardedIndex) SaveLegacy(dir string) error {
	return sx.save(dir, true)
}

func (sx *ShardedIndex) save(dir string, legacy bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: creating index directory: %w", err)
	}
	var m manifest
	m.Version = manifestVersion
	m.Restart = sx.c
	m.Nodes = sx.n
	m.Shards = len(sx.parts)
	m.QueryTol = sx.qtol
	m.AssignmentFile = "assignment.bin"
	m.CutsFile = "cuts.bin"
	m.Reorder = sx.method.String()
	m.Seed = sx.seed
	m.Epoch = sx.epoch
	m.StalenessLimit = sx.stalenessLimit
	m.Staleness = sx.staleness
	m.WALSeq = sx.walSeq
	m.WALSegments = sx.walSegments
	if !legacy {
		m.ShardFormat = shardFormatSectioned
	} else {
		m.Version = 2
	}
	if err := sx.ensureGraph(); err != nil { // a deferred snapshot must materialise to be re-saved
		return fmt.Errorf("shard: loading graph snapshot: %w", err)
	}
	if sx.g != nil {
		m.GraphFile = "graph.tsv"
		if err := writeFile(filepath.Join(dir, m.GraphFile), sx.g.WriteEdgeList); err != nil {
			return fmt.Errorf("shard: saving graph snapshot: %w", err)
		}
	}
	m.Stats.Sizes = sx.stats.Sizes
	m.Stats.CutEdges = sx.stats.CutEdges
	m.Stats.CutWeightFrac = sx.stats.CutWeightFrac
	m.Stats.NNZInverse = sx.stats.NNZInverse
	m.Stats.Communities = sx.stats.Communities
	m.Stats.Modularity = sx.stats.Modularity
	nnzTotal := 0
	for si, p := range sx.parts {
		name := fmt.Sprintf("shard-%04d.idx", si)
		m.ShardFiles = append(m.ShardFiles, name)
		if err := p.openIndex(); err != nil { // force a still-deferred open, as an error
			return fmt.Errorf("shard: saving shard %d: %w", si, err)
		}
		ix := p.index()
		nnzTotal += ix.Stats().NNZInverse
		write := ix.Save
		if legacy {
			write = ix.SaveLegacy
		} else {
			m.Stats.NNZShards = append(m.Stats.NNZShards, ix.Stats().NNZInverse)
		}
		if err := writeFile(filepath.Join(dir, name), write); err != nil {
			return fmt.Errorf("shard: saving shard %d: %w", si, err)
		}
	}
	// Every shard is open now, so the aggregate is exact — re-derive it
	// rather than trusting a possibly hint-carried in-memory value (an
	// update chain over a lazily loaded pre-v3 directory has no per-shard
	// hints to keep the running total precise).
	m.Stats.NNZInverse = nnzTotal
	if err := writeFile(filepath.Join(dir, m.AssignmentFile), sx.writeAssignment); err != nil {
		return fmt.Errorf("shard: saving assignment: %w", err)
	}
	if err := writeFile(filepath.Join(dir, m.CutsFile), sx.writeCuts); err != nil {
		return fmt.Errorf("shard: saving cut edges: %w", err)
	}
	blob, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encoding manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("shard: writing manifest: %w", err)
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (sx *ShardedIndex) writeAssignment(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var buf [4]byte
	for _, si := range sx.home {
		binary.LittleEndian.PutUint32(buf[:], uint32(si))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (sx *ShardedIndex) writeCuts(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var b8 [8]byte
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(b8[:], v)
		_, err := bw.Write(b8[:])
		return err
	}
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(b8[:4], v)
		_, err := bw.Write(b8[:4])
		return err
	}
	for _, p := range sx.parts {
		if err := writeU64(uint64(len(p.cuts))); err != nil {
			return err
		}
		for _, e := range p.cuts {
			if err := writeU32(uint32(e.src)); err != nil {
				return err
			}
			if err := writeU32(uint32(e.dstShard)); err != nil {
				return err
			}
			if err := writeU32(uint32(e.dst)); err != nil {
				return err
			}
			if err := writeU64(math.Float64bits(e.w)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadOptions configures Open.
type LoadOptions struct {
	// Mode selects how shard files are backed: mmapio.ModeMmap and
	// ModeAuto map sectioned (v3) shard files read-only and wrap their
	// arrays in place; mmapio.ModeCopy materialises private copies with
	// every checksum verified. The zero value is ModeAuto (map where
	// the platform supports it); Load passes ModeCopy explicitly to
	// keep its historical fully-private contract. Legacy shard files
	// are parsed into private memory whatever the mode.
	Mode mmapio.Mode
	// Lazy defers each shard file's open to the first query that solves
	// the shard: Open returns after reading only the manifest,
	// assignment, cuts and graph snapshot, so a 64-shard index serves a
	// query against shard 3 before shard 60's file is ever touched.
	// Without Lazy every shard opens (and validates) before Open
	// returns.
	Lazy bool
	// Precision selects the factor value width queries solve with, as
	// Options.Precision does at build time. Persisted files always hold
	// exact float64 factors; lu.Float32 renders half-width value strips
	// at open time.
	Precision lu.Precision
	// PushWorkers enables the speculative parallel cross-shard push for
	// queries against the loaded index, as Options.PushWorkers does at
	// build time (<2 = sequential).
	PushWorkers int
}

// Load reads a sharded index previously written by Save, fully
// materialised in private memory — the conservative default. Use Open
// to memory-map and/or lazily open the shard files.
func Load(dir string) (*ShardedIndex, error) {
	return Open(dir, LoadOptions{Mode: mmapio.ModeCopy})
}

// Open reads a sharded index with explicit backing and laziness
// choices. See LoadOptions; Close releases whatever mappings were
// established.
func Open(dir string, opt LoadOptions) (*ShardedIndex, error) {
	blob, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("shard: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("shard: decoding manifest: %w", err)
	}
	if m.Version < 1 || m.Version > manifestVersion {
		return nil, fmt.Errorf("shard: unsupported manifest version %d (want <= %d)", m.Version, manifestVersion)
	}
	if m.Nodes <= 0 || m.Nodes > 1<<40 || m.Shards <= 0 || m.Shards > m.Nodes || len(m.ShardFiles) != m.Shards {
		return nil, fmt.Errorf("shard: corrupt manifest (nodes=%d shards=%d files=%d)", m.Nodes, m.Shards, len(m.ShardFiles))
	}
	if m.Restart <= 0 || m.Restart >= 1 {
		return nil, fmt.Errorf("shard: corrupt manifest (restart %v)", m.Restart)
	}
	method, err := parseReorder(m.Reorder)
	if err != nil {
		return nil, fmt.Errorf("shard: corrupt manifest: %w", err)
	}
	// File references must be plain names inside the directory.
	names := append([]string{m.AssignmentFile, m.CutsFile}, m.ShardFiles...)
	if m.GraphFile != "" {
		names = append(names, m.GraphFile)
	}
	for _, name := range names {
		if name == "" || name != filepath.Base(name) {
			return nil, fmt.Errorf("shard: corrupt manifest (file reference %q)", name)
		}
	}
	// Bound the node count by the assignment file's actual size before
	// allocating anything node-sized: a corrupt manifest cannot make the
	// loader commit memory the directory does not carry.
	if fi, err := os.Stat(filepath.Join(dir, m.AssignmentFile)); err != nil {
		return nil, fmt.Errorf("shard: checking assignment: %w", err)
	} else if fi.Size() != int64(m.Nodes)*4 {
		return nil, fmt.Errorf("shard: assignment file has %d bytes, want %d for %d nodes", fi.Size(), int64(m.Nodes)*4, m.Nodes)
	}
	sx := &ShardedIndex{
		n:              m.Nodes,
		c:              m.Restart,
		qtol:           m.QueryTol,
		local:          make([]int, m.Nodes),
		parts:          make([]*part, m.Shards),
		method:         method,
		seed:           m.Seed,
		epoch:          m.Epoch,
		stalenessLimit: m.StalenessLimit,
		precision:      opt.Precision,
		pushWorkers:    opt.PushWorkers,
		walSeq:         m.WALSeq,
		walSegments:    m.WALSegments,
	}
	if sx.qtol <= 0 {
		sx.qtol = DefaultQueryTol
	}
	if sx.stalenessLimit == 0 {
		sx.stalenessLimit = DefaultStalenessLimit
	}
	switch {
	case m.Staleness == nil:
		sx.staleness = make([]int, m.Shards)
	case len(m.Staleness) == m.Shards:
		sx.staleness = append([]int(nil), m.Staleness...)
	default:
		return nil, fmt.Errorf("shard: corrupt manifest (%d staleness counters for %d shards)", len(m.Staleness), m.Shards)
	}
	if m.GraphFile != "" {
		path := filepath.Join(dir, m.GraphFile)
		load := func() (*graph.Graph, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, fmt.Errorf("shard: opening graph snapshot: %w", err)
			}
			g, err := graph.ParseEdgeList(f, m.Nodes)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("shard: reading graph snapshot: %w", err)
			}
			if g.N() != m.Nodes {
				return nil, fmt.Errorf("shard: graph snapshot has %d nodes, manifest says %d", g.N(), m.Nodes)
			}
			return g, nil
		}
		if opt.Lazy {
			// The snapshot only matters to Apply and Save; parsing the
			// O(m) edge list has no place on the query cold-start path.
			sx.gLoad = load
		} else if sx.g, err = load(); err != nil {
			return nil, err
		}
	}
	if sx.home, err = readAssignment(filepath.Join(dir, m.AssignmentFile), m.Nodes, m.Shards); err != nil {
		return nil, err
	}
	for i := range sx.parts {
		sx.parts[i] = &part{}
	}
	// Rebuild local ids by the ascending-global-id rule the writer used.
	for u := 0; u < sx.n; u++ {
		p := sx.parts[sx.home[u]]
		sx.local[u] = len(p.nodes)
		p.nodes = append(p.nodes, u)
	}
	for si, p := range sx.parts {
		if len(p.nodes) == 0 {
			return nil, fmt.Errorf("shard: corrupt manifest (shard %d owns no nodes)", si)
		}
	}
	// Cut lists load eagerly (they are small and every shard's residual
	// bookkeeping needs them); they also determine each shard's ghost
	// sink before its file is opened — a shard carries a sink exactly
	// when it has outgoing cut edges, because Build adds one for any
	// positive leaked weight and edge weights are strictly positive.
	if err := sx.readCuts(filepath.Join(dir, m.CutsFile)); err != nil {
		return nil, err
	}
	if m.Stats.NNZShards != nil && len(m.Stats.NNZShards) != m.Shards {
		return nil, fmt.Errorf("shard: corrupt manifest (%d nnz hints for %d shards)", len(m.Stats.NNZShards), m.Shards)
	}
	for si, name := range m.ShardFiles {
		p := sx.parts[si]
		p.sink = len(p.cuts) > 0
		if m.Stats.NNZShards != nil {
			p.nnzHint = m.Stats.NNZShards[si]
			p.nnzHinted = true
		}
		p.lazy = newShardOpener(sx, p, si, filepath.Join(dir, name), opt.Mode)
	}
	sx.mapCapable = opt.Mode != mmapio.ModeCopy && mmapio.MmapSupported() && mmapio.CanZeroCopy()
	if !opt.Lazy {
		if err := sx.OpenAll(); err != nil {
			sx.Close() // release mappings of the shards that did open
			return nil, fmt.Errorf("shard: %w", err)
		}
	}
	sx.stats = BuildStats{
		Shards:        m.Shards,
		Sizes:         m.Stats.Sizes,
		CutEdges:      m.Stats.CutEdges,
		CutWeightFrac: m.Stats.CutWeightFrac,
		NNZInverse:    m.Stats.NNZInverse,
		Communities:   m.Stats.Communities,
		Modularity:    m.Stats.Modularity,
	}
	return sx, nil
}

// newShardOpener builds the deferred open of one shard file: open (v3
// files in the requested mmapio mode, legacy streams by parsing) and
// validate the file against the manifest the directory was loaded with.
// The node-count check pins the cut-derived sink flag: a directory
// whose shard file disagrees with its cut list is corrupt and rejected
// at open time.
func newShardOpener(sx *ShardedIndex, p *part, si int, path string, mode mmapio.Mode) *lazyIndex {
	return &lazyIndex{open: func() (*core.Index, error) {
		ix, err := core.OpenIndexFile(path, mode)
		if err != nil {
			return nil, fmt.Errorf("loading shard %d: %w", si, err)
		}
		want := len(p.nodes)
		if p.sink {
			want++
		}
		if ix.N() != want {
			ix.Close()
			return nil, fmt.Errorf("shard %d has %d nodes, assignment and cuts say %d", si, ix.N(), want)
		}
		// The cut weights are pre-scaled by the manifest's (1-c); a shard
		// file built with a different c would answer silently wrong.
		if ix.Restart() != sx.c {
			ix.Close()
			return nil, fmt.Errorf("shard %d built with restart %v, manifest says %v", si, ix.Restart(), sx.c)
		}
		ix.SetPrecision(sx.precision)
		return ix, nil
	}}
}

func readAssignment(path string, n, shards int) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("shard: opening assignment: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	out := make([]int, n)
	var buf [4]byte
	for u := 0; u < n; u++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("shard: reading assignment: %w", err)
		}
		si := int(binary.LittleEndian.Uint32(buf[:]))
		if si < 0 || si >= shards {
			return nil, fmt.Errorf("shard: corrupt assignment (node %d -> shard %d of %d)", u, si, shards)
		}
		out[u] = si
	}
	return out, nil
}

func (sx *ShardedIndex) readCuts(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("shard: opening cut edges: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var b8 [8]byte
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, b8[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b8[:]), nil
	}
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, b8[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b8[:4]), nil
	}
	for si, p := range sx.parts {
		count, err := readU64()
		if err != nil {
			return fmt.Errorf("shard: reading cut edges of shard %d: %w", si, err)
		}
		if count > uint64(sx.n)*uint64(sx.n) {
			return fmt.Errorf("shard: corrupt cut edges (shard %d claims %d)", si, count)
		}
		p.cuts = make([]cutEdge, count)
		for i := range p.cuts {
			src, err := readU32()
			if err != nil {
				return err
			}
			dstShard, err := readU32()
			if err != nil {
				return err
			}
			dst, err := readU32()
			if err != nil {
				return err
			}
			wBits, err := readU64()
			if err != nil {
				return err
			}
			e := cutEdge{src: int(src), dstShard: int(dstShard), dst: int(dst), w: math.Float64frombits(wBits)}
			if e.src < 0 || e.src >= len(p.nodes) || e.dstShard < 0 || e.dstShard >= len(sx.parts) ||
				e.dst < 0 || e.dst >= len(sx.parts[e.dstShard].nodes) || e.w < 0 || math.IsNaN(e.w) {
				return fmt.Errorf("shard: corrupt cut edge %d of shard %d", i, si)
			}
			if i > 0 && p.cuts[i-1].src > e.src {
				return fmt.Errorf("shard: corrupt cut edges (shard %d not sorted by source)", si)
			}
			p.cuts[i] = e
		}
	}
	// Rebuild the per-source pointers.
	for _, p := range sx.parts {
		p.cutPtr = make([]int, len(p.nodes)+1)
		for _, e := range p.cuts {
			p.cutPtr[e.src+1]++
		}
		for v := 0; v < len(p.nodes); v++ {
			p.cutPtr[v+1] += p.cutPtr[v]
		}
	}
	return nil
}
