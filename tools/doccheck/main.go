// Command doccheck fails when exported identifiers in the given
// package directories lack doc comments — the docs gate CI runs over
// the public kdash package, so the API surface godoc renders never
// silently grows undocumented entries.
//
// Usage:
//
//	go run ./tools/doccheck <dir> [dir...]
//
// Only non-test .go files are checked. An exported const/var inside a
// documented grouped declaration counts as documented (the group doc
// covers it), matching godoc's rendering.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <dir> [dir...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		entries, err := os.ReadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		fset := token.NewFileSet()
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				fmt.Fprintln(os.Stderr, "doccheck:", err)
				os.Exit(2)
			}
			bad += checkFile(fset, f)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) missing doc comments\n", bad)
		os.Exit(1)
	}
}

// checkFile reports each undocumented exported top-level identifier in
// one parsed file and returns how many it found.
func checkFile(fset *token.FileSet, f *ast.File) int {
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		fmt.Printf("%s: exported %s %s has no doc comment\n", fset.Position(pos), kind, name)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			groupDocumented := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && !groupDocumented {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if groupDocumented || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), "const/var", n.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// exportedRecv reports whether a method's receiver type is itself
// exported — methods on unexported types never reach godoc, so they
// are out of scope.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true // plain function
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip generic receiver type parameters.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}
