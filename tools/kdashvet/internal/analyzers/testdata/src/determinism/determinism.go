// Golden tests for the determinism analyzer: //kdash:deterministic call
// graphs must avoid map iteration, wall clocks and math/rand.
package determinism

import (
	"math/rand"
	"time"
)

//kdash:deterministic
func accumulate(weights map[int]float64) float64 {
	var sum float64
	for _, w := range weights { // want `range over map has randomized order in deterministic function accumulate`
		sum += w
	}
	return sum
}

//kdash:deterministic
func accumulateSorted(weights map[int]float64, keys []int) float64 {
	var sum float64
	for _, k := range keys { // ok: slice iteration is ordered
		sum += weights[k]
	}
	return sum
}

//kdash:deterministic
func stamp() int64 {
	return time.Now().UnixNano() // want `wall-clock read time.Now in deterministic function stamp`
}

//kdash:deterministic
func solve(xs []float64) float64 {
	return helper(xs)
}

func helper(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	if len(xs) == 0 {
		return jitter()
	}
	return s
}

func jitter() float64 {
	return rand.Float64() // want `randomness from math/rand.Float64 in deterministic function jitter \(reached from //kdash:deterministic solve\)`
}

func unchecked(m map[int]int) int {
	total := 0
	for _, v := range m { // ok: not in a deterministic call graph
		total += v
	}
	return total
}

//kdash:deterministic
func traced(xs []float64) float64 {
	start := time.Now() //kdash:allow(determinism) trace-only timing, excluded from the result
	s := solve(xs)
	_ = start
	return s
}
