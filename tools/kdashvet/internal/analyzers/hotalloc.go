package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"kdash/tools/kdashvet/internal/framework"
)

// HotAlloc rejects alloc-shaped constructs inside functions annotated
// //kdash:noalloc — the steady-state query hot path (push solve loop,
// top-k heap, sparse-solver scatter), whose 2-allocs-per-query budget is
// the repo's performance brand. Flagged constructs:
//
//   - make / new / allocating composite literals (slice and map
//     literals, which allocate backing, and address-taken literals,
//     which escape; plain value literals are stack copies and pass)
//   - append without capacity evidence: the destination is neither a
//     pool-managed field, a parameter, a make-with-capacity local, a
//     reslice of existing backing, a callee-sized slice, nor the result
//     of an append into one of those
//   - conversions to interface types, explicit or implicit at call
//     boundaries (boxing allocates)
//   - closures, unless immediately invoked or assigned to a local that
//     is only ever called directly (those stay on the stack)
//   - calls into fmt, errors and log (formatting allocates)
//   - string concatenation and string<->[]byte conversions
//   - go statements (a goroutine allocates its stack)
//
// Deliberate cold-path allocations (lazy first-touch sizing, error
// construction on abandoned queries) carry //kdash:allow(hotalloc) with
// a justification. TestTopKSteadyStateAllocs is the runtime cross-check
// that the annotated set matches reality.
var HotAlloc = &framework.Analyzer{
	Name: "hotalloc",
	Doc:  "reports alloc-shaped constructs inside //kdash:noalloc functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !framework.FuncDirectives(fd)["noalloc"] {
				continue
			}
			checkNoAlloc(pass, fd)
		}
	}
	return nil
}

type hotChecker struct {
	pass *framework.Pass
	info *types.Info
	fd   *ast.FuncDecl
	// parents maps each node in the function body to its enclosing node.
	parents map[ast.Node]ast.Node
	// defs records the defining RHS of local slice variables, the basis
	// of append capacity evidence.
	defs map[*types.Var]ast.Expr
	// callOnly marks local function-typed idents whose every use is a
	// direct call (non-escaping closures).
	callOnly map[*types.Var]bool
}

func checkNoAlloc(pass *framework.Pass, fd *ast.FuncDecl) {
	c := &hotChecker{
		pass:     pass,
		info:     pass.TypesInfo,
		fd:       fd,
		parents:  map[ast.Node]ast.Node{},
		defs:     map[*types.Var]ast.Expr{},
		callOnly: map[*types.Var]bool{},
	}
	c.collectDefs()
	c.walk(fd.Body)
}

// collectDefs records, per local variable, its defining expression and
// whether a function-typed local is only ever invoked directly.
func (c *hotChecker) collectDefs() {
	uses := map[*types.Var][]ast.Node{} // enclosing node per use
	var stack []ast.Node
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			c.parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if v, ok := c.info.Defs[id].(*types.Var); ok {
							c.defs[v] = n.Rhs[i]
						}
					}
				}
			}
		case *ast.Ident:
			if v, ok := c.info.Uses[n].(*types.Var); ok && len(stack) >= 2 {
				uses[v] = append(uses[v], stack[len(stack)-2])
			}
		}
		return true
	})
	for v := range c.defs {
		if _, ok := v.Type().Underlying().(*types.Signature); !ok {
			continue
		}
		direct := true
		for _, parent := range uses[v] {
			call, ok := parent.(*ast.CallExpr)
			if !ok || identObj(c.info, call.Fun) != v {
				direct = false
				break
			}
		}
		c.callOnly[v] = direct
	}
}

func (c *hotChecker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if c.litAllocates(n) {
				c.pass.Reportf(n.Pos(), "composite literal allocates in //kdash:noalloc function %s", c.fd.Name.Name)
			}
		case *ast.FuncLit:
			if !c.nonEscapingClosure(n) {
				c.pass.Reportf(n.Pos(), "closure may capture by reference and escape in //kdash:noalloc function %s", c.fd.Name.Name)
			}
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "go statement allocates a goroutine in //kdash:noalloc function %s", c.fd.Name.Name)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(c.info.Types[n].Type) {
				c.pass.Reportf(n.Pos(), "string concatenation allocates in //kdash:noalloc function %s", c.fd.Name.Name)
			}
		case *ast.CallExpr:
			c.call(n)
		}
		return true
	})
}

func (c *hotChecker) call(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Type conversions.
	if tv, ok := c.info.Types[fun]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) == 1 {
			from := c.info.Types[call.Args[0]].Type
			switch {
			case isInterface(to) && from != nil && !isInterface(from) && !isUntypedNil(c.info, call.Args[0]):
				c.pass.Reportf(call.Pos(), "conversion to interface type %s boxes its operand in //kdash:noalloc function %s", types.TypeString(to, nil), c.fd.Name.Name)
			case isString(to) != isString(from) && (isString(to) || isString(from)) && isStringByteConv(to, from):
				c.pass.Reportf(call.Pos(), "string/[]byte conversion copies in //kdash:noalloc function %s", c.fd.Name.Name)
			}
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := c.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				c.pass.Reportf(call.Pos(), "%s allocates in //kdash:noalloc function %s", b.Name(), c.fd.Name.Name)
			case "append":
				if len(call.Args) > 0 && !c.capEvidence(call.Args[0]) {
					c.pass.Reportf(call.Pos(), "append without capacity evidence may grow in //kdash:noalloc function %s (append into a pooled field, parameter, or make-with-cap local instead)", c.fd.Name.Name)
				}
			}
			return
		}
	}

	// Banned formatting packages.
	if fn := calleeFunc(c.info, call); fn != nil {
		switch pkgPathOf(fn) {
		case "fmt", "errors", "log":
			c.pass.Reportf(call.Pos(), "call to %s allocates in //kdash:noalloc function %s", fn.FullName(), c.fd.Name.Name)
			return
		}
	}

	// Implicit interface conversions at the call boundary.
	sig, ok := c.info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		at := c.info.Types[arg].Type
		if pt != nil && at != nil && isInterface(pt) && !isInterface(at) && !isUntypedNil(c.info, arg) {
			c.pass.Reportf(arg.Pos(), "argument boxes %s into interface %s in //kdash:noalloc function %s", types.TypeString(at, nil), types.TypeString(pt, nil), c.fd.Name.Name)
		}
	}
}

// litAllocates reports whether a composite literal allocates: slice and
// map literals always allocate backing, and an address-taken literal
// (&T{…}) is an escape candidate. A plain value literal is a stack copy.
func (c *hotChecker) litAllocates(lit *ast.CompositeLit) bool {
	if t := c.info.Types[lit].Type; t != nil {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map:
			return true
		}
	}
	u, ok := c.parentOf(lit).(*ast.UnaryExpr)
	return ok && u.Op == token.AND
}

// nonEscapingClosure reports whether a func literal provably stays on
// the stack: it is invoked immediately, or bound to a local used only in
// direct call position.
func (c *hotChecker) nonEscapingClosure(fl *ast.FuncLit) bool {
	parent := c.parentOf(fl)
	switch p := parent.(type) {
	case *ast.CallExpr:
		return ast.Unparen(p.Fun) == fl // (func(){...})()
	case *ast.AssignStmt:
		for i, r := range p.Rhs {
			if ast.Unparen(r) == fl && i < len(p.Lhs) {
				if id, ok := p.Lhs[i].(*ast.Ident); ok {
					if v, ok := c.info.Defs[id].(*types.Var); ok {
						return c.callOnly[v]
					}
				}
			}
		}
	}
	return false
}

func (c *hotChecker) parentOf(target ast.Node) ast.Node {
	return c.parents[target]
}

// capEvidence reports whether an append destination has managed
// capacity: pool-backed fields, parameters, reslices, indexed state and
// callee-sized slices all qualify; bare locals from cap-less makes or
// literals do not.
func (c *hotChecker) capEvidence(dst ast.Expr) bool {
	switch e := ast.Unparen(dst).(type) {
	case *ast.SelectorExpr:
		return true // field access: capacity owned by the long-lived struct
	case *ast.IndexExpr:
		return c.capEvidence(e.X)
	case *ast.SliceExpr:
		return true // reslice reuses existing backing (x[:0] reset idiom)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := c.info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "make":
					return len(e.Args) >= 3
				case "append":
					// queue := append(sw.queue[:0], roots...) — evidence
					// flows through to the appendee's backing.
					return len(e.Args) > 0 && c.capEvidence(e.Args[0])
				}
				return false
			}
		}
		return true // callee-sized result
	case *ast.Ident:
		v, ok := c.info.Uses[e].(*types.Var)
		if !ok {
			return false
		}
		if c.isParam(v) {
			return true
		}
		if def, ok := c.defs[v]; ok {
			return c.capEvidence(def)
		}
		return false
	}
	return false
}

func (c *hotChecker) isParam(v *types.Var) bool {
	if c.fd.Type.Params == nil {
		return false
	}
	for _, f := range c.fd.Type.Params.List {
		for _, n := range f.Names {
			if c.info.Defs[n] == v {
				return true
			}
		}
	}
	return false
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

func isStringByteConv(to, from types.Type) bool {
	return (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from))
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
