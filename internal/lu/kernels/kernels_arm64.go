//go:build arm64 && !noasm

package kernels

// arm64 dispatch. NEON and scalar FMA are baseline on arm64, so no
// runtime feature probe is needed; the kernels are installed
// unconditionally. They use fused multiply-adds (FMADDD / VFMLA)
// because the Go compiler fuses a*b+c on arm64 — see the bit-identity
// contract in the package comment.

// Assembly kernels; see scatter_arm64.s.
func scatterAXPYNEON(dst []float64, rows []int32, vals []float64, x float64)
func scatterAXPY32NEON(dst []float64, rows []int32, vals []float32, x float64)
func scatterBlock8NEON(dst []float64, rows []int32, vals []float64, x *[8]float64)

func init() {
	scatterAXPY = scatterAXPYNEON
	scatterAXPY32 = scatterAXPY32NEON
	scatterBlock8 = scatterBlock8NEON
	implName = "neon"
}
