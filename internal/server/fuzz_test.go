package server

// Native fuzz targets for the HTTP mutation and batch surfaces:
// whatever body arrives at POST /update or POST /topk/batch, the
// handler must produce an HTTP response — 200 for the rare valid
// payload, 4xx/5xx otherwise — and never let a panic escape or corrupt
// the engine for subsequent requests. Each iteration gets a fresh
// Handler over one shared immutable base index, so a "successful"
// fuzzed update cannot snowball the graph across iterations.
//
// Run with:
//
//	go test -fuzz=FuzzUpdateEndpoint ./internal/server
//	go test -fuzz=FuzzBatchEndpoint  ./internal/server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"kdash/internal/reorder"
	"kdash/internal/shard"
	"kdash/internal/testutil"
)

var fuzzEngine struct {
	once sync.Once
	sx   *shard.ShardedIndex
	err  error
}

func fuzzBaseEngine(f *testing.F) *shard.ShardedIndex {
	f.Helper()
	fuzzEngine.once.Do(func() {
		g := testutil.Clustered(48, 3, 9)
		fuzzEngine.sx, fuzzEngine.err = shard.Build(g, shard.Options{Shards: 3, Reorder: reorder.Hybrid, Seed: 1})
	})
	if fuzzEngine.err != nil {
		f.Fatal(fuzzEngine.err)
	}
	return fuzzEngine.sx
}

// fuzzPost drives one POST and asserts the handler's contract: a
// well-formed HTTP response with a sane status, and the engine still
// answering afterwards.
func fuzzPost(t *testing.T, h *Handler, url, body string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	switch rec.Code {
	case http.StatusOK, http.StatusBadRequest, http.StatusInternalServerError, http.StatusNotImplemented:
	default:
		t.Fatalf("POST %s %q: unexpected status %d (%s)", url, body, rec.Code, rec.Body.String())
	}
	after := httptest.NewRequest(http.MethodGet, "/topk?q=0&k=3", nil)
	arec := httptest.NewRecorder()
	h.ServeHTTP(arec, after)
	if arec.Code != http.StatusOK {
		t.Fatalf("engine broken after POST %s %q: %d (%s)", url, body, arec.Code, arec.Body.String())
	}
}

func FuzzUpdateEndpoint(f *testing.F) {
	sx := fuzzBaseEngine(f)
	f.Add(`{"addNodes":1,"addEdges":[{"from":48,"to":3,"weight":2}]}`)
	f.Add(`{"addEdges":[{"from":0,"to":1}]}`)
	f.Add(`{"removeEdges":[{"from":0,"to":1}]}`)
	f.Add(`{"addNodes":-1}`)
	f.Add(`{"addNodes":999999999}`)
	f.Add(`{"addEdges":[{"from":-5,"to":1e9,"weight":-0.5}]}`)
	f.Add(`{"addEdges":`)
	f.Add(`[]`)
	f.Add(``)
	f.Add(`{"addEdges":[{"from":0,"to":1,"weight":1e308},{"from":0,"to":1,"weight":1e308}]}`)
	f.Fuzz(func(t *testing.T, body string) {
		fuzzPost(t, New(sx), "/update", body)
	})
}

func FuzzBatchEndpoint(f *testing.F) {
	sx := fuzzBaseEngine(f)
	f.Add(`{"queries":[{"q":3,"k":5},{"q":9,"k":5,"exclude":[9]}]}`)
	f.Add(`{"queries":[]}`)
	f.Add(`{"queries":[{"q":-1,"k":5}]}`)
	f.Add(`{"queries":[{"q":1,"k":-5}]}`)
	f.Add(`{"queries"`)
	f.Add(`null`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, body string) {
		fuzzPost(t, New(sx), "/topk/batch", body)
	})
}
