// Package mmapio implements the sectioned on-disk container behind the
// v3 index format: a file laid out so the OS page cache *is* the
// deserializer. Arrays are stored as page-aligned, little-endian,
// natively-typed sections (int64 / float64 / raw bytes) described by a
// checksummed section table, so an index Open in ModeMmap maps the file
// once and wraps each section directly as a Go slice via unsafe.Slice —
// zero copies, open time proportional to the number of sections rather
// than their bytes, and physical memory shared between every process
// serving the same file.
//
// # File layout
//
// All integers are little-endian. Offsets are from the start of the file.
//
//	offset  size  field
//	0       8     magic "KDSECT1\x00"
//	8       4     uint32 container version (currently 1)
//	12      4     uint32 section count
//	16      8     uint64 file size (must equal the real size)
//	24      4     uint32 section alignment (power of two, normally 4096)
//	28      4     uint32 CRC-32C of the section table bytes
//	32      32*k  section table, one 32-byte entry per section:
//	                uint32 id       caller-chosen section identifier
//	                uint32 kind     1 = int64, 2 = float64, 3 = bytes,
//	                                4 = int32, 5 = float32
//	                uint64 offset   start of the section data (aligned)
//	                uint64 count    element count (bytes for kind 3)
//	                uint32 crc      CRC-32C of the section data bytes
//	                uint32 reserved (zero)
//	...           section data in table order, each section starting at
//	              its aligned offset, zero padding in the gaps
//
// # Read modes
//
// ModeMmap maps the file read-only (PROT_READ on Linux): section
// accessors return slices aliasing the mapping, every byte is faulted in
// on first touch, and any write through a returned slice faults the
// process — the mutation discipline is enforced by the MMU, not by
// convention. Only the header and section table are validated eagerly
// (O(#sections)); data checksums are available on demand via Verify,
// which touches every page.
//
// ModeCopy reads the whole file into private memory and verifies every
// section checksum eagerly — the portable, paranoid path. On a
// little-endian 64-bit platform the copied sections are still wrapped
// zero-copy; elsewhere they are decoded element by element, so the
// format works (slowly) on any architecture Go supports.
//
// ModeAuto picks ModeMmap where the platform supports it (Linux,
// little-endian, 64-bit int) and falls back to ModeCopy everywhere else.
//
// # Mutation discipline
//
// Slices returned by Ints, Floats and Bytes are read-only by contract in
// every mode. In ModeMmap a write is a segfault; in ModeCopy it would
// silently corrupt sibling sections sharing the buffer. Callers that
// need to mutate must copy out first.
package mmapio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"strconv"
	"unsafe"
)

// Magic identifies a sectioned container file.
const Magic = "KDSECT1\x00"

// containerVersion is bumped whenever the header or table layout changes.
const containerVersion = 1

// DefaultAlign is the section alignment Save uses: one 4 KiB page, so
// every section starts page- (and therefore 8-byte-) aligned and the
// kernel can fault sections independently.
const DefaultAlign = 4096

// Section kinds.
const (
	KindInt64   = 1 // elements are int64 (Go int on 64-bit platforms)
	KindFloat64 = 2 // elements are float64 (stored as IEEE-754 bits)
	KindBytes   = 3 // raw bytes; count is the byte length
	KindInt32   = 4 // elements are int32 (the blocked factor strips' indices)
	KindFloat32 = 5 // elements are float32 (stored as IEEE-754 bits)
)

// Mode selects how Open backs the file's sections.
type Mode int

const (
	// ModeAuto maps the file when the platform supports zero-copy
	// (Linux, little-endian, 64-bit int) and copies otherwise.
	ModeAuto Mode = iota
	// ModeMmap requires a mapping; Open fails where unsupported.
	ModeMmap
	// ModeCopy always reads the file into private memory and verifies
	// every section checksum eagerly.
	ModeCopy
)

// String names the mode for logs and /statz.
func (m Mode) String() string {
	switch m {
	case ModeMmap:
		return "mmap"
	case ModeCopy:
		return "copy"
	default:
		return "auto"
	}
}

const (
	headerSize = 32
	entrySize  = 32
	// maxSections bounds table allocation on corrupt counts; a K-dash
	// index needs ~16 sections, so 1<<16 is far beyond any real file.
	maxSections = 1 << 16
	// maxAlign bounds the alignment field so padding arithmetic cannot
	// overflow on corrupt headers.
	maxAlign = 1 << 24
)

// castagnoli is the CRC-32C table (the SSE4.2-accelerated polynomial).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLittleEndian reports whether the running machine stores integers
// little-endian, detected once at init.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// CanZeroCopy reports whether sections can wrap file bytes directly on
// this machine: int64/float64 sections are little-endian on disk and Go
// ints must be 64-bit for []int to alias an int64 section.
func CanZeroCopy() bool {
	return hostLittleEndian && strconv.IntSize == 64
}

// MmapSupported reports whether this build can memory-map files
// (true only on Linux builds of this package).
func MmapSupported() bool { return mmapSupported }

// section is one decoded table entry.
type section struct {
	id    uint32
	kind  uint32
	off   uint64
	count uint64
	crc   uint32
}

// elemSize is the byte width of one element of a section kind.
func elemSize(kind uint32) uint64 {
	switch kind {
	case KindBytes:
		return 1
	case KindInt32, KindFloat32:
		return 4
	default:
		return 8
	}
}

// byteLen is the section's data size in bytes.
func (s *section) byteLen() uint64 {
	return s.count * elemSize(s.kind)
}

// File is an open sectioned container. All accessors are safe for
// concurrent use; the returned slices are read-only (see the package
// comment for the mutation discipline).
type File struct {
	data     []byte // the whole file: a mapping or a private copy
	mapped   bool
	sections map[uint32]section
	order    []uint32     // section ids in table order
	closer   func() error // unmap / nothing
}

// Writer accumulates sections and writes a container file. Sections are
// written in Add order; ids must be unique.
type Writer struct {
	sections []wsection
	align    int
}

type wsection struct {
	id   uint32
	kind uint32
	ints []int
	f64s []float64
	i32s []int32
	f32s []float32
	raw  []byte
}

// NewWriter returns an empty Writer using DefaultAlign.
func NewWriter() *Writer { return &Writer{align: DefaultAlign} }

// AddInts appends an int64 section. The slice is referenced, not copied;
// it must not change until WriteTo returns.
func (w *Writer) AddInts(id uint32, xs []int) {
	w.sections = append(w.sections, wsection{id: id, kind: KindInt64, ints: xs})
}

// AddFloats appends a float64 section (same aliasing rule as AddInts).
func (w *Writer) AddFloats(id uint32, xs []float64) {
	w.sections = append(w.sections, wsection{id: id, kind: KindFloat64, f64s: xs})
}

// AddBytes appends a raw byte section (same aliasing rule as AddInts).
func (w *Writer) AddBytes(id uint32, b []byte) {
	w.sections = append(w.sections, wsection{id: id, kind: KindBytes, raw: b})
}

// AddInt32s appends an int32 section (same aliasing rule as AddInts).
func (w *Writer) AddInt32s(id uint32, xs []int32) {
	w.sections = append(w.sections, wsection{id: id, kind: KindInt32, i32s: xs})
}

// AddFloat32s appends a float32 section (same aliasing rule as AddInts).
func (w *Writer) AddFloat32s(id uint32, xs []float32) {
	w.sections = append(w.sections, wsection{id: id, kind: KindFloat32, f32s: xs})
}

// alignUp rounds n up to the next multiple of align.
func alignUp(n uint64, align uint64) uint64 {
	return (n + align - 1) / align * align
}

// payload returns the section's data as little-endian bytes. On a
// zero-copy platform typed slices are reinterpreted in place; otherwise
// they are encoded into a fresh buffer.
func (s *wsection) payload() []byte {
	switch s.kind {
	case KindBytes:
		return s.raw
	case KindInt64:
		if len(s.ints) == 0 {
			return nil
		}
		if CanZeroCopy() {
			return unsafe.Slice((*byte)(unsafe.Pointer(&s.ints[0])), len(s.ints)*8)
		}
		buf := make([]byte, len(s.ints)*8)
		for i, v := range s.ints {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
		}
		return buf
	case KindInt32:
		if len(s.i32s) == 0 {
			return nil
		}
		if hostLittleEndian {
			return unsafe.Slice((*byte)(unsafe.Pointer(&s.i32s[0])), len(s.i32s)*4)
		}
		buf := make([]byte, len(s.i32s)*4)
		for i, v := range s.i32s {
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(v))
		}
		return buf
	case KindFloat32:
		if len(s.f32s) == 0 {
			return nil
		}
		if hostLittleEndian {
			return unsafe.Slice((*byte)(unsafe.Pointer(&s.f32s[0])), len(s.f32s)*4)
		}
		buf := make([]byte, len(s.f32s)*4)
		for i, v := range s.f32s {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
		}
		return buf
	default:
		if len(s.f64s) == 0 {
			return nil
		}
		if CanZeroCopy() {
			return unsafe.Slice((*byte)(unsafe.Pointer(&s.f64s[0])), len(s.f64s)*8)
		}
		buf := make([]byte, len(s.f64s)*8)
		for i, v := range s.f64s {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		return buf
	}
}

func (s *wsection) count() uint64 {
	switch s.kind {
	case KindBytes:
		return uint64(len(s.raw))
	case KindInt64:
		return uint64(len(s.ints))
	case KindInt32:
		return uint64(len(s.i32s))
	case KindFloat32:
		return uint64(len(s.f32s))
	default:
		return uint64(len(s.f64s))
	}
}

// WriteTo lays the sections out and writes the complete container,
// implementing io.WriterTo.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	align := uint64(w.align)
	k := len(w.sections)
	table := make([]byte, k*entrySize)
	payloads := make([][]byte, k)
	seen := make(map[uint32]bool, k)
	off := alignUp(headerSize+uint64(len(table)), align)
	for i := range w.sections {
		s := &w.sections[i]
		if seen[s.id] {
			return 0, fmt.Errorf("mmapio: duplicate section id %d", s.id)
		}
		seen[s.id] = true
		payloads[i] = s.payload()
		e := table[i*entrySize:]
		binary.LittleEndian.PutUint32(e[0:], s.id)
		binary.LittleEndian.PutUint32(e[4:], s.kind)
		binary.LittleEndian.PutUint64(e[8:], off)
		binary.LittleEndian.PutUint64(e[16:], s.count())
		binary.LittleEndian.PutUint32(e[24:], crc32.Checksum(payloads[i], castagnoli))
		off = alignUp(off+uint64(len(payloads[i])), align)
	}
	fileSize := off
	if k == 0 {
		fileSize = alignUp(headerSize, align)
	}

	head := make([]byte, headerSize)
	copy(head, Magic)
	binary.LittleEndian.PutUint32(head[8:], containerVersion)
	binary.LittleEndian.PutUint32(head[12:], uint32(k))
	binary.LittleEndian.PutUint64(head[16:], fileSize)
	binary.LittleEndian.PutUint32(head[24:], uint32(align))
	binary.LittleEndian.PutUint32(head[28:], crc32.Checksum(table, castagnoli))

	cw := &countWriter{w: out}
	if _, err := cw.Write(head); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write(table); err != nil {
		return cw.n, err
	}
	pad := make([]byte, align)
	for i, p := range payloads {
		target := int64(binary.LittleEndian.Uint64(table[i*entrySize+8:]))
		if err := cw.pad(pad, target); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(p); err != nil {
			return cw.n, err
		}
	}
	if err := cw.pad(pad, int64(fileSize)); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// countWriter tracks the bytes written so padding can be emitted up to
// absolute offsets.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (c *countWriter) pad(zeros []byte, target int64) error {
	for c.n < target {
		chunk := target - c.n
		if chunk > int64(len(zeros)) {
			chunk = int64(len(zeros))
		}
		if _, err := c.Write(zeros[:chunk]); err != nil {
			return err
		}
	}
	return nil
}

// Open opens a container file in the given mode. The returned File must
// be closed when no longer needed; in ModeMmap, slices obtained from it
// become invalid (and will fault) after Close.
func Open(path string, mode Mode) (*File, error) {
	switch mode {
	case ModeMmap:
		if !mmapSupported || !CanZeroCopy() {
			return nil, fmt.Errorf("mmapio: ModeMmap unsupported on this platform (mmap=%v zeroCopy=%v)", mmapSupported, CanZeroCopy())
		}
		return openMmap(path)
	case ModeCopy:
		return openCopy(path)
	default:
		if mmapSupported && CanZeroCopy() {
			return openMmap(path)
		}
		return openCopy(path)
	}
}

func openCopy(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("mmapio: reading %s: %w", path, err)
	}
	f, err := FromBytes(data)
	if err != nil {
		return nil, fmt.Errorf("mmapio: %s: %w", path, err)
	}
	return f, nil
}

// FromBytes parses an in-memory container image in copy mode: the
// section table is validated and every section checksum is verified
// eagerly. The image is referenced, not copied.
func FromBytes(data []byte) (*File, error) {
	f := &File{data: data}
	if err := f.parse(); err != nil {
		return nil, err
	}
	if err := f.Verify(); err != nil {
		return nil, err
	}
	return f, nil
}

// newMapped wraps an established read-only mapping; only the header and
// table are validated (data pages stay untouched).
func newMapped(data []byte, closer func() error) (*File, error) {
	f := &File{data: data, mapped: true, closer: closer}
	if err := f.parse(); err != nil {
		closer()
		return nil, err
	}
	return f, nil
}

// parse validates the header and section table (bounds, alignment,
// overlap via monotone offsets, table checksum). It never touches
// section data.
func (f *File) parse() error {
	data := f.data
	if len(data) < headerSize || string(data[:8]) != Magic {
		return fmt.Errorf("mmapio: not a sectioned container (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != containerVersion {
		return fmt.Errorf("mmapio: unsupported container version %d (want %d)", v, containerVersion)
	}
	k := binary.LittleEndian.Uint32(data[12:])
	size := binary.LittleEndian.Uint64(data[16:])
	align := uint64(binary.LittleEndian.Uint32(data[24:]))
	tableCRC := binary.LittleEndian.Uint32(data[28:])
	if k > maxSections {
		return fmt.Errorf("mmapio: corrupt header (%d sections)", k)
	}
	if size != uint64(len(data)) {
		return fmt.Errorf("mmapio: header claims %d bytes, file has %d", size, len(data))
	}
	if align < 8 || align > maxAlign || align&(align-1) != 0 {
		return fmt.Errorf("mmapio: corrupt header (alignment %d)", align)
	}
	tableEnd := headerSize + uint64(k)*entrySize
	if tableEnd > uint64(len(data)) {
		return fmt.Errorf("mmapio: truncated section table (%d sections, %d bytes)", k, len(data))
	}
	table := data[headerSize:tableEnd]
	if crc32.Checksum(table, castagnoli) != tableCRC {
		return fmt.Errorf("mmapio: section table checksum mismatch")
	}
	f.sections = make(map[uint32]section, k)
	f.order = make([]uint32, 0, k)
	prevEnd := tableEnd
	for i := uint64(0); i < uint64(k); i++ {
		e := table[i*entrySize:]
		s := section{
			id:    binary.LittleEndian.Uint32(e[0:]),
			kind:  binary.LittleEndian.Uint32(e[4:]),
			off:   binary.LittleEndian.Uint64(e[8:]),
			count: binary.LittleEndian.Uint64(e[16:]),
			crc:   binary.LittleEndian.Uint32(e[24:]),
		}
		if s.kind < KindInt64 || s.kind > KindFloat32 {
			return fmt.Errorf("mmapio: section %d has unknown kind %d", s.id, s.kind)
		}
		if s.off%align != 0 {
			return fmt.Errorf("mmapio: section %d misaligned (offset %d, alignment %d)", s.id, s.off, align)
		}
		if s.off > uint64(len(data)) {
			return fmt.Errorf("mmapio: section %d out of bounds (offset %d, file %d)", s.id, s.off, len(data))
		}
		if s.count > (uint64(len(data))-s.off)/elemSize(s.kind) {
			return fmt.Errorf("mmapio: section %d out of bounds (offset %d, count %d, file %d)", s.id, s.off, s.count, len(data))
		}
		if s.off < prevEnd {
			return fmt.Errorf("mmapio: section %d overlaps the preceding section", s.id)
		}
		prevEnd = s.off + s.byteLen()
		if _, dup := f.sections[s.id]; dup {
			return fmt.Errorf("mmapio: duplicate section id %d", s.id)
		}
		f.sections[s.id] = s
		f.order = append(f.order, s.id)
	}
	return nil
}

// Verify checks every section's data checksum. In ModeMmap this faults
// in the whole file, defeating lazy paging — call it only when the
// integrity check is worth the cold read (e.g. an explicit fsck path).
func (f *File) Verify() error {
	for _, id := range f.order {
		s := f.sections[id]
		data := f.data[s.off : s.off+s.byteLen()]
		if crc32.Checksum(data, castagnoli) != s.crc {
			return fmt.Errorf("mmapio: section %d checksum mismatch", id)
		}
	}
	return nil
}

// Mapped reports whether the file is memory-mapped (vs privately copied).
func (f *File) Mapped() bool { return f.mapped }

// Size is the container's total byte size.
func (f *File) Size() int { return len(f.data) }

// Has reports whether a section with the id exists.
func (f *File) Has(id uint32) bool {
	_, ok := f.sections[id]
	return ok
}

// Count reports a section's element count, or -1 if absent.
func (f *File) Count(id uint32) int {
	s, ok := f.sections[id]
	if !ok {
		return -1
	}
	return int(s.count)
}

func (f *File) lookup(id uint32, kind uint32) (section, error) {
	s, ok := f.sections[id]
	if !ok {
		return section{}, fmt.Errorf("mmapio: missing section %d", id)
	}
	if s.kind != kind {
		return section{}, fmt.Errorf("mmapio: section %d has kind %d, want %d", id, s.kind, kind)
	}
	return s, nil
}

// Ints returns section id as an []int. Zero-copy where the platform
// allows (the slice aliases the file; treat it as read-only), decoded
// into fresh memory otherwise.
func (f *File) Ints(id uint32) ([]int, error) {
	s, err := f.lookup(id, KindInt64)
	if err != nil {
		return nil, err
	}
	if s.count == 0 {
		return []int{}, nil
	}
	b := f.data[s.off : s.off+s.count*8]
	if CanZeroCopy() {
		return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), s.count), nil
	}
	out := make([]int, s.count)
	for i := range out {
		out[i] = int(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// Floats returns section id as a []float64 (same contract as Ints).
func (f *File) Floats(id uint32) ([]float64, error) {
	s, err := f.lookup(id, KindFloat64)
	if err != nil {
		return nil, err
	}
	if s.count == 0 {
		return []float64{}, nil
	}
	b := f.data[s.off : s.off+s.count*8]
	if hostLittleEndian {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), s.count), nil
	}
	out := make([]float64, s.count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// Int32s returns section id as an []int32 (same contract as Ints;
// zero-copy on any little-endian host — no 64-bit int requirement).
func (f *File) Int32s(id uint32) ([]int32, error) {
	s, err := f.lookup(id, KindInt32)
	if err != nil {
		return nil, err
	}
	if s.count == 0 {
		return []int32{}, nil
	}
	b := f.data[s.off : s.off+s.count*4]
	if hostLittleEndian {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), s.count), nil
	}
	out := make([]int32, s.count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

// Float32s returns section id as a []float32 (same contract as Int32s).
func (f *File) Float32s(id uint32) ([]float32, error) {
	s, err := f.lookup(id, KindFloat32)
	if err != nil {
		return nil, err
	}
	if s.count == 0 {
		return []float32{}, nil
	}
	b := f.data[s.off : s.off+s.count*4]
	if hostLittleEndian {
		return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), s.count), nil
	}
	out := make([]float32, s.count)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

// Bytes returns section id's raw bytes (aliasing the file; read-only).
func (f *File) Bytes(id uint32) ([]byte, error) {
	s, err := f.lookup(id, KindBytes)
	if err != nil {
		return nil, err
	}
	return f.data[s.off : s.off+s.count], nil
}

// Close releases the mapping. After Close every slice previously
// returned by a mapped File is invalid: reads fault. Copy-mode files
// keep their (garbage-collected) buffer alive through the slices, so
// Close is a no-op for them.
func (f *File) Close() error {
	if f.closer == nil {
		return nil
	}
	c := f.closer
	f.closer = nil
	return c()
}
