// Command kdash-server serves exact top-k RWR queries over HTTP from a
// prebuilt or freshly built K-dash index.
//
// Usage:
//
//	kdash-server -graph edges.tsv -addr :8080
//	kdash-server -load-index graph.idx -addr :8080
//
// Endpoints:
//
//	GET  /topk?q=<node>&k=<count>[&exclude=1,2,3]
//	POST /personalized   {"seeds":{"3":1,"80":2},"k":5}
//	GET  /proximity?q=<node>&u=<node>
//	GET  /healthz
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"kdash"
	"kdash/internal/server"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file to index")
		loadIdx   = flag.String("load-index", "", "prebuilt index to load instead of building")
		addr      = flag.String("addr", ":8080", "listen address")
		c         = flag.Float64("c", kdash.DefaultRestart, "restart probability (build mode)")
	)
	flag.Parse()
	var ix *kdash.Index
	switch {
	case *loadIdx != "":
		f, err := os.Open(*loadIdx)
		if err != nil {
			log.Fatal(err)
		}
		ix, err = kdash.LoadIndex(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded index: %d nodes", ix.N())
	case *graphPath != "":
		f, err := os.Open(*graphPath)
		if err != nil {
			log.Fatal(err)
		}
		g, err := kdash.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		opts := kdash.DefaultOptions()
		opts.Restart = *c
		ix, err = kdash.BuildIndex(g, opts)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("built index: %d nodes / %d edges in %v", g.N(), g.M(), time.Since(start).Round(time.Millisecond))
	default:
		fmt.Fprintln(os.Stderr, "kdash-server: need -graph or -load-index")
		flag.Usage()
		os.Exit(2)
	}
	srv := &http.Server{
		Addr:         *addr,
		Handler:      server.New(ix),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 10 * time.Second,
	}
	log.Printf("serving on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
