package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kdash/internal/gen"
	"kdash/internal/reorder"
	"kdash/internal/rwr"
	"kdash/internal/topk"
)

func TestPersonalizedMatchesIterativeOracle(t *testing.T) {
	g := gen.PlantedPartition(150, 4, 0.2, 0.01, 1)
	a := g.ColumnNormalized()
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []map[int]float64{
		{3: 1},
		{3: 1, 80: 1},
		{3: 5, 80: 1, 149: 2},
		{0: 0.1, 1: 0.1, 2: 0.1},
	}
	for ci, seeds := range cases {
		restart := make([]float64, g.N())
		total := 0.0
		for _, w := range seeds {
			total += w
		}
		for node, w := range seeds {
			restart[node] = w / total
		}
		want, _, err := rwr.IterativeVec(a, restart, ix.Restart(), 1e-14, 100000)
		if err != nil {
			t.Fatal(err)
		}
		wantTop := topk.FromVector(want, 10)
		got, _, err := ix.TopKPersonalized(seeds, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswerSet(got, wantTop, 1e-8) {
			t.Errorf("case %d: got %v, want %v", ci, got, wantTop)
		}
	}
}

func TestPersonalizedSingleSeedEqualsTopK(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 2)
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{0, 50, 119} {
		a, _, err := ix.TopK(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := ix.TopKPersonalized(map[int]float64{q: 7.5}, 8) // weight normalises away
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("q=%d: lengths differ", q)
		}
		for i := range a {
			if a[i].Node != b[i].Node || math.Abs(a[i].Score-b[i].Score) > 1e-12 {
				t.Errorf("q=%d rank %d: %v vs %v", q, i, a[i], b[i])
			}
		}
	}
}

func TestPersonalizedPropertyRandomSeedSets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(60)
		g := gen.ErdosRenyi(n, 5*n, seed)
		a := g.ColumnNormalized()
		ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: seed})
		if err != nil {
			return false
		}
		seeds := map[int]float64{}
		for len(seeds) < 1+rng.Intn(4) {
			seeds[rng.Intn(n)] = 0.5 + rng.Float64()
		}
		k := 1 + rng.Intn(8)
		got, _, err := ix.TopKPersonalized(seeds, k)
		if err != nil {
			return false
		}
		restart := make([]float64, n)
		total := 0.0
		for _, w := range seeds {
			total += w
		}
		for node, w := range seeds {
			restart[node] = w / total
		}
		want, _, err := rwr.IterativeVec(a, restart, ix.Restart(), 1e-14, 100000)
		if err != nil {
			return false
		}
		return sameAnswerSet(trimZeros(got), trimZeros(topk.FromVector(want, k)), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestPersonalizedPrunes(t *testing.T) {
	g := gen.PlantedPartition(300, 6, 0.15, 0.003, 3)
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := ix.TopKPersonalized(map[int]float64{5: 1, 60: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Terminated {
		t.Error("expected early termination with seeds inside communities")
	}
	if st.ProximityComputations > g.N()/2 {
		t.Errorf("personalized search computed %d proximities on a %d-node graph", st.ProximityComputations, g.N())
	}
}

func TestPersonalizedValidation(t *testing.T) {
	g := gen.ErdosRenyi(20, 60, 4)
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Degree})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.TopKPersonalized(nil, 3); err == nil {
		t.Error("expected error for empty seed set")
	}
	if _, _, err := ix.TopKPersonalized(map[int]float64{25: 1}, 3); err == nil {
		t.Error("expected error for out-of-range seed")
	}
	if _, _, err := ix.TopKPersonalized(map[int]float64{1: 0}, 3); err == nil {
		t.Error("expected error for zero weight")
	}
	if _, _, err := ix.TopKPersonalized(map[int]float64{1: -2}, 3); err == nil {
		t.Error("expected error for negative weight")
	}
	if _, _, err := ix.TopKPersonalized(map[int]float64{1: 1}, 0); err == nil {
		t.Error("expected error for k=0")
	}
}
