package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kdash/internal/core"
	"kdash/internal/graph"
	"kdash/internal/reorder"
	"kdash/internal/topk"
)

// brokenEngine fails or panics on demand, standing in for internal
// faults the validation layer cannot catch.
type brokenEngine struct {
	n      int
	panics bool
}

func (e *brokenEngine) N() int           { return e.n }
func (e *brokenEngine) Restart() float64 { return 0.95 }
func (e *brokenEngine) fail() error {
	if e.panics {
		panic("solve shape mismatch")
	}
	return errors.New("engine exploded")
}
func (e *brokenEngine) Search(q int, opt core.SearchOptions) ([]topk.Result, core.SearchStats, error) {
	return nil, core.SearchStats{}, e.fail()
}
func (e *brokenEngine) TopKPersonalized(seeds map[int]float64, k int) ([]topk.Result, core.SearchStats, error) {
	return nil, core.SearchStats{}, e.fail()
}
func (e *brokenEngine) Proximity(q, u int) (float64, error) { return 0, e.fail() }
func (e *brokenEngine) ProximityVector(q int) ([]float64, error) {
	return nil, e.fail()
}

// TestEngineFailureIs500 checks that failures past validation surface as
// 500, not the blanket 400 the server used to send.
func TestEngineFailureIs500(t *testing.T) {
	h := New(&brokenEngine{n: 100})
	for _, req := range []struct{ method, url, body string }{
		{http.MethodGet, "/topk?q=1&k=5", ""},
		{http.MethodGet, "/proximity?q=1&u=2", ""},
		{http.MethodPost, "/personalized", `{"seeds":{"1":1},"k":3}`},
		{http.MethodPost, "/topk/batch", `{"queries":[{"q":1,"k":3}]}`},
	} {
		r := httptest.NewRequest(req.method, req.url, strings.NewReader(req.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		if rec.Code != http.StatusInternalServerError {
			t.Errorf("%s %s: status %d, want 500 (%s)", req.method, req.url, rec.Code, rec.Body.String())
		}
		var body map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
			t.Errorf("%s %s: malformed error document %q", req.method, req.url, rec.Body.String())
		}
	}
}

// TestPanicRecovery checks a panicking engine yields a 500 response (not
// a dead connection) and that /statz counts the panic.
func TestPanicRecovery(t *testing.T) {
	h := New(&brokenEngine{n: 100, panics: true})
	rec, body := get(t, h, "/topk?q=1&k=5")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if _, ok := body["error"]; !ok {
		t.Fatalf("no error field: %s", rec.Body.String())
	}
	srec, _ := get(t, h, "/statz")
	var resp struct {
		Queries struct {
			Panics   int64 `json:"panics"`
			Internal int64 `json:"internal"`
			Errors   int64 `json:"errors"`
		} `json:"queries"`
	}
	if err := json.Unmarshal(srec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Queries.Panics != 1 || resp.Queries.Internal != 1 || resp.Queries.Errors != 1 {
		t.Errorf("counters = %+v, want one panic counted as internal", resp.Queries)
	}
}

// TestPanicRecoveryLiveServer drives the recovery through a real
// connection: the client must see a response, not an aborted stream.
func TestPanicRecoveryLiveServer(t *testing.T) {
	srv := httptest.NewServer(New(&brokenEngine{n: 100, panics: true}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/topk?q=1&k=5")
	if err != nil {
		t.Fatalf("connection died instead of returning a response: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", resp.StatusCode)
	}
}

// TestMalformedInputsTable sweeps malformed requests across every
// endpoint, asserting the exact status code for each.
func TestMalformedInputsTable(t *testing.T) {
	h, _ := testHandler(t) // 120-node graph
	for _, tc := range []struct {
		method, url, body string
		want              int
	}{
		// /topk
		{http.MethodGet, "/topk", "", http.StatusBadRequest},                     // missing params
		{http.MethodGet, "/topk?q=1", "", http.StatusBadRequest},                 // missing k
		{http.MethodGet, "/topk?q=1&k=0", "", http.StatusBadRequest},             // k = 0
		{http.MethodGet, "/topk?q=1&k=-5", "", http.StatusBadRequest},            // negative k
		{http.MethodGet, "/topk?q=-1&k=5", "", http.StatusBadRequest},            // negative node
		{http.MethodGet, "/topk?q=120&k=5", "", http.StatusBadRequest},           // node == n
		{http.MethodGet, "/topk?q=1&k=5&exclude=1,x", "", http.StatusBadRequest}, // non-numeric exclude
		{http.MethodGet, "/topk?q=1&k=5&exclude=999", "", http.StatusOK},         // out-of-range exclude is harmless
		{http.MethodPost, "/topk?q=1&k=5", "", http.StatusMethodNotAllowed},
		// /personalized
		{http.MethodPost, "/personalized", `{"seeds":{"1":1},"k":0}`, http.StatusBadRequest},    // k = 0
		{http.MethodPost, "/personalized", `{"seeds":{"1":1},"k":-1}`, http.StatusBadRequest},   // negative k
		{http.MethodPost, "/personalized", `{"seeds":{},"k":3}`, http.StatusBadRequest},         // empty seeds
		{http.MethodPost, "/personalized", `{"k":3}`, http.StatusBadRequest},                    // missing seeds
		{http.MethodPost, "/personalized", `{"seeds":{"x":1},"k":3}`, http.StatusBadRequest},    // non-numeric seed
		{http.MethodPost, "/personalized", `{"seeds":{"-2":1},"k":3}`, http.StatusBadRequest},   // negative seed id
		{http.MethodPost, "/personalized", `{"seeds":{"500":1},"k":3}`, http.StatusBadRequest},  // out-of-range seed
		{http.MethodPost, "/personalized", `{"seeds":{"1":0},"k":3}`, http.StatusBadRequest},    // zero weight
		{http.MethodPost, "/personalized", `{"seeds":{"1":-0.5},"k":3}`, http.StatusBadRequest}, // negative weight
		{http.MethodPost, "/personalized", `{"seeds":{"1":1,"2":2},"k":3}`, http.StatusOK},
		{http.MethodGet, "/personalized", "", http.StatusMethodNotAllowed},
		// /proximity
		{http.MethodGet, "/proximity?q=1", "", http.StatusBadRequest},       // missing u
		{http.MethodGet, "/proximity?q=1&u=abc", "", http.StatusBadRequest}, // non-numeric u
		{http.MethodGet, "/proximity?q=1&u=120", "", http.StatusBadRequest}, // u out of range
		{http.MethodGet, "/proximity?q=-7&u=1", "", http.StatusBadRequest},  // q out of range
		{http.MethodGet, "/proximity?q=1&u=2", "", http.StatusOK},
	} {
		r := httptest.NewRequest(tc.method, tc.url, strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		if rec.Code != tc.want {
			t.Errorf("%s %s %q: status %d, want %d (%s)", tc.method, tc.url, tc.body, rec.Code, tc.want, rec.Body.String())
		}
		if tc.want != http.StatusOK {
			var body map[string]string
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
				t.Errorf("%s %s: error response lacks error field: %q", tc.method, tc.url, rec.Body.String())
			}
		}
	}
}

// TestActualResultCount checks the wire k reports the number of results
// actually returned when the graph yields fewer than requested.
func TestActualResultCount(t *testing.T) {
	// Node 2 is unreachable from 0; only {0,1} can answer.
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 0, 1); err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildIndex(b.Build(), core.BuildOptions{Reorder: reorder.Natural})
	if err != nil {
		t.Fatal(err)
	}
	h := New(ix)
	rec, _ := get(t, h, "/topk?q=0&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		K          int `json:"k"`
		RequestedK int `json:"requestedK"`
		Results    []struct {
			Node int `json:"node"`
		} `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("%d results, want 2 (only 2 nodes reachable)", len(resp.Results))
	}
	if resp.K != 2 {
		t.Errorf("k = %d, want the actual count 2", resp.K)
	}
	if resp.RequestedK != 5 {
		t.Errorf("requestedK = %d, want 5", resp.RequestedK)
	}
}
