package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the exposition golden file")

// goldenExposition builds a deterministic metric document: fixed
// counter/gauge values plus a histogram fed a fixed value sequence.
func goldenExposition() string {
	var h Histogram
	for _, d := range []time.Duration{
		120 * time.Microsecond, 340 * time.Microsecond, 1200 * time.Microsecond,
		2 * time.Millisecond, 45 * time.Millisecond, 990 * time.Millisecond,
	} {
		h.Observe(d)
	}
	var buf bytes.Buffer
	w := NewPromWriter(&buf)
	w.Header("kdash_http_requests_total", "HTTP requests by endpoint and status code.", "counter")
	w.Metric("kdash_http_requests_total", []Label{{"endpoint", "topk"}, {"code", "200"}}, 42)
	w.Metric("kdash_http_requests_total", []Label{{"endpoint", "topk"}, {"code", "400"}}, 3)
	w.Header("kdash_http_in_flight_requests", "Requests currently being served.", "gauge")
	w.Metric("kdash_http_in_flight_requests", nil, 2)
	w.Header("kdash_cache_hit_ratio", "Proximity-vector cache hit ratio.", "gauge")
	w.Metric("kdash_cache_hit_ratio", nil, 0.8125)
	w.Header("kdash_http_request_duration_seconds", "Request latency.", "histogram")
	w.Histogram("kdash_http_request_duration_seconds", []Label{{"endpoint", "topk"}}, h.Snapshot())
	w.Header("kdash_escapes", `Help with a backslash \ in it.`, "gauge")
	w.Metric("kdash_escapes", []Label{{"path", `a"b\c` + "\nd"}}, 1)
	return buf.String()
}

// TestExpositionGolden pins the exact bytes of the Prometheus text
// format the writer produces. Regenerate with -update-golden after a
// deliberate format change.
func TestExpositionGolden(t *testing.T) {
	got := goldenExposition()
	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistogramExpositionExact: the cumulative le counts must be exact
// — every observation ≤ a bound is counted under that bound, nothing
// more.
func TestHistogramExpositionExact(t *testing.T) {
	var h Histogram
	values := []int64{1 << 10, (1 << 10) + 1, 1 << 20, (1 << 20) + 1, 1 << 30, 5 << 30}
	for _, v := range values {
		h.ObserveNS(v)
	}
	var buf bytes.Buffer
	w := NewPromWriter(&buf)
	w.Histogram("m", nil, h.Snapshot())
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	// At le = 2^10/1e9 exactly one value (1<<10 itself) must be counted:
	// the +1 neighbour sits in the next bucket.
	wantLines := map[string]string{
		`m_bucket{le="1.024e-06"} `:   "1",
		`m_bucket{le="0.001048576"} `: "3", // both 2^10s and 2^20
		`m_bucket{le="+Inf"} `:        "6",
		"m_count ":                    "6",
	}
	text := buf.String()
	for prefix, val := range wantLines {
		found := false
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, prefix) {
				found = true
				if got := strings.TrimPrefix(line, prefix); got != val {
					t.Errorf("%s= %s, want %s", prefix, got, val)
				}
			}
		}
		if !found {
			t.Errorf("no line with prefix %q in:\n%s", prefix, text)
		}
	}
}
