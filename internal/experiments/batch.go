package experiments

// BatchScale is the batched-execution extension experiment: on the same
// community-structured graph the shard experiment uses, it measures the
// aggregate throughput of the batched query path (one shared block push
// per batch, multi-RHS factor sweeps) against a sequential loop of
// single queries, and validates that the answers agree.

import (
	"fmt"
	"io"
	"time"

	"kdash/internal/gen"
	"kdash/internal/reorder"
	"kdash/internal/shard"
)

// BatchRow is one batch-size measurement.
type BatchRow struct {
	Batch      int
	Sequential time.Duration // wall clock for the batch via a TopK loop
	Batched    time.Duration // wall clock via one TopKBatch call
	Speedup    float64       // Sequential / Batched
	Sharing    float64       // right-hand sides per block factor sweep
	Agrees     bool          // batched answers match the sequential ones
}

// defaultBatchSizes is the sweep cmd/kdash-bench runs.
var defaultBatchSizes = []int{1, 8, 64}

// batchShards fixes the shard count for the batch experiment: 8 matches
// the shard experiment's best-scaling configuration.
const batchShards = 8

// BatchScale builds one sharded index and, per batch size, times a
// sequential single-query loop against one batched call over the same
// query nodes. Rotating query sets keep repeated measurements honest on
// small graphs.
func BatchScale(cfg Config) ([]BatchRow, error) {
	cfg = cfg.withDefaults()
	sizes := cfg.BatchSizes
	if sizes == nil {
		sizes = defaultBatchSizes
	}
	n := cfg.ShardGraphN
	if n == 0 {
		n = defaultShardGraphN
	}
	communities := n / 100
	if communities < 4 {
		communities = 4
	}
	g := gen.CommunityOverlay(n, 3, communities, 0.995, cfg.Seed)
	sx, err := shard.Build(g, shard.Options{Shards: batchShards, Reorder: reorder.Hybrid, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: batch build: %w", err)
	}

	rows := make([]BatchRow, 0, len(sizes))
	for _, batch := range sizes {
		qs := make([]int, batch)
		for i := range qs {
			qs[i] = (i*997 + int(cfg.Seed)) % g.N()
		}

		t0 := time.Now()
		seq := make([][]int, batch) // node ids only; scores compared below
		seqScores := make([][]float64, batch)
		for i, q := range qs {
			rs, _, err := sx.TopK(q, cfg.K)
			if err != nil {
				return nil, err
			}
			seq[i] = make([]int, len(rs))
			seqScores[i] = make([]float64, len(rs))
			for j, r := range rs {
				seq[i][j] = r.Node
				seqScores[i][j] = r.Score
			}
		}
		sequential := time.Since(t0)

		t1 := time.Now()
		batched, bs, err := sx.TopKBatch(qs, cfg.K)
		if err != nil {
			return nil, err
		}
		batchTime := time.Since(t1)

		row := BatchRow{
			Batch:      batch,
			Sequential: sequential,
			Batched:    batchTime,
			Speedup:    float64(sequential) / float64(batchTime),
			Sharing:    bs.Sharing(),
			Agrees:     true,
		}
		for i := range batched {
			if len(batched[i]) != len(seq[i]) {
				row.Agrees = false
				continue
			}
			for j, r := range batched[i] {
				if diff := r.Score - seqScores[i][j]; diff > 1e-9 || diff < -1e-9 {
					row.Agrees = false
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteBatchRows prints the batch-scaling table.
func WriteBatchRows(w io.Writer, rows []BatchRow) {
	fmt.Fprintf(w, "%-7s %14s %14s %9s %9s %7s\n",
		"batch", "sequential", "batched", "speedup", "rhs/solve", "exact")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7d %14v %14v %8.2fx %9.1f %7t\n",
			r.Batch, r.Sequential.Round(time.Microsecond), r.Batched.Round(time.Microsecond),
			r.Speedup, r.Sharing, r.Agrees)
	}
}
