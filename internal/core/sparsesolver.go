package core

// Single-lane sparse solver: the latency-critical counterpart of the
// 8-lane BatchSolver. It folds the node permutation around
// lu.SparseSolver's support-tracked kernel, so a solve whose right-hand
// side reaches a fraction of the factors costs a proportional fraction
// to run — no O(n) allocation, zeroing or sweeping per call. This is the
// kernel the sharded cross-shard push bottoms out in for every
// single-query TopK and every /topk request.

import (
	"fmt"

	"kdash/internal/lu"
)

// SparseSolver runs repeated single right-hand-side solves against one
// index, recycling all workspaces across calls. Not safe for concurrent
// use; Index pools instances (see ProximityVector) and internal/shard
// checks one out per query.
type SparseSolver struct {
	ix   *Index
	ls   *lu.SparseSolver
	iidx []int // internal-id right-hand side, mapped per call
}

// NewSparseSolver returns a reusable single-lane solver for the index.
func (ix *Index) NewSparseSolver() *SparseSolver {
	return &SparseSolver{ix: ix, ls: ix.inverseFactors().NewSparseSolver()}
}

// getSparseSolver checks a solver out of the per-index pool;
// putSparseSolver returns it. Pooled solvers retain their workspaces, so
// a steady-state checkout allocates nothing.
//
//kdash:pooled
func (ix *Index) getSparseSolver() *SparseSolver {
	if s, ok := ix.sparsePool.Get().(*SparseSolver); ok {
		return s
	}
	return ix.NewSparseSolver()
}

//kdash:release
func (ix *Index) putSparseSolver(s *SparseSolver) { ix.sparsePool.Put(s) }

// SolveSparse computes y = W^{-1} r exactly like Index.Solve, with the
// right-hand side given sparsely as parallel (idx, val) slices over
// original node ids, idx strictly ascending. It returns the solution in
// original node-id order plus its support: the rows written by this
// call, unordered. Rows outside the support hold stale values from
// earlier calls — not zeros — so callers must restrict reads to the
// support. A nil support means every row was written. Both slices are
// valid only until the next call. Values are bit-identical to
// Index.Solve on the equivalent dense right-hand side (and therefore to
// BatchSolver.SolveOn's lanes).
//
//kdash:noalloc
//kdash:deterministic
func (s *SparseSolver) SolveSparse(idx []int, val []float64) ([]float64, []int, error) {
	ix := s.ix
	if len(idx) != len(val) {
		return nil, nil, fmt.Errorf("core: sparse rhs has %d indices but %d values", len(idx), len(val)) //kdash:allow(hotalloc) error construction only on invalid input, off the steady-state path
	}
	// Map to internal ids in caller order — ascending original ids, the
	// accumulation order Solve's dense scan uses.
	iidx := s.iidx[:0]
	prev := -1
	for _, u := range idx {
		if u < 0 || u >= ix.n {
			return nil, nil, fmt.Errorf("core: sparse rhs node %d outside [0,%d)", u, ix.n) //kdash:allow(hotalloc) error construction only on invalid input
		}
		if u <= prev {
			return nil, nil, fmt.Errorf("core: sparse rhs indices must be strictly ascending (%d after %d)", u, prev) //kdash:allow(hotalloc) error construction only on invalid input
		}
		prev = u
		iidx = append(iidx, ix.perm[u])
	}
	s.iidx = iidx

	// The lu solver carries ix.inv as its baked Remap, so y and sup are
	// already in original node-id order — no per-support mapping pass.
	y, sup := s.ls.Solve(iidx, val)
	return y, sup, nil
}
