package kdash_test

import (
	"bytes"
	"fmt"
	"log"

	"kdash"
)

// ExampleBuildIndex indexes a small ring-with-chord graph and runs an
// exact top-3 query.
func ExampleBuildIndex() {
	b := kdash.NewBuilder(5)
	for _, e := range []struct {
		from, to int
		w        float64
	}{
		{0, 1, 2}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 0, 1}, {0, 2, 1},
	} {
		if err := b.AddEdge(e.from, e.to, e.w); err != nil {
			log.Fatal(err)
		}
	}
	ix, err := kdash.BuildIndex(b.Build(), kdash.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	results, _, err := ix.TopK(0, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("%d. node %d (%.4f)\n", i+1, r.Node, r.Score)
	}
	// Output:
	// 1. node 0 (0.9500)
	// 2. node 1 (0.0317)
	// 3. node 2 (0.0174)
}

// ExampleIndex_TopKPersonalized restarts the walk into a weighted seed
// set (Personalized PageRank) and still gets exact answers.
func ExampleIndex_TopKPersonalized() {
	b := kdash.NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 2}, {1, 2}, {4, 5}, {5, 4}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			log.Fatal(err)
		}
	}
	ix, err := kdash.BuildIndex(b.Build(), kdash.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	results, _, err := ix.TopKPersonalized(map[int]float64{0: 3, 2: 1}, 2)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("%d. node %d\n", i+1, r.Node)
	}
	// Output:
	// 1. node 0
	// 2. node 2
}

// ExampleIndex_Save round-trips an index through its binary serialisation.
func ExampleIndex_Save() {
	b := kdash.NewBuilder(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			log.Fatal(err)
		}
	}
	ix, err := kdash.BuildIndex(b.Build(), kdash.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := kdash.LoadIndex(&buf)
	if err != nil {
		log.Fatal(err)
	}
	results, _, err := loaded.TopK(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top node: %d\n", results[0].Node)
	// Output:
	// top node: 0
}
