package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"kdash/tools/kdashvet/internal/framework"
)

// PoolRelease enforces the pooling contract: a value checked out of a
// sync.Pool — directly via (*sync.Pool).Get or through a getter
// annotated //kdash:pooled — must reach its release (a call annotated
// //kdash:release, or (*sync.Pool).Put) on every path out of the
// acquiring function. Early returns must release first (or the release
// must be deferred, which also covers panicking paths); a value acquired
// inside a loop body must be released before the next iteration; using a
// value after releasing it violates the pool's ownership hand-off and is
// reported too. Passing the value to another function, storing it into a
// field, or returning it transfers ownership and ends tracking.
var PoolRelease = &framework.Analyzer{
	Name: "poolrelease",
	Doc: "checks that pooled values (push states, search workspaces, sparse solvers, " +
		"trace recorders) are released on all paths",
	Run: runPoolRelease,
}

// vstate is the abstract ownership state of one tracked pooled value.
type vstate int

const (
	vLive     vstate = iota // checked out, release still owed
	vReleased               // released on this path; further use is a bug
	vDeferred               // release deferred: owed nothing, uses stay legal
	vEscaped                // ownership transferred; no longer our concern
)

// tracked is the shared analysis record for one pooled value; aliases of
// the same value point at the same record.
type tracked struct {
	state      vstate
	name       string
	getterName string
	acquirePos token.Pos
	// assertedOK marks the `v, ok := pool.Get().(*T)` comma-ok form,
	// where falling out of the if means the assertion failed and there is
	// no value to release.
	assertedOK bool
}

type prEnv map[*types.Var]*tracked

func (e prEnv) clone() prEnv {
	memo := map[*tracked]*tracked{}
	out := make(prEnv, len(e))
	for v, t := range e {
		nt, ok := memo[t]
		if !ok {
			c := *t
			nt = &c
			memo[t] = nt
		}
		out[v] = nt
	}
	return out
}

// merge folds env b into a at a control-flow join. A value is released
// after the join only if no surviving path still owes the release.
func (e prEnv) merge(b prEnv) {
	for v, ta := range e {
		tb, ok := b[v]
		if !ok {
			continue
		}
		ta.state = mergeState(ta.state, tb.state)
	}
	for v, tb := range b {
		if _, ok := e[v]; !ok {
			e[v] = tb
		}
	}
}

func mergeState(a, b vstate) vstate {
	switch {
	case a == b:
		return a
	case a == vEscaped || b == vEscaped:
		return vEscaped
	case a == vLive || b == vLive:
		return vLive
	default: // released + deferred
		return vDeferred
	}
}

type prWalker struct {
	pass       *framework.Pass
	info       *types.Info
	pooledFns  map[*types.Func]bool
	releaseFns map[*types.Func]bool
}

func runPoolRelease(pass *framework.Pass) error {
	decls := funcDecls(pass)
	w := &prWalker{
		pass:       pass,
		info:       pass.TypesInfo,
		pooledFns:  map[*types.Func]bool{},
		releaseFns: map[*types.Func]bool{},
	}
	for fn, fd := range decls {
		ds := framework.FuncDirectives(fd)
		if ds["pooled"] {
			w.pooledFns[fn] = true
		}
		if ds["release"] {
			w.releaseFns[fn] = true
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			env := prEnv{}
			if w.stmts(fd.Body.List, env) {
				w.checkExit(env, fd.Body.Rbrace)
			}
		}
	}
	return nil
}

// acquisition returns the pooled-getter call underlying e (unwrapping a
// type assertion such as pool.Get().(*T)), or nil.
func (w *prWalker) acquisition(e ast.Expr) *ast.CallExpr {
	switch e := ast.Unparen(e).(type) {
	case *ast.TypeAssertExpr:
		return w.acquisition(e.X)
	case *ast.CallExpr:
		fn := calleeFunc(w.info, e)
		if fn == nil {
			return nil
		}
		if w.pooledFns[fn] || fn.FullName() == "(*sync.Pool).Get" {
			return e
		}
	}
	return nil
}

// releaseTargets returns the tracked records a call releases, if it is a
// release-style call.
func (w *prWalker) releaseTargets(call *ast.CallExpr, env prEnv) []*tracked {
	fn := calleeFunc(w.info, call)
	if fn == nil {
		return nil
	}
	if !w.releaseFns[fn] && fn.FullName() != "(*sync.Pool).Put" {
		return nil
	}
	var ts []*tracked
	for _, op := range callOperands(call) {
		if v := identObj(w.info, op); v != nil {
			if t, ok := env[v]; ok {
				ts = append(ts, t)
			}
		}
	}
	return ts
}

// stmts walks a statement list, mutating env; it reports whether control
// can fall out the end of the list.
func (w *prWalker) stmts(list []ast.Stmt, env prEnv) bool {
	for _, s := range list {
		if !w.stmt(s, env) {
			return false
		}
	}
	return true
}

func (w *prWalker) stmt(s ast.Stmt, env prEnv) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.assign(s.Lhs, s.Rhs, env)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					w.assign(lhs, vs.Values, env)
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && w.acquisition(s.X) != nil {
			w.pass.Reportf(call.Pos(), "result of pooled getter %s is discarded: the checked-out value can never be released", callName(call))
			return true
		}
		w.scanExpr(s.X, env)
	case *ast.DeferStmt:
		if ts := w.releaseTargets(s.Call, env); len(ts) > 0 {
			for _, t := range ts {
				t.state = vDeferred
			}
			return true
		}
		w.scanExpr(s.Call, env)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if v := identObj(w.info, r); v != nil {
				if t, ok := env[v]; ok {
					t.state = vEscaped // ownership returned to the caller
				}
			}
			w.scanExpr(r, env)
		}
		w.checkExit(env, s.Pos())
		return false
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, env)
			defer w.dropScoped(s.Init, env)
		}
		w.scanExpr(s.Cond, env)
		thenEnv := env.clone()
		ftThen := w.stmts(s.Body.List, thenEnv)
		if s.Else == nil {
			if ftThen {
				env.merge(thenEnv)
			}
			return true
		}
		elseEnv := env.clone()
		ftElse := w.stmt(s.Else, elseEnv)
		switch {
		case ftThen && ftElse:
			replace(env, thenEnv)
			env.merge(elseEnv)
		case ftThen:
			replace(env, thenEnv)
		case ftElse:
			replace(env, elseEnv)
		default:
			return false
		}
	case *ast.BlockStmt:
		return w.stmts(s.List, env)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, env)
			defer w.dropScoped(s.Init, env)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, env)
		}
		w.loopBody(s.Body, s.Post, env)
	case *ast.RangeStmt:
		w.scanExpr(s.X, env)
		w.loopBody(s.Body, nil, env)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, env)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, env)
		}
		return w.caseClauses(s.Body, env, true)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, env)
		}
		w.stmt(s.Assign, env)
		return w.caseClauses(s.Body, env, true)
	case *ast.SelectStmt:
		return w.caseClauses(s.Body, env, false)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, env)
	case *ast.GoStmt:
		w.scanExpr(s.Call, env)
	case *ast.BranchStmt:
		if s.Tok == token.GOTO {
			// Unstructured flow: stop tracking rather than guess.
			for _, t := range env {
				t.state = vEscaped
			}
		}
		if s.Tok == token.BREAK || s.Tok == token.CONTINUE {
			return false // path leaves this statement list
		}
	case *ast.SendStmt:
		w.scanExpr(s.Chan, env)
		w.scanExpr(s.Value, env)
	case *ast.IncDecStmt:
		w.scanExpr(s.X, env)
	}
	return true
}

// dropScoped removes variables declared by an if/for Init statement from
// env once the statement's scope ends: a value that escaped or leaked
// inside the branch was already handled there, and the variable does not
// exist afterwards.
func (w *prWalker) dropScoped(init ast.Stmt, env prEnv) {
	as, ok := init.(*ast.AssignStmt)
	if !ok {
		return
	}
	for _, l := range as.Lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok {
			if v, ok := w.info.Defs[id].(*types.Var); ok {
				if t, tracked := env[v]; tracked && t.state == vLive && !t.assertedOK {
					w.pass.Reportf(t.acquirePos, "%s acquired from %s is not released on the path falling out of its if/for scope", t.name, t.getterName)
				}
				delete(env, v)
			}
		}
	}
}

// replace rebinds env's entries to those of src in place (env is a join
// result built from a cloned branch environment).
func replace(env, src prEnv) {
	for v := range env {
		delete(env, v)
	}
	for v, t := range src {
		env[v] = t
	}
}

// loopBody analyzes a loop body: values acquired inside the body must be
// released by the time an iteration ends (the next Get would orphan
// them), and releases inside the body do not count for code after the
// loop, which must assume zero iterations.
func (w *prWalker) loopBody(body *ast.BlockStmt, post ast.Stmt, env prEnv) {
	pre := map[*types.Var]bool{}
	for v := range env {
		pre[v] = true
	}
	bodyEnv := env.clone()
	ft := w.stmts(body.List, bodyEnv)
	if post != nil {
		w.stmt(post, bodyEnv)
	}
	if ft {
		for v, t := range bodyEnv {
			if !pre[v] && t.state == vLive {
				w.pass.Reportf(t.acquirePos, "%s acquired from %s inside the loop body is not released before the iteration ends", t.name, t.getterName)
				t.state = vEscaped // report once
			}
		}
	}
	// After the loop: keep the conservative pre-loop view for pre-existing
	// values (the body may run zero times), but surface body escapes.
	for v, t := range bodyEnv {
		if pre[v] && t.state == vEscaped {
			env[v].state = vEscaped
		}
	}
}

// caseClauses analyzes a switch/select body; withImplicitDefault adds the
// fall-past path when no default clause exists.
func (w *prWalker) caseClauses(body *ast.BlockStmt, env prEnv, withImplicitDefault bool) bool {
	var merged prEnv
	anyFT := false
	hasDefault := false
	for _, cs := range body.List {
		var stmtsList []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			for _, e := range cs.List {
				w.scanExpr(e, env)
			}
			if cs.List == nil {
				hasDefault = true
			}
			stmtsList = cs.Body
		case *ast.CommClause:
			if cs.Comm != nil {
				w.stmt(cs.Comm, env.clone())
			} else {
				hasDefault = true
			}
			stmtsList = cs.Body
		}
		caseEnv := env.clone()
		if w.stmts(stmtsList, caseEnv) {
			anyFT = true
			if merged == nil {
				merged = caseEnv
			} else {
				merged.merge(caseEnv)
			}
		}
	}
	if withImplicitDefault && !hasDefault {
		anyFT = true
		if merged == nil {
			merged = env.clone()
		} else {
			merged.merge(env)
		}
	}
	if merged != nil {
		replace(env, merged)
	}
	return anyFT || merged == nil
}

// assign handles acquisitions, aliasing, overwrites and heap stores.
func (w *prWalker) assign(lhs, rhs []ast.Expr, env prEnv) {
	// v := getter()  (also v, ok := pool.Get().(*T))
	if len(rhs) == 1 && len(lhs) >= 1 {
		if call := w.acquisition(rhs[0]); call != nil {
			if v := identObj(w.info, lhs[0]); v != nil {
				if old, ok := env[v]; ok && old.state == vLive {
					w.pass.Reportf(lhs[0].Pos(), "%s reassigned while the previous pooled value from %s is still unreleased", old.name, old.getterName)
				}
				_, isAssert := ast.Unparen(rhs[0]).(*ast.TypeAssertExpr)
				env[v] = &tracked{
					state:      vLive,
					name:       v.Name(),
					getterName: callName(call),
					acquirePos: rhs[0].Pos(),
					assertedOK: isAssert && len(lhs) == 2,
				}
				return
			}
			// Acquisition into a non-identifier (field, map entry):
			// ownership lands on the heap; out of scope.
			return
		}
	}
	if len(lhs) == len(rhs) {
		for i := range lhs {
			w.assignOne(lhs[i], rhs[i], env)
		}
		return
	}
	for _, r := range rhs {
		w.scanExpr(r, env)
	}
	for _, l := range lhs {
		w.scanLHS(l, env)
	}
}

func (w *prWalker) assignOne(l, r ast.Expr, env prEnv) {
	// u := v — alias shares the record.
	if rv := identObj(w.info, r); rv != nil {
		if t, ok := env[rv]; ok {
			if lv := identObj(w.info, l); lv != nil {
				env[lv] = t
				return
			}
			// v stored into a field/slot: ownership transferred.
			t.state = vEscaped
			return
		}
	}
	w.scanExpr(r, env)
	w.scanLHS(l, env)
}

func (w *prWalker) scanLHS(l ast.Expr, env prEnv) {
	if lv := identObj(w.info, l); lv != nil {
		if old, ok := env[lv]; ok && old.state == vLive {
			w.pass.Reportf(l.Pos(), "%s reassigned while the previous pooled value from %s is still unreleased", old.name, old.getterName)
			delete(env, lv)
		}
		return
	}
	w.scanExpr(l, env) // uses inside index/selector expressions
}

// scanExpr inspects an expression for release calls, ownership escapes
// and use-after-release of tracked values.
func (w *prWalker) scanExpr(e ast.Expr, env prEnv) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if ts := w.releaseTargets(n, env); len(ts) > 0 {
				for _, t := range ts {
					if t.state == vReleased {
						w.pass.Reportf(n.Pos(), "%s released twice (double Put corrupts the pool)", t.name)
					}
					t.state = vReleased
				}
				return false
			}
			// Receiver method call on a tracked value is a plain use;
			// passing a tracked value as an argument hands ownership off.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				w.checkUse(sel.X, env)
			}
			for _, a := range n.Args {
				if v := identObj(w.info, a); v != nil {
					if t, ok := env[v]; ok {
						if t.state == vReleased {
							w.pass.Reportf(a.Pos(), "%s used after release (pooled value was already returned to the pool)", t.name)
						} else {
							t.state = vEscaped
						}
						continue
					}
				}
				w.scanExpr(a, env)
			}
			w.scanExpr(n.Fun, env)
			return false
		case *ast.FuncLit:
			// A closure capturing a pooled value may outlive the release
			// point; stop tracking.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := w.info.ObjectOf(id).(*types.Var); ok {
						if t, ok := env[v]; ok {
							t.state = vEscaped
						}
					}
				}
				return true
			})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if v := identObj(w.info, n.X); v != nil {
					if t, ok := env[v]; ok {
						t.state = vEscaped
						return false
					}
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if vv := identObj(w.info, v); vv != nil {
					if t, ok := env[vv]; ok {
						t.state = vEscaped
					}
				}
			}
		case *ast.Ident:
			w.checkUse(n, env)
		}
		return true
	})
}

// checkUse flags reads of a value that was already released.
func (w *prWalker) checkUse(e ast.Expr, env prEnv) {
	if v := identObj(w.info, e); v != nil {
		if t, ok := env[v]; ok && t.state == vReleased {
			w.pass.Reportf(e.Pos(), "%s used after release (pooled value was already returned to the pool)", t.name)
		}
	}
}

// checkExit reports values still owed a release when control leaves the
// function at pos.
func (w *prWalker) checkExit(env prEnv, pos token.Pos) {
	seen := map[*tracked]bool{}
	for _, t := range env {
		if t.state == vLive && !seen[t] {
			seen[t] = true
			w.pass.Reportf(pos, "return without releasing %s (checked out from %s at line %d)",
				t.name, t.getterName, w.pass.Fset.Position(t.acquirePos).Line)
		}
	}
}

func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "pooled getter"
}
