// Package server exposes a K-dash index over HTTP, the deployment shape
// the paper's motivating applications (recommenders, link prediction,
// image captioning) consume proximity queries in: build or load the index
// once, then serve exact top-k answers at microsecond latency. Both the
// monolithic core.Index and the partitioned shard.ShardedIndex plug in
// behind the same endpoints via the Engine interface.
//
// The handler validates requests before they reach the engine and maps
// failures precisely: malformed input is 400, engine failures and
// recovered panics are 500, and both are counted separately in /statz so
// operators can tell client noise from server trouble.
//
// /statz is the single observability surface: query/error/panic
// counters, per-query work, update and cache statistics, how the index
// was brought up (WithOpenInfo: open wall clock and backing mode), the
// OS resident set, and whatever the engine itself exposes via Statz —
// for a memory-mapped sharded index that includes which shard files
// traffic has actually opened. The field-by-field reference lives in
// README.md's Operations section; docs/ARCHITECTURE.md covers the
// epoch-swap contract POST /update relies on.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kdash/internal/core"
	"kdash/internal/obs"
	"kdash/internal/procmem"
	"kdash/internal/rpc"
	"kdash/internal/topk"
)

// Engine is the query surface the server needs. *core.Index and
// *shard.ShardedIndex both satisfy it, so one server binary serves either
// index shape with unchanged endpoint contracts.
type Engine interface {
	N() int
	Restart() float64
	Search(q int, opt core.SearchOptions) ([]topk.Result, core.SearchStats, error)
	TopKPersonalized(seeds map[int]float64, k int) ([]topk.Result, core.SearchStats, error)
	Proximity(q, u int) (float64, error)
	ProximityVector(q int) ([]float64, error)
}

// BatchEngine is implemented by engines with a native batched execution
// path (both index shapes have one). Engines without it are served by a
// sequential fallback, so /topk/batch works against any Engine.
type BatchEngine interface {
	SearchBatch(queries []core.BatchQuery) ([][]topk.Result, []core.SearchStats, error)
}

// BatchCtxEngine is the cancellable refinement of BatchEngine (both
// index shapes implement it): a cancelled context abandons the batch
// between its internal solve steps instead of running it to the end
// for a client that already hung up.
type BatchCtxEngine interface {
	SearchBatchCtx(ctx context.Context, queries []core.BatchQuery) ([][]topk.Result, []core.SearchStats, error)
}

// Statser is implemented by engines that expose build-time observability
// (shard sizes, factor sparsity, ...) for /statz.
type Statser interface {
	Statz() map[string]interface{}
}

// DefaultMaxBatch bounds /topk/batch request sizes: large enough for any
// sane fan-out, small enough that one request cannot monopolise the
// process.
const DefaultMaxBatch = 1024

// Option configures a Handler.
type Option func(*Handler)

// WithCache enables an LRU proximity-vector cache of the given capacity
// (entries; <= 0 leaves caching off). Hot repeated query nodes — the
// skewed access pattern recommender traffic has — are answered by
// re-ranking the cached vector instead of re-running the engine. Each
// entry holds a full n-entry vector, so capacity trades memory for hit
// rate. Cache misses on /topk compute the full proximity vector, which
// for the monolithic engine costs more than its pruned search: enable
// caching for sharded engines or genuinely skewed workloads.
func WithCache(entries int) Option {
	return func(h *Handler) {
		if entries > 0 {
			h.cache = newVectorCache(entries)
		}
	}
}

// WithMaxBatch overrides the /topk/batch size limit (default
// DefaultMaxBatch); <= 0 keeps the default.
func WithMaxBatch(n int) Option {
	return func(h *Handler) {
		if n > 0 {
			h.maxBatch = n
		}
	}
}

// WithOpenInfo records how the serving index was brought up — wall
// clock of the build or load, and the backing mode ("built", "parse",
// "mmap", "copy") — for the /statz "load" block, so operators can see
// cold-start cost and paging mode without scraping process logs.
func WithOpenInfo(d time.Duration, mode string) Option {
	return func(h *Handler) {
		h.openTime = d
		h.openMode = mode
	}
}

// WithRequestLog enables structured request logging: one line per
// completed request (endpoint, status, latency, trace id) through the
// given logger. A nil logger leaves logging off.
func WithRequestLog(l *slog.Logger) Option {
	return func(h *Handler) { h.logger = l }
}

// WithDefaultTimeout bounds every request's context by d (<= 0 leaves
// requests unbounded). A per-request ?budget=<duration> overrides it
// either way; a query that exhausts its budget mid-solve answers 499
// and counts toward kdash_queries_cancelled_total.
func WithDefaultTimeout(d time.Duration) Option {
	return func(h *Handler) {
		if d > 0 {
			h.defaultTimeout = d
		}
	}
}

// engineState is one immutable epoch of the serving engine: the engine
// plus its optional capabilities, resolved once per swap. Every request
// loads the pointer exactly once and runs entirely against that
// snapshot, so an update swapping the pointer mid-flight never hands a
// request two different indexes — the copy-on-swap epoch scheme that
// makes POST /update safe against pooled in-flight queries.
type engineState struct {
	engine   Engine
	batch    BatchEngine    // nil: fall back to sequential Search
	batchCtx BatchCtxEngine // nil: batch runs without cancellation checks
	upd      Updatable      // nil: static engine, /update answers 501
	epoch    int
}

// Handler serves queries against one engine.
type Handler struct {
	state          atomic.Pointer[engineState]
	updateMu       sync.Mutex // serialises /update appliers (single writer)
	mux            *http.ServeMux
	start          time.Time
	maxBatch       int
	cache          *vectorCache // nil: caching disabled
	openTime       time.Duration
	openMode       string        // how the index was brought up (WithOpenInfo)
	logger         *slog.Logger  // nil: request logging off (WithRequestLog)
	wals           *walState     // nil: synchronous updates; set by NewDurable (wal.go)
	defaultTimeout time.Duration // 0: requests unbounded (WithDefaultTimeout)

	// Request telemetry (obs.go): per-endpoint latency histograms and
	// status counters, the in-flight gauge, and the pooled trace
	// recorders ?trace=1 requests borrow.
	endpoints map[string]*endpointMetrics
	inFlight  atomic.Int64
	tracePool sync.Pool

	// Cumulative counters, expvar-backed so they are atomic and cheap on
	// the hot path. They are per-handler (not globally published): tests
	// and multi-index processes may hold several handlers.
	qTopK         expvar.Int
	qPers         expvar.Int
	qProx         expvar.Int
	qBatch        expvar.Int // /topk/batch requests
	qBatchQueries expvar.Int // queries inside those requests
	qBadRequest   expvar.Int // 400s: client-side input problems
	qInternal     expvar.Int // 500s: engine failures and panics
	qPanics       expvar.Int // recovered panics (also counted in qInternal)
	qCancelled    expvar.Int // 499s: client went away mid-solve
	qUnavailable  expvar.Int // 503s: a coordinator lost a worker mid-query
	visited       expvar.Int
	proxComps     expvar.Int
	terminated    expvar.Int
	cacheHits     expvar.Int
	cacheMisses   expvar.Int

	// Update-path counters.
	qUpdates       expvar.Int // /update requests accepted and applied
	updUnsupported expvar.Int // /update against a static engine (501)
	updShards      expvar.Int // cumulative shards refactorized by updates
	updReparts     expvar.Int // updates that triggered a re-partition
	updEdges       expvar.Int // cumulative edge ops applied
	updNodes       expvar.Int // cumulative nodes inserted
}

// New wraps an engine in an http.Handler. The engine must not be modified
// afterwards (indexes are immutable after construction, so this is the
// natural usage); POST /update replaces the engine with a successor
// epoch rather than mutating it.
func New(engine Engine, opts ...Option) *Handler {
	h := &Handler{mux: http.NewServeMux(), start: time.Now(), maxBatch: DefaultMaxBatch}
	// Seed the epoch from the engine itself: a server started from a
	// saved, previously-updated sharded index reports that index's real
	// epoch, not 0 (the v2 manifest persists it; a monolithic index
	// serialises without its epoch — or its graph — so it reloads at 0
	// and /update answers 501 anyway).
	epoch := 0
	if e, ok := engine.(interface{ Epoch() int }); ok {
		epoch = e.Epoch()
	}
	h.state.Store(newEngineState(engine, epoch))
	for _, o := range opts {
		o(h)
	}
	h.endpoints = make(map[string]*endpointMetrics, len(endpointNames))
	for _, name := range endpointNames {
		h.endpoints[name] = &endpointMetrics{}
	}
	for _, ep := range []struct {
		path, name string
		fn         http.HandlerFunc
	}{
		{"/topk", "topk", h.topK},
		{"/topk/batch", "batch", h.topKBatch},
		{"/personalized", "personalized", h.personalized},
		{"/proximity", "proximity", h.proximity},
		{"/update", "update", h.update},
		{"/healthz", "healthz", h.health},
		{"/statz", "statz", h.statz},
		{"/metrics", "metrics", h.metrics},
	} {
		h.mux.HandleFunc(ep.path, h.instrument(ep.name, ep.fn))
	}
	return h
}

// newEngineState resolves an engine's optional capabilities into one
// immutable epoch snapshot.
func newEngineState(engine Engine, epoch int) *engineState {
	st := &engineState{engine: engine, epoch: epoch}
	if be, ok := engine.(BatchEngine); ok {
		st.batch = be
	}
	if bc, ok := engine.(BatchCtxEngine); ok {
		st.batchCtx = bc
	}
	if u, ok := engine.(Updatable); ok {
		st.upd = u
	}
	return st
}

// snap returns the current engine epoch. Handlers call it exactly once
// per request and thread the snapshot through, never re-loading.
func (h *Handler) snap() *engineState { return h.state.Load() }

// snapRead is the query-path snapshot: in durable (WAL) mode it first
// waits on the read barrier until the published engine covers every
// update acked before this request arrived — the read-your-writes
// guarantee that keeps WAL-mode answers exact (bit-identical to
// synchronous applies) rather than stale. The false return means the
// request's context expired while waiting and the 499 has been written.
func (h *Handler) snapRead(w http.ResponseWriter, r *http.Request) (*engineState, bool) {
	if h.wals != nil {
		if err := h.wals.waitApplied(r.Context()); err != nil {
			h.cancelled(w, err)
			return nil, false
		}
	}
	return h.snap(), true
}

// ServeHTTP implements http.Handler. A panic anywhere below — the shard
// solve path asserts internal invariants with panics — is recovered into
// a 500 and counted, instead of killing the connection with no response.
// (If the handler had already started writing a body, the error document
// is appended best-effort; the status line is gone either way, but the
// connection and the process survive.)
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			h.qPanics.Add(1)
			h.qInternal.Add(1)
			httpError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
		}
	}()
	h.mux.ServeHTTP(w, r)
}

// countWork folds a successful query's per-query work into the
// cumulative counters.
func (h *Handler) countWork(stats core.SearchStats) {
	h.visited.Add(int64(stats.Visited))
	h.proxComps.Add(int64(stats.ProximityComputations))
	if stats.Terminated {
		h.terminated.Add(1)
	}
}

// badRequest reports a client-side input problem (HTTP 400).
func (h *Handler) badRequest(w http.ResponseWriter, format string, args ...interface{}) {
	h.qBadRequest.Add(1)
	httpError(w, http.StatusBadRequest, fmt.Sprintf(format, args...))
}

// internalError reports an engine-side failure (HTTP 500). Requests are
// fully validated before they reach the engine, so anything the engine
// still rejects is a server problem, not the client's.
func (h *Handler) internalError(w http.ResponseWriter, err error) {
	h.qInternal.Add(1)
	httpError(w, http.StatusInternalServerError, err.Error())
}

// unavailable maps a coordinator's worker-loss failure to HTTP 503 with
// a Retry-After hint, reporting whether it handled the error. The
// distributed engine's contract is exact-or-nothing: a solve that could
// not reach the worker owning its shard yields this typed error and no
// partial answer, so the honest HTTP translation is "retry shortly",
// never a wrong body or a generic 500.
func (h *Handler) unavailable(w http.ResponseWriter, err error) bool {
	if !errors.Is(err, rpc.ErrUnavailable) {
		return false
	}
	h.qUnavailable.Add(1)
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusServiceUnavailable, err.Error())
	return true
}

// resultJSON is one ranked answer on the wire.
type resultJSON struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}

// statsJSON reports per-query work on the wire.
type statsJSON struct {
	Visited               int  `json:"visited"`
	ProximityComputations int  `json:"proximityComputations"`
	Terminated            bool `json:"terminated"`
}

// topKResponse is the /topk and /personalized payload. K is the number
// of results actually returned — fewer than requested when the graph has
// fewer reachable answers — so clients can index Results safely;
// RequestedK echoes the request.
type topKResponse struct {
	K          int          `json:"k"`
	RequestedK int          `json:"requestedK"`
	Results    []resultJSON `json:"results"`
	Stats      statsJSON    `json:"stats"`
	Cached     bool         `json:"cached,omitempty"`
	Trace      *traceJSON   `json:"trace,omitempty"` // ?trace=1 only
}

// nodeParam parses query parameter name as a node id and range-checks it
// against the request's engine snapshot.
func nodeParam(r *http.Request, name string, n int) (int, error) {
	v, err := intParam(r, name)
	if err != nil {
		return 0, err
	}
	if v < 0 || v >= n {
		return 0, fmt.Errorf("node %q = %d outside [0,%d)", name, v, n)
	}
	return v, nil
}

// parseExclude parses a comma-separated exclusion list. Out-of-range ids
// are allowed (excluding a nonexistent node is harmless); non-numeric
// ones are not.
func parseExclude(raw string) (map[int]bool, error) {
	if raw == "" {
		return nil, nil
	}
	exclude := map[int]bool{}
	for _, part := range splitComma(raw) {
		node, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad exclude id %q", part)
		}
		exclude[node] = true
	}
	return exclude, nil
}

// topK handles GET /topk?q=<node>&k=<count>[&exclude=1,2,3].
func (h *Handler) topK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	h.qTopK.Add(1)
	st, ok := h.snapRead(w, r)
	if !ok {
		return
	}
	q, err := nodeParam(r, "q", st.engine.N())
	if err != nil {
		h.badRequest(w, "%v", err)
		return
	}
	k, err := intParam(r, "k")
	if err != nil {
		h.badRequest(w, "%v", err)
		return
	}
	if k <= 0 {
		h.badRequest(w, "k must be positive, got %d", k)
		return
	}
	exclude, err := parseExclude(r.URL.Query().Get("exclude"))
	if err != nil {
		h.badRequest(w, "%v", err)
		return
	}
	opt := core.SearchOptions{K: k, Exclude: exclude, Ctx: r.Context()}
	var tr *obs.QueryTrace
	if wantTrace(r) {
		tr = h.getTrace()
		defer h.putTrace(tr)
		opt.Trace = tr
	}
	if h.cache != nil {
		// The cached path answers from a full proximity vector, so a
		// trace block carries only the cache outcome — there is no push
		// to trace on a hit, and the vector fill on a miss runs outside
		// the traced search seam.
		vec, hit, ok := h.cachedVector(w, r.Context(), st, q)
		if !ok {
			return // miss that failed; already reported
		}
		if tr != nil {
			tr.CacheHit = hit
		}
		writeResults(w, k, rankVector(vec, k, exclude), core.SearchStats{}, true, tr)
		return
	}
	results, stats, err := st.engine.Search(q, opt)
	if err != nil {
		if !h.cancelled(w, err) && !h.unavailable(w, err) {
			h.internalError(w, err)
		}
		return
	}
	h.countWork(stats)
	writeResults(w, k, results, stats, false, tr)
}

// vectorCtxEngine is the optional cancellable vector seam: an engine
// that can abandon a full-vector computation when the request's context
// (budget or disconnect) expires. Both index shapes implement it.
type vectorCtxEngine interface {
	ProximityVectorCtx(ctx context.Context, q int) ([]float64, error)
}

// cachedVector returns q's proximity vector through the LRU, computing
// and inserting it on a miss; hit reports which case served it. The
// false ok return means the engine failed and the error response has
// been written (a context expiry maps to 499, like the uncached path).
// Entries are tagged with the epoch they were computed under, and
// /update purges the cache on swap, so a hit never serves a stale
// epoch's vector.
func (h *Handler) cachedVector(w http.ResponseWriter, ctx context.Context, st *engineState, q int) (vec []float64, hit, ok bool) {
	if vec, ok := h.cache.get(q, st.epoch); ok {
		h.cacheHits.Add(1)
		return vec, true, true
	}
	h.cacheMisses.Add(1)
	var err error
	if ve, ok := st.engine.(vectorCtxEngine); ok {
		vec, err = ve.ProximityVectorCtx(ctx, q)
	} else {
		vec, err = st.engine.ProximityVector(q)
	}
	if err != nil {
		if !h.cancelled(w, err) {
			h.internalError(w, err)
		}
		return nil, false, false
	}
	h.cache.put(q, vec, st.epoch)
	return vec, false, true
}

// personalizedRequest is the POST /personalized payload.
type personalizedRequest struct {
	Seeds map[string]float64 `json:"seeds"` // node id (string) -> weight
	K     int                `json:"k"`
}

// personalized handles POST /personalized with a JSON body.
func (h *Handler) personalized(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	h.qPers.Add(1)
	st, ok := h.snapRead(w, r)
	if !ok {
		return
	}
	var req personalizedRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		h.badRequest(w, "bad JSON: %v", err)
		return
	}
	if req.K <= 0 {
		h.badRequest(w, "k must be positive, got %d", req.K)
		return
	}
	if len(req.Seeds) == 0 {
		h.badRequest(w, "empty seed set")
		return
	}
	seeds := make(map[int]float64, len(req.Seeds))
	for key, weight := range req.Seeds {
		node, err := strconv.Atoi(key)
		if err != nil {
			h.badRequest(w, "bad seed id %q", key)
			return
		}
		if node < 0 || node >= st.engine.N() {
			h.badRequest(w, "seed node %d outside [0,%d)", node, st.engine.N())
			return
		}
		if weight <= 0 {
			h.badRequest(w, "seed node %d has non-positive weight %v", node, weight)
			return
		}
		seeds[node] = weight
	}
	results, stats, err := st.engine.TopKPersonalized(seeds, req.K)
	if err != nil {
		if !h.unavailable(w, err) {
			h.internalError(w, err)
		}
		return
	}
	h.countWork(stats)
	writeResults(w, req.K, results, stats, false, nil)
}

// proximity handles GET /proximity?q=<node>&u=<node>.
func (h *Handler) proximity(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	h.qProx.Add(1)
	st, ok := h.snapRead(w, r)
	if !ok {
		return
	}
	q, err := nodeParam(r, "q", st.engine.N())
	if err != nil {
		h.badRequest(w, "%v", err)
		return
	}
	u, err := nodeParam(r, "u", st.engine.N())
	if err != nil {
		h.badRequest(w, "%v", err)
		return
	}
	// A cached vector answers the pair for free; a miss is NOT worth a
	// full vector computation for one pair, so it falls through to the
	// engine's single-pair path — but still counts as a miss, so the
	// /statz hit rate reflects the real workload.
	if h.cache != nil {
		if vec, ok := h.cache.get(q, st.epoch); ok {
			h.cacheHits.Add(1)
			writeJSON(w, map[string]float64{"proximity": vec[u]})
			return
		}
		h.cacheMisses.Add(1)
	}
	p, err := st.engine.Proximity(q, u)
	if err != nil {
		if !h.unavailable(w, err) {
			h.internalError(w, err)
		}
		return
	}
	writeJSON(w, map[string]float64{"proximity": p})
}

// health handles GET /healthz.
func (h *Handler) health(w http.ResponseWriter, r *http.Request) {
	st := h.snap()
	writeJSON(w, map[string]interface{}{
		"status":  "ok",
		"nodes":   st.engine.N(),
		"restart": st.engine.Restart(),
		"epoch":   st.epoch,
		"build":   buildInfo(),
	})
}

// statz handles GET /statz: cumulative query counters plus whatever
// build-time observability the engine exposes (per-shard sizes and cut
// statistics for a sharded index), so operators can watch shard balance
// and pruning effectiveness in production.
func (h *Handler) statz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	st := h.snap()
	// In durable mode the engine snapshot and the WAL counters must be
	// captured atomically (walStatz takes both under the compactor's
	// lock); a free-running pair could pair a pre-publish epoch with
	// post-publish WAL counters.
	var walDoc map[string]interface{}
	if h.wals != nil {
		walDoc, st = h.walStatz()
	}
	doc := map[string]interface{}{
		"uptimeSeconds": time.Since(h.start).Seconds(),
		"memory": map[string]int64{
			// rssBytes is the OS-reported resident set (0 where
			// unsupported): with a memory-mapped index it tracks the pages
			// queries have actually faulted in, which heap metrics cannot
			// see.
			"rssBytes": residentBytes(),
		},
		"queries": map[string]int64{
			"topk":         h.qTopK.Value(),
			"personalized": h.qPers.Value(),
			"proximity":    h.qProx.Value(),
			"batch":        h.qBatch.Value(),
			"batchQueries": h.qBatchQueries.Value(),
			"errors":       h.qBadRequest.Value() + h.qInternal.Value(),
			"badRequest":   h.qBadRequest.Value(),
			"internal":     h.qInternal.Value(),
			"panics":       h.qPanics.Value(),
			"cancelled":    h.qCancelled.Value(),
			"unavailable":  h.qUnavailable.Value(),
			"inFlight":     h.inFlight.Load(), // includes this /statz request
		},
		"work": map[string]int64{
			"visited":               h.visited.Value(),
			"proximityComputations": h.proxComps.Value(),
			"terminatedEarly":       h.terminated.Value(),
		},
		"updates": map[string]int64{
			"applied":       h.qUpdates.Value(),
			"epoch":         int64(st.epoch),
			"shardsRebuilt": h.updShards.Value(),
			"repartitions":  h.updReparts.Value(),
			"edgeOps":       h.updEdges.Value(),
			"nodesAdded":    h.updNodes.Value(),
			"unsupported":   h.updUnsupported.Value(),
		},
	}
	if h.openMode != "" {
		doc["load"] = map[string]interface{}{
			"openSeconds": h.openTime.Seconds(),
			"mode":        h.openMode,
		}
	}
	if lat := h.latencyStatz(); len(lat) > 0 {
		doc["latency"] = lat
	}
	if h.cache != nil {
		entries, bytes, evictions := h.cache.stats()
		doc["cache"] = map[string]int64{
			"hits":      h.cacheHits.Value(),
			"misses":    h.cacheMisses.Value(),
			"entries":   int64(entries),
			"bytes":     bytes,
			"evictions": evictions,
		}
	}
	if walDoc != nil {
		doc["wal"] = walDoc
	}
	if s, ok := st.engine.(Statser); ok {
		doc["index"] = s.Statz()
	}
	writeJSON(w, doc)
}

// latencyStatz summarises each endpoint's latency histogram for the
// /statz "latency" block: request count, mean and tail quantiles in
// microseconds. Endpoints that have served nothing are omitted.
func (h *Handler) latencyStatz() map[string]interface{} {
	lat := map[string]interface{}{}
	for _, name := range endpointNames {
		s := h.endpoints[name].lat.Snapshot()
		if s.Count == 0 {
			continue
		}
		lat[name] = map[string]interface{}{
			"count":      s.Count,
			"meanMicros": s.Mean() / 1e3,
			"p50Micros":  s.Quantile(0.5) / 1e3,
			"p99Micros":  s.Quantile(0.99) / 1e3,
			"p999Micros": s.Quantile(0.999) / 1e3,
		}
	}
	return lat
}

// writeResults writes one answer set. The wire k is the count actually
// returned, not the requested one, so clients indexing results cannot
// run off the end when the graph yields fewer answers.
func writeResults(w http.ResponseWriter, requestedK int, results []topk.Result, stats core.SearchStats, cached bool, tr *obs.QueryTrace) {
	resp := topKResponse{
		K:          len(results),
		RequestedK: requestedK,
		Results:    make([]resultJSON, len(results)),
		Stats: statsJSON{
			Visited:               stats.Visited,
			ProximityComputations: stats.ProximityComputations,
			Terminated:            stats.Terminated,
		},
		Cached: cached,
	}
	if tr != nil {
		resp.Trace = toTraceJSON(tr)
	}
	for i, r := range results {
		resp.Results[i] = resultJSON{Node: r.Node, Score: r.Score}
	}
	writeJSON(w, resp)
}

func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad query parameter %q: %v", name, err)
	}
	return v, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing sensible left to do.
		return
	}
}

// residentBytes is the OS resident set (0 where unsupported).
func residentBytes() int64 { return procmem.Resident() }

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
