package rwr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kdash/internal/gen"
	"kdash/internal/graph"
)

func buildRandomAdjacency(seed int64, n, m int) (*graph.Graph, int) {
	g := gen.ErdosRenyi(n, m, seed)
	return g, n
}

func TestIterativeSumsBelowOne(t *testing.T) {
	g := gen.ErdosRenyi(50, 200, 1)
	a := g.ColumnNormalized()
	p, iters, err := Iterative(a, 0, 0.95, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if iters <= 0 {
		t.Errorf("iters = %d", iters)
	}
	sum := 0.0
	for _, v := range p {
		if v < 0 {
			t.Errorf("negative proximity %v", v)
		}
		sum += v
	}
	// Sum is exactly 1 when there are no dangling nodes reachable; it can
	// be below 1 when walk mass dies at dangling nodes, never above.
	if sum > 1+1e-9 {
		t.Errorf("proximity mass %v > 1", sum)
	}
	if p[0] < 0.95 {
		t.Errorf("query node proximity %v should be at least c", p[0])
	}
}

func TestIterativeMatchesDenseSolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		g := gen.ErdosRenyi(n, 4*n, seed)
		a := g.ColumnNormalized()
		q := rng.Intn(n)
		c := 0.5 + 0.45*rng.Float64()
		it, _, err := Iterative(a, q, c, 1e-14, 50000)
		if err != nil {
			return false
		}
		ds, err := DenseSolve(a, q, c)
		if err != nil {
			return false
		}
		for i := range it {
			if math.Abs(it[i]-ds[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestIterativeErrors(t *testing.T) {
	g := gen.ErdosRenyi(10, 30, 2)
	a := g.ColumnNormalized()
	if _, _, err := Iterative(a, -1, 0.95, 0, 0); err == nil {
		t.Error("expected error for negative query")
	}
	if _, _, err := Iterative(a, 10, 0.95, 0, 0); err == nil {
		t.Error("expected error for query >= n")
	}
	if _, _, err := Iterative(a, 0, 0, 0, 0); err == nil {
		t.Error("expected error for c = 0")
	}
	if _, _, err := Iterative(a, 0, 1, 0, 0); err == nil {
		t.Error("expected error for c = 1")
	}
}

func TestIterativeNonConvergenceReported(t *testing.T) {
	g := gen.ErdosRenyi(30, 120, 3)
	a := g.ColumnNormalized()
	// One iteration cannot converge to 1e-14 on this graph.
	_, _, err := Iterative(a, 0, 0.5, 1e-14, 1)
	if err == nil {
		t.Error("expected convergence failure with maxIter=1")
	}
}

func TestDanglingNodeMass(t *testing.T) {
	// 0 -> 1, node 1 dangles: p0 = c + small, p1 absorbs then restarts.
	b := graph.NewBuilder(2)
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	a := b.Build().ColumnNormalized()
	p, _, err := Iterative(a, 0, 0.95, 1e-14, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Closed form: p0 = c (walk at 1 dies, only restarts feed 0);
	// p1 = (1-c) * p0.
	if math.Abs(p[0]-0.95) > 1e-9 {
		t.Errorf("p0 = %v, want 0.95", p[0])
	}
	if math.Abs(p[1]-0.05*0.95) > 1e-9 {
		t.Errorf("p1 = %v, want %v", p[1], 0.05*0.95)
	}
}

func TestTopKOrdering(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 4)
	a := g.ColumnNormalized()
	rs, err := TopK(a, 7, 10, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 10 {
		t.Fatalf("len = %d", len(rs))
	}
	if rs[0].Node != 7 {
		t.Errorf("query node should rank first, got %d", rs[0].Node)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Score > rs[i-1].Score {
			t.Errorf("results not sorted at %d", i)
		}
	}
}

func TestUnreachableNodesZero(t *testing.T) {
	b := graph.NewBuilder(4)
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	a := b.Build().ColumnNormalized()
	p, _, err := Iterative(a, 0, 0.9, 1e-14, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p[2] != 0 || p[3] != 0 {
		t.Errorf("unreachable nodes must have zero proximity: %v", p)
	}
}

func TestDenseSolveSingularGuard(t *testing.T) {
	// DenseSolve on a well-posed W never reports singular; exercise the
	// happy path with dangling nodes present.
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	a := b.Build().ColumnNormalized()
	p, err := DenseSolve(a, 0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-0.95) > 1e-12 {
		t.Errorf("p0 = %v", p[0])
	}
}
