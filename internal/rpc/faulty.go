package rpc

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Faults configures seeded per-write fault injection for FaultyConn.
// Each Write rolls once against DelayProb, then DropProb, then
// TruncProb; a drop or truncation closes the connection, so the client
// sees a torn stream mid-call — the failure mode the retry path and the
// differential harness have to prove harmless.
type Faults struct {
	Seed      int64
	DropProb  float64       // close before writing anything
	DelayProb float64       // sleep up to MaxDelay before the write
	TruncProb float64       // write a prefix of the buffer, then close
	MaxDelay  time.Duration // cap for injected delays (default 2ms)
}

// faultRNG shares one seeded stream across all connections from a
// FaultyDialer so a harness run is reproducible from a single seed.
type faultRNG struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func (f *faultRNG) roll() float64 {
	f.mu.Lock()
	v := f.rng.Float64()
	f.mu.Unlock()
	return v
}

func (f *faultRNG) intn(n int) int {
	f.mu.Lock()
	v := f.rng.Intn(n)
	f.mu.Unlock()
	return v
}

// FaultyConn wraps a net.Conn, injecting seeded drops, delays, and
// truncations on writes. Reads pass through: cutting the write side is
// enough to tear any framed call, and keeping reads clean makes the
// injected failures deterministic functions of the call sequence.
type FaultyConn struct {
	net.Conn
	f   Faults
	rng *faultRNG
}

// Write applies the fault roll, then forwards to the wrapped conn.
func (fc *FaultyConn) Write(p []byte) (int, error) {
	if fc.f.DelayProb > 0 && fc.rng.roll() < fc.f.DelayProb {
		max := fc.f.MaxDelay
		if max <= 0 {
			max = 2 * time.Millisecond
		}
		time.Sleep(time.Duration(fc.rng.intn(int(max))) + time.Microsecond)
	}
	if fc.f.DropProb > 0 && fc.rng.roll() < fc.f.DropProb {
		fc.Conn.Close()
		return 0, fmt.Errorf("faultyconn: injected drop")
	}
	if fc.f.TruncProb > 0 && fc.rng.roll() < fc.f.TruncProb && len(p) > 1 {
		n := 1 + fc.rng.intn(len(p)-1)
		fc.Conn.Write(p[:n]) //nolint:errcheck // best-effort torn prefix
		fc.Conn.Close()
		return n, fmt.Errorf("faultyconn: injected truncation after %d/%d bytes", n, len(p))
	}
	return fc.Conn.Write(p)
}

// FaultyDialer wraps dial so every connection it opens injects faults
// from one shared seeded stream.
func FaultyDialer(dial DialFunc, f Faults) DialFunc {
	shared := &faultRNG{rng: rand.New(rand.NewSource(f.Seed))}
	if dial == nil {
		dial = NetDial
	}
	return func(addr string) (net.Conn, error) {
		nc, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return &FaultyConn{Conn: nc, f: f, rng: shared}, nil
	}
}
