package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"kdash/internal/reorder"
	"kdash/internal/shard"
	"kdash/internal/testutil"
)

func updatableHandler(t *testing.T, opts ...Option) *Handler {
	t.Helper()
	g := testutil.Clustered(120, 4, 1)
	sx, err := shard.Build(g, shard.Options{Shards: 4, Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return New(sx, opts...)
}

func TestUpdateEndpointSharded(t *testing.T) {
	h := updatableHandler(t)
	// Insert a node wired to node 3 and re-weight an edge.
	rec := post(t, h, "/update", `{"addNodes":1,"addEdges":[{"from":120,"to":3,"weight":2},{"from":3,"to":120,"weight":2}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp updateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != 1 || resp.Nodes != 121 || resp.NodesAdded != 1 || resp.EdgesAdded != 2 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.FullRebuild || resp.ShardsRebuilt == 0 || resp.ShardsRebuilt >= 4 {
		t.Fatalf("sharded update rebuilt %d shards (full=%v)", resp.ShardsRebuilt, resp.FullRebuild)
	}
	// The new node is immediately queryable and ranks its neighbour.
	qrec, _ := get(t, h, "/topk?q=120&k=3")
	if qrec.Code != http.StatusOK {
		t.Fatalf("query on new node: %d %s", qrec.Code, qrec.Body.String())
	}
	var q struct {
		Results []struct {
			Node int `json:"node"`
		} `json:"results"`
	}
	if err := json.Unmarshal(qrec.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range q.Results {
		if r.Node == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("new node's neighbour missing from answer: %+v", q.Results)
	}
	// healthz and statz reflect the swap.
	hrec, hbody := get(t, h, "/healthz")
	if hrec.Code != http.StatusOK || string(hbody["epoch"]) != "1" || string(hbody["nodes"]) != "121" {
		t.Errorf("healthz after update: %s", hrec.Body.String())
	}
	srec, _ := get(t, h, "/statz")
	var statz struct {
		Updates map[string]int64 `json:"updates"`
	}
	if err := json.Unmarshal(srec.Body.Bytes(), &statz); err != nil {
		t.Fatal(err)
	}
	if statz.Updates["applied"] != 1 || statz.Updates["epoch"] != 1 || statz.Updates["shardsRebuilt"] == 0 || statz.Updates["nodesAdded"] != 1 {
		t.Errorf("statz updates = %+v", statz.Updates)
	}
}

func TestUpdateEndpointMonolithicFullRebuild(t *testing.T) {
	h, _ := testHandler(t)
	rec := post(t, h, "/update", `{"addEdges":[{"from":0,"to":50}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp updateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.FullRebuild || resp.Epoch != 1 || resp.EdgesAdded != 1 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestUpdateEndpointValidation(t *testing.T) {
	h := updatableHandler(t)
	for _, tc := range []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},                                           // empty update
		{`{"addNodes":-1}`, http.StatusBadRequest},                              // negative insert
		{`{"addNodes":9999999}`, http.StatusBadRequest},                         // over MaxAddNodes
		{`{"addEdges":[{"from":0,"to":500}]}`, http.StatusBadRequest},           // out of range
		{`{"addEdges":[{"from":-2,"to":3}]}`, http.StatusBadRequest},            // negative node
		{`{"addEdges":[{"from":0,"to":1,"weight":-4}]}`, http.StatusBadRequest}, // negative weight
		{`{"removeEdges":[{"from":0,"to":500}]}`, http.StatusBadRequest},        // out of range
		{`{"addEdges":[{"from":0,"to":1}]}`, http.StatusOK},                     // default weight 1
	} {
		rec := post(t, h, "/update", tc.body)
		if rec.Code != tc.want {
			t.Errorf("body %q: status %d, want %d (%s)", tc.body, rec.Code, tc.want, rec.Body.String())
		}
	}
	// Removing an absent edge is a client error (400), and the engine
	// keeps serving afterwards.
	rec := post(t, h, "/update", `{"removeEdges":[{"from":5,"to":5}]}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing-edge removal: status %d (%s)", rec.Code, rec.Body.String())
	}
	if qrec, _ := get(t, h, "/topk?q=0&k=3"); qrec.Code != http.StatusOK {
		t.Errorf("engine broken after rejected update: %d", qrec.Code)
	}
	// GET is not allowed.
	grec, _ := get(t, h, "/update")
	if grec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /update: status %d", grec.Code)
	}
}

func TestUpdateUnsupportedEngine(t *testing.T) {
	// An engine without ApplyDelta — the sequential-fallback wrapper
	// hides every optional capability — answers 501.
	hm, _ := testHandler(t)
	h := New(noBatchEngine{hm.snap().engine})
	rec := post(t, h, "/update", `{"addEdges":[{"from":0,"to":1}]}`)
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501 (%s)", rec.Code, rec.Body.String())
	}
}

// TestUpdateInvalidatesCache pins the staleness bug the epoch-tagged
// cache exists for: a cached /topk answer must not survive an update
// that changes the graph under it.
func TestUpdateInvalidatesCache(t *testing.T) {
	h := updatableHandler(t, WithCache(8))
	before, _ := get(t, h, "/topk?q=0&k=5")
	if before.Code != http.StatusOK {
		t.Fatal(before.Body.String())
	}
	// Warm the cache.
	if rec, _ := get(t, h, "/topk?q=0&k=5"); rec.Code != http.StatusOK {
		t.Fatal(rec.Body.String())
	}
	// Rewire node 0 heavily towards a distant node.
	rec := post(t, h, "/update", `{"addEdges":[{"from":0,"to":99,"weight":1000}]}`)
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Body.String())
	}
	after, _ := get(t, h, "/topk?q=0&k=5")
	var a, b struct {
		Cached  bool `json:"cached"`
		Results []struct {
			Node  int     `json:"node"`
			Score float64 `json:"score"`
		} `json:"results"`
	}
	if err := json.Unmarshal(before.Body.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(after.Body.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	same := len(a.Results) == len(b.Results)
	if same {
		for i := range a.Results {
			if a.Results[i] != b.Results[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatalf("post-update answer identical to the cached pre-update one: %+v", b.Results)
	}
	found := false
	for _, r := range b.Results {
		if r.Node == 99 {
			found = true
		}
	}
	if !found {
		t.Errorf("rewired target missing from post-update answer: %+v", b.Results)
	}
}

// TestUpdateUnderQueryLoad hammers queries concurrently with updates:
// every response must be a 200 and internally consistent (no request
// may straddle two epochs). The race detector vouches for the swap.
func TestUpdateUnderQueryLoad(t *testing.T) {
	h := updatableHandler(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec, _ := get(t, h, fmt.Sprintf("/topk?q=%d&k=5", (w*17+i)%100))
				if rec.Code != http.StatusOK {
					t.Errorf("query status %d: %s", rec.Code, rec.Body.String())
					return
				}
				brec := post(t, h, "/topk/batch", fmt.Sprintf(`{"queries":[{"q":%d,"k":4},{"q":%d,"k":4}]}`, (w*7+i)%100, (w*11+i)%100))
				if brec.Code != http.StatusOK {
					t.Errorf("batch status %d: %s", brec.Code, brec.Body.String())
					return
				}
			}
		}(w)
	}
	for u := 0; u < 8; u++ {
		body := fmt.Sprintf(`{"addEdges":[{"from":%d,"to":%d,"weight":1.5}]}`, u*3, (u*3+40)%100)
		rec := post(t, h, "/update", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("update %d: status %d (%s)", u, rec.Code, rec.Body.String())
		}
	}
	close(stop)
	wg.Wait()
	srec, _ := get(t, h, "/statz")
	var statz struct {
		Updates map[string]int64 `json:"updates"`
		Queries map[string]int64 `json:"queries"`
	}
	if err := json.Unmarshal(srec.Body.Bytes(), &statz); err != nil {
		t.Fatal(err)
	}
	if statz.Updates["applied"] != 8 || statz.Updates["epoch"] != 8 {
		t.Errorf("updates = %+v", statz.Updates)
	}
	if statz.Queries["internal"] != 0 || statz.Queries["panics"] != 0 {
		t.Errorf("errors under load: %+v", statz.Queries)
	}
}
