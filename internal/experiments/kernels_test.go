package experiments

import "testing"

// The kernels sweep is self-calibrating (no config knobs), so the smoke
// test just runs it and checks shape and sanity of every row.
func TestKernelsSmoke(t *testing.T) {
	rows, err := Kernels(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(kernelStripLens) * 6; len(rows) != want {
		t.Fatalf("got %d rows, want %d (3 kernels x 2 impls per strip length)", len(rows), want)
	}
	for _, r := range rows {
		if r.NsPerOp <= 0 || r.GBps <= 0 {
			t.Fatalf("non-positive measurement: %+v", r)
		}
		if r.Impl != "scalar" && r.Impl != "avx2" && r.Impl != "neon" {
			t.Fatalf("unknown impl %q", r.Impl)
		}
	}
}
