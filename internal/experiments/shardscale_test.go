package experiments

import (
	"strings"
	"testing"
)

// TestShardScaleSmoke runs the shard-scaling experiment on a tiny graph:
// every shard count must agree with the 1-shard baseline.
func TestShardScaleSmoke(t *testing.T) {
	rows, err := ShardScale(Config{Queries: 3, Seed: 1, ShardCounts: []int{1, 3}, ShardGraphN: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if !r.Agrees {
			t.Errorf("shards=%d disagrees with baseline", r.Shards)
		}
		if r.Build <= 0 || r.Query <= 0 {
			t.Errorf("shards=%d has empty timings: %+v", r.Shards, r)
		}
	}
	if rows[1].Shards != 3 {
		t.Errorf("second row has %d shards, want 3", rows[1].Shards)
	}
	var buf strings.Builder
	WriteShardRows(&buf, rows)
	if !strings.Contains(buf.String(), "shards") || !strings.Contains(buf.String(), "true") {
		t.Errorf("shard table formatting: %q", buf.String())
	}
}
