package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// TestCacheHitMatchesEngine checks cached answers are identical to
// engine answers and that hit/miss counters advance.
func TestCacheHitMatchesEngine(t *testing.T) {
	hPlain, ix := testHandler(t)
	h := New(ix, WithCache(8))

	want, _ := get(t, hPlain, "/topk?q=7&k=5")
	miss, _ := get(t, h, "/topk?q=7&k=5")
	hit, _ := get(t, h, "/topk?q=7&k=5")
	if miss.Code != http.StatusOK || hit.Code != http.StatusOK {
		t.Fatalf("statuses %d/%d", miss.Code, hit.Code)
	}
	type cachedResp struct {
		K       int  `json:"k"`
		Cached  bool `json:"cached"`
		Results []struct {
			Node  int     `json:"node"`
			Score float64 `json:"score"`
		} `json:"results"`
	}
	var wantResp, missResp, hitResp cachedResp
	for raw, dst := range map[*cachedResp][]byte{&wantResp: want.Body.Bytes(), &missResp: miss.Body.Bytes(), &hitResp: hit.Body.Bytes()} {
		if err := json.Unmarshal(dst, raw); err != nil {
			t.Fatal(err)
		}
	}
	if !missResp.Cached || !hitResp.Cached {
		t.Errorf("cached flags = %v/%v, want true/true (both served from the vector path)", missResp.Cached, hitResp.Cached)
	}
	if len(wantResp.Results) != len(hitResp.Results) {
		t.Fatalf("%d vs %d results", len(wantResp.Results), len(hitResp.Results))
	}
	for i := range wantResp.Results {
		if wantResp.Results[i] != hitResp.Results[i] || wantResp.Results[i] != missResp.Results[i] {
			t.Errorf("rank %d: engine %+v, miss %+v, hit %+v", i, wantResp.Results[i], missResp.Results[i], hitResp.Results[i])
		}
	}

	// /proximity served from the same cached vector.
	px, _ := get(t, hPlain, "/proximity?q=7&u=9")
	pc, _ := get(t, h, "/proximity?q=7&u=9")
	var a, b struct {
		Proximity float64 `json:"proximity"`
	}
	if err := json.Unmarshal(px.Body.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(pc.Body.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if a.Proximity != b.Proximity {
		t.Errorf("proximity %v via engine, %v via cache", a.Proximity, b.Proximity)
	}

	rec, _ := get(t, h, "/statz")
	var statz struct {
		Cache struct {
			Hits    int64 `json:"hits"`
			Misses  int64 `json:"misses"`
			Entries int64 `json:"entries"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &statz); err != nil {
		t.Fatal(err)
	}
	if statz.Cache.Misses != 1 || statz.Cache.Hits < 2 || statz.Cache.Entries != 1 {
		t.Errorf("cache stats = %+v", statz.Cache)
	}
}

// TestCacheEviction checks LRU order: capacity 2, three distinct nodes,
// oldest falls out.
func TestCacheEviction(t *testing.T) {
	c := newVectorCache(2)
	c.put(1, []float64{1}, 0)
	c.put(2, []float64{2}, 0)
	if _, ok := c.get(1, 0); !ok { // refresh 1; 2 becomes LRU
		t.Fatal("entry 1 missing")
	}
	c.put(3, []float64{3}, 0)
	if _, ok := c.get(2, 0); ok {
		t.Error("LRU entry 2 survived eviction")
	}
	if _, ok := c.get(1, 0); !ok {
		t.Error("refreshed entry 1 evicted")
	}
	if _, ok := c.get(3, 0); !ok {
		t.Error("new entry 3 missing")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	// Re-putting an existing key refreshes, not duplicates.
	c.put(1, []float64{10}, 0)
	if c.len() != 2 {
		t.Errorf("len after re-put = %d, want 2", c.len())
	}
	if v, _ := c.get(1, 0); v[0] != 10 {
		t.Errorf("re-put did not replace value: %v", v)
	}
}

// TestCacheEpochInvalidation checks the swap semantics: a newer epoch
// flushes stale entries, and a put computed under an older epoch is
// dropped rather than poisoning the new epoch.
func TestCacheEpochInvalidation(t *testing.T) {
	c := newVectorCache(4)
	c.put(1, []float64{1}, 0)
	c.flush(1)
	if _, ok := c.get(1, 1); ok {
		t.Error("stale entry survived the epoch flush")
	}
	// A racing old-epoch writer must not insert.
	c.put(2, []float64{2}, 0)
	if _, ok := c.get(2, 1); ok {
		t.Error("old-epoch put landed in the new epoch")
	}
	if c.len() != 0 {
		t.Errorf("len = %d, want 0", c.len())
	}
	// A get carrying a newer epoch than the cache flushes implicitly.
	c.put(3, []float64{3}, 1)
	if _, ok := c.get(3, 2); ok {
		t.Error("entry served across epochs")
	}
	if c.len() != 0 {
		t.Errorf("len after implicit flush = %d, want 0", c.len())
	}
}

// TestCacheConcurrent hammers one handler from many goroutines; the race
// detector ensures the cache's locking is sound.
func TestCacheConcurrent(t *testing.T) {
	_, ix := testHandler(t)
	h := New(ix, WithCache(4))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				rec, _ := get(t, h, fmt.Sprintf("/topk?q=%d&k=3", (g*3+i)%6))
				if rec.Code != http.StatusOK {
					t.Errorf("status %d", rec.Code)
				}
			}
		}(g)
	}
	wg.Wait()
}
