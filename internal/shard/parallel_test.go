package shard

// Bit-identity tests for the speculative parallel push. The contract
// under test is absolute: with PushWorkers set, every query surface
// returns the same bits — same nodes, same float64 scores, same
// QueryStats — as the sequential push on the same index, because the
// parallel push commits the identical greedy solve sequence and only
// uses a speculative result when its right-hand side provably matches.
// Run under -race these tests also exercise the worker handoff
// (snapshot on main, solve on worker, publish via channel) for data
// races.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"kdash/internal/core"
	"kdash/internal/reorder"
	"kdash/internal/testutil"
)

func TestParallelPushBitIdentical(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		for _, seed := range []int64{1, 2, 3} {
			rng := rand.New(rand.NewSource(seed))
			g := testutil.Random(rng)
			sx, err := Build(g, Options{Shards: shards, Reorder: reorder.Hybrid, Seed: seed})
			if err != nil {
				t.Fatalf("shards %d seed %d: %v", shards, seed, err)
			}
			for _, workers := range []int{2, 4} {
				queries := rng.Perm(g.N())
				if len(queries) > 24 {
					queries = queries[:24]
				}
				for _, q := range queries {
					sx.pushWorkers = 0
					seqR, seqQS, err := sx.TopK(q, 10)
					if err != nil {
						t.Fatalf("shards %d seed %d q %d: sequential: %v", shards, seed, q, err)
					}
					sx.pushWorkers = workers
					parR, parQS, err := sx.TopK(q, 10)
					sx.pushWorkers = 0
					if err != nil {
						t.Fatalf("shards %d seed %d q %d: parallel: %v", shards, seed, q, err)
					}
					if len(seqR) != len(parR) {
						t.Fatalf("shards %d seed %d q %d workers %d: %d vs %d results", shards, seed, q, workers, len(seqR), len(parR))
					}
					for i := range seqR {
						if seqR[i].Node != parR[i].Node || math.Float64bits(seqR[i].Score) != math.Float64bits(parR[i].Score) {
							t.Fatalf("shards %d seed %d q %d workers %d: result %d diverged: sequential (%d, %x) parallel (%d, %x)",
								shards, seed, q, workers, i,
								seqR[i].Node, math.Float64bits(seqR[i].Score),
								parR[i].Node, math.Float64bits(parR[i].Score))
						}
					}
					if seqQS != parQS {
						t.Fatalf("shards %d seed %d q %d workers %d: stats diverged: sequential %+v parallel %+v", shards, seed, q, workers, seqQS, parQS)
					}
				}
			}
		}
	}
}

func TestParallelPushPersonalizedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testutil.Random(rng)
	sx, err := Build(g, Options{Shards: 6, Reorder: reorder.Hybrid, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		seeds := map[int]float64{}
		for len(seeds) < 3 {
			seeds[rng.Intn(g.N())] = 0.25 + rng.Float64()
		}
		sx.pushWorkers = 0
		seqR, _, err := sx.TopKPersonalized(seeds, 10)
		if err != nil {
			t.Fatalf("trial %d sequential: %v", trial, err)
		}
		sx.pushWorkers = 4
		parR, _, err := sx.TopKPersonalized(seeds, 10)
		sx.pushWorkers = 0
		if err != nil {
			t.Fatalf("trial %d parallel: %v", trial, err)
		}
		if len(seqR) != len(parR) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(seqR), len(parR))
		}
		for i := range seqR {
			if seqR[i].Node != parR[i].Node || math.Float64bits(seqR[i].Score) != math.Float64bits(parR[i].Score) {
				t.Fatalf("trial %d: result %d diverged: sequential (%d, %x) parallel (%d, %x)",
					trial, i, seqR[i].Node, math.Float64bits(seqR[i].Score), parR[i].Node, math.Float64bits(parR[i].Score))
			}
		}
	}
}

// TestParallelPushConcurrentQueries runs many parallel-push queries at
// once against one index: pool checkout must hand every request a
// private state, and each state's workers must stay confined to it.
// This is the main -race target for the speculative push.
func TestParallelPushConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := testutil.Random(rng)
	sx, err := Build(g, Options{Shards: 8, Reorder: reorder.Hybrid, Seed: 11, PushWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	queries := rng.Perm(g.N())
	if len(queries) > 32 {
		queries = queries[:32]
	}
	// Sequential reference answers first.
	type answer struct {
		nodes  []int
		scores []uint64
	}
	want := make([]answer, len(queries))
	sx.pushWorkers = 0
	for i, q := range queries {
		rs, _, err := sx.TopK(q, 10)
		if err != nil {
			t.Fatalf("reference q %d: %v", q, err)
		}
		for _, r := range rs {
			want[i].nodes = append(want[i].nodes, r.Node)
			want[i].scores = append(want[i].scores, math.Float64bits(r.Score))
		}
	}
	sx.pushWorkers = 3
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i, q := range queries {
					rs, _, err := sx.TopK(q, 10)
					if err != nil {
						select {
						case errs <- err:
						default:
						}
						return
					}
					ok := len(rs) == len(want[i].nodes)
					if ok {
						for j, r := range rs {
							if r.Node != want[i].nodes[j] || math.Float64bits(r.Score) != want[i].scores[j] {
								ok = false
								break
							}
						}
					}
					if !ok {
						select {
						case errs <- fmt.Errorf("concurrent parallel push diverged from sequential reference on query %d", q):
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestParallelPushCancel checks a cancelled context abandons a parallel
// push cleanly: the error surfaces, in-flight workers are drained, and
// the pooled state is reusable for a correct follow-up query.
func TestParallelPushCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := testutil.Random(rng)
	sx, err := Build(g, Options{Shards: 8, Reorder: reorder.Hybrid, Seed: 13, PushWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := rng.Intn(g.N())
	if _, _, err := sx.Search(q, core.SearchOptions{K: 10, Ctx: ctx}); err == nil {
		t.Fatal("cancelled parallel query returned nil error")
	}
	// The same pooled state must now serve a clean query.
	sx.pushWorkers = 0
	wantR, _, err := sx.TopK(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	sx.pushWorkers = 4
	gotR, _, err := sx.TopK(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantR) != len(gotR) {
		t.Fatalf("after cancel: %d vs %d results", len(wantR), len(gotR))
	}
	for i := range wantR {
		if wantR[i].Node != gotR[i].Node || math.Float64bits(wantR[i].Score) != math.Float64bits(gotR[i].Score) {
			t.Fatalf("after cancel: result %d diverged", i)
		}
	}
}
