package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// randStrip builds a padded (rows, vals) strip over a dst of length
// n+1: quads entries of real rows in [0, n), padded to a multiple of
// Width with the trash row n carrying value 0. With dupTrash set, some
// real entries also hit the trash row mid-strip, and rows repeat, to
// exercise in-order accumulation on colliding addresses.
func randStrip(rng *rand.Rand, n, entries int, dupTrash bool) ([]int32, []float64) {
	rows := make([]int32, 0, Pad(entries))
	vals := make([]float64, 0, Pad(entries))
	for i := 0; i < entries; i++ {
		r := int32(rng.Intn(n))
		if dupTrash && rng.Intn(8) == 0 {
			r = int32(n) // trash row, but with a real value
		}
		if dupTrash && i > 0 && rng.Intn(4) == 0 {
			r = rows[i-1] // immediate repeat within a quad
		}
		rows = append(rows, r)
		// Magnitudes spread over many exponents so that accumulation
		// order actually matters at the bit level.
		vals = append(vals, (rng.Float64()-0.5)*math.Ldexp(1, rng.Intn(40)-20))
	}
	for len(rows)%Width != 0 {
		rows = append(rows, int32(n))
		vals = append(vals, 0)
	}
	return rows, vals
}

func bitsEqual(t *testing.T, got, want []float64, label string) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: dst[%d] = %x (%v), scalar reference %x (%v)",
				label, i, math.Float64bits(got[i]), got[i],
				math.Float64bits(want[i]), want[i])
		}
	}
}

// TestScatterAXPYBitIdentical checks the dispatched kernel against the
// scalar reference bit for bit across random strips, including strips
// with duplicate rows, trash-row hits, and non-zero starting contents.
func TestScatterAXPYBitIdentical(t *testing.T) {
	t.Logf("impl=%s", Impl())
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		entries := rng.Intn(4 * n)
		rows, vals := randStrip(rng, n, entries, trial%2 == 0)
		x := (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(20)-10)

		want := make([]float64, n+1)
		got := make([]float64, n+1)
		for i := range want {
			v := (rng.Float64() - 0.5)
			want[i], got[i] = v, v
		}
		ScalarScatterAXPY(want, rows, vals, x)
		ScatterAXPY(got, rows, vals, x)
		bitsEqual(t, got, want, "ScatterAXPY")
	}
}

func TestScatterAXPY32BitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		entries := rng.Intn(4 * n)
		rows, vals64 := randStrip(rng, n, entries, trial%2 == 0)
		vals := make([]float32, len(vals64))
		for i, v := range vals64 {
			vals[i] = float32(v)
		}
		x := (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(20)-10)

		want := make([]float64, n+1)
		got := make([]float64, n+1)
		for i := range want {
			v := (rng.Float64() - 0.5)
			want[i], got[i] = v, v
		}
		ScalarScatterAXPY32(want, rows, vals, x)
		ScatterAXPY32(got, rows, vals, x)
		bitsEqual(t, got, want, "ScatterAXPY32")
	}
}

func TestScatterBlock8BitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		entries := rng.Intn(2 * n)
		// Block8 needs no padding alignment; reuse randStrip and keep
		// the padded tail — trash-row zero entries must also be exact.
		rows, vals := randStrip(rng, n, entries, trial%2 == 0)
		var x [8]float64
		for v := range x {
			x[v] = (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(20)-10)
		}

		want := make([]float64, (n+1)*8)
		got := make([]float64, (n+1)*8)
		for i := range want {
			v := (rng.Float64() - 0.5)
			want[i], got[i] = v, v
		}
		ScalarScatterBlock8(want, rows, vals, &x)
		ScatterBlock8(got, rows, vals, &x)
		bitsEqual(t, got, want, "ScatterBlock8")
	}
}

// TestScatterEmpty checks the zero-length edge on every kernel.
func TestScatterEmpty(t *testing.T) {
	dst := []float64{1, 2}
	ScatterAXPY(dst, nil, nil, 3)
	ScatterAXPY32(dst, nil, nil, 3)
	var x [8]float64
	ScatterBlock8(make([]float64, 16), nil, nil, &x)
	if dst[0] != 1 || dst[1] != 2 {
		t.Fatalf("empty scatter modified dst: %v", dst)
	}
}

func TestPad(t *testing.T) {
	cases := [][2]int{{0, 0}, {1, 4}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 12}}
	for _, c := range cases {
		if got := Pad(c[0]); got != c[1] {
			t.Fatalf("Pad(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func benchStrip(n, entries int) ([]float64, []int32, []float64) {
	rng := rand.New(rand.NewSource(42))
	rows, vals := randStrip(rng, n, entries, false)
	dst := make([]float64, n+1)
	return dst, rows, vals
}

func BenchmarkScatterAXPY(b *testing.B) {
	dst, rows, vals := benchStrip(4096, 4096)
	b.SetBytes(int64(len(rows)) * 16) // 8B value + 8B accumulator touched
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ScatterAXPY(dst, rows, vals, 1.0000001)
	}
}

func BenchmarkScatterAXPYScalar(b *testing.B) {
	dst, rows, vals := benchStrip(4096, 4096)
	b.SetBytes(int64(len(rows)) * 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ScalarScatterAXPY(dst, rows, vals, 1.0000001)
	}
}

func BenchmarkScatterAXPY32(b *testing.B) {
	dst, rows, vals64 := benchStrip(4096, 4096)
	vals := make([]float32, len(vals64))
	for i, v := range vals64 {
		vals[i] = float32(v)
	}
	b.SetBytes(int64(len(rows)) * 12) // 4B value + 8B accumulator touched
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ScatterAXPY32(dst, rows, vals, 1.0000001)
	}
}

func BenchmarkScatterBlock8(b *testing.B) {
	_, rows, vals := benchStrip(4096, 4096)
	dst := make([]float64, (4096+1)*8)
	var x [8]float64
	for i := range x {
		x[i] = 1 + float64(i)
	}
	b.SetBytes(int64(len(rows)) * (8 + 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ScatterBlock8(dst, rows, vals, &x)
	}
}

func BenchmarkScatterBlock8Scalar(b *testing.B) {
	_, rows, vals := benchStrip(4096, 4096)
	dst := make([]float64, (4096+1)*8)
	var x [8]float64
	for i := range x {
		x[i] = 1 + float64(i)
	}
	b.SetBytes(int64(len(rows)) * (8 + 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ScalarScatterBlock8(dst, rows, vals, &x)
	}
}
