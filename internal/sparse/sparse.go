// Package sparse provides compressed sparse row/column matrices and the
// small set of operations the K-dash reproduction needs: construction from
// triplets, matrix-vector products, transposition, symmetric permutation,
// and dense conversion for tests.
//
// All matrices hold float64 values and use int indices. Within each row
// (CSR) or column (CSC) the indices are kept sorted and unique; the
// constructors take care of sorting and of summing duplicate entries.
package sparse

import (
	"fmt"
	"sort"
)

// Triplet is a single (row, col, value) coordinate entry.
type Triplet struct {
	Row, Col int
	Val      float64
}

// COO accumulates coordinate-format entries before compression.
// Duplicate coordinates are summed during compression.
type COO struct {
	rows, cols int
	entries    []Triplet
}

// NewCOO returns an empty coordinate-format accumulator of the given shape.
func NewCOO(rows, cols int) *COO {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative dimension %dx%d", rows, cols))
	}
	return &COO{rows: rows, cols: cols}
}

// Add records entry (r, c) = v. Adding to an existing coordinate
// accumulates. Zero values are kept (they are removed at compression).
func (m *COO) Add(r, c int, v float64) {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("sparse: entry (%d,%d) outside %dx%d", r, c, m.rows, m.cols))
	}
	m.entries = append(m.entries, Triplet{r, c, v})
}

// NNZ reports the number of accumulated (pre-compression) entries.
func (m *COO) NNZ() int { return len(m.entries) }

// ToCSR compresses the accumulated entries into row-major form.
func (m *COO) ToCSR() *CSR {
	ent := make([]Triplet, len(m.entries))
	copy(ent, m.entries)
	sort.Slice(ent, func(i, j int) bool {
		if ent[i].Row != ent[j].Row {
			return ent[i].Row < ent[j].Row
		}
		return ent[i].Col < ent[j].Col
	})
	c := &CSR{Rows: m.rows, Cols: m.cols, RowPtr: make([]int, m.rows+1)}
	for i := 0; i < len(ent); {
		j := i
		v := 0.0
		for j < len(ent) && ent[j].Row == ent[i].Row && ent[j].Col == ent[i].Col {
			v += ent[j].Val
			j++
		}
		if v != 0 {
			c.ColIdx = append(c.ColIdx, ent[i].Col)
			c.Val = append(c.Val, v)
			c.RowPtr[ent[i].Row+1]++
		}
		i = j
	}
	for r := 0; r < m.rows; r++ {
		c.RowPtr[r+1] += c.RowPtr[r]
	}
	return c
}

// ToCSC compresses the accumulated entries into column-major form.
func (m *COO) ToCSC() *CSC {
	return m.ToCSR().ToCSC()
}

// CSR is a compressed sparse row matrix. Row r occupies
// ColIdx[RowPtr[r]:RowPtr[r+1]] / Val[RowPtr[r]:RowPtr[r+1]], with column
// indices sorted ascending and unique.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// CSC is a compressed sparse column matrix. Column c occupies
// RowIdx[ColPtr[c]:ColPtr[c+1]] / Val[ColPtr[c]:ColPtr[c+1]], with row
// indices sorted ascending and unique.
type CSC struct {
	Rows, Cols int
	ColPtr     []int
	RowIdx     []int
	Val        []float64
}

// NNZ reports the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// NNZ reports the number of stored entries.
func (m *CSC) NNZ() int { return len(m.Val) }

// At returns the (r, c) entry using binary search within the row.
func (m *CSR) At(r, c int) float64 {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	i := lo + sort.SearchInts(m.ColIdx[lo:hi], c)
	if i < hi && m.ColIdx[i] == c {
		return m.Val[i]
	}
	return 0
}

// At returns the (r, c) entry using binary search within the column.
func (m *CSC) At(r, c int) float64 {
	lo, hi := m.ColPtr[c], m.ColPtr[c+1]
	i := lo + sort.SearchInts(m.RowIdx[lo:hi], r)
	if i < hi && m.RowIdx[i] == r {
		return m.Val[i]
	}
	return 0
}

// ToCSC converts to column-major form (counting sort on columns).
func (m *CSR) ToCSC() *CSC {
	out := &CSC{Rows: m.Rows, Cols: m.Cols, ColPtr: make([]int, m.Cols+1)}
	out.RowIdx = make([]int, len(m.Val))
	out.Val = make([]float64, len(m.Val))
	for _, c := range m.ColIdx {
		out.ColPtr[c+1]++
	}
	for c := 0; c < m.Cols; c++ {
		out.ColPtr[c+1] += out.ColPtr[c]
	}
	next := make([]int, m.Cols)
	copy(next, out.ColPtr[:m.Cols])
	for r := 0; r < m.Rows; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			c := m.ColIdx[i]
			out.RowIdx[next[c]] = r
			out.Val[next[c]] = m.Val[i]
			next[c]++
		}
	}
	return out
}

// ToCSR converts to row-major form.
func (m *CSC) ToCSR() *CSR {
	out := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	out.ColIdx = make([]int, len(m.Val))
	out.Val = make([]float64, len(m.Val))
	for _, r := range m.RowIdx {
		out.RowPtr[r+1]++
	}
	for r := 0; r < m.Rows; r++ {
		out.RowPtr[r+1] += out.RowPtr[r]
	}
	next := make([]int, m.Rows)
	copy(next, out.RowPtr[:m.Rows])
	for c := 0; c < m.Cols; c++ {
		for i := m.ColPtr[c]; i < m.ColPtr[c+1]; i++ {
			r := m.RowIdx[i]
			out.ColIdx[next[r]] = c
			out.Val[next[r]] = m.Val[i]
			next[r]++
		}
	}
	return out
}

// MulVec computes y = M x for a dense vector x. y is allocated.
func (m *CSR) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: %d cols vs %d vec", m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		s := 0.0
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			s += m.Val[i] * x[m.ColIdx[i]]
		}
		y[r] = s
	}
	return y
}

// MulVec computes y = M x for a dense vector x. y is allocated.
func (m *CSC) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: %d cols vs %d vec", m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for c := 0; c < m.Cols; c++ {
		xc := x[c]
		if xc == 0 {
			continue
		}
		for i := m.ColPtr[c]; i < m.ColPtr[c+1]; i++ {
			y[m.RowIdx[i]] += m.Val[i] * xc
		}
	}
	return y
}

// MulVecTo computes y = M x into a caller-provided slice, avoiding
// allocation on hot query paths. y must have length m.Rows.
func (m *CSC) MulVecTo(y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("sparse: MulVecTo dimension mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	for c := 0; c < m.Cols; c++ {
		xc := x[c]
		if xc == 0 {
			continue
		}
		for i := m.ColPtr[c]; i < m.ColPtr[c+1]; i++ {
			y[m.RowIdx[i]] += m.Val[i] * xc
		}
	}
}

// PermuteSym returns P M P^T where the permutation maps old index i to new
// index perm[i]. Row r and column c of the result hold the entry that was
// at (oldRow, oldCol) with perm[oldRow] = r, perm[oldCol] = c.
func (m *CSC) PermuteSym(perm []int) *CSC {
	if len(perm) != m.Rows || m.Rows != m.Cols {
		panic("sparse: PermuteSym requires square matrix and full permutation")
	}
	coo := NewCOO(m.Rows, m.Cols)
	for c := 0; c < m.Cols; c++ {
		for i := m.ColPtr[c]; i < m.ColPtr[c+1]; i++ {
			coo.Add(perm[m.RowIdx[i]], perm[c], m.Val[i])
		}
	}
	return coo.ToCSC()
}

// Transpose returns M^T in the same storage family.
func (m *CSR) Transpose() *CSR {
	t := m.ToCSC()
	return &CSR{Rows: t.Cols, Cols: t.Rows, RowPtr: t.ColPtr, ColIdx: t.RowIdx, Val: t.Val}
}

// Transpose returns M^T in the same storage family.
func (m *CSC) Transpose() *CSC {
	t := m.ToCSR()
	return &CSC{Rows: t.Cols, Cols: t.Rows, ColPtr: t.RowPtr, RowIdx: t.ColIdx, Val: t.Val}
}

// Dense expands the matrix to a row-major dense [][]float64 (tests only).
func (m *CSR) Dense() [][]float64 {
	d := make([][]float64, m.Rows)
	for r := range d {
		d[r] = make([]float64, m.Cols)
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			d[r][m.ColIdx[i]] = m.Val[i]
		}
	}
	return d
}

// Dense expands the matrix to a row-major dense [][]float64 (tests only).
func (m *CSC) Dense() [][]float64 {
	d := make([][]float64, m.Rows)
	for r := range d {
		d[r] = make([]float64, m.Cols)
	}
	for c := 0; c < m.Cols; c++ {
		for i := m.ColPtr[c]; i < m.ColPtr[c+1]; i++ {
			d[m.RowIdx[i]][c] = m.Val[i]
		}
	}
	return d
}

// Identity returns the n x n identity in CSC form.
func Identity(n int) *CSC {
	m := &CSC{Rows: n, Cols: n, ColPtr: make([]int, n+1), RowIdx: make([]int, n), Val: make([]float64, n)}
	for i := 0; i < n; i++ {
		m.ColPtr[i+1] = i + 1
		m.RowIdx[i] = i
		m.Val[i] = 1
	}
	return m
}

// ColMax returns, for each column c, the maximum entry value in that
// column (0 for an empty column). Used for the paper's Amax(u) table.
func (m *CSC) ColMax() []float64 {
	out := make([]float64, m.Cols)
	for c := 0; c < m.Cols; c++ {
		for i := m.ColPtr[c]; i < m.ColPtr[c+1]; i++ {
			if m.Val[i] > out[c] {
				out[c] = m.Val[i]
			}
		}
	}
	return out
}

// Max returns the maximum entry value in the matrix (0 if empty).
func (m *CSC) Max() float64 {
	max := 0.0
	for _, v := range m.Val {
		if v > max {
			max = v
		}
	}
	return max
}

// Scale multiplies every stored entry by s, in place.
func (m *CSC) Scale(s float64) {
	for i := range m.Val {
		m.Val[i] *= s
	}
}

// Vector is a sparse vector: parallel slices of sorted unique indices and
// values. It is the storage used for columns of L^{-1} during queries.
type Vector struct {
	N   int
	Idx []int
	Val []float64
}

// Dot computes the inner product of two sparse vectors by merging their
// sorted index lists.
func (a *Vector) Dot(b *Vector) float64 {
	s := 0.0
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] < b.Idx[j]:
			i++
		case a.Idx[i] > b.Idx[j]:
			j++
		default:
			s += a.Val[i] * b.Val[j]
			i++
			j++
		}
	}
	return s
}

// Scatter writes the vector into dense workspace ws (len N), returning the
// touched indices so the caller can cheaply zero them again.
func (a *Vector) Scatter(ws []float64) []int {
	for k, idx := range a.Idx {
		ws[idx] = a.Val[k]
	}
	return a.Idx
}

// Col extracts column c as a sparse Vector (shares no storage).
func (m *CSC) Col(c int) *Vector {
	lo, hi := m.ColPtr[c], m.ColPtr[c+1]
	v := &Vector{N: m.Rows, Idx: make([]int, hi-lo), Val: make([]float64, hi-lo)}
	copy(v.Idx, m.RowIdx[lo:hi])
	copy(v.Val, m.Val[lo:hi])
	return v
}
