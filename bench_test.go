package kdash

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Section 6). Each benchmark drives the same implementation
// as cmd/kdash-bench (internal/experiments) so `go test -bench .` and the
// CLI report the same quantities. See EXPERIMENTS.md for a reference run
// annotated against the paper's reported trends.
//
// The per-figure query benchmarks (2-4, 7, 9) use prebuilt indexes and
// time the query path; the precompute benchmarks (5-6) time index
// construction per reordering method.

import (
	"fmt"
	"testing"

	"kdash/internal/blin"
	"kdash/internal/bpa"
	"kdash/internal/core"
	"kdash/internal/dataset"
	"kdash/internal/experiments"
	"kdash/internal/gen"
	"kdash/internal/graph"
	"kdash/internal/reorder"
	"kdash/internal/shard"
)

// benchDatasets caches dataset construction across benchmarks.
var benchDatasets = map[string]*dataset.Dataset{}

func benchDataset(b *testing.B, name string) *dataset.Dataset {
	b.Helper()
	if d, ok := benchDatasets[name]; ok {
		return d
	}
	d, err := dataset.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	benchDatasets[name] = d
	return d
}

// benchIndexes caches hybrid K-dash indexes across benchmarks.
var benchIndexes = map[string]*core.Index{}

func benchIndex(b *testing.B, name string) *core.Index {
	b.Helper()
	if ix, ok := benchIndexes[name]; ok {
		return ix
	}
	d := benchDataset(b, name)
	ix, err := core.BuildIndex(d.Graph, core.BuildOptions{Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	benchIndexes[name] = ix
	return ix
}

// ---------------------------------------------------------------------
// Figure 2: query time of K-dash(K), NB_LIN(rank), BPA(K) per dataset.
// ---------------------------------------------------------------------

func BenchmarkFigure2KDash(b *testing.B) {
	for _, name := range dataset.Names() {
		for _, k := range []int{5, 25, 50} {
			b.Run(fmt.Sprintf("%s/K=%d", name, k), func(b *testing.B) {
				ix := benchIndex(b, name)
				n := ix.N()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := ix.TopK(i%n, k); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFigure2NBLin(b *testing.B) {
	for _, name := range dataset.Names() {
		for _, rank := range []int{10, 100} {
			b.Run(fmt.Sprintf("%s/rank=%d", name, rank), func(b *testing.B) {
				d := benchDataset(b, name)
				nb, err := blin.NewNBLin(d.Graph, blin.Options{Rank: rank, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				n := d.Graph.N()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := nb.TopK(i%n, 5); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFigure2BPA(b *testing.B) {
	for _, name := range dataset.Names() {
		for _, k := range []int{5, 25, 50} {
			b.Run(fmt.Sprintf("%s/K=%d", name, k), func(b *testing.B) {
				d := benchDataset(b, name)
				ix, err := bpa.New(d.Graph, bpa.Options{Hubs: 100})
				if err != nil {
					b.Fatal(err)
				}
				n := d.Graph.N()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := ix.TopK(i%n, k); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------
// Figures 3 & 4: precision/time sweep on Dictionary. The precision side
// is not a timing, so the benchmark reports it as a custom metric and
// times the swept query path.
// ---------------------------------------------------------------------

func BenchmarkFigure3and4Sweep(b *testing.B) {
	for _, param := range []int{10, 40, 70, 100} {
		b.Run(fmt.Sprintf("param=%d", param), func(b *testing.B) {
			var last experiments.SweepRow
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Figure3and4(experiments.Config{
					Queries: 5, Seed: 1,
					Datasets: []*dataset.Dataset{benchDataset(b, "Dictionary")},
					Ranks:    []int{param}, Hubs: []int{param},
				})
				if err != nil {
					b.Fatal(err)
				}
				last = rows[0]
			}
			b.ReportMetric(last.PrecisionNBLin, "precision-nblin")
			b.ReportMetric(last.PrecisionBPA, "precision-bpa")
			b.ReportMetric(last.PrecisionKDash, "precision-kdash")
			b.ReportMetric(float64(last.TimeNBLin.Nanoseconds()), "ns-nblin")
			b.ReportMetric(float64(last.TimeBPA.Nanoseconds()), "ns-bpa")
			b.ReportMetric(float64(last.TimeKDash.Nanoseconds()), "ns-kdash")
		})
	}
}

// ---------------------------------------------------------------------
// Figures 5 & 6: precompute time (timed) and inverse-factor sparsity
// (reported metric) per reordering method.
// ---------------------------------------------------------------------

func BenchmarkFigure5and6Precompute(b *testing.B) {
	for _, name := range dataset.Names() {
		for _, m := range reorder.Methods {
			b.Run(fmt.Sprintf("%s/%s", name, m), func(b *testing.B) {
				d := benchDataset(b, name)
				var ratio float64
				for i := 0; i < b.N; i++ {
					ix, err := core.BuildIndex(d.Graph, core.BuildOptions{Reorder: m, Seed: 1})
					if err != nil {
						b.Fatal(err)
					}
					ratio = ix.Stats().InverseRatio
				}
				b.ReportMetric(ratio, "nnz/m")
			})
		}
	}
}

// ---------------------------------------------------------------------
// Figure 7: query time with vs. without tree-estimation pruning.
// ---------------------------------------------------------------------

func BenchmarkFigure7Pruning(b *testing.B) {
	for _, name := range dataset.Names() {
		for _, mode := range []string{"with", "without"} {
			b.Run(fmt.Sprintf("%s/%s", name, mode), func(b *testing.B) {
				ix := benchIndex(b, name)
				opt := core.SearchOptions{K: 5, DisablePruning: mode == "without"}
				n := ix.N()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := ix.Search(i%n, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------
// Figure 9: proximity computations, query-rooted vs random-rooted tree.
// ---------------------------------------------------------------------

func BenchmarkFigure9RootSelection(b *testing.B) {
	for _, name := range dataset.Names() {
		for _, mode := range []string{"query-root", "random-root"} {
			b.Run(fmt.Sprintf("%s/%s", name, mode), func(b *testing.B) {
				ix := benchIndex(b, name)
				n := ix.N()
				var comps float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					opt := core.SearchOptions{K: 5, RandomRoot: mode == "random-root", RootSeed: int64(i)}
					_, st, err := ix.Search(i%n, opt)
					if err != nil {
						b.Fatal(err)
					}
					comps += float64(st.ProximityComputations)
				}
				b.ReportMetric(comps/float64(b.N), "proximity-computations")
			})
		}
	}
}

// ---------------------------------------------------------------------
// Table 2: case study throughput (the table itself is generated by
// cmd/kdash-bench -exp table2).
// ---------------------------------------------------------------------

func BenchmarkTable2CaseStudy(b *testing.B) {
	d := benchDataset(b, "Dictionary")
	ix := benchIndex(b, "Dictionary")
	terms := dataset.CaseStudyTerms()
	qs := make([]int, len(terms))
	for i, term := range terms {
		q, err := d.NodeByLabel(term)
		if err != nil {
			b.Fatal(err)
		}
		qs[i] = q
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.TopK(qs[i%len(qs)], 5); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Ablation benchmarks for the design choices DESIGN.md calls out.
// ---------------------------------------------------------------------

// BenchmarkAblationProximityVector times the factor-based full proximity
// vector against the iterative method, the "exact but slow vs exact and
// fast" substrate comparison behind Equation (3).
func BenchmarkAblationProximityVector(b *testing.B) {
	d := benchDataset(b, "Internet")
	b.Run("factors", func(b *testing.B) {
		ix := benchIndex(b, "Internet")
		for i := 0; i < b.N; i++ {
			if _, err := ix.ProximityVector(i % ix.N()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("iterative", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := IterativeProximities(d.Graph, i%d.Graph.N(), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------
// Sharded-index benchmarks: partition-parallel build and cross-shard
// query cost at 1, 4 and 8 shards on a 50k-node clusterable power-law
// graph (the acceptance scale for the shard subsystem). The 1-shard
// build is the monolithic baseline and dominates the suite's runtime:
// its inverse factors carry ~12x the nonzeros of the 8-shard build.
// ---------------------------------------------------------------------

// benchShardGraph caches the 50k-node graph across the shard benchmarks.
var benchShardGraph *graph.Graph

func shardBenchGraph() *graph.Graph {
	if benchShardGraph == nil {
		benchShardGraph = gen.CommunityOverlay(50000, 3, 512, 0.995, 1)
	}
	return benchShardGraph
}

func BenchmarkShardedBuild(b *testing.B) {
	g := shardBenchGraph()
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var nnz int
			for i := 0; i < b.N; i++ {
				sx, err := shard.Build(g, shard.Options{Shards: shards, Reorder: reorder.Hybrid, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				nnz = sx.Stats().NNZInverse
			}
			b.ReportMetric(float64(nnz), "nnz-inverse")
		})
	}
}

// benchShardedIndexes caches built indexes per shard count: the body of
// a sub-benchmark re-runs while b.N calibrates, and the 1-shard build
// alone costs ~25s.
var benchShardedIndexes = map[int]*shard.ShardedIndex{}

func BenchmarkShardedTopK(b *testing.B) {
	g := shardBenchGraph()
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sx, ok := benchShardedIndexes[shards]
			if !ok {
				var err error
				sx, err = shard.Build(g, shard.Options{Shards: shards, Reorder: reorder.Hybrid, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				benchShardedIndexes[shards] = sx
			}
			n := sx.N()
			solved := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := sx.TopK((i*997)%n, 10)
				if err != nil {
					b.Fatal(err)
				}
				solved += st.ShardsSolved
			}
			b.ReportMetric(float64(solved)/float64(b.N), "shards-solved")
		})
	}
}

// BenchmarkBatchTopK measures aggregate batched throughput against a
// sequential single-query loop over the same nodes on the 50k bench
// graph (8 shards): the batched path runs one shared block push whose
// per-shard factor sweeps are amortised across every query with residual
// mass in the shard. ns/op counts one full set of <batch> queries in
// both modes, so the sequential/batched ratio is the aggregate speedup.
func BenchmarkBatchTopK(b *testing.B) {
	g := shardBenchGraph()
	sx, ok := benchShardedIndexes[8]
	if !ok {
		var err error
		sx, err = shard.Build(g, shard.Options{Shards: 8, Reorder: reorder.Hybrid, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		benchShardedIndexes[8] = sx
	}
	const k = 10
	for _, batch := range []int{8, 64} {
		qs := make([]int, batch)
		for i := range qs {
			qs[i] = (i * 997) % sx.N()
		}
		b.Run(fmt.Sprintf("sequential/batch=%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, q := range qs {
					if _, _, err := sx.TopK(q, k); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("batched/batch=%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			var sharing float64
			for i := 0; i < b.N; i++ {
				_, bs, err := sx.TopKBatch(qs, k)
				if err != nil {
					b.Fatal(err)
				}
				sharing = bs.Sharing()
			}
			b.ReportMetric(sharing, "rhs/solve")
		})
	}
}

// BenchmarkAblationParallelInvert times serial vs parallel triangular
// inversion (an implementation extension; results must be identical).
func BenchmarkAblationParallelInvert(b *testing.B) {
	d := benchDataset(b, "Citation")
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.BuildIndex(d.Graph, core.BuildOptions{Reorder: reorder.Hybrid, Seed: 1, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
