package shard

// Sharded-index persistence. A sharded index is saved as a *directory*:
// one binary core-index file per shard plus a JSON manifest tying them
// together, NoKV-style — the manifest is the unit a deployment ships
// around, and individual shard files can be fetched or memory-mapped
// independently by region.
//
//	indexdir/
//	  manifest.json      version, c, node/shard counts, file names, stats
//	  assignment.bin     n × uint32 LE: node -> shard
//	  cuts.bin           per-shard outgoing cut edges (binary, see below)
//	  shard-0000.idx     core.Index.Save format, one per shard
//	  ...
//
// Local ids are not persisted: both writer and reader assign them by
// ascending global id within each shard, so the assignment array fully
// determines the mapping.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"kdash/internal/core"
	"kdash/internal/graph"
	"kdash/internal/reorder"
)

// parseReorder maps a manifest's reorder name back to the method. The
// empty string (v1 manifests) selects Hybrid; with no graph snapshot
// alongside it the value is never replayed anyway.
func parseReorder(name string) (reorder.Method, error) {
	if name == "" {
		return reorder.Hybrid, nil
	}
	return reorder.Parse(name)
}

// ManifestName is the file that marks a directory as a sharded index.
const ManifestName = "manifest.json"

// manifestVersion is bumped whenever the directory layout changes.
// Version 2 added the dynamic-update state: a graph snapshot (edge
// list), the build inputs Apply replays (reorder method, seed), the
// per-shard staleness counters and the epoch number. Version 1
// directories still load — they just reject Apply, having no graph.
const manifestVersion = 2

// manifest is the JSON document written to ManifestName.
type manifest struct {
	Version        int      `json:"version"`
	Restart        float64  `json:"restart"`
	Nodes          int      `json:"nodes"`
	Shards         int      `json:"shards"`
	QueryTol       float64  `json:"queryTol"`
	ShardFiles     []string `json:"shardFiles"`
	AssignmentFile string   `json:"assignmentFile"`
	CutsFile       string   `json:"cutsFile"`

	// Version 2 fields (absent from v1 directories).
	GraphFile      string `json:"graphFile,omitempty"`
	Reorder        string `json:"reorder,omitempty"`
	Seed           int64  `json:"seed,omitempty"`
	Epoch          int    `json:"epoch,omitempty"`
	StalenessLimit int    `json:"stalenessLimit,omitempty"`
	Staleness      []int  `json:"staleness,omitempty"`

	Stats struct {
		Sizes         []int   `json:"sizes"`
		CutEdges      int     `json:"cutEdges"`
		CutWeightFrac float64 `json:"cutWeightFrac"`
		NNZInverse    int     `json:"nnzInverse"`
		Communities   int     `json:"communities"`
		Modularity    float64 `json:"modularity"`
	} `json:"stats"`
}

// IsShardedIndexDir reports whether path is a directory containing a
// sharded-index manifest — the load-time dispatch the CLIs use to decide
// between core.LoadIndex and LoadShardedIndex.
func IsShardedIndexDir(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, ManifestName))
	return err == nil
}

// Save writes the sharded index into dir, creating it if needed.
func (sx *ShardedIndex) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: creating index directory: %w", err)
	}
	var m manifest
	m.Version = manifestVersion
	m.Restart = sx.c
	m.Nodes = sx.n
	m.Shards = len(sx.parts)
	m.QueryTol = sx.qtol
	m.AssignmentFile = "assignment.bin"
	m.CutsFile = "cuts.bin"
	m.Reorder = sx.method.String()
	m.Seed = sx.seed
	m.Epoch = sx.epoch
	m.StalenessLimit = sx.stalenessLimit
	m.Staleness = sx.staleness
	if sx.g != nil {
		m.GraphFile = "graph.tsv"
		if err := writeFile(filepath.Join(dir, m.GraphFile), sx.g.WriteEdgeList); err != nil {
			return fmt.Errorf("shard: saving graph snapshot: %w", err)
		}
	}
	m.Stats.Sizes = sx.stats.Sizes
	m.Stats.CutEdges = sx.stats.CutEdges
	m.Stats.CutWeightFrac = sx.stats.CutWeightFrac
	m.Stats.NNZInverse = sx.stats.NNZInverse
	m.Stats.Communities = sx.stats.Communities
	m.Stats.Modularity = sx.stats.Modularity
	for si, p := range sx.parts {
		name := fmt.Sprintf("shard-%04d.idx", si)
		m.ShardFiles = append(m.ShardFiles, name)
		if err := writeFile(filepath.Join(dir, name), p.ix.Save); err != nil {
			return fmt.Errorf("shard: saving shard %d: %w", si, err)
		}
	}
	if err := writeFile(filepath.Join(dir, m.AssignmentFile), sx.writeAssignment); err != nil {
		return fmt.Errorf("shard: saving assignment: %w", err)
	}
	if err := writeFile(filepath.Join(dir, m.CutsFile), sx.writeCuts); err != nil {
		return fmt.Errorf("shard: saving cut edges: %w", err)
	}
	blob, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encoding manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("shard: writing manifest: %w", err)
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (sx *ShardedIndex) writeAssignment(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var buf [4]byte
	for _, si := range sx.home {
		binary.LittleEndian.PutUint32(buf[:], uint32(si))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (sx *ShardedIndex) writeCuts(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var b8 [8]byte
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(b8[:], v)
		_, err := bw.Write(b8[:])
		return err
	}
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(b8[:4], v)
		_, err := bw.Write(b8[:4])
		return err
	}
	for _, p := range sx.parts {
		if err := writeU64(uint64(len(p.cuts))); err != nil {
			return err
		}
		for _, e := range p.cuts {
			if err := writeU32(uint32(e.src)); err != nil {
				return err
			}
			if err := writeU32(uint32(e.dstShard)); err != nil {
				return err
			}
			if err := writeU32(uint32(e.dst)); err != nil {
				return err
			}
			if err := writeU64(math.Float64bits(e.w)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a sharded index previously written by Save.
func Load(dir string) (*ShardedIndex, error) {
	blob, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("shard: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("shard: decoding manifest: %w", err)
	}
	if m.Version != 1 && m.Version != manifestVersion {
		return nil, fmt.Errorf("shard: unsupported manifest version %d (want <= %d)", m.Version, manifestVersion)
	}
	if m.Nodes <= 0 || m.Nodes > 1<<40 || m.Shards <= 0 || m.Shards > m.Nodes || len(m.ShardFiles) != m.Shards {
		return nil, fmt.Errorf("shard: corrupt manifest (nodes=%d shards=%d files=%d)", m.Nodes, m.Shards, len(m.ShardFiles))
	}
	if m.Restart <= 0 || m.Restart >= 1 {
		return nil, fmt.Errorf("shard: corrupt manifest (restart %v)", m.Restart)
	}
	method, err := parseReorder(m.Reorder)
	if err != nil {
		return nil, fmt.Errorf("shard: corrupt manifest: %w", err)
	}
	// File references must be plain names inside the directory.
	names := append([]string{m.AssignmentFile, m.CutsFile}, m.ShardFiles...)
	if m.GraphFile != "" {
		names = append(names, m.GraphFile)
	}
	for _, name := range names {
		if name == "" || name != filepath.Base(name) {
			return nil, fmt.Errorf("shard: corrupt manifest (file reference %q)", name)
		}
	}
	// Bound the node count by the assignment file's actual size before
	// allocating anything node-sized: a corrupt manifest cannot make the
	// loader commit memory the directory does not carry.
	if fi, err := os.Stat(filepath.Join(dir, m.AssignmentFile)); err != nil {
		return nil, fmt.Errorf("shard: checking assignment: %w", err)
	} else if fi.Size() != int64(m.Nodes)*4 {
		return nil, fmt.Errorf("shard: assignment file has %d bytes, want %d for %d nodes", fi.Size(), int64(m.Nodes)*4, m.Nodes)
	}
	sx := &ShardedIndex{
		n:              m.Nodes,
		c:              m.Restart,
		qtol:           m.QueryTol,
		local:          make([]int, m.Nodes),
		parts:          make([]*part, m.Shards),
		method:         method,
		seed:           m.Seed,
		epoch:          m.Epoch,
		stalenessLimit: m.StalenessLimit,
	}
	if sx.qtol <= 0 {
		sx.qtol = DefaultQueryTol
	}
	if sx.stalenessLimit == 0 {
		sx.stalenessLimit = DefaultStalenessLimit
	}
	switch {
	case m.Staleness == nil:
		sx.staleness = make([]int, m.Shards)
	case len(m.Staleness) == m.Shards:
		sx.staleness = append([]int(nil), m.Staleness...)
	default:
		return nil, fmt.Errorf("shard: corrupt manifest (%d staleness counters for %d shards)", len(m.Staleness), m.Shards)
	}
	if m.GraphFile != "" {
		f, err := os.Open(filepath.Join(dir, m.GraphFile))
		if err != nil {
			return nil, fmt.Errorf("shard: opening graph snapshot: %w", err)
		}
		g, err := graph.ParseEdgeList(f, m.Nodes)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("shard: reading graph snapshot: %w", err)
		}
		if g.N() != m.Nodes {
			return nil, fmt.Errorf("shard: graph snapshot has %d nodes, manifest says %d", g.N(), m.Nodes)
		}
		sx.g = g
	}
	if sx.home, err = readAssignment(filepath.Join(dir, m.AssignmentFile), m.Nodes, m.Shards); err != nil {
		return nil, err
	}
	for i := range sx.parts {
		sx.parts[i] = &part{}
	}
	// Rebuild local ids by the ascending-global-id rule the writer used.
	for u := 0; u < sx.n; u++ {
		p := sx.parts[sx.home[u]]
		sx.local[u] = len(p.nodes)
		p.nodes = append(p.nodes, u)
	}
	for si, name := range m.ShardFiles {
		p := sx.parts[si]
		if len(p.nodes) == 0 {
			return nil, fmt.Errorf("shard: corrupt manifest (shard %d owns no nodes)", si)
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("shard: opening shard %d: %w", si, err)
		}
		ix, err := core.LoadIndex(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("shard: loading shard %d: %w", si, err)
		}
		switch ix.N() {
		case len(p.nodes):
			p.sink = false
		case len(p.nodes) + 1:
			p.sink = true
		default:
			return nil, fmt.Errorf("shard: shard %d has %d nodes, assignment says %d", si, ix.N(), len(p.nodes))
		}
		// The cut weights are pre-scaled by the manifest's (1-c); a shard
		// file built with a different c would answer silently wrong.
		if ix.Restart() != sx.c {
			return nil, fmt.Errorf("shard: shard %d built with restart %v, manifest says %v", si, ix.Restart(), sx.c)
		}
		p.ix = ix
	}
	if err := sx.readCuts(filepath.Join(dir, m.CutsFile)); err != nil {
		return nil, err
	}
	sx.stats = BuildStats{
		Shards:        m.Shards,
		Sizes:         m.Stats.Sizes,
		CutEdges:      m.Stats.CutEdges,
		CutWeightFrac: m.Stats.CutWeightFrac,
		NNZInverse:    m.Stats.NNZInverse,
		Communities:   m.Stats.Communities,
		Modularity:    m.Stats.Modularity,
	}
	return sx, nil
}

func readAssignment(path string, n, shards int) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("shard: opening assignment: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	out := make([]int, n)
	var buf [4]byte
	for u := 0; u < n; u++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("shard: reading assignment: %w", err)
		}
		si := int(binary.LittleEndian.Uint32(buf[:]))
		if si < 0 || si >= shards {
			return nil, fmt.Errorf("shard: corrupt assignment (node %d -> shard %d of %d)", u, si, shards)
		}
		out[u] = si
	}
	return out, nil
}

func (sx *ShardedIndex) readCuts(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("shard: opening cut edges: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var b8 [8]byte
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, b8[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b8[:]), nil
	}
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, b8[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b8[:4]), nil
	}
	for si, p := range sx.parts {
		count, err := readU64()
		if err != nil {
			return fmt.Errorf("shard: reading cut edges of shard %d: %w", si, err)
		}
		if count > uint64(sx.n)*uint64(sx.n) {
			return fmt.Errorf("shard: corrupt cut edges (shard %d claims %d)", si, count)
		}
		p.cuts = make([]cutEdge, count)
		for i := range p.cuts {
			src, err := readU32()
			if err != nil {
				return err
			}
			dstShard, err := readU32()
			if err != nil {
				return err
			}
			dst, err := readU32()
			if err != nil {
				return err
			}
			wBits, err := readU64()
			if err != nil {
				return err
			}
			e := cutEdge{src: int(src), dstShard: int(dstShard), dst: int(dst), w: math.Float64frombits(wBits)}
			if e.src < 0 || e.src >= len(p.nodes) || e.dstShard < 0 || e.dstShard >= len(sx.parts) ||
				e.dst < 0 || e.dst >= len(sx.parts[e.dstShard].nodes) || e.w < 0 || math.IsNaN(e.w) {
				return fmt.Errorf("shard: corrupt cut edge %d of shard %d", i, si)
			}
			if i > 0 && p.cuts[i-1].src > e.src {
				return fmt.Errorf("shard: corrupt cut edges (shard %d not sorted by source)", si)
			}
			p.cuts[i] = e
		}
	}
	// Rebuild the per-source pointers.
	for _, p := range sx.parts {
		p.cutPtr = make([]int, len(p.nodes)+1)
		for _, e := range p.cuts {
			p.cutPtr[e.src+1]++
		}
		for v := 0; v < len(p.nodes); v++ {
			p.cutPtr[v+1] += p.cutPtr[v]
		}
	}
	return nil
}
