package obs

// Hand-rolled Prometheus text exposition (version 0.0.4). The format
// is small enough that a writer with three verbs — metric, histogram,
// header — covers everything the server exports, and carrying no
// client-library dependency keeps the module std-only.

import (
	"fmt"
	"io"
	"strings"
)

// Label is one Prometheus label pair.
type Label struct {
	Name  string
	Value string
}

// expositionOctaves picks the exported histogram bounds: one `le` per
// power of two from 2^10 ns (~1 µs) to 2^34 ns (~17 s). Each bound is
// an exact internal bucket boundary, so the cumulative counts are
// exact, and 25 buckets keeps a full scrape small while the internal
// 8-sub-bucket resolution still backs the /statz quantiles.
const (
	minExpOctave = 10
	maxExpOctave = 34
)

// PromWriter serializes metrics in the Prometheus text format. Write
// errors stick: the first one is retained and later calls no-op, so
// callers check Err once at the end.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...interface{}) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Header emits the HELP and TYPE lines for one metric family. typ is
// "counter", "gauge" or "histogram".
func (p *PromWriter) Header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Metric emits one sample line. labels may be nil.
func (p *PromWriter) Metric(name string, labels []Label, value float64) {
	p.printf("%s%s %s\n", name, formatLabels(labels), formatValue(value))
}

// Histogram emits one histogram series — cumulative `le` buckets at
// power-of-two bounds, +Inf, _sum and _count — from a snapshot.
// Bucket bounds are seconds, matching Prometheus convention for
// duration histograms.
func (p *PromWriter) Histogram(name string, labels []Label, s Snapshot) {
	// The le label is appended onto a private copy: appending onto the
	// caller's slice could clobber its spare capacity.
	bl := make([]Label, len(labels)+1)
	copy(bl, labels)
	cum := uint64(0)
	next := 0 // first internal bucket not yet folded into cum
	for oct := minExpOctave; oct <= maxExpOctave; oct++ {
		boundNS := int64(1) << oct
		idx := bucketIndex(boundNS)
		for ; next <= idx && next < len(s.Counts); next++ {
			cum += s.Counts[next]
		}
		bl[len(labels)] = Label{"le", formatValue(float64(boundNS) / 1e9)}
		p.printf("%s_bucket%s %d\n", name, formatLabels(bl), cum)
	}
	bl[len(labels)] = Label{"le", "+Inf"}
	p.printf("%s_bucket%s %d\n", name, formatLabels(bl), s.Count)
	p.printf("%s_sum%s %s\n", name, formatLabels(labels), formatValue(float64(s.SumNS)/1e9))
	p.printf("%s_count%s %d\n", name, formatLabels(labels), s.Count)
}

// formatValue renders a float the exposition parser accepts: %g gives
// the shortest round-trippable form, with scientific notation where
// needed — both legal exposition floats.
func formatValue(v float64) string { return fmt.Sprintf("%g", v) }

// formatLabels renders a label set ({} omitted when empty), escaping
// values per the exposition format.
func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
