package core

import (
	"sync"
	"testing"

	"kdash/internal/gen"
	"kdash/internal/reorder"
)

// TestConcurrentQueries exercises the documented guarantee that an Index
// is safe for concurrent queries: many goroutines issue overlapping
// TopK / Search / ProximityVector calls and every answer must equal the
// serial answer. Run with -race to validate the data-race claim.
func TestConcurrentQueries(t *testing.T) {
	g := gen.PlantedPartition(200, 5, 0.2, 0.01, 1)
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	queries := []int{0, 17, 40, 99, 150, 199}
	type answer struct {
		nodes  []int
		scores []float64
	}
	serial := map[int]answer{}
	for _, q := range queries {
		rs, _, err := ix.TopK(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		var a answer
		for _, r := range rs {
			a.nodes = append(a.nodes, r.Node)
			a.scores = append(a.scores, r.Score)
		}
		serial[q] = a
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				q := queries[(worker+rep)%len(queries)]
				rs, _, err := ix.TopK(q, 10)
				if err != nil {
					errs <- err
					return
				}
				want := serial[q]
				for i, r := range rs {
					if r.Node != want.nodes[i] || r.Score != want.scores[i] {
						errs <- errMismatch(q, i)
						return
					}
				}
				if rep%5 == 0 {
					if _, err := ix.ProximityVector(q); err != nil {
						errs <- err
						return
					}
				}
				if rep%7 == 0 {
					if _, _, err := ix.TopKPersonalized(map[int]float64{q: 1, (q + 1) % ix.N(): 2}, 5); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch2 struct {
	q, rank int
}

func errMismatch(q, rank int) error { return errMismatch2{q, rank} }

func (e errMismatch2) Error() string {
	return "concurrent query answer diverged from serial answer"
}
