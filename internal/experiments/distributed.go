package experiments

// Distributed is the coordinator/worker serving experiment: the same
// sharded index is queried three ways — in a single process, and
// through a factorless coordinator routing every factor solve over
// loopback TCP to 2 and then 4 real RPC worker listeners — so the table
// answers the deployment question directly: what does distributing the
// factor solves cost per query, and is the answer still bit-identical?
// (It must be: the coordinator runs the same push in the same order and
// the wire carries raw float64 bits; a false "exact" column here is a
// released bug, not noise.)

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"time"

	"kdash/internal/gen"
	"kdash/internal/obs"
	"kdash/internal/placement"
	"kdash/internal/reorder"
	"kdash/internal/shard"
	"kdash/internal/topk"
)

// DistributedRow is one serving topology's measurement.
type DistributedRow struct {
	Workers    int           // RPC worker listeners; 0 = single process, no RPC
	Queries    int           // measured queries
	Mean       time.Duration // mean /topk latency
	P50        time.Duration
	P99        time.Duration
	QPS        float64 // sequential query throughput
	Exact      bool    // bit-identical to the single-process answers
	SlowdownVs float64 // mean latency vs the single-process row
}

// distributedQueries is the per-topology measured query count; enough
// for stable tail quantiles at microsecond-to-millisecond latencies
// without stretching the run.
const distributedQueries = 300

// distributedShards is the fixed shard count; every topology serves the
// same partitioning so only the transport differs between rows.
const distributedShards = 8

// Distributed builds one community-structured graph, saves the sharded
// index to a shared directory (the cluster's manifest), and measures
// identical query streams against the single-process index and against
// coordinators over 2- and 4-worker loopback clusters.
func Distributed(cfg Config) ([]DistributedRow, error) {
	cfg = cfg.withDefaults()
	n := cfg.ShardGraphN
	if n == 0 {
		n = defaultShardGraphN
	}
	communities := n / 100
	if communities < 4 {
		communities = 4
	}
	g := gen.CommunityOverlay(n, 3, communities, 0.995, cfg.Seed)
	sx, err := shard.Build(g, shard.Options{Shards: distributedShards, Reorder: reorder.Hybrid, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: distributed build: %w", err)
	}
	dir, err := os.MkdirTemp("", "kdash-distributed-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := sx.Save(dir); err != nil {
		return nil, fmt.Errorf("experiments: distributed save: %w", err)
	}

	// One fixed query stream for every topology: same nodes, same order.
	qrng := rand.New(rand.NewSource(cfg.Seed + 1))
	queries := make([]int, distributedQueries)
	for i := range queries {
		queries[i] = qrng.Intn(n)
	}

	var rows []DistributedRow
	var baseline [][]topk.Result

	// Row 0: single process, factors resident, no RPC anywhere.
	row, answers, err := measureTopK(sx, queries)
	if err != nil {
		return nil, err
	}
	row.Exact = true
	row.SlowdownVs = 1
	baseline = answers
	rows = append(rows, row)

	for _, workers := range []int{2, 4} {
		co, closeAll, err := loopbackCluster(dir, workers)
		if err != nil {
			return nil, err
		}
		row, answers, err := measureTopK(co, queries)
		if err != nil {
			closeAll()
			return nil, err
		}
		closeAll()
		row.Workers = workers
		row.Exact = sameAnswers(answers, baseline)
		row.SlowdownVs = float64(row.Mean) / float64(rows[0].Mean)
		rows = append(rows, row)
	}
	return rows, nil
}

// topKer is the one query surface the measurement needs; both the
// in-process index and the coordinator implement it.
type topKer interface {
	TopK(q, k int) ([]topk.Result, shard.QueryStats, error)
}

// measureTopK runs the query stream sequentially (per-query latency,
// not saturation throughput) with a short untimed warmup.
func measureTopK(e topKer, queries []int) (DistributedRow, [][]topk.Result, error) {
	for i := 0; i < 20 && i < len(queries); i++ {
		if _, _, err := e.TopK(queries[i], 10); err != nil {
			return DistributedRow{}, nil, err
		}
	}
	h := &obs.Histogram{}
	answers := make([][]topk.Result, len(queries))
	t0 := time.Now()
	for i, q := range queries {
		tq := time.Now()
		rs, _, err := e.TopK(q, 10)
		if err != nil {
			return DistributedRow{}, nil, err
		}
		h.Observe(time.Since(tq))
		answers[i] = rs
	}
	wall := time.Since(t0)
	snap := h.Snapshot()
	return DistributedRow{
		Queries: len(queries),
		Mean:    time.Duration(int64(snap.Mean())),
		P50:     time.Duration(snap.Quantile(0.5)),
		P99:     time.Duration(snap.Quantile(0.99)),
		QPS:     float64(len(queries)) / wall.Seconds(),
	}, answers, nil
}

// loopbackCluster serves `workers` RPC workers over dir on loopback TCP
// and binds a coordinator to them. The returned closer tears down the
// coordinator and every listener.
func loopbackCluster(dir string, workers int) (*placement.Coordinator, func(), error) {
	addrs := make([]string, workers)
	lns := make([]net.Listener, workers)
	for w := 0; w < workers; w++ {
		wsx, err := shard.Open(dir, shard.LoadOptions{Lazy: true})
		if err != nil {
			return nil, nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		lns[w] = ln
		addrs[w] = ln.Addr().String()
		go placement.ServeWorker(ln, wsx) //nolint:errcheck // closes with the listener
	}
	closeAll := func() {
		for _, ln := range lns {
			ln.Close()
		}
	}
	co, err := placement.NewCoordinator(dir, addrs, placement.Config{})
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	all := func() {
		co.Close()
		closeAll()
	}
	return co, all, nil
}

// sameAnswers compares two answer streams bit-for-bit.
func sameAnswers(a, b [][]topk.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// WriteDistributedRows prints the distributed-serving table.
func WriteDistributedRows(w io.Writer, rows []DistributedRow) {
	fmt.Fprintf(w, "%-10s %8s %12s %12s %12s %10s %10s %7s\n",
		"workers", "queries", "mean", "p50", "p99", "qps", "slowdown", "exact")
	for _, r := range rows {
		topo := "local"
		if r.Workers > 0 {
			topo = fmt.Sprintf("%d-worker", r.Workers)
		}
		fmt.Fprintf(w, "%-10s %8d %12v %12v %12v %10.0f %9.2fx %7t\n",
			topo, r.Queries, r.Mean.Round(time.Microsecond), r.P50.Round(time.Microsecond),
			r.P99.Round(time.Microsecond), r.QPS, r.SlowdownVs, r.Exact)
	}
}
