// Package driver loads type-checked packages and runs kdashvet's
// analyzers over them. Two loaders feed the same Package shape:
//
//   - Load: the standalone path. It shells out to `go list -export
//     -deps`, which compiles the requested patterns and hands back gc
//     export data for every dependency, then type-checks each target
//     package's source against that export data with the standard
//     library's go/importer. No golang.org/x/tools dependency.
//
//   - RunUnitchecker (unitchecker.go): the `go vet -vettool` path. The
//     go command does the scheduling and passes one vet.cfg per package;
//     the same importer trick resolves its PackageFile map.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"kdash/tools/kdashvet/internal/framework"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matching the patterns (resolved by the
// go command relative to dir, so module-aware) and returns the target
// packages — dependencies are consumed as export data only. Test files
// are not included; the vettool path covers those.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	var pkgs []*Package
	for _, t := range targets {
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		pkg, err := check(t.ImportPath, files, func(path string) (io.ReadCloser, error) {
			e, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(e)
		}, "")
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckFiles parses and type-checks one package from explicit file
// names, resolving imports through the exports map (import path -> gc
// export data file). It backs the analysistest harness, which loads
// golden-test packages that live outside the module's package graph.
func CheckFiles(importPath string, filenames []string, exports map[string]string) (*Package, error) {
	return check(importPath, filenames, func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}, "")
}

// ListExports resolves gc export data files for the given import paths
// (and their dependencies) by shelling out to `go list -export`, run in
// dir for module context.
func ListExports(dir string, importPaths []string) (map[string]string, error) {
	if len(importPaths) == 0 {
		return map[string]string{}, nil
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, importPaths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %v\n%s", strings.Join(importPaths, " "), err, stderr.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// check parses and type-checks one package's files, resolving imports
// through the lookup function (gc export data).
func check(importPath string, filenames []string, lookup func(string) (io.ReadCloser, error), goVersion string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", fn, err)
		}
		files = append(files, f)
	}
	info := framework.NewInfo()
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: goVersion,
		Sizes:     types.SizesFor("gc", "amd64"),
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &Package{ImportPath: importPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// Run executes the analyzers over one loaded package and returns the
// diagnostics that survive //kdash:allow suppression, in source order.
func Run(p *Package, analyzers []*framework.Analyzer) ([]framework.Diagnostic, error) {
	var diags []framework.Diagnostic
	for _, a := range analyzers {
		pass := &framework.Pass{
			Analyzer:  a,
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Pkg,
			TypesInfo: p.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, p.ImportPath, err)
		}
		diags = append(diags, pass.Diagnostics()...)
	}
	allows := framework.CollectAllows(p.Fset, p.Files)
	return framework.Suppress(p.Fset, allows, diags), nil
}
