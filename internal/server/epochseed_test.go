package server

import (
	"net/http"
	"path/filepath"
	"testing"

	"kdash/internal/reorder"
	"kdash/internal/shard"
	"kdash/internal/testutil"
)

// TestEpochSeededFromLoadedIndex pins the swap counter's continuity
// across persistence: a handler over an index saved at epoch 2 reports
// epoch 2, and the next update moves to 3 — no reset, no jump.
func TestEpochSeededFromLoadedIndex(t *testing.T) {
	g := testutil.Clustered(80, 3, 3)
	sx, err := shard.Build(g, shard.Options{Shards: 3, Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		d := sx.Graph().NewDelta()
		if err := d.AddEdge(i, 40+i, 1); err != nil {
			t.Fatal(err)
		}
		if sx, _, err = sx.Apply(d); err != nil {
			t.Fatal(err)
		}
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if err := sx.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := shard.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := New(loaded)
	rec, body := get(t, h, "/healthz")
	if rec.Code != http.StatusOK || string(body["epoch"]) != "2" {
		t.Fatalf("healthz epoch = %s, want 2 (%s)", body["epoch"], rec.Body.String())
	}
	urec := post(t, h, "/update", `{"addEdges":[{"from":5,"to":60,"weight":1}]}`)
	if urec.Code != http.StatusOK {
		t.Fatal(urec.Body.String())
	}
	if rec, body = get(t, h, "/healthz"); string(body["epoch"]) != "3" {
		t.Fatalf("post-update epoch = %s, want 3", body["epoch"])
	}
}
