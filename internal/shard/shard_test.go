package shard

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kdash/internal/core"
	"kdash/internal/gen"
	"kdash/internal/graph"
	"kdash/internal/reorder"
	"kdash/internal/rwr"
	"kdash/internal/testutil"
	"kdash/internal/topk"
)

// scoreTol is the proximity agreement the validation suite asserts
// between the sharded index and the monolithic / iterative oracles.
const scoreTol = 1e-9

func buildMono(t *testing.T, g *graph.Graph, c float64) *core.Index {
	t.Helper()
	ix, err := core.BuildIndex(g, core.BuildOptions{Restart: c, Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatalf("core.BuildIndex: %v", err)
	}
	return ix
}

func buildSharded(t *testing.T, g *graph.Graph, shards int, c float64) *ShardedIndex {
	t.Helper()
	sx, err := Build(g, Options{Shards: shards, Restart: c, Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatalf("shard.Build(shards=%d): %v", shards, err)
	}
	return sx
}

// sameAnswerSet compares rankings positionally within tol, allowing
// reordering only among score ties (the idiom the core oracle tests use:
// two nodes whose true proximities coincide may come back in either
// order depending on floating-point summation order).
func sameAnswerSet(a, b []topk.Result, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i].Score-b[i].Score) > tol {
			return false
		}
	}
	used := make([]bool, len(b))
	for i := range a {
		found := false
		for j := range b {
			if !used[j] && a[i].Node == b[j].Node && math.Abs(a[i].Score-b[j].Score) < tol {
				used[j] = true
				found = true
				break
			}
		}
		// A node missing from b entirely is still a valid answer when its
		// score ties the k-th place within tol: either of the tied nodes
		// may be cut at the boundary.
		if !found && math.Abs(a[i].Score-b[len(b)-1].Score) > tol {
			return false
		}
	}
	return true
}

// trimZeros drops zero-proximity padding from the iterative oracle (it
// fills up with unreachable nodes when fewer than k are reachable).
func trimZeros(rs []topk.Result) []topk.Result {
	out := rs[:0:0]
	for _, r := range rs {
		if r.Score > 1e-12 {
			out = append(out, r)
		}
	}
	return out
}

// testGraphs are the shapes the exactness suite sweeps — the shared
// testutil suite: community-heavy (the favourable case for sharding),
// scale-free with reciprocation (cycles across shards), uniformly
// random (worst-case cut mass), plus grids, disconnected components
// and self-loop-heavy graphs (ghost-sink normalisation corners).
func testGraphs(seed int64) map[string]*graph.Graph {
	return testutil.Shapes(seed)
}

// TestCrossShardExactness is the tentpole acceptance test: on every graph
// shape, for varied k, restart probability and shard count (including the
// 1-shard and n-shard degenerate cases), the sharded answer matches both
// the monolithic K-dash index and the iterative oracle.
func TestCrossShardExactness(t *testing.T) {
	for name, g := range testGraphs(11) {
		n := g.N()
		for _, c := range []float64{0.95, 0.5} {
			mono := buildMono(t, g, c)
			for _, shards := range []int{1, 2, 5, n} {
				sx := buildSharded(t, g, shards, c)
				if sx.Shards() != shards {
					t.Fatalf("%s: built %d shards, want %d", name, sx.Shards(), shards)
				}
				for _, q := range []int{0, n / 3, n - 1} {
					for _, k := range []int{1, 5, 25} {
						want, _, err := mono.TopK(q, k)
						if err != nil {
							t.Fatal(err)
						}
						got, qs, err := sx.TopK(q, k)
						if err != nil {
							t.Fatal(err)
						}
						if !qs.Converged {
							t.Errorf("%s c=%v shards=%d q=%d: push did not converge (residual %g)", name, c, shards, q, qs.ResidualMass)
						}
						if !sameAnswerSet(got, want, scoreTol) {
							t.Errorf("%s c=%v shards=%d q=%d k=%d:\n got %v\nwant %v", name, c, shards, q, k, got, want)
						}
						oracle, err := rwr.TopK(g.ColumnNormalized(), q, k, c)
						if err != nil {
							t.Fatal(err)
						}
						if !sameAnswerSet(got, trimZeros(oracle), scoreTol) {
							t.Errorf("%s c=%v shards=%d q=%d k=%d vs iterative:\n got %v\nwant %v", name, c, shards, q, k, got, trimZeros(oracle))
						}
					}
				}
			}
		}
	}
}

// TestCrossShardExactnessProperty drives randomized graphs, shard counts,
// ks and queries through the three-way equivalence.
func TestCrossShardExactnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(90)
		g := gen.ErdosRenyi(n, 4*n, seed)
		c := 0.3 + 0.65*rng.Float64()
		shards := 1 + rng.Intn(6)
		mono, err := core.BuildIndex(g, core.BuildOptions{Restart: c, Reorder: reorder.Hybrid, Seed: seed})
		if err != nil {
			return false
		}
		sx, err := Build(g, Options{Shards: shards, Restart: c, Reorder: reorder.Hybrid, Seed: seed})
		if err != nil {
			return false
		}
		q := rng.Intn(n)
		k := 1 + rng.Intn(12)
		want, _, err := mono.TopK(q, k)
		if err != nil {
			return false
		}
		got, _, err := sx.TopK(q, k)
		if err != nil {
			return false
		}
		if !sameAnswerSet(got, want, scoreTol) {
			t.Logf("seed=%d n=%d c=%v shards=%d q=%d k=%d:\n got %v\nwant %v", seed, n, c, shards, q, k, got, want)
			return false
		}
		oracle, err := rwr.TopK(g.ColumnNormalized(), q, k, c)
		if err != nil {
			return false
		}
		return sameAnswerSet(got, trimZeros(oracle), scoreTol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestProximityAgreesWithMonolithic checks the point and vector proximity
// surfaces against the monolithic factors.
func TestProximityAgreesWithMonolithic(t *testing.T) {
	g := gen.DirectedScaleFree(130, 3, 0.25, 0.5, 5)
	mono := buildMono(t, g, 0.95)
	sx := buildSharded(t, g, 4, 0.95)
	for _, q := range []int{0, 40, 129} {
		want, err := mono.ProximityVector(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sx.ProximityVector(q)
		if err != nil {
			t.Fatal(err)
		}
		for u := range want {
			if math.Abs(got[u]-want[u]) > scoreTol {
				t.Fatalf("q=%d u=%d: proximity %g, want %g", q, u, got[u], want[u])
			}
		}
		p, err := sx.Proximity(q, (q+31)%g.N())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-want[(q+31)%g.N()]) > scoreTol {
			t.Fatalf("q=%d: point proximity %g, want %g", q, p, want[(q+31)%g.N()])
		}
	}
}

// TestPersonalizedAndExclude checks the two serving-surface extensions
// against the monolithic implementations.
func TestPersonalizedAndExclude(t *testing.T) {
	g := gen.PlantedPartition(100, 5, 0.25, 0.03, 9)
	mono := buildMono(t, g, 0.95)
	sx := buildSharded(t, g, 3, 0.95)

	seeds := map[int]float64{3: 1, 41: 2, 97: 0.5}
	want, _, err := mono.TopKPersonalized(seeds, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sx.TopKPersonalized(seeds, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !sameAnswerSet(got, want, scoreTol) {
		t.Errorf("personalized:\n got %v\nwant %v", got, want)
	}

	opt := core.SearchOptions{K: 6, Exclude: map[int]bool{3: true, 7: true, 500: true}}
	wantEx, _, err := mono.Search(3, opt)
	if err != nil {
		t.Fatal(err)
	}
	gotEx, _, err := sx.Search(3, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !sameAnswerSet(gotEx, wantEx, scoreTol) {
		t.Errorf("exclude:\n got %v\nwant %v", gotEx, wantEx)
	}
	for _, r := range gotEx {
		if r.Node == 3 || r.Node == 7 {
			t.Errorf("excluded node %d in answer", r.Node)
		}
	}
}

// TestParallelBuildDeterminism checks that the worker pool does not
// change the built index: answers are identical whatever Workers is.
func TestParallelBuildDeterminism(t *testing.T) {
	g := gen.DirectedScaleFree(200, 3, 0.3, 0.4, 13)
	a, err := Build(g, Options{Shards: 6, Reorder: reorder.Hybrid, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, Options{Shards: 6, Reorder: reorder.Hybrid, Seed: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < g.N(); q += 23 {
		ra, _, err := a.TopK(q, 7)
		if err != nil {
			t.Fatal(err)
		}
		rb, _, err := b.TopK(q, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(ra) != len(rb) {
			t.Fatalf("q=%d: %d vs %d results", q, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("q=%d i=%d: %v vs %v", q, i, ra[i], rb[i])
			}
		}
	}
}

// TestConcurrentQueries exercises the read path from many goroutines so
// the race detector can vouch for the immutability claim.
func TestConcurrentQueries(t *testing.T) {
	g := gen.DirectedScaleFree(150, 3, 0.3, 0.4, 17)
	sx := buildSharded(t, g, 4, 0.95)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for q := w; q < g.N(); q += 8 {
				if _, _, err := sx.TopK(q, 5); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardPruning checks that on a strongly clustered graph a query
// deep inside one community does not have to solve every shard.
func TestShardPruning(t *testing.T) {
	// Two planted communities joined by a single weak edge, split into
	// many shards: mass crossing several cut boundaries decays below the
	// tolerance before reaching distant shards.
	b := graph.NewBuilder(300)
	for blk := 0; blk < 10; blk++ {
		base := blk * 30
		for i := 0; i < 30; i++ {
			for j := i + 1; j < 30; j += 7 {
				if err := b.AddUndirected(base+i, base+j, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
		if blk > 0 {
			if err := b.AddUndirected(base-1, base, 1e-6); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.Build()
	sx := buildSharded(t, g, 10, 0.95)
	_, qs, err := sx.TopK(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !qs.Converged {
		t.Fatalf("did not converge: %+v", qs)
	}
	if qs.ShardsSolved >= sx.Shards() {
		t.Errorf("expected pruning to skip distant shards, solved %d of %d (%+v)", qs.ShardsSolved, sx.Shards(), qs)
	}
	// Pruning must not cost exactness.
	mono := buildMono(t, g, 0.95)
	want, _, err := mono.TopK(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _ := sx.TopK(2, 5)
	if !sameAnswerSet(got, want, scoreTol) {
		t.Errorf("pruned answer diverged:\n got %v\nwant %v", got, want)
	}
}

// TestBuildErrors covers input validation.
func TestBuildErrors(t *testing.T) {
	if _, err := Build(graph.NewBuilder(0).Build(), Options{}); err == nil {
		t.Error("empty graph accepted")
	}
	g := gen.ErdosRenyi(10, 30, 1)
	if _, err := Build(g, Options{Restart: 1.5}); err == nil {
		t.Error("restart 1.5 accepted")
	}
	sx := buildSharded(t, g, 3, 0.95)
	if _, _, err := sx.TopK(-1, 5); err == nil {
		t.Error("negative query accepted")
	}
	if _, _, err := sx.TopK(0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := sx.TopKPersonalized(nil, 5); err == nil {
		t.Error("empty seeds accepted")
	}
	if _, _, err := sx.TopKPersonalized(map[int]float64{2: -1}, 5); err == nil {
		t.Error("negative seed weight accepted")
	}
	if _, err := sx.Proximity(0, 99); err == nil {
		t.Error("out-of-range proximity target accepted")
	}
}

// TestShardCountClamp checks that requesting more shards than nodes
// clamps instead of failing, and the stats describe the real layout.
func TestShardCountClamp(t *testing.T) {
	g := gen.ErdosRenyi(12, 40, 3)
	sx := buildSharded(t, g, 50, 0.95)
	if sx.Shards() != 12 {
		t.Fatalf("got %d shards, want 12", sx.Shards())
	}
	st := sx.Stats()
	totalNodes := 0
	for _, s := range st.Sizes {
		if s != 1 {
			t.Errorf("n-shard build has shard of size %d", s)
		}
		totalNodes += s
	}
	if totalNodes != 12 {
		t.Errorf("sizes sum to %d, want 12", totalNodes)
	}
	if st.NNZInverse == 0 {
		t.Error("stats missing inverse nnz")
	}
}
