package core

// Native fuzz target for the binary index loader: whatever bytes come
// in — truncations of a valid index, bit flips, garbage — LoadIndex
// must return an error, never panic and never commit unbounded memory.
// Run with `go test -fuzz=FuzzLoadIndex ./internal/core`.

import (
	"bytes"
	"testing"

	"kdash/internal/gen"
	"kdash/internal/reorder"
)

// fuzzIndexBytes is a small valid serialised index, built once: the
// seeds the mutator starts from are the valid stream plus truncations
// and targeted corruptions of it.
func fuzzIndexBytes(f *testing.F) []byte {
	f.Helper()
	g := gen.ErdosRenyi(24, 90, 7)
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: 7})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzLoadIndex(f *testing.F) {
	valid := fuzzIndexBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])  // truncated mid-array
	f.Add(valid[:9])             // magic + version only
	f.Add([]byte("KDASHIX\x01")) // header, nothing else
	f.Add([]byte("not an index"))
	f.Add([]byte{})
	// A length-prefix bomb: valid header, then a huge array length.
	bomb := append([]byte{}, valid[:16]...)
	bomb = append(bomb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	f.Add(bomb)

	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := LoadIndex(bytes.NewReader(data))
		if err != nil {
			return // rejection is the expected outcome for corrupt input
		}
		// The rare accepted input must yield a queryable index.
		if ix.N() <= 0 {
			t.Fatalf("accepted index with n=%d", ix.N())
		}
		if _, _, qerr := ix.TopK(0, 3); qerr != nil {
			t.Fatalf("accepted index cannot answer: %v", qerr)
		}
	})
}
