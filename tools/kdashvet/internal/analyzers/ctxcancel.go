package analyzers

import (
	"go/ast"

	"kdash/tools/kdashvet/internal/framework"
)

// CtxCancel enforces the cancellation contract on the query path: inside
// functions annotated //kdash:ctxloop, every loop that performs shard
// solves (a call whose name contains "solve" or "search") must consult a
// context between iterations — either directly (ctx.Err() / ctx.Done(),
// possibly behind a nil guard) or by passing the context into the
// per-iteration call. A solve loop that never looks at
// SearchOptions.Ctx turns a client disconnect into minutes of dead work
// and is exactly the regression the 499-tracking serve path exists to
// prevent.
var CtxCancel = &framework.Analyzer{
	Name: "ctxcancel",
	Doc:  "requires //kdash:ctxloop solve loops to consult a context between iterations",
	Run:  runCtxCancel,
}

func runCtxCancel(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !framework.FuncDirectives(fd)["ctxloop"] {
				continue
			}
			checkCtxLoops(pass, fd)
		}
	}
	return nil
}

func checkCtxLoops(pass *framework.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			body = n.Body
		case *ast.RangeStmt:
			body = n.Body
		default:
			return true
		}
		if !loopSolves(pass, body) {
			return true // scan/accumulate loops are exempt
		}
		if !loopConsultsCtx(pass, body) {
			pass.Reportf(n.Pos(), "solve loop in //kdash:ctxloop function %s never consults a context between iterations (check SearchOptions.Ctx, or pass it into the per-iteration call)", fd.Name.Name)
		}
		return true
	})
	return
}

// loopSolves reports whether the loop body performs per-iteration solve
// or search work.
func loopSolves(pass *framework.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if callNameContains(pass.TypesInfo, call, "solve", "search") {
				found = true
			}
		}
		return !found
	})
	return found
}

// loopConsultsCtx reports whether any expression of type context.Context
// is used inside the body — an Err/Done check or delegation of the
// context into a callee both qualify.
func loopConsultsCtx(pass *framework.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil && isContext(tv.Type) {
				found = true
			}
		}
		return !found
	})
	return found
}
