package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kdash/internal/gen"
	"kdash/internal/sparse"
)

func randomDense(rng *rand.Rand, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 4, 3)
	b := randomDense(rng, 3, 5)
	got := Mul(a, b)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			for k := 0; k < 3; k++ {
				want += a.At(i, k) * b.At(k, j)
			}
			if math.Abs(got.At(i, j)-want) > 1e-12 {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDense(rng, 5, 3)
	b := a.T().T()
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("T().T() changed the matrix")
		}
	}
}

func TestInverseProperty(t *testing.T) {
	// A * A^{-1} = I for random well-conditioned matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randomDense(rng, n, n)
		for i := 0; i < n; i++ { // diagonal boost for conditioning
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		prod := Mul(a, inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(prod.At(i, j)-want) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInverseSingular(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 0, 1) // rank 1
	if _, err := Inverse(a); err == nil {
		t.Error("expected singular error")
	}
	if _, err := Inverse(NewDense(2, 3)); err == nil {
		t.Error("expected non-square error")
	}
}

func TestMulVec(t *testing.T) {
	a := NewDense(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	got := a.MulVec([]float64{1, 0, -1})
	if math.Abs(got[0]+2) > 1e-12 || math.Abs(got[1]+2) > 1e-12 {
		t.Errorf("MulVec = %v, want [-2 -2]", got)
	}
}

func TestOrthonormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomDense(rng, 20, 5)
	Orthonormalize(m, rng)
	for a := 0; a < 5; a++ {
		for b := a; b < 5; b++ {
			dot := 0.0
			for i := 0; i < 20; i++ {
				dot += m.At(i, a) * m.At(i, b)
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Errorf("col %d . col %d = %v, want %v", a, b, dot, want)
			}
		}
	}
}

func TestOrthonormalizeDependentColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewDense(10, 3)
	for i := 0; i < 10; i++ {
		v := rng.NormFloat64()
		m.Set(i, 0, v)
		m.Set(i, 1, 2*v) // linearly dependent
		m.Set(i, 2, rng.NormFloat64())
	}
	Orthonormalize(m, rng)
	// Column 1 must have been re-randomised into a unit vector orthogonal
	// to column 0.
	dot, norm := 0.0, 0.0
	for i := 0; i < 10; i++ {
		dot += m.At(i, 0) * m.At(i, 1)
		norm += m.At(i, 1) * m.At(i, 1)
	}
	if math.Abs(dot) > 1e-9 || math.Abs(norm-1) > 1e-9 {
		t.Errorf("dependent column not fixed: dot=%v norm=%v", dot, norm)
	}
}

func TestJacobiEigenSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		// Random symmetric matrix.
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs := JacobiEigen(a)
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				return false
			}
		}
		// A v_i = lambda_i v_i.
		for col := 0; col < n; col++ {
			v := make([]float64, n)
			for i := 0; i < n; i++ {
				v[i] = vecs.At(i, col)
			}
			av := a.MulVec(v)
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-vals[col]*v[i]) > 1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func sparseFromDense(d *Dense) *sparse.CSC {
	coo := sparse.NewCOO(d.Rows, d.Cols)
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			if d.At(i, j) != 0 {
				coo.Add(i, j, d.At(i, j))
			}
		}
	}
	return coo.ToCSC()
}

func TestTruncatedSVDExactForLowRank(t *testing.T) {
	// A rank-2 matrix is reconstructed exactly by a rank-2 truncated SVD.
	rng := rand.New(rand.NewSource(5))
	u := randomDense(rng, 15, 2)
	v := randomDense(rng, 2, 12)
	a := Mul(u, v)
	svd := TruncatedSVD(sparseFromDense(a), 2, 3, 1)
	rec := svd.Reconstruct()
	for i := 0; i < 15; i++ {
		for j := 0; j < 12; j++ {
			if math.Abs(rec.At(i, j)-a.At(i, j)) > 1e-6 {
				t.Fatalf("reconstruction error at (%d,%d): %v vs %v", i, j, rec.At(i, j), a.At(i, j))
			}
		}
	}
	if svd.S[0] < svd.S[1] {
		t.Errorf("singular values not descending: %v", svd.S)
	}
}

func TestTruncatedSVDErrorDecreasesWithRank(t *testing.T) {
	g := gen.BarabasiAlbert(80, 3, 6)
	a := g.ColumnNormalized()
	frob := func(rank int) float64 {
		svd := TruncatedSVD(a, rank, 2, 2)
		rec := svd.Reconstruct()
		s := 0.0
		ad := a.Dense()
		for i := 0; i < a.Rows; i++ {
			for j := 0; j < a.Cols; j++ {
				d := rec.At(i, j) - ad[i][j]
				s += d * d
			}
		}
		return math.Sqrt(s)
	}
	e5, e40 := frob(5), frob(40)
	if e40 >= e5 {
		t.Errorf("rank-40 error %v should beat rank-5 error %v", e40, e5)
	}
}

func TestTruncatedSVDDeterministic(t *testing.T) {
	g := gen.ErdosRenyi(40, 160, 7)
	a := g.ColumnNormalized()
	s1 := TruncatedSVD(a, 6, 2, 9)
	s2 := TruncatedSVD(a, 6, 2, 9)
	for i := range s1.S {
		if s1.S[i] != s2.S[i] {
			t.Fatalf("same seed, different singular values at %d", i)
		}
	}
}

func TestTruncatedSVDRankClamp(t *testing.T) {
	g := gen.ErdosRenyi(10, 30, 8)
	a := g.ColumnNormalized()
	svd := TruncatedSVD(a, 100, 1, 1)
	if len(svd.S) != 10 {
		t.Errorf("rank should clamp to n=10, got %d", len(svd.S))
	}
}
