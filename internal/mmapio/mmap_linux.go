//go:build linux

package mmapio

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported gates ModeMmap; only the Linux build maps files.
const mmapSupported = true

// openMmap maps path read-only. PROT_READ makes every write through a
// section slice fault, which is the enforcement mechanism behind the
// package's mutation discipline.
func openMmap(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mmapio: opening %s: %w", path, err)
	}
	defer f.Close() // the mapping outlives the descriptor
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("mmapio: stat %s: %w", path, err)
	}
	size := fi.Size()
	if size <= 0 || size > 1<<46 {
		return nil, fmt.Errorf("mmapio: %s has unmappable size %d", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmapio: mapping %s: %w", path, err)
	}
	mf, err := newMapped(data, func() error { return syscall.Munmap(data) })
	if err != nil {
		return nil, fmt.Errorf("mmapio: %s: %w", path, err)
	}
	return mf, nil
}
