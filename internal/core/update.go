package core

// Dynamic updates, monolithic path. A monolithic index has no block
// structure to confine an update to — every inverse-factor column can
// depend on every edge — so its delta path is a full rebuild from the
// retained source graph with the batch applied. That is exactly the
// cost baseline the sharded incremental path (shard.ShardedIndex.Apply)
// is measured against, and both sit behind the same functional
// contract: the receiver is never modified, the successor is a fresh
// immutable index, and in-flight queries on the old epoch stay valid.

import (
	"errors"
	"fmt"
	"time"

	"kdash/internal/graph"
)

// ErrNotUpdatable reports an ApplyDelta/Rebuild against an index that
// has no source-graph snapshot to replay updates onto (it was loaded
// from a serialised form that does not carry one). The HTTP layer maps
// it to 501.
var ErrNotUpdatable = errors.New("index has no graph snapshot")

// UpdateStats is the engine-neutral summary of one applied update
// batch, the shape the HTTP layer reports regardless of index kind.
// The sharded path's richer shard.UpdateStats folds down into it.
type UpdateStats struct {
	EdgesAdded    int           `json:"edgesAdded"`
	EdgesRemoved  int           `json:"edgesRemoved"`
	NodesAdded    int           `json:"nodesAdded"`
	Epoch         int           `json:"epoch"`                 // successor's epoch number
	ShardsRebuilt int           `json:"shardsRebuilt"`         // shards refactorized (all, for a monolithic rebuild)
	DirtyShards   []int         `json:"dirtyShards,omitempty"` // ids of the refactorized shards (nil when unknown or FullRebuild)
	Repartitioned bool          `json:"repartitioned"`
	FullRebuild   bool          `json:"fullRebuild"` // true when nothing was reused
	BuildTime     time.Duration `json:"buildTimeNs"`
}

// Graph returns the source graph the index was built from, or nil for
// an index loaded from its serialised form (which carries only the
// query structures). A nil graph means Rebuild is unavailable.
func (ix *Index) Graph() *graph.Graph { return ix.srcGraph }

// ReleaseGraph drops the retained source graph, making the index
// non-updatable (Rebuild fails with ErrNotUpdatable) but freeing the
// graph's memory. Callers that embed per-block indexes inside a larger
// structure carrying its own snapshot — internal/shard rebuilds dirty
// blocks from the partition-level graph, never from a block's own —
// release the per-block copies.
func (ix *Index) ReleaseGraph() { ix.srcGraph = nil }

// Epoch reports how many delta rebuilds produced this index: 0 for a
// fresh build, incrementing along each Rebuild chain.
func (ix *Index) Epoch() int { return ix.epoch }

// Rebuild produces a new index over the retained graph with the batch
// applied, using the original build options (same restart probability,
// reordering and seed, so an empty batch reproduces the index
// bit-identically). The receiver is untouched and stays fully usable;
// this is the monolithic counterpart of the sharded incremental Apply,
// paying the full precompute cost on every call.
func (ix *Index) Rebuild(batch *graph.Delta) (*Index, error) {
	if ix.srcGraph == nil {
		return nil, fmt.Errorf("core: %w; rebuild from the original edge list instead", ErrNotUpdatable)
	}
	g2, err := ix.srcGraph.Apply(batch)
	if err != nil {
		return nil, err
	}
	ix2, err := BuildIndex(g2, ix.opts)
	if err != nil {
		return nil, err
	}
	ix2.epoch = ix.epoch + 1
	return ix2, nil
}

// ApplyDelta implements the dynamic-engine seam the HTTP server swaps
// epochs through: it returns the successor index as an untyped value
// (the server asserts its Engine interface) plus the neutral stats.
// Both index kinds expose this method with the same signature.
func (ix *Index) ApplyDelta(batch *graph.Delta) (any, UpdateStats, error) {
	t0 := time.Now()
	ix2, err := ix.Rebuild(batch)
	if err != nil {
		return nil, UpdateStats{}, err
	}
	added, removed, nodes := batch.Counts()
	return ix2, UpdateStats{
		EdgesAdded:   added,
		EdgesRemoved: removed,
		NodesAdded:   nodes,
		Epoch:        ix2.epoch,
		FullRebuild:  true,
		BuildTime:    time.Since(t0),
	}, nil
}
