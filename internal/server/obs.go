package server

// Request observability: the instrumentation middleware every endpoint
// runs under (per-endpoint latency histograms, status-code counters, an
// in-flight gauge, structured request logs), the opt-in per-query trace
// surface (?trace=1 / X-Kdash-Trace), and the cancellation mapping.
// The Prometheus exposition of these counters lives in metrics.go; the
// metric and trace-schema reference in docs/OBSERVABILITY.md.

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"kdash/internal/obs"
)

// endpointNames fixes the endpoints' order everywhere they are
// enumerated (/statz latency block, /metrics exposition), so scrapes
// are stable across processes.
var endpointNames = []string{
	"topk", "batch", "personalized", "proximity",
	"update", "healthz", "statz", "metrics",
}

// statusCodes is every status the handler itself emits; codeSlot folds
// anything else (nothing today) onto its class representative.
var statusCodes = [...]int{200, 400, 405, 499, 500, 501}

func codeSlot(code int) int {
	switch code {
	case 200:
		return 0
	case 400:
		return 1
	case 405:
		return 2
	case statusClientClosedRequest:
		return 3
	case 500:
		return 4
	case 501:
		return 5
	}
	switch {
	case code < 300:
		return 0
	case code < 500:
		return 1
	default:
		return 4
	}
}

// endpointMetrics is one endpoint's slice of the handler's request
// telemetry: a lock-free latency histogram and completed-request counts
// by status code.
type endpointMetrics struct {
	lat   obs.Histogram
	codes [len(statusCodes)]atomic.Int64
}

// statusClientClosedRequest is the nginx-convention status for a
// request abandoned because the client went away: the engine's
// context-cancellation errors map here, counted apart from real
// failures.
const statusClientClosedRequest = 499

// statusWriter records the first status code written so the middleware
// can count and log it; everything else passes straight through.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.code, sw.wrote = code, true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(b)
}

// instrument wraps one endpoint with the telemetry middleware: latency
// into the endpoint's histogram, status into its code counters, the
// in-flight gauge, and (when configured) one structured log line per
// request. Endpoint panics are recovered here — not only in ServeHTTP —
// so a panicking request still records its latency and its 500;
// ServeHTTP's recover stays as the backstop for the mux itself.
func (h *Handler) instrument(name string, fn http.HandlerFunc) http.HandlerFunc {
	em := h.endpoints[name]
	return func(w http.ResponseWriter, r *http.Request) {
		h.inFlight.Add(1)
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if rec := recover(); rec != nil {
				h.qPanics.Add(1)
				h.qInternal.Add(1)
				sw.code = http.StatusInternalServerError
				httpError(sw, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
			}
			d := time.Since(t0)
			em.lat.Observe(d)
			em.codes[codeSlot(sw.code)].Add(1)
			h.inFlight.Add(-1)
			if h.logger != nil {
				h.logRequest(r, name, sw.code, d)
			}
		}()
		// Per-request deadline: the server default, overridden by an
		// explicit ?budget=<duration>. The bounded context threads into
		// SearchOptions.Ctx, so a query that exhausts its budget mid-solve
		// is abandoned between solve steps and answered with a 499.
		deadline := h.defaultTimeout
		if raw := r.URL.Query().Get("budget"); raw != "" {
			v, err := time.ParseDuration(raw)
			if err != nil || v <= 0 {
				h.badRequest(sw, "bad budget %q: want a positive Go duration like 250ms", raw)
				return
			}
			deadline = v
		}
		if deadline > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), deadline)
			defer cancel()
			r = r.WithContext(ctx)
		}
		fn(sw, r)
	}
}

// logRequest emits the one structured line per request WithRequestLog
// buys: severity follows the status class, and the trace id (random,
// per request) gives log aggregators a join key.
func (h *Handler) logRequest(r *http.Request, endpoint string, code int, d time.Duration) {
	level := slog.LevelInfo
	switch {
	case code >= 500:
		level = slog.LevelError
	case code >= 400 && code != statusClientClosedRequest:
		level = slog.LevelWarn
	}
	h.logger.LogAttrs(context.Background(), level, "request",
		slog.String("traceId", fmt.Sprintf("%016x", rand.Uint64())),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("endpoint", endpoint),
		slog.Int("status", code),
		slog.Duration("latency", d),
	)
}

// cancelled maps an engine error caused by context cancellation — the
// client disconnected or timed out mid-solve — to 499 and counts it
// apart from genuine engine failures, then reports whether it handled
// the error.
func (h *Handler) cancelled(w http.ResponseWriter, err error) bool {
	if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	h.qCancelled.Add(1)
	httpError(w, statusClientClosedRequest, err.Error())
	return true
}

// wantTrace reports whether the request opted into per-query tracing,
// via ?trace=1 or the X-Kdash-Trace header.
func wantTrace(r *http.Request) bool {
	if v := r.Header.Get("X-Kdash-Trace"); v == "1" || v == "true" {
		return true
	}
	v := r.URL.Query().Get("trace")
	return v == "1" || v == "true"
}

// getTrace checks a reset trace recorder out of the handler's pool;
// putTrace returns it. Pooling keeps the traced path allocation-light
// (step slices are reused), though a traced query still pays for its
// clock reads — tracing is opt-in per request precisely so the default
// path stays at its steady-state allocation count.
//
//kdash:pooled
func (h *Handler) getTrace() *obs.QueryTrace {
	if t, ok := h.tracePool.Get().(*obs.QueryTrace); ok {
		t.Reset()
		return t
	}
	return &obs.QueryTrace{}
}

//kdash:release
func (h *Handler) putTrace(t *obs.QueryTrace) { h.tracePool.Put(t) }

// traceStepJSON is one shard solve in a trace block, in execution
// order.
type traceStepJSON struct {
	Shard          int     `json:"shard"`
	ResidualBefore float64 `json:"residualBefore"`
	MassConsumed   float64 `json:"massConsumed"`
	NodesEvaluated int     `json:"nodesEvaluated"`
	DurationNS     int64   `json:"durationNs"`
}

// traceJSON is the per-query trace block a ?trace=1 response carries.
// Steps and Residual are present for engines that trace at shard
// granularity (the sharded index); a monolithic engine fills only the
// aggregate fields.
type traceJSON struct {
	Steps          []traceStepJSON `json:"steps,omitempty"`
	Residual       []float64       `json:"residual,omitempty"`
	Solves         int             `json:"solves"`
	ShardsSolved   int             `json:"shardsSolved"`
	ShardsPruned   int             `json:"shardsPruned"`
	NodesEvaluated int             `json:"nodesEvaluated"`
	CutMassPruned  float64         `json:"cutMassPruned"`
	Converged      bool            `json:"converged"`
	CacheHit       bool            `json:"cacheHit"`
	SolveNS        int64           `json:"solveNs"`
	RankNS         int64           `json:"rankNs"`
}

// toTraceJSON copies a pooled recorder into a response-owned block (the
// recorder goes back to the pool when the handler returns, so the
// response must not alias its slices).
func toTraceJSON(tr *obs.QueryTrace) *traceJSON {
	out := &traceJSON{
		Solves:         tr.Solves,
		ShardsSolved:   tr.ShardsSolved,
		ShardsPruned:   tr.ShardsPruned,
		NodesEvaluated: tr.NodesEvaluated,
		CutMassPruned:  tr.CutMassPruned,
		Converged:      tr.Converged,
		CacheHit:       tr.CacheHit,
		SolveNS:        tr.SolveNS,
		RankNS:         tr.RankNS,
	}
	if len(tr.Steps) > 0 {
		out.Steps = make([]traceStepJSON, len(tr.Steps))
		for i, s := range tr.Steps {
			out.Steps[i] = traceStepJSON{
				Shard:          s.Shard,
				ResidualBefore: s.ResidualBefore,
				MassConsumed:   s.MassConsumed,
				NodesEvaluated: s.NodesEvaluated,
				DurationNS:     s.DurationNS,
			}
		}
	}
	if len(tr.Residual) > 0 {
		out.Residual = append([]float64(nil), tr.Residual...)
	}
	return out
}

// buildInfo is the /healthz "build" block, resolved once: the Go
// toolchain, main module and (when the binary was built inside a VCS
// checkout) the revision it was built from.
var (
	buildInfoOnce sync.Once
	buildInfoDoc  map[string]string
)

func buildInfo() map[string]string {
	buildInfoOnce.Do(func() {
		buildInfoDoc = map[string]string{}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfoDoc["goVersion"] = bi.GoVersion
		buildInfoDoc["module"] = bi.Main.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfoDoc["revision"] = s.Value
			case "vcs.time":
				buildInfoDoc["vcsTime"] = s.Value
			case "vcs.modified":
				buildInfoDoc["vcsModified"] = s.Value
			}
		}
	})
	return buildInfoDoc
}
