package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text, name, rest string
		ok               bool
	}{
		{"//kdash:noalloc", "noalloc", "", true},
		{"//kdash:allow(hotalloc) lazy first-touch sizing", "allow(hotalloc)", "lazy first-touch sizing", true},
		{"//kdash:allow(a,b) why", "allow(a,b)", "why", true},
		{"// kdash:noalloc", "", "", false}, // space after // is not a directive
		{"//go:noinline", "", "", false},
		{"// plain comment", "", "", false},
	}
	for _, c := range cases {
		name, rest, ok := parseDirective(c.text)
		if name != c.name || rest != c.rest || ok != c.ok {
			t.Errorf("parseDirective(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, name, rest, ok, c.name, c.rest, c.ok)
		}
	}
}

const suppressSrc = `package p

func f() {
	_ = 1 //kdash:allow(hotalloc)
	_ = 2 //kdash:allow(poolrelease) pool drained at shutdown
	//kdash:allow(rofactors) heap-owned fixture
	_ = 3
}
`

func TestSuppress(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allows := CollectAllows(fset, []*ast.File{f})
	if len(allows) != 3 {
		t.Fatalf("CollectAllows = %d allows, want 3", len(allows))
	}

	lineStart := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	diags := []Diagnostic{
		{Pos: lineStart(4), Analyzer: "hotalloc", Message: "make allocates"},    // same line as allow
		{Pos: lineStart(5), Analyzer: "poolrelease", Message: "leak"},           // same line as allow
		{Pos: lineStart(7), Analyzer: "rofactors", Message: "write"},            // line below allow
		{Pos: lineStart(5), Analyzer: "determinism", Message: "map range"},      // analyzer not named: survives
		{Pos: lineStart(2), Analyzer: "hotalloc", Message: "uncovered finding"}, // no allow nearby: survives
	}
	out := Suppress(fset, allows, diags)

	var survived []string
	for _, d := range out {
		survived = append(survived, d.Analyzer+":"+d.Message)
	}
	want := map[string]bool{
		"determinism:map range":      true,
		"hotalloc:uncovered finding": true,
		// The hotalloc allow on line 4 has no justification: Suppress
		// emits a meta-diagnostic under the reserved "kdashvet" name.
		"kdashvet://kdash:allow suppression requires a justification after the closing parenthesis": true,
	}
	if len(survived) != len(want) {
		t.Fatalf("Suppress returned %d diagnostics %v, want %d", len(survived), survived, len(want))
	}
	for _, s := range survived {
		if !want[s] {
			t.Errorf("unexpected surviving diagnostic %q", s)
		}
	}
}

func TestFuncDirectives(t *testing.T) {
	src := `package p

//kdash:noalloc
//kdash:deterministic
func hot() {}

// ordinary doc comment
func cold() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*ast.FuncDecl{}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			byName[fd.Name.Name] = fd
		}
	}
	hot := FuncDirectives(byName["hot"])
	if !hot["noalloc"] || !hot["deterministic"] || len(hot) != 2 {
		t.Errorf("hot directives = %v, want noalloc+deterministic", hot)
	}
	if cold := FuncDirectives(byName["cold"]); len(cold) != 0 {
		t.Errorf("cold directives = %v, want none", cold)
	}
	if !strings.HasPrefix(DirectivePrefix, "//") {
		t.Errorf("DirectivePrefix %q must be a line-comment namespace", DirectivePrefix)
	}
}
