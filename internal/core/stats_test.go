package core

import (
	"testing"
	"testing/quick"

	"kdash/internal/gen"
	"kdash/internal/graph"
	"kdash/internal/reorder"
)

// TestSearchStatsInvariants checks structural invariants of the search
// accounting on random graphs: every scored node was visited, visits
// never exceed n, and pruning can only reduce work.
func TestSearchStatsInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(80, 320, seed)
		ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: seed})
		if err != nil {
			return false
		}
		q := int(uint(seed) % 80)
		pruned, ps, err := ix.Search(q, SearchOptions{K: 5})
		if err != nil {
			return false
		}
		full, fs, err := ix.Search(q, SearchOptions{K: 5, DisablePruning: true})
		if err != nil {
			return false
		}
		if ps.ProximityComputations > ps.Visited || ps.Visited > g.N() {
			return false
		}
		if fs.ProximityComputations != fs.Visited {
			return false // without pruning every visited node is scored
		}
		if ps.ProximityComputations > fs.ProximityComputations {
			return false
		}
		if len(pruned) != len(full) {
			return false
		}
		for i := range pruned {
			if pruned[i].Node != full[i].Node {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestK1AlwaysQueryNode(t *testing.T) {
	// With K=1 the answer is the query node itself (p_q >= c > any other
	// node's proximity) and the search should terminate almost instantly.
	g := gen.BarabasiAlbert(150, 3, 1)
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 150; q += 17 {
		rs, st, err := ix.TopK(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != 1 || rs[0].Node != q {
			t.Errorf("q=%d: K=1 answer %v", q, rs)
		}
		if st.ProximityComputations > 3 {
			t.Errorf("q=%d: K=1 needed %d proximity computations", q, st.ProximityComputations)
		}
	}
}

func TestIsolatedQueryNode(t *testing.T) {
	// A node with no out-edges: its proximity vector is c at itself and 0
	// elsewhere, so top-k is just the node.
	b := graph.NewBuilder(5)
	for _, e := range [][2]int{{1, 2}, {2, 3}, {3, 1}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build() // node 0 and 4 are isolated
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rs, _, err := ix.TopK(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Node != 0 {
		t.Errorf("isolated query answer %v, want just node 0", rs)
	}
	if rs[0].Score < ix.Restart()-1e-12 {
		t.Errorf("isolated query proximity %v, want >= c", rs[0].Score)
	}
}

func TestSingleNodeGraph(t *testing.T) {
	g := graph.NewBuilder(1).Build()
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Natural})
	if err != nil {
		t.Fatal(err)
	}
	rs, _, err := ix.TopK(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Node != 0 {
		t.Errorf("single-node graph answer %v", rs)
	}
}

func TestVisitOrderMatchesEagerBFS(t *testing.T) {
	// The lazy BFS expansion in searchTree must produce exactly the same
	// visit order as the eager reference used by the random-root path.
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(40, 160, seed)
		ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: seed})
		if err != nil {
			return false
		}
		q := int(uint(seed) % 40)
		qi := ix.perm[q]
		order, _ := ix.bfs(qi)
		// Replay an unpruned search and compare the visited count: with
		// pruning disabled it must visit exactly the BFS-reachable set.
		_, st, err := ix.Search(q, SearchOptions{K: 3, DisablePruning: true})
		if err != nil {
			return false
		}
		return st.Visited == len(order)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWorkersOptionEquivalence(t *testing.T) {
	// The Workers knob parallelises precompute only; answers must be
	// bit-identical.
	g := gen.PlantedPartition(120, 4, 0.2, 0.01, 5)
	a, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{0, 60, 119} {
		ra, _, err := a.TopK(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		rb, _, err := b.TopK(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Errorf("q=%d rank %d: %v vs %v", q, i, ra[i], rb[i])
			}
		}
	}
}
