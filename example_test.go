package kdash_test

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"kdash"
)

// ExampleBuildIndex indexes a small ring-with-chord graph and runs an
// exact top-3 query.
func ExampleBuildIndex() {
	b := kdash.NewBuilder(5)
	for _, e := range []struct {
		from, to int
		w        float64
	}{
		{0, 1, 2}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 0, 1}, {0, 2, 1},
	} {
		if err := b.AddEdge(e.from, e.to, e.w); err != nil {
			log.Fatal(err)
		}
	}
	ix, err := kdash.BuildIndex(b.Build(), kdash.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	results, _, err := ix.TopK(0, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("%d. node %d (%.4f)\n", i+1, r.Node, r.Score)
	}
	// Output:
	// 1. node 0 (0.9500)
	// 2. node 1 (0.0317)
	// 3. node 2 (0.0174)
}

// ExampleIndex_TopKPersonalized restarts the walk into a weighted seed
// set (Personalized PageRank) and still gets exact answers.
func ExampleIndex_TopKPersonalized() {
	b := kdash.NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 2}, {1, 2}, {4, 5}, {5, 4}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			log.Fatal(err)
		}
	}
	ix, err := kdash.BuildIndex(b.Build(), kdash.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	results, _, err := ix.TopKPersonalized(map[int]float64{0: 3, 2: 1}, 2)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("%d. node %d\n", i+1, r.Node)
	}
	// Output:
	// 1. node 0
	// 2. node 2
}

// ExampleIndex_Save round-trips an index through its binary serialisation.
func ExampleIndex_Save() {
	b := kdash.NewBuilder(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			log.Fatal(err)
		}
	}
	ix, err := kdash.BuildIndex(b.Build(), kdash.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := kdash.LoadIndex(&buf)
	if err != nil {
		log.Fatal(err)
	}
	results, _, err := loaded.TopK(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top node: %d\n", results[0].Node)
	// Output:
	// top node: 0
}

// ExampleOpenIndex saves an index to a file and reopens it
// memory-mapped: the arrays are served straight from the read-only
// mapping (zero-copy on supported platforms, private copy elsewhere),
// so the open costs milliseconds however large the index is. Close
// releases the mapping once the index is retired.
func ExampleOpenIndex() {
	b := kdash.NewBuilder(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			log.Fatal(err)
		}
	}
	ix, err := kdash.BuildIndex(b.Build(), kdash.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "kdash-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ring.idx")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.Save(f); err != nil {
		log.Fatal(err)
	}
	f.Close()

	mapped, err := kdash.OpenIndex(path, kdash.OpenOptions{Mmap: true})
	if err != nil {
		log.Fatal(err)
	}
	defer mapped.Close()
	copied, err := kdash.OpenIndex(path, kdash.OpenOptions{}) // private copy, checksums verified
	if err != nil {
		log.Fatal(err)
	}
	a, _, err := mapped.TopK(0, 2)
	if err != nil {
		log.Fatal(err)
	}
	c, _, err := copied.TopK(0, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answers agree: %t\n", a[0] == c[0] && a[1] == c[1])
	fmt.Printf("top node: %d\n", a[0].Node)
	// Output:
	// answers agree: true
	// top node: 0
}

// ExampleOpenShardedIndex round-trips a sharded index through its
// directory form and reopens it lazily: shard files are only opened
// (and, where supported, memory-mapped) when a query first solves the
// shard — the instant-cold-start configuration behind the server's
// -mmap flag.
func ExampleOpenShardedIndex() {
	b := kdash.NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			log.Fatal(err)
		}
	}
	sx, err := kdash.BuildShardedIndex(b.Build(), kdash.ShardOptions{Shards: 2})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "kdash-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	idxDir := filepath.Join(dir, "idx")
	if err := sx.Save(idxDir); err != nil {
		log.Fatal(err)
	}

	opened, err := kdash.OpenShardedIndex(idxDir, kdash.OpenOptions{Mmap: true, Lazy: true})
	if err != nil {
		log.Fatal(err)
	}
	defer opened.Close()
	want, _, err := sx.TopK(0, 2)
	if err != nil {
		log.Fatal(err)
	}
	got, _, err := opened.TopK(0, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bit-identical: %t\n", want[0] == got[0] && want[1] == got[1])
	// Output:
	// bit-identical: true
}

// ExampleIndex_TopKBatch answers a block of queries through one shared
// workspace; answers are identical to issuing each query alone.
func ExampleIndex_TopKBatch() {
	b := kdash.NewBuilder(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			log.Fatal(err)
		}
	}
	ix, err := kdash.BuildIndex(b.Build(), kdash.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	batches, _, err := ix.TopKBatch([]int{0, 2, 4}, 2)
	if err != nil {
		log.Fatal(err)
	}
	for i, results := range batches {
		fmt.Printf("query %d -> top node %d\n", i, results[0].Node)
	}
	// Output:
	// query 0 -> top node 0
	// query 1 -> top node 2
	// query 2 -> top node 4
}

// ExampleShardedIndex_Apply applies a graph delta functionally — the
// old epoch stays valid while the successor refactorizes only the
// shards owning changed columns — then round-trips the successor
// through Save and a lazy reopen.
func ExampleShardedIndex_Apply() {
	b := kdash.NewBuilder(4)
	for _, e := range [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 2}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			log.Fatal(err)
		}
	}
	sx, err := kdash.BuildShardedIndex(b.Build(), kdash.ShardOptions{Shards: 2})
	if err != nil {
		log.Fatal(err)
	}

	d := sx.Graph().NewDelta()
	if err := d.AddEdge(1, 2, 2); err != nil { // bridge the components
		log.Fatal(err)
	}
	next, stats, err := sx.Apply(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch %d, shards rebuilt: %d\n", next.Epoch(), stats.ShardsRebuilt)

	dir, err := os.MkdirTemp("", "kdash-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	idxDir := filepath.Join(dir, "idx")
	if err := next.Save(idxDir); err != nil {
		log.Fatal(err)
	}
	reloaded, err := kdash.OpenShardedIndex(idxDir, kdash.OpenOptions{Mmap: true, Lazy: true})
	if err != nil {
		log.Fatal(err)
	}
	defer reloaded.Close()
	want, _, err := next.TopK(1, 3)
	if err != nil {
		log.Fatal(err)
	}
	got, _, err := reloaded.TopK(1, 3)
	if err != nil {
		log.Fatal(err)
	}
	same := len(want) == len(got)
	for i := range got {
		same = same && want[i] == got[i]
	}
	fmt.Printf("epoch survives reload: %d, answers bit-identical: %t\n", reloaded.Epoch(), same)
	// Output:
	// epoch 1, shards rebuilt: 1
	// epoch survives reload: 1, answers bit-identical: true
}
