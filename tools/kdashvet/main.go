// Command kdashvet is the repo's custom static-analysis suite: five
// analyzers that enforce the engine's load-bearing runtime invariants at
// compile time (see docs/STATIC_ANALYSIS.md):
//
//	poolrelease   pooled values (push state, search workspaces, sparse
//	              solvers, trace recorders) reach their release on every path
//	hotalloc      //kdash:noalloc functions contain no alloc-shaped constructs
//	rofactors     //kdash:readonly factor arrays are never written outside
//	              the constructor/serialization allowlist (mmap safety)
//	determinism   //kdash:deterministic call graphs avoid map iteration,
//	              wall clocks and math/rand (bit-identical solve schedules)
//	ctxcancel     //kdash:ctxloop solve loops consult a context between
//	              iterations
//
// It runs two ways:
//
//	kdashvet ./...                                  # standalone
//	go vet -vettool=$(which kdashvet) ./...         # via the go toolchain
//
// The vettool path implements the go command's unitchecker protocol
// (-V=full / -flags handshakes plus per-package vet.cfg files) and also
// covers _test.go files; the standalone path drives `go list -export`
// itself and checks non-test sources.
//
// Suppressions: //kdash:allow(analyzer) <justification> on the finding's
// line or the line above. A justification is mandatory.
package main

import (
	"fmt"
	"os"
	"strings"

	"kdash/tools/kdashvet/internal/analyzers"
	"kdash/tools/kdashvet/internal/driver"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Toolchain handshakes, sent by cmd/go before any analysis.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			driver.PrintVersion(os.Stdout, "kdashvet")
			return 0
		case "-flags", "--flags":
			// No tool flags are forwarded from `go vet` invocations.
			fmt.Println("[]")
			return 0
		case "-h", "-help", "--help":
			usage()
			return 0
		}
	}

	// Unitchecker mode: a single vet.cfg argument from `go vet -vettool`.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		n, err := driver.RunUnitchecker(args[0], analyzers.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "kdashvet: %v\n", err)
			return 1
		}
		if n > 0 {
			return 2
		}
		return 0
	}

	// Standalone mode: package patterns, default ./...
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := driver.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kdashvet: %v\n", err)
		return 1
	}
	total := 0
	for _, p := range pkgs {
		diags, err := driver.Run(p, analyzers.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "kdashvet: %v\n", err)
			return 1
		}
		driver.PrintDiagnostics(os.Stderr, p, diags)
		total += len(diags)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "kdashvet: %d finding(s)\n", total)
		return 2
	}
	return 0
}

func usage() {
	fmt.Println(`kdashvet — K-dash invariant checkers

usage:
  kdashvet [packages]                      standalone (default ./...)
  go vet -vettool=/path/to/kdashvet ./...  via the go toolchain (covers tests)

analyzers: poolrelease hotalloc rofactors determinism ctxcancel
suppress:  //kdash:allow(analyzer) justification`)
}
