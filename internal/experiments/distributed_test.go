package experiments

import (
	"strings"
	"testing"
)

// TestDistributedShape runs the distributed-serving experiment on a
// small graph and checks its structural invariants: one single-process
// baseline row plus the 2- and 4-worker topologies, every topology
// bit-identical, and sane latency fields.
func TestDistributedShape(t *testing.T) {
	rows, err := Distributed(Config{Queries: 4, Seed: 2, ShardGraphN: 1500})
	if err != nil {
		t.Fatal(err)
	}
	wantWorkers := []int{0, 2, 4}
	if len(rows) != len(wantWorkers) {
		t.Fatalf("got %d rows, want %d", len(rows), len(wantWorkers))
	}
	for i, r := range rows {
		if r.Workers != wantWorkers[i] {
			t.Fatalf("row %d workers %d, want %d", i, r.Workers, wantWorkers[i])
		}
		if !r.Exact {
			t.Fatalf("topology with %d workers answered differently from the single process", r.Workers)
		}
		if r.Mean <= 0 || r.P99 < r.P50 || r.QPS <= 0 {
			t.Fatalf("row %d has implausible latency fields: %+v", i, r)
		}
	}
	if rows[0].SlowdownVs != 1 {
		t.Fatalf("baseline slowdown = %v, want 1", rows[0].SlowdownVs)
	}

	var sb strings.Builder
	WriteDistributedRows(&sb, rows)
	if !strings.Contains(sb.String(), "2-worker") || !strings.Contains(sb.String(), "local") {
		t.Fatalf("table missing topology labels:\n%s", sb.String())
	}
}

// TestBatchScaleShape runs the batch-scaling experiment on a small
// graph: per batch size the batched call must agree with the
// sequential loop and the sharing column must be >= 1 (a block sweep
// serves at least one right-hand side).
func TestBatchScaleShape(t *testing.T) {
	sizes := []int{1, 4}
	rows, err := BatchScale(Config{Queries: 4, Seed: 2, ShardGraphN: 1500, BatchSizes: sizes})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sizes) {
		t.Fatalf("got %d rows, want %d", len(rows), len(sizes))
	}
	for i, r := range rows {
		if r.Batch != sizes[i] {
			t.Fatalf("row %d batch %d, want %d", i, r.Batch, sizes[i])
		}
		if !r.Agrees {
			t.Fatalf("batch=%d answers diverged from the sequential loop", r.Batch)
		}
		if r.Sequential <= 0 || r.Batched <= 0 || r.Sharing < 1 {
			t.Fatalf("row %d implausible: %+v", i, r)
		}
	}
	var buf strings.Builder
	WriteBatchRows(&buf, rows)
	if !strings.Contains(buf.String(), "batch") {
		t.Fatalf("table missing header:\n%s", buf.String())
	}
}

// TestResolvedConfig: Resolved must replace every defaulted field so a
// -json run records the workload it actually measured.
func TestResolvedConfig(t *testing.T) {
	r := Config{}.Resolved()
	if r.Queries == 0 {
		t.Fatalf("Resolved left zero fields: %+v", r)
	}
	if r.ShardCounts == nil || r.ShardGraphN == 0 || r.BatchSizes == nil {
		t.Fatalf("Resolved left nil/zero sweep fields: %+v", r)
	}
	// An explicitly set field survives resolution.
	if got := (Config{ShardGraphN: 123}).Resolved().ShardGraphN; got != 123 {
		t.Fatalf("Resolved clobbered an explicit field: %d", got)
	}
}
