package gen

import (
	"sort"
	"testing"
)

func TestErdosRenyiShape(t *testing.T) {
	g := ErdosRenyi(100, 400, 1)
	if g.N() != 100 {
		t.Fatalf("n = %d", g.N())
	}
	if g.M() < 300 || g.M() > 400 {
		t.Errorf("m = %d, want close to 400 (duplicates may merge)", g.M())
	}
	for u := 0; u < g.N(); u++ {
		g.OutNeighbors(u, func(to int, _ float64) {
			if to == u {
				t.Errorf("self loop at %d", u)
			}
		})
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(50, 120, 42)
	b := ErdosRenyi(50, 120, 42)
	if a.M() != b.M() {
		t.Fatalf("same seed produced different edge counts %d vs %d", a.M(), b.M())
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ae[i], be[i])
		}
	}
	c := ErdosRenyi(50, 120, 43)
	diff := c.M() != a.M()
	if !diff {
		ce := c.Edges()
		for i := range ae {
			if ae[i] != ce[i] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical graphs")
	}
}

func TestBarabasiAlbertHeavyTail(t *testing.T) {
	g := BarabasiAlbert(500, 3, 2)
	if g.N() != 500 {
		t.Fatalf("n = %d", g.N())
	}
	degs := make([]int, g.N())
	for u := range degs {
		degs[u] = g.OutDegree(u)
		if degs[u] < 3 {
			t.Errorf("node %d has degree %d < k", u, degs[u])
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	// Heavy tail: the max degree should far exceed the median.
	if degs[0] < 4*degs[len(degs)/2] {
		t.Errorf("degree distribution not heavy-tailed: max=%d median=%d", degs[0], degs[len(degs)/2])
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= k")
		}
	}()
	BarabasiAlbert(3, 3, 1)
}

func TestDirectedScaleFree(t *testing.T) {
	g := DirectedScaleFree(400, 4, 0.2, 0.2, 3)
	if g.N() != 400 {
		t.Fatalf("n = %d", g.N())
	}
	maxIn := 0
	for u := 0; u < g.N(); u++ {
		if d := g.InDegree(u); d > maxIn {
			maxIn = d
		}
	}
	if maxIn < 20 {
		t.Errorf("copy model should concentrate in-degree, max in-degree = %d", maxIn)
	}
}

func TestPlantedPartitionCommunityDensity(t *testing.T) {
	n, k := 200, 4
	g := PlantedPartition(n, k, 0.2, 0.005, 4)
	community := func(u int) int { return u * k / n }
	within, cross := 0, 0
	for _, e := range g.Edges() {
		if community(e.From) == community(e.To) {
			within++
		} else {
			cross++
		}
	}
	if within <= 5*cross {
		t.Errorf("planted partition not community-dominant: within=%d cross=%d", within, cross)
	}
	for u := 0; u < n; u++ {
		if g.Degree(u) == 0 {
			t.Errorf("node %d isolated", u)
		}
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(120, 3, 0.1, 5)
	if g.N() != 120 {
		t.Fatalf("n = %d", g.N())
	}
	// Ring lattice with k=3 gives ~3 out-neighbours per node pre-rewire.
	total := 0
	for u := 0; u < g.N(); u++ {
		total += g.OutDegree(u)
	}
	avg := float64(total) / 120
	if avg < 4 || avg > 8 {
		t.Errorf("avg degree %v outside small-world expectation", avg)
	}
}

func TestCommunityOverlayAllNodesHaveOutEdges(t *testing.T) {
	g := CommunityOverlay(300, 5, 10, 0.6, 6)
	for u := 0; u < g.N(); u++ {
		if g.OutDegree(u) == 0 {
			t.Errorf("node %d has no out-edges", u)
		}
	}
}

func TestBipartiteStructure(t *testing.T) {
	g := Bipartite(30, 50, 3, 7)
	if g.N() != 80 {
		t.Fatalf("n = %d", g.N())
	}
	for u := 0; u < 30; u++ {
		g.OutNeighbors(u, func(to int, _ float64) {
			if to < 30 {
				t.Errorf("left node %d links to left node %d", u, to)
			}
		})
	}
	for u := 30; u < 80; u++ {
		g.OutNeighbors(u, func(to int, _ float64) {
			if to >= 30 {
				t.Errorf("right node %d links to right node %d", u, to)
			}
		})
	}
}
