// Package experiments regenerates every measurement in the paper's
// evaluation (Section 6): Figures 2–7 and 9 and the Table 2 case study,
// plus two extensions the paper mentions in passing (a restart-probability
// sweep and a drop-tolerance ablation). Each experiment returns typed rows
// and has a formatter, so both the benchmark harness and cmd/kdash-bench
// share one implementation.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"kdash/internal/blin"
	"kdash/internal/bpa"
	"kdash/internal/core"
	"kdash/internal/dataset"
	"kdash/internal/reorder"
	"kdash/internal/rwr"
	"kdash/internal/topk"
)

// Config controls workload sizes. The zero value selects the defaults
// used by cmd/kdash-bench, which are scaled-down versions of the paper's
// parameters (see DESIGN.md §5–6).
type Config struct {
	// Queries is the number of query nodes averaged per measurement.
	Queries int
	// Seed drives query selection and index construction.
	Seed int64
	// Datasets overrides the evaluation datasets (default: the five
	// simulated paper datasets).
	Datasets []*dataset.Dataset
	// Ks are the answer-set sizes for Figure 2 (paper: 5, 25, 50).
	Ks []int
	// Ranks is the NB_LIN target-rank sweep for Figures 3–4
	// (paper: 100..1000 at full scale; scaled to 10..100 here).
	Ranks []int
	// Hubs is the BPA hub-count sweep for Figures 3–4.
	Hubs []int
	// K is the answer-set size for precision experiments (paper: 5).
	K int
	// ShardCounts is the shard sweep for the sharded-index extension
	// (default 1, 2, 4, 8).
	ShardCounts []int
	// ShardGraphN sizes the generated graph for the shard and batch
	// experiments.
	ShardGraphN int
	// BatchSizes is the batch sweep for the batched-execution extension
	// (default 1, 8, 64).
	BatchSizes []int
	// ServeDuration is the per-phase wall clock of the serve-load
	// experiment (default 4s).
	ServeDuration time.Duration
	// ServeWorkers is the client concurrency of the serve-load
	// experiment (default 8).
	ServeWorkers int
}

func (c Config) withDefaults() Config {
	if c.Queries == 0 {
		c.Queries = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Datasets == nil {
		c.Datasets = dataset.All()
	}
	if c.Ks == nil {
		c.Ks = []int{5, 25, 50}
	}
	if c.Ranks == nil {
		c.Ranks = []int{10, 40, 70, 100}
	}
	if c.Hubs == nil {
		c.Hubs = []int{10, 40, 70, 100}
	}
	if c.K == 0 {
		c.K = 5
	}
	return c
}

// Resolved returns the config with every defaulted field replaced by
// the value the experiments actually run with. Harnesses that record
// the configuration next to their results (kdash-bench -json) must
// persist this, not the raw flag values — otherwise a defaulted run is
// recorded as `shardNodes: 0`, which misreads as a degenerate workload.
func (c Config) Resolved() Config {
	c = c.withDefaults()
	if c.ShardCounts == nil {
		c.ShardCounts = defaultShardCounts
	}
	if c.ShardGraphN == 0 {
		c.ShardGraphN = defaultShardGraphN
	}
	if c.BatchSizes == nil {
		c.BatchSizes = defaultBatchSizes
	}
	if c.ServeDuration == 0 {
		c.ServeDuration = defaultServeDuration
	}
	if c.ServeWorkers == 0 {
		c.ServeWorkers = defaultServeWorkers
	}
	return c
}

// queryNodes picks deterministic query nodes for a dataset.
func (c Config) queryNodes(n int) []int {
	rng := rand.New(rand.NewSource(c.Seed))
	qs := make([]int, c.Queries)
	for i := range qs {
		qs[i] = rng.Intn(n)
	}
	return qs
}

// Precision is the paper's accuracy metric (Section 6.2): the fraction of
// an algorithm's top-k that appears in the exact top-k. Ties at the k-th
// exact score are treated as correct, since any of the tied nodes is a
// valid exact answer.
func Precision(got, exact []topk.Result) float64 {
	if len(exact) == 0 {
		return 1
	}
	okNode := map[int]bool{}
	for _, r := range exact {
		okNode[r.Node] = true
	}
	kth := exact[len(exact)-1].Score
	hits := 0
	limit := len(exact)
	if len(got) < limit {
		limit = len(got)
	}
	for _, r := range got[:limit] {
		if okNode[r.Node] || r.Score >= kth-1e-12 {
			hits++
		}
	}
	return float64(hits) / float64(len(exact))
}

// ---------------------------------------------------------------------
// Figure 2: query efficiency of K-dash vs NB_LIN vs BPA on all datasets.
// ---------------------------------------------------------------------

// TimingRow is one bar of Figure 2.
type TimingRow struct {
	Dataset string
	Algo    string
	Mean    time.Duration
}

// Figure2 measures mean top-k query time per dataset for K-dash(K in
// cfg.Ks), NB_LIN at a low and a high rank, and BPA(K in cfg.Ks).
func Figure2(cfg Config) ([]TimingRow, error) {
	cfg = cfg.withDefaults()
	var rows []TimingRow
	loRank, hiRank := cfg.Ranks[0], cfg.Ranks[len(cfg.Ranks)-1]
	hubCount := cfg.Hubs[len(cfg.Hubs)-1]
	for _, ds := range cfg.Datasets {
		qs := cfg.queryNodes(ds.Graph.N())
		ix, err := core.BuildIndex(ds.Graph, core.BuildOptions{Reorder: reorder.Hybrid, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("figure2 %s: %w", ds.Name, err)
		}
		for _, k := range cfg.Ks {
			d, err := meanTime(qs, func(q int) error {
				_, _, err := ix.TopK(q, k)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("figure2 %s K-dash(%d): %w", ds.Name, k, err)
			}
			rows = append(rows, TimingRow{ds.Name, fmt.Sprintf("K-dash(%d)", k), d})
		}
		for _, rank := range []int{loRank, hiRank} {
			nb, err := blin.NewNBLin(ds.Graph, blin.Options{Rank: rank, Seed: cfg.Seed})
			if err != nil {
				return nil, fmt.Errorf("figure2 %s NB_LIN(%d): %w", ds.Name, rank, err)
			}
			d, err := meanTime(qs, func(q int) error {
				_, err := nb.TopK(q, cfg.K)
				return err
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, TimingRow{ds.Name, fmt.Sprintf("NB_LIN(%d)", rank), d})
		}
		bl, err := blin.NewBLin(ds.Graph, blin.Options{Rank: loRank, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("figure2 %s B_LIN(%d): %w", ds.Name, loRank, err)
		}
		dBl, err := meanTime(qs, func(q int) error {
			_, err := bl.TopK(q, cfg.K)
			return err
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, TimingRow{ds.Name, fmt.Sprintf("B_LIN(%d)", loRank), dBl})
		bp, err := bpa.New(ds.Graph, bpa.Options{Hubs: hubCount})
		if err != nil {
			return nil, fmt.Errorf("figure2 %s BPA: %w", ds.Name, err)
		}
		for _, k := range cfg.Ks {
			d, err := meanTime(qs, func(q int) error {
				_, _, err := bp.TopK(q, k)
				return err
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, TimingRow{ds.Name, fmt.Sprintf("BPA(%d)", k), d})
		}
	}
	return rows, nil
}

func meanTime(qs []int, fn func(q int) error) (time.Duration, error) {
	start := time.Now()
	for _, q := range qs {
		if err := fn(q); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(len(qs)), nil
}

// ---------------------------------------------------------------------
// Figures 3 and 4: precision and query time vs. target rank / hub count
// on the Dictionary dataset.
// ---------------------------------------------------------------------

// SweepRow is one x-position of Figures 3 and 4.
type SweepRow struct {
	Param          int // target rank (NB_LIN) / hub count (BPA)
	PrecisionNBLin float64
	PrecisionBPA   float64
	PrecisionKDash float64
	TimeNBLin      time.Duration
	TimeBPA        time.Duration
	TimeKDash      time.Duration
}

// Figure3and4 runs the rank/hub sweep on the first configured dataset
// (Dictionary by default), producing both the precision series (Figure 3)
// and the wall-clock series (Figure 4) in one pass.
func Figure3and4(cfg Config) ([]SweepRow, error) {
	cfg = cfg.withDefaults()
	ds := cfg.Datasets[0]
	qs := cfg.queryNodes(ds.Graph.N())
	a := ds.Graph.ColumnNormalized()
	// Exact answers once per query.
	exact := make(map[int][]topk.Result, len(qs))
	for _, q := range qs {
		rs, err := rwr.TopK(a, q, cfg.K, rwr.DefaultRestart)
		if err != nil {
			return nil, fmt.Errorf("figure3 oracle q=%d: %w", q, err)
		}
		exact[q] = rs
	}
	ix, err := core.BuildIndex(ds.Graph, core.BuildOptions{Reorder: reorder.Hybrid, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	kdashPrec := 0.0
	kdashTime, err := meanTime(qs, func(q int) error {
		rs, _, err := ix.TopK(q, cfg.K)
		if err != nil {
			return err
		}
		kdashPrec += Precision(rs, exact[q])
		return nil
	})
	if err != nil {
		return nil, err
	}
	kdashPrec /= float64(len(qs))

	if len(cfg.Ranks) != len(cfg.Hubs) {
		return nil, fmt.Errorf("figure3: Ranks and Hubs sweeps must have equal length (%d vs %d)", len(cfg.Ranks), len(cfg.Hubs))
	}
	var rows []SweepRow
	for i := range cfg.Ranks {
		rank, hubs := cfg.Ranks[i], cfg.Hubs[i]
		nb, err := blin.NewNBLin(ds.Graph, blin.Options{Rank: rank, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		nbPrec := 0.0
		nbTime, err := meanTime(qs, func(q int) error {
			rs, err := nb.TopK(q, cfg.K)
			if err != nil {
				return err
			}
			nbPrec += Precision(rs, exact[q])
			return nil
		})
		if err != nil {
			return nil, err
		}
		bp, err := bpa.New(ds.Graph, bpa.Options{Hubs: hubs})
		if err != nil {
			return nil, err
		}
		bpPrec := 0.0
		bpTime, err := meanTime(qs, func(q int) error {
			rs, _, err := bp.TopK(q, cfg.K)
			if err != nil {
				return err
			}
			if len(rs) > cfg.K {
				rs = rs[:cfg.K]
			}
			bpPrec += Precision(rs, exact[q])
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, SweepRow{
			Param:          rank,
			PrecisionNBLin: nbPrec / float64(len(qs)),
			PrecisionBPA:   bpPrec / float64(len(qs)),
			PrecisionKDash: kdashPrec,
			TimeNBLin:      nbTime,
			TimeBPA:        bpTime,
			TimeKDash:      kdashTime,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Figures 5 and 6: inverse-factor sparsity and precomputation time per
// reordering method.
// ---------------------------------------------------------------------

// ReorderRow is one bar of Figures 5 and 6.
type ReorderRow struct {
	Dataset    string
	Method     string
	NNZ        int
	Ratio      float64       // nnz(L^-1)+nnz(U^-1) over m — Figure 5's y-axis
	Precompute time.Duration // Figure 6's y-axis
}

// Figure5and6 builds an index with every reordering method on every
// dataset, recording the Figure 5 sparsity ratio and the Figure 6
// precompute time from the same build.
func Figure5and6(cfg Config) ([]ReorderRow, error) {
	cfg = cfg.withDefaults()
	var rows []ReorderRow
	for _, ds := range cfg.Datasets {
		for _, m := range reorder.Methods {
			ix, err := core.BuildIndex(ds.Graph, core.BuildOptions{Reorder: m, Seed: cfg.Seed})
			if err != nil {
				return nil, fmt.Errorf("figure5 %s/%v: %w", ds.Name, m, err)
			}
			st := ix.Stats()
			rows = append(rows, ReorderRow{
				Dataset:    ds.Name,
				Method:     m.String(),
				NNZ:        st.NNZInverse,
				Ratio:      st.InverseRatio,
				Precompute: st.TotalTime,
			})
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Figure 7: effect of the tree-estimation pruning.
// ---------------------------------------------------------------------

// PruningRow is one dataset of Figure 7.
type PruningRow struct {
	Dataset        string
	With           time.Duration
	Without        time.Duration
	Speedup        float64
	PrunedFraction float64 // fraction of reachable nodes never scored
}

// Figure7 measures query time with and without the estimation-based
// pruning (same index, K = cfg.K).
func Figure7(cfg Config) ([]PruningRow, error) {
	cfg = cfg.withDefaults()
	var rows []PruningRow
	for _, ds := range cfg.Datasets {
		qs := cfg.queryNodes(ds.Graph.N())
		ix, err := core.BuildIndex(ds.Graph, core.BuildOptions{Reorder: reorder.Hybrid, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("figure7 %s: %w", ds.Name, err)
		}
		var withComps, withoutComps int
		with, err := meanTime(qs, func(q int) error {
			_, st, err := ix.Search(q, core.SearchOptions{K: cfg.K})
			withComps += st.ProximityComputations
			return err
		})
		if err != nil {
			return nil, err
		}
		without, err := meanTime(qs, func(q int) error {
			_, st, err := ix.Search(q, core.SearchOptions{K: cfg.K, DisablePruning: true})
			withoutComps += st.ProximityComputations
			return err
		})
		if err != nil {
			return nil, err
		}
		row := PruningRow{Dataset: ds.Name, With: with, Without: without}
		if with > 0 {
			row.Speedup = float64(without) / float64(with)
		}
		if withoutComps > 0 {
			row.PrunedFraction = 1 - float64(withComps)/float64(withoutComps)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Figure 9: root-node selection.
// ---------------------------------------------------------------------

// RootRow is one dataset of Figure 9.
type RootRow struct {
	Dataset      string
	QueryRooted  float64 // mean proximity computations, tree rooted at q
	RandomRooted float64 // mean proximity computations, random root
}

// Figure9 compares the number of exact proximity computations between the
// query-rooted search tree and a randomly rooted one.
func Figure9(cfg Config) ([]RootRow, error) {
	cfg = cfg.withDefaults()
	var rows []RootRow
	for _, ds := range cfg.Datasets {
		qs := cfg.queryNodes(ds.Graph.N())
		ix, err := core.BuildIndex(ds.Graph, core.BuildOptions{Reorder: reorder.Hybrid, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("figure9 %s: %w", ds.Name, err)
		}
		var qSum, rSum float64
		for i, q := range qs {
			_, st, err := ix.Search(q, core.SearchOptions{K: cfg.K})
			if err != nil {
				return nil, err
			}
			qSum += float64(st.ProximityComputations)
			_, st, err = ix.Search(q, core.SearchOptions{K: cfg.K, RandomRoot: true, RootSeed: cfg.Seed + int64(i)})
			if err != nil {
				return nil, err
			}
			rSum += float64(st.ProximityComputations)
		}
		rows = append(rows, RootRow{
			Dataset:      ds.Name,
			QueryRooted:  qSum / float64(len(qs)),
			RandomRooted: rSum / float64(len(qs)),
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Table 2: case study on the Dictionary dataset.
// ---------------------------------------------------------------------

// CaseStudyRow is one (term, method) line of Table 2.
type CaseStudyRow struct {
	Term   string
	Method string
	Top    []string
}

// Table2 reproduces the ranked-list case study: the top-5 terms for each
// company / operating-system query, by exact K-dash and by low-rank
// NB_LIN.
func Table2(cfg Config) ([]CaseStudyRow, error) {
	cfg = cfg.withDefaults()
	ds := dataset.Dictionary()
	ix, err := core.BuildIndex(ds.Graph, core.BuildOptions{Reorder: reorder.Hybrid, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	nb, err := blin.NewNBLin(ds.Graph, blin.Options{Rank: cfg.Ranks[0], Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	var rows []CaseStudyRow
	for _, term := range dataset.CaseStudyTerms() {
		q, err := ds.NodeByLabel(term)
		if err != nil {
			return nil, err
		}
		kd, _, err := ix.TopK(q, cfg.K)
		if err != nil {
			return nil, err
		}
		nbRes, err := nb.TopK(q, cfg.K)
		if err != nil {
			return nil, err
		}
		rows = append(rows,
			CaseStudyRow{term, "K-dash", labelsOf(ds, kd)},
			CaseStudyRow{term, fmt.Sprintf("NB_LIN(%d)", cfg.Ranks[0]), labelsOf(ds, nbRes)},
		)
	}
	return rows, nil
}

func labelsOf(ds *dataset.Dataset, rs []topk.Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = ds.Label(r.Node)
	}
	return out
}

// ---------------------------------------------------------------------
// Extensions: restart-probability sweep (Section 6.3.3) and the
// drop-tolerance ablation (exactness/sparsity trade-off).
// ---------------------------------------------------------------------

// CSweepRow is one restart probability of the sweep.
type CSweepRow struct {
	C         float64
	Exact     bool
	QueryTime time.Duration
}

// CSweep verifies exactness and measures query time across restart
// probabilities on the first configured dataset.
func CSweep(cfg Config) ([]CSweepRow, error) {
	cfg = cfg.withDefaults()
	ds := cfg.Datasets[0]
	qs := cfg.queryNodes(ds.Graph.N())
	a := ds.Graph.ColumnNormalized()
	var rows []CSweepRow
	for _, c := range []float64{0.5, 0.7, 0.9, 0.95, 0.99} {
		ix, err := core.BuildIndex(ds.Graph, core.BuildOptions{Restart: c, Reorder: reorder.Hybrid, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		exact := true
		d, err := meanTime(qs, func(q int) error {
			got, _, err := ix.TopK(q, cfg.K)
			if err != nil {
				return err
			}
			want, err := rwr.TopK(a, q, cfg.K, c)
			if err != nil {
				return err
			}
			if Precision(got, want) < 1 {
				exact = false
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, CSweepRow{C: c, Exact: exact, QueryTime: d})
	}
	return rows, nil
}

// AblationRow is one drop tolerance of the ablation.
type AblationRow struct {
	DropTol   float64
	NNZ       int
	Precision float64
}

// DropTolAblation quantifies how discarding small inverse-factor entries
// trades exactness for sparsity — the reason K-dash keeps every entry.
func DropTolAblation(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	ds := cfg.Datasets[0]
	qs := cfg.queryNodes(ds.Graph.N())
	a := ds.Graph.ColumnNormalized()
	exact := make(map[int][]topk.Result, len(qs))
	for _, q := range qs {
		rs, err := rwr.TopK(a, q, cfg.K, rwr.DefaultRestart)
		if err != nil {
			return nil, err
		}
		exact[q] = rs
	}
	var rows []AblationRow
	for _, tol := range []float64{0, 1e-10, 1e-7, 1e-4, 1e-2} {
		ix, err := core.BuildIndex(ds.Graph, core.BuildOptions{Reorder: reorder.Hybrid, Seed: cfg.Seed, DropTol: tol})
		if err != nil {
			return nil, err
		}
		prec := 0.0
		for _, q := range qs {
			got, _, err := ix.TopK(q, cfg.K)
			if err != nil {
				return nil, err
			}
			prec += Precision(got, exact[q])
		}
		rows = append(rows, AblationRow{
			DropTol:   tol,
			NNZ:       ix.Stats().NNZInverse,
			Precision: prec / float64(len(qs)),
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Formatting.
// ---------------------------------------------------------------------

// WriteTimingRows prints Figure 2 style rows grouped by dataset.
func WriteTimingRows(w io.Writer, rows []TimingRow) {
	fmt.Fprintf(w, "%-12s %-14s %14s\n", "dataset", "algorithm", "mean query")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-14s %14v\n", r.Dataset, r.Algo, r.Mean)
	}
}

// WriteSweepRows prints Figures 3 and 4 as one table.
func WriteSweepRows(w io.Writer, rows []SweepRow) {
	fmt.Fprintf(w, "%-6s %10s %10s %10s %14s %14s %14s\n",
		"param", "prec(NB)", "prec(BPA)", "prec(KD)", "time(NB)", "time(BPA)", "time(KD)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %10.3f %10.3f %10.3f %14v %14v %14v\n",
			r.Param, r.PrecisionNBLin, r.PrecisionBPA, r.PrecisionKDash,
			r.TimeNBLin, r.TimeBPA, r.TimeKDash)
	}
}

// WriteReorderRows prints Figures 5 and 6 as one table.
func WriteReorderRows(w io.Writer, rows []ReorderRow) {
	fmt.Fprintf(w, "%-12s %-8s %12s %10s %14s\n", "dataset", "method", "nnz(inv)", "nnz/m", "precompute")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-8s %12d %10.2f %14v\n", r.Dataset, r.Method, r.NNZ, r.Ratio, r.Precompute)
	}
}

// WritePruningRows prints Figure 7.
func WritePruningRows(w io.Writer, rows []PruningRow) {
	fmt.Fprintf(w, "%-12s %14s %14s %9s %8s\n", "dataset", "with pruning", "without", "speedup", "pruned")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %14v %14v %8.1fx %7.1f%%\n",
			r.Dataset, r.With, r.Without, r.Speedup, 100*r.PrunedFraction)
	}
}

// WriteRootRows prints Figure 9.
func WriteRootRows(w io.Writer, rows []RootRow) {
	fmt.Fprintf(w, "%-12s %18s %18s\n", "dataset", "query-rooted", "random-rooted")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %18.1f %18.1f\n", r.Dataset, r.QueryRooted, r.RandomRooted)
	}
}

// WriteCaseStudyRows prints Table 2.
func WriteCaseStudyRows(w io.Writer, rows []CaseStudyRow) {
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Term < rows[j].Term })
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %-12s %s\n", r.Term, r.Method, strings.Join(r.Top, " | "))
	}
}

// WriteCSweepRows prints the restart-probability sweep.
func WriteCSweepRows(w io.Writer, rows []CSweepRow) {
	fmt.Fprintf(w, "%-6s %-7s %14s\n", "c", "exact", "query time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6.2f %-7t %14v\n", r.C, r.Exact, r.QueryTime)
	}
}

// WriteAblationRows prints the drop-tolerance ablation.
func WriteAblationRows(w io.Writer, rows []AblationRow) {
	fmt.Fprintf(w, "%-10s %12s %10s\n", "droptol", "nnz(inv)", "precision")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10.0e %12d %10.3f\n", r.DropTol, r.NNZ, r.Precision)
	}
}
