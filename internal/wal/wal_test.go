package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, opt Options) *Log {
	t.Helper()
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func body(i int) []byte { return []byte(fmt.Sprintf("record-%04d-payload", i)) }

func collect(t *testing.T, l *Log, after uint64) map[uint64][]byte {
	t.Helper()
	got := map[uint64][]byte{}
	prev := after
	err := l.Replay(after, func(seq uint64, b []byte) error {
		if seq != prev+1 {
			t.Fatalf("replay out of order: seq %d after %d", seq, prev)
		}
		prev = seq
		got[seq] = append([]byte(nil), b...)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNone})
	const n = 50
	for i := 1; i <= n; i++ {
		seq, err := l.Append(body(i))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("Append %d returned seq %d", i, seq)
		}
	}
	got := collect(t, l, 0)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i := 1; i <= n; i++ {
		if !bytes.Equal(got[uint64(i)], body(i)) {
			t.Fatalf("record %d = %q", i, got[uint64(i)])
		}
	}
	// Partial replay honours the cursor.
	if got := collect(t, l, 30); len(got) != n-30 {
		t.Fatalf("replay after 30 returned %d records, want %d", len(got), n-30)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: everything survives, appends continue the sequence.
	l2 := openT(t, dir, Options{Sync: SyncNone})
	if l2.LastSeq() != n {
		t.Fatalf("reopened LastSeq = %d, want %d", l2.LastSeq(), n)
	}
	if st := l2.Stats(); st.RecoveredRecords != n || st.TornBytesDropped != 0 {
		t.Fatalf("recovery stats = %+v", st)
	}
	seq, err := l2.Append(body(n + 1))
	if err != nil || seq != n+1 {
		t.Fatalf("post-reopen Append = (%d, %v), want (%d, nil)", seq, err, n+1)
	}
}

func TestSegmentRotationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every few records.
	l := openT(t, dir, Options{Sync: SyncNone, SegmentBytes: 128})
	const n = 40
	for i := 1; i <= n; i++ {
		if _, err := l.Append(body(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Rotations == 0 || st.Segments < 2 {
		t.Fatalf("expected rotations with 128-byte segments, stats = %+v", st)
	}
	if got := collect(t, l, 0); len(got) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(got), n)
	}

	// Truncate through the middle: early segments go, later records stay.
	if err := l.TruncateThrough(20); err != nil {
		t.Fatalf("TruncateThrough: %v", err)
	}
	got := collect(t, l, 20)
	for i := 21; i <= n; i++ {
		if !bytes.Equal(got[uint64(i)], body(i)) {
			t.Fatalf("record %d lost by truncation", i)
		}
	}
	if l.Stats().SegmentsFree == 0 {
		t.Fatal("truncation deleted no segments")
	}

	// Truncate through everything: the directory shrinks to one
	// near-empty active segment, and the sequence still continues.
	if err := l.TruncateThrough(l.LastSeq()); err != nil {
		t.Fatalf("TruncateThrough(all): %v", err)
	}
	if st := l.Stats(); st.Segments != 1 || st.Bytes > 64 {
		t.Fatalf("post-full-truncation stats = %+v", st)
	}
	if got := collect(t, l, 0); len(got) != 0 {
		t.Fatalf("replay after full truncation returned %d records", len(got))
	}
	seq, err := l.Append(body(n + 1))
	if err != nil || seq != n+1 {
		t.Fatalf("Append after full truncation = (%d, %v), want (%d, nil)", seq, err, n+1)
	}
	l.Close()

	// Sequence numbering survives a restart of the truncated log.
	l2 := openT(t, dir, Options{Sync: SyncNone})
	if l2.LastSeq() != n+1 {
		t.Fatalf("reopened LastSeq = %d, want %d", l2.LastSeq(), n+1)
	}
}

// TestKillPoints is the crash harness: it builds a log, then for every
// byte boundary that could survive a crash — each record boundary plus
// every torn prefix inside the final record — truncates a copy of the
// log there, reopens it, and asserts recovery yields exactly the
// records whose frames fit, in order, with appends continuing cleanly.
func TestKillPoints(t *testing.T) {
	master := t.TempDir()
	l := openT(t, master, Options{Sync: SyncNone})
	const n = 8
	for i := 1; i <= n; i++ {
		if _, err := l.Append(body(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(master, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("expected one segment, got %v (%v)", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Base(segs[0])

	// Record boundaries: offset after the magic, then after each frame.
	bounds := []int{len(segMagic)}
	off := len(segMagic)
	for i := 1; i <= n; i++ {
		off += frameHeaderLen + payloadOverhead + len(body(i))
		bounds = append(bounds, off)
	}
	if off != len(data) {
		t.Fatalf("frame walk ends at %d, file is %d bytes", off, len(data))
	}

	reopen := func(t *testing.T, cut []byte) *Log {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, name), cut, 0o644); err != nil {
			t.Fatal(err)
		}
		return openT(t, dir, Options{Sync: SyncNone})
	}

	for bi, b := range bounds {
		t.Run(fmt.Sprintf("boundary-%d", bi), func(t *testing.T) {
			lg := reopen(t, data[:b])
			got := collect(t, lg, 0)
			if len(got) != bi {
				t.Fatalf("cut at boundary %d recovered %d records", bi, len(got))
			}
			for i := 1; i <= bi; i++ {
				if !bytes.Equal(got[uint64(i)], body(i)) {
					t.Fatalf("record %d corrupted by recovery", i)
				}
			}
			if seq, err := lg.Append([]byte("resume")); err != nil || seq != uint64(bi)+1 {
				t.Fatalf("resume Append = (%d, %v), want (%d, nil)", seq, err, bi+1)
			}
		})
	}

	// Torn final record: every strict prefix of the last frame must drop
	// exactly that record and keep the n-1 before it.
	last := bounds[len(bounds)-2]
	for _, cut := range []int{last + 1, last + frameHeaderLen - 1, last + frameHeaderLen, len(data) - 1} {
		t.Run(fmt.Sprintf("torn-at-%d", cut), func(t *testing.T) {
			lg := reopen(t, data[:cut])
			got := collect(t, lg, 0)
			if len(got) != n-1 {
				t.Fatalf("torn tail at %d recovered %d records, want %d", cut, len(got), n-1)
			}
			if st := lg.Stats(); st.TornBytesDropped != int64(cut-last) {
				t.Fatalf("TornBytesDropped = %d, want %d", st.TornBytesDropped, cut-last)
			}
		})
	}

	// Bit-flip corruption inside each record's payload: recovery must
	// keep every record before it and drop it and everything after.
	for i := 1; i <= n; i++ {
		t.Run(fmt.Sprintf("flip-record-%d", i), func(t *testing.T) {
			bad := append([]byte(nil), data...)
			bad[bounds[i-1]+frameHeaderLen+payloadOverhead] ^= 0x80
			lg := reopen(t, bad)
			got := collect(t, lg, 0)
			if len(got) != i-1 {
				t.Fatalf("flip in record %d recovered %d records, want %d", i, len(got), i-1)
			}
		})
	}
}

// TestCorruptionQuarantinesLaterSegments: a bad record in an early
// segment must stop replay there and rename later segments aside rather
// than replay across the gap.
func TestCorruptionQuarantinesLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNone, SegmentBytes: 96})
	const n = 20
	for i := 1; i <= n; i++ {
		if _, err := l.Append(body(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d", len(segs))
	}
	// Corrupt a record in the first segment, past the magic.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(segMagic)+frameHeaderLen+2] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, dir, Options{Sync: SyncNone})
	st := l2.Stats()
	if st.SegmentsCorrupt != len(segs)-1 {
		t.Fatalf("quarantined %d segments, want %d (stats %+v)", st.SegmentsCorrupt, len(segs)-1, st)
	}
	if got := collect(t, l2, 0); len(got) != 0 {
		t.Fatalf("recovered %d records past a corrupt first record", len(got))
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if len(quarantined) != len(segs)-1 {
		t.Fatalf("found %d .corrupt files, want %d", len(quarantined), len(segs)-1)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		t.Run(pol.String(), func(t *testing.T) {
			l := openT(t, t.TempDir(), Options{Sync: pol, SyncEvery: time.Millisecond})
			for i := 1; i <= 10; i++ {
				if _, err := l.Append(body(i)); err != nil {
					t.Fatal(err)
				}
			}
			st := l.Stats()
			switch pol {
			case SyncAlways:
				if st.Fsyncs < 10 {
					t.Fatalf("SyncAlways issued %d fsyncs for 10 appends", st.Fsyncs)
				}
			case SyncInterval:
				deadline := time.Now().Add(time.Second)
				for l.Stats().Fsyncs == 0 {
					if time.Now().After(deadline) {
						t.Fatal("interval syncer never fsynced")
					}
					time.Sleep(time.Millisecond)
				}
			}
			if err := l.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			if got := collect(t, l, 0); len(got) != 10 {
				t.Fatalf("replayed %d records", len(got))
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "interval": SyncInterval, "none": SyncNone, "": SyncInterval,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"notes.txt", "wal-xyz.log", "wal-0000000000000001.log.corrupt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	l := openT(t, dir, Options{Sync: SyncNone})
	if seq, err := l.Append([]byte("x")); err != nil || seq != 1 {
		t.Fatalf("Append = (%d, %v)", seq, err)
	}
	names := l.SegmentNames()
	if len(names) != 1 || !strings.HasPrefix(names[0], "wal-") {
		t.Fatalf("SegmentNames = %v", names)
	}
}

func TestMissingMiddleSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNone, SegmentBytes: 96})
	for i := 1; i <= 20; i++ {
		if _, err := l.Append(body(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d", len(segs))
	}
	if err := os.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Sync: SyncNone}); err == nil {
		t.Fatal("Open succeeded across a missing middle segment")
	}
}

// TestReopenDegenerateActiveSegments pins recovery at the two
// degenerate active-segment lengths a crash can leave behind, plus the
// partially written magic between them: a 0-byte file (killed between
// segment create and magic write), a header-only file (magic written,
// no records yet), and a torn prefix of the magic itself. In every case
// reopen must keep the earlier segments' records, restore a writable
// header, and continue the sequence with no gap.
func TestReopenDegenerateActiveSegments(t *testing.T) {
	const n = 5 // records in the healthy first segment
	cases := []struct {
		name     string
		tail     []byte // content of the hand-made next segment
		wantTorn int64  // TornBytesDropped the scan should report
	}{
		{"empty-zero-bytes", nil, 0},
		{"exactly-magic-length", []byte(segMagic), 0},
		{"partial-magic", []byte(segMagic[:3]), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l := openT(t, dir, Options{Sync: SyncNone})
			for i := 1; i <= n; i++ {
				if _, err := l.Append(body(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			// Plant the degenerate active segment where a rotation crash
			// would have left it: first seq continuous with the log.
			next := filepath.Join(dir, segmentName(n+1))
			if err := os.WriteFile(next, tc.tail, 0o644); err != nil {
				t.Fatal(err)
			}

			l2 := openT(t, dir, Options{Sync: SyncNone})
			if st := l2.Stats(); st.RecoveredRecords != n || st.TornBytesDropped != tc.wantTorn {
				t.Fatalf("recovery stats = %+v, want %d records / %d torn bytes", st, n, tc.wantTorn)
			}
			if got := collect(t, l2, 0); len(got) != n {
				t.Fatalf("replayed %d records, want %d", len(got), n)
			}
			seq, err := l2.Append(body(n + 1))
			if err != nil || seq != n+1 {
				t.Fatalf("post-reopen Append = (%d, %v), want (%d, nil)", seq, err, n+1)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}

			// A second reopen proves the rewritten header round-trips: all
			// n+1 records replay, none counted torn.
			l3 := openT(t, dir, Options{Sync: SyncNone})
			if got := collect(t, l3, 0); len(got) != n+1 {
				t.Fatalf("second reopen replayed %d records, want %d", len(got), n+1)
			}
			if st := l3.Stats(); st.TornBytesDropped != 0 {
				t.Fatalf("second reopen still drops torn bytes: %+v", st)
			}
		})
	}
}
