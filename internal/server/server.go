// Package server exposes a K-dash index over HTTP, the deployment shape
// the paper's motivating applications (recommenders, link prediction,
// image captioning) consume proximity queries in: build or load the index
// once, then serve exact top-k answers at microsecond latency. Both the
// monolithic core.Index and the partitioned shard.ShardedIndex plug in
// behind the same endpoints via the Engine interface.
package server

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"kdash/internal/core"
	"kdash/internal/topk"
)

// Engine is the query surface the server needs. *core.Index and
// *shard.ShardedIndex both satisfy it, so one server binary serves either
// index shape with unchanged endpoint contracts.
type Engine interface {
	N() int
	Restart() float64
	Search(q int, opt core.SearchOptions) ([]topk.Result, core.SearchStats, error)
	TopKPersonalized(seeds map[int]float64, k int) ([]topk.Result, core.SearchStats, error)
	Proximity(q, u int) (float64, error)
}

// Statser is implemented by engines that expose build-time observability
// (shard sizes, factor sparsity, ...) for /statz.
type Statser interface {
	Statz() map[string]interface{}
}

// Handler serves queries against one engine.
type Handler struct {
	engine Engine
	mux    *http.ServeMux
	start  time.Time

	// Cumulative counters, expvar-backed so they are atomic and cheap on
	// the hot path. They are per-handler (not globally published): tests
	// and multi-index processes may hold several handlers.
	qTopK      expvar.Int
	qPers      expvar.Int
	qProx      expvar.Int
	qErrors    expvar.Int
	visited    expvar.Int
	proxComps  expvar.Int
	terminated expvar.Int
}

// New wraps an engine in an http.Handler. The engine must not be modified
// afterwards (indexes are immutable after construction, so this is the
// natural usage).
func New(engine Engine) *Handler {
	h := &Handler{engine: engine, mux: http.NewServeMux(), start: time.Now()}
	h.mux.HandleFunc("/topk", h.topK)
	h.mux.HandleFunc("/personalized", h.personalized)
	h.mux.HandleFunc("/proximity", h.proximity)
	h.mux.HandleFunc("/healthz", h.health)
	h.mux.HandleFunc("/statz", h.statz)
	return h
}

// countQuery folds one query's outcome into the cumulative counters.
func (h *Handler) countQuery(counter *expvar.Int, stats core.SearchStats, err error) {
	counter.Add(1)
	if err != nil {
		h.qErrors.Add(1)
		return
	}
	h.visited.Add(int64(stats.Visited))
	h.proxComps.Add(int64(stats.ProximityComputations))
	if stats.Terminated {
		h.terminated.Add(1)
	}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// resultJSON is one ranked answer on the wire.
type resultJSON struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}

// statsJSON reports per-query work on the wire.
type statsJSON struct {
	Visited               int  `json:"visited"`
	ProximityComputations int  `json:"proximityComputations"`
	Terminated            bool `json:"terminated"`
}

// topKResponse is the /topk and /personalized payload.
type topKResponse struct {
	K       int          `json:"k"`
	Results []resultJSON `json:"results"`
	Stats   statsJSON    `json:"stats"`
}

// topK handles GET /topk?q=<node>&k=<count>[&exclude=1,2,3].
func (h *Handler) topK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q, err := intParam(r, "q")
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	k, err := intParam(r, "k")
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	opt := core.SearchOptions{K: k}
	if raw := r.URL.Query().Get("exclude"); raw != "" {
		opt.Exclude = map[int]bool{}
		for _, part := range splitComma(raw) {
			node, err := strconv.Atoi(part)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("bad exclude id %q", part))
				return
			}
			opt.Exclude[node] = true
		}
	}
	results, stats, err := h.engine.Search(q, opt)
	h.countQuery(&h.qTopK, stats, err)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeResults(w, k, results, stats)
}

// personalizedRequest is the POST /personalized payload.
type personalizedRequest struct {
	Seeds map[string]float64 `json:"seeds"` // node id (string) -> weight
	K     int                `json:"k"`
}

// personalized handles POST /personalized with a JSON body.
func (h *Handler) personalized(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req personalizedRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	seeds := make(map[int]float64, len(req.Seeds))
	for key, weight := range req.Seeds {
		node, err := strconv.Atoi(key)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad seed id %q", key))
			return
		}
		seeds[node] = weight
	}
	results, stats, err := h.engine.TopKPersonalized(seeds, req.K)
	h.countQuery(&h.qPers, stats, err)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeResults(w, req.K, results, stats)
}

// proximity handles GET /proximity?q=<node>&u=<node>.
func (h *Handler) proximity(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q, err := intParam(r, "q")
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	u, err := intParam(r, "u")
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	p, err := h.engine.Proximity(q, u)
	h.countQuery(&h.qProx, core.SearchStats{}, err)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, map[string]float64{"proximity": p})
}

// health handles GET /healthz.
func (h *Handler) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]interface{}{
		"status":  "ok",
		"nodes":   h.engine.N(),
		"restart": h.engine.Restart(),
	})
}

// statz handles GET /statz: cumulative query counters plus whatever
// build-time observability the engine exposes (per-shard sizes and cut
// statistics for a sharded index), so operators can watch shard balance
// and pruning effectiveness in production.
func (h *Handler) statz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	doc := map[string]interface{}{
		"uptimeSeconds": time.Since(h.start).Seconds(),
		"queries": map[string]int64{
			"topk":         h.qTopK.Value(),
			"personalized": h.qPers.Value(),
			"proximity":    h.qProx.Value(),
			"errors":       h.qErrors.Value(),
		},
		"work": map[string]int64{
			"visited":               h.visited.Value(),
			"proximityComputations": h.proxComps.Value(),
			"terminatedEarly":       h.terminated.Value(),
		},
	}
	if s, ok := h.engine.(Statser); ok {
		doc["index"] = s.Statz()
	}
	writeJSON(w, doc)
}

func writeResults(w http.ResponseWriter, k int, results []topk.Result, stats core.SearchStats) {
	resp := topKResponse{
		K:       k,
		Results: make([]resultJSON, len(results)),
		Stats: statsJSON{
			Visited:               stats.Visited,
			ProximityComputations: stats.ProximityComputations,
			Terminated:            stats.Terminated,
		},
	}
	for i, r := range results {
		resp.Results[i] = resultJSON{Node: r.Node, Score: r.Score}
	}
	writeJSON(w, resp)
}

func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad query parameter %q: %v", name, err)
	}
	return v, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing sensible left to do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
