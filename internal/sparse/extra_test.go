package sparse

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCSCAtMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		m := randomCOO(rng, rows, cols, rng.Intn(40)).ToCSC()
		d := m.Dense()
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if m.At(r, c) != d[r][c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCSCTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomCOO(rng, 8, 11, 30).ToCSC()
	back := m.Transpose().Transpose()
	if !reflect.DeepEqual(m.Dense(), back.Dense()) {
		t.Error("CSC transpose is not an involution")
	}
}

func TestMulVecPanicsOnShape(t *testing.T) {
	m := NewCOO(3, 4).ToCSR()
	for name, fn := range map[string]func(){
		"csr": func() { m.MulVec(make([]float64, 3)) },
		"csc": func() { m.ToCSC().MulVec(make([]float64, 3)) },
		"to":  func() { m.ToCSC().MulVecTo(make([]float64, 2), make([]float64, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected shape panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPermuteSymRejectsRectangular(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rectangular PermuteSym")
		}
	}()
	NewCOO(2, 3).ToCSC().PermuteSym([]int{0, 1})
}

func TestNegativeDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	NewCOO(-1, 2)
}

func TestEmptyMatrixOps(t *testing.T) {
	m := NewCOO(0, 0).ToCSC()
	if m.NNZ() != 0 || m.Max() != 0 {
		t.Errorf("empty matrix nnz=%d max=%v", m.NNZ(), m.Max())
	}
	if y := m.MulVec(nil); len(y) != 0 {
		t.Errorf("empty MulVec = %v", y)
	}
	if cm := m.ColMax(); len(cm) != 0 {
		t.Errorf("empty ColMax = %v", cm)
	}
}
