// Package linalg provides the dense linear algebra the NB_LIN / B_LIN
// baselines need: row-major dense matrices, matrix products, Gauss–Jordan
// inversion, Gram–Schmidt orthonormalisation, a cyclic Jacobi symmetric
// eigensolver, and a randomised truncated SVD for sparse matrices.
package linalg

import (
	"fmt"
	"math"
	"math/rand"

	"kdash/internal/sparse"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense allocates a zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative shape %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose.
func (m *Dense) T() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns a * b.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns a * x for a dense vector x.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: MulVec shape mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		s := 0.0
		for j, v := range r {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Inverse computes the inverse by Gauss–Jordan elimination with partial
// pivoting. Returns an error if the matrix is numerically singular.
func Inverse(a *Dense) (*Dense, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: cannot invert %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	work := a.Clone()
	inv := NewDense(n, n)
	for i := 0; i < n; i++ {
		inv.Set(i, i, 1)
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(work.At(r, col)) > math.Abs(work.At(piv, col)) {
				piv = r
			}
		}
		pval := work.At(piv, col)
		if math.Abs(pval) < 1e-300 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		if piv != col {
			swapRows(work, piv, col)
			swapRows(inv, piv, col)
		}
		d := 1 / work.At(col, col)
		scaleRow(work, col, d)
		scaleRow(inv, col, d)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			axpyRow(work, r, col, -f)
			axpyRow(inv, r, col, -f)
		}
	}
	return inv, nil
}

func swapRows(m *Dense, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for j := range ra {
		ra[j], rb[j] = rb[j], ra[j]
	}
}

func scaleRow(m *Dense, r int, s float64) {
	row := m.Row(r)
	for j := range row {
		row[j] *= s
	}
}

// axpyRow adds f * row[src] to row[dst].
func axpyRow(m *Dense, dst, src int, f float64) {
	rd, rs := m.Row(dst), m.Row(src)
	for j := range rd {
		rd[j] += f * rs[j]
	}
}

// Orthonormalize replaces the columns of m with an orthonormal basis of
// their span using modified Gram–Schmidt. Columns that become numerically
// zero are re-randomised against the given rng and re-orthogonalised, so
// the result always has full column rank.
func Orthonormalize(m *Dense, rng *rand.Rand) {
	for j := 0; j < m.Cols; j++ {
		for attempt := 0; ; attempt++ {
			for k := 0; k < j; k++ {
				dot := 0.0
				for i := 0; i < m.Rows; i++ {
					dot += m.At(i, j) * m.At(i, k)
				}
				for i := 0; i < m.Rows; i++ {
					m.Set(i, j, m.At(i, j)-dot*m.At(i, k))
				}
			}
			norm := 0.0
			for i := 0; i < m.Rows; i++ {
				norm += m.At(i, j) * m.At(i, j)
			}
			norm = math.Sqrt(norm)
			if norm > 1e-12 {
				for i := 0; i < m.Rows; i++ {
					m.Set(i, j, m.At(i, j)/norm)
				}
				break
			}
			if attempt > 4 {
				// Degenerate subspace: give up and zero the column.
				for i := 0; i < m.Rows; i++ {
					m.Set(i, j, 0)
				}
				break
			}
			for i := 0; i < m.Rows; i++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
	}
}

// JacobiEigen computes the eigendecomposition of a symmetric matrix using
// cyclic Jacobi rotations: a = V diag(vals) V^T. Eigenvalues are returned
// in descending order with matching eigenvector columns.
func JacobiEigen(a *Dense) (vals []float64, vecs *Dense) {
	if a.Rows != a.Cols {
		panic("linalg: JacobiEigen needs a square matrix")
	}
	n := a.Rows
	w := a.Clone()
	v := NewDense(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-24 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				cos := 1 / math.Sqrt(t*t+1)
				sin := t * cos
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, cos*wkp-sin*wkq)
					w.Set(k, q, sin*wkp+cos*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, cos*wpk-sin*wqk)
					w.Set(q, k, sin*wpk+cos*wqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, cos*vkp-sin*vkq)
					v.Set(k, q, sin*vkp+cos*vkq)
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort descending, permuting eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if vals[idx[j]] > vals[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	outVals := make([]float64, n)
	outVecs := NewDense(n, n)
	for newCol, oldCol := range idx {
		outVals[newCol] = vals[oldCol]
		for i := 0; i < n; i++ {
			outVecs.Set(i, newCol, v.At(i, oldCol))
		}
	}
	return outVals, outVecs
}

// SVD is a truncated singular value decomposition a ≈ U diag(S) Vt.
type SVD struct {
	U  *Dense    // rows x rank
	S  []float64 // rank singular values, descending
	Vt *Dense    // rank x cols
}

// TruncatedSVD computes a rank-r SVD of the sparse matrix a using
// randomised subspace iteration (Halko et al.): sample Y = (A A^T)^p A Ω,
// orthonormalise, project, and solve the small eigenproblem of B B^T.
// The seed makes the decomposition deterministic. rank is clamped to
// min(rows, cols).
func TruncatedSVD(a *sparse.CSC, rank, powerIters int, seed int64) *SVD {
	rows, cols := a.Rows, a.Cols
	if rank > rows {
		rank = rows
	}
	if rank > cols {
		rank = cols
	}
	if rank <= 0 {
		panic("linalg: TruncatedSVD rank must be positive")
	}
	oversample := 8
	k := rank + oversample
	if k > rows {
		k = rows
	}
	if k > cols {
		k = cols
	}
	rng := rand.New(rand.NewSource(seed))
	// Omega: cols x k Gaussian.
	omega := NewDense(cols, k)
	for i := range omega.Data {
		omega.Data[i] = rng.NormFloat64()
	}
	y := mulSparseDense(a, omega) // rows x k
	Orthonormalize(y, rng)
	for it := 0; it < powerIters; it++ {
		z := mulSparseTDense(a, y) // cols x k
		Orthonormalize(z, rng)
		y = mulSparseDense(a, z)
		Orthonormalize(y, rng)
	}
	// B = Q^T A  (k x cols). Computed as (A^T Q)^T.
	bt := mulSparseTDense(a, y) // cols x k
	b := bt.T()                 // k x cols
	// Small symmetric eigenproblem of B B^T (k x k).
	bbt := Mul(b, bt)
	vals, w := JacobiEigen(bbt)
	// Singular values and factors, truncated to rank.
	s := make([]float64, rank)
	for i := 0; i < rank; i++ {
		if vals[i] > 0 {
			s[i] = math.Sqrt(vals[i])
		}
	}
	// U = Q W[:, :rank]  (rows x rank).
	wTrunc := NewDense(w.Rows, rank)
	for i := 0; i < w.Rows; i++ {
		for j := 0; j < rank; j++ {
			wTrunc.Set(i, j, w.At(i, j))
		}
	}
	u := Mul(y, wTrunc)
	// Vt = diag(1/s) W^T B  (rank x cols).
	vt := NewDense(rank, cols)
	wtb := Mul(wTrunc.T(), b)
	for i := 0; i < rank; i++ {
		inv := 0.0
		if s[i] > 1e-12 {
			inv = 1 / s[i]
		}
		for j := 0; j < cols; j++ {
			vt.Set(i, j, inv*wtb.At(i, j))
		}
	}
	return &SVD{U: u, S: s, Vt: vt}
}

// Reconstruct returns U diag(S) Vt as a dense matrix (tests only).
func (s *SVD) Reconstruct() *Dense {
	rank := len(s.S)
	us := s.U.Clone()
	for i := 0; i < us.Rows; i++ {
		for j := 0; j < rank; j++ {
			us.Set(i, j, us.At(i, j)*s.S[j])
		}
	}
	return Mul(us, s.Vt)
}

// mulSparseDense returns a * d where a is sparse (rows x cols) and d is
// dense (cols x k).
func mulSparseDense(a *sparse.CSC, d *Dense) *Dense {
	if a.Cols != d.Rows {
		panic("linalg: mulSparseDense shape mismatch")
	}
	out := NewDense(a.Rows, d.Cols)
	for c := 0; c < a.Cols; c++ {
		dr := d.Row(c)
		for i := a.ColPtr[c]; i < a.ColPtr[c+1]; i++ {
			r := a.RowIdx[i]
			v := a.Val[i]
			or := out.Row(r)
			for j, dv := range dr {
				or[j] += v * dv
			}
		}
	}
	return out
}

// mulSparseTDense returns a^T * d where a is sparse (rows x cols) and d
// is dense (rows x k); the result is cols x k.
func mulSparseTDense(a *sparse.CSC, d *Dense) *Dense {
	if a.Rows != d.Rows {
		panic("linalg: mulSparseTDense shape mismatch")
	}
	out := NewDense(a.Cols, d.Cols)
	for c := 0; c < a.Cols; c++ {
		or := out.Row(c)
		for i := a.ColPtr[c]; i < a.ColPtr[c+1]; i++ {
			r := a.RowIdx[i]
			v := a.Val[i]
			dr := d.Row(r)
			for j, dv := range dr {
				or[j] += v * dv
			}
		}
	}
	return out
}
