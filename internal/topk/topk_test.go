package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicTopK(t *testing.T) {
	h := New(3)
	for node, s := range []float64{0.1, 0.9, 0.5, 0.7, 0.3} {
		h.Push(node, s)
	}
	rs := h.Results()
	if len(rs) != 3 {
		t.Fatalf("len = %d", len(rs))
	}
	wantNodes := []int{1, 3, 2}
	for i, r := range rs {
		if r.Node != wantNodes[i] {
			t.Errorf("rank %d = node %d, want %d", i, r.Node, wantNodes[i])
		}
	}
}

func TestThreshold(t *testing.T) {
	h := New(2)
	if h.Threshold() != 0 {
		t.Errorf("empty threshold = %v", h.Threshold())
	}
	h.Push(0, 0.5)
	if h.Threshold() != 0 {
		t.Errorf("partial threshold = %v, want 0", h.Threshold())
	}
	h.Push(1, 0.8)
	if h.Threshold() != 0.5 {
		t.Errorf("threshold = %v, want 0.5", h.Threshold())
	}
	h.Push(2, 0.9)
	if h.Threshold() != 0.8 {
		t.Errorf("threshold = %v, want 0.8", h.Threshold())
	}
}

func TestPushRejectsBelowThreshold(t *testing.T) {
	h := New(1)
	h.Push(0, 1.0)
	if h.Push(1, 0.5) {
		t.Error("push below threshold should report no change")
	}
	if got := h.Results()[0].Node; got != 0 {
		t.Errorf("winner = %d", got)
	}
}

func TestTieBreakDeterminism(t *testing.T) {
	h := New(2)
	h.Push(5, 0.5)
	h.Push(3, 0.5)
	h.Push(1, 0.5)
	rs := h.Results()
	if rs[0].Node != 1 || rs[1].Node != 3 {
		t.Errorf("ties should keep lowest node ids: %v", rs)
	}
}

func TestAgainstFullSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		k := 1 + rng.Intn(10)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.Float64()
		}
		got := FromVector(scores, k)
		type pair struct {
			node  int
			score float64
		}
		all := make([]pair, n)
		for i, s := range scores {
			all[i] = pair{i, s}
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].score != all[j].score {
				return all[i].score > all[j].score
			}
			return all[i].node < all[j].node
		})
		want := all
		if k < n {
			want = all[:k]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Node != want[i].node || got[i].Score != want[i].score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKLargerThanInput(t *testing.T) {
	rs := FromVector([]float64{0.2, 0.1}, 5)
	if len(rs) != 2 {
		t.Fatalf("len = %d, want 2", len(rs))
	}
	if rs[0].Node != 0 || rs[1].Node != 1 {
		t.Errorf("results = %v", rs)
	}
}

func TestNewPanicsOnZeroK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}
