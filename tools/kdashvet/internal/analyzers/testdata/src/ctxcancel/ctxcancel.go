// Golden tests for the ctxcancel analyzer: solve loops in //kdash:ctxloop
// functions must consult a context between iterations.
package ctxcancel

import "context"

type shard struct{ id int }

func (s *shard) solve(seed []float64) float64 { return float64(s.id) }

func (s *shard) solveCtx(ctx context.Context, seed []float64) float64 { return float64(s.id) }

//kdash:ctxloop
func uncancellable(shards []*shard, seed []float64) float64 {
	var total float64
	for _, s := range shards { // want `solve loop in //kdash:ctxloop function uncancellable never consults a context`
		total += s.solve(seed)
	}
	return total
}

//kdash:ctxloop
func errChecked(ctx context.Context, shards []*shard, seed []float64) (float64, error) {
	var total float64
	for _, s := range shards {
		if ctx != nil { // ok: nil-guarded Err check consults the context
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		total += s.solve(seed)
	}
	return total, nil
}

//kdash:ctxloop
func delegated(ctx context.Context, shards []*shard, seed []float64) float64 {
	var total float64
	for _, s := range shards {
		total += s.solveCtx(ctx, seed) // ok: context passed into the per-iteration call
	}
	return total
}

//kdash:ctxloop
func scanOnly(xs []float64) float64 {
	var m float64
	for _, x := range xs { // ok: no solve work in the body
		if x > m {
			m = x
		}
	}
	return m
}

func unannotated(shards []*shard, seed []float64) float64 {
	var total float64
	for _, s := range shards { // ok: no //kdash:ctxloop directive
		total += s.solve(seed)
	}
	return total
}

//kdash:ctxloop
func suppressedBatch(shards []*shard, seed []float64) float64 {
	var total float64
	//kdash:allow(ctxcancel) offline batch tool; cancellation handled by process signal
	for _, s := range shards {
		total += s.solve(seed)
	}
	return total
}
