// Golden tests for the poolrelease analyzer: pooled values must reach a
// release on every path out of the acquiring function.
package poolrelease

import "sync"

type state struct{ buf []float64 }

var pool = sync.Pool{New: func() any { return new(state) }}

//kdash:pooled
func getState() *state {
	if st, ok := pool.Get().(*state); ok {
		return st
	}
	return new(state)
}

//kdash:release
func putState(st *state) {
	st.buf = st.buf[:0]
	pool.Put(st)
}

func touch(buf []float64) int { return len(buf) }

func releasedOnHappyPath() int {
	st := getState()
	n := touch(st.buf)
	putState(st)
	return n
}

func leakOnEarlyReturn(cond bool) {
	st := getState()
	if cond {
		return // want `return without releasing st`
	}
	putState(st)
}

func leakAtEnd() int {
	st := getState()
	return touch(st.buf) // want `return without releasing st`
}

func doubleRelease() {
	st := getState()
	putState(st)
	putState(st) // want `released twice`
}

func useAfterRelease() int {
	st := getState()
	putState(st)
	return touch(st.buf) // want `used after release`
}

func deferredRelease(cond bool) int {
	st := getState()
	defer putState(st)
	if cond {
		return 0
	}
	return touch(st.buf)
}

func loopLeak(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		st := getState() // want `not released before the iteration ends`
		total += touch(st.buf)
	}
	return total
}

func loopReleased(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		st := getState()
		total += touch(st.buf)
		putState(st)
	}
	return total
}

func discardResult() {
	getState() // want `discarded`
}

func reassignWhileLive() {
	st := getState()
	st = getState() // want `reassigned while the previous pooled value`
	putState(st)
}

func directPool(cond bool) {
	st := pool.Get().(*state)
	if cond {
		return // want `return without releasing st`
	}
	pool.Put(st)
}

func ownershipReturned() *state {
	st := getState()
	return st // ok: ownership transfers to the caller
}

func suppressedLeak(cond bool) {
	st := getState()
	if cond {
		return //kdash:allow(poolrelease) benchmark teardown drains the pool explicitly
	}
	putState(st)
}
