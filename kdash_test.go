package kdash

import (
	"math"
	"strings"
	"testing"

	"kdash/internal/gen"
)

func ringGraph(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		if err := b.AddEdge(i, (i+1)%n, 1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestPublicQuickstartFlow(t *testing.T) {
	g := ringGraph(t, 10)
	ix, err := BuildIndex(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rs, stats, err := ix.TopK(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 || rs[0].Node != 0 {
		t.Fatalf("results = %v", rs)
	}
	if stats.Visited == 0 {
		t.Error("stats not populated")
	}
	want, err := IterativeTopK(g, 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if rs[i].Node != want[i].Node || math.Abs(rs[i].Score-want[i].Score) > 1e-9 {
			t.Errorf("rank %d: got %v want %v", i, rs[i], want[i])
		}
	}
}

func TestZeroOptionsUsesPaperDefaults(t *testing.T) {
	g := gen.BarabasiAlbert(60, 2, 1)
	ix, err := BuildIndex(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Restart() != DefaultRestart {
		t.Errorf("restart = %v, want %v", ix.Restart(), DefaultRestart)
	}
}

func TestLoadAndQuery(t *testing.T) {
	edgeList := `# tiny triangle with a tail
0 1
1 2
2 0
2 3 0.5
`
	g, err := Load(strings.NewReader(edgeList))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	ix, err := BuildIndex(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rs, _, err := ix.TopK(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Node != 2 {
		t.Errorf("query node should rank first: %v", rs)
	}
}

func TestIterativeProximitiesSumsToAtMostOne(t *testing.T) {
	g := gen.ErdosRenyi(50, 200, 2)
	p, err := IterativeProximities(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if sum > 1+1e-9 {
		t.Errorf("proximity mass %v", sum)
	}
}

func TestSearchOptionsExposed(t *testing.T) {
	g := gen.PlantedPartition(100, 4, 0.2, 0.01, 3)
	ix, err := BuildIndex(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, sa, err := ix.Search(5, SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := ix.Search(5, SearchOptions{K: 5, DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if sa.ProximityComputations >= sb.ProximityComputations {
		t.Errorf("pruning should reduce work: %d vs %d", sa.ProximityComputations, sb.ProximityComputations)
	}
	if len(a) != len(b) {
		t.Errorf("answers differ in size: %v vs %v", a, b)
	}
	for i := range a {
		if math.Abs(a[i].Score-b[i].Score) > 1e-10 {
			t.Errorf("rank %d scores differ: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBuildStatsExposed(t *testing.T) {
	g := gen.BarabasiAlbert(80, 2, 4)
	ix, err := BuildIndex(g, Options{Reorder: ReorderHybrid})
	if err != nil {
		t.Fatal(err)
	}
	var st BuildStats = ix.Stats()
	if st.NNZInverse == 0 || st.Edges != g.M() {
		t.Errorf("stats = %+v", st)
	}
}

func TestDynamicUpdateFacade(t *testing.T) {
	g := gen.PlantedPartition(90, 3, 0.2, 0.02, 11)
	sx, err := BuildShardedIndex(g, ShardOptions{Shards: 3, Reorder: ReorderHybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := g.NewDelta()
	id := d.AddNode()
	if err := d.AddEdge(id, 7, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(7, id, 1); err != nil {
		t.Fatal(err)
	}
	sx2, us, err := sx.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	var _ UpdateStats = us
	if sx2.N() != 91 || sx2.Epoch() != 1 || us.ShardsRebuilt == 0 {
		t.Fatalf("n=%d epoch=%d stats=%+v", sx2.N(), sx2.Epoch(), us)
	}
	// The updated index agrees with the iterative oracle on the new graph.
	want, err := IterativeTopK(sx2.Graph(), id, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sx2.TopK(id, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("rank %d: %v vs oracle %v", i, got[i], want[i])
		}
	}
	// The old epoch still serves the old graph.
	if sx.N() != 90 {
		t.Fatalf("old epoch mutated: n=%d", sx.N())
	}
}
