//go:build !linux

package procmem

// resident has no portable source off Linux; 0 signals "unknown" and
// consumers fall back to heap metrics.
func resident() int64 { return 0 }
