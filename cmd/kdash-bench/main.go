// Command kdash-bench regenerates the paper's evaluation: every figure
// (2-7, 9) and the Table 2 case study, plus the restart-probability sweep
// and drop-tolerance ablation extensions.
//
// Usage:
//
//	kdash-bench -exp all            # everything (minutes)
//	kdash-bench -exp fig2           # one experiment
//	kdash-bench -exp fig5 -queries 5
//	kdash-bench -exp shards -shards 1,4,8 -shard-nodes 50000
//	kdash-bench -exp batch -batches 1,8,64 -shard-nodes 50000
//	kdash-bench -exp updates -shard-nodes 50000   # update latency vs rebuild
//	kdash-bench -exp kernels                      # solve-kernel throughput (scalar vs SIMD vs float32)
//	kdash-bench -exp distributed                  # coordinator/worker loopback serving vs single process
//	kdash-bench -exp shards -json                 # also write BENCH_shards.json
//	kdash-bench -exp fig2 -cpuprofile cpu.out     # pprof the run
//
// Output is printed as plain tables; EXPERIMENTS.md records a reference
// run next to the paper's reported trends. With -json, each experiment
// additionally writes machine-readable rows to BENCH_<exp>.json so the
// perf trajectory can be tracked across commits (CI uploads these as
// artifacts).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"kdash/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: fig2|fig3|fig4|fig5|fig6|fig7|fig9|table2|csweep|ablation|shards|batch|updates|coldstart|serve|kernels|distributed|all")
		queries    = flag.Int("queries", 10, "query nodes averaged per measurement")
		seed       = flag.Int64("seed", 1, "workload seed")
		shards     = flag.String("shards", "1,2,4,8", "shard counts for -exp shards")
		shardNodes = flag.Int("shard-nodes", 0, "graph size for -exp shards/batch (0 = default 50000)")
		batches    = flag.String("batches", "1,8,64", "batch sizes for -exp batch")
		serveDur   = flag.Duration("serve-duration", 0, "per-phase wall clock for -exp serve (0 = default 4s)")
		serveWk    = flag.Int("serve-workers", 0, "client concurrency for -exp serve (0 = default 8)")
		jsonOut    = flag.Bool("json", false, "also write each experiment's rows to BENCH_<exp>.json")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (post-run) to this file")
	)
	flag.Parse()
	shardCounts, err := parseInts(*shards)
	check(err)
	batchSizes, err := parseInts(*batches)
	check(err)
	cfg := experiments.Config{
		Queries: *queries, Seed: *seed, ShardCounts: shardCounts, ShardGraphN: *shardNodes,
		BatchSizes: batchSizes, ServeDuration: *serveDur, ServeWorkers: *serveWk,
	}
	want := strings.Split(*exp, ",")
	run := func(name string) bool {
		for _, w := range want {
			if w == "all" || w == name {
				return true
			}
		}
		return false
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		check(err)
		check(pprof.StartCPUProfile(f))
		// Every exit path (check -> os.Exit, unknown -exp, normal return)
		// runs through stopProfile, so the profile is always flushed and
		// readable — a defer would be skipped by os.Exit.
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
			stopProfile = func() {}
		}
		defer stopProfile()
	}
	// emit writes one experiment's machine-readable rows when -json is on.
	// The config block makes every file self-describing, so a committed
	// reference run clobbered by a smaller local/CI run is visible at a
	// glance (and in review). It records the *resolved* configuration —
	// the values the experiment actually ran with after defaulting — not
	// the raw flags, so a default run no longer serialises the zero
	// sentinels ("shardNodes": 0, "serveWorkers": 0).
	emit := func(name string, rows interface{}) {
		if !*jsonOut {
			return
		}
		rcfg := cfg.Resolved()
		path := fmt.Sprintf("BENCH_%s.json", name)
		doc := map[string]interface{}{
			"experiment": name,
			"config": map[string]interface{}{
				"queries":       rcfg.Queries,
				"seed":          rcfg.Seed,
				"shards":        rcfg.ShardCounts,
				"shardNodes":    rcfg.ShardGraphN,
				"batches":       rcfg.BatchSizes,
				"serveDuration": rcfg.ServeDuration.String(),
				"serveWorkers":  rcfg.ServeWorkers,
			},
			"rows": rows,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		check(err)
		check(os.WriteFile(path, append(data, '\n'), 0o644))
		fmt.Printf("wrote %s\n", path)
	}
	any := false
	// Figures 3/4 and 5/6 share a computation; emit both tables from one
	// pass when either is requested.
	if run("fig2") {
		any = true
		section("Figure 2 — top-k search efficiency (wall clock per query)")
		rows, err := experiments.Figure2(cfg)
		check(err)
		experiments.WriteTimingRows(os.Stdout, rows)
		emit("fig2", rows)
	}
	if run("fig3") || run("fig4") {
		any = true
		section("Figures 3 & 4 — precision and query time vs target rank / hub count (Dictionary)")
		rows, err := experiments.Figure3and4(cfg)
		check(err)
		experiments.WriteSweepRows(os.Stdout, rows)
		emit("fig3and4", rows)
	}
	if run("fig5") || run("fig6") {
		any = true
		section("Figures 5 & 6 — inverse-factor sparsity and precompute time per reordering")
		rows, err := experiments.Figure5and6(cfg)
		check(err)
		experiments.WriteReorderRows(os.Stdout, rows)
		emit("fig5and6", rows)
	}
	if run("fig7") {
		any = true
		section("Figure 7 — effect of tree-estimation pruning")
		rows, err := experiments.Figure7(cfg)
		check(err)
		experiments.WritePruningRows(os.Stdout, rows)
		emit("fig7", rows)
	}
	if run("fig9") {
		any = true
		section("Figure 9 — root-node selection (mean proximity computations)")
		rows, err := experiments.Figure9(cfg)
		check(err)
		experiments.WriteRootRows(os.Stdout, rows)
		emit("fig9", rows)
	}
	if run("table2") {
		any = true
		section("Table 2 — case study: top-5 terms (Dictionary)")
		rows, err := experiments.Table2(cfg)
		check(err)
		experiments.WriteCaseStudyRows(os.Stdout, rows)
		emit("table2", rows)
	}
	if run("csweep") {
		any = true
		section("Extension — restart probability sweep (exactness & query time)")
		rows, err := experiments.CSweep(cfg)
		check(err)
		experiments.WriteCSweepRows(os.Stdout, rows)
		emit("csweep", rows)
	}
	if run("ablation") {
		any = true
		section("Extension — drop-tolerance ablation (sparsity vs exactness)")
		rows, err := experiments.DropTolAblation(cfg)
		check(err)
		experiments.WriteAblationRows(os.Stdout, rows)
		emit("ablation", rows)
	}
	if run("shards") {
		any = true
		section("Extension — sharded index: partition-parallel build scaling & cross-shard exactness")
		rows, err := experiments.ShardScale(cfg)
		check(err)
		experiments.WriteShardRows(os.Stdout, rows)
		emit("shards", rows)
	}
	if run("batch") {
		any = true
		section("Extension — batched execution: shared block push vs sequential queries")
		rows, err := experiments.BatchScale(cfg)
		check(err)
		experiments.WriteBatchRows(os.Stdout, rows)
		emit("batch", rows)
	}
	if run("updates") {
		any = true
		section("Extension — dynamic updates: incremental shard refactorization vs full rebuild")
		rows, err := experiments.UpdateScale(cfg)
		check(err)
		experiments.WriteUpdateRows(os.Stdout, rows)
		emit("updates", rows)
	}
	if run("coldstart") {
		any = true
		section("Extension — cold start: open-to-first-query per load mode (v2 parse vs v3 copy vs v3 mmap)")
		rows, err := experiments.ColdStart(cfg)
		check(err)
		experiments.WriteColdStartRows(os.Stdout, rows)
		emit("coldstart", rows)
	}
	if run("serve") {
		any = true
		section("Extension — serve load: closed/open-loop mixed traffic against the HTTP server")
		rows, err := experiments.ServeLoad(cfg)
		check(err)
		experiments.WriteServeRows(os.Stdout, rows)
		emit("serve", rows)
	}
	if run("kernels") {
		any = true
		section("Extension — solve kernels: scalar vs dispatched (SIMD) vs float32 strip throughput")
		rows, err := experiments.Kernels(cfg)
		check(err)
		experiments.WriteKernelRows(os.Stdout, rows)
		emit("kernels", rows)
	}
	if run("distributed") {
		any = true
		section("Extension — distributed serving: loopback coordinator/worker clusters vs single process")
		rows, err := experiments.Distributed(cfg)
		check(err)
		experiments.WriteDistributedRows(os.Stdout, rows)
		emit("distributed", rows)
	}
	if !any {
		fmt.Fprintf(os.Stderr, "kdash-bench: unknown experiment %q\n", *exp)
		flag.Usage()
		stopProfile()
		os.Exit(2)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		check(err)
		runtime.GC() // settle live heap before the snapshot
		check(pprof.WriteHeapProfile(f))
		check(f.Close())
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func section(title string) {
	fmt.Printf("\n== %s ==\n", title)
}

// stopProfile flushes an in-progress CPU profile; main swaps in the real
// implementation when -cpuprofile is set.
var stopProfile = func() {}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kdash-bench:", err)
		stopProfile()
		os.Exit(1)
	}
}
