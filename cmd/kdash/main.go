// Command kdash builds a K-dash index over an edge-list graph and answers
// exact top-k RWR queries from the command line.
//
// Usage:
//
//	kdash -graph edges.tsv -q 42 -k 10 [-c 0.95] [-reorder hybrid] [-verify]
//	kdash -graph edges.tsv -shards 8 -save-index idxdir -q 42
//	kdash -load-index idxdir -q 42
//
// The edge list has one "from to [weight]" triple per line; '#' and '%'
// start comments. With -shards N > 1 the graph is partitioned into N
// Louvain-balanced shards whose indexes build concurrently; the saved
// index is then a directory (per-shard files + manifest) instead of a
// single file, and -load-index auto-detects which form it is given. With
// -verify the answer is cross-checked against the iterative method.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kdash"
	"kdash/internal/reorder"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "path to the edge-list file (required)")
		query     = flag.Int("q", 0, "query node id")
		k         = flag.Int("k", 5, "number of answer nodes")
		c         = flag.Float64("c", kdash.DefaultRestart, "restart probability")
		method    = flag.String("reorder", "hybrid", "node reordering: degree|cluster|hybrid|random|natural")
		seed      = flag.Int64("seed", 1, "seed for Louvain / random ordering")
		shards    = flag.Int("shards", 1, "partition the index into N shards built in parallel")
		workers   = flag.Int("workers", 0, "worker-pool width for the build (0 = all CPUs)")
		verify    = flag.Bool("verify", false, "cross-check the answer against the iterative method")
		saveIdx   = flag.String("save-index", "", "write the built index to this path (a directory when -shards > 1)")
		loadIdx   = flag.String("load-index", "", "load a previously saved index (file or sharded directory)")
	)
	flag.Parse()
	if *graphPath == "" && *loadIdx == "" {
		fmt.Fprintln(os.Stderr, "kdash: -graph (or -load-index) is required")
		flag.Usage()
		os.Exit(2)
	}

	var g *kdash.Graph
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			fatal(err)
		}
		var errLoad error
		g, errLoad = kdash.Load(f)
		f.Close()
		if errLoad != nil {
			fatal(errLoad)
		}
		fmt.Printf("graph: %d nodes, %d edges\n", g.N(), g.M())
	}

	// Exactly one of ix / sx is set: the monolithic and sharded paths
	// share every step below through small branches.
	var ix *kdash.Index
	var sx *kdash.ShardedIndex
	switch {
	case *loadIdx != "" && kdash.IsShardedIndexDir(*loadIdx):
		start := time.Now()
		var err error
		sx, err = kdash.LoadShardedIndex(*loadIdx)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("index: loaded %d nodes / %d shards from %s in %v\n",
			sx.N(), sx.Shards(), *loadIdx, time.Since(start).Round(time.Millisecond))
	case *loadIdx != "":
		f, err := os.Open(*loadIdx)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		ix, err = kdash.LoadIndex(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("index: loaded %d nodes from %s in %v\n", ix.N(), *loadIdx, time.Since(start).Round(time.Millisecond))
	case *shards > 1:
		m, err := parseMethod(*method)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		sx, err = kdash.BuildShardedIndex(g, kdash.ShardOptions{
			Shards: *shards, Restart: *c, Reorder: m, Seed: *seed, Workers: *workers,
		})
		if err != nil {
			fatal(err)
		}
		st := sx.Stats()
		fmt.Printf("index: built %d shards in %v (partition %v, shard-cpu %v, cut edges %d = %.1f%% of weight, nnz(inverse)=%d)\n",
			sx.Shards(), time.Since(start).Round(time.Millisecond),
			st.PartitionTime.Round(time.Millisecond), st.ShardCPUTime.Round(time.Millisecond),
			st.CutEdges, 100*st.CutWeightFrac, st.NNZInverse)
	default:
		m, err := parseMethod(*method)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		ix, err = kdash.BuildIndex(g, kdash.Options{Restart: *c, Reorder: m, Seed: *seed, Workers: *workers})
		if err != nil {
			fatal(err)
		}
		st := ix.Stats()
		fmt.Printf("index: built in %v (reorder %v, nnz(inverse)=%d, %.2fx edges)\n",
			time.Since(start).Round(time.Millisecond), st.Method, st.NNZInverse, st.InverseRatio)
	}
	if *saveIdx != "" {
		if sx != nil {
			if err := sx.Save(*saveIdx); err != nil {
				fatal(err)
			}
			fmt.Printf("index: saved sharded manifest to %s/\n", *saveIdx)
		} else {
			f, err := os.Create(*saveIdx)
			if err != nil {
				fatal(err)
			}
			if err := ix.Save(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("index: saved to %s\n", *saveIdx)
		}
	}

	qStart := time.Now()
	var results []kdash.Result
	if sx != nil {
		rs, stats, err := sx.TopK(*query, *k)
		if err != nil {
			fatal(err)
		}
		results = rs
		fmt.Printf("query: node %d, K=%d -> %v (solved %d/%d shards in %d solves, pruned %d)\n",
			*query, *k, time.Since(qStart), stats.ShardsSolved, sx.Shards(), stats.Solves, stats.ShardsPruned)
	} else {
		rs, stats, err := ix.TopK(*query, *k)
		if err != nil {
			fatal(err)
		}
		results = rs
		fmt.Printf("query: node %d, K=%d -> %v (visited %d, computed %d proximities, terminated early: %t)\n",
			*query, *k, time.Since(qStart), stats.Visited, stats.ProximityComputations, stats.Terminated)
	}
	for i, r := range results {
		fmt.Printf("%3d. node %-8d proximity %.8f\n", i+1, r.Node, r.Score)
	}

	if *verify {
		if g == nil {
			fatal(fmt.Errorf("-verify needs -graph (the iterative oracle runs on the raw graph)"))
		}
		want, err := kdash.IterativeTopK(g, *query, *k, *c)
		if err != nil {
			fatal(err)
		}
		ok := len(want) == len(results)
		for i := range results {
			if !ok || results[i].Node != want[i].Node {
				ok = false
				break
			}
		}
		if ok {
			fmt.Println("verify: exact match with the iterative method")
		} else {
			fmt.Printf("verify: MISMATCH, iterative says %v\n", want)
			os.Exit(1)
		}
	}
}

func parseMethod(s string) (kdash.ReorderMethod, error) {
	return reorder.Parse(s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kdash:", err)
	os.Exit(1)
}
