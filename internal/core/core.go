// Package core implements K-dash, the paper's contribution: exact top-k
// search for Random Walk with Restart proximity.
//
// An Index holds the precomputed state of Section 4.2 — the node
// reordering, the sparse inverse triangular factors L^{-1} (by column) and
// U^{-1} (by row) of W = I - (1-c)A, and the Amax tables — and serves
// queries with the Section 4.3/4.4 search: a breadth-first tree from the
// query node, O(1) incremental upper-bound estimation (Definitions 1–2),
// and safe early termination (Lemmas 1–2, Theorem 2).
package core

import (
	"fmt"
	"sort"
	"time"

	"kdash/internal/graph"
	"kdash/internal/lu"
	"kdash/internal/reorder"
	"kdash/internal/rwr"
	"kdash/internal/sparse"
	"kdash/internal/topk"
)

// BuildOptions configures index construction.
type BuildOptions struct {
	// Restart is the restart probability c. Zero selects the paper's
	// default 0.95.
	Restart float64
	// Reorder selects the node ordering used to keep the inverse factors
	// sparse. The zero value is reorder.Degree; callers should normally
	// use reorder.Hybrid, the paper's best performer.
	Reorder reorder.Method
	// Seed feeds Louvain and the Random ordering.
	Seed int64
	// DropTol, when positive, discards tiny inverse-factor entries. This
	// breaks the exactness guarantee and exists only for the ablation
	// study; leave zero for exact search.
	DropTol float64
	// Workers bounds goroutines used for factor inversion (0 = all CPUs).
	Workers int
}

// BuildStats reports precomputation cost, the quantities behind the
// paper's Figures 5 and 6.
type BuildStats struct {
	Method        reorder.Method
	ReorderTime   time.Duration
	FactorizeTime time.Duration
	InvertTime    time.Duration
	TotalTime     time.Duration
	NNZFactors    int // nnz(L) + nnz(U)
	NNZInverse    int // nnz(L^-1) + nnz(U^-1), Figure 5's numerator
	Edges         int // m, Figure 5's denominator
	InverseRatio  float64
}

// Index is a prebuilt K-dash search structure. It is safe for concurrent
// queries: all fields are read-only after construction.
type Index struct {
	n    int
	c    float64
	perm []int // original -> internal
	inv  []int // internal -> original

	a    *sparse.CSC // reordered column-normalised adjacency
	linv *sparse.CSC // L^{-1}, by column
	uinv *sparse.CSR // U^{-1}, by row

	amax    float64   // max element of A
	amaxCol []float64 // Amax(u): max element of column u of A
	selfA   []float64 // A_uu, for the c' factor of Definition 1

	stats BuildStats
}

// BuildIndex precomputes a K-dash index for the graph.
func BuildIndex(g *graph.Graph, opt BuildOptions) (*Index, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("core: cannot index an empty graph")
	}
	c := opt.Restart
	if c == 0 {
		c = rwr.DefaultRestart
	}
	if c <= 0 || c >= 1 {
		return nil, fmt.Errorf("core: restart probability %v outside (0,1)", c)
	}
	start := time.Now()
	perm := reorder.Compute(g, opt.Reorder, opt.Seed)
	reorderTime := time.Since(start)

	a := g.ColumnNormalized().PermuteSym(perm)

	tFac := time.Now()
	fac, err := lu.Decompose(lu.BuildW(a, c))
	if err != nil {
		return nil, fmt.Errorf("core: factorizing W: %w", err)
	}
	facTime := time.Since(tFac)

	tInv := time.Now()
	inverse := fac.Invert(lu.Options{DropTol: opt.DropTol, Workers: opt.Workers})
	invTime := time.Since(tInv)

	n := g.N()
	ix := &Index{
		n:       n,
		c:       c,
		perm:    perm,
		inv:     reorder.Invert(perm),
		a:       a,
		linv:    inverse.Linv,
		uinv:    inverse.Uinv,
		amax:    a.Max(),
		amaxCol: a.ColMax(),
		selfA:   make([]float64, n),
	}
	for u := 0; u < n; u++ {
		ix.selfA[u] = a.At(u, u)
	}
	ix.stats = BuildStats{
		Method:        opt.Reorder,
		ReorderTime:   reorderTime,
		FactorizeTime: facTime,
		InvertTime:    invTime,
		TotalTime:     time.Since(start),
		NNZFactors:    fac.NNZL() + fac.NNZU(),
		NNZInverse:    inverse.NNZ(),
		Edges:         g.M(),
	}
	if g.M() > 0 {
		ix.stats.InverseRatio = float64(ix.stats.NNZInverse) / float64(g.M())
	}
	return ix, nil
}

// N reports the number of indexed nodes.
func (ix *Index) N() int { return ix.n }

// Restart reports the restart probability c the index was built with.
func (ix *Index) Restart() float64 { return ix.c }

// Stats reports precomputation statistics.
func (ix *Index) Stats() BuildStats { return ix.stats }

// SearchStats reports per-query work, the quantities behind Figures 7
// and 9.
type SearchStats struct {
	Visited               int  // nodes whose estimate was evaluated
	ProximityComputations int  // exact proximities computed via the factors
	Terminated            bool // whether pruning stopped the search early
}

// SearchOptions configures a single query.
type SearchOptions struct {
	K int
	// DisablePruning computes the exact proximity of every reachable node
	// (the "Without pruning" series of Figure 7).
	DisablePruning bool
	// RandomRoot roots the visit order at an arbitrary node instead of
	// the query (the "Random" series of Figure 9). Estimates fall back to
	// a layer-free upper bound, so per-node skipping still never discards
	// an answer, but early termination is impossible.
	RandomRoot bool
	// RootSeed picks the random root deterministically.
	RootSeed int64
	// Exclude removes nodes (original ids) from the answer set without
	// affecting the proximity computation — the common "recommend items
	// the user has not already consumed" filter. Excluded nodes still
	// participate in the estimation (they may carry proximity mass); they
	// are only barred from the top-k heap.
	Exclude map[int]bool
}

// TopK returns the K nodes with the highest RWR proximity w.r.t. query
// node q, exactly (Theorem 2). Results use original node ids and are
// sorted by descending proximity. If fewer than K nodes are reachable
// from q, only the reachable ones are returned: every other node has
// proximity exactly zero.
func (ix *Index) TopK(q, k int) ([]topk.Result, SearchStats, error) {
	return ix.Search(q, SearchOptions{K: k})
}

// Search runs a query with full control over the search strategy.
func (ix *Index) Search(q int, opt SearchOptions) ([]topk.Result, SearchStats, error) {
	var stats SearchStats
	if q < 0 || q >= ix.n {
		return nil, stats, fmt.Errorf("core: query node %d outside [0,%d)", q, ix.n)
	}
	if opt.K <= 0 {
		return nil, stats, fmt.Errorf("core: K must be positive, got %d", opt.K)
	}
	qi := ix.perm[q] // internal id

	// L^{-1} e_q scattered into a dense workspace for O(1) lookups while
	// walking rows of U^{-1}.
	ws := make([]float64, ix.n)
	for i := ix.linv.ColPtr[qi]; i < ix.linv.ColPtr[qi+1]; i++ {
		ws[ix.linv.RowIdx[i]] = ix.linv.Val[i]
	}

	heap := topk.New(opt.K)
	excluded := ix.internalExclusions(opt.Exclude)

	if opt.RandomRoot {
		ix.searchRandomRoot(qi, heap, ws, opt, excluded, &stats)
	} else {
		ix.searchTree([]int{qi}, heap, ws, opt, excluded, &stats)
	}

	results := heap.Results()
	for i := range results {
		results[i].Node = ix.inv[results[i].Node]
	}
	return results, stats, nil
}

// internalExclusions converts an original-id exclusion set to internal
// ids; out-of-range entries are ignored (excluding a nonexistent node is
// harmless).
func (ix *Index) internalExclusions(exclude map[int]bool) map[int]bool {
	if len(exclude) == 0 {
		return nil
	}
	out := make(map[int]bool, len(exclude))
	for node, on := range exclude {
		if on && node >= 0 && node < ix.n {
			out[ix.perm[node]] = true
		}
	}
	return out
}

// TopKPersonalized generalises TopK to a restart *distribution*: the walk
// restarts into the given seed nodes with probability proportional to
// their weights. This is Personalized PageRank in the sense of the
// paper's footnote 6 (RWR restarts to one node; PPR to a start set). The
// same factor identity applies — p = c U^{-1} L^{-1} r with r the
// normalised seed vector — and the tree estimation stays a valid upper
// bound because a multi-source BFS preserves the layer property Lemmas
// 1–2 rely on (every in-neighbour of a layer-l node sits on layer >=
// l-1). Results are exact, as in the single-seed case.
func (ix *Index) TopKPersonalized(seeds map[int]float64, k int) ([]topk.Result, SearchStats, error) {
	var stats SearchStats
	if k <= 0 {
		return nil, stats, fmt.Errorf("core: K must be positive, got %d", k)
	}
	if len(seeds) == 0 {
		return nil, stats, fmt.Errorf("core: empty seed set")
	}
	total := 0.0
	for node, w := range seeds {
		if node < 0 || node >= ix.n {
			return nil, stats, fmt.Errorf("core: seed node %d outside [0,%d)", node, ix.n)
		}
		if w <= 0 {
			return nil, stats, fmt.Errorf("core: seed node %d has non-positive weight %v", node, w)
		}
		total += w
	}
	// Internal ids, sorted for deterministic visit order.
	internal := make([]int, 0, len(seeds))
	weight := make(map[int]float64, len(seeds))
	for node, w := range seeds {
		qi := ix.perm[node]
		internal = append(internal, qi)
		weight[qi] = w / total
	}
	sort.Ints(internal)
	// Accumulate L^{-1} r into the workspace.
	ws := make([]float64, ix.n)
	for _, qi := range internal {
		wq := weight[qi]
		for i := ix.linv.ColPtr[qi]; i < ix.linv.ColPtr[qi+1]; i++ {
			ws[ix.linv.RowIdx[i]] += wq * ix.linv.Val[i]
		}
	}
	heap := topk.New(k)
	ix.searchTree(internal, heap, ws, SearchOptions{K: k}, nil, &stats)
	results := heap.Results()
	for i := range results {
		results[i].Node = ix.inv[results[i].Node]
	}
	return results, stats, nil
}

// bfs runs breadth-first search over the reordered adjacency structure
// (out-edges of v are the rows of column v of A).
func (ix *Index) bfs(root int) (order []int, layer []int) {
	layer = make([]int, ix.n)
	for i := range layer {
		layer[i] = -1
	}
	order = make([]int, 0, ix.n)
	layer[root] = 0
	order = append(order, root)
	for head := 0; head < len(order); head++ {
		v := order[head]
		for i := ix.a.ColPtr[v]; i < ix.a.ColPtr[v+1]; i++ {
			u := ix.a.RowIdx[i]
			if layer[u] < 0 {
				layer[u] = layer[v] + 1
				order = append(order, u)
			}
		}
	}
	return order, layer
}

// proximity computes p_u = c * (U^{-1} row u) . (L^{-1} e_q) with the
// latter pre-scattered in ws.
func (ix *Index) proximity(u int, ws []float64) float64 {
	s := 0.0
	for i := ix.uinv.RowPtr[u]; i < ix.uinv.RowPtr[u+1]; i++ {
		s += ix.uinv.Val[i] * ws[ix.uinv.ColIdx[i]]
	}
	return ix.c * s
}

// cPrime is Definition 1's c' = (1-c) / (1 - A_uu + c*A_uu).
func (ix *Index) cPrime(u int) float64 {
	return (1 - ix.c) / (1 - ix.selfA[u] + ix.c*ix.selfA[u])
}

// searchTree implements Algorithm 4 with the incremental estimation of
// Definition 2, generalised to one or more roots (all on layer 0 of a
// multi-source BFS; roots must be sorted ascending). The breadth-first
// tree is expanded lazily — a node's out-edges are explored only when the
// node itself is visited — so an early-terminated search costs O(visited
// nodes + their edges), not O(n + m). The visit order is identical to a
// fully materialised BFS.
func (ix *Index) searchTree(roots []int, heap *topk.Heap, ws []float64, opt SearchOptions, excluded map[int]bool, stats *SearchStats) {
	layer := make([]int, ix.n) // -1 = undiscovered
	for i := range layer {
		layer[i] = -1
	}
	queue := make([]int, len(roots), 256)
	copy(queue, roots)
	for _, r := range roots {
		layer[r] = 0
	}

	// Estimation terms (Definition 2): t1 covers selected nodes one layer
	// above the current node, t2 selected nodes on the same layer, t3 the
	// unselected remainder bounded by Amax. With no nodes selected yet the
	// third term is (1 - 0) * Amax, which also reproduces the paper's
	// u' = q bootstrap case after the first visit.
	t1, t2, t3 := 0.0, 0.0, ix.amax
	prev := -1        // previously selected node
	prevLayer := -1   // its layer
	var prevP float64 // its exact proximity

	for head := 0; head < len(queue); head++ {
		u := queue[head]
		stats.Visited++
		// Fold the previously selected node into the estimation terms
		// (Definition 2). This happens for every visit so the terms always
		// reflect the full selected set Vs, including when the estimate
		// itself is bypassed for a root below.
		if prev >= 0 {
			if layer[u] == prevLayer {
				t2 += prevP * ix.amaxCol[prev]
			} else {
				t1 = t2 + prevP*ix.amaxCol[prev]
				t2 = 0
			}
			t3 -= prevP * ix.amax
			if t3 < 0 {
				t3 = 0 // guard against floating-point drift below zero
			}
		}
		var est float64
		if head < len(roots) {
			est = 1 // Definition 1: root nodes estimate to 1.
		} else {
			est = ix.cPrime(u) * (t1 + t2 + t3)
		}
		// Lemma 2: every unvisited node estimates no higher, so the whole
		// remaining search is safely discarded. The heap-full guard keeps
		// floating-point noise in a ~zero estimate from truncating the
		// candidate set before K nodes have been seen.
		if !opt.DisablePruning && heap.Len() == heap.K() && est < heap.Threshold() {
			stats.Terminated = true
			return
		}
		p := ix.proximity(u, ws)
		stats.ProximityComputations++
		if !excluded[u] {
			heap.Push(u, p)
		}
		prev, prevLayer, prevP = u, layer[u], p
		// Discover u's out-neighbours (lazy BFS expansion).
		for i := ix.a.ColPtr[u]; i < ix.a.ColPtr[u+1]; i++ {
			v := ix.a.RowIdx[i]
			if layer[v] < 0 {
				layer[v] = layer[u] + 1
				queue = append(queue, v)
			}
		}
	}
}

// searchRandomRoot visits nodes in BFS order from an arbitrary root (then
// any nodes unreachable from it), using the layer-free upper bound
//
//	p̄_u = c' * ( Σ_{v∈Vs} p_v Amax(v) + (1 - Σ_{v∈Vs} p_v) Amax )
//
// which is sound for any visit order (the first sum bounds contributions
// of selected in-neighbours, the second everything else). Early
// termination is impossible — only per-node skipping — which is exactly
// why Figure 9 shows the random root needing far more proximity
// computations.
func (ix *Index) searchRandomRoot(qi int, heap *topk.Heap, ws []float64, opt SearchOptions, excluded map[int]bool, stats *SearchStats) {
	root := int((opt.RootSeed%int64(ix.n) + int64(ix.n)) % int64(ix.n))
	order, layer := ix.bfs(root)
	// Append nodes unreachable from the random root so no potential
	// answer is missed.
	for u := 0; u < ix.n; u++ {
		if layer[u] < 0 {
			order = append(order, u)
		}
	}
	var sumPA float64 // Σ p_v * Amax(v) over selected nodes
	var sumP float64  // Σ p_v over selected nodes
	for _, u := range order {
		stats.Visited++
		var est float64
		if u == qi {
			est = 1
		} else {
			rem := 1 - sumP
			if rem < 0 {
				rem = 0
			}
			est = ix.cPrime(u) * (sumPA + rem*ix.amax)
		}
		if !opt.DisablePruning && heap.Len() == heap.K() && est < heap.Threshold() {
			continue // skip this node only; no global termination
		}
		p := ix.proximity(u, ws)
		stats.ProximityComputations++
		if !excluded[u] {
			heap.Push(u, p)
		}
		sumPA += p * ix.amaxCol[u]
		sumP += p
	}
}

// Solve computes y = W^{-1} r through the inverted factors, where
// W = I - (1-c)A is the matrix the index factorized. Input and output are
// dense vectors in original node-id order; zero entries of r cost nothing
// in the L^{-1} pass. Unlike the proximity methods, Solve does not apply
// the restart factor c: it is the raw linear-system primitive that
// internal/shard's cross-shard block push is built on (each shard solve
// consumes a residual right-hand side that already carries its scaling).
func (ix *Index) Solve(r []float64) ([]float64, error) {
	if len(r) != ix.n {
		return nil, fmt.Errorf("core: Solve rhs has %d entries, index has %d nodes", len(r), ix.n)
	}
	// ws = L^{-1} (P r), accumulated column by column over nonzero rhs
	// entries.
	ws := make([]float64, ix.n)
	for u, v := range r {
		if v == 0 {
			continue
		}
		qi := ix.perm[u]
		for i := ix.linv.ColPtr[qi]; i < ix.linv.ColPtr[qi+1]; i++ {
			ws[ix.linv.RowIdx[i]] += v * ix.linv.Val[i]
		}
	}
	// y = P^T (U^{-1} ws).
	out := make([]float64, ix.n)
	for u := 0; u < ix.n; u++ {
		s := 0.0
		for i := ix.uinv.RowPtr[u]; i < ix.uinv.RowPtr[u+1]; i++ {
			s += ix.uinv.Val[i] * ws[ix.uinv.ColIdx[i]]
		}
		out[ix.inv[u]] = s
	}
	return out, nil
}

// Statz reports observability fields for the server's /statz endpoint.
func (ix *Index) Statz() map[string]interface{} {
	return map[string]interface{}{
		"kind":         "monolithic",
		"nodes":        ix.n,
		"restart":      ix.c,
		"edges":        ix.stats.Edges,
		"nnzInverse":   ix.stats.NNZInverse,
		"inverseRatio": ix.stats.InverseRatio,
		"reorder":      ix.stats.Method.String(),
	}
}

// ProximityVector computes the full exact proximity vector for q through
// the factors (Equation (3)): p = c U^{-1} L^{-1} e_q. Results are in
// original node-id order.
func (ix *Index) ProximityVector(q int) ([]float64, error) {
	if q < 0 || q >= ix.n {
		return nil, fmt.Errorf("core: query node %d outside [0,%d)", q, ix.n)
	}
	qi := ix.perm[q]
	ws := make([]float64, ix.n)
	ix.linv.Col(qi).Scatter(ws)
	out := make([]float64, ix.n)
	for u := 0; u < ix.n; u++ {
		out[ix.inv[u]] = ix.proximity(u, ws)
	}
	return out, nil
}

// Proximity computes the single exact proximity of node u w.r.t. query q.
func (ix *Index) Proximity(q, u int) (float64, error) {
	if q < 0 || q >= ix.n || u < 0 || u >= ix.n {
		return 0, fmt.Errorf("core: node pair (%d,%d) outside [0,%d)", q, u, ix.n)
	}
	qi := ix.perm[q]
	ws := make([]float64, ix.n)
	ix.linv.Col(qi).Scatter(ws)
	return ix.proximity(ix.perm[u], ws), nil
}
