package lu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kdash/internal/gen"
	"kdash/internal/graph"
	"kdash/internal/rwr"
)

// TestPermutedSystemEquivalence verifies the identity K-dash relies on:
// factorizing the symmetrically permuted matrix P W P^T and solving with
// a permuted right-hand side yields the permuted solution of the original
// system. Exactness of the reordered index reduces to this.
func TestPermutedSystemEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		c := 0.9
		g := gen.ErdosRenyi(n, 4*n, seed)
		a := g.ColumnNormalized()
		perm := rng.Perm(n)

		// Reference: solve the unpermuted system.
		ref, err := rwr.DenseSolve(a, 0, c)
		if err != nil {
			return false
		}
		// Permuted: factorize P W P^T, solve with permuted e_0.
		ap := a.PermuteSym(perm)
		fac, err := Decompose(BuildW(ap, c))
		if err != nil {
			return false
		}
		b := make([]float64, n)
		b[perm[0]] = c
		got := fac.SolveDense(b)
		for old := 0; old < n; old++ {
			if math.Abs(got[perm[old]]-ref[old]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestFillInOrderingSensitivity documents the phenomenon the reordering
// study measures: an arrow-head matrix ordered hub-last factorizes with
// no fill, hub-first with full fill.
func TestFillInOrderingSensitivity(t *testing.T) {
	n := 30
	// Star graph: node 0 is the hub.
	star := func() *graph.Graph {
		b := graph.NewBuilder(n)
		for i := 1; i < n; i++ {
			if err := b.AddUndirected(0, i, 1); err != nil {
				t.Fatal(err)
			}
		}
		return b.Build()
	}
	build := func(hubLast bool) *Factors {
		a := star().ColumnNormalized()
		if hubLast {
			perm := make([]int, n)
			perm[0] = n - 1 // hub moves last
			for i := 1; i < n; i++ {
				perm[i] = i - 1
			}
			a = a.PermuteSym(perm)
		}
		fac, err := Decompose(BuildW(a, 0.95))
		if err != nil {
			t.Fatal(err)
		}
		return fac
	}
	hubFirst := build(false)
	hubLast := build(true)
	if hubLast.NNZL() > hubFirst.NNZL() || hubLast.NNZU() > hubFirst.NNZU() {
		t.Errorf("hub-last ordering should not have more fill: L %d vs %d, U %d vs %d",
			hubLast.NNZL(), hubFirst.NNZL(), hubLast.NNZU(), hubFirst.NNZU())
	}
	// Hub-last on a star is fill-free: factors have exactly the arrow
	// pattern (2 entries per leaf column + diagonal).
	if hubLast.NNZL() != 2*n-1 {
		t.Errorf("hub-last L nnz = %d, want %d (no fill)", hubLast.NNZL(), 2*n-1)
	}
}
