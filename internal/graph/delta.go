package graph

// Graph mutation. A Graph stays immutable; changes are described by a
// Delta — an ordered batch of edge additions, edge removals and node
// insertions relative to a base graph — and applied functionally:
// Apply returns a *new* Graph, leaving the base untouched. This is the
// contract the index update path is built on (core.Index.Rebuild,
// shard.ShardedIndex.Apply): in-flight readers keep the old snapshot,
// writers publish the new one, and nobody ever observes a half-applied
// batch.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrEdgeNotFound reports a RemoveEdge op whose edge does not exist at
// the point of the batch it executes in. Callers translating Apply
// failures into API responses can errors.Is against it to distinguish a
// client mistake from an internal failure.
var ErrEdgeNotFound = errors.New("edge not found")

type deltaOpKind uint8

const (
	opAddEdge deltaOpKind = iota
	opRemoveEdge
)

type deltaOp struct {
	kind     deltaOpKind
	from, to int
	w        float64
}

// Delta is an ordered batch of mutations against a base graph with a
// known node count. Ops are validated as they are recorded (ranges,
// positive weights) and again structurally at Apply time; a Delta built
// for one graph cannot be applied to a graph of a different size.
//
// Semantics are sequential: AddEdge adds weight to the (merged) edge,
// creating it if absent — the same summing rule Builder uses — and
// RemoveEdge deletes the merged edge entirely, whatever its
// accumulated weight. "RemoveEdge; AddEdge" is therefore a weight
// replacement, while "AddEdge; RemoveEdge" deletes the edge outright
// (including any weight it had before the batch).
type Delta struct {
	baseN    int
	addNodes int
	ops      []deltaOp
}

// NewDelta starts an empty batch against a graph with baseN nodes.
func NewDelta(baseN int) *Delta {
	if baseN < 0 {
		panic("graph: negative node count")
	}
	return &Delta{baseN: baseN}
}

// NewDelta starts an empty batch against this graph.
func (g *Graph) NewDelta() *Delta { return NewDelta(g.n) }

// BaseN reports the node count the batch was built against.
func (d *Delta) BaseN() int { return d.baseN }

// AddedNodes reports how many nodes the batch inserts.
func (d *Delta) AddedNodes() int { return d.addNodes }

// Len reports the number of edge ops recorded.
func (d *Delta) Len() int { return len(d.ops) }

// Empty reports whether the batch changes nothing.
func (d *Delta) Empty() bool { return d.addNodes == 0 && len(d.ops) == 0 }

// AddNode inserts a new node and returns its id: the first inserted
// node is baseN, the next baseN+1, and so on. Subsequent edge ops may
// reference inserted ids.
func (d *Delta) AddNode() int {
	d.addNodes++
	return d.baseN + d.addNodes - 1
}

// n reports the node count after the batch's insertions so far.
func (d *Delta) n() int { return d.baseN + d.addNodes }

// AddEdge records adding weight to the directed edge from -> to
// (creating it if absent). Both endpoints may be inserted nodes.
func (d *Delta) AddEdge(from, to int, weight float64) error {
	if from < 0 || from >= d.n() || to < 0 || to >= d.n() {
		return fmt.Errorf("graph: delta edge (%d,%d) outside node range [0,%d)", from, to, d.n())
	}
	if weight <= 0 {
		return fmt.Errorf("graph: delta edge (%d,%d) has non-positive weight %v", from, to, weight)
	}
	d.ops = append(d.ops, deltaOp{kind: opAddEdge, from: from, to: to, w: weight})
	return nil
}

// RemoveEdge records removing the (merged) directed edge from -> to.
// Whether the edge exists is only known at Apply time, where a missing
// edge fails the whole batch with ErrEdgeNotFound.
func (d *Delta) RemoveEdge(from, to int) error {
	if from < 0 || from >= d.n() || to < 0 || to >= d.n() {
		return fmt.Errorf("graph: delta edge (%d,%d) outside node range [0,%d)", from, to, d.n())
	}
	d.ops = append(d.ops, deltaOp{kind: opRemoveEdge, from: from, to: to})
	return nil
}

// Counts reports the batch's op totals: edge additions, edge removals
// and node insertions.
func (d *Delta) Counts() (added, removed, nodes int) {
	for _, op := range d.ops {
		if op.kind == opAddEdge {
			added++
		} else {
			removed++
		}
	}
	return added, removed, d.addNodes
}

// Edges returns the batch's edge ops as (from, to, weight) triples with
// weight 0 marking a removal, in recorded order. The slice is a copy.
func (d *Delta) Edges() []Edge {
	out := make([]Edge, len(d.ops))
	for i, op := range d.ops {
		out[i] = Edge{From: op.from, To: op.to, Weight: op.w}
	}
	return out
}

// Apply produces the graph with the batch applied, leaving g untouched.
// The result is exactly the graph a Builder fed the updated edge set
// would produce, so downstream consumers (normalisation, BFS, indexes)
// see no difference between an updated graph and a freshly built one.
func (g *Graph) Apply(d *Delta) (*Graph, error) {
	if d.baseN != g.n {
		return nil, fmt.Errorf("graph: delta built against %d nodes, graph has %d", d.baseN, g.n)
	}
	type key struct{ from, to int }
	w := make(map[key]float64, g.M()+len(d.ops))
	for u := 0; u < g.n; u++ {
		for i := g.outPtr[u]; i < g.outPtr[u+1]; i++ {
			w[key{u, g.outTo[i]}] = g.outW[i]
		}
	}
	for i, op := range d.ops {
		k := key{op.from, op.to}
		switch op.kind {
		case opAddEdge:
			w[k] += op.w
		case opRemoveEdge:
			if _, ok := w[k]; !ok {
				return nil, fmt.Errorf("graph: delta op %d removes edge (%d,%d): %w", i, op.from, op.to, ErrEdgeNotFound)
			}
			delete(w, k)
		}
	}
	b := NewBuilder(g.n + d.addNodes)
	for k, weight := range w {
		if err := b.AddEdge(k.from, k.to, weight); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// AddEdge returns a copy of the graph with weight added to the directed
// edge from -> to (created if absent). Single-op convenience over
// NewDelta/Apply.
func (g *Graph) AddEdge(from, to int, weight float64) (*Graph, error) {
	d := g.NewDelta()
	if err := d.AddEdge(from, to, weight); err != nil {
		return nil, err
	}
	return g.Apply(d)
}

// RemoveEdge returns a copy of the graph without the (merged) directed
// edge from -> to; a missing edge fails with ErrEdgeNotFound.
func (g *Graph) RemoveEdge(from, to int) (*Graph, error) {
	d := g.NewDelta()
	if err := d.RemoveEdge(from, to); err != nil {
		return nil, err
	}
	return g.Apply(d)
}

// Extend appends next's ops to d, merging two sequentially recorded
// batches into one. next must have been built against the node count d
// produces (next.BaseN() == d.BaseN()+d.AddedNodes()), the contract a
// chain of deltas recorded one after another satisfies naturally.
// Applying the merged batch is equivalent to applying d then next: ops
// execute in recorded order and node ids never shift (insertions only
// append). This is the write-ahead log's memtable merge — pending
// batches fold into one so a single refactorization absorbs them all.
func (d *Delta) Extend(next *Delta) error {
	if next.baseN != d.n() {
		return fmt.Errorf("graph: delta built against %d nodes cannot extend one producing %d", next.baseN, d.n())
	}
	d.addNodes += next.addNodes
	d.ops = append(d.ops, next.ops...)
	return nil
}

// deltaWireVersion guards the binary encoding below; bump on any layout
// change so a stale log segment fails loudly instead of misparsing.
const deltaWireVersion = 1

// AppendBinary encodes the batch into buf and returns the extended
// slice. The encoding is deterministic (same delta, same bytes) and
// self-delimiting: version byte, then baseN / addNodes / op count as
// uvarints, then each op as kind byte + from/to uvarints + (additions
// only) the weight's IEEE-754 bits little-endian.
//
//kdash:deterministic
func (d *Delta) AppendBinary(buf []byte) []byte {
	buf = append(buf, deltaWireVersion)
	buf = binary.AppendUvarint(buf, uint64(d.baseN))
	buf = binary.AppendUvarint(buf, uint64(d.addNodes))
	buf = binary.AppendUvarint(buf, uint64(len(d.ops)))
	for _, op := range d.ops {
		buf = append(buf, byte(op.kind))
		buf = binary.AppendUvarint(buf, uint64(op.from))
		buf = binary.AppendUvarint(buf, uint64(op.to))
		if op.kind == opAddEdge {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(op.w))
		}
	}
	return buf
}

// UnmarshalDelta decodes a batch written by AppendBinary, re-validating
// every op through the recording API so a corrupt or adversarial blob
// can never yield a Delta that AddEdge would have rejected.
//
//kdash:deterministic
func UnmarshalDelta(data []byte) (*Delta, error) {
	if len(data) == 0 || data[0] != deltaWireVersion {
		return nil, fmt.Errorf("graph: bad delta encoding version")
	}
	data = data[1:]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("graph: truncated delta encoding")
		}
		data = data[n:]
		return v, nil
	}
	baseN, err := next()
	if err != nil {
		return nil, err
	}
	addNodes, err := next()
	if err != nil {
		return nil, err
	}
	nops, err := next()
	if err != nil {
		return nil, err
	}
	const maxDeltaDim = 1 << 40
	if baseN > maxDeltaDim || addNodes > maxDeltaDim || nops > uint64(len(data)) {
		// Each op costs >= 3 encoded bytes, so op counts beyond the
		// remaining byte count are corrupt; reject before allocating.
		return nil, fmt.Errorf("graph: corrupt delta encoding (baseN=%d addNodes=%d ops=%d)", baseN, addNodes, nops)
	}
	d := NewDelta(int(baseN))
	for i := uint64(0); i < addNodes; i++ {
		d.AddNode()
	}
	d.ops = make([]deltaOp, 0, nops)
	for i := uint64(0); i < nops; i++ {
		if len(data) == 0 {
			return nil, fmt.Errorf("graph: truncated delta encoding")
		}
		kind := deltaOpKind(data[0])
		data = data[1:]
		from, err := next()
		if err != nil {
			return nil, err
		}
		to, err := next()
		if err != nil {
			return nil, err
		}
		if from > maxDeltaDim || to > maxDeltaDim {
			return nil, fmt.Errorf("graph: corrupt delta encoding (edge %d,%d)", from, to)
		}
		switch kind {
		case opAddEdge:
			if len(data) < 8 {
				return nil, fmt.Errorf("graph: truncated delta encoding")
			}
			w := math.Float64frombits(binary.LittleEndian.Uint64(data))
			data = data[8:]
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("graph: corrupt delta encoding (weight %v)", w)
			}
			if err := d.AddEdge(int(from), int(to), w); err != nil {
				return nil, err
			}
		case opRemoveEdge:
			if err := d.RemoveEdge(int(from), int(to)); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("graph: corrupt delta encoding (op kind %d)", kind)
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("graph: %d trailing bytes after delta encoding", len(data))
	}
	return d, nil
}

// AddNode returns a copy of the graph with one new edgeless node
// appended, along with the new node's id.
func (g *Graph) AddNode() (*Graph, int) {
	d := g.NewDelta()
	id := d.AddNode()
	g2, err := g.Apply(d)
	if err != nil {
		panic(err) // a pure node insertion cannot fail validation
	}
	return g2, id
}
