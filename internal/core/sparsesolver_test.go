package core

import (
	"math/rand"
	"testing"
)

// TestSparseSolverMatchesSolveAndBatch property-tests the single-lane
// sparse fast path against both dense references on random graphs:
// values must be bit-identical to Index.Solve on the returned support
// (and to the batch kernel's lane where its support covers the row), and
// every row outside the support must be exactly zero in the dense
// answer. One solver instance runs all trials, so stale-workspace bugs
// across sparse/dense right-hand sides and scatter/sweep transitions
// surface as mismatches.
func TestSparseSolverMatchesSolveAndBatch(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		n    int
	}{{2, 60}, {7, 130}, {11, 220}} {
		ix := batchTestIndex(t, tc.seed, tc.n)
		rng := rand.New(rand.NewSource(tc.seed))
		n := ix.N()
		s := ix.NewSparseSolver()
		bs := ix.NewBatchSolver()
		for trial := 0; trial < 9; trial++ {
			r := make([]float64, n)
			switch trial % 3 {
			case 0: // restart vector
				r[rng.Intn(n)] = 1
			case 1: // sparse residual-style rhs
				for i := 0; i < 8; i++ {
					r[rng.Intn(n)] += rng.Float64()
				}
			default: // dense rhs: forces the sweep fallback
				for i := range r {
					r[i] = rng.Float64()
				}
			}
			var idx []int
			var val []float64
			for i, v := range r {
				if v != 0 {
					idx = append(idx, i)
					val = append(val, v)
				}
			}
			got, sup, err := s.SolveSparse(idx, val)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ix.Solve(r)
			if err != nil {
				t.Fatal(err)
			}
			lanes, lsups, err := bs.SolveOn([][]float64{r})
			if err != nil {
				t.Fatal(err)
			}
			onSup := make([]bool, n)
			if sup == nil {
				for i := range onSup {
					onSup[i] = true
				}
			} else {
				for _, i := range sup {
					onSup[i] = true
				}
			}
			onBatch := make([]bool, n)
			if lsups[0] == nil {
				for i := range onBatch {
					onBatch[i] = true
				}
			} else {
				for _, i := range lsups[0] {
					onBatch[i] = true
				}
			}
			for i := 0; i < n; i++ {
				if !onSup[i] {
					if want[i] != 0 {
						t.Fatalf("seed %d trial %d row %d outside support, but Solve gives %v", tc.seed, trial, i, want[i])
					}
					continue
				}
				if got[i] != want[i] {
					t.Fatalf("seed %d trial %d row %d: SolveSparse %v != Solve %v", tc.seed, trial, i, got[i], want[i])
				}
				if onBatch[i] && lanes[0][i] != got[i] {
					t.Fatalf("seed %d trial %d row %d: SolveSparse %v != SolveOn lane %v", tc.seed, trial, i, got[i], lanes[0][i])
				}
			}
		}
	}
}

// TestSparseSolverValidation pins the input contract: parallel slices,
// in-range ids, strictly ascending order.
func TestSparseSolverValidation(t *testing.T) {
	ix := batchTestIndex(t, 3, 40)
	s := ix.NewSparseSolver()
	if _, _, err := s.SolveSparse([]int{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := s.SolveSparse([]int{-1}, []float64{1}); err == nil {
		t.Error("negative id accepted")
	}
	if _, _, err := s.SolveSparse([]int{ix.N()}, []float64{1}); err == nil {
		t.Error("out-of-range id accepted")
	}
	if _, _, err := s.SolveSparse([]int{5, 5}, []float64{1, 1}); err == nil {
		t.Error("duplicate id accepted")
	}
	if _, _, err := s.SolveSparse([]int{5, 3}, []float64{1, 1}); err == nil {
		t.Error("descending ids accepted")
	}
	if _, sup, err := s.SolveSparse(nil, nil); err != nil || sup == nil || len(sup) != 0 {
		t.Errorf("empty rhs: sup=%v err=%v, want non-nil empty support and no error", sup, err)
	}
}

// TestProximityVectorUsesPooledSolver checks the rewritten
// ProximityVector against the per-entry Proximity oracle, repeatedly, so
// pooled-solver reuse across queries cannot leak state between calls.
func TestProximityVectorUsesPooledSolver(t *testing.T) {
	ix := batchTestIndex(t, 9, 80)
	for _, q := range []int{0, 17, 3, 17, 79} {
		vec, err := ix.ProximityVector(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range []int{0, 1, q, 40, 79} {
			want, err := ix.Proximity(q, u)
			if err != nil {
				t.Fatal(err)
			}
			if vec[u] != want {
				t.Fatalf("q=%d u=%d: vector %v != Proximity %v", q, u, vec[u], want)
			}
		}
	}
}
