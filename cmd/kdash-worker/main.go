// Command kdash-worker serves one process's share of the factor-solve
// load for a distributed K-dash deployment: it opens the same sharded
// index directory as the coordinator and answers solve and two-phase
// publish RPCs (see docs/ARCHITECTURE.md, "Distributed serving") over
// the length-prefixed binary protocol in internal/rpc.
//
// Usage:
//
//	kdash-worker -index idxdir -addr 127.0.0.1:9101
//	kdash-worker -index idxdir               # ephemeral port, printed on stdout
//
// The worker prints "LISTEN <host:port>" on stdout once it accepts
// connections, so supervisors (and the differential test harness) can
// bind it to an ephemeral port and discover the address. Shard files
// are opened lazily: only the shards the coordinator's placement map
// actually routes here are ever faulted in, even though every worker
// sees the full directory. SIGINT/SIGTERM close the listener and exit.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"kdash/internal/mmapio"
	"kdash/internal/placement"
	"kdash/internal/shard"
)

func main() {
	var (
		indexDir = flag.String("index", "", "sharded index directory (the same directory the coordinator and every other worker open)")
		addr     = flag.String("addr", "127.0.0.1:0", "RPC listen address (port 0 picks an ephemeral port, printed on stdout)")
		useMmap  = flag.Bool("mmap", false, "memory-map shard files zero-copy instead of parsing them into private memory")
	)
	flag.Parse()
	if *indexDir == "" {
		fmt.Fprintln(os.Stderr, "kdash-worker: need -index")
		flag.Usage()
		os.Exit(2)
	}
	mode := mmapio.ModeCopy
	if *useMmap {
		mode = mmapio.ModeMmap
	}
	sx, err := shard.Open(*indexDir, shard.LoadOptions{Mode: mode, Lazy: true})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The LISTEN line is the worker's readiness contract: everything else
	// logs to stderr so a supervisor can parse stdout alone.
	fmt.Printf("LISTEN %s\n", ln.Addr())
	log.Printf("worker serving %d nodes / %d shards (epoch %d) on %s", sx.N(), sx.Shards(), sx.Epoch(), ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		log.Printf("signal received, closing listener")
		ln.Close()
	}()
	if err := placement.ServeWorker(ln, sx); err != nil && !errors.Is(err, net.ErrClosed) {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}
