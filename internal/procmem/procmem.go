// Package procmem reads the calling process's OS-reported memory
// footprint. Heap profilers cannot see memory-mapped index pages — the
// whole point of the mmap load path is that they never cross the Go
// heap — so the cold-start benchmark and the server's /statz report the
// resident set the kernel accounts instead. Platforms without a
// supported source report 0 rather than guessing.
package procmem

// Resident returns the process's resident set size in bytes, or 0 where
// the platform offers no cheap source.
func Resident() int64 { return resident() }
