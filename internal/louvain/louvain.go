// Package louvain implements the Louvain community-detection method of
// Blondel et al. (2008), which the paper uses for its cluster and hybrid
// node reorderings. The method greedily maximises modularity in two
// alternating phases: local node moves and graph aggregation.
//
// Directed input graphs are symmetrised (edge weight u~v is the sum of
// both directions) because modularity is defined on undirected graphs.
package louvain

import (
	"math/rand"

	"kdash/internal/graph"
)

// Result holds a partition of the nodes into communities 0..K-1.
type Result struct {
	Community []int   // Community[u] = community id of node u
	K         int     // number of communities
	Q         float64 // modularity of the partition
}

// maxLevels bounds the aggregation recursion; Louvain converges in a
// handful of levels on all practical graphs.
const maxLevels = 20

// Partition detects communities on the (symmetrised) graph. The seed
// controls node visit order in the local-moving phase; any seed gives a
// valid partition and the same seed gives the same partition.
func Partition(g *graph.Graph, seed int64) *Result {
	n := g.N()
	if n == 0 {
		return &Result{Community: []int{}, K: 0}
	}
	// Symmetrised weighted adjacency lists.
	adj := symmetrize(g)
	rng := rand.New(rand.NewSource(seed))

	// assignment[u] tracks u's community in the original node space.
	assignment := make([]int, n)
	for i := range assignment {
		assignment[i] = i
	}

	level := adj
	for lv := 0; lv < maxLevels; lv++ {
		com, moved := localMove(level, rng)
		com, k := compact(com)
		// Fold this level's communities into the original assignment.
		for u := 0; u < n; u++ {
			assignment[u] = com[assignment[u]]
		}
		if !moved || k == len(level.weight) {
			break
		}
		level = aggregate(level, com, k)
	}
	com, k := compact(assignment)
	return &Result{Community: com, K: k, Q: Modularity(g, com)}
}

// weighted is an undirected weighted multigraph in adjacency-list form.
type weighted struct {
	nbr    [][]int
	w      [][]float64
	weight []float64 // weighted degree per node (self loops count twice)
	m2     float64   // total weight * 2
	self   []float64 // self-loop weight per node
}

func symmetrize(g *graph.Graph) *weighted {
	n := g.N()
	wg := &weighted{
		nbr:    make([][]int, n),
		w:      make([][]float64, n),
		weight: make([]float64, n),
		self:   make([]float64, n),
	}
	// Merge both directions into per-node maps.
	maps := make([]map[int]float64, n)
	for u := 0; u < n; u++ {
		maps[u] = map[int]float64{}
	}
	for u := 0; u < n; u++ {
		g.OutNeighbors(u, func(v int, w float64) {
			if v == u {
				wg.self[u] += w
				return
			}
			maps[u][v] += w
			maps[v][u] += w
		})
	}
	for u := 0; u < n; u++ {
		for v, w := range maps[u] {
			wg.nbr[u] = append(wg.nbr[u], v)
			wg.w[u] = append(wg.w[u], w)
			wg.weight[u] += w
		}
		wg.weight[u] += 2 * wg.self[u]
		wg.m2 += wg.weight[u]
	}
	return wg
}

// localMove runs modularity-greedy single-node moves until a full pass
// makes no move. Returns the community assignment and whether any move
// happened at all.
func localMove(wg *weighted, rng *rand.Rand) ([]int, bool) {
	n := len(wg.weight)
	com := make([]int, n)
	tot := make([]float64, n) // total weighted degree per community
	for u := 0; u < n; u++ {
		com[u] = u
		tot[u] = wg.weight[u]
	}
	if wg.m2 == 0 {
		return com, false
	}
	order := rng.Perm(n)
	anyMoved := false
	// neighWeight[c] accumulates edge weight from the current node into
	// community c during one node's evaluation.
	neighWeight := map[int]float64{}
	for pass := 0; pass < 100; pass++ {
		movedThisPass := false
		for _, u := range order {
			cu := com[u]
			// Weights from u to each neighbouring community.
			for k := range neighWeight {
				delete(neighWeight, k)
			}
			for i, v := range wg.nbr[u] {
				neighWeight[com[v]] += wg.w[u][i]
			}
			// Remove u from its community.
			tot[cu] -= wg.weight[u]
			best, bestGain := cu, neighWeight[cu]-tot[cu]*wg.weight[u]/wg.m2
			for c, kin := range neighWeight {
				gain := kin - tot[c]*wg.weight[u]/wg.m2
				if gain > bestGain+1e-12 || (gain > bestGain-1e-12 && c < best) {
					best, bestGain = c, gain
				}
			}
			tot[best] += wg.weight[u]
			if best != cu {
				com[u] = best
				movedThisPass = true
				anyMoved = true
			}
		}
		if !movedThisPass {
			break
		}
	}
	return com, anyMoved
}

// compact renumbers community ids to 0..k-1 preserving first-seen order.
func compact(com []int) ([]int, int) {
	remap := map[int]int{}
	out := make([]int, len(com))
	for i, c := range com {
		id, ok := remap[c]
		if !ok {
			id = len(remap)
			remap[c] = id
		}
		out[i] = id
	}
	return out, len(remap)
}

// aggregate collapses each community into a single super-node.
func aggregate(wg *weighted, com []int, k int) *weighted {
	out := &weighted{
		nbr:    make([][]int, k),
		w:      make([][]float64, k),
		weight: make([]float64, k),
		self:   make([]float64, k),
	}
	maps := make([]map[int]float64, k)
	for i := range maps {
		maps[i] = map[int]float64{}
	}
	for u := range wg.weight {
		cu := com[u]
		out.self[cu] += wg.self[u]
		for i, v := range wg.nbr[u] {
			cv := com[v]
			if cv == cu {
				// Each undirected edge appears twice in adjacency lists;
				// halve to count it once as a self loop.
				out.self[cu] += wg.w[u][i] / 2
			} else {
				maps[cu][cv] += wg.w[u][i]
			}
		}
	}
	for cu := 0; cu < k; cu++ {
		for cv, w := range maps[cu] {
			out.nbr[cu] = append(out.nbr[cu], cv)
			out.w[cu] = append(out.w[cu], w)
			out.weight[cu] += w
		}
		out.weight[cu] += 2 * out.self[cu]
		out.m2 += out.weight[cu]
	}
	return out
}

// Modularity computes Newman modularity of a partition on the
// symmetrised graph: Q = Σ_c [ in_c/m2 - (tot_c/m2)^2 ].
func Modularity(g *graph.Graph, com []int) float64 {
	wg := symmetrize(g)
	if wg.m2 == 0 {
		return 0
	}
	k := 0
	for _, c := range com {
		if c+1 > k {
			k = c + 1
		}
	}
	in := make([]float64, k)
	tot := make([]float64, k)
	for u := range wg.weight {
		tot[com[u]] += wg.weight[u]
		in[com[u]] += 2 * wg.self[u]
		for i, v := range wg.nbr[u] {
			if com[v] == com[u] {
				in[com[u]] += wg.w[u][i]
			}
		}
	}
	q := 0.0
	for c := 0; c < k; c++ {
		q += in[c]/wg.m2 - (tot[c]/wg.m2)*(tot[c]/wg.m2)
	}
	return q
}
