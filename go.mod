module kdash

go 1.24
