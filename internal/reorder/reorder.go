// Package reorder implements the paper's three approximation solutions to
// the (NP-complete) inverse matrices problem — degree, cluster, and hybrid
// reordering (Algorithms 1–3) — plus the random baseline used in Figures
// 5, 6 and 9.
//
// A reordering is a permutation perm with perm[old] = new: node `old` of
// the input graph becomes node `perm[old]` of the reordered graph. The
// goal of each method is to concentrate non-zeros of the column-normalised
// adjacency A away from the upper-left, which keeps the triangular inverse
// factors of W = I - (1-c)A sparse (Section 4.2.2 of the paper).
package reorder

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"kdash/internal/graph"
	"kdash/internal/louvain"
)

// Method selects a reordering strategy.
type Method int

const (
	// Degree arranges nodes in ascending order of (in+out) degree.
	Degree Method = iota
	// Cluster groups nodes by Louvain community, moving nodes with
	// cross-partition edges into a final border partition.
	Cluster
	// Hybrid applies Cluster and then sorts within each partition by
	// ascending degree. This is the paper's default (best) choice.
	Hybrid
	// Random is the baseline strawman ordering.
	Random
	// Natural keeps the input order (useful for debugging/ablation).
	Natural
)

// String returns the method name as used in the paper's figures.
func (m Method) String() string {
	switch m {
	case Degree:
		return "Degree"
	case Cluster:
		return "Cluster"
	case Hybrid:
		return "Hybrid"
	case Random:
		return "Random"
	case Natural:
		return "Natural"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Methods lists the strategies compared in Figures 5 and 6.
var Methods = []Method{Degree, Cluster, Hybrid, Random}

// Parse maps a method name — as printed by String, case-insensitive —
// back to the Method. The single inverse of String, shared by the CLI
// flags and the sharded-index manifest loader so a new method cannot
// be nameable in one place and unparseable in the other.
func Parse(name string) (Method, error) {
	for _, m := range []Method{Degree, Cluster, Hybrid, Random, Natural} {
		if strings.EqualFold(name, m.String()) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("reorder: unknown method %q", name)
}

// Compute returns the permutation (perm[old] = new) for the chosen method.
// The seed feeds Louvain's visit order and the Random method; the same
// seed always gives the same permutation.
func Compute(g *graph.Graph, m Method, seed int64) []int {
	switch m {
	case Degree:
		return degreeOrder(g)
	case Cluster:
		return clusterOrder(g, seed, false)
	case Hybrid:
		return clusterOrder(g, seed, true)
	case Random:
		return randomOrder(g.N(), seed)
	case Natural:
		perm := make([]int, g.N())
		for i := range perm {
			perm[i] = i
		}
		return perm
	default:
		panic(fmt.Sprintf("reorder: unknown method %d", int(m)))
	}
}

// Invert returns the inverse permutation: inv[new] = old.
func Invert(perm []int) []int {
	inv := make([]int, len(perm))
	for old, new := range perm {
		inv[new] = old
	}
	return inv
}

// degreeOrder implements Algorithm 1: ascending degree, ties by node id.
func degreeOrder(g *graph.Graph) []int {
	n := g.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	return positionsToPerm(order)
}

// clusterOrder implements Algorithm 2 (and, with sortByDegree, Algorithm
// 3): Louvain partitioning, border extraction into partition κ+1, then
// concatenation of partitions.
func clusterOrder(g *graph.Graph, seed int64, sortByDegree bool) []int {
	n := g.N()
	res := louvain.Partition(g, seed)
	part := make([]int, n)
	copy(part, res.Community)
	border := res.K // the κ+1-th partition
	// A node whose edges cross partitions moves to the border partition
	// (Algorithm 2, lines 3–6). Edge direction is irrelevant here; any
	// incident cross edge disqualifies the node.
	isCross := make([]bool, n)
	for _, e := range g.Edges() {
		if res.Community[e.From] != res.Community[e.To] {
			isCross[e.From] = true
			isCross[e.To] = true
		}
	}
	for u := 0; u < n; u++ {
		if isCross[u] {
			part[u] = border
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ua, ub := order[a], order[b]
		if part[ua] != part[ub] {
			return part[ua] < part[ub]
		}
		if sortByDegree {
			da, db := g.Degree(ua), g.Degree(ub)
			if da != db {
				return da < db
			}
		}
		return ua < ub
	})
	return positionsToPerm(order)
}

func randomOrder(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	// rng.Perm already produces perm[old] = new uniformly.
	return rng.Perm(n)
}

// positionsToPerm converts a visit order (order[new] = old) into a
// permutation (perm[old] = new).
func positionsToPerm(order []int) []int {
	perm := make([]int, len(order))
	for new, old := range order {
		perm[old] = new
	}
	return perm
}

// PartitionSizes is a helper for tests and diagnostics: it returns the
// sizes of the Louvain partitions (with border extraction) that cluster
// and hybrid reordering would use.
func PartitionSizes(g *graph.Graph, seed int64) []int {
	res := louvain.Partition(g, seed)
	counts := make([]int, res.K+1)
	isCross := make([]bool, g.N())
	for _, e := range g.Edges() {
		if res.Community[e.From] != res.Community[e.To] {
			isCross[e.From] = true
			isCross[e.To] = true
		}
	}
	for u := 0; u < g.N(); u++ {
		if isCross[u] {
			counts[res.K]++
		} else {
			counts[res.Community[u]]++
		}
	}
	return counts
}
