package analyzers_test

import (
	"testing"

	"kdash/tools/kdashvet/internal/analysistest"
	"kdash/tools/kdashvet/internal/analyzers"
)

func TestPoolRelease(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.PoolRelease, "poolrelease")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.HotAlloc, "hotalloc")
}

func TestROFactors(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.ROFactors, "rofactors")
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Determinism, "determinism")
}

func TestCtxCancel(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.CtxCancel, "ctxcancel")
}
