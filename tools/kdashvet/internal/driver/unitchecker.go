package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"kdash/tools/kdashvet/internal/framework"
)

// vetConfig mirrors the vet.cfg JSON the go command writes for each
// package when invoked as `go vet -vettool=kdashvet`. The format is the
// contract between cmd/go and x/tools' unitchecker; kdashvet implements
// the same protocol without the x/tools dependency. Fields we do not
// consume (facts, ignored files) are listed for documentation.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnitchecker handles one `go vet`-driven invocation: parse the
// vet.cfg, type-check the package against the supplied export data, run
// the analyzers and print surviving diagnostics to stderr. It returns
// the number of diagnostics reported (the caller exits non-zero when
// positive, which is how go vet learns of findings).
//
// Packages visited only for facts (VetxOnly — every dependency of the
// vetted targets, including the standard library) are skipped outright:
// kdashvet's analyzers are package-local and fact-free, so only the
// mandatory empty facts file is written for the build cache.
func RunUnitchecker(cfgPath string, analyzers []*framework.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("kdashvet: no facts\n"), 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		e, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	pkg, err := check(cfg.ImportPath, cfg.GoFiles, lookup, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}
	diags, err := Run(pkg, analyzers)
	if err != nil {
		return 0, err
	}
	PrintDiagnostics(os.Stderr, pkg, diags)
	return len(diags), nil
}

// PrintDiagnostics writes findings as file:line:col: [analyzer] message,
// sorted by position — the format both go vet and humans expect.
func PrintDiagnostics(w io.Writer, p *Package, diags []framework.Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		posn := p.Fset.Position(d.Pos)
		posn.Filename = relPath(posn.Filename)
		fmt.Fprintf(w, "%s: [%s] %s\n", posn, d.Analyzer, d.Message)
	}
}

// relPath shortens absolute file names to cwd-relative where possible.
func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	if rel, err := filepath.Rel(wd, name); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return name
}

// PrintVersion implements the -V=full handshake cmd/go uses to fingerprint
// vettools for its build cache: one line naming the tool plus a content
// hash of the executable, so editing kdashvet invalidates cached vet
// results.
func PrintVersion(w io.Writer, progname string) {
	h := [sha256.Size]byte{}
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			h = sha256.Sum256(data)
		}
	}
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%02x\n", progname, h[:12])
}
