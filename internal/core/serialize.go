package core

// Legacy (v1) index serialization: a sequential little-endian stream in
// which every integer — array lengths and elements alike — is one
// uint64, read back value by value. It is superseded by the sectioned v3
// layout in serialize_v3.go, which Save now writes; the v1 writer and
// reader are retained so old index files keep loading and compatibility
// tests can still produce them.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"kdash/internal/mmapio"
	"kdash/internal/reorder"
	"kdash/internal/sparse"
)

// serialMagic identifies a legacy (v1) K-dash index stream.
const serialMagic = "KDASHIX"

// serialVersion is the legacy stream version. The sectioned container
// format that replaced it identifies itself by mmapio.Magic instead of
// this header and calls itself v3 (matching the sharded manifest
// version that introduced it); there is no v2 core stream.
const serialVersion = 1

// SaveLegacy writes the index as a v1 stream. Deprecated in favour of
// Save (the sectioned v3 layout LoadIndex and OpenIndexFile can
// memory-map); it is retained so compatibility tests and tooling can
// produce v1 files. The BuildStats timings are not persisted (they
// describe the building machine, not the index); the sparsity counters
// are.
func (ix *Index) SaveLegacy(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(serialMagic); err != nil {
		return fmt.Errorf("core: writing index header: %w", err)
	}
	if err := bw.WriteByte(serialVersion); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU64 := func(v uint64) error {
		var buf [8]byte
		le.PutUint64(buf[:], v)
		_, err := bw.Write(buf[:])
		return err
	}
	writeInts := func(xs []int) error {
		if err := writeU64(uint64(len(xs))); err != nil {
			return err
		}
		for _, x := range xs {
			if err := writeU64(uint64(x)); err != nil {
				return err
			}
		}
		return nil
	}
	writeFloats := func(xs []float64) error {
		if err := writeU64(uint64(len(xs))); err != nil {
			return err
		}
		for _, x := range xs {
			if err := writeU64(math.Float64bits(x)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeU64(uint64(ix.n)); err != nil {
		return err
	}
	if err := writeU64(math.Float64bits(ix.c)); err != nil {
		return err
	}
	if err := writeInts(ix.perm); err != nil {
		return err
	}
	for _, arr := range [][]int{ix.a.ColPtr, ix.a.RowIdx, ix.linv.ColPtr, ix.linv.RowIdx, ix.uinv.RowPtr, ix.uinv.ColIdx} {
		if err := writeInts(arr); err != nil {
			return err
		}
	}
	for _, arr := range [][]float64{ix.a.Val, ix.linv.Val, ix.uinv.Val, ix.amaxCol, ix.selfA} {
		if err := writeFloats(arr); err != nil {
			return err
		}
	}
	if err := writeU64(math.Float64bits(ix.amax)); err != nil {
		return err
	}
	// Persist the size-describing stats.
	if err := writeU64(uint64(ix.stats.Method)); err != nil {
		return err
	}
	for _, v := range []int{ix.stats.NNZFactors, ix.stats.NNZInverse, ix.stats.Edges} {
		if err := writeU64(uint64(v)); err != nil {
			return err
		}
	}
	if err := writeU64(math.Float64bits(ix.stats.InverseRatio)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: flushing index: %w", err)
	}
	return nil
}

// clipSlice copies a slice down to its length when append growth left
// meaningful slack — the factor arrays live for the index's lifetime,
// so the ~25% over-allocation large appends carry is worth one copy at
// load time.
func clipSlice[T any](s []T) []T {
	if cap(s)-len(s) <= len(s)/16 {
		return s
	}
	return append(make([]T, 0, len(s)), s...)
}

// LoadIndex reads an index previously written by Save (the sectioned v3
// layout) or SaveLegacy (the v1 stream); the leading magic selects the
// parser. Reading from a stream always materialises the index in private
// memory — use OpenIndexFile to memory-map a v3 file instead.
func LoadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(8)
	if err != nil {
		return nil, fmt.Errorf("core: reading index header: %w", err)
	}
	if string(head) == mmapio.Magic {
		blob, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading index: %w", err)
		}
		f, err := mmapio.FromBytes(blob)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		return indexFromContainer(f, true)
	}
	return loadLegacy(br)
}

// loadLegacy parses a v1 stream. It populates the index's factor arrays
// directly, so it sits on the //kdash:mutates-factors allowlist.
//
//kdash:mutates-factors
func loadLegacy(br *bufio.Reader) (*Index, error) {
	head := make([]byte, len(serialMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("core: reading index header: %w", err)
	}
	if string(head[:len(serialMagic)]) != serialMagic {
		return nil, fmt.Errorf("core: not a K-dash index (bad magic %q)", head[:len(serialMagic)])
	}
	if head[len(serialMagic)] != serialVersion {
		return nil, fmt.Errorf("core: unsupported index version %d (want %d)", head[len(serialMagic)], serialVersion)
	}
	le := binary.LittleEndian
	readU64 := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return le.Uint64(buf[:]), nil
	}
	// maxLen guards against running away on corrupted length prefixes;
	// the arrays additionally grow by append rather than being sized up
	// front, so a corrupt length never allocates more than the stream
	// actually carries (a truncated stream fails at its first missing
	// byte with a few KiB committed, not a terabyte).
	const maxLen = 1 << 40
	const preAlloc = 1 << 16
	readInts := func() ([]int, error) {
		n, err := readU64()
		if err != nil {
			return nil, err
		}
		if n > maxLen {
			return nil, fmt.Errorf("core: corrupt index (array length %d)", n)
		}
		out := make([]int, 0, min(n, preAlloc))
		for i := uint64(0); i < n; i++ {
			v, err := readU64()
			if err != nil {
				return nil, err
			}
			out = append(out, int(v))
		}
		return clipSlice(out), nil
	}
	readFloats := func() ([]float64, error) {
		n, err := readU64()
		if err != nil {
			return nil, err
		}
		if n > maxLen {
			return nil, fmt.Errorf("core: corrupt index (array length %d)", n)
		}
		out := make([]float64, 0, min(n, preAlloc))
		for i := uint64(0); i < n; i++ {
			v, err := readU64()
			if err != nil {
				return nil, err
			}
			out = append(out, math.Float64frombits(v))
		}
		return clipSlice(out), nil
	}
	nU, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("core: reading index size: %w", err)
	}
	cBits, err := readU64()
	if err != nil {
		return nil, err
	}
	ix := &Index{n: int(nU), c: math.Float64frombits(cBits)}
	if ix.n <= 0 || ix.c <= 0 || ix.c >= 1 {
		return nil, fmt.Errorf("core: corrupt index (n=%d c=%v)", ix.n, ix.c)
	}
	if ix.perm, err = readInts(); err != nil {
		return nil, err
	}
	intArrays := make([][]int, 6)
	for i := range intArrays {
		if intArrays[i], err = readInts(); err != nil {
			return nil, err
		}
	}
	floatArrays := make([][]float64, 5)
	for i := range floatArrays {
		if floatArrays[i], err = readFloats(); err != nil {
			return nil, err
		}
	}
	amaxBits, err := readU64()
	if err != nil {
		return nil, err
	}
	ix.amax = math.Float64frombits(amaxBits)
	methodU, err := readU64()
	if err != nil {
		return nil, err
	}
	statInts := make([]int, 3)
	for i := range statInts {
		v, err := readU64()
		if err != nil {
			return nil, err
		}
		statInts[i] = int(v)
	}
	ratioBits, err := readU64()
	if err != nil {
		return nil, err
	}

	ix.a = &sparse.CSC{Rows: ix.n, Cols: ix.n, ColPtr: intArrays[0], RowIdx: intArrays[1], Val: floatArrays[0]}
	ix.linv = &sparse.CSC{Rows: ix.n, Cols: ix.n, ColPtr: intArrays[2], RowIdx: intArrays[3], Val: floatArrays[1]}
	ix.uinv = &sparse.CSR{Rows: ix.n, Cols: ix.n, RowPtr: intArrays[4], ColIdx: intArrays[5], Val: floatArrays[2]}
	ix.amaxCol = floatArrays[3]
	ix.selfA = floatArrays[4]
	if err := ix.validateLoaded(); err != nil {
		return nil, err
	}
	ix.inv = make([]int, ix.n)
	for old, new := range ix.perm {
		ix.inv[new] = old
	}
	ix.stats = BuildStats{
		Method:       reorder.Method(methodU),
		NNZFactors:   statInts[0],
		NNZInverse:   statInts[1],
		Edges:        statInts[2],
		InverseRatio: math.Float64frombits(ratioBits),
	}
	return ix, nil
}

// validateLoaded sanity-checks array shapes and index ranges so a corrupt
// stream fails loudly at load time instead of panicking mid-query.
func (ix *Index) validateLoaded() error {
	n := ix.n
	if len(ix.perm) != n || len(ix.amaxCol) != n || len(ix.selfA) != n {
		return fmt.Errorf("core: corrupt index (per-node arrays sized %d/%d/%d, want %d)",
			len(ix.perm), len(ix.amaxCol), len(ix.selfA), n)
	}
	seen := make([]bool, n)
	for _, p := range ix.perm {
		if p < 0 || p >= n || seen[p] {
			return fmt.Errorf("core: corrupt index (perm is not a permutation)")
		}
		seen[p] = true
	}
	checkCSC := func(name string, m *sparse.CSC) error {
		if len(m.ColPtr) != n+1 || m.ColPtr[0] != 0 || m.ColPtr[n] != len(m.RowIdx) || len(m.RowIdx) != len(m.Val) {
			return fmt.Errorf("core: corrupt index (%s pointers)", name)
		}
		for c := 0; c < n; c++ {
			if m.ColPtr[c] > m.ColPtr[c+1] {
				return fmt.Errorf("core: corrupt index (%s column %d)", name, c)
			}
		}
		for _, r := range m.RowIdx {
			if r < 0 || r >= n {
				return fmt.Errorf("core: corrupt index (%s row index %d)", name, r)
			}
		}
		return nil
	}
	if err := checkCSC("adjacency", ix.a); err != nil {
		return err
	}
	if err := checkCSC("L-inverse", ix.linv); err != nil {
		return err
	}
	u := ix.uinv
	if len(u.RowPtr) != n+1 || u.RowPtr[0] != 0 || u.RowPtr[n] != len(u.ColIdx) || len(u.ColIdx) != len(u.Val) {
		return fmt.Errorf("core: corrupt index (U-inverse pointers)")
	}
	for _, c := range u.ColIdx {
		if c < 0 || c >= n {
			return fmt.Errorf("core: corrupt index (U-inverse column index %d)", c)
		}
	}
	return nil
}
