package shard

// Native fuzz targets for the sharded-index directory loader: a
// corrupt manifest.json or cuts.bin (and, via core's FuzzLoadIndex, a
// truncated shard-NNNN.idx) must make Load return an error — never
// panic, never commit memory the directory does not carry. Each target
// prepares one valid saved directory per process and swaps the fuzzed
// file into it per input.
//
// Run with:
//
//	go test -fuzz=FuzzManifest  ./internal/shard
//	go test -fuzz=FuzzCutsFile  ./internal/shard
//	go test -fuzz=FuzzShardFile ./internal/shard

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"kdash/internal/reorder"
	"kdash/internal/testutil"
)

var fuzzDir struct {
	once     sync.Once
	dir      string
	manifest []byte // the valid manifest.json
	cuts     []byte // the valid cuts.bin
	shard0   []byte // the valid shard-0000.idx
	err      error
}

// fuzzIndexDir lazily saves one small valid sharded index for the
// process and returns the directory plus the pristine file contents.
func fuzzIndexDir(f *testing.F) string {
	f.Helper()
	fuzzDir.once.Do(func() {
		g := testutil.Clustered(60, 3, 5)
		sx, err := Build(g, Options{Shards: 3, Reorder: reorder.Hybrid, Seed: 1})
		if err != nil {
			fuzzDir.err = err
			return
		}
		dir, err := os.MkdirTemp("", "kdash-fuzz-*")
		if err != nil {
			fuzzDir.err = err
			return
		}
		if err := sx.Save(dir); err != nil {
			fuzzDir.err = err
			return
		}
		fuzzDir.dir = dir
		if fuzzDir.manifest, err = os.ReadFile(filepath.Join(dir, ManifestName)); err != nil {
			fuzzDir.err = err
			return
		}
		if fuzzDir.cuts, err = os.ReadFile(filepath.Join(dir, "cuts.bin")); err != nil {
			fuzzDir.err = err
			return
		}
		fuzzDir.shard0, err = os.ReadFile(filepath.Join(dir, "shard-0000.idx"))
		fuzzDir.err = err
	})
	if fuzzDir.err != nil {
		f.Fatal(fuzzDir.err)
	}
	return fuzzDir.dir
}

// fuzzOneFile drives Load with `name` replaced by the fuzzed bytes,
// restoring the pristine content afterwards so inputs stay independent.
func fuzzOneFile(t *testing.T, dir, name string, pristine, data []byte) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.WriteFile(path, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}()
	sx, err := Load(dir)
	if err != nil {
		return // rejection is the expected outcome
	}
	// Accepted input (e.g. the pristine bytes themselves) must serve.
	if _, _, qerr := sx.TopK(0, 3); qerr != nil {
		t.Fatalf("accepted directory cannot answer: %v", qerr)
	}
}

func FuzzManifest(f *testing.F) {
	dir := fuzzIndexDir(f)
	valid := fuzzDir.manifest
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":2,"nodes":-4,"shards":1}`))
	f.Add([]byte(`{"version":2,"restart":0.95,"nodes":1152921504606846976,"shards":3,"shardFiles":["a","b","c"],"assignmentFile":"assignment.bin","cutsFile":"cuts.bin"}`))
	f.Add([]byte(`{"version":2,"restart":0.95,"nodes":60,"shards":3,"shardFiles":["shard-0000.idx","shard-0001.idx","shard-0002.idx"],"assignmentFile":"../../etc/passwd","cutsFile":"cuts.bin"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzOneFile(t, dir, ManifestName, valid, data)
	})
}

func FuzzCutsFile(f *testing.F) {
	dir := fuzzIndexDir(f)
	valid := fuzzDir.cuts
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:7]) // truncated mid-count
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // count bomb
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzOneFile(t, dir, "cuts.bin", valid, data)
	})
}

func FuzzShardFile(f *testing.F) {
	dir := fuzzIndexDir(f)
	valid := fuzzDir.shard0
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // the issue's "truncated shard-NNNN.idx"
	f.Add(valid[:8])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzOneFile(t, dir, "shard-0000.idx", valid, data)
	})
}
