package shard

// In-package test for the distributed-serving seam: a RemoteSolver
// backed directly by a second copy of the index (its SolveShardSparse /
// SolveShardBatch worker surface — no RPC, no processes) must leave
// every answer bit-identical to local solving, because the push runs
// the same commits in the same order on the same 64-bit results. The
// full loopback-TCP and multi-process versions of this check live in
// internal/placement and internal/distributed.

import (
	"math/rand"
	"reflect"
	"testing"

	"kdash/internal/reorder"
	"kdash/internal/testutil"
)

// indexSolver adapts a factor-holding index's worker surface to the
// RemoteSolver interface.
type indexSolver struct{ sx *ShardedIndex }

func (r indexSolver) SolveSparse(si int, idx []int, val []float64) ([]float64, []int, error) {
	return r.sx.SolveShardSparse(si, idx, val)
}

func (r indexSolver) SolveBatch(si int, rhs [][]float64) ([][]float64, [][]int, error) {
	return r.sx.SolveShardBatch(si, rhs)
}

func TestRemoteSolverSeamBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := testutil.Random(rng)
	local, err := Build(g, Options{Shards: 4, Reorder: reorder.Hybrid, Seed: 31, StalenessLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := local.Save(dir); err != nil {
		t.Fatal(err)
	}
	worker, err := Open(dir, LoadOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	co, err := Open(dir, LoadOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	co.SetFactorless()
	co.SetRemoteSolver(indexSolver{sx: worker})

	n := co.N()
	for si := 0; si < co.Shards(); si++ {
		if co.PartLen(si) != local.PartLen(si) || co.ShardNodes(si) != local.ShardNodes(si) {
			t.Fatalf("shard %d shape: remote (%d,%d) vs local (%d,%d)", si,
				co.PartLen(si), co.ShardNodes(si), local.PartLen(si), local.ShardNodes(si))
		}
	}

	for i := 0; i < 5; i++ {
		q, k := rng.Intn(n), 1+rng.Intn(8)
		got, gqs, err := co.TopK(q, k)
		if err != nil {
			t.Fatalf("remote TopK(%d): %v", q, err)
		}
		want, wqs, err := local.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) || !reflect.DeepEqual(gqs, wqs) {
			t.Fatalf("TopK(%d,%d) diverged through the remote seam", q, k)
		}
	}

	batch := make([]int, 6)
	for i := range batch {
		batch[i] = rng.Intn(n)
	}
	gotB, _, err := co.TopKBatch(batch, 5)
	if err != nil {
		t.Fatalf("remote TopKBatch: %v", err)
	}
	wantB, _, err := local.TopKBatch(batch, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotB, wantB) {
		t.Fatal("TopKBatch diverged through the remote seam")
	}

	seeds := map[int]float64{rng.Intn(n): 1, rng.Intn(n): 0.5}
	gotP, _, err := co.TopKPersonalized(seeds, 5)
	if err != nil {
		t.Fatalf("remote TopKPersonalized: %v", err)
	}
	wantP, _, err := local.TopKPersonalized(seeds, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotP, wantP) {
		t.Fatal("TopKPersonalized diverged through the remote seam")
	}

	q, u := rng.Intn(n), rng.Intn(n)
	gotPx, err := co.Proximity(q, u)
	if err != nil {
		t.Fatal(err)
	}
	wantPx, err := local.Proximity(q, u)
	if err != nil {
		t.Fatal(err)
	}
	if gotPx != wantPx {
		t.Fatalf("Proximity(%d,%d): %v != %v", q, u, gotPx, wantPx)
	}

	// The worker surface rejects out-of-range shards instead of faulting.
	if _, _, err := worker.SolveShardSparse(-1, nil, nil); err == nil {
		t.Fatal("SolveShardSparse(-1) must error")
	}
	if _, _, err := worker.SolveShardBatch(co.Shards(), nil); err == nil {
		t.Fatal("SolveShardBatch(out of range) must error")
	}
}
