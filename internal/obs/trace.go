package obs

// Per-query tracing. A QueryTrace is threaded (by pointer, opt-in)
// from the HTTP layer through the solver seams: the sharded push
// records one SolveStep per shard solve plus the residual-bound
// trajectory, the monolithic tree search records phase timings. A nil
// trace pointer is the fast path everywhere — recording code is gated
// on it, so disabled queries pay one predictable branch and zero
// allocations.

// SolveStep is one shard solve inside a traced query, in execution
// order.
type SolveStep struct {
	// Shard is the solved shard.
	Shard int
	// ResidualBefore is the total pending residual mass across all
	// shards when this solve was scheduled.
	ResidualBefore float64
	// MassConsumed is the residual mass this solve absorbed.
	MassConsumed float64
	// NodesEvaluated is the solve's support size: proximity entries
	// actually computed.
	NodesEvaluated int
	// DurationNS is the solve's wall clock.
	DurationNS int64
}

// QueryTrace records one query's execution structure. Instances are
// pooled by the HTTP layer; Reset prepares one for reuse keeping its
// slice capacity.
type QueryTrace struct {
	// Steps lists shard solves in schedule order (empty for a
	// monolithic engine, whose search has no shard granularity).
	Steps []SolveStep
	// Residual is the residual-bound trajectory: total pending mass
	// after each solve. len(Residual) == len(Steps).
	Residual []float64

	// SolveNS is the push/search phase wall clock; RankNS the top-k
	// merge phase.
	SolveNS int64
	RankNS  int64

	// Solves counts shard solves; ShardsSolved distinct shards solved;
	// ShardsPruned shards left unsolved with pending inflow.
	Solves       int
	ShardsSolved int
	ShardsPruned int
	// NodesEvaluated is the summed solve support (proximities computed).
	NodesEvaluated int
	// CutMassPruned is the residual mass never processed — the mass the
	// cut-mass bound proved could not change the answer.
	CutMassPruned float64
	// Converged reports whether the push drove the (weighted) residual
	// under tolerance rather than hitting the solve cap.
	Converged bool
	// CacheHit marks answers served by re-ranking a cached proximity
	// vector; the engine never ran, so every other field is zero.
	CacheHit bool
}

// Reset clears the trace for reuse, keeping slice capacity.
func (t *QueryTrace) Reset() {
	t.Steps = t.Steps[:0]
	t.Residual = t.Residual[:0]
	t.SolveNS, t.RankNS = 0, 0
	t.Solves, t.ShardsSolved, t.ShardsPruned, t.NodesEvaluated = 0, 0, 0, 0
	t.CutMassPruned = 0
	t.Converged = false
	t.CacheHit = false
}

// AddStep appends one shard solve and its post-solve residual bound.
func (t *QueryTrace) AddStep(s SolveStep, residualAfter float64) {
	t.Steps = append(t.Steps, s)
	t.Residual = append(t.Residual, residualAfter)
}
