// Dictionary: the paper's Table 2 case study on the simulated FOLDOC
// word graph — find the most related terms for company and operating
// system names, exactly, and contrast with low-rank NB_LIN.
package main

import (
	"fmt"
	"log"
	"strings"

	"kdash"
	"kdash/internal/blin"
	"kdash/internal/dataset"
)

func main() {
	ds := dataset.Dictionary()
	fmt.Printf("dictionary: %d terms, %d definition links\n\n", ds.Graph.N(), ds.Graph.M())

	ix, err := kdash.BuildIndex(ds.Graph, kdash.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	nb, err := blin.NewNBLin(ds.Graph, blin.Options{Rank: 10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	const k = 5
	for _, term := range dataset.CaseStudyTerms() {
		q, err := ds.NodeByLabel(term)
		if err != nil {
			log.Fatal(err)
		}
		exact, _, err := ix.TopK(q, k)
		if err != nil {
			log.Fatal(err)
		}
		approx, err := nb.TopK(q, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", term)
		fmt.Printf("  K-dash     : %s\n", joinLabels(ds, exact))
		fmt.Printf("  NB_LIN(10) : %s\n\n", joinLabels(ds, approx))
	}
}

func joinLabels(ds *dataset.Dataset, rs []kdash.Result) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = ds.Label(r.Node)
	}
	return strings.Join(parts, " | ")
}
