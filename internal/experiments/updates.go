package experiments

// UpdateScale is the dynamic-update extension experiment: on the same
// community-structured benchmark graph the shard experiment uses, it
// measures the latency of incremental ShardedIndex.Apply per update
// kind — intra-shard edge, cut-crossing edge, node insertion — against
// the two baselines that bracket it: one shard's build time (the floor
// an update that refactorizes one block can hit) and the full rebuild
// (what the update replaces). It also verifies the chain's exactness:
// after all measured updates, the updated index must answer TopK
// bit-identically to a from-scratch build on the final graph with the
// final assignment pinned.

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"time"

	"kdash/internal/gen"
	"kdash/internal/graph"
	"kdash/internal/reorder"
	"kdash/internal/server"
	"kdash/internal/shard"
	"kdash/internal/wal"
)

// UpdateRow is one measurement of the update experiment.
type UpdateRow struct {
	Kind          string        // update kind or baseline name
	Updates       int           // measured updates averaged (1 for baselines)
	Mean          time.Duration // mean wall clock per update
	P50           time.Duration // median wall clock per update (0 for baselines)
	ShardsRebuilt float64       // mean LU blocks refactorized per update
	VsShardBuild  float64       // Mean / (one shard's build time); acceptance: <= 2 for intra-shard
	VsFullRebuild float64       // Mean / full-rebuild wall clock
	Exact         bool          // post-chain answers bit-identical to a pinned from-scratch build
}

// defaultUpdateShards is the shard count the acceptance criterion is
// stated against.
const defaultUpdateShards = 8

// UpdateScale builds the benchmark graph at cfg.ShardGraphN nodes and
// defaultUpdateShards shards (the last entry of cfg.ShardCounts
// overrides the shard count when larger than 1) and measures update
// latency per kind.
func UpdateScale(cfg Config) ([]UpdateRow, error) {
	cfg = cfg.withDefaults()
	n := cfg.ShardGraphN
	if n == 0 {
		n = defaultShardGraphN
	}
	shards := defaultUpdateShards
	if len(cfg.ShardCounts) > 0 {
		if last := cfg.ShardCounts[len(cfg.ShardCounts)-1]; last > 1 {
			shards = last
		}
	}
	communities := n / 100
	if communities < 4 {
		communities = 4
	}
	g := gen.CommunityOverlay(n, 3, communities, 0.995, cfg.Seed)

	opts := shard.Options{Shards: shards, Reorder: reorder.Hybrid, Seed: cfg.Seed}
	tFull := time.Now()
	sx, err := shard.Build(g, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: update baseline build: %w", err)
	}
	fullBuild := time.Since(tFull)
	oneShard := sx.Stats().ShardCPUTime / time.Duration(sx.Shards())

	rng := rand.New(rand.NewSource(cfg.Seed))
	updates := cfg.Queries
	if updates < 3 {
		updates = 3
	}

	// Pre-draw the update sequences so drawing cost is outside timings.
	intra, cut := edgePairs(sx, rng, updates)

	rows := make([]UpdateRow, 0, 7)
	measure := func(kind string, mk func(i int, cur *shard.ShardedIndex) (*graph.Delta, error)) error {
		durs := make([]time.Duration, 0, updates)
		var rebuilt int
		for i := 0; i < updates; i++ {
			d, err := mk(i, sx)
			if err != nil {
				return err
			}
			t0 := time.Now()
			next, us, err := sx.Apply(d)
			if err != nil {
				return fmt.Errorf("experiments: %s update %d: %w", kind, i, err)
			}
			durs = append(durs, time.Since(t0))
			rebuilt += us.ShardsRebuilt
			sx = next
		}
		mean, p50 := durStats(durs)
		rows = append(rows, UpdateRow{
			Kind:          kind,
			Updates:       updates,
			Mean:          mean,
			P50:           p50,
			ShardsRebuilt: float64(rebuilt) / float64(updates),
			VsShardBuild:  ratio(mean, oneShard),
			VsFullRebuild: ratio(mean, fullBuild),
			Exact:         true, // validated once after the chain, below
		})
		return nil
	}

	if err := measure("intra-edge", func(i int, cur *shard.ShardedIndex) (*graph.Delta, error) {
		d := cur.Graph().NewDelta()
		e := intra[i%len(intra)]
		return d, d.AddEdge(e[0], e[1], 0.5+rng.Float64())
	}); err != nil {
		return nil, err
	}
	if err := measure("cut-edge", func(i int, cur *shard.ShardedIndex) (*graph.Delta, error) {
		d := cur.Graph().NewDelta()
		e := cut[i%len(cut)]
		return d, d.AddEdge(e[0], e[1], 0.5+rng.Float64())
	}); err != nil {
		return nil, err
	}
	if err := measure("add-node", func(i int, cur *shard.ShardedIndex) (*graph.Delta, error) {
		d := cur.Graph().NewDelta()
		id := d.AddNode()
		anchor := rng.Intn(cur.N())
		if err := d.AddEdge(id, anchor, 1); err != nil {
			return nil, err
		}
		return d, d.AddEdge(anchor, id, 1)
	}); err != nil {
		return nil, err
	}

	// Exactness: the whole measured chain vs a pinned from-scratch build.
	exact, err := updateChainExact(sx, opts, cfg)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].Exact = exact
	}

	// Durable-mode ack latency: the same intra-shard edge stream through
	// the WAL handler's POST /update. The ack path is validate + encode +
	// log append + memtable merge — the number that replaces the apply
	// latencies above on a WAL-mode deployment (the refactorization still
	// runs, asynchronously, in the compactor).
	walRows, err := walAckRows(sx, intra, updates, rng, oneShard, fullBuild, exact)
	if err != nil {
		return nil, err
	}
	rows = append(rows, walRows...)

	// Baselines for scale: one shard's build (CPU) and the full rebuild.
	rows = append(rows,
		UpdateRow{Kind: "one-shard-build", Updates: 1, Mean: oneShard, VsShardBuild: 1, VsFullRebuild: ratio(oneShard, fullBuild), Exact: exact},
		UpdateRow{Kind: "full-rebuild", Updates: 1, Mean: fullBuild, ShardsRebuilt: float64(sx.Shards()), VsShardBuild: ratio(fullBuild, oneShard), VsFullRebuild: 1, Exact: exact},
	)
	return rows, nil
}

// walAckRows measures the durable-mode /update acknowledgement latency
// through the real HTTP handler, one row per fsync policy: "interval"
// (the production default, ack before the batched fsync) and "always"
// (fsync inside every ack).
func walAckRows(engine *shard.ShardedIndex, pairs [][2]int, updates int, rng *rand.Rand, oneShard, fullBuild time.Duration, exact bool) ([]UpdateRow, error) {
	rows := make([]UpdateRow, 0, 2)
	for _, policy := range []wal.SyncPolicy{wal.SyncInterval, wal.SyncAlways} {
		dir, err := os.MkdirTemp("", "kdash-wal-bench-*")
		if err != nil {
			return nil, err
		}
		h, err := server.NewDurable(engine, server.WALConfig{Dir: dir, Sync: policy})
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("experiments: wal ack handler: %w", err)
		}
		durs := make([]time.Duration, 0, updates)
		for i := 0; i < updates; i++ {
			e := pairs[i%len(pairs)]
			body := fmt.Sprintf(`{"addEdges":[{"from":%d,"to":%d,"weight":%g}]}`, e[0], e[1], 0.5+rng.Float64())
			req := httptest.NewRequest(http.MethodPost, "/update", strings.NewReader(body))
			rec := httptest.NewRecorder()
			t0 := time.Now()
			h.ServeHTTP(rec, req)
			ack := time.Since(t0)
			if rec.Code != http.StatusAccepted {
				h.Close()
				os.RemoveAll(dir)
				return nil, fmt.Errorf("experiments: wal ack update %d: status %d (%s)", i, rec.Code, rec.Body.String())
			}
			durs = append(durs, ack)
		}
		h.Close()
		os.RemoveAll(dir)
		mean, p50 := durStats(durs)
		rows = append(rows, UpdateRow{
			Kind:          "wal-ack-" + policy.String(),
			Updates:       updates,
			Mean:          mean,
			P50:           p50,
			VsShardBuild:  ratio(mean, oneShard),
			VsFullRebuild: ratio(mean, fullBuild),
			Exact:         exact,
		})
	}
	return rows, nil
}

// durStats reports the mean and median of a duration sample.
func durStats(durs []time.Duration) (mean, p50 time.Duration) {
	if len(durs) == 0 {
		return 0, 0
	}
	var total time.Duration
	for _, d := range durs {
		total += d
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return total / time.Duration(len(durs)), sorted[len(sorted)/2]
}

// edgePairs draws intra-shard and cut-crossing node pairs.
func edgePairs(sx *shard.ShardedIndex, rng *rand.Rand, want int) (intra, cut [][2]int) {
	n := sx.N()
	for len(intra) < want || len(cut) < want {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if sx.HomeShard(u) == sx.HomeShard(v) {
			if len(intra) < want {
				intra = append(intra, [2]int{u, v})
			}
		} else if len(cut) < want {
			cut = append(cut, [2]int{u, v})
		}
	}
	return intra, cut
}

// updateChainExact compares the updated index against a from-scratch
// build with the final assignment pinned: answers must be bit-identical
// (same nodes, same order, same float bits).
func updateChainExact(sx *shard.ShardedIndex, opts shard.Options, cfg Config) (bool, error) {
	opts.Shards = 0
	opts.Assignment = sx.Assignment()
	scratch, err := shard.Build(sx.Graph(), opts)
	if err != nil {
		return false, fmt.Errorf("experiments: pinned rebuild: %w", err)
	}
	for _, q := range cfg.queryNodes(sx.N()) {
		got, _, err := sx.TopK(q, cfg.K)
		if err != nil {
			return false, err
		}
		want, _, err := scratch.TopK(q, cfg.K)
		if err != nil {
			return false, err
		}
		if len(got) != len(want) {
			return false, nil
		}
		for i := range got {
			if got[i] != want[i] {
				return false, nil
			}
		}
	}
	return true, nil
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// WriteUpdateRows prints the update-latency table.
func WriteUpdateRows(w io.Writer, rows []UpdateRow) {
	fmt.Fprintf(w, "%-20s %8s %14s %14s %14s %14s %14s %7s\n",
		"update", "updates", "mean", "p50", "shards-rebuilt", "vs-shard-build", "vs-full-build", "exact")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %8d %14v %14v %14.1f %13.2fx %13.3fx %7t\n",
			r.Kind, r.Updates, r.Mean.Round(time.Microsecond), r.P50.Round(time.Microsecond),
			r.ShardsRebuilt, r.VsShardBuild, r.VsFullRebuild, r.Exact)
	}
}
