// Quickstart: build a small graph, index it, run an exact top-k RWR
// query, and confirm the answer against the iterative oracle.
package main

import (
	"fmt"
	"log"

	"kdash"
)

func main() {
	// The 7-node example graph from the paper's Appendix A (Figure 8):
	// a directed graph where u1 is the query. Weights are distinct so the
	// ranking has no exact ties.
	edges := []struct {
		from, to int
		w        float64
	}{
		{0, 1, 2}, {0, 2, 1}, // u1 -> u2, u3
		{1, 3, 1}, {1, 4, 2}, // u2 -> u4, u5
		{2, 3, 1},            // u3 -> u4
		{3, 4, 1}, {3, 5, 2}, // u4 -> u5, u6
		{4, 6, 1}, // u5 -> u7
		{5, 4, 1}, // u6 -> u5
		{6, 0, 1}, // u7 -> u1 (cycle back so the walk recirculates)
	}
	b := kdash.NewBuilder(7)
	for _, e := range edges {
		if err := b.AddEdge(e.from, e.to, e.w); err != nil {
			log.Fatal(err)
		}
	}
	g := b.Build()

	ix, err := kdash.BuildIndex(g, kdash.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("indexed %d nodes / %d edges: nnz(inverse factors) = %d\n", g.N(), g.M(), st.NNZInverse)

	const query, k = 0, 3
	results, stats, err := ix.TopK(query, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-%d for node u%d (visited %d nodes, %d exact proximities):\n",
		k, query+1, stats.Visited, stats.ProximityComputations)
	for i, r := range results {
		fmt.Printf("  %d. u%d  proximity %.6f\n", i+1, r.Node+1, r.Score)
	}

	// The answer is exact: the slow iterative method agrees.
	oracle, err := kdash.IterativeTopK(g, query, k, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i := range results {
		if results[i].Node != oracle[i].Node {
			log.Fatalf("mismatch at rank %d: K-dash %v vs iterative %v", i, results[i], oracle[i])
		}
	}
	fmt.Println("verified: identical to the iterative RWR answer")
}
