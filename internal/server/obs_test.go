package server

// Tests for the observability layer: /metrics exposition shape and
// /statz parity, per-query tracing, cancellation mapping, request
// logging, cache footprint counters and concurrent scrapes under mixed
// load (the latter matters mostly under -race).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"kdash/internal/gen"
	"kdash/internal/placement"
	"kdash/internal/reorder"
	"kdash/internal/shard"
)

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, h http.Handler) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	return rec.Body.String()
}

// metricValue finds one sample line by its exact prefix ("name{labels} ")
// and parses its value; ok is false when the series is absent.
func metricValue(text, prefix string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		if rest, found := strings.CutPrefix(line, prefix+" "); found {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

// TestMetricsExposition checks the scrape is well-formed Prometheus
// text — every line a comment or `name{labels} value` — and carries
// the endpoint latency histograms and per-shard engine series.
func TestMetricsExposition(t *testing.T) {
	h, _ := shardedHandler(t)
	for i := 0; i < 3; i++ {
		get(t, h, "/topk?q=7&k=5")
	}
	get(t, h, fmt.Sprintf("/proximity?q=%d&u=%d", 3, 11))
	text := scrape(t, h)

	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eEInf]+$`)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}

	if v, ok := metricValue(text, `kdash_http_requests_total{endpoint="topk",code="200"}`); !ok || v != 3 {
		t.Errorf("topk 200 count = %v (ok=%t), want 3", v, ok)
	}
	for _, want := range []string{
		`kdash_http_request_duration_seconds_bucket{endpoint="topk",le="+Inf"} 3`,
		`kdash_http_request_duration_seconds_count{endpoint="topk"} 3`,
		"# TYPE kdash_http_request_duration_seconds histogram",
		"# TYPE kdash_http_requests_total counter",
		"# TYPE kdash_epoch gauge",
		`kdash_shard_opened{shard="0"}`,
		`kdash_shard_solves_total{shard="`,
		"kdash_index_shards 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The per-endpoint p99 the issue promises: cumulative buckets plus
	// count are what Prometheus derives quantiles from — check the
	// buckets are cumulative (monotone non-decreasing le series).
	prev := -1.0
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, `kdash_http_request_duration_seconds_bucket{endpoint="topk",`) {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		if err != nil {
			t.Fatalf("bad bucket line %q", line)
		}
		if v < prev {
			t.Errorf("non-cumulative bucket series at %q", line)
		}
		prev = v
	}
}

// TestStatzMetricsParity: the JSON and Prometheus surfaces read the
// same counters, so at a quiet moment they must agree exactly.
func TestStatzMetricsParity(t *testing.T) {
	h, _ := shardedHandler(t)
	for i := 0; i < 5; i++ {
		get(t, h, "/topk?q=7&k=5")
	}
	get(t, h, "/topk?q=-1&k=5") // one 400 for the error counters

	_, body := get(t, h, "/statz")
	var queries map[string]int64
	if err := json.Unmarshal(body["queries"], &queries); err != nil {
		t.Fatal(err)
	}
	text := scrape(t, h)

	if v, _ := metricValue(text, `kdash_http_requests_total{endpoint="topk",code="200"}`); int64(v) != 5 {
		t.Errorf("metrics topk 200 = %v, statz made 5 good requests", v)
	}
	if v, _ := metricValue(text, `kdash_http_requests_total{endpoint="topk",code="400"}`); int64(v) != queries["badRequest"] {
		t.Errorf("metrics topk 400 = %v, statz badRequest = %d", v, queries["badRequest"])
	}
	if v, _ := metricValue(text, `kdash_http_errors_total{kind="badRequest"}`); int64(v) != queries["badRequest"] {
		t.Errorf("metrics badRequest = %v, statz = %d", v, queries["badRequest"])
	}
	if v, _ := metricValue(text, "kdash_queries_cancelled_total"); int64(v) != queries["cancelled"] {
		t.Errorf("metrics cancelled = %v, statz = %d", v, queries["cancelled"])
	}
	// statz latency count and the histogram _count must both equal the
	// completed topk requests (6: five 200s plus the 400).
	var lat map[string]map[string]float64
	if err := json.Unmarshal(body["latency"], &lat); err != nil {
		t.Fatal(err)
	}
	if got := lat["topk"]["count"]; got != 6 {
		t.Errorf("statz latency.topk.count = %v, want 6", got)
	}
	if v, _ := metricValue(text, `kdash_http_request_duration_seconds_count{endpoint="topk"}`); v != 6 {
		t.Errorf("metrics duration count = %v, want 6", v)
	}
}

// TestTraceBlock: ?trace=1 (and the header form) return the per-query
// push trace; untraced requests must not carry the block.
func TestTraceBlock(t *testing.T) {
	h, _ := shardedHandler(t)
	rec, body := get(t, h, "/topk?q=7&k=5&trace=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var trace struct {
		Steps []struct {
			Shard          int     `json:"shard"`
			ResidualBefore float64 `json:"residualBefore"`
			DurationNS     int64   `json:"durationNs"`
		} `json:"steps"`
		Residual  []float64 `json:"residual"`
		Solves    int       `json:"solves"`
		Converged bool      `json:"converged"`
		SolveNS   int64     `json:"solveNs"`
	}
	if body["trace"] == nil {
		t.Fatalf("no trace block in %s", rec.Body.String())
	}
	if err := json.Unmarshal(body["trace"], &trace); err != nil {
		t.Fatal(err)
	}
	if trace.Solves == 0 || len(trace.Steps) != trace.Solves {
		t.Errorf("solves = %d with %d steps", trace.Solves, len(trace.Steps))
	}
	if !trace.Converged {
		t.Error("traced query did not converge")
	}
	if trace.SolveNS <= 0 {
		t.Errorf("solveNs = %d, want > 0", trace.SolveNS)
	}
	if len(trace.Residual) != len(trace.Steps) {
		t.Errorf("%d residual points for %d steps", len(trace.Residual), len(trace.Steps))
	}
	// The residual trajectory after each solve never rises above the
	// seeded mass and must end under tolerance for a converged query.
	for i := 1; i < len(trace.Steps); i++ {
		if trace.Steps[i].ResidualBefore != trace.Residual[i-1] {
			t.Errorf("step %d residualBefore %g != residual[%d] %g",
				i, trace.Steps[i].ResidualBefore, i-1, trace.Residual[i-1])
		}
	}

	// Header opt-in, same contract.
	req := httptest.NewRequest(http.MethodGet, "/topk?q=7&k=5", nil)
	req.Header.Set("X-Kdash-Trace", "1")
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if !strings.Contains(rec2.Body.String(), `"trace"`) {
		t.Error("X-Kdash-Trace did not produce a trace block")
	}

	// No opt-in, no block.
	rec3, _ := get(t, h, "/topk?q=7&k=5")
	if strings.Contains(rec3.Body.String(), `"trace"`) {
		t.Error("untraced response carries a trace block")
	}
}

// TestCancelledRequest: a context already cancelled when the engine
// starts maps to 499 and the cancelled counter, not a 500.
func TestCancelledRequest(t *testing.T) {
	h, _ := shardedHandler(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		method, url, body string
	}{
		{http.MethodGet, "/topk?q=7&k=5", ""},
		{http.MethodPost, "/topk/batch", `{"queries":[{"q":7,"k":5}]}`},
	} {
		var rd *strings.Reader
		if tc.body != "" {
			rd = strings.NewReader(tc.body)
		} else {
			rd = strings.NewReader("")
		}
		req := httptest.NewRequest(tc.method, tc.url, rd).WithContext(ctx)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != statusClientClosedRequest {
			t.Errorf("%s %s with cancelled context: status %d, want %d (%s)",
				tc.method, tc.url, rec.Code, statusClientClosedRequest, rec.Body.String())
		}
	}
	if got := h.qCancelled.Value(); got != 2 {
		t.Errorf("cancelled counter = %d, want 2", got)
	}
	if got := h.qInternal.Value(); got != 0 {
		t.Errorf("cancellations counted as internal errors: %d", got)
	}
}

// TestRequestLogging: WithRequestLog emits one structured line per
// request with the promised fields.
func TestRequestLogging(t *testing.T) {
	g, sx := shardedHandler(t)
	_ = g
	var buf bytes.Buffer
	h := New(sx, WithRequestLog(slog.New(slog.NewJSONHandler(&buf, nil))))
	get(t, h, "/topk?q=7&k=5")
	get(t, h, "/topk?q=-3&k=5")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d log lines, want 2: %q", len(lines), buf.String())
	}
	var entry struct {
		Level    string `json:"level"`
		Endpoint string `json:"endpoint"`
		Status   int    `json:"status"`
		TraceID  string `json:"traceId"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatal(err)
	}
	if entry.Endpoint != "topk" || entry.Status != 200 || len(entry.TraceID) != 16 {
		t.Errorf("log entry = %+v", entry)
	}
	if err := json.Unmarshal([]byte(lines[1]), &entry); err != nil {
		t.Fatal(err)
	}
	if entry.Status != 400 || entry.Level != "WARN" {
		t.Errorf("bad-request log entry = %+v", entry)
	}
}

// TestHealthzBuildInfo: /healthz carries the build block.
func TestHealthzBuildInfo(t *testing.T) {
	h, _ := testHandler(t)
	_, body := get(t, h, "/healthz")
	var build map[string]string
	if err := json.Unmarshal(body["build"], &build); err != nil {
		t.Fatal(err)
	}
	if build["goVersion"] == "" {
		t.Errorf("build block missing goVersion: %v", build)
	}
}

// TestCacheFootprintCounters: evictions and byte size are tracked and
// surfaced through /statz.
func TestCacheFootprintCounters(t *testing.T) {
	c := newVectorCache(2)
	c.put(1, []float64{1, 2}, 0)
	c.put(2, []float64{3}, 0)
	c.put(3, []float64{4}, 0) // evicts 1 (16 bytes out, 8 in)
	entries, bytes, evictions := c.stats()
	if entries != 2 || bytes != 16 || evictions != 1 {
		t.Errorf("stats = (%d, %d, %d), want (2, 16, 1)", entries, bytes, evictions)
	}
	c.flush(1)
	if _, b, ev := c.stats(); b != 0 || ev != 1 {
		t.Errorf("after flush: bytes %d (want 0), evictions %d (want 1: flushes are not evictions)", b, ev)
	}

	_, ix := testHandler(t)
	h := New(ix, WithCache(1))
	get(t, h, "/topk?q=1&k=3")
	get(t, h, "/topk?q=2&k=3") // evicts q=1's vector
	_, body := get(t, h, "/statz")
	var cache map[string]int64
	if err := json.Unmarshal(body["cache"], &cache); err != nil {
		t.Fatal(err)
	}
	if cache["evictions"] != 1 || cache["entries"] != 1 {
		t.Errorf("statz cache = %v", cache)
	}
	if want := int64(8 * ix.N()); cache["bytes"] != want {
		t.Errorf("statz cache bytes = %d, want %d", cache["bytes"], want)
	}
	text := scrape(t, h)
	if v, ok := metricValue(text, "kdash_cache_evictions_total"); !ok || v != 1 {
		t.Errorf("metrics evictions = %v (ok=%t), want 1", v, ok)
	}
}

// TestConcurrentScrapeUnderLoad hammers queries, updates and both
// observability surfaces from concurrent goroutines; its real assertion
// is the race detector's (the CI race job runs this package).
func TestConcurrentScrapeUnderLoad(t *testing.T) {
	h, _ := shardedHandler(t)
	const workers, iters = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch w % 4 {
				case 0:
					req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/topk?q=%d&k=5&trace=1", (w*iters+i)%120), nil)
					h.ServeHTTP(httptest.NewRecorder(), req)
				case 1:
					req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
					h.ServeHTTP(httptest.NewRecorder(), req)
				case 2:
					req := httptest.NewRequest(http.MethodGet, "/statz", nil)
					h.ServeHTTP(httptest.NewRecorder(), req)
				case 3:
					body := fmt.Sprintf(`{"addEdges":[{"from":%d,"to":%d}]}`, (w*iters+i)%120, (w*iters+i+7)%120)
					req := httptest.NewRequest(http.MethodPost, "/update", strings.NewReader(body))
					h.ServeHTTP(httptest.NewRecorder(), req)
				}
			}
		}(w)
	}
	wg.Wait()
	// After the dust settles the two surfaces must still agree.
	text := scrape(t, h)
	if v, ok := metricValue(text, `kdash_http_requests_total{endpoint="topk",code="200"}`); !ok || int64(v) != 2*iters {
		t.Errorf("topk 200s = %v (ok=%t), want %d", v, ok, 2*iters)
	}
}

// TestClusterMetricsExposition serves a real loopback coordinator
// through the handler and checks /metrics carries the per-worker
// series writeClusterMetrics projects from the coordinator's Statz —
// a shape drift between placement.Coordinator.Statz and the projection
// fails here, not on a production dashboard.
func TestClusterMetricsExposition(t *testing.T) {
	g := gen.PlantedPartition(120, 4, 0.2, 0.01, 1)
	sx, err := shard.Build(g, shard.Options{Shards: 4, Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := sx.Save(dir); err != nil {
		t.Fatal(err)
	}
	const workers = 2
	addrs := make([]string, workers)
	for w := 0; w < workers; w++ {
		wsx, err := shard.Open(dir, shard.LoadOptions{Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		addrs[w] = ln.Addr().String()
		go placement.ServeWorker(ln, wsx) //nolint:errcheck // closes with the listener
	}
	co, err := placement.NewCoordinator(dir, addrs, placement.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	h := New(co)
	for i := 0; i < 3; i++ {
		if rec, _ := get(t, h, "/topk?q=7&k=5"); rec.Code != http.StatusOK {
			t.Fatalf("topk through coordinator: %d (%s)", rec.Code, rec.Body.String())
		}
	}
	text := scrape(t, h)
	for w := 0; w < workers; w++ {
		calls, ok := metricValue(text, fmt.Sprintf(`kdash_worker_calls_total{worker="%d"}`, w))
		if !ok || calls <= 0 {
			t.Errorf("worker %d calls series = %v (ok=%t), want > 0", w, calls, ok)
		}
		if v, ok := metricValue(text, fmt.Sprintf(`kdash_worker_shards{worker="%d"}`, w)); !ok || v != 2 {
			t.Errorf("worker %d shards = %v (ok=%t), want 2", w, v, ok)
		}
		if v, ok := metricValue(text, fmt.Sprintf(`kdash_worker_errors_total{worker="%d"}`, w)); !ok || v != 0 {
			t.Errorf("worker %d errors = %v (ok=%t), want 0", w, v, ok)
		}
	}
	for _, want := range []string{
		"# TYPE kdash_worker_calls_total counter",
		"# TYPE kdash_worker_call_mean_micros gauge",
		`kdash_http_errors_total{kind="unavailable"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
